package realroots_test

import (
	"math/big"
	"sync"
	"testing"

	"realroots"
	"realroots/internal/workload"
)

// TestConcurrentProfiles runs solves under both arithmetic profiles
// concurrently — the race the old mp.UseKaratsuba package global made
// impossible to run safely. Under -race this test fails if any profile
// state leaks into shared memory; in any mode it checks that the two
// profiles produce bit-identical roots (the arithmetic is exact either
// way).
func TestConcurrentProfiles(t *testing.T) {
	p := workload.CharPoly01(7, 18)
	coeffs := make([]*big.Int, p.Degree()+1)
	for i := range coeffs {
		coeffs[i] = p.Coeff(i).ToBig()
	}

	const rounds = 4
	results := make([][]*realroots.Result, 2)
	var wg sync.WaitGroup
	for pi, prof := range []realroots.Profile{realroots.ProfilePaper, realroots.ProfileFast} {
		results[pi] = make([]*realroots.Result, rounds)
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(pi, r int, prof realroots.Profile) {
				defer wg.Done()
				res, err := realroots.FindRoots(coeffs, &realroots.Options{
					Precision: 32,
					Workers:   2,
					Profile:   prof,
				})
				if err != nil {
					t.Errorf("profile %d round %d: %v", pi, r, err)
					return
				}
				results[pi][r] = res
			}(pi, r, prof)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	ref := results[0][0]
	for pi := range results {
		for r, res := range results[pi] {
			if len(res.Roots) != len(ref.Roots) {
				t.Fatalf("profile %d round %d: %d roots, want %d", pi, r, len(res.Roots), len(ref.Roots))
			}
			for i := range res.Roots {
				if res.Roots[i].Value.Cmp(ref.Roots[i].Value) != 0 {
					t.Fatalf("profile %d round %d: root %d = %s, want %s",
						pi, r, i, res.Roots[i].Value.RatString(), ref.Roots[i].Value.RatString())
				}
			}
		}
	}
}

// TestProfileValidation rejects out-of-range profile values instead of
// silently running schoolbook.
func TestProfileValidation(t *testing.T) {
	_, err := realroots.FindRootsInt64([]int64{-2, 0, 1}, &realroots.Options{Profile: realroots.Profile(42)})
	if err == nil {
		t.Fatal("Profile(42) accepted, want option error")
	}
}

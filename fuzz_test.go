package realroots

import (
	"math/big"
	"testing"
)

// FuzzFindRootsSmall drives the entire pipeline with arbitrary small
// polynomials. The invariant: FindRoots either rejects the input with
// an error, or returns approximations x̃ such that the polynomial has a
// sign change on (x̃ - 2^-µ, x̃] (or vanishes at x̃) — verified by exact
// evaluation — with roots sorted and counted consistently.
func FuzzFindRootsSmall(f *testing.F) {
	f.Add([]byte{254, 0, 1}, uint(8))        // x² - 2
	f.Add([]byte{30, 233, 248, 1}, uint(16)) // (x+3)(x-1)(x-10)
	f.Add([]byte{4, 0, 253, 1}, uint(4))     // (x-2)²(x+1)
	f.Add([]byte{1, 0, 1}, uint(8))          // x² + 1 (rejected)
	f.Fuzz(func(t *testing.T, coeffBytes []byte, mu uint) {
		if len(coeffBytes) < 2 || len(coeffBytes) > 7 {
			return
		}
		mu = mu%24 + 1
		coeffs := make([]*big.Int, len(coeffBytes))
		for i, b := range coeffBytes {
			coeffs[i] = big.NewInt(int64(int8(b)))
		}
		res, err := FindRoots(coeffs, &Options{Precision: mu})
		if err != nil {
			return // rejected inputs (non-real roots, constants) are fine
		}
		step := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), mu))
		var prev *big.Rat
		total := 0
		// Group the reported roots by cell (distinct roots may share one
		// 2^-µ cell): the polynomial changes sign across a cell iff the
		// total multiplicity inside it is odd, and the sign test is
		// conclusive only when neither edge is itself a root.
		for i := 0; i < len(res.Roots); {
			j := i
			cellMult := 0
			for ; j < len(res.Roots) && res.Roots[j].Value.Cmp(res.Roots[i].Value) == 0; j++ {
				cellMult += res.Roots[j].Multiplicity
				total += res.Roots[j].Multiplicity
			}
			v := res.Roots[i].Value
			if prev != nil && prev.Cmp(v) > 0 {
				t.Fatalf("roots out of order: %v then %v", prev, v)
			}
			prev = v
			i = j

			hi := evalRat(coeffs, v)
			if hi.Sign() == 0 {
				continue // x̃ is itself a root: trivially in the cell
			}
			lo := evalRat(coeffs, new(big.Rat).Sub(v, step))
			if lo.Sign() == 0 {
				continue // a root sits exactly on the far edge: inconclusive
			}
			if cellMult%2 == 1 && lo.Sign()*hi.Sign() > 0 {
				t.Fatalf("no sign change in (x̃-2^-µ, x̃] at %v (coeffs %v, µ=%d)", v, coeffBytes, mu)
			}
			if cellMult%2 == 0 && lo.Sign()*hi.Sign() < 0 {
				t.Fatalf("unexpected sign change for even cell multiplicity at %v (coeffs %v, µ=%d)", v, coeffBytes, mu)
			}
		}
		if total != res.Degree {
			t.Fatalf("multiplicities sum to %d for degree %d (coeffs %v)", total, res.Degree, coeffBytes)
		}
	})
}

// evalRat evaluates the polynomial at a rational point exactly.
func evalRat(coeffs []*big.Int, x *big.Rat) *big.Rat {
	v := new(big.Rat)
	for i := len(coeffs) - 1; i >= 0; i-- {
		v.Mul(v, x)
		v.Add(v, new(big.Rat).SetInt(coeffs[i]))
	}
	return v
}

package realroots

import (
	"context"
	"errors"
	"math/big"
	"testing"
	"time"
)

// wilkinsonCoeffs returns the coefficients of Π (x-k), k = 1..n.
func wilkinsonCoeffs(n int64) []*big.Int {
	c := []*big.Int{big.NewInt(1)}
	for k := int64(1); k <= n; k++ {
		next := make([]*big.Int, len(c)+1)
		for i := range next {
			next[i] = new(big.Int)
		}
		for i, ci := range c {
			next[i+1].Add(next[i+1], ci)
			next[i].Sub(next[i], new(big.Int).Mul(big.NewInt(k), ci))
		}
		c = next
	}
	return c
}

func TestFindRootsContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{0, 4} {
		res, err := FindRootsContext(ctx, wilkinsonCoeffs(10), &Options{Workers: workers})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want ErrCanceled", workers, err)
		}
		if res == nil {
			t.Fatalf("workers=%d: no partial result", workers)
		}
		if len(res.Roots) != 0 {
			t.Fatalf("workers=%d: canceled run returned roots", workers)
		}
		if res.Degree != 10 {
			t.Fatalf("workers=%d: partial Degree = %d", workers, res.Degree)
		}
	}
}

func TestOptionsTimeout(t *testing.T) {
	res, err := FindRoots(wilkinsonCoeffs(10), &Options{Timeout: time.Nanosecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil || len(res.Roots) != 0 {
		t.Fatalf("partial result = %+v", res)
	}
}

func TestOptionsMaxBitOps(t *testing.T) {
	res, err := FindRoots(wilkinsonCoeffs(12), &Options{MaxBitOps: 1500, Workers: 2})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if res == nil || len(res.Roots) != 0 {
		t.Fatalf("partial result = %+v", res)
	}
	// A generous budget must not interfere.
	res, err = FindRoots(wilkinsonCoeffs(8), &Options{MaxBitOps: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) != 8 {
		t.Fatalf("%d roots", len(res.Roots))
	}
}

func TestInvalidOptionsTyped(t *testing.T) {
	_, err := FindRoots(wilkinsonCoeffs(4), &Options{Workers: -1})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("err = %v, want ErrInvalidOptions", err)
	}
	_, err = FindRealRoots(wilkinsonCoeffs(4), &Options{MaxBitOps: -1})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("FindRealRoots err = %v, want ErrInvalidOptions", err)
	}
}

func TestFindRealRootsContextResilience(t *testing.T) {
	// x² - 2: not all-real-restricted, exercises the Sturm baseline.
	coeffs := []*big.Int{big.NewInt(-2), big.NewInt(0), big.NewInt(1)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := FindRealRootsContext(ctx, coeffs, nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || len(res.Roots) != 0 {
		t.Fatalf("partial result = %+v", res)
	}
	if _, err := FindRealRoots(wilkinsonCoeffs(12), &Options{MaxBitOps: 200}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget err = %v, want ErrBudgetExceeded", err)
	}
	// And the healthy path still works with a context.
	res, err = FindRealRootsContext(context.Background(), coeffs, &Options{Precision: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) != 2 {
		t.Fatalf("%d roots", len(res.Roots))
	}
}

func TestEigenvaluesContextCanceled(t *testing.T) {
	m := [][]int64{{2, 1, 0}, {1, 2, 1}, {0, 1, 2}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EigenvaluesContext(ctx, m, &Options{Workers: 2}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	res, err := EigenvaluesContext(context.Background(), m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) != 3 {
		t.Fatalf("%d eigenvalues", len(res.Roots))
	}
}

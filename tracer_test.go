package realroots

import (
	"bytes"
	"math/big"
	"strings"
	"testing"

	"realroots/internal/trace"
)

func TestTracerPublicAPI(t *testing.T) {
	for _, workers := range []int{1, 3} {
		tr := NewTracer()
		res, err := FindRoots(wilkinsonCoeffs(8),
			&Options{Precision: 24, Workers: workers, Tracer: tr})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Distinct != 8 {
			t.Fatalf("workers=%d: %d roots", workers, res.Distinct)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("workers=%d: Validate: %v", workers, err)
		}

		// Phase spans on the control lane.
		phases := map[string]bool{}
		tasks := map[string]bool{}
		for _, l := range tr.Lanes() {
			for _, s := range l.Spans() {
				switch s.Cat {
				case trace.CatPhase:
					phases[s.Name] = true
				case trace.CatTask:
					tasks[s.Name] = true
				}
			}
		}
		for _, want := range []string{"remainder", "solve"} {
			if !phases[want] {
				t.Errorf("workers=%d: missing phase span %q (have %v)", workers, want, phases)
			}
		}
		for _, want := range []string{"computepoly", "sort", "preinterval", "interval"} {
			if !tasks[want] {
				t.Errorf("workers=%d: missing task kind %q (have %v)", workers, want, tasks)
			}
		}

		// Chrome export and the utilization summary both work on the
		// public alias.
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatalf("workers=%d: WriteChrome: %v", workers, err)
		}
		if err := trace.ValidateChrome(buf.Bytes()); err != nil {
			t.Fatalf("workers=%d: ValidateChrome: %v", workers, err)
		}
		sum := tr.Summarize()
		if sum.Wall <= 0 || sum.Busy <= 0 {
			t.Errorf("workers=%d: summary %+v", workers, sum)
		}
		var txt strings.Builder
		sum.WriteText(&txt)
		if !strings.Contains(txt.String(), "Utilization summary") {
			t.Errorf("workers=%d: summary text missing header:\n%s", workers, txt.String())
		}
	}
}

func TestTracerSturmBaseline(t *testing.T) {
	tr := NewTracer()
	// x² - 2: handled by the sequential Sturm path.
	res, err := FindRealRoots(
		[]*big.Int{big.NewInt(-2), big.NewInt(0), big.NewInt(1)},
		&Options{Precision: 16, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distinct != 2 {
		t.Fatalf("%d roots", res.Distinct)
	}
	found := false
	for _, l := range tr.Lanes() {
		for _, s := range l.Spans() {
			if s.Name == "sturm" && s.Cat == trace.CatTask {
				found = true
			}
		}
	}
	if !found {
		t.Error("no sturm span recorded")
	}
}

func TestNilTracerOption(t *testing.T) {
	res, err := FindRootsInt64([]int64{-2, 0, 1}, &Options{Precision: 16})
	if err != nil || res.Distinct != 2 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

// Gauss–Hermite quadrature nodes: the roots of the Hermite polynomial
// H_n, computed to high precision. Orthogonal-polynomial root-finding
// is a classic consumer of real-root isolation — H_n has integer
// coefficients and n distinct real roots, exactly the algorithm's
// input class.
//
//	go run ./examples/quadrature
package main

import (
	"fmt"
	"log"
	"math/big"

	"realroots"
	"realroots/internal/workload"
)

func main() {
	const n = 16
	h := workload.Hermite(n)

	// Convert the internal polynomial to the public big.Int boundary.
	coeffs := make([]*big.Int, h.Degree()+1)
	for i := range coeffs {
		coeffs[i] = h.Coeff(i).ToBig()
	}

	res, err := realroots.FindRoots(coeffs, &realroots.Options{
		Precision: 96, // ~29 decimal digits
		Workers:   4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Gauss–Hermite nodes of order %d (roots of H_%d), 96-bit precision:\n", n, n)
	for i, r := range res.Roots {
		fmt.Printf("  x_%-2d = %s\n", i, r.Decimal(25))
	}

	// The nodes of H_n are symmetric about zero; the ceiling convention
	// makes the reported approximations x̃(-r) and x̃(r) satisfy
	// x̃(-r) = -x̃(r) + 2^-µ adjustments at most one grid step apart.
	mid := res.Roots[n/2-1].Float64() + res.Roots[n/2].Float64()
	fmt.Printf("central pair sum (≈0): %.2e\n", mid)
}

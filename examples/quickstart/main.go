// Quickstart: find the real roots of a small polynomial with the public
// API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"realroots"
)

func main() {
	// p(x) = x³ - 8x² - 23x + 30 = (x + 3)(x - 1)(x - 10),
	// coefficients in ascending degree order.
	res, err := realroots.FindRootsInt64(
		[]int64{30, -23, -8, 1},
		&realroots.Options{Precision: 48},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("p has %d real roots (found in %v):\n", res.Distinct, res.Elapsed)
	for _, r := range res.Roots {
		fmt.Printf("  x = %-14s (exact: %s)\n", r.Decimal(6), r)
	}

	// Irrational roots come back as exact dyadic rationals within 2^-µ:
	// p(x) = x² - 2.
	res, err = realroots.FindRootsInt64([]int64{-2, 0, 1}, &realroots.Options{Precision: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n√2 to 64 bits: %s\n", res.Roots[1].Decimal(18))

	// Repeated roots are reported once, with multiplicity:
	// p(x) = (x - 2)²(x + 1).
	res, err = realroots.FindRootsInt64([]int64{4, 0, -3, 1}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, r := range res.Roots {
		fmt.Printf("root %s with multiplicity %d\n", r, r.Multiplicity)
	}
}

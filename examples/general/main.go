// General real-root finding: unlike the paper's parallel algorithm,
// whose precondition is that *all* roots are real, the library also
// ships the classic sequential Sturm machinery, exposed as
// realroots.FindRealRoots and realroots.CountRealRoots, which accept
// any integer polynomial. This example contrasts the two entry points.
//
//	go run ./examples/general
package main

import (
	"errors"
	"fmt"
	"log"
	"math/big"

	"realroots"
)

func main() {
	// p(x) = (x² + 1)(x - 3)(x + 5) = x⁴ + 2x³ - 14x² + 2x - 15:
	// two real roots, two complex ones.
	coeffs := []*big.Int{
		big.NewInt(-15), big.NewInt(2), big.NewInt(-14), big.NewInt(2), big.NewInt(1),
	}

	// The parallel algorithm rejects it (its precondition is violated) …
	_, err := realroots.FindRoots(coeffs, nil)
	if !errors.Is(err, realroots.ErrNotAllReal) {
		log.Fatalf("expected ErrNotAllReal, got %v", err)
	}
	fmt.Println("FindRoots:", err)

	// … Sturm counting tells us how many real roots there are …
	n, err := realroots.CountRealRoots(coeffs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CountRealRoots: %d of degree %d\n", n, len(coeffs)-1)

	// … and the general-purpose finder approximates them.
	res, err := realroots.FindRealRoots(coeffs, &realroots.Options{Precision: 40})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Roots {
		fmt.Printf("real root: %s\n", r.Decimal(10))
	}
}

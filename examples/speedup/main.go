// Speedup: run the same root-finding problem across worker counts and
// print the parallel speedups, reproducing the paper's §5.2 measurement
// in miniature (Tables 3-7 are regenerated in full by cmd/rootbench).
//
//	go run ./examples/speedup
package main

import (
	"fmt"
	"log"
	"math/big"
	"runtime"
	"time"

	"realroots"
	"realroots/internal/workload"
)

func main() {
	const (
		n  = 45
		mu = 32
	)
	p := workload.CharPoly01(7, n)
	coeffs := make([]*big.Int, p.Degree()+1)
	for i := range coeffs {
		coeffs[i] = p.Coeff(i).ToBig()
	}

	fmt.Printf("degree-%d characteristic polynomial, µ = %d, GOMAXPROCS = %d\n\n",
		n, mu, runtime.GOMAXPROCS(0))
	fmt.Printf("%8s %12s %9s\n", "workers", "time", "speedup")

	var base time.Duration
	for _, workers := range []int{1, 2, 4, 8, 16} {
		best := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := realroots.FindRoots(coeffs, &realroots.Options{
				Precision: mu,
				Workers:   workers,
			}); err != nil {
				log.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		if workers == 1 {
			base = best
		}
		fmt.Printf("%8d %12v %8.2fx\n", workers, best.Round(time.Millisecond), float64(base)/float64(best))
	}
}

// Eigenvalues of a random symmetric 0-1 matrix — the workload the
// paper's evaluation is built on (§5): the input polynomial is the
// matrix's characteristic polynomial, which is real-rooted because the
// matrix is symmetric.
//
//	go run ./examples/eigenvalues
package main

import (
	"fmt"
	"log"
	"math/rand"

	"realroots"
)

func main() {
	const n = 24
	r := rand.New(rand.NewSource(42))

	// Random symmetric 0-1 matrix, as in the paper.
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := int64(r.Intn(2))
			m[i][j], m[j][i] = v, v
		}
	}

	res, err := realroots.Eigenvalues(m, &realroots.Options{
		Precision: 40,
		Workers:   4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d×%d symmetric 0-1 matrix: %d distinct eigenvalues (%v)\n",
		n, n, res.Distinct, res.Elapsed)
	var sum float64
	var trace int64
	for i := 0; i < n; i++ {
		trace += m[i][i]
	}
	for _, ev := range res.Roots {
		fmt.Printf("  λ = %s  (×%d)\n", ev.Decimal(10), ev.Multiplicity)
		sum += float64(ev.Multiplicity) * ev.Float64()
	}
	// Sanity check: the eigenvalues sum to the trace.
	fmt.Printf("Σλ = %.6f, trace = %d\n", sum, trace)
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lineWriter is a concurrency-safe sink that lets the test wait for
// the "listening on" line and extract the bound address.
type lineWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lineWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *lineWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRE = regexp.MustCompile(`rootd: listening on (http://\S+)`)

// TestRunServeSolveDrain boots the real binary entry point on an
// ephemeral port, solves over HTTP, then cancels the context (the
// SIGTERM path) and expects a clean drain.
func TestRunServeSolveDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out lineWriter
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet", "-drain-timeout", "5s"}, &out)
	}()

	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("server did not announce its address; stderr:\n%s", out.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Post(url+"/v1/solve", "application/json",
		strings.NewReader(`{"poly":{"coeffs":["-2","0","1"]},"precision":32}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d: %s", resp.StatusCode, body)
	}
	var solved struct {
		Roots []struct {
			Value string `json:"value"`
		} `json:"roots"`
	}
	if err := json.Unmarshal(body, &solved); err != nil {
		t.Fatal(err)
	}
	if len(solved.Roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(solved.Roots))
	}
	if resp, err := http.Get(url + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}

	cancel() // the signal path
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after context cancellation")
	}
	if !strings.Contains(out.String(), "rootd: drained") {
		t.Errorf("missing drain log; stderr:\n%s", out.String())
	}
	http.DefaultClient.CloseIdleConnections()
}

// TestRunBadFlags checks flag errors surface as errors (main exits 2).
func TestRunBadFlags(t *testing.T) {
	var out lineWriter
	if err := run(context.Background(), []string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run(context.Background(), []string{"-profile", "quantum"}, &out); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.256.256.256:99999"}, &out); err == nil {
		t.Fatal("unlistenable address accepted")
	}
	if err := run(context.Background(), []string{"-h"}, &out); !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
}

// Command rootd serves root-finding over HTTP: POST /v1/solve accepts
// a polynomial (ascending decimal coefficients) or a symmetric integer
// matrix and returns µ-approximations of all real roots/eigenvalues as
// exact rationals plus decimal renderings. Solves run on a shared pool
// with bounded per-solve parallelism behind cost-model admission
// control, per-tenant rate limits, fair queuing, and a deduplicating
// LRU result cache; /metrics, /debug/flight, /debug/requests,
// /debug/traces, /debug/tenants, and /debug/pprof expose the telemetry
// hub. SIGINT/SIGTERM drain gracefully: in-flight solves finish under
// -drain-timeout, then the process exits.
//
// Every solve is traced (bounded span capture) and tail-sampled: the
// trace is retained in /debug/traces when the solve errored, exceeded
// its budget, ran slower than the rolling -tail-quantile, parallelized
// below -tail-min-efficiency, or carried an X-Debug-Trace header.
// Retained traces download as Chrome trace-event JSON from
// /debug/traces/<seq>. Per-tenant usage (bit ops, solve seconds, cache
// hits, rejections, retained traces) accumulates in /debug/tenants and
// the rootd_tenant_* metric families.
//
// Every request carries an end-to-end ID: the client's X-Request-Id
// header (or a generated one), echoed in the response header and body
// and stamped on every observability sink the solve touches — the
// structured solve log, flight-recorder events, latency-histogram
// exemplars on /metrics, the /debug/requests inspector, and trace
// spans. One ID recovers a request from any of them.
//
// Example:
//
//	rootd -addr 127.0.0.1:8361 &
//	curl -s http://127.0.0.1:8361/v1/solve \
//	  -H 'X-Request-Id: demo-1' \
//	  -d '{"poly":{"coeffs":["-2","0","1"]},"precision":64}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"realroots/internal/mp"
	"realroots/internal/server"
	"realroots/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "rootd:", err)
		os.Exit(2)
	}
}

// run starts the server and blocks until ctx is canceled (signal), then
// drains. Split from main so tests drive it with a cancelable context.
func run(ctx context.Context, args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("rootd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:8361", "listen address (host:port; port 0 picks one)")
		concurrent   = fs.Int("concurrent", 0, "concurrent solve slots (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 256, "waiting-request capacity across tenants")
		workers      = fs.Int("workers", 2, "scheduler workers per solve")
		maxInflight  = fs.Int64("max-inflight-bitops", 0, "admission budget: estimated bit ops in flight (0 = 1e12)")
		solveBitOps  = fs.Int64("solve-max-bitops", 0, "per-solve bit-operation ceiling (0 = unlimited)")
		solveTimeout = fs.Duration("solve-timeout", 60*time.Second, "per-solve wall-time ceiling")
		precision    = fs.Uint("precision", 32, "default output precision µ")
		profileName  = fs.String("profile", "paper", "default arithmetic profile: paper|fast")
		rate         = fs.Float64("rate", 0, "per-tenant requests/second (0 = unlimited)")
		burst        = fs.Float64("burst", 8, "per-tenant burst size")
		cacheSize    = fs.Int("cache", 256, "LRU result-cache entries (-1 disables)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "in-flight deadline on shutdown")
		quiet        = fs.Bool("quiet", false, "suppress the structured solve log")
		traceStore   = fs.Int("trace-store", 0, "retained-trace ring capacity (0 = 64; -1 disables the store)")
		traceSpans   = fs.Int("trace-max-spans", 0, "per-lane span cap for always-on solve tracing (0 = 4096)")
		tailQuantile = fs.Float64("tail-quantile", 0, "rolling latency quantile above which traces are retained (0 = 0.95; >=1 disables slow retention)")
		tailMinEff   = fs.Float64("tail-min-efficiency", 0, "parallel-efficiency floor below which traces are retained (0 = 0.25; negative disables)")
		noTrace      = fs.Bool("no-trace", false, "disable always-on solve tracing (tail sampling and efficiency gauges stop)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := mp.ParseProfile(*profileName)
	if err != nil {
		return err
	}

	var logger *slog.Logger
	if !*quiet {
		logger = slog.New(slog.NewTextHandler(stderr, nil))
	}
	srv := server.New(server.Config{
		MaxConcurrent:     *concurrent,
		MaxQueue:          *queue,
		WorkersPerSolve:   *workers,
		MaxInflightBitOps: *maxInflight,
		SolveMaxBitOps:    *solveBitOps,
		SolveTimeout:      *solveTimeout,
		DefaultPrecision:  *precision,
		DefaultProfile:    profile,
		RatePerSec:        *rate,
		Burst:             *burst,
		CacheEntries:      *cacheSize,
		TraceMaxSpans:     *traceSpans,
		DisableTracing:    *noTrace,
		Telemetry: telemetry.New(telemetry.Config{
			Logger:             logger,
			TraceStoreCapacity: *traceStore,
			Tail: telemetry.TailConfig{
				Quantile:      *tailQuantile,
				MinEfficiency: *tailMinEff,
			},
		}),
		Logger: logger,
	})
	running, err := srv.ListenAndServe(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "rootd: listening on %s\n", running.URL())

	<-ctx.Done()
	fmt.Fprintf(stderr, "rootd: draining (deadline %s)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := running.Close(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(stderr, "rootd: drained, bye")
	return nil
}

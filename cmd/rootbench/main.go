// Command rootbench regenerates the paper's tables and figures (see
// DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	rootbench -exp table2                 # one experiment, quick grid
//	rootbench -exp all -full              # everything on the paper's full grid
//	rootbench -exp speedups -degrees 35,50,70 -procs 1,2,4,8,16 -mus 4,32
//	rootbench -exp conformance            # differential-oracle sweep (≥200 cases)
//	rootbench -exp soak -telemetry :9090  # sustained workload with live /metrics
//	rootbench -exp loadtest -load-out load.json   # drive rootd (in-process or -server URL), report p50/p99/throughput
//	rootbench -compare old.json new.json  # bench regression gate over two grid snapshots
//
// The full grid (degrees up to 70, all µ, all worker counts, 3 seeds)
// takes a while — the paper's own Table 2 runs alone are hours of 1991
// machine time; on modern hardware expect minutes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"realroots/internal/harness"
	"realroots/internal/mp"
	"realroots/internal/telemetry"
)

// simulateNotice is emitted as a header comment at the top of the
// output (so saved result files are self-describing) whenever the
// timing experiments run in virtual-time simulation mode.
const simulateNotice = "# rootbench: multiprocessor experiments use virtual-time simulation (see DESIGN.md); pass -simulate=false for wall-clock timing"

func main() {
	// First SIGINT/SIGTERM cancels the sweep cleanly (partial results
	// stay valid, see the "# interrupted" footer); a second one hits the
	// default handler because NotifyContext unregisters after firing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	return runCtx(context.Background(), args, stdout, stderr)
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("rootbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment id: "+strings.Join(harness.Names(), ", ")+", or all")
		full     = fs.Bool("full", false, "use the paper's full grid (degrees 10-70, µ 4-32, P 1-16, 3 seeds)")
		degrees  = fs.String("degrees", "", "comma-separated degree list (overrides the grid)")
		mus      = fs.String("mus", "", "comma-separated µ list")
		procs    = fs.String("procs", "", "comma-separated worker-count list")
		seeds    = fs.String("seeds", "", "comma-separated seed list")
		reps     = fs.Int("reps", 0, "timing repetitions per cell (minimum is reported)")
		checks   = fs.Int("checks", 0, "cap the conformance experiment's case count (0 = full suite)")
		profile  = fs.String("profile", "schoolbook", "arithmetic profile: schoolbook (the paper's cost model), fast (subquadratic kernels), or both (grid JSON only: measure every cell under each)")
		simulate = fs.Bool("simulate", runtime.NumCPU() == 1,
			"simulate P virtual processors from the real task graph (for the times/speedups experiments on hosts with few cores; defaults to true on single-core hosts)")
		parmul = fs.Bool("parmul", false,
			"with -profile fast and real workers: split huge balanced products into scheduler panel tasks (bit-identical results; ignored under -simulate)")
		traceOut   = fs.String("trace", "", "run one traced solve of the grid's largest cell and write Chrome trace-event JSON (chrome://tracing, Perfetto) to this file; prints a utilization summary and skips -exp")
		jsonOut    = fs.String("json", "", "run the grid and write a machine-readable JSON report (schema "+harness.GridSchema+") to this file ('-' for stdout); skips -exp")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile (go tool pprof) to this file on exit")

		telemetryAddr = fs.String("telemetry", "", "serve /metrics, /debug/flight, and /debug/pprof on this address (e.g. :9090) for the duration of the run")
		slogOut       = fs.String("slog", "", "write the structured solve log (JSON lines) to this file ('-' for stderr)")
		flightOut     = fs.String("flight-out", "", "write the flight-recorder dump (JSON, schema "+telemetry.FlightSchema+") to this file on exit")
		metricsOut    = fs.String("metrics-out", "", "write the final Prometheus text exposition to this file on exit")
		soakSolves    = fs.Int("soak-solves", 0, "soak experiment: stop after this many solves (default "+strconv.Itoa(harness.DefaultSoakSolves)+" when no -soak-seconds)")
		soakSeconds   = fs.Float64("soak-seconds", 0, "soak experiment: stop after this much wall time")

		serverURL   = fs.String("server", "", "loadtest experiment: target a running rootd at this base URL (default: in-process server)")
		loadReqs    = fs.Int("load-requests", 0, "loadtest experiment: requests per grid cell (default 3)")
		loadClients = fs.Int("load-concurrency", 0, "loadtest experiment: concurrent client goroutines (default 8)")
		loadTenants = fs.Int("load-tenants", 0, "loadtest experiment: tenants the requests are spread over (default 4)")
		loadOut     = fs.String("load-out", "", "loadtest experiment: write a "+harness.GridSchema+" JSON report with latency percentiles to this file ('-' for stdout)")

		compare       = fs.Bool("compare", false, "compare two bench-grid JSON snapshots (old.json new.json as positional args), print a regression table, and exit nonzero on regressions; skips -exp")
		threshold     = fs.Float64("threshold", 25, "with -compare: fail on any matched cell regressing more than this percentage")
		compareMetric = fs.String("compare-metric", "both", "with -compare: which measurement gates ("+strings.Join(harness.CompareMetrics, ", ")+"); bitops is deterministic across machines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// The compare gate is pure file diffing — no solves, no telemetry.
	if *compare {
		return runCompare(fs.Args(), *threshold, *compareMetric, stdout, stderr)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "rootbench: unexpected arguments %q (positional args are only used with -compare)\n", fs.Args())
		return 2
	}

	cfg := harness.Quick()
	if *full {
		cfg = harness.Default()
	}
	cfg.Ctx = ctx
	cfg.Simulate = *simulate
	cfg.ParallelMul = *parmul
	switch *profile {
	case "both":
		cfg.GridProfiles = []mp.Profile{mp.Schoolbook, mp.Fast}
	default:
		pr, err := mp.ParseProfile(*profile)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		cfg.Profile = pr
	}
	if *degrees != "" {
		v, err := parseInts(*degrees)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		cfg.Degrees = v
	}
	if *mus != "" {
		v, err := parseInts(*mus)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		var us []uint
		for _, x := range v {
			us = append(us, uint(x))
		}
		cfg.Mus = us
	}
	if *procs != "" {
		v, err := parseInts(*procs)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		cfg.Procs = v
	}
	if *seeds != "" {
		v, err := parseInts(*seeds)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		var ss []int64
		for _, x := range v {
			ss = append(ss, int64(x))
		}
		cfg.Seeds = ss
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	cfg.ConformanceChecks = *checks
	cfg.SoakSolves = *soakSolves
	if *soakSeconds > 0 {
		cfg.SoakDuration = time.Duration(*soakSeconds * float64(time.Second))
	}
	cfg.ServerURL = *serverURL
	cfg.LoadRequests = *loadReqs
	cfg.LoadConcurrency = *loadClients
	cfg.LoadTenants = *loadTenants
	if *loadOut != "" {
		if *loadOut == "-" {
			cfg.LoadJSON = stdout
		} else {
			f, err := os.Create(*loadOut)
			if err != nil {
				fmt.Fprintf(stderr, "rootbench: %v\n", err)
				return 2
			}
			defer f.Close()
			cfg.LoadJSON = f
		}
	}

	// Telemetry hub: created when any telemetry flag asks for it. All
	// operational output goes to stderr so -json '-' stdout stays pure.
	// (The soak experiment creates its own private hub when none is
	// configured, so it works without these flags too.)
	if *telemetryAddr != "" || *slogOut != "" || *flightOut != "" || *metricsOut != "" {
		tcfg := telemetry.Config{}
		if *slogOut != "" {
			lw := io.Writer(stderr)
			if *slogOut != "-" {
				f, err := os.Create(*slogOut)
				if err != nil {
					fmt.Fprintf(stderr, "rootbench: %v\n", err)
					return 2
				}
				defer f.Close()
				lw = f
			}
			tcfg.Logger = slog.New(slog.NewJSONHandler(lw, nil))
		}
		tel := telemetry.New(tcfg)
		cfg.Telemetry = tel

		if *telemetryAddr != "" {
			srv, err := tel.Serve(*telemetryAddr)
			if err != nil {
				fmt.Fprintf(stderr, "rootbench: %v\n", err)
				return 2
			}
			fmt.Fprintf(stderr, "rootbench: telemetry on http://%s (/metrics, /debug/flight, /debug/pprof/)\n", srv.Addr())
			defer srv.Close()
		}

		// SIGQUIT dumps the flight recorder to stderr without stopping
		// the run.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		defer signal.Stop(quit)
		go func() {
			for range quit {
				fmt.Fprintln(stderr, "rootbench: SIGQUIT flight dump:")
				if err := tel.Flight().Dump().WriteJSON(stderr); err != nil {
					fmt.Fprintf(stderr, "rootbench: flight dump: %v\n", err)
				}
			}
		}()

		defer func() {
			if *metricsOut != "" {
				if err := writeFileWith(*metricsOut, tel.Registry().WritePrometheus); err != nil {
					fmt.Fprintf(stderr, "rootbench: %v\n", err)
					if code == 0 {
						code = 1
					}
				}
			}
			if *flightOut != "" {
				if err := writeFileWith(*flightOut, tel.Flight().Dump().WriteJSON); err != nil {
					fmt.Fprintf(stderr, "rootbench: %v\n", err)
					if code == 0 {
						code = 1
					}
				}
			} else if code == 1 {
				// A failed run with no dump destination still leaves its
				// last moments on stderr for postmortem.
				fmt.Fprintln(stderr, "rootbench: flight dump (run failed):")
				if err := tel.Flight().Dump().WriteJSON(stderr); err != nil {
					fmt.Fprintf(stderr, "rootbench: flight dump: %v\n", err)
				}
			}
		}()
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(stderr, "rootbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "rootbench: %v\n", err)
			}
		}()
	}

	// Observability modes replace the experiment sweep.
	if *traceOut != "" || *jsonOut != "" {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(stderr, "rootbench: %v\n", err)
				return 2
			}
			err = harness.TraceRun(stdout, cfg, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if code := reportErr(err, "trace", stdout, stderr); code != 0 {
				return code
			}
		}
		if *jsonOut != "" {
			w := stdout
			var f *os.File
			if *jsonOut != "-" {
				var err error
				f, err = os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintf(stderr, "rootbench: %v\n", err)
					return 2
				}
				w = f
			}
			err := harness.WriteGridJSON(w, cfg)
			if f != nil {
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if code := reportErr(err, "json", stdout, stderr); code != 0 {
				return code
			}
		}
		return 0
	}

	if *simulate {
		// Header comment so saved result files are self-describing; the
		// JSON modes carry the same fact in their "simulate" field.
		fmt.Fprintln(stdout, simulateNotice)
	}
	names := []string{*exp}
	if *exp == "all" {
		names = harness.Names()
	}
	for _, name := range names {
		runExp, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(stderr, "rootbench: unknown experiment %q (have: %s)\n", name, strings.Join(harness.Names(), ", "))
			return 2
		}
		if code := reportErr(runExp(stdout, cfg), name, stdout, stderr); code != 0 {
			return code
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

// reportErr maps an experiment error to the process exit code: 0 on
// success, 130 on a clean interruption (partial results remain valid),
// 1 otherwise.
func reportErr(err error, name string, stdout, stderr io.Writer) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, harness.ErrInterrupted) {
		// The rows flushed so far are complete, valid results; mark the
		// file as a truncated sweep and use the conventional 128+SIGINT
		// exit status.
		fmt.Fprintln(stdout, "# interrupted: sweep stopped early, results above are partial")
		fmt.Fprintf(stderr, "rootbench: %s: interrupted\n", name)
		return 130
	}
	fmt.Fprintf(stderr, "rootbench: %s: %v\n", name, err)
	return 1
}

// runCompare implements the -compare gate: load two bench-grid/v1
// snapshots, print the per-cell regression table, and exit 1 when any
// matched cell's gated metric regressed past the threshold.
func runCompare(args []string, threshold float64, metric string, stdout, stderr io.Writer) int {
	valid := false
	for _, m := range harness.CompareMetrics {
		if metric == m {
			valid = true
			break
		}
	}
	if !valid {
		fmt.Fprintf(stderr, "rootbench: unknown -compare-metric %q (have: %s)\n", metric, strings.Join(harness.CompareMetrics, ", "))
		return 2
	}
	if len(args) != 2 {
		fmt.Fprintln(stderr, "rootbench: -compare needs exactly two snapshot files: old.json new.json")
		return 2
	}
	load := func(path string) (*harness.GridReport, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		rep, err := harness.LoadGridJSON(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return rep, nil
	}
	oldRep, err := load(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "rootbench: %v\n", err)
		return 2
	}
	newRep, err := load(args[1])
	if err != nil {
		fmt.Fprintf(stderr, "rootbench: %v\n", err)
		return 2
	}
	n, err := harness.CompareGrids(oldRep, newRep).WriteTable(stdout, threshold, metric)
	if err != nil {
		fmt.Fprintf(stderr, "rootbench: compare: %v\n", err)
		return 1
	}
	if n > 0 {
		return 1
	}
	return 0
}

// writeFileWith creates path and streams write into it, preferring the
// write error over the close error.
func writeFileWith(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// Command rootbench regenerates the paper's tables and figures (see
// DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	rootbench -exp table2                 # one experiment, quick grid
//	rootbench -exp all -full              # everything on the paper's full grid
//	rootbench -exp speedups -degrees 35,50,70 -procs 1,2,4,8,16 -mus 4,32
//	rootbench -exp conformance            # differential-oracle sweep (≥200 cases)
//
// The full grid (degrees up to 70, all µ, all worker counts, 3 seeds)
// takes a while — the paper's own Table 2 runs alone are hours of 1991
// machine time; on modern hardware expect minutes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"realroots/internal/harness"
	"realroots/internal/mp"
)

// simulateNotice is emitted as a header comment at the top of the
// output (so saved result files are self-describing) whenever the
// timing experiments run in virtual-time simulation mode.
const simulateNotice = "# rootbench: multiprocessor experiments use virtual-time simulation (see DESIGN.md); pass -simulate=false for wall-clock timing"

func main() {
	// First SIGINT/SIGTERM cancels the sweep cleanly (partial results
	// stay valid, see the "# interrupted" footer); a second one hits the
	// default handler because NotifyContext unregisters after firing.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(runCtx(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	return runCtx(context.Background(), args, stdout, stderr)
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rootbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment id: "+strings.Join(harness.Names(), ", ")+", or all")
		full     = fs.Bool("full", false, "use the paper's full grid (degrees 10-70, µ 4-32, P 1-16, 3 seeds)")
		degrees  = fs.String("degrees", "", "comma-separated degree list (overrides the grid)")
		mus      = fs.String("mus", "", "comma-separated µ list")
		procs    = fs.String("procs", "", "comma-separated worker-count list")
		seeds    = fs.String("seeds", "", "comma-separated seed list")
		reps     = fs.Int("reps", 0, "timing repetitions per cell (minimum is reported)")
		checks   = fs.Int("checks", 0, "cap the conformance experiment's case count (0 = full suite)")
		profile  = fs.String("profile", "schoolbook", "arithmetic profile: schoolbook (the paper's cost model), fast (subquadratic kernels), or both (grid JSON only: measure every cell under each)")
		simulate = fs.Bool("simulate", runtime.NumCPU() == 1,
			"simulate P virtual processors from the real task graph (for the times/speedups experiments on hosts with few cores; defaults to true on single-core hosts)")
		traceOut   = fs.String("trace", "", "run one traced solve of the grid's largest cell and write Chrome trace-event JSON (chrome://tracing, Perfetto) to this file; prints a utilization summary and skips -exp")
		jsonOut    = fs.String("json", "", "run the grid and write a machine-readable JSON report (schema "+harness.GridSchema+") to this file ('-' for stdout); skips -exp")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile (go tool pprof) to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := harness.Quick()
	if *full {
		cfg = harness.Default()
	}
	cfg.Ctx = ctx
	cfg.Simulate = *simulate
	switch *profile {
	case "both":
		cfg.GridProfiles = []mp.Profile{mp.Schoolbook, mp.Fast}
	default:
		pr, err := mp.ParseProfile(*profile)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		cfg.Profile = pr
	}
	if *degrees != "" {
		v, err := parseInts(*degrees)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		cfg.Degrees = v
	}
	if *mus != "" {
		v, err := parseInts(*mus)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		var us []uint
		for _, x := range v {
			us = append(us, uint(x))
		}
		cfg.Mus = us
	}
	if *procs != "" {
		v, err := parseInts(*procs)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		cfg.Procs = v
	}
	if *seeds != "" {
		v, err := parseInts(*seeds)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		var ss []int64
		for _, x := range v {
			ss = append(ss, int64(x))
		}
		cfg.Seeds = ss
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}
	cfg.ConformanceChecks = *checks

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rootbench: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(stderr, "rootbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "rootbench: %v\n", err)
			}
		}()
	}

	// Observability modes replace the experiment sweep.
	if *traceOut != "" || *jsonOut != "" {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(stderr, "rootbench: %v\n", err)
				return 2
			}
			err = harness.TraceRun(stdout, cfg, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if code := reportErr(err, "trace", stdout, stderr); code != 0 {
				return code
			}
		}
		if *jsonOut != "" {
			w := stdout
			var f *os.File
			if *jsonOut != "-" {
				var err error
				f, err = os.Create(*jsonOut)
				if err != nil {
					fmt.Fprintf(stderr, "rootbench: %v\n", err)
					return 2
				}
				w = f
			}
			err := harness.WriteGridJSON(w, cfg)
			if f != nil {
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if code := reportErr(err, "json", stdout, stderr); code != 0 {
				return code
			}
		}
		return 0
	}

	if *simulate {
		// Header comment so saved result files are self-describing; the
		// JSON modes carry the same fact in their "simulate" field.
		fmt.Fprintln(stdout, simulateNotice)
	}
	names := []string{*exp}
	if *exp == "all" {
		names = harness.Names()
	}
	for _, name := range names {
		runExp, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(stderr, "rootbench: unknown experiment %q (have: %s)\n", name, strings.Join(harness.Names(), ", "))
			return 2
		}
		if code := reportErr(runExp(stdout, cfg), name, stdout, stderr); code != 0 {
			return code
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

// reportErr maps an experiment error to the process exit code: 0 on
// success, 130 on a clean interruption (partial results remain valid),
// 1 otherwise.
func reportErr(err error, name string, stdout, stderr io.Writer) int {
	if err == nil {
		return 0
	}
	if errors.Is(err, harness.ErrInterrupted) {
		// The rows flushed so far are complete, valid results; mark the
		// file as a truncated sweep and use the conventional 128+SIGINT
		// exit status.
		fmt.Fprintln(stdout, "# interrupted: sweep stopped early, results above are partial")
		fmt.Fprintf(stderr, "rootbench: %s: interrupted\n", name)
		return 130
	}
	fmt.Fprintf(stderr, "rootbench: %s: %v\n", name, err)
	return 1
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// Command rootbench regenerates the paper's tables and figures (see
// DESIGN.md §3 for the experiment index).
//
// Usage:
//
//	rootbench -exp table2                 # one experiment, quick grid
//	rootbench -exp all -full              # everything on the paper's full grid
//	rootbench -exp speedups -degrees 35,50,70 -procs 1,2,4,8,16 -mus 4,32
//
// The full grid (degrees up to 70, all µ, all worker counts, 3 seeds)
// takes a while — the paper's own Table 2 runs alone are hours of 1991
// machine time; on modern hardware expect minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"realroots/internal/harness"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(harness.Names(), ", ")+", or all")
		full     = flag.Bool("full", false, "use the paper's full grid (degrees 10-70, µ 4-32, P 1-16, 3 seeds)")
		degrees  = flag.String("degrees", "", "comma-separated degree list (overrides the grid)")
		mus      = flag.String("mus", "", "comma-separated µ list")
		procs    = flag.String("procs", "", "comma-separated worker-count list")
		seeds    = flag.String("seeds", "", "comma-separated seed list")
		reps     = flag.Int("reps", 0, "timing repetitions per cell (minimum is reported)")
		simulate = flag.Bool("simulate", runtime.NumCPU() == 1,
			"simulate P virtual processors from the real task graph (for the times/speedups experiments on hosts with few cores; defaults to true on single-core hosts)")
	)
	flag.Parse()

	cfg := harness.Quick()
	if *full {
		cfg = harness.Default()
	}
	cfg.Simulate = *simulate
	if *simulate {
		fmt.Fprintln(os.Stderr, "rootbench: multiprocessor experiments use virtual-time simulation (see DESIGN.md); pass -simulate=false for wall-clock timing")
	}
	if *degrees != "" {
		cfg.Degrees = parseInts(*degrees)
	}
	if *mus != "" {
		var us []uint
		for _, v := range parseInts(*mus) {
			us = append(us, uint(v))
		}
		cfg.Mus = us
	}
	if *procs != "" {
		cfg.Procs = parseInts(*procs)
	}
	if *seeds != "" {
		var ss []int64
		for _, v := range parseInts(*seeds) {
			ss = append(ss, int64(v))
		}
		cfg.Seeds = ss
	}
	if *reps > 0 {
		cfg.Reps = *reps
	}

	names := []string{*exp}
	if *exp == "all" {
		names = harness.Names()
	}
	for _, name := range names {
		run, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "rootbench: unknown experiment %q (have: %s)\n", name, strings.Join(harness.Names(), ", "))
			os.Exit(2)
		}
		if err := run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rootbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rootbench: bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

package main

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"
)

func runBench(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// fastArgs keeps a real experiment run small enough for a unit test.
var fastArgs = []string{"-degrees", "6", "-mus", "4", "-procs", "1", "-seeds", "1"}

func TestSimulateNoticeIsAStdoutHeader(t *testing.T) {
	args := append([]string{"-exp", "phases", "-simulate"}, fastArgs...)
	code, out, errOut := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.HasPrefix(out, simulateNotice+"\n") {
		t.Errorf("notice is not the first stdout line:\n%s", out)
	}
	if strings.Contains(errOut, "virtual-time") {
		t.Errorf("notice still on stderr: %q", errOut)
	}
	// Result files stay machine-readable: the notice is a # comment.
	if !strings.HasPrefix(simulateNotice, "# ") {
		t.Errorf("notice %q is not a comment line", simulateNotice)
	}
}

func TestSimulateOffByDefaultOnMulticore(t *testing.T) {
	if runtime.NumCPU() == 1 {
		t.Skip("simulation defaults to on for single-core hosts")
	}
	args := append([]string{"-exp", "phases"}, fastArgs...)
	code, out, _ := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.Contains(out, "virtual-time") {
		t.Errorf("notice printed without -simulate:\n%s", out)
	}
}

func TestConformanceExperiment(t *testing.T) {
	code, out, errOut := runBench(t, "-exp", "conformance", "-checks", "10", "-mus", "4", "-simulate=false")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "10 cases, 0 mismatches") {
		t.Errorf("unexpected conformance summary:\n%s", out)
	}
}

func TestExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"unknown experiment", []string{"-exp", "nope"}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad degrees list", []string{"-exp", "phases", "-degrees", "6,x"}, 2},
		{"bad mus list", []string{"-exp", "phases", "-mus", "4.5"}, 2},
	} {
		code, _, errOut := runBench(t, tc.args...)
		if code != tc.want {
			t.Errorf("%s: exit %d, want %d", tc.name, code, tc.want)
		}
		if errOut == "" {
			t.Errorf("%s: no diagnostic on stderr", tc.name)
		}
	}
}

func TestInterruptedSweepFlushesPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the "SIGINT" arrives before the first grid cell
	var out, errBuf bytes.Buffer
	args := append([]string{"-exp", "table2", "-simulate=false"}, fastArgs...)
	code := runCtx(ctx, args, &out, &errBuf)
	if code != 130 {
		t.Fatalf("exit %d, want 130 (stderr %q)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "# interrupted") {
		t.Errorf("stdout missing the # interrupted footer:\n%s", out.String())
	}
	if !strings.Contains(errBuf.String(), "interrupted") {
		t.Errorf("stderr missing the interruption diagnostic: %q", errBuf.String())
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 1, 2 ,,3 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("1,two"); err == nil {
		t.Fatal("bad list accepted")
	}
}

package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"realroots/internal/harness"
	"realroots/internal/telemetry"
)

func TestSoakWithTelemetryOutputs(t *testing.T) {
	dir := t.TempDir()
	metricsPath := filepath.Join(dir, "metrics.prom")
	flightPath := filepath.Join(dir, "flight.json")
	slogPath := filepath.Join(dir, "solve.log")

	args := append([]string{
		"-exp", "soak", "-soak-solves", "4", "-simulate",
		"-metrics-out", metricsPath, "-flight-out", flightPath, "-slog", slogPath,
	}, fastArgs...)
	code, out, errOut := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "4 solves in") {
		t.Fatalf("soak summary missing:\n%s", out)
	}

	metricsData, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatalf("metrics-out: %v", err)
	}
	if err := telemetry.ValidateExposition(metricsData); err != nil {
		t.Fatalf("metrics-out invalid: %v", err)
	}
	if !strings.Contains(string(metricsData), `realroots_solves_total{outcome="ok"} 4`) {
		t.Fatalf("metrics-out missing solve counts:\n%s", metricsData)
	}

	flightData, err := os.ReadFile(flightPath)
	if err != nil {
		t.Fatalf("flight-out: %v", err)
	}
	if err := telemetry.ValidateDumpJSON(flightData); err != nil {
		t.Fatalf("flight-out invalid: %v", err)
	}

	slogData, err := os.ReadFile(slogPath)
	if err != nil {
		t.Fatalf("slog: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(slogData)), "\n")
	if len(lines) < 8 { // 4 solves × (start + finish)
		t.Fatalf("structured log has %d lines, want >= 8:\n%s", len(lines), slogData)
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line not JSON: %q: %v", line, err)
		}
	}
}

// TestTelemetryServerFlag checks the -telemetry flag binds, announces
// its address on stderr (stdout stays reserved for results), and shuts
// down cleanly with the run.
func TestTelemetryServerFlag(t *testing.T) {
	dir := t.TempDir()
	args := append([]string{
		"-exp", "soak", "-soak-solves", "2", "-simulate",
		"-telemetry", "127.0.0.1:0",
		"-metrics-out", filepath.Join(dir, "m.prom"),
	}, fastArgs...)
	code, _, errOut := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(errOut, "telemetry on http://127.0.0.1:") {
		t.Fatalf("bound address not announced on stderr: %q", errOut)
	}
}

// TestTelemetryEndpointsLive starts a hub-served soak long enough to
// scrape /metrics and /debug/flight over HTTP while it runs.
func TestTelemetryEndpointsLive(t *testing.T) {
	tel := telemetry.New(telemetry.Config{})
	srv, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()

	cfg := harness.Quick()
	cfg.Degrees, cfg.Mus, cfg.Procs, cfg.Seeds = []int{6}, []uint{4}, []int{1}, []int64{1}
	cfg.Simulate = true
	cfg.SoakSolves = 2
	cfg.Telemetry = tel
	var out strings.Builder
	if err := harness.Soak(&out, cfg); err != nil {
		t.Fatalf("Soak: %v", err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")

	genArgs := append([]string{"-json", oldPath, "-simulate"}, fastArgs...)
	if code, _, errOut := runBench(t, genArgs...); code != 0 {
		t.Fatalf("grid generation exit %d, stderr %q", code, errOut)
	}
	data, err := os.ReadFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Identical snapshots pass.
	code, out, errOut := runBench(t, "-compare", oldPath, newPath)
	if code != 0 {
		t.Fatalf("identical compare exit %d, stderr %q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Fatalf("compare table:\n%s", out)
	}

	// Inflate bit ops 2x -> regression on the deterministic metric.
	rep, err := harness.LoadGridJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	rep.Cells[0].BitOps *= 2
	tampered, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ = runBench(t, "-compare", "-compare-metric", "bitops", "-threshold", "25", oldPath, newPath)
	if code != 1 {
		t.Fatalf("regressed compare exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("compare table missing REGRESSION:\n%s", out)
	}

	// A 200% threshold tolerates the 100% jump.
	if code, _, _ := runBench(t, "-compare", "-threshold", "200", oldPath, newPath); code != 0 {
		t.Fatalf("lenient threshold still failed (exit %d)", code)
	}
}

func TestCompareUsageErrors(t *testing.T) {
	if code, _, errOut := runBench(t, "-compare", "only-one.json"); code != 2 || !strings.Contains(errOut, "exactly two") {
		t.Fatalf("one-arg compare: exit %d stderr %q", code, errOut)
	}
	if code, _, errOut := runBench(t, "-compare", "-compare-metric", "vibes", "a.json", "b.json"); code != 2 || !strings.Contains(errOut, "compare-metric") {
		t.Fatalf("bad metric: exit %d stderr %q", code, errOut)
	}
	if code, _, errOut := runBench(t, "-compare", "missing-a.json", "missing-b.json"); code != 2 || !strings.Contains(errOut, "missing-a.json") {
		t.Fatalf("missing file: exit %d stderr %q", code, errOut)
	}
	if code, _, errOut := runBench(t, "stray-positional"); code != 2 || !strings.Contains(errOut, "unexpected arguments") {
		t.Fatalf("stray positional: exit %d stderr %q", code, errOut)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"realroots/internal/harness"
	"realroots/internal/trace"
)

var fastGrid = []string{"-degrees", "6,8", "-mus", "4", "-procs", "1,2", "-seeds", "1"}

func TestTraceModeWritesChromeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	args := append([]string{"-trace", path}, fastGrid...)
	code, out, errOut := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(data); err != nil {
		t.Errorf("emitted trace invalid: %v", err)
	}
	for _, want := range []string{"Traced run:", "Utilization summary", "Pipeline phases", "Workers:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestJSONModeWritesValidGrid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.json")
	args := append([]string{"-json", path}, fastGrid...)
	code, _, errOut := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := harness.ValidateGridJSON(data); err != nil {
		t.Errorf("emitted grid json invalid: %v", err)
	}
	// 2 degrees × 1 µ × 2 procs = 4 cells.
	if n := strings.Count(string(data), `"degree"`); n != 4 {
		t.Errorf("grid has %d cells, want 4", n)
	}
}

// TestJSONToStdoutIsPure pins that '-json -' emits nothing but JSON on
// stdout — no simulate notice, no experiment banners.
func TestJSONToStdoutIsPure(t *testing.T) {
	args := append([]string{"-json", "-", "-simulate"}, fastGrid...)
	code, out, errOut := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if err := harness.ValidateGridJSON([]byte(out)); err != nil {
		t.Errorf("stdout is not pure grid json: %v\n%s", err, out)
	}
}

func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	args := append([]string{"-exp", "phases", "-cpuprofile", cpu, "-memprofile", mem, "-simulate=false"}, fastArgs...)
	code, _, errOut := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestUtilizationExperiment(t *testing.T) {
	args := append([]string{"-exp", "utilization", "-simulate=false"}, fastArgs...)
	code, out, errOut := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	for _, want := range []string{"Utilization: traced sequential run", "computepoly", "interval", "control"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

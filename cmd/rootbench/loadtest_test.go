package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"realroots/internal/harness"
)

// TestLoadtestCLI runs the loadtest experiment end to end through the
// CLI: summary on stdout, a valid bench-grid report in -load-out, and
// that report accepted by the -compare gate against itself.
func TestLoadtestCLI(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "load.json")
	args := append([]string{"-exp", "loadtest", "-load-out", out, "-load-requests", "2"},
		"-degrees", "6,8", "-mus", "8", "-procs", "1,2", "-seeds", "1")
	code, stdout, stderr := runBench(t, args...)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "loadtest:") || !strings.Contains(stdout, "0 errors") {
		t.Fatalf("summary missing:\n%s", stdout)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := harness.ValidateGridJSON(data); err != nil {
		t.Fatalf("-load-out report invalid: %v\n%s", err, data)
	}

	// The latency report must flow through the regression gate unchanged.
	code, cmpOut, cmpErr := runBench(t, "-compare", out, out)
	if code != 0 {
		t.Fatalf("-compare rejected the loadtest report: exit %d\nstdout:\n%s\nstderr:\n%s", code, cmpOut, cmpErr)
	}
}

// TestLoadtestCLIBadServer checks a dead -server URL surfaces as a
// failing run, not a hang or a zero-exit with garbage.
func TestLoadtestCLIBadServer(t *testing.T) {
	args := []string{"-exp", "loadtest", "-server", "http://127.0.0.1:1",
		"-degrees", "6", "-mus", "4", "-procs", "1", "-seeds", "1", "-load-requests", "1"}
	code, _, stderr := runBench(t, args...)
	if code == 0 {
		t.Fatal("loadtest against a dead server exited 0")
	}
	if !strings.Contains(stderr, "loadtest") {
		t.Fatalf("stderr does not name the failing experiment: %q", stderr)
	}
}

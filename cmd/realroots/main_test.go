package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseMatrix(t *testing.T) {
	rows, err := parseMatrix("2 1; 1 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][1] != 1 || rows[1][1] != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Trailing separator and extra spaces are tolerated.
	rows, err = parseMatrix(" 1 0 ;  0 1 ; ")
	if err != nil || len(rows) != 2 {
		t.Fatalf("rows = %v err = %v", rows, err)
	}
	if _, err := parseMatrix(""); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := parseMatrix("1 x; 2 3"); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestReadCoeffFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "coeffs.txt")
	content := "# p(x) = x^2 - 2\n-2\n\n0\n1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	coeffs, err := readCoeffFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(coeffs) != 3 || coeffs[0].Int64() != -2 || coeffs[2].Int64() != 1 {
		t.Fatalf("coeffs = %v", coeffs)
	}
}

func TestReadCoeffFileErrors(t *testing.T) {
	if _, err := readCoeffFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("1\nxyz\n"), 0o644)
	if _, err := readCoeffFile(bad); err == nil {
		t.Error("bad line accepted")
	}
	short := filepath.Join(t.TempDir(), "short.txt")
	os.WriteFile(short, []byte("42\n"), 0o644)
	if _, err := readCoeffFile(short); err == nil {
		t.Error("single coefficient accepted")
	}
}

// Command realroots finds all real roots of an integer polynomial with
// only real roots, printing exact µ-approximations.
//
// Usage:
//
//	realroots [flags] c0 c1 c2 ...        # coefficients, ascending degree
//	realroots -expr 'x^3 - 8x^2 - 23x + 30'
//	realroots -file coeffs.txt [flags]    # coefficients from a file ("-" = stdin)
//	realroots -matrix '2 1; 1 2' [flags]  # eigenvalues of a symmetric matrix
//
// Examples:
//
//	realroots -- -2 0 1                  # x² - 2  →  ±√2
//	realroots -mu 64 -workers 8 -- 30 -23 -8 1
//	realroots -matrix '2 1; 1 2' -digits 6
//	polygen -family hermite -n 12 | realroots -file - -mu 64
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"strconv"
	"strings"

	"realroots"
	"realroots/internal/poly"
)

func main() {
	var (
		mu      = flag.Uint("mu", 32, "precision: roots are reported as 2^-µ·⌈2^µ·x⌉")
		workers = flag.Int("workers", 1, "parallel workers")
		digits  = flag.Int("digits", 10, "decimal digits to display")
		matrix  = flag.String("matrix", "", "symmetric integer matrix, rows separated by ';' (eigenvalue mode)")
		file    = flag.String("file", "", "read coefficients (one per line, ascending degree) from this file; '-' reads stdin")
		expr    = flag.String("expr", "", "polynomial as an expression, e.g. 'x^3 - 8x^2 - 23x + 30'")
		method  = flag.String("method", "hybrid", "interval refinement: hybrid, bisection, or newton")
		exact   = flag.Bool("exact", false, "print exact rationals instead of decimals")
	)
	flag.Parse()

	opts := &realroots.Options{Precision: *mu, Workers: *workers}
	switch *method {
	case "hybrid":
	case "bisection":
		opts.Method = realroots.Bisection
	case "newton":
		opts.Method = realroots.Newton
	default:
		fail("unknown method %q", *method)
	}

	var res *realroots.Result
	var err error
	switch {
	case *matrix != "":
		rows, perr := parseMatrix(*matrix)
		if perr != nil {
			fail("%v", perr)
		}
		res, err = realroots.Eigenvalues(rows, opts)
	case *expr != "":
		p, perr := poly.ParseOrCoeffs(*expr)
		if perr != nil {
			fail("%v", perr)
		}
		coeffs := make([]*big.Int, p.Degree()+1)
		for i := range coeffs {
			coeffs[i] = p.Coeff(i).ToBig()
		}
		res, err = realroots.FindRoots(coeffs, opts)
	case *file != "":
		coeffs, perr := readCoeffFile(*file)
		if perr != nil {
			fail("%v", perr)
		}
		res, err = realroots.FindRoots(coeffs, opts)
	default:
		if flag.NArg() < 2 {
			fail("need at least two coefficients (ascending degree); got %d", flag.NArg())
		}
		coeffs := make([]*big.Int, flag.NArg())
		for i, arg := range flag.Args() {
			v, ok := new(big.Int).SetString(arg, 10)
			if !ok {
				fail("bad coefficient %q", arg)
			}
			coeffs[i] = v
		}
		res, err = realroots.FindRoots(coeffs, opts)
	}
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("degree %d, %d distinct real root(s) at precision 2^-%d (%.3fs)\n",
		res.Degree, res.Distinct, res.Precision, res.Elapsed.Seconds())
	for i, r := range res.Roots {
		val := r.Decimal(*digits)
		if *exact {
			val = r.String()
		}
		if r.Multiplicity > 1 {
			fmt.Printf("  x%-3d = %s  (multiplicity %d)\n", i, val, r.Multiplicity)
		} else {
			fmt.Printf("  x%-3d = %s\n", i, val)
		}
	}
}

func parseMatrix(s string) ([][]int64, error) {
	var rows [][]int64
	for _, rowStr := range strings.Split(s, ";") {
		fields := strings.Fields(rowStr)
		if len(fields) == 0 {
			continue
		}
		row := make([]int64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad matrix entry %q", f)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("empty matrix")
	}
	return rows, nil
}

// readCoeffFile reads one integer coefficient per line (ascending
// degree), skipping blank lines and '#' comments.
func readCoeffFile(path string) ([]*big.Int, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var coeffs []*big.Int
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, ok := new(big.Int).SetString(line, 10)
		if !ok {
			return nil, fmt.Errorf("bad coefficient line %q", line)
		}
		coeffs = append(coeffs, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(coeffs) < 2 {
		return nil, fmt.Errorf("need at least two coefficients, got %d", len(coeffs))
	}
	return coeffs, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "realroots: "+format+"\n", args...)
	os.Exit(1)
}

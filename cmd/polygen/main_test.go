package main

import (
	"bytes"
	"strings"
	"testing"
)

func runPolygen(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestWilkinsonCoefficients(t *testing.T) {
	// (x-1)(x-2) = x² - 3x + 2, ascending order.
	code, out, _ := runPolygen(t, "-family", "wilkinson", "-n", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out != "2\n-3\n1\n" {
		t.Fatalf("output %q", out)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	_, a, _ := runPolygen(t, "-family", "charpoly", "-n", "8", "-seed", "3")
	_, b, _ := runPolygen(t, "-family", "charpoly", "-n", "8", "-seed", "3")
	if a != b {
		t.Fatal("same seed produced different output")
	}
	if lines := strings.Count(a, "\n"); lines != 9 {
		t.Fatalf("%d coefficient lines for degree 8", lines)
	}
	_, c, _ := runPolygen(t, "-family", "charpoly", "-n", "8", "-seed", "4")
	if a == c {
		t.Fatal("different seeds produced identical output")
	}
}

func TestAllFamiliesGenerate(t *testing.T) {
	for _, fam := range []string{"charpoly", "bounded", "tridiagonal", "wilkinson", "chebyshev", "hermite", "laguerre", "legendre", "introots"} {
		code, out, errOut := runPolygen(t, "-family", fam, "-n", "6")
		if code != 0 {
			t.Errorf("%s: exit %d, stderr %q", fam, code, errOut)
			continue
		}
		if strings.Count(out, "\n") != 7 {
			t.Errorf("%s: output %q", fam, out)
		}
	}
}

func TestPretty(t *testing.T) {
	code, out, _ := runPolygen(t, "-family", "wilkinson", "-n", "2", "-pretty")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "x") {
		t.Fatalf("pretty output %q has no symbolic term", out)
	}
}

func TestErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown family", []string{"-family", "nope"}},
		{"bad degree", []string{"-n", "0"}},
		{"bad flag", []string{"-definitely-not-a-flag"}},
	} {
		code, _, errOut := runPolygen(t, tc.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2", tc.name, code)
		}
		if errOut == "" {
			t.Errorf("%s: no diagnostic on stderr", tc.name)
		}
	}
}

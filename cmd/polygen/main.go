// Command polygen generates the workload polynomials used in the
// paper's evaluation and this repository's examples, printing their
// coefficients in ascending degree order (one per line, suitable for
// xargs into cmd/realroots).
//
// Usage:
//
//	polygen -family charpoly -n 20 -seed 3   # the paper's workload
//	polygen -family wilkinson -n 12
//	polygen -family chebyshev -n 16
//	polygen -family hermite -n 10
//	polygen -family laguerre -n 10
//	polygen -family legendre -n 10
//	polygen -family tridiagonal -n 200 -seed 7  # Jacobi matrix, O(n²) generation
//	polygen -family introots -n 8 -seed 1 -span 100
package main

import (
	"flag"
	"fmt"
	"os"

	"realroots/internal/poly"
	"realroots/internal/workload"
)

func main() {
	var (
		family = flag.String("family", "charpoly", "charpoly, bounded, tridiagonal, wilkinson, chebyshev, hermite, laguerre, legendre, introots")
		n      = flag.Int("n", 10, "degree")
		seed   = flag.Int64("seed", 1, "random seed (charpoly, bounded, introots)")
		span   = flag.Int("span", 100, "root span (introots) / entry bound (bounded)")
		pretty = flag.Bool("pretty", false, "print the polynomial in symbolic form instead of coefficients")
	)
	flag.Parse()
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "polygen: degree must be ≥ 1")
		os.Exit(2)
	}

	var p *poly.Poly
	switch *family {
	case "charpoly":
		p = workload.CharPoly01(*seed, *n)
	case "bounded":
		p = workload.CharPolyBounded(*seed, *n, int64(*span))
	case "wilkinson":
		p = workload.Wilkinson(*n)
	case "chebyshev":
		p = workload.Chebyshev(*n)
	case "hermite":
		p = workload.Hermite(*n)
	case "laguerre":
		p = workload.Laguerre(*n)
	case "legendre":
		p = workload.Legendre(*n)
	case "tridiagonal":
		p = workload.Tridiagonal(*seed, *n, int64(*span))
	case "introots":
		p = workload.RandomIntRoots(*seed, *n, *span)
	default:
		fmt.Fprintf(os.Stderr, "polygen: unknown family %q\n", *family)
		os.Exit(2)
	}

	if *pretty {
		fmt.Println(p)
		return
	}
	for i := 0; i <= p.Degree(); i++ {
		fmt.Println(p.Coeff(i))
	}
}

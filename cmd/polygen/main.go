// Command polygen generates the workload polynomials used in the
// paper's evaluation and this repository's examples, printing their
// coefficients in ascending degree order (one per line, suitable for
// xargs into cmd/realroots).
//
// Usage:
//
//	polygen -family charpoly -n 20 -seed 3   # the paper's workload
//	polygen -family wilkinson -n 12
//	polygen -family chebyshev -n 16
//	polygen -family hermite -n 10
//	polygen -family laguerre -n 10
//	polygen -family legendre -n 10
//	polygen -family tridiagonal -n 200 -seed 7  # Jacobi matrix, O(n²) generation
//	polygen -family introots -n 8 -seed 1 -span 100
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"realroots/internal/poly"
	"realroots/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("polygen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		family = fs.String("family", "charpoly", "charpoly, bounded, tridiagonal, wilkinson, chebyshev, hermite, laguerre, legendre, introots")
		n      = fs.Int("n", 10, "degree")
		seed   = fs.Int64("seed", 1, "random seed (charpoly, bounded, introots)")
		span   = fs.Int("span", 100, "root span (introots) / entry bound (bounded)")
		pretty = fs.Bool("pretty", false, "print the polynomial in symbolic form instead of coefficients")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *n < 1 {
		fmt.Fprintln(stderr, "polygen: degree must be ≥ 1")
		return 2
	}

	var p *poly.Poly
	switch *family {
	case "charpoly":
		p = workload.CharPoly01(*seed, *n)
	case "bounded":
		p = workload.CharPolyBounded(*seed, *n, int64(*span))
	case "wilkinson":
		p = workload.Wilkinson(*n)
	case "chebyshev":
		p = workload.Chebyshev(*n)
	case "hermite":
		p = workload.Hermite(*n)
	case "laguerre":
		p = workload.Laguerre(*n)
	case "legendre":
		p = workload.Legendre(*n)
	case "tridiagonal":
		p = workload.Tridiagonal(*seed, *n, int64(*span))
	case "introots":
		p = workload.RandomIntRoots(*seed, *n, *span)
	default:
		fmt.Fprintf(stderr, "polygen: unknown family %q\n", *family)
		return 2
	}

	if *pretty {
		fmt.Fprintln(stdout, p)
		return 0
	}
	for i := 0; i <= p.Degree(); i++ {
		fmt.Fprintln(stdout, p.Coeff(i))
	}
	return 0
}

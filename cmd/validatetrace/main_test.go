package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"realroots/internal/harness"
	"realroots/internal/telemetry"
	"realroots/internal/trace"
)

func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateFileSniffsKinds(t *testing.T) {
	// Flight dump.
	f := telemetry.NewFlight(64)
	f.Begin(1, 0, "task", "task")
	f.End(1, 0, "task")
	var flight bytes.Buffer
	if err := f.Dump().WriteJSON(&flight); err != nil {
		t.Fatal(err)
	}

	// Prometheus exposition.
	tel := telemetry.New(telemetry.Config{})
	var expo bytes.Buffer
	if err := tel.Registry().WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}

	// Bench grid.
	cfg := harness.Quick()
	cfg.Degrees, cfg.Mus, cfg.Procs, cfg.Seeds = []int{6}, []uint{4}, []int{1}, []int64{1}
	cfg.Simulate = true
	var grid bytes.Buffer
	if err := harness.WriteGridJSON(&grid, cfg); err != nil {
		t.Fatal(err)
	}

	// Trace store (empty is valid) and tenant ledger dumps.
	var storeDump bytes.Buffer
	if err := json.NewEncoder(&storeDump).Encode(trace.NewStore(0).Dump()); err != nil {
		t.Fatal(err)
	}
	led := telemetry.NewTenantLedger(0)
	led.AddRequest("acme")
	led.AddSolve("acme", 0.25, 1000)
	var tenantsDump bytes.Buffer
	if err := json.NewEncoder(&tenantsDump).Encode(led.Dump()); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"flight.json", flight.Bytes(), "flight-dump"},
		{"metrics.prom", expo.Bytes(), "prometheus-exposition"},
		{"grid.json", grid.Bytes(), "bench-grid"},
		{"traces.json", storeDump.Bytes(), "trace-store"},
		{"tenants.json", tenantsDump.Bytes(), "tenants-dump"},
	}
	for _, tc := range cases {
		kind, err := validateFile(writeTemp(t, tc.name, tc.data))
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if kind != tc.want {
			t.Errorf("%s sniffed as %q, want %q", tc.name, kind, tc.want)
		}
	}
}

func TestValidateFileRejectsCorrupt(t *testing.T) {
	corruptFlight := []byte(`{"schema":"realroots/flight/v1","capacity":0,"written":0,"dropped":0,"records":[]}`)
	if _, err := validateFile(writeTemp(t, "bad-flight.json", corruptFlight)); err == nil {
		t.Error("corrupt flight dump validated")
	}
	corruptExpo := []byte("# HELP a b\na 1\n") // sample without TYPE
	if _, err := validateFile(writeTemp(t, "bad.prom", corruptExpo)); err == nil {
		t.Error("corrupt exposition validated")
	}
	if _, err := validateFile(writeTemp(t, "bad-grid.json", []byte(`{"schema":"nope"}`))); err == nil {
		t.Error("corrupt grid validated")
	}
	if _, err := validateFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file validated")
	}
}

// TestValidateFileRejectsMalformedStoreAndTenants is the malformed-input
// table for the two schemas this PR adds: each case sniffs to the right
// kind (the schema string is present) but must fail validation.
func TestValidateFileRejectsMalformedStoreAndTenants(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"store-not-json", `realroots/trace-store/v1 this is not json`},
		{"store-zero-capacity", `{"schema":"realroots/trace-store/v1","capacity":0,"traces":[]}`},
		{"store-retained-undercount", `{"schema":"realroots/trace-store/v1","capacity":4,"seen":1,"retained":0,
			"byReason":{"error":1},
			"traces":[{"seq":1,"requestId":"r1","outcome":"error","reason":"error","wallSeconds":0.1}]}`},
		{"store-seq-zero", `{"schema":"realroots/trace-store/v1","capacity":4,"seen":1,"retained":1,
			"byReason":{"error":1},
			"traces":[{"seq":0,"requestId":"r1","outcome":"error","reason":"error","wallSeconds":0.1}]}`},
		{"store-not-newest-first", `{"schema":"realroots/trace-store/v1","capacity":4,"seen":2,"retained":2,
			"byReason":{"error":2},
			"traces":[{"seq":1,"requestId":"a","outcome":"error","reason":"error"},
			          {"seq":2,"requestId":"b","outcome":"error","reason":"error"}]}`},
		{"store-missing-reason", `{"schema":"realroots/trace-store/v1","capacity":4,"seen":1,"retained":1,
			"byReason":{},
			"traces":[{"seq":1,"requestId":"r1","outcome":"error","reason":"","wallSeconds":0.1}]}`},
		{"store-reason-not-indexed", `{"schema":"realroots/trace-store/v1","capacity":4,"seen":1,"retained":1,
			"byReason":{"slow":1},
			"traces":[{"seq":1,"requestId":"r1","outcome":"error","reason":"error","wallSeconds":0.1}]}`},
		{"store-negative-wall", `{"schema":"realroots/trace-store/v1","capacity":4,"seen":1,"retained":1,
			"byReason":{"error":1},
			"traces":[{"seq":1,"requestId":"r1","outcome":"error","reason":"error","wallSeconds":-1}]}`},
		{"store-serial-fraction-above-one", `{"schema":"realroots/trace-store/v1","capacity":4,"seen":1,"retained":1,
			"byReason":{"error":1},
			"traces":[{"seq":1,"requestId":"r1","outcome":"error","reason":"error","serialFraction":1.5}]}`},
		{"tenants-not-json", `realroots/tenants/v1 {{{`},
		{"tenants-zero-cap", `{"schema":"realroots/tenants/v1","maxTenants":0,"tenants":[]}`},
		{"tenants-empty-id", `{"schema":"realroots/tenants/v1","maxTenants":64,
			"tenants":[{"tenant":"","requests":1}]}`},
		{"tenants-unsorted", `{"schema":"realroots/tenants/v1","maxTenants":64,
			"tenants":[{"tenant":"b","requests":1},{"tenant":"a","requests":1}]}`},
		{"tenants-duplicate", `{"schema":"realroots/tenants/v1","maxTenants":64,
			"tenants":[{"tenant":"a","requests":1},{"tenant":"a","requests":1}]}`},
		{"tenants-negative-counter", `{"schema":"realroots/tenants/v1","maxTenants":64,
			"tenants":[{"tenant":"a","requests":-1}]}`},
		{"tenants-overaccounted", `{"schema":"realroots/tenants/v1","maxTenants":64,
			"tenants":[{"tenant":"a","requests":1,"cacheHits":1,"rejections":1}]}`},
	}
	for _, tc := range cases {
		if _, err := validateFile(writeTemp(t, tc.name+".json", []byte(tc.data))); err == nil {
			t.Errorf("%s: malformed input validated", tc.name)
		}
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"realroots/internal/harness"
	"realroots/internal/telemetry"
)

func writeTemp(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateFileSniffsKinds(t *testing.T) {
	// Flight dump.
	f := telemetry.NewFlight(64)
	f.Begin(1, 0, "task", "task")
	f.End(1, 0, "task")
	var flight bytes.Buffer
	if err := f.Dump().WriteJSON(&flight); err != nil {
		t.Fatal(err)
	}

	// Prometheus exposition.
	tel := telemetry.New(telemetry.Config{})
	var expo bytes.Buffer
	if err := tel.Registry().WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}

	// Bench grid.
	cfg := harness.Quick()
	cfg.Degrees, cfg.Mus, cfg.Procs, cfg.Seeds = []int{6}, []uint{4}, []int{1}, []int64{1}
	cfg.Simulate = true
	var grid bytes.Buffer
	if err := harness.WriteGridJSON(&grid, cfg); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"flight.json", flight.Bytes(), "flight-dump"},
		{"metrics.prom", expo.Bytes(), "prometheus-exposition"},
		{"grid.json", grid.Bytes(), "bench-grid"},
	}
	for _, tc := range cases {
		kind, err := validateFile(writeTemp(t, tc.name, tc.data))
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if kind != tc.want {
			t.Errorf("%s sniffed as %q, want %q", tc.name, kind, tc.want)
		}
	}
}

func TestValidateFileRejectsCorrupt(t *testing.T) {
	corruptFlight := []byte(`{"schema":"realroots/flight/v1","capacity":0,"written":0,"dropped":0,"records":[]}`)
	if _, err := validateFile(writeTemp(t, "bad-flight.json", corruptFlight)); err == nil {
		t.Error("corrupt flight dump validated")
	}
	corruptExpo := []byte("# HELP a b\na 1\n") // sample without TYPE
	if _, err := validateFile(writeTemp(t, "bad.prom", corruptExpo)); err == nil {
		t.Error("corrupt exposition validated")
	}
	if _, err := validateFile(writeTemp(t, "bad-grid.json", []byte(`{"schema":"nope"}`))); err == nil {
		t.Error("corrupt grid validated")
	}
	if _, err := validateFile(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file validated")
	}
}

// Command validatetrace checks that observability output files emitted
// by rootbench parse against their schemas: Chrome trace-event JSON
// (rootbench -trace) and bench-grid JSON (rootbench -json). The file
// kind is sniffed from the content, so CI can pass both in one call.
//
// Usage:
//
//	validatetrace trace.json grid.json ...
//
// Exits 0 when every file validates, 1 otherwise.
package main

import (
	"bytes"
	"fmt"
	"os"

	"realroots/internal/harness"
	"realroots/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: validatetrace file.json ...")
		os.Exit(2)
	}
	code := 0
	for _, path := range os.Args[1:] {
		if err := validateFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "validatetrace: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	os.Exit(code)
}

func validateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if bytes.Contains(data, []byte(`"traceEvents"`)) {
		return trace.ValidateChrome(data)
	}
	return harness.ValidateGridJSON(data)
}

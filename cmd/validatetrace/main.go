// Command validatetrace checks that observability output files emitted
// by rootbench parse against their schemas: Chrome trace-event JSON
// (rootbench -trace), flight-recorder dumps (rootbench -flight-out or
// GET /debug/flight), Prometheus text expositions (rootbench
// -metrics-out or GET /metrics), request-inspector dumps (GET
// /debug/requests?format=json), tail-sampled trace stores (GET
// /debug/traces?format=json), per-tenant usage ledgers (GET
// /debug/tenants?format=json), and bench-grid JSON (rootbench -json).
// The file kind is sniffed from the content, so CI can pass all of them
// in one call.
//
// Usage:
//
//	validatetrace trace.json flight.json metrics.prom grid.json ...
//
// Exits 0 when every file validates, 1 otherwise.
package main

import (
	"bytes"
	"fmt"
	"os"

	"realroots/internal/harness"
	"realroots/internal/telemetry"
	"realroots/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: validatetrace file ...")
		os.Exit(2)
	}
	code := 0
	for _, path := range os.Args[1:] {
		kind, err := validateFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "validatetrace: %s: %v\n", path, err)
			code = 1
			continue
		}
		fmt.Printf("%s: ok (%s)\n", path, kind)
	}
	os.Exit(code)
}

func validateFile(path string) (kind string, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	switch {
	case bytes.Contains(data, []byte(`"traceEvents"`)):
		return "chrome-trace", trace.ValidateChrome(data)
	case bytes.Contains(data, []byte(telemetry.FlightSchema)):
		return "flight-dump", telemetry.ValidateDumpJSON(data)
	case bytes.Contains(data, []byte(telemetry.RequestsSchema)):
		_, err := telemetry.ValidateRequestsJSON(data)
		return "requests-dump", err
	case bytes.Contains(data, []byte(trace.StoreSchema)):
		return "trace-store", trace.ValidateStoreJSON(data)
	case bytes.Contains(data, []byte(telemetry.TenantsSchema)):
		return "tenants-dump", telemetry.ValidateTenantsJSON(data)
	case bytes.HasPrefix(bytes.TrimLeft(data, " \t\r\n"), []byte("# HELP")):
		return "prometheus-exposition", telemetry.ValidateExposition(data)
	default:
		return "bench-grid", harness.ValidateGridJSON(data)
	}
}

// Package realroots computes arbitrarily precise approximations to the
// real roots of integer polynomials whose roots are all real, using the
// parallel algorithm of Narendran & Tiwari (SPAA 1992), itself a
// practical version of the Ben-Or–Tiwari NC root-isolation algorithm.
//
// Given a degree-n polynomial with integer coefficients and only real
// roots, FindRoots returns the µ-approximation 2^-µ·⌈2^µ·x⌉ of every
// distinct root x, computed entirely in exact integer arithmetic — the
// results are deterministic and bit-for-bit correct at the requested
// precision, for any worker count.
//
// The algorithm isolates roots with a divide-and-conquer tree of
// interleaving polynomials derived from the polynomial remainder
// sequence, then solves each one-root interval problem with a hybrid
// double-exponential-sieve / bisection / Newton method; all stages run
// on a dynamic task-queue scheduler whose worker count is the Workers
// option.
//
// Quick start:
//
//	// p(x) = x² - 2
//	res, err := realroots.FindRootsInt64([]int64{-2, 0, 1}, &realroots.Options{Precision: 32})
//	// res.Roots ≈ [-√2, √2] as exact big.Rat values with 32-bit precision
package realroots

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"time"

	"realroots/internal/charpoly"
	"realroots/internal/core"
	"realroots/internal/dyadic"
	"realroots/internal/interval"
	"realroots/internal/metrics"
	"realroots/internal/model"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/remseq"
	"realroots/internal/sturm"
	"realroots/internal/telemetry"
	"realroots/internal/trace"
)

// Method selects the interval-refinement strategy.
type Method int

const (
	// Hybrid is the paper's method: double-exponential sieve, then
	// ⌈log₂(10d²)⌉ bisections, then safeguarded Newton. The default.
	Hybrid Method = iota
	// Bisection refines by pure bisection (slower at high precision;
	// useful as a baseline).
	Bisection
	// Newton starts safeguarded Newton immediately.
	Newton
)

// String returns the method name accepted by ParseMethod.
func (m Method) String() string {
	switch m {
	case Hybrid:
		return "hybrid"
	case Bisection:
		return "bisection"
	case Newton:
		return "newton"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// ParseMethod maps a method name ("hybrid", "bisection", or "newton")
// to its value — the inverse of Method.String, for flag and request
// parsing (cmd/rootd accepts these names in solve requests).
func ParseMethod(s string) (Method, error) {
	switch s {
	case "hybrid":
		return Hybrid, nil
	case "bisection":
		return Bisection, nil
	case "newton":
		return Newton, nil
	}
	return 0, fmt.Errorf("realroots: unknown method %q (want hybrid, bisection, or newton)", s)
}

// Profile selects the big-integer arithmetic algorithms used by a run.
// Every profile computes bit-identical roots (the arithmetic is exact
// either way) and records identical operation counts and model bit
// costs; only the wall time and the reported actual bit costs differ.
// The profile is carried per run — never in package state — so
// concurrent runs with different profiles are race-free.
type Profile int

const (
	// ProfilePaper (the default) is schoolbook multiplication and Knuth
	// division — the quadratic cost model of the paper's UNIX "mp"
	// substrate (§3.3). Use it when reproducing the paper's measurements.
	ProfilePaper Profile = iota
	// ProfileFast enables the subquadratic kernels: block-decomposed
	// Karatsuba multiplication and Burnikel–Ziegler division.
	ProfileFast
)

// String returns the profile name accepted by ParseProfile.
func (p Profile) String() string {
	if p == ProfileFast {
		return "fast"
	}
	return "paper"
}

// ParseProfile maps a profile name ("paper"/"schoolbook" or "fast") to
// its value — the inverse of Profile.String, for flag and request
// parsing (cmd/rootd accepts these names in solve requests).
func ParseProfile(s string) (Profile, error) {
	pr, err := mp.ParseProfile(s)
	if err != nil {
		return 0, fmt.Errorf("realroots: unknown profile %q (want paper, schoolbook, or fast)", s)
	}
	return Profile(pr), nil
}

// EstimateBitOps predicts the bit-operation cost (the Options.MaxBitOps
// measure: Σ bitlen·bitlen over big-integer multiplications and
// divisions under the paper's schoolbook model) of solving a degree-n
// polynomial with coeffBits-bit coefficients at precision mu. It is an
// a-priori upper-end estimate derived from the paper's §4 cost
// analysis; cmd/rootd uses it as the admission-control cost of a solve
// request before running anything. Callers can use it to size
// Options.MaxBitOps budgets or predict whether a request will be
// admitted by a loaded server.
func EstimateBitOps(degree, coeffBits int, mu uint) int64 {
	return model.EstimateBitOps(degree, coeffBits, mu)
}

// Options configures a root-finding run. The zero value (and a nil
// *Options) requests 32 bits of precision on a single worker with the
// hybrid method.
type Options struct {
	// Precision is µ: each returned root is the exact dyadic rational
	// 2^-µ·⌈2^µ·x⌉ for the true root x. Zero means 32.
	Precision uint
	// Workers is the number of parallel workers (the paper's processor
	// count); 0 or 1 runs sequentially.
	Workers int
	// Method selects the interval-refinement strategy.
	Method Method
	// SequentialPrecompute forces the remainder-sequence stage to run
	// sequentially even on a parallel run (the paper's run-time option).
	SequentialPrecompute bool
	// Profile selects the arithmetic algorithms: ProfilePaper (default)
	// or ProfileFast. Roots and recorded operation counts are identical
	// under every profile.
	Profile Profile
	// ParallelMul, with ProfileFast and Workers > 1, additionally lets a
	// single huge multiplication (≳100k-bit operands, reached around
	// degree 100 at 64-bit precision) be split into panels the worker
	// pool computes concurrently, instead of serializing one worker.
	// Roots are bit-identical with or without it; ignored under other
	// profiles or worker counts.
	ParallelMul bool
	// Timeout, if positive, bounds the run's wall time. An expired
	// timeout aborts the run with ErrDeadline and a partial Result
	// (stats only, no roots). Context-taking entry points compose it
	// with the caller's context.
	Timeout time.Duration
	// MaxBitOps, if positive, bounds the run's total bit operations
	// (Σ bitlen·bitlen over big-integer multiplications and divisions,
	// the paper's §4 cost measure). A run that exceeds it aborts with
	// ErrBudgetExceeded and a partial Result.
	MaxBitOps int64
	// Tracer, if non-nil, records a structured execution trace of the
	// run: pipeline phase spans, per-worker task timelines, and queue
	// depth samples. Create one with NewTracer, run the solver, then
	// export with Tracer.WriteChrome (chrome://tracing / Perfetto JSON)
	// or aggregate with Tracer.Summarize. A Tracer is for one run at a
	// time; reuse across sequential runs concatenates their spans on a
	// shared timeline. Nil (the default) disables tracing and adds no
	// allocations to the solver hot path.
	Tracer *Tracer
	// Telemetry, if non-nil, attaches the run to an always-on telemetry
	// hub: a structured slog record per solve lifecycle event, the
	// run's metrics folded into a Prometheus-scrapable registry, and
	// recent spans kept in a bounded flight recorder. Create one hub
	// per process with NewTelemetry and share it across runs; serve its
	// endpoints with Telemetry.Serve. Unlike Tracer, a hub is designed
	// to stay attached in production: its memory is bounded and nil
	// (the default) adds no allocations to the solver hot path.
	Telemetry *Telemetry
	// RequestID, if non-empty, names the external request this solve
	// serves (rootd forwards the client's X-Request-Id here). The ID is
	// stamped on every observability sink the run touches — structured
	// logs, flight-recorder events, trace spans, and scheduler panic
	// errors — so one ID recovers the run from any of them.
	RequestID string
}

// Tracer records wall-clock spans of a solver run; see Options.Tracer.
// Methods on a nil *Tracer are no-ops.
type Tracer = trace.Tracer

// NewTracer returns an empty Tracer whose epoch (trace time zero) is
// the moment of the call.
func NewTracer() *Tracer { return trace.New() }

// Telemetry is an always-on observability hub: structured solve logs,
// a Prometheus-exposition metrics registry, and a fixed-size flight
// recorder of recent events; see Options.Telemetry. Methods on a nil
// *Telemetry are allocation-free no-ops.
type Telemetry = telemetry.Telemetry

// TelemetryConfig configures NewTelemetry: an optional slog logger for
// the structured event log and the flight-recorder capacity.
type TelemetryConfig = telemetry.Config

// NewTelemetry creates a telemetry hub. One hub serves a whole
// process; concurrent runs interleave safely.
func NewTelemetry(cfg TelemetryConfig) *Telemetry { return telemetry.New(cfg) }

func (o *Options) coreOptions() core.Options {
	opts := core.Options{Mu: 32, Method: interval.MethodHybrid}
	if o == nil {
		return opts
	}
	if o.Precision > 0 {
		opts.Mu = o.Precision
	}
	opts.Workers = o.Workers
	opts.ParallelMul = o.ParallelMul
	opts.SequentialPrecompute = o.SequentialPrecompute
	opts.MaxBitOps = o.MaxBitOps
	opts.Tracer = o.Tracer
	opts.Telemetry = o.Telemetry
	opts.RequestID = o.RequestID
	// Direct cast: out-of-range values survive the mapping and are
	// rejected by core's option validation.
	opts.Profile = mp.Profile(o.Profile)
	switch o.Method {
	case Bisection:
		opts.Method = interval.MethodBisection
	case Newton:
		opts.Method = interval.MethodNewton
	}
	return opts
}

// ErrNotAllReal reports that the input polynomial has non-real roots,
// which the algorithm's precondition excludes. (Use a general-purpose
// isolator, or deflate the complex part, for such inputs.)
var ErrNotAllReal = errors.New("realroots: polynomial does not have all real roots")

// Typed resilience errors. A run cut short by its context, timeout, or
// budget returns one of these (match with errors.Is) together with a
// partial Result carrying the run statistics gathered so far — but no
// roots: the solver never returns a root it has not fully verified.
var (
	// ErrCanceled reports that the caller's context was canceled.
	ErrCanceled = core.ErrCanceled
	// ErrDeadline reports that Options.Timeout or the caller context's
	// deadline expired.
	ErrDeadline = core.ErrDeadline
	// ErrBudgetExceeded reports that the run spent more than
	// Options.MaxBitOps bit operations.
	ErrBudgetExceeded = core.ErrBudgetExceeded
	// ErrInvalidOptions is matched by every option-validation error.
	ErrInvalidOptions = core.ErrInvalidOptions
)

// A Root is one distinct real root at the requested precision.
type Root struct {
	// Value is the exact µ-approximation as a rational number with a
	// power-of-two denominator.
	Value *big.Rat
	// Multiplicity is the root's multiplicity in the input polynomial
	// (1 unless the input had repeated roots).
	Multiplicity int
}

// String renders the root's exact rational value.
func (r Root) String() string { return r.Value.RatString() }

// Float64 returns the nearest float64 to the root approximation.
func (r Root) Float64() float64 {
	f, _ := r.Value.Float64()
	return f
}

// Decimal renders the root with the given number of decimal digits
// (truncated toward zero).
func (r Root) Decimal(digits int) string {
	return dyadicOf(r.Value).Decimal(digits)
}

func dyadicOf(v *big.Rat) dyadic.Dyadic {
	den := v.Denom()
	scale := uint(den.BitLen() - 1)
	num := new(mp.Int).SetBig(v.Num())
	return dyadic.New(num, scale)
}

// A Result reports the roots and run statistics.
type Result struct {
	// Roots holds the distinct real roots in ascending order.
	Roots []Root
	// Degree is the input degree; Distinct the number of distinct roots.
	Degree, Distinct int
	// Precision is the µ actually used.
	Precision uint
	// Elapsed is the total wall time; Precompute and TreeSolve split it
	// into the paper's two stages.
	Elapsed, Precompute, TreeSolve time.Duration
}

// FindRoots computes all distinct real roots of the polynomial with the
// given coefficients (ascending degree order: coeffs[i] multiplies x^i),
// with multiplicities. The polynomial must be non-constant and have
// only real roots; otherwise ErrNotAllReal (or an input-validation
// error) is returned.
func FindRoots(coeffs []*big.Int, opts *Options) (*Result, error) {
	return FindRootsContext(context.Background(), coeffs, opts)
}

// FindRootsContext is FindRoots under a caller-supplied context:
// canceling ctx aborts the run (including all scheduler workers) with
// ErrCanceled, a ctx deadline maps to ErrDeadline, and either composes
// with Options.Timeout. The returned partial Result carries the run
// statistics gathered before the interruption, but never roots.
func FindRootsContext(ctx context.Context, coeffs []*big.Int, opts *Options) (*Result, error) {
	c := make([]*mp.Int, len(coeffs))
	for i, v := range coeffs {
		if v == nil {
			return nil, fmt.Errorf("realroots: nil coefficient at degree %d", i)
		}
		c[i] = new(mp.Int).SetBig(v)
	}
	return findRoots(ctx, poly.New(c...), opts)
}

// FindRootsInt64 is FindRoots for small coefficients.
func FindRootsInt64(coeffs []int64, opts *Options) (*Result, error) {
	return findRoots(context.Background(), poly.FromInt64s(coeffs...), opts)
}

// withTimeout composes the caller's context with Options.Timeout.
func withTimeout(ctx context.Context, o *Options) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if o != nil && o.Timeout > 0 {
		return context.WithTimeout(ctx, o.Timeout)
	}
	return ctx, func() {}
}

// partialResult converts core's stats-only Result of an interrupted run.
func partialResult(res *core.Result, degree int, mu uint, start time.Time) *Result {
	if res == nil {
		return nil
	}
	return &Result{
		Degree:     degree,
		Precision:  mu,
		Elapsed:    time.Since(start),
		Precompute: res.Stats.Precompute,
		TreeSolve:  res.Stats.TreeSolve,
	}
}

func findRoots(ctx context.Context, p *poly.Poly, opts *Options) (*Result, error) {
	start := time.Now()
	co := opts.coreOptions()
	if p.Degree() < 1 {
		return nil, fmt.Errorf("realroots: polynomial of degree %d has no roots", p.Degree())
	}
	ctx, cancel := withTimeout(ctx, opts)
	defer cancel()
	co.Ctx = ctx

	var roots []Root
	var stats core.Stats
	if p.IsSquarefree() {
		res, err := core.FindRoots(p, co)
		if err != nil {
			return partialResult(res, p.Degree(), co.Mu, start), wrapErr(err)
		}
		roots = make([]Root, len(res.Roots))
		for i, r := range res.Roots {
			roots[i] = Root{Value: r.Rat(), Multiplicity: 1}
		}
		stats = res.Stats
	} else {
		rm, err := core.FindRootsWithMultiplicity(p, co)
		if err != nil {
			return nil, wrapErr(err)
		}
		roots = make([]Root, len(rm))
		for i, r := range rm {
			roots[i] = Root{Value: r.Root.Rat(), Multiplicity: r.Mult}
		}
	}
	return &Result{
		Roots:      roots,
		Degree:     p.Degree(),
		Distinct:   len(roots),
		Precision:  co.Mu,
		Elapsed:    time.Since(start),
		Precompute: stats.Precompute,
		TreeSolve:  stats.TreeSolve,
	}, nil
}

func wrapErr(err error) error {
	if errors.Is(err, remseq.ErrNotAllReal) {
		return ErrNotAllReal
	}
	return err
}

// Eigenvalues computes all eigenvalues of a symmetric integer matrix
// (given as rows) to the requested precision, via its characteristic
// polynomial — the paper's own workload. Multiplicities are reported.
func Eigenvalues(matrix [][]int64, opts *Options) (*Result, error) {
	return EigenvaluesContext(context.Background(), matrix, opts)
}

// EigenvaluesContext is Eigenvalues under a caller-supplied context;
// see FindRootsContext for the cancellation contract.
func EigenvaluesContext(ctx context.Context, matrix [][]int64, opts *Options) (*Result, error) {
	m, err := charpoly.FromRows(matrix)
	if err != nil {
		return nil, fmt.Errorf("realroots: %w", err)
	}
	if !m.IsSymmetric() {
		return nil, errors.New("realroots: matrix is not symmetric (eigenvalues may be complex)")
	}
	return findRoots(ctx, charpoly.CharPoly(m), opts)
}

// Isolate returns, for each distinct real root of the polynomial, an
// exact open isolating interval (lo, hi) with hi-lo = 2^-µ: lo and hi
// are consecutive grid rationals and the root lies in (lo, hi]. This is
// the root-isolation half of the problem, exposed directly.
func Isolate(coeffs []*big.Int, opts *Options) ([][2]*big.Rat, error) {
	res, err := FindRoots(coeffs, opts)
	if err != nil {
		return nil, err
	}
	mu := res.Precision
	step := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), mu))
	out := make([][2]*big.Rat, len(res.Roots))
	for i, r := range res.Roots {
		lo := new(big.Rat).Sub(r.Value, step)
		out[i] = [2]*big.Rat{lo, new(big.Rat).Set(r.Value)}
	}
	return out, nil
}

// FindRealRoots computes µ-approximations of the distinct real roots of
// an arbitrary integer polynomial — the input need not have all roots
// real. It uses the sequential Sturm-isolation baseline rather than the
// parallel algorithm (whose precondition is all-real roots), so it is
// slower at high degree but fully general. Multiplicity information is
// not computed; every returned root has Multiplicity 1 in its reported
// slot (repeated roots are collapsed by squarefree reduction).
func FindRealRoots(coeffs []*big.Int, opts *Options) (*Result, error) {
	return FindRealRootsContext(context.Background(), coeffs, opts)
}

// FindRealRootsContext is FindRealRoots under a caller-supplied
// context. The sequential Sturm baseline honors the same resilience
// contract as the parallel path: cancellation, Options.Timeout, and
// Options.MaxBitOps abort the run with the matching typed error.
func FindRealRootsContext(ctx context.Context, coeffs []*big.Int, opts *Options) (*Result, error) {
	start := time.Now()
	c := make([]*mp.Int, len(coeffs))
	for i, v := range coeffs {
		if v == nil {
			return nil, fmt.Errorf("realroots: nil coefficient at degree %d", i)
		}
		c[i] = new(mp.Int).SetBig(v)
	}
	p := poly.New(c...)
	if p.Degree() < 1 {
		return nil, fmt.Errorf("realroots: polynomial of degree %d has no roots", p.Degree())
	}
	co := opts.coreOptions()
	if err := co.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel := withTimeout(ctx, opts)
	defer cancel()
	co.Tracer.SetRequestID(co.RequestID)
	run := co.Telemetry.Start(telemetry.RunInfo{
		Kind:      "sturm",
		Degree:    p.Degree(),
		Mu:        co.Mu,
		Workers:   1,
		RequestID: co.RequestID,
	})
	var counters metrics.Counters
	counters.SetBudget(co.MaxBitOps, func() { run.BudgetExhausted(counters.BitOps()) })
	stop := func() error {
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return ErrDeadline
			}
			return ErrCanceled
		}
		if counters.BudgetExceeded() {
			return ErrBudgetExceeded
		}
		return nil
	}
	ctl := co.Tracer.Lane(trace.ControlLane, "control")
	ctl.Begin("sturm", trace.CatTask)
	run.PhaseBegin("sturm")
	ds, err := sturm.FindRootsStop(p, co.Mu, metrics.Ctx{C: &counters, Profile: co.Profile}, stop)
	run.PhaseEnd("sturm")
	ctl.End()
	if run != nil {
		nroots := 0
		if err == nil {
			nroots = len(ds)
		}
		run.Finish(core.RunOutcome(err), nroots, counters.BitOps(), counters.Snapshot())
	}
	if err != nil {
		if core.IsResilience(err) {
			return &Result{Degree: p.Degree(), Precision: co.Mu, Elapsed: time.Since(start)}, err
		}
		return nil, fmt.Errorf("realroots: %w", err)
	}
	roots := make([]Root, len(ds))
	for i, d := range ds {
		roots[i] = Root{Value: d.Rat(), Multiplicity: 1}
	}
	return &Result{
		Roots:     roots,
		Degree:    p.Degree(),
		Distinct:  len(roots),
		Precision: co.Mu,
		Elapsed:   time.Since(start),
	}, nil
}

// CountRealRoots returns the number of distinct real roots of the
// polynomial (which need not have all roots real), by Sturm's theorem.
func CountRealRoots(coeffs []*big.Int) (int, error) {
	c := make([]*mp.Int, len(coeffs))
	for i, v := range coeffs {
		if v == nil {
			return 0, fmt.Errorf("realroots: nil coefficient at degree %d", i)
		}
		c[i] = new(mp.Int).SetBig(v)
	}
	p := poly.New(c...)
	if p.Degree() < 1 {
		return 0, nil
	}
	sf := p.SquarefreePart()
	if s, err := remseq.Compute(sf, remseq.Options{}); err == nil {
		return s.RealRootCount(), nil
	}
	// The remainder sequence is abnormal for polynomials with complex
	// roots; fall back to a counting-only Sturm chain.
	chain, err := sturm.NewChain(sf)
	if err != nil {
		return 0, err
	}
	return chain.CountAll(), nil
}

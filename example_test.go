package realroots_test

import (
	"fmt"
	"log"
	"math/big"

	"realroots"
)

// The basic workflow: coefficients in, exact dyadic approximations out.
func ExampleFindRootsInt64() {
	// p(x) = (x + 3)(x - 1)(x - 10) = x³ - 8x² - 23x + 30.
	res, err := realroots.FindRootsInt64([]int64{30, -23, -8, 1}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Roots {
		fmt.Println(r)
	}
	// Output:
	// -3
	// 1
	// 10
}

// Irrational roots are reported as the exact ceiling approximation
// 2^-µ·⌈2^µ·x⌉.
func ExampleFindRootsInt64_precision() {
	res, err := realroots.FindRootsInt64([]int64{-2, 0, 1},
		&realroots.Options{Precision: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Roots[1])            // exact rational
	fmt.Println(res.Roots[1].Decimal(4)) // decimal rendering
	// Output:
	// 46341/32768
	// 1.4142
}

// Repeated roots are detected and reported with multiplicities.
func ExampleFindRootsInt64_multiplicity() {
	// p(x) = (x - 2)²(x + 1).
	res, err := realroots.FindRootsInt64([]int64{4, 0, -3, 1}, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Roots {
		fmt.Printf("%s ×%d\n", r, r.Multiplicity)
	}
	// Output:
	// -1 ×1
	// 2 ×2
}

// Eigenvalues of symmetric integer matrices, via the characteristic
// polynomial — the paper's own benchmark workload.
func ExampleEigenvalues() {
	res, err := realroots.Eigenvalues([][]int64{
		{2, 1},
		{1, 2},
	}, &realroots.Options{Precision: 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, ev := range res.Roots {
		fmt.Println(ev)
	}
	// Output:
	// 1
	// 3
}

// Polynomials with complex roots are rejected: the algorithm's
// precondition is that all roots are real.
func ExampleFindRootsInt64_notAllReal() {
	_, err := realroots.FindRootsInt64([]int64{1, 0, 1}, nil) // x² + 1
	fmt.Println(err)
	// Output:
	// realroots: polynomial does not have all real roots
}

// CountRealRoots works for any integer polynomial (it counts distinct
// real roots by Sturm's theorem, without approximating them).
func ExampleCountRealRoots() {
	// x³ - 1 has one real root (and two complex ones).
	n, err := realroots.CountRealRoots([]*big.Int{
		big.NewInt(-1), big.NewInt(0), big.NewInt(0), big.NewInt(1),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
	// Output:
	// 1
}

// Isolate exposes the root-isolation half of the problem: each root
// comes back with an exact width-2^-µ isolating interval.
func ExampleIsolate() {
	ivs, err := realroots.Isolate([]*big.Int{
		big.NewInt(-2), big.NewInt(0), big.NewInt(1), // x² - 2
	}, &realroots.Options{Precision: 4})
	if err != nil {
		log.Fatal(err)
	}
	for _, iv := range ivs {
		fmt.Printf("(%s, %s]\n", iv[0], iv[1])
	}
	// Output:
	// (-23/16, -11/8]
	// (11/8, 23/16]
}

package realroots

import (
	"math/big"
	"math/rand"
	"testing"

	"realroots/internal/workload"
)

// Integration scenarios exercising the whole pipeline through the
// public API on realistic inputs. Heavier cases are skipped in -short.

func TestIntegrationWilkinson20(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// Wilkinson's polynomial of degree 20 — a classic stress test where
	// floating-point root finders lose multiple digits. Exact arithmetic
	// must return the integers 1..20 exactly at any precision.
	w := workload.Wilkinson(20)
	coeffs := make([]*big.Int, w.Degree()+1)
	for i := range coeffs {
		coeffs[i] = w.Coeff(i).ToBig()
	}
	for _, mu := range []uint{4, 64} {
		res, err := FindRoots(coeffs, &Options{Precision: mu, Workers: 4})
		if err != nil {
			t.Fatalf("µ=%d: %v", mu, err)
		}
		if len(res.Roots) != 20 {
			t.Fatalf("µ=%d: %d roots", mu, len(res.Roots))
		}
		for i, r := range res.Roots {
			if r.Value.Cmp(new(big.Rat).SetInt64(int64(i+1))) != 0 {
				t.Fatalf("µ=%d root %d = %v", mu, i, r.Value)
			}
		}
	}
}

func TestIntegrationChebyshevExtremes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// T_21's extreme roots are ±cos(π/42) ≈ ±0.9972; at µ=48 the
	// approximations must land within 2^-48 above the true values.
	tn := workload.Chebyshev(21)
	coeffs := make([]*big.Int, tn.Degree()+1)
	for i := range coeffs {
		coeffs[i] = tn.Coeff(i).ToBig()
	}
	res, err := FindRoots(coeffs, &Options{Precision: 48, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) != 21 {
		t.Fatalf("%d roots", len(res.Roots))
	}
	last := res.Roots[20].Float64()
	want := 0.9972037971811801 // cos(π/42)
	if last < want-1e-12 || last > want+1e-12 {
		t.Fatalf("largest Chebyshev root %v, want ≈ %v", last, want)
	}
	// Chebyshev roots are symmetric; the middle root of T_21 is 0.
	if res.Roots[10].Value.Sign() != 0 {
		t.Fatalf("middle root %v, want 0", res.Roots[10])
	}
}

func TestIntegrationLaguerrePositivity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// All Laguerre roots are positive.
	l := workload.Laguerre(14)
	coeffs := make([]*big.Int, l.Degree()+1)
	for i := range coeffs {
		coeffs[i] = l.Coeff(i).ToBig()
	}
	res, err := FindRoots(coeffs, &Options{Precision: 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Roots {
		if r.Value.Sign() <= 0 {
			t.Fatalf("non-positive Laguerre root %v", r.Value)
		}
	}
}

func TestIntegrationHighPrecision512(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// 512-bit √5 via x² - 5; verify against (√5)² by squaring the
	// approximation: x̃² ∈ [5, 5 + 2·√5·2^-512 + 2^-1024].
	res, err := FindRootsInt64([]int64{-5, 0, 1}, &Options{Precision: 512})
	if err != nil {
		t.Fatal(err)
	}
	sq := new(big.Rat).Mul(res.Roots[1].Value, res.Roots[1].Value)
	five := new(big.Rat).SetInt64(5)
	if sq.Cmp(five) < 0 {
		t.Fatal("x̃ below √5 (ceiling convention violated)")
	}
	// Error bound: x̃² - 5 < 3·2^-510 comfortably.
	bound := new(big.Rat).SetFrac(big.NewInt(3), new(big.Int).Lsh(big.NewInt(1), 510))
	if diff := new(big.Rat).Sub(sq, five); diff.Cmp(bound) > 0 {
		t.Fatalf("x̃² - 5 = %v exceeds bound", diff.FloatString(160))
	}
}

func TestIntegrationMixedMultiplicityStress(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 5; trial++ {
		p := workload.WithMultiplicities(int64(trial), 4, 30, 3)
		coeffs := make([]*big.Int, p.Degree()+1)
		for i := range coeffs {
			coeffs[i] = p.Coeff(i).ToBig()
		}
		res, err := FindRoots(coeffs, &Options{Precision: 16, Workers: 1 + r.Intn(4)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := 0
		for _, root := range res.Roots {
			total += root.Multiplicity
			// Every reported root of an integer-rooted product is an
			// exact integer.
			if !root.Value.IsInt() {
				t.Fatalf("trial %d: non-integer root %v", trial, root.Value)
			}
		}
		if total != res.Degree {
			t.Fatalf("trial %d: multiplicities %d != degree %d", trial, total, res.Degree)
		}
	}
}

func TestIntegrationLargeCoefficients(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// Roots at ±10^30 and 0: coefficient sizes ≈ 200 bits.
	r := new(big.Int).Exp(big.NewInt(10), big.NewInt(30), nil)
	negSq := new(big.Int).Neg(new(big.Int).Mul(r, r))
	// p = x(x-10^30)(x+10^30) = x³ - 10^60·x.
	coeffs := []*big.Int{big.NewInt(0), negSq, big.NewInt(0), big.NewInt(1)}
	res, err := FindRoots(coeffs, &Options{Precision: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Roots) != 3 {
		t.Fatalf("%d roots", len(res.Roots))
	}
	if res.Roots[0].Value.Cmp(new(big.Rat).SetInt(new(big.Int).Neg(r))) != 0 ||
		res.Roots[1].Value.Sign() != 0 ||
		res.Roots[2].Value.Cmp(new(big.Rat).SetInt(r)) != 0 {
		t.Fatalf("roots = %v", res.Roots)
	}
}

package realroots

import (
	"bytes"
	"log/slog"
	"math/big"
	"strings"
	"sync"
	"testing"

	"realroots/internal/telemetry"
)

// TestTelemetryPublicAPI exercises the documented production setup:
// one process-wide hub, a structured log, and both solver entry points
// reporting into it.
func TestTelemetryPublicAPI(t *testing.T) {
	var logBuf bytes.Buffer
	tel := NewTelemetry(TelemetryConfig{
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	opts := &Options{Precision: 12, Workers: 2, Telemetry: tel}

	// Parallel pipeline ("core" runs).
	if _, err := FindRoots([]*big.Int{big.NewInt(30), big.NewInt(-23), big.NewInt(-8), big.NewInt(1)}, opts); err != nil {
		t.Fatalf("FindRoots: %v", err)
	}
	// Sturm baseline ("sturm" runs): x²-2.
	if _, err := FindRealRoots([]*big.Int{big.NewInt(-2), big.NewInt(0), big.NewInt(1)}, opts); err != nil {
		t.Fatalf("FindRealRoots: %v", err)
	}

	logs := logBuf.String()
	for _, want := range []string{`"msg":"solve start"`, `"msg":"solve finish"`, `"kind":"core"`, `"kind":"sturm"`, `"outcome":"ok"`} {
		if !strings.Contains(logs, want) {
			t.Errorf("structured log missing %s:\n%s", want, logs)
		}
	}

	var expo bytes.Buffer
	if err := tel.Registry().WritePrometheus(&expo); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := telemetry.ValidateExposition(expo.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if !strings.Contains(expo.String(), `realroots_solves_total{outcome="ok"} 2`) {
		t.Fatalf("exposition missing solve counts:\n%s", expo.String())
	}

	d := tel.Flight().Dump()
	if err := d.Validate(); err != nil {
		t.Fatalf("flight dump: %v", err)
	}
	runs := map[uint64]bool{}
	for _, r := range d.Records {
		runs[r.Run] = true
	}
	if len(runs) != 2 {
		t.Fatalf("flight recorder saw %d runs, want 2", len(runs))
	}
}

// TestTelemetryConcurrentSolves shares one hub across concurrent runs;
// under -race this doubles as the hub's thread-safety proof at the
// public API level.
func TestTelemetryConcurrentSolves(t *testing.T) {
	tel := NewTelemetry(TelemetryConfig{})
	var wg sync.WaitGroup
	const solvers = 4
	errs := make([]error, solvers)
	for i := 0; i < solvers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := int64(i)
			coeffs := []*big.Int{big.NewInt(30 + g), big.NewInt(-23), big.NewInt(-8), big.NewInt(1)}
			_, errs[i] = FindRoots(coeffs, &Options{Precision: 10, Workers: 2, Telemetry: tel})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("solver %d: %v", i, err)
		}
	}
	if got := tel.Registry().Totals().Solves[telemetry.OutcomeOK]; got != solvers {
		t.Fatalf("registry counted %d ok solves, want %d", got, solvers)
	}
	if err := tel.Flight().Dump().Validate(); err != nil {
		t.Fatalf("flight dump after concurrent solves: %v", err)
	}
}

// TestRequestIDThreeSinks stamps Options.RequestID on a solve and
// recovers it from all three sinks — structured log, flight recorder,
// and Chrome trace — for both the parallel pipeline and the Sturm
// baseline.
func TestRequestIDThreeSinks(t *testing.T) {
	for _, tc := range []struct {
		kind   string
		coeffs []*big.Int
	}{
		{"core", []*big.Int{big.NewInt(30), big.NewInt(-23), big.NewInt(-8), big.NewInt(1)}},
		{"sturm", []*big.Int{big.NewInt(-2), big.NewInt(0), big.NewInt(1)}},
	} {
		t.Run(tc.kind, func(t *testing.T) {
			id := "root-req-" + tc.kind
			var logBuf bytes.Buffer
			tel := NewTelemetry(TelemetryConfig{
				Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
			})
			tr := NewTracer()
			opts := &Options{Precision: 12, Workers: 2, Telemetry: tel, Tracer: tr, RequestID: id}
			var err error
			if tc.kind == "core" {
				_, err = FindRoots(tc.coeffs, opts)
			} else {
				_, err = FindRealRoots(tc.coeffs, opts)
			}
			if err != nil {
				t.Fatalf("solve: %v", err)
			}

			if !strings.Contains(logBuf.String(), `"requestId":"`+id+`"`) {
				t.Errorf("structured log does not carry requestId %q:\n%s", id, logBuf.String())
			}

			found := false
			for _, r := range tel.Flight().Dump().Records {
				if r.Name == "request_id:"+id {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("flight recorder has no request_id event for %q", id)
			}

			var chrome bytes.Buffer
			if err := tr.WriteChrome(&chrome); err != nil {
				t.Fatalf("WriteChrome: %v", err)
			}
			if !strings.Contains(chrome.String(), `"requestId":"`+id+`"`) {
				t.Errorf("chrome trace args do not carry requestId %q", id)
			}
		})
	}
}

// TestTelemetryBudgetExhaustedPublic checks the budget trip is visible
// through the public hub.
func TestTelemetryBudgetExhaustedPublic(t *testing.T) {
	tel := NewTelemetry(TelemetryConfig{})
	coeffs := []*big.Int{big.NewInt(30), big.NewInt(-23), big.NewInt(-8), big.NewInt(1)}
	if _, err := FindRoots(coeffs, &Options{Precision: 12, MaxBitOps: 5, Telemetry: tel}); err == nil {
		t.Fatal("budget of 5 bit ops did not trip")
	}
	if got := tel.Registry().Totals().Solves[telemetry.OutcomeBudget]; got != 1 {
		t.Fatalf("budget outcome count = %d, want 1", got)
	}
}

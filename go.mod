module realroots

go 1.22

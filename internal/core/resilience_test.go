package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"realroots/internal/metrics"
	"realroots/internal/poly"
	"realroots/internal/sched"
)

// testPoly returns a modest all-real-roots polynomial: the product of
// (x - k) for k in [1, n] (a Wilkinson-style instance).
func testPoly(n int) *poly.Poly {
	p := poly.FromInt64s(1)
	for k := 1; k <= n; k++ {
		p = p.Mul(poly.FromInt64s(int64(-k), 1))
	}
	return p
}

func TestValidateOptions(t *testing.T) {
	cases := []struct {
		name  string
		opts  Options
		field string // "" means valid
	}{
		{"zero value", Options{}, ""},
		{"sequential", Options{Mu: 32}, ""},
		{"parallel", Options{Mu: 32, Workers: 8}, ""},
		{"simulated", Options{Mu: 32, SimulateWorkers: 16}, ""},
		{"max mu", Options{Mu: MaxMu}, ""},
		{"negative workers", Options{Workers: -1}, "Workers"},
		{"very negative workers", Options{Workers: -100}, "Workers"},
		{"negative simulated", Options{SimulateWorkers: -2}, "SimulateWorkers"},
		{"workers and simulated", Options{Workers: 2, SimulateWorkers: 2}, "SimulateWorkers"},
		{"one worker and simulated", Options{Workers: 1, SimulateWorkers: 4}, "SimulateWorkers"},
		{"mu out of range", Options{Mu: MaxMu + 1}, "Mu"},
		{"negative budget", Options{MaxBitOps: -5}, "MaxBitOps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatal("Validate accepted invalid options")
			}
			if !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("error %v does not match ErrInvalidOptions", err)
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not an *OptionError", err)
			}
			if oe.Field != tc.field {
				t.Fatalf("Field = %q, want %q", oe.Field, tc.field)
			}
		})
	}
}

func TestFindRootsRejectsInvalidOptionsEarly(t *testing.T) {
	// Before Validate existed, a negative worker count reached
	// sched.NewPool and panicked; now it is a typed error.
	p := testPoly(4)
	res, err := FindRoots(p, Options{Mu: 8, Workers: -3})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("err = %v, want ErrInvalidOptions", err)
	}
	if res != nil {
		t.Fatal("invalid options returned a result")
	}
}

// checkPartial asserts the (res, err) pair of an interrupted run: a
// typed resilience error plus a Roots-free Result carrying stats.
func checkPartial(t *testing.T, res *Result, err, want error) {
	t.Helper()
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	if !IsResilience(err) {
		t.Fatalf("IsResilience(%v) = false", err)
	}
	if res == nil {
		t.Fatal("interrupted run returned a nil Result (want partial stats)")
	}
	if len(res.Roots) != 0 {
		t.Fatalf("interrupted run returned %d roots", len(res.Roots))
	}
}

func TestCancelBeforeRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := testPoly(10)
	for _, workers := range []int{0, 4} {
		res, err := FindRoots(p, Options{Mu: 16, Workers: workers, Ctx: ctx})
		checkPartial(t, res, err, ErrCanceled)
	}
}

func TestCancelAtPhaseBoundariesSequential(t *testing.T) {
	p := testPoly(12)
	for _, phase := range []string{"precompute", "tree", "interval"} {
		t.Run(phase, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var seen []string
			opts := Options{Mu: 16, Ctx: ctx, OnPhase: func(ph string) {
				seen = append(seen, ph)
				if ph == phase {
					cancel()
				}
			}}
			res, err := FindRoots(p, opts)
			checkPartial(t, res, err, ErrCanceled)
			if seen[len(seen)-1] != phase {
				t.Fatalf("phases seen %v, want run to stop at %q", seen, phase)
			}
		})
	}
}

func TestCancelAtPhaseBoundariesParallel(t *testing.T) {
	p := testPoly(12)
	// The precompute and tree boundaries abort deterministically via
	// the stop() polls on the submitting goroutine.
	for _, phase := range []string{"precompute", "tree"} {
		t.Run(phase, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opts := Options{Mu: 16, Workers: 4, Ctx: ctx, OnPhase: func(ph string) {
				if ph == phase {
					cancel()
				}
			}}
			res, err := FindRoots(p, opts)
			checkPartial(t, res, err, ErrCanceled)
		})
	}
	// The interval boundary is signalled from inside a pool task, so
	// cancellation races run completion: a small instance can finish
	// before the watchdog drains the queue. Either outcome is legal —
	// what is being tested is that the error, when it occurs, is typed
	// and that the run never hangs.
	t.Run("interval", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		opts := Options{Mu: 32, Workers: 4, Ctx: ctx, OnPhase: func(ph string) {
			if ph == "interval" {
				cancel()
			}
		}}
		res, err := FindRoots(testPoly(16), opts)
		if err == nil {
			if len(res.Roots) != 16 {
				t.Fatalf("completed run returned %d roots", len(res.Roots))
			}
			return
		}
		checkPartial(t, res, err, ErrCanceled)
	})
}

func TestTimeoutReturnsErrDeadline(t *testing.T) {
	p := testPoly(10)
	for _, workers := range []int{0, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
		time.Sleep(time.Millisecond) // ensure the deadline has passed
		res, err := FindRoots(p, Options{Mu: 16, Workers: workers, Ctx: ctx})
		cancel()
		checkPartial(t, res, err, ErrDeadline)
	}
}

func TestBudgetExceeded(t *testing.T) {
	p := testPoly(14)
	for _, workers := range []int{0, 4} {
		// A budget far below the instance's real cost must trip; note
		// that no Counters are supplied — core meters internally.
		res, err := FindRoots(p, Options{Mu: 32, Workers: workers, MaxBitOps: 2000})
		checkPartial(t, res, err, ErrBudgetExceeded)
	}
}

func TestBudgetGenerousSucceeds(t *testing.T) {
	p := testPoly(8)
	var c metrics.Counters
	res, err := FindRoots(p, Options{Mu: 16, MaxBitOps: 1 << 40, Counters: &c})
	if err != nil {
		t.Fatalf("FindRoots = %v", err)
	}
	if len(res.Roots) != 8 {
		t.Fatalf("%d roots", len(res.Roots))
	}
	if c.BitOps() == 0 {
		t.Fatal("budget metering recorded no bit ops")
	}
	if c.BitOps() > 1<<40 {
		t.Fatal("run exceeded the budget without tripping")
	}
}

func TestTaskHookPanicIsIsolated(t *testing.T) {
	p := testPoly(10)
	res, err := FindRoots(p, Options{Mu: 16, Workers: 4, TaskHook: func(seq int64) {
		if seq == 5 {
			panic("injected task fault")
		}
	}})
	var pe *sched.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *sched.PanicError", err)
	}
	checkPartial(t, res, err, err)
}

func TestPartialStatsOnMidRunCancel(t *testing.T) {
	// Cancel at the tree boundary: the precompute stage completed, so
	// the partial stats must show it.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := FindRoots(testPoly(12), Options{Mu: 16, Ctx: ctx, OnPhase: func(ph string) {
		if ph == "tree" {
			cancel()
		}
	}})
	checkPartial(t, res, err, ErrCanceled)
	if res.Stats.Precompute <= 0 {
		t.Fatalf("partial Stats.Precompute = %v, want > 0", res.Stats.Precompute)
	}
	if res.Degree != 12 {
		t.Fatalf("partial Degree = %d", res.Degree)
	}
}

// checkNoGoroutineLeak retries because pool workers and watchdogs shut
// down asynchronously after FindRoots returns.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, now)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNoGoroutineLeakAcrossFailureModes(t *testing.T) {
	p := testPoly(10)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		// Canceled mid-tree.
		ctx, cancel := context.WithCancel(context.Background())
		_, _ = FindRoots(p, Options{Mu: 16, Workers: 4, Ctx: ctx, OnPhase: func(ph string) {
			if ph == "tree" {
				cancel()
			}
		}})
		cancel()
		// Budget-tripped.
		_, _ = FindRoots(p, Options{Mu: 16, Workers: 2, MaxBitOps: 1000})
		// Task panic.
		_, _ = FindRoots(p, Options{Mu: 16, Workers: 2, TaskHook: func(seq int64) {
			if seq == 2 {
				panic("fault")
			}
		}})
		// Healthy run, for contrast.
		if _, err := FindRoots(p, Options{Mu: 16, Workers: 2}); err != nil {
			t.Fatalf("healthy run failed: %v", err)
		}
	}
	checkNoGoroutineLeak(t, before)
}

package core

import (
	"errors"
	"fmt"
	"testing"

	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/sched"
	"realroots/internal/telemetry"
	"realroots/internal/trace"
)

func TestRunOutcome(t *testing.T) {
	cases := []struct {
		err  error
		want telemetry.Outcome
	}{
		{nil, telemetry.OutcomeOK},
		{ErrBudgetExceeded, telemetry.OutcomeBudget},
		{fmt.Errorf("stage: %w", ErrBudgetExceeded), telemetry.OutcomeBudget},
		{ErrDeadline, telemetry.OutcomeDeadline},
		{ErrCanceled, telemetry.OutcomeCanceled},
		{&sched.PanicError{Value: "boom"}, telemetry.OutcomePanic},
		{fmt.Errorf("wrapped: %w", &sched.PanicError{Value: "boom"}), telemetry.OutcomePanic},
		{errors.New("misc"), telemetry.OutcomeError},
	}
	for _, tc := range cases {
		if got := RunOutcome(tc.err); got != tc.want {
			t.Errorf("RunOutcome(%v) = %s, want %s", tc.err, got, tc.want)
		}
	}
}

func TestTelemetryEndToEnd(t *testing.T) {
	tel := telemetry.New(telemetry.Config{FlightCapacity: 8192})
	tr := trace.New()
	p := poly.FromRoots(mp.NewInt(1), mp.NewInt(-2), mp.NewInt(5), mp.NewInt(-7))
	res, err := FindRoots(p, Options{Mu: 8, Workers: 2, Telemetry: tel, Tracer: tr})
	if err != nil {
		t.Fatalf("FindRoots: %v", err)
	}
	if len(res.Roots) != 4 {
		t.Fatalf("found %d roots, want 4", len(res.Roots))
	}

	tot := tel.Registry().Totals()
	if tot.Solves[telemetry.OutcomeOK] != 1 {
		t.Fatalf("registry solves: %+v", tot.Solves)
	}
	if tot.Roots != 4 || tot.BitOps <= 0 || tot.SchedTasks <= 0 {
		t.Fatalf("registry totals: %+v", tot)
	}

	d := tel.Flight().Dump()
	if err := d.Validate(); err != nil {
		t.Fatalf("flight dump: %v", err)
	}
	spans := map[string]int{}
	events := map[string]int{}
	for _, r := range d.Records {
		switch r.Kind {
		case telemetry.KindBegin:
			spans[r.Name]++
		case telemetry.KindEvent:
			events[r.Name]++
		}
	}
	for _, phase := range []string{"remainder", "solve"} {
		if spans[phase] != 1 {
			t.Errorf("phase span %q recorded %d times, want 1", phase, spans[phase])
		}
	}
	if events["start"] != 1 || events["finish"] != 1 {
		t.Errorf("lifecycle events: %v", events)
	}
	if tot.SchedTasks > 0 && len(spans) <= 2 {
		t.Errorf("no task spans reached the flight recorder: %v", spans)
	}
}

func TestTelemetryBudgetOutcome(t *testing.T) {
	tel := telemetry.New(telemetry.Config{})
	p := poly.FromRoots(mp.NewInt(1), mp.NewInt(-2), mp.NewInt(5), mp.NewInt(-7))
	_, err := FindRoots(p, Options{Mu: 8, Workers: 1, MaxBitOps: 10, Telemetry: tel})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", err)
	}
	if tot := tel.Registry().Totals(); tot.Solves[telemetry.OutcomeBudget] != 1 {
		t.Fatalf("registry solves: %+v", tot.Solves)
	}
	found := false
	for _, r := range tel.Flight().Dump().Records {
		if r.Name == "budget_exhausted" {
			found = true
		}
	}
	if !found {
		t.Fatal("budget_exhausted event missing from flight recorder")
	}
}

// TestTelemetrySimulatedRun checks the virtual-time scheduler feeds
// telemetry the same way the real pool does.
func TestTelemetrySimulatedRun(t *testing.T) {
	tel := telemetry.New(telemetry.Config{})
	p := poly.FromRoots(mp.NewInt(3), mp.NewInt(-4), mp.NewInt(6))
	if _, err := FindRoots(p, Options{Mu: 8, SimulateWorkers: 2, Telemetry: tel}); err != nil {
		t.Fatalf("FindRoots: %v", err)
	}
	tot := tel.Registry().Totals()
	if tot.Solves[telemetry.OutcomeOK] != 1 || tot.SchedTasks <= 0 {
		t.Fatalf("registry totals: %+v", tot)
	}
	if err := tel.Flight().Dump().Validate(); err != nil {
		t.Fatalf("flight dump: %v", err)
	}
}

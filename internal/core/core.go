// Package core implements the complete parallel root-approximation
// algorithm of Narendran & Tiwari: the precomputation of the remainder
// and quotient sequences (§3.1), the bottom-up computation of the
// interleaving-tree polynomials, and the interval problems at every
// node (§3.2), orchestrated either sequentially or on a dynamic
// task-queue scheduler whose task kinds and dependencies mirror the
// paper's Fig. 3.2 (RECURSE, COMPUTEPOLY split into per-entry matrix
// tasks, SORT, PREINTERVAL, INTERVAL).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"realroots/internal/dyadic"
	"realroots/internal/interval"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/remseq"
	"realroots/internal/sched"
	"realroots/internal/telemetry"
	"realroots/internal/trace"
	"realroots/internal/tree"
)

// Options configures a root-finding run.
type Options struct {
	// Mu is the output precision: roots are returned as 2^-µ·⌈2^µ·x⌉.
	Mu uint
	// Workers is the number of scheduler workers (the paper's processor
	// count). 0 or 1 runs the fully sequential path.
	Workers int
	// Method selects the interval-refinement strategy (default: the
	// paper's hybrid).
	Method interval.Method
	// SequentialPrecompute forces the remainder-sequence stage to run
	// sequentially even when Workers > 1 — the paper's run-time option.
	SequentialPrecompute bool
	// Grain batches coefficient tasks in the remainder stage; ≤ 0 means
	// one coefficient per task.
	Grain int
	// Profile selects the big-integer arithmetic algorithms for this run:
	// mp.Schoolbook (the zero value) is the paper's quadratic cost model,
	// mp.Fast enables the subquadratic kernels. The profile is carried on
	// the run's metrics.Ctx — never in package state — so concurrent runs
	// with different profiles are race-free. Recorded operation counts
	// and model bit costs are identical under both profiles.
	Profile mp.Profile
	// ParallelMul, with the Fast profile and Workers > 1, lets single
	// huge balanced products (≳100k bits; see mp.MulParallelEngages) be
	// split into panels submitted to the scheduler pool, so a giant
	// remainder-sequence multiplication no longer serializes one worker.
	// Results are bit-identical with or without it. Ignored under
	// SimulateWorkers — virtual-time simulation measures each task body
	// on one real worker, which panel parallelism would distort.
	ParallelMul bool
	// SimulateWorkers, when > 0, executes the task graph on one real
	// worker while list-scheduling the measured task durations onto this
	// many *virtual* processors (see sched.NewSimulatedPool). The
	// simulated makespan is reported in Stats. Used to reproduce the
	// paper's multiprocessor speedup experiments on hosts without the
	// paper's 20-processor shared-memory machine. Mutually exclusive
	// with Workers.
	SimulateWorkers int
	// Counters, if non-nil, accumulates per-phase arithmetic counts.
	Counters *metrics.Counters
	// Tracer, if non-nil, records wall-clock spans: pipeline phase
	// spans on the control lane, per-worker task timelines on the
	// scheduler (parallel runs), and per-node task spans on the
	// control lane (sequential runs). A nil Tracer adds no
	// allocations to the solver hot path.
	Tracer *trace.Tracer
	// CheckTree enables the Theorem 1 structural self-check on the
	// computed tree (tests and debugging).
	CheckTree bool
	// Telemetry, if non-nil, receives the run's lifecycle: a structured
	// start/finish log record, phase and scheduler-task records in the
	// flight recorder, and — at Finish — the run's outcome, wall time,
	// and arithmetic metrics folded into the hub's registry. Unlike
	// Tracer it is designed to stay attached in production: its memory
	// is bounded and a nil hub adds no allocations. When set and
	// Counters is nil, internal counters are allocated so the registry
	// still sees the run's arithmetic metrics.
	Telemetry *telemetry.Telemetry

	// Ctx carries cancellation and deadlines into the run; nil means
	// context.Background(). Cancellation mid-phase drains the scheduler
	// queue (parallel runs) or aborts at the next per-node / per-interval
	// checkpoint (sequential runs) and returns ErrCanceled or
	// ErrDeadline with the partial Stats gathered so far.
	Ctx context.Context
	// MaxBitOps bounds the run's arithmetic work: the cumulative
	// Σ bitlen·bitlen over big-integer multiplications and divisions
	// (the paper's §4 bit-complexity measure, metered by the metrics
	// sink). Exceeding it returns ErrBudgetExceeded. 0 means unlimited.
	// When no Counters are supplied, internal ones are allocated to
	// meter the budget.
	MaxBitOps int64
	// TaskHook, if non-nil, is installed on the scheduler pool
	// (sched.Pool.SetTaskHook) — the fault-injection point used by
	// internal/faultinject. Parallel and simulated runs only.
	TaskHook func(seq int64)
	// OnPhase, if non-nil, is called once per pipeline phase as it
	// begins ("precompute", "tree", "interval") — a test hook for
	// exercising cancellation at exact phase boundaries.
	OnPhase func(phase string)
	// RequestID, if non-empty, names the external request this run
	// serves (rootd's X-Request-Id). It is stamped on every telemetry
	// sink the run touches — slog records, flight-recorder events,
	// trace spans, and scheduler panic errors — so one ID recovers the
	// run from any of them.
	RequestID string
}

// Stats reports timing and scheduling details of a run.
type Stats struct {
	Precompute time.Duration // remainder-sequence stage
	TreeSolve  time.Duration // tree polynomials + all interval problems
	Total      time.Duration
	Tasks      int64 // tasks executed by the scheduler (parallel runs)

	// Simulation-mode outputs (Options.SimulateWorkers > 0):
	// SimMakespan is the virtual completion time on the simulated
	// processors; SimWork is the total measured task time (the
	// one-processor makespan).
	SimMakespan, SimWork time.Duration

	// TaskKinds counts the scheduler tasks executed per kind on
	// parallel/simulated runs — the task taxonomy of the paper's
	// Fig. 3.2 plus the precomputation stage's coefficient tasks.
	TaskKinds TaskKindCounts
}

// TaskKindCounts breaks the executed tasks down by kind.
type TaskKindCounts struct {
	Precompute  int64 // remainder-stage coefficient tasks (§3.1)
	ComputePoly int64 // matrix-entry products, seeds, and divisions (§3.2)
	Sort        int64 // child-root merges
	PreInterval int64 // interleaving-point evaluations
	Interval    int64 // per-root interval problems
}

// Total returns the total task count.
func (t TaskKindCounts) Total() int64 {
	return t.Precompute + t.ComputePoly + t.Sort + t.PreInterval + t.Interval
}

// Result is the outcome of FindRoots.
type Result struct {
	// Roots holds the µ-approximations of the distinct real roots of
	// the input, in ascending order.
	Roots []dyadic.Dyadic
	// Degree is the input degree; NStar the number of distinct roots.
	Degree, NStar int
	// Squarefree reports whether the input itself was squarefree.
	Squarefree bool
	Stats      Stats
}

// A RootMult is a distinct root together with its multiplicity.
type RootMult struct {
	Root dyadic.Dyadic
	Mult int
}

// ErrNoRealRoots wraps the precondition violations from remseq.
var (
	ErrNotAllReal = remseq.ErrNotAllReal
)

// FindRoots computes µ-approximations to all distinct real roots of p,
// which must be a non-constant integer polynomial all of whose roots
// are real. Repeated roots are handled by reducing to the squarefree
// part (the preprocessing counterpart of the paper's §2.3 extension).
//
// When the run is cut short (ErrCanceled, ErrDeadline,
// ErrBudgetExceeded, or an isolated task panic — see IsResilience),
// the returned Result is non-nil with no Roots but with the partial
// Stats gathered up to the interruption.
func FindRoots(p *poly.Poly, opts Options) (*Result, error) {
	start := time.Now()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if p.IsZero() {
		return nil, errors.New("core: zero polynomial")
	}
	if p.Degree() < 1 {
		return nil, fmt.Errorf("core: constant polynomial has no roots")
	}
	ps := p
	squarefree := true
	if !p.IsSquarefreeProfile(opts.Profile) {
		ps = p.SquarefreePartProfile(opts.Profile)
		squarefree = false
	}
	res, err := findRootsSquarefree(ps, opts)
	if res != nil {
		res.Degree = p.Degree()
		res.Squarefree = squarefree
		res.Stats.Total = time.Since(start)
	}
	return res, err
}

// FindRootsWithMultiplicity computes every distinct real root of p
// together with its multiplicity, by solving each factor of p's Yun
// squarefree decomposition separately and merging.
func FindRootsWithMultiplicity(p *poly.Poly, opts Options) ([]RootMult, error) {
	if p.Degree() < 1 {
		return nil, fmt.Errorf("core: polynomial of degree %d has no roots", p.Degree())
	}
	factors := poly.Yun(p)
	var out []RootMult
	for k, u := range factors {
		if u.Degree() < 1 {
			continue
		}
		r, err := FindRoots(u, opts)
		if err != nil {
			return nil, fmt.Errorf("core: multiplicity-%d factor: %w", k+1, err)
		}
		for _, root := range r.Roots {
			out = append(out, RootMult{Root: root, Mult: k + 1})
		}
	}
	// Merge-sort the factor outputs (each is sorted; factors' root sets
	// are disjoint).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Root.Cmp(out[j-1].Root) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// findRootsSquarefree instruments one squarefree solve: it opens a
// telemetry run around the pipeline (a no-op when no hub is attached)
// and closes it with the run's outcome and metrics.
func findRootsSquarefree(p *poly.Poly, opts Options) (*Result, error) {
	workers := opts.Workers
	if opts.SimulateWorkers > 0 {
		workers = opts.SimulateWorkers
	}
	if workers < 1 {
		workers = 1
	}
	opts.Tracer.SetRequestID(opts.RequestID)
	run := opts.Telemetry.Start(telemetry.RunInfo{
		Kind:      "core",
		Degree:    p.Degree(),
		Mu:        opts.Mu,
		Workers:   workers,
		RequestID: opts.RequestID,
	})
	counters := opts.Counters
	if counters == nil && (opts.MaxBitOps > 0 || run != nil) {
		counters = &metrics.Counters{} // budget metering and telemetry need a sink
	}
	res, err := findRootsPipeline(p, opts, counters, run)
	if run != nil {
		// Summarize sorts every lane's intervals; with always-on
		// serving-path tracing this runs on every solve, so skip the
		// work entirely when nothing was recorded (e.g. a degree-1
		// short-circuit or a capped-out tracer).
		if opts.Tracer != nil && opts.Tracer.SpanCount() > 0 {
			run.Utilization(opts.Tracer.Summarize())
		}
		nroots := 0
		if err == nil && res != nil {
			nroots = len(res.Roots)
		}
		run.Finish(RunOutcome(err), nroots, counters.BitOps(), counters.Snapshot())
	}
	return res, err
}

func findRootsPipeline(p *poly.Poly, opts Options, counters *metrics.Counters, run *telemetry.Run) (*Result, error) {
	mctx := metrics.Ctx{C: counters, Profile: opts.Profile}
	n := p.Degree()

	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	onPhase := opts.OnPhase
	if onPhase == nil {
		onPhase = func(string) {}
	}

	// stop is the sequential-path checkpoint, polled per remainder
	// iteration, per tree node, and per interval problem. The parallel
	// path enforces the same conditions through pool cancellation.
	stop := func() error {
		select {
		case <-ctx.Done():
			return ctxErr(ctx.Err())
		default:
		}
		if counters.BudgetExceeded() {
			return ErrBudgetExceeded
		}
		return nil
	}

	var pool *sched.Pool
	switch {
	case opts.SimulateWorkers > 0:
		pool = sched.NewSimulatedPool(opts.SimulateWorkers)
	case opts.Workers > 1:
		pool = sched.NewPool(opts.Workers)
	}
	if pool != nil {
		if run != nil {
			// Registered before the Close defer so it runs after it
			// (LIFO): the stats snapshot then covers the full drain.
			defer func() {
				s := pool.Stats()
				run.SchedStats(telemetry.SchedStats{
					Executed:      s.Executed,
					Panics:        s.Panics,
					Retries:       s.Retries,
					MaxQueueDepth: int64(s.MaxQueueDepth),
				})
			}()
		}
		defer pool.Close()
		if opts.TaskHook != nil {
			pool.SetTaskHook(opts.TaskHook)
		}
		pool.SetTracer(opts.Tracer)
		if opts.RequestID != "" {
			pool.SetLabel(opts.RequestID)
		}
		if run != nil {
			pool.SetObserver(run)
		}
		// Forward context cancellation to the pool; the watchdog exits
		// when the run finishes.
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-ctx.Done():
				pool.Cancel(ctxErr(ctx.Err()))
			case <-watchDone:
			}
		}()
	}
	if opts.ParallelMul && opts.Profile == mp.Fast && pool != nil && opts.SimulateWorkers == 0 {
		mctx.Par = parMulSubmitter{pool}
	}
	if counters != nil && opts.MaxBitOps > 0 {
		cancelPool := pool // nil on sequential runs: stop() polls instead
		counters.SetBudget(opts.MaxBitOps, func() {
			run.BudgetExhausted(counters.BitOps())
			if cancelPool != nil {
				cancelPool.Cancel(ErrBudgetExceeded)
			}
		})
	}

	// partial packages the stats gathered so far with a resilience
	// error; precondition errors return a nil Result instead.
	var precompute, treeSolve time.Duration
	partial := func(err error) (*Result, error) {
		if !IsResilience(err) {
			return nil, err
		}
		res := &Result{NStar: n, Stats: Stats{Precompute: precompute, TreeSolve: treeSolve}}
		if pool != nil {
			res.Stats.Tasks = pool.Executed()
		}
		return res, err
	}

	if err := stop(); err != nil {
		return partial(err)
	}

	// Control lane: pipeline phase spans recorded by the orchestrating
	// goroutine. Nil-safe — a nil Tracer makes every call below a no-op.
	ctl := opts.Tracer.Lane(trace.ControlLane, "control")

	// Degree-1 short-circuit: nothing to precompute.
	if n == 1 {
		bound := p.RootBound()
		ctl.Begin("interval", trace.CatTask)
		s := interval.NewSolver(p, nil, bound, opts.Mu, opts.Method, mctx)
		roots := s.SolveAll()
		ctl.End()
		return &Result{Roots: roots, NStar: 1}, nil
	}

	// Stage 1: remainder and quotient sequences.
	onPhase("precompute")
	run.PhaseBegin("remainder")
	ctl.Begin("remainder", trace.CatPhase)
	t0 := time.Now()
	seqOpts := remseq.Options{Ctx: mctx, Grain: opts.Grain, Stop: stop}
	if pool != nil && !opts.SequentialPrecompute {
		seqOpts.Pool = pool
	}
	seq, err := remseq.Compute(p, seqOpts)
	if err != nil {
		precompute = time.Since(t0)
		ctl.End()
		run.PhaseEnd("remainder")
		return partial(err)
	}
	if err := seq.Validate(); err != nil {
		ctl.End()
		run.PhaseEnd("remainder")
		return nil, err
	}
	precompute = time.Since(t0)
	ctl.End()
	run.PhaseEnd("remainder")

	var precomputeTasks int64
	if pool != nil {
		precomputeTasks = pool.Executed()
	}

	// Stage 2: tree polynomials and interval problems.
	onPhase("tree")
	if err := stop(); err != nil {
		return partial(err)
	}
	t1 := time.Now()
	run.PhaseBegin("solve")
	ctl.Begin("solve", trace.CatPhase)
	root := tree.Build(n)
	bound := p.RootBound()
	var tally taskTally
	var onInterval sync.Once
	intervalPhase := func() { onInterval.Do(func() { onPhase("interval") }) }
	if pool == nil {
		err = solveSequential(seq, root, bound, opts, mctx, ctl, stop, intervalPhase)
	} else {
		err = solveParallel(pool, seq, root, bound, opts, mctx, &tally, intervalPhase)
	}
	treeSolve = time.Since(t1)
	ctl.End()
	run.PhaseEnd("solve")
	if err != nil {
		return partial(err)
	}
	if opts.CheckTree {
		if err := tree.CheckShape(root, n); err != nil {
			return nil, err
		}
	}
	treeSolve = time.Since(t1)

	res := &Result{
		Roots: root.Roots,
		NStar: n,
		Stats: Stats{Precompute: precompute, TreeSolve: treeSolve},
	}
	if pool != nil {
		res.Stats.Tasks = pool.Executed()
		res.Stats.SimMakespan, res.Stats.SimWork = pool.SimStats()
		res.Stats.TaskKinds = TaskKindCounts{
			Precompute:  precomputeTasks,
			ComputePoly: tally.computePoly.Load(),
			Sort:        tally.sort.Load(),
			PreInterval: tally.preInterval.Load(),
			Interval:    tally.interval.Load(),
		}
	}
	if len(res.Roots) != n {
		return nil, fmt.Errorf("core: solved %d roots for degree %d (internal invariant)", len(res.Roots), n)
	}
	return res, nil
}

// mergeRoots merges the two sorted child root slices (the SORT task).
func mergeRoots(nd *tree.Node) []dyadic.Dyadic {
	var left, right []dyadic.Dyadic
	if nd.Left != nil {
		left = nd.Left.Roots
	}
	if nd.Right != nil {
		right = nd.Right.Roots
	}
	out := make([]dyadic.Dyadic, 0, len(left)+len(right))
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		if left[i].Cmp(right[j]) <= 0 {
			out = append(out, left[i])
			i++
		} else {
			out = append(out, right[j])
			j++
		}
	}
	out = append(out, left[i:]...)
	out = append(out, right[j:]...)
	return out
}

// solveSequential runs the whole second stage in post-order on the
// calling goroutine, polling stop between nodes and between interval
// problems so cancellation and budget exhaustion abort mid-phase. The
// control lane records one task span per node step using the same tag
// names as the parallel scheduler, so sequential and parallel traces
// aggregate under the same task kinds.
func solveSequential(seq *remseq.Sequence, root *tree.Node, bound *mp.Int, opts Options, mctx metrics.Ctx, ctl *trace.Lane, stop func() error, intervalPhase func()) error {
	var werr error
	root.Walk(func(nd *tree.Node) {
		if werr != nil {
			return
		}
		if werr = stop(); werr != nil {
			return
		}
		ctl.Begin("computepoly", trace.CatTask)
		tree.ComputePoly(seq, mctx, nd)
		ctl.End()
		ctl.Begin("sort", trace.CatTask)
		ys := mergeRoots(nd)
		ctl.End()
		ctl.Begin("preinterval", trace.CatTask)
		s := interval.NewSolver(nd.P, ys, bound, opts.Mu, opts.Method, mctx)
		for i := 0; i < s.NumPoints(); i++ {
			s.EvalPoint(i)
		}
		ctl.End()
		intervalPhase()
		roots := make([]dyadic.Dyadic, s.NumRoots())
		for i := range roots {
			if werr = stop(); werr != nil {
				return
			}
			ctl.Begin("interval", trace.CatTask)
			roots[i] = s.SolveInterval(i)
			ctl.End()
		}
		nd.Roots = roots
	})
	return werr
}

// parMulSubmitter adapts the scheduler pool to mp's Parallel hook,
// tagging panel tasks so they are distinguishable on trace timelines
// and in the flight recorder. Dropping tasks is safe: a canceled pool
// drains its queue without executing, and the multiplication's claim
// loop completes on the calling worker regardless.
type parMulSubmitter struct{ pool *sched.Pool }

func (s parMulSubmitter) Submit(task func()) { s.pool.SubmitTagged("parmul", task) }

// taskTally counts executed tree-stage tasks per Fig. 3.2 kind.
type taskTally struct {
	computePoly, sort, preInterval, interval atomic.Int64
}

// nodeState carries the per-node synchronization data of the parallel
// driver: the paper's "status data structures corresponding to the
// nodes of the tree ... used to schedule the tasks" (§3.2).
type nodeState struct {
	polyGate  *sched.Gate // children's T matrices → COMPUTEPOLY
	sortGate  *sched.Gate // children's roots → SORT
	readyGate *sched.Gate // {poly done, sort done} → PREINTERVAL fan-out
	m1        tree.Matrix2
	ys        []dyadic.Dyadic
	solver    *interval.Solver
}

// solveParallel runs the second stage as a dependency-driven task graph
// on the pool. Task kinds per node (Fig. 3.2):
//
//	RECURSE      — builds the node state (the skeleton is already built
//	               by tree.Build; the state initialization here is the
//	               residue of the paper's top-down phase)
//	COMPUTEPOLY  — two 2×2 polynomial matrix products, one after the
//	               other, each split into 4 entry tasks
//	SORT         — merge the children's sorted root lists
//	PREINTERVAL  — one task per interleaving-point evaluation
//	INTERVAL     — one task per interval problem
//
// A node is complete when all its INTERVAL tasks are; completion
// signals the parent's SORT gate. COMPUTEPOLY completion signals the
// parent's COMPUTEPOLY gate.
//
// On cancellation or task failure the queue is drained without running
// (sched.Pool semantics): gates stop firing, Wait still returns, and
// the pool's first-failure error is reported instead of the roots.
func solveParallel(pool *sched.Pool, seq *remseq.Sequence, root *tree.Node, bound *mp.Int, opts Options, ctx metrics.Ctx, tally *taskTally, intervalPhase func()) error {
	n := seq.N
	states := make(map[*tree.Node]*nodeState)
	done := make(chan struct{})

	// RECURSE: allocate states top-down.
	var recurse func(nd *tree.Node)
	recurse = func(nd *tree.Node) {
		states[nd] = &nodeState{}
		if nd.Left != nil {
			recurse(nd.Left)
		}
		if nd.Right != nil {
			recurse(nd.Right)
		}
	}
	recurse(root)

	// nodeDone: node's roots are ready.
	nodeDone := func(nd *tree.Node) {
		if nd.Parent == nil {
			close(done)
			return
		}
		states[nd.Parent].sortGate.Done()
	}

	// polyDone: node's P (and T if applicable) is ready.
	polyDone := func(nd *tree.Node) {
		if nd.Parent != nil {
			if ps := states[nd.Parent]; ps.polyGate != nil {
				ps.polyGate.Done()
			}
		}
		states[nd].readyGate.Done()
	}

	// Wire up each node's gates (bottom-up so gates exist before any
	// task can fire them; no task runs until the pool sees it).
	root.Walk(func(nd *tree.Node) {
		st := states[nd]

		// PREINTERVAL fan-out, then INTERVAL fan-out, once both the
		// polynomial and the merged child roots are available.
		st.readyGate = sched.NewGateTagged(pool, 2, "preinterval", func() {
			st.solver = interval.NewSolver(nd.P, st.ys, bound, opts.Mu, opts.Method, ctx)
			d := st.solver.NumRoots()
			roots := make([]dyadic.Dyadic, d)
			intervalGate := sched.NewGateTagged(pool, d, "gate", func() {
				nd.Roots = roots
				nodeDone(nd)
			})
			preGate := sched.NewGateTagged(pool, st.solver.NumPoints(), "gate", func() {
				for i := 0; i < d; i++ {
					i := i
					pool.SubmitTagged("interval", func() { // INTERVAL task
						intervalPhase()
						tally.interval.Add(1)
						roots[i] = st.solver.SolveInterval(i)
						intervalGate.Done()
					})
				}
			})
			for i := 0; i < st.solver.NumPoints(); i++ {
				i := i
				pool.SubmitTagged("preinterval", func() { // PREINTERVAL task
					tally.preInterval.Add(1)
					st.solver.EvalPoint(i)
					preGate.Done()
				})
			}
		})

		// SORT gate: children's roots.
		nChildren := 0
		if nd.Left != nil {
			nChildren++
		}
		if nd.Right != nil {
			nChildren++
		}
		st.sortGate = sched.NewGateTagged(pool, nChildren, "sort", func() { // SORT task
			tally.sort.Add(1)
			st.ys = mergeRoots(nd)
			st.readyGate.Done()
		})

		// COMPUTEPOLY path: seed tasks (leaves, rightmost spine) are
		// submitted in a second pass below, after all gates exist.
		switch {
		case nd.J == n, nd.IsLeaf():
			// Rightmost spine (P = F_{i-1}, no products) or leaf (T = Ŝ_i).
		default:
			needs := 1 // left child always carries a T here
			if nd.Right != nil {
				needs = 2
			}
			st.polyGate = sched.NewGateTagged(pool, needs, "computepoly", func() {
				// First product: M1 = Ŝ_k · T_left, 4 entry tasks.
				sh := tree.SHat(seq, nd.K)
				tctx := ctx.In(metrics.PhaseTree)
				secondGate := sched.NewGateTagged(pool, 4, "computepoly", func() {
					tally.computePoly.Add(1)
					// Second product (or scalar fold) + exact division.
					if nd.Right == nil {
						t := st.m1.DivExact(tctx, seq.Csq(nd.K-1))
						nd.T = t
						nd.P = t[1][1]
						polyDone(nd)
						return
					}
					divisor := new(mp.Int).MulProfile(tctx.Profile, seq.Csq(nd.K), seq.Csq(nd.K-1))
					prod := new(tree.Matrix2)
					prodGate := sched.NewGateTagged(pool, 4, "computepoly", func() {
						tally.computePoly.Add(1)
						t := prod.DivExact(tctx, divisor)
						nd.T = t
						nd.P = t[1][1]
						polyDone(nd)
					})
					for r := 0; r < 2; r++ {
						for c := 0; c < 2; c++ {
							r, c := r, c
							pool.SubmitTagged("computepoly", func() { // COMPUTEPOLY entry task (2nd product)
								tally.computePoly.Add(1)
								prod[r][c] = tree.MulEntry(tctx, nd.Right.T, &st.m1, r, c)
								prodGate.Done()
							})
						}
					}
				})
				for r := 0; r < 2; r++ {
					for c := 0; c < 2; c++ {
						r, c := r, c
						pool.SubmitTagged("computepoly", func() { // COMPUTEPOLY entry task (1st product)
							tally.computePoly.Add(1)
							st.m1[r][c] = tree.MulEntry(tctx, sh, nd.Left.T, r, c)
							secondGate.Done()
						})
					}
				}
			})
		}
	})

	// Second pass: submit the seed COMPUTEPOLY tasks now that every gate
	// exists (a seed completing mid-wiring could otherwise signal a
	// parent whose gates are not yet constructed).
	root.Walk(func(nd *tree.Node) {
		if nd.J == n || nd.IsLeaf() {
			nd := nd
			pool.SubmitTagged("computepoly", func() { // COMPUTEPOLY seed task
				tally.computePoly.Add(1)
				tree.ComputePoly(seq, ctx, nd)
				polyDone(nd)
			})
		}
	})

	pool.Wait()
	if err := pool.Err(); err != nil {
		// Canceled or failed: the drained queue left gates unfired, so
		// done may never close. The partial node results are abandoned.
		return err
	}
	// Healthy drain: the root's completion closed done inside the last
	// task, strictly before Wait returned.
	<-done
	return nil
}

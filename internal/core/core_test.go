package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"realroots/internal/charpoly"
	"realroots/internal/dyadic"
	"realroots/internal/interval"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/remseq"
	"realroots/internal/sched"
	"realroots/internal/tree"
)

func dy(num int64, scale uint) dyadic.Dyadic { return dyadic.New(mp.NewInt(num), scale) }

func distinctRoots(r *rand.Rand, k, span int) []*mp.Int {
	seen := map[int64]bool{}
	var roots []*mp.Int
	for len(roots) < k {
		v := int64(r.Intn(2*span+1) - span)
		if !seen[v] {
			seen[v] = true
			roots = append(roots, mp.NewInt(v))
		}
	}
	return roots
}

func sortedInt64(roots []*mp.Int) []int64 {
	vs := make([]int64, len(roots))
	for i, r := range roots {
		vs[i] = r.Int64()
	}
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
	return vs
}

func checkIntegerRoots(t *testing.T, res *Result, want []int64) {
	t.Helper()
	if len(res.Roots) != len(want) {
		t.Fatalf("got %d roots, want %d", len(res.Roots), len(want))
	}
	for i, r := range res.Roots {
		// Integer roots are exactly representable at any µ.
		if !r.IsInt() || r.Num().Int64() != want[i] {
			t.Fatalf("root %d = %v, want %d", i, r, want[i])
		}
	}
}

func TestSequentialIntegerRoots(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		n := 1 + r.Intn(12)
		roots := distinctRoots(r, n, 40)
		p := poly.FromRoots(roots...)
		res, err := FindRoots(p, Options{Mu: 8})
		if err != nil {
			t.Fatalf("FindRoots: %v", err)
		}
		checkIntegerRoots(t, res, sortedInt64(roots))
		if res.Degree != n || res.NStar != n || !res.Squarefree {
			t.Fatalf("metadata: %+v", res)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for trial := 0; trial < 8; trial++ {
		n := 3 + r.Intn(14)
		roots := distinctRoots(r, n, 60)
		p := poly.FromRoots(roots...)
		seqRes, err := FindRoots(p, Options{Mu: 16})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8} {
			parRes, err := FindRoots(p, Options{Mu: 16, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if len(parRes.Roots) != len(seqRes.Roots) {
				t.Fatalf("workers=%d: %d roots vs %d", workers, len(parRes.Roots), len(seqRes.Roots))
			}
			for i := range parRes.Roots {
				if !parRes.Roots[i].Equal(seqRes.Roots[i]) {
					t.Fatalf("workers=%d root %d: %v vs %v", workers, i, parRes.Roots[i], seqRes.Roots[i])
				}
			}
			if parRes.Stats.Tasks == 0 {
				t.Fatalf("workers=%d executed no scheduler tasks", workers)
			}
		}
	}
}

func TestSequentialPrecomputeOption(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	p := poly.FromRoots(distinctRoots(r, 9, 30)...)
	a, err := FindRoots(p, Options{Mu: 12, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindRoots(p, Options{Mu: 12, Workers: 4, SequentialPrecompute: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Roots {
		if !a.Roots[i].Equal(b.Roots[i]) {
			t.Fatalf("root %d differs with sequential precompute", i)
		}
	}
}

func TestDyadicRootsHighPrecision(t *testing.T) {
	// p with roots -11/8, 3/16, 9/2 — exact at µ ≥ 4.
	roots := []dyadic.Dyadic{dy(-11, 3), dy(3, 4), dy(9, 1)}
	p := poly.FromInt64s(1)
	for _, rt := range roots {
		p = p.Mul(poly.New(new(mp.Int).Neg(rt.Num()), new(mp.Int).Lsh(mp.NewInt(1), rt.Scale())))
	}
	for _, workers := range []int{1, 4} {
		res, err := FindRoots(p, Options{Mu: 24, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, want := range roots {
			if !res.Roots[i].Equal(want) {
				t.Fatalf("root %d = %v, want %v", i, res.Roots[i], want)
			}
		}
	}
}

func TestCeilingConvention(t *testing.T) {
	// Root at 1/4 with µ=1 must report ⌈2·(1/4)⌉/2 = 1/2.
	p := poly.FromInt64s(-1, 4) // 4x - 1
	res, err := FindRoots(p, Options{Mu: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Roots[0].Equal(dy(1, 1)) {
		t.Fatalf("root = %v, want 1/2", res.Roots[0])
	}
}

func TestRepeatedRootsReduceToDistinct(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(1), mp.NewInt(1), mp.NewInt(1), mp.NewInt(-4), mp.NewInt(-4), mp.NewInt(9))
	res, err := FindRoots(p, Options{Mu: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Squarefree {
		t.Error("input reported squarefree")
	}
	if res.NStar != 3 || res.Degree != 6 {
		t.Fatalf("NStar=%d Degree=%d", res.NStar, res.Degree)
	}
	checkIntegerRoots(t, res, []int64{-4, 1, 9})
}

func TestMultiplicities(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(1), mp.NewInt(1), mp.NewInt(1), mp.NewInt(-4), mp.NewInt(-4), mp.NewInt(9))
	rm, err := FindRootsWithMultiplicity(p, Options{Mu: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		v int64
		m int
	}{{-4, 2}, {1, 3}, {9, 1}}
	if len(rm) != len(want) {
		t.Fatalf("got %d roots", len(rm))
	}
	for i, w := range want {
		if rm[i].Root.Num().Int64() != w.v || !rm[i].Root.IsInt() || rm[i].Mult != w.m {
			t.Fatalf("entry %d = {%v, %d}, want {%d, %d}", i, rm[i].Root, rm[i].Mult, w.v, w.m)
		}
	}
}

func TestErrorCases(t *testing.T) {
	if _, err := FindRoots(poly.Zero(), Options{Mu: 4}); err == nil {
		t.Error("zero polynomial accepted")
	}
	if _, err := FindRoots(poly.FromInt64s(3), Options{Mu: 4}); err == nil {
		t.Error("constant accepted")
	}
	if _, err := FindRoots(poly.FromInt64s(1, 0, 1), Options{Mu: 4}); !errors.Is(err, remseq.ErrNotAllReal) {
		t.Errorf("x²+1: err = %v", err)
	}
	// Mixed real/complex roots.
	p := poly.FromInt64s(1, 0, 1).Mul(poly.FromRoots(mp.NewInt(2), mp.NewInt(-3)))
	if _, err := FindRoots(p, Options{Mu: 4}); !errors.Is(err, remseq.ErrNotAllReal) {
		t.Errorf("mixed: err = %v", err)
	}
}

func TestLinearAndQuadratic(t *testing.T) {
	res, err := FindRoots(poly.FromInt64s(-14, 2), Options{Mu: 4}) // 2x-14
	if err != nil {
		t.Fatal(err)
	}
	checkIntegerRoots(t, res, []int64{7})

	res, err = FindRoots(poly.FromRoots(mp.NewInt(-1), mp.NewInt(1)), Options{Mu: 4, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkIntegerRoots(t, res, []int64{-1, 1})
}

func TestCharPolyEigenvalues(t *testing.T) {
	// End-to-end on the paper's workload: eigenvalues of a symmetric
	// matrix, validated against the matrix's trace (sum of eigenvalues).
	r := rand.New(rand.NewSource(64))
	for trial := 0; trial < 5; trial++ {
		n := 6 + r.Intn(6)
		m := charpoly.RandomSymmetric01(r, n)
		p := charpoly.CharPoly(m)
		const mu = 24
		rm, err := FindRootsWithMultiplicity(p, Options{Mu: mu, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		sum := 0.0
		for _, e := range rm {
			total += e.Mult
			sum += float64(e.Mult) * e.Root.Float64()
		}
		if total != n {
			t.Fatalf("multiplicities sum to %d for n=%d", total, n)
		}
		// Σ λ_i = tr(M); each approximation is within 2^-µ above its root.
		tr := 0.0
		for i := 0; i < n; i++ {
			tr += float64(m.At(i, i).Int64())
		}
		if diff := sum - tr; diff < 0 || diff > float64(n)/float64(int64(1)<<mu)+1e-9 {
			t.Fatalf("eigenvalue sum %v vs trace %v (diff %v)", sum, tr, diff)
		}
	}
}

func TestMethodsAgreeEndToEnd(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	p := poly.FromRoots(distinctRoots(r, 10, 50)...)
	var base []dyadic.Dyadic
	for _, m := range []interval.Method{interval.MethodHybrid, interval.MethodBisection, interval.MethodNewton} {
		res, err := FindRoots(p, Options{Mu: 20, Method: m, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if base == nil {
			base = res.Roots
			continue
		}
		for i := range base {
			if !base[i].Equal(res.Roots[i]) {
				t.Fatalf("%v: root %d differs", m, i)
			}
		}
	}
}

func TestCheckTreeOption(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	p := poly.FromRoots(distinctRoots(r, 8, 30)...)
	if _, err := FindRoots(p, Options{Mu: 8, CheckTree: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := FindRoots(p, Options{Mu: 8, Workers: 4, CheckTree: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCountersPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	p := poly.FromRoots(distinctRoots(r, 9, 30)...)
	var c metrics.Counters
	if _, err := FindRoots(p, Options{Mu: 16, Counters: &c}); err != nil {
		t.Fatal(err)
	}
	rep := c.Snapshot()
	for _, ph := range []metrics.Phase{metrics.PhaseRemainder, metrics.PhaseTree, metrics.PhasePreInterval} {
		if rep.Phases[ph].Muls == 0 {
			t.Errorf("phase %v recorded no multiplications", ph)
		}
	}
	if rep.Total().Muls < 100 {
		t.Errorf("implausibly few multiplications: %d", rep.Total().Muls)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	r := rand.New(rand.NewSource(68))
	p := poly.FromRoots(distinctRoots(r, 11, 100)...)
	var prev []dyadic.Dyadic
	for run := 0; run < 4; run++ {
		res, err := FindRoots(p, Options{Mu: 16, Workers: 6})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			for i := range prev {
				if !prev[i].Equal(res.Roots[i]) {
					t.Fatalf("run %d root %d differs", run, i)
				}
			}
		}
		prev = res.Roots
	}
}

func TestNegativeLeadingCoefficient(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(-2), mp.NewInt(5), mp.NewInt(7)).ScaleInt(mp.NewInt(-3))
	res, err := FindRoots(p, Options{Mu: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkIntegerRoots(t, res, []int64{-2, 5, 7})
}

func TestLargeDegreeSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("large degree in -short mode")
	}
	r := rand.New(rand.NewSource(69))
	roots := distinctRoots(r, 25, 500)
	p := poly.FromRoots(roots...)
	res, err := FindRoots(p, Options{Mu: 32, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	checkIntegerRoots(t, res, sortedInt64(roots))
}

func TestSimulatedWorkersMatchResults(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	p := poly.FromRoots(distinctRoots(r, 12, 60)...)
	seqRes, err := FindRoots(p, Options{Mu: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, vw := range []int{1, 4, 16} {
		simRes, err := FindRoots(p, Options{Mu: 16, SimulateWorkers: vw})
		if err != nil {
			t.Fatalf("sim P=%d: %v", vw, err)
		}
		for i := range seqRes.Roots {
			if !seqRes.Roots[i].Equal(simRes.Roots[i]) {
				t.Fatalf("sim P=%d root %d differs", vw, i)
			}
		}
		if simRes.Stats.SimMakespan <= 0 || simRes.Stats.SimWork <= 0 {
			t.Fatalf("sim P=%d stats empty: %+v", vw, simRes.Stats)
		}
		if simRes.Stats.SimMakespan > simRes.Stats.SimWork {
			t.Fatalf("sim P=%d makespan > work", vw)
		}
	}
}

func TestSimulatedSpeedupIncreasesWithP(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	p := poly.FromRoots(distinctRoots(r, 30, 300)...)
	makespan := map[int]float64{}
	for _, vw := range []int{1, 8} {
		res, err := FindRoots(p, Options{Mu: 32, SimulateWorkers: vw})
		if err != nil {
			t.Fatal(err)
		}
		makespan[vw] = res.Stats.SimMakespan.Seconds()
	}
	speedup := makespan[1] / makespan[8]
	if speedup < 2 {
		t.Fatalf("simulated speedup at P=8 is only %.2f", speedup)
	}
}

func TestSimulateAndWorkersMutuallyExclusive(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(1), mp.NewInt(2), mp.NewInt(3))
	if _, err := FindRoots(p, Options{Mu: 8, Workers: 2, SimulateWorkers: 2}); err == nil {
		t.Fatal("Workers+SimulateWorkers accepted")
	}
}

func TestTaskKindCounts(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	n := 15
	p := poly.FromRoots(distinctRoots(r, n, 80)...)
	res, err := FindRoots(p, Options{Mu: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	tk := res.Stats.TaskKinds
	if tk.Total() == 0 || tk.Total() > res.Stats.Tasks {
		t.Fatalf("task kinds total %d vs executed %d", tk.Total(), res.Stats.Tasks)
	}
	// Structural counts: one SORT per node; one INTERVAL per root per
	// node (Σ node sizes); one PREINTERVAL per interleaving point per
	// node (Σ sizes + node count).
	nodes, sizes := 0, 0
	tr := tree.Build(n)
	tr.Walk(func(nd *tree.Node) { nodes++; sizes += nd.Size() })
	if tk.Sort != int64(nodes) {
		t.Errorf("sort tasks %d, want %d", tk.Sort, nodes)
	}
	if tk.Interval != int64(sizes) {
		t.Errorf("interval tasks %d, want %d", tk.Interval, sizes)
	}
	if tk.PreInterval != int64(sizes+nodes) {
		t.Errorf("preinterval tasks %d, want %d", tk.PreInterval, sizes+nodes)
	}
	if tk.Precompute == 0 || tk.ComputePoly == 0 {
		t.Errorf("missing precompute/computepoly tasks: %+v", tk)
	}
	// Sequential runs report no task-kind counts.
	seqRes, err := FindRoots(p, Options{Mu: 16})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Stats.TaskKinds.Total() != 0 {
		t.Error("sequential run reported task kinds")
	}
}

func TestQuickEndToEndDyadicRoots(t *testing.T) {
	// Property: for random dyadic-rooted polynomials, FindRoots returns
	// exactly the ceiling approximations of the known roots, at random
	// µ and worker counts.
	f := func(seed int64, muRaw, wRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mu := uint(muRaw%20) + 1
		workers := int(wRaw%4) + 1
		k := 2 + r.Intn(6)
		seen := map[string]bool{}
		var roots []dyadic.Dyadic
		for len(roots) < k {
			d := dyadic.New(mp.NewInt(int64(r.Intn(513)-256)), uint(r.Intn(4)))
			if !seen[d.String()] {
				seen[d.String()] = true
				roots = append(roots, d)
			}
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i].Cmp(roots[j]) < 0 })
		p := poly.FromInt64s(1)
		for _, rt := range roots {
			p = p.Mul(poly.New(new(mp.Int).Neg(rt.Num()), new(mp.Int).Lsh(mp.NewInt(1), rt.Scale())))
		}
		res, err := FindRoots(p, Options{Mu: mu, Workers: workers})
		if err != nil || len(res.Roots) != k {
			return false
		}
		for i, rt := range roots {
			if !res.Roots[i].Equal(rt.CeilGrid(mu)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestParallelMulOption checks the ParallelMul plumbing: roots are
// bit-identical with the option on and off (products this small never
// engage the panel path, so this pins the fallback; the panel kernels
// themselves are pinned in internal/mp), and the option is inert under
// the schoolbook profile and simulation mode.
func TestParallelMulOption(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	roots := distinctRoots(r, 12, 80)
	p := poly.FromRoots(roots...)
	base, err := FindRoots(p, Options{Mu: 24, Profile: mp.Fast})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Mu: 24, Profile: mp.Fast, Workers: 4, ParallelMul: true},
		{Mu: 24, Profile: mp.Schoolbook, Workers: 4, ParallelMul: true},
		{Mu: 24, Profile: mp.Fast, SimulateWorkers: 4, ParallelMul: true},
	} {
		res, err := FindRoots(p, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if len(res.Roots) != len(base.Roots) {
			t.Fatalf("%+v: %d roots vs %d", opts, len(res.Roots), len(base.Roots))
		}
		for i := range res.Roots {
			if !res.Roots[i].Equal(base.Roots[i]) {
				t.Fatalf("%+v root %d: %v vs %v", opts, i, res.Roots[i], base.Roots[i])
			}
		}
	}
}

// TestParMulSubmitterTag pins the adapter's scheduler tag: panel tasks
// must be visible as "parmul" on trace timelines.
func TestParMulSubmitterTag(t *testing.T) {
	pool := sched.NewPool(2)
	defer pool.Close()
	done := make(chan struct{})
	parMulSubmitter{pool}.Submit(func() { close(done) })
	<-done
	if got := pool.Stats().Executed; got != 1 {
		t.Fatalf("executed = %d, want 1", got)
	}
}

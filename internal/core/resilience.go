package core

import (
	"context"
	"errors"
	"fmt"

	"realroots/internal/sched"
	"realroots/internal/telemetry"
)

// Typed resilience errors. A run that is cut short returns exactly one
// of these (possibly wrapped), alongside a partial Result carrying the
// Stats gathered so far. The messages carry the public package's prefix
// because package realroots re-exports these values unchanged.
var (
	// ErrCanceled reports that the run's context was canceled.
	ErrCanceled = errors.New("realroots: run canceled")
	// ErrDeadline reports that the run's deadline or timeout expired.
	ErrDeadline = errors.New("realroots: deadline exceeded")
	// ErrBudgetExceeded reports that the run spent more than
	// Options.MaxBitOps bit operations.
	ErrBudgetExceeded = errors.New("realroots: bit-operation budget exceeded")
	// ErrInvalidOptions is matched (via errors.Is) by every
	// *OptionError returned from Options.Validate.
	ErrInvalidOptions = errors.New("realroots: invalid options")
)

// MaxMu is the largest accepted output precision. µ is a shift count:
// beyond ~10⁶ the scaled evaluations allocate multi-megabit integers
// per coefficient and a typo'd precision would look like a hang, so
// Validate rejects it up front instead.
const MaxMu = 1 << 20

// An OptionError reports an invalid Options field. It matches
// ErrInvalidOptions via errors.Is.
type OptionError struct {
	Field  string // offending Options field
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("realroots: invalid Options.%s: %s", e.Field, e.Reason)
}

// Is reports target == ErrInvalidOptions, so callers can test the
// class without naming the struct type.
func (e *OptionError) Is(target error) bool { return target == ErrInvalidOptions }

// Validate checks the options for contradictions the run would
// otherwise surface as late panics or silent misbehavior. FindRoots
// calls it on entry; it is exported for callers that construct Options
// programmatically.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return &OptionError{Field: "Workers", Reason: fmt.Sprintf("negative worker count %d", o.Workers)}
	}
	if o.SimulateWorkers < 0 {
		return &OptionError{Field: "SimulateWorkers", Reason: fmt.Sprintf("negative virtual worker count %d", o.SimulateWorkers)}
	}
	if o.Workers > 0 && o.SimulateWorkers > 0 {
		return &OptionError{Field: "SimulateWorkers", Reason: "mutually exclusive with Workers"}
	}
	if o.Mu > MaxMu {
		return &OptionError{Field: "Mu", Reason: fmt.Sprintf("precision %d exceeds MaxMu = %d", o.Mu, MaxMu)}
	}
	if o.MaxBitOps < 0 {
		return &OptionError{Field: "MaxBitOps", Reason: fmt.Sprintf("negative budget %d", o.MaxBitOps)}
	}
	if !o.Profile.Valid() {
		return &OptionError{Field: "Profile", Reason: fmt.Sprintf("unknown arithmetic profile %d", o.Profile)}
	}
	return nil
}

// IsResilience reports whether err is one of the typed run-interruption
// outcomes: cancellation, deadline, budget exhaustion, or an isolated
// task panic. Precondition violations (ErrNotAllReal, validation
// errors) are not resilience errors — retrying cannot help them.
func IsResilience(err error) bool {
	var pe *sched.PanicError
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, ErrDeadline) ||
		errors.Is(err, ErrBudgetExceeded) ||
		errors.As(err, &pe)
}

// RunOutcome classifies a run's final error as a telemetry outcome.
// The error taxonomy lives here, not in telemetry, because telemetry
// sits below core in the import graph.
func RunOutcome(err error) telemetry.Outcome {
	var pe *sched.PanicError
	switch {
	case err == nil:
		return telemetry.OutcomeOK
	case errors.Is(err, ErrBudgetExceeded):
		return telemetry.OutcomeBudget
	case errors.Is(err, ErrDeadline):
		return telemetry.OutcomeDeadline
	case errors.As(err, &pe):
		return telemetry.OutcomePanic
	case errors.Is(err, ErrCanceled):
		return telemetry.OutcomeCanceled
	default:
		return telemetry.OutcomeError
	}
}

// ctxErr maps a context error to the typed taxonomy.
func ctxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ErrCanceled
}

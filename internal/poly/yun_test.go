package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"realroots/internal/mp"
)

func TestYunSimple(t *testing.T) {
	// (x-1)(x-2)²(x+3)³.
	p := FromRoots(mp.NewInt(1)).
		Mul(FromRoots(mp.NewInt(2), mp.NewInt(2))).
		Mul(FromRoots(mp.NewInt(-3), mp.NewInt(-3), mp.NewInt(-3)))
	fs := Yun(p)
	if len(fs) != 3 {
		t.Fatalf("got %d factors", len(fs))
	}
	if !fs[0].Equal(FromRoots(mp.NewInt(1))) {
		t.Errorf("u1 = %s", fs[0])
	}
	if !fs[1].Equal(FromRoots(mp.NewInt(2))) {
		t.Errorf("u2 = %s", fs[1])
	}
	if !fs[2].Equal(FromRoots(mp.NewInt(-3))) {
		t.Errorf("u3 = %s", fs[2])
	}
}

func TestYunSquarefreeInput(t *testing.T) {
	p := FromRoots(mp.NewInt(0), mp.NewInt(4), mp.NewInt(-9))
	fs := Yun(p)
	if len(fs) != 1 || !fs[0].Equal(p) {
		t.Fatalf("Yun(squarefree) = %v", fs)
	}
}

func TestYunGapMultiplicities(t *testing.T) {
	// Only multiplicities 1 and 3 present: u2 must be the constant 1.
	p := FromRoots(mp.NewInt(5)).Mul(FromRoots(mp.NewInt(-1), mp.NewInt(-1), mp.NewInt(-1)))
	fs := Yun(p)
	if len(fs) != 3 {
		t.Fatalf("got %d factors", len(fs))
	}
	if fs[1].Degree() != 0 {
		t.Errorf("u2 = %s, want a constant", fs[1])
	}
	if !fs[2].Equal(FromRoots(mp.NewInt(-1))) {
		t.Errorf("u3 = %s", fs[2])
	}
}

func TestYunEdgeCases(t *testing.T) {
	if Yun(Zero()) != nil {
		t.Error("Yun(0) != nil")
	}
	if Yun(FromInt64s(42)) != nil {
		t.Error("Yun(const) != nil")
	}
	fs := Yun(FromInt64s(-3, 6)) // 6x-3, content 3
	if len(fs) != 1 || !fs[0].Equal(FromInt64s(-1, 2)) {
		t.Errorf("Yun(6x-3) = %v", fs)
	}
}

func TestQuickYunReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Build ∏ (x - r_k)^{m_k} with random multiplicities.
		nroots := 1 + r.Intn(4)
		seen := map[int64]bool{}
		p := FromInt64s(1)
		mult := map[int64]int{}
		for len(mult) < nroots {
			v := int64(r.Intn(21) - 10)
			if seen[v] {
				continue
			}
			seen[v] = true
			m := 1 + r.Intn(3)
			mult[v] = m
			for j := 0; j < m; j++ {
				p = p.MulLinear(mp.NewInt(v))
			}
		}
		fs := Yun(p)
		// Reconstruct ∏ u_k^k and compare with p (both monic here).
		re := FromInt64s(1)
		for k, u := range fs {
			for j := 0; j <= k; j++ {
				re = re.Mul(u)
			}
		}
		if !re.Equal(p) {
			return false
		}
		// Each u_k contains exactly the multiplicity-(k+1) roots.
		for v, m := range mult {
			if fs[m-1].Eval(mp.NewInt(v)).Sign() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

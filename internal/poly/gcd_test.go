package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"realroots/internal/mp"
)

func TestGCDOfProducts(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 60; i++ {
		// g·a and g·b share at least g.
		g := FromRoots(mp.NewInt(int64(r.Intn(21)-10)), mp.NewInt(int64(r.Intn(21)-10)))
		a := FromRoots(mp.NewInt(int64(r.Intn(21) + 20)))
		b := FromRoots(mp.NewInt(int64(-20 - r.Intn(21))))
		got := GCD(g.Mul(a), g.Mul(b))
		// a and b have no common roots with each other by construction, so
		// gcd = g up to content/sign — and all are monic here.
		if !got.Equal(g) {
			t.Fatalf("GCD(ga, gb) = %s, want %s (a=%s b=%s)", got, g, a, b)
		}
	}
}

func TestGCDCoprime(t *testing.T) {
	a := FromRoots(mp.NewInt(1), mp.NewInt(2))
	b := FromRoots(mp.NewInt(3), mp.NewInt(4))
	if got := GCD(a, b); got.Degree() != 0 {
		t.Fatalf("GCD of coprime polys has degree %d", got.Degree())
	}
}

func TestGCDZeroCases(t *testing.T) {
	p := FromInt64s(1, 2)
	if !GCD(p, Zero()).Equal(p) {
		t.Error("GCD(p, 0) != p")
	}
	if !GCD(Zero(), p).Equal(p) {
		t.Error("GCD(0, p) != p")
	}
	if !GCD(Zero(), Zero()).IsZero() {
		t.Error("GCD(0, 0) != 0")
	}
}

func TestGCDPositiveLead(t *testing.T) {
	a := FromInt64s(-2, -2).Mul(FromInt64s(1, 0, 1)) // (-2x-2)(x²+1)
	b := FromInt64s(-1, -1)                          // -(x+1)
	g := GCD(a, b)
	if g.Lead().Sign() <= 0 {
		t.Fatalf("GCD lead sign %d", g.Lead().Sign())
	}
	if !g.Equal(FromInt64s(1, 1)) {
		t.Fatalf("GCD = %s, want x + 1", g)
	}
}

func TestSquarefreePart(t *testing.T) {
	// (x-1)²(x+2)³(x-5) → (x-1)(x+2)(x-5).
	p := FromRoots(mp.NewInt(1), mp.NewInt(1), mp.NewInt(-2), mp.NewInt(-2), mp.NewInt(-2), mp.NewInt(5))
	sf := p.SquarefreePart()
	want := FromRoots(mp.NewInt(1), mp.NewInt(-2), mp.NewInt(5))
	if !sf.Equal(want) {
		t.Fatalf("squarefree part = %s, want %s", sf, want)
	}
	if !sf.IsSquarefree() {
		t.Error("squarefree part reported non-squarefree")
	}
	if p.IsSquarefree() {
		t.Error("p with repeated roots reported squarefree")
	}
}

func TestSquarefreePartOfSquarefree(t *testing.T) {
	p := FromRoots(mp.NewInt(0), mp.NewInt(7), mp.NewInt(-3))
	if !p.SquarefreePart().Equal(p) {
		t.Errorf("squarefree part changed a squarefree polynomial: %s", p.SquarefreePart())
	}
}

func TestSquarefreeRemovesContent(t *testing.T) {
	p := FromRoots(mp.NewInt(2), mp.NewInt(3)).ScaleInt(mp.NewInt(-6))
	sf := p.SquarefreePart()
	want := FromRoots(mp.NewInt(2), mp.NewInt(3))
	if !sf.Equal(want) {
		t.Fatalf("squarefree part = %s, want %s", sf, want)
	}
}

func TestSquarefreeEdgeCases(t *testing.T) {
	if !Zero().SquarefreePart().IsZero() {
		t.Error("SquarefreePart(0) != 0")
	}
	c := FromInt64s(-6)
	if got := c.SquarefreePart(); got.Degree() != 0 || got.Coeff(0).Int64() != 1 {
		t.Errorf("SquarefreePart(-6) = %s", got)
	}
}

func TestDivMod(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	for i := 0; i < 80; i++ {
		q := randPoly(r, 5, 20)
		v := randPoly(r, 4, 20)
		if v.IsZero() {
			continue
		}
		u := q.Mul(v)
		gotQ, gotR := DivMod(u, v)
		if !gotR.IsZero() {
			t.Fatalf("DivMod(%s·%s) remainder %s", q, v, gotR)
		}
		if !gotQ.Equal(q) {
			t.Fatalf("DivMod quotient %s, want %s", gotQ, q)
		}
	}
}

func TestDivModWithRemainder(t *testing.T) {
	u := FromInt64s(1, 0, 1) // x²+1
	v := FromInt64s(1, 1)    // x+1
	q, r := DivMod(u, v)
	// x²+1 = (x-1)(x+1) + 2.
	if !q.Equal(FromInt64s(-1, 1)) || !r.Equal(FromInt64s(2)) {
		t.Fatalf("DivMod = (%s, %s)", q, r)
	}
}

func TestQuickGCDDividesBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		roots := make([]*mp.Int, 2+r.Intn(3))
		for i := range roots {
			roots[i] = mp.NewInt(int64(r.Intn(11) - 5))
		}
		shared := FromRoots(roots[0])
		a := shared.Mul(FromRoots(roots[1:]...))
		b := shared.Mul(FromInt64s(int64(1+r.Intn(5)), 0, 1)) // times x²+c (no real roots)
		g := GCD(a, b)
		// g divides both.
		if _, rem := DivMod(a.ScaleInt(pow(g.Lead(), a.Degree())), g); !rem.IsZero() {
			// scale to keep the quotient integral
			return false
		}
		_, rem := DivMod(b.ScaleInt(pow(g.Lead(), b.Degree())), g)
		return rem.IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func pow(x *mp.Int, k int) *mp.Int {
	z := mp.NewInt(1)
	for i := 0; i < k; i++ {
		z = new(mp.Int).Mul(z, x)
	}
	return z
}

// TestGCDProfileAgreement checks that the Fast profile's subresultant
// PRS produces the same primitive gcd as the Schoolbook primitive PRS,
// across shared-factor, coprime, repeated-root, and zero inputs.
func TestGCDProfileAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	randPoly := func(deg int) *Poly {
		roots := make([]*mp.Int, deg)
		for i := range roots {
			roots[i] = mp.NewInt(int64(r.Intn(41) - 20))
		}
		return FromRoots(roots...).ScaleInt(mp.NewInt(int64(r.Intn(5) + 1)))
	}
	for i := 0; i < 40; i++ {
		g := randPoly(r.Intn(3) + 1)
		a := g.Mul(randPoly(r.Intn(4) + 1))
		b := g.Mul(randPoly(r.Intn(4) + 1))
		want := GCD(a, b)
		got := GCDProfile(a, b, mp.Fast)
		if !got.Equal(want) {
			t.Fatalf("profile gcd mismatch: fast=%s schoolbook=%s (a=%s b=%s)", got, want, a, b)
		}
	}
	// Zero and constant cases.
	p := FromInt64s(2, 4)
	if !GCDProfile(p, Zero(), mp.Fast).Equal(GCD(p, Zero())) {
		t.Error("fast GCD(p, 0) disagrees")
	}
	if !GCDProfile(Zero(), Zero(), mp.Fast).IsZero() {
		t.Error("fast GCD(0, 0) != 0")
	}
	if g := GCDProfile(FromInt64s(6), FromInt64s(4), mp.Fast); g.Degree() != 0 {
		t.Errorf("fast GCD of constants has degree %d", g.Degree())
	}
}

// TestSquarefreeProfileAgreement checks the profile variants of the
// squarefree predicates against their schoolbook counterparts,
// including a high-multiplicity input that stresses the subresultant
// h-sequence (d > 1 steps).
func TestSquarefreeProfileAgreement(t *testing.T) {
	cases := []*Poly{
		FromRoots(mp.NewInt(1), mp.NewInt(2), mp.NewInt(3)),
		FromRoots(mp.NewInt(5), mp.NewInt(5)),
		FromRoots(mp.NewInt(-1), mp.NewInt(-1), mp.NewInt(-1), mp.NewInt(4)),
		FromInt64s(0, 0, 0, 1), // x³: triple root at 0
		FromInt64s(7),
		FromInt64s(-3, 0, 0, 0, 0, 3), // sparse, d > 1 pseudo-division steps
	}
	for _, p := range cases {
		if got, want := p.IsSquarefreeProfile(mp.Fast), p.IsSquarefree(); got != want {
			t.Errorf("IsSquarefreeProfile(%s) = %v, want %v", p, got, want)
		}
		if got, want := p.SquarefreePartProfile(mp.Fast), p.SquarefreePart(); !got.Equal(want) {
			t.Errorf("SquarefreePartProfile(%s) = %s, want %s", p, got, want)
		}
	}
}

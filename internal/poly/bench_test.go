package poly

import (
	"fmt"
	"math/rand"
	"testing"

	"realroots/internal/mp"
)

func benchPoly(deg, coeffBits int, seed int64) *Poly {
	r := rand.New(rand.NewSource(seed))
	c := make([]*mp.Int, deg+1)
	for i := range c {
		c[i] = mp.RandInt(r, coeffBits)
		if i == deg && c[i].IsZero() {
			c[i] = mp.NewInt(1)
		}
	}
	return New(c...)
}

func BenchmarkMul(b *testing.B) {
	for _, deg := range []int{8, 32, 64} {
		p := benchPoly(deg, 256, 1)
		q := benchPoly(deg, 256, 2)
		b.Run(fmt.Sprintf("deg=%d", deg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Mul(q)
			}
		})
	}
}

func BenchmarkEvalScaled(b *testing.B) {
	for _, deg := range []int{16, 64} {
		for _, x := range []int{32, 512} {
			p := benchPoly(deg, 256, 3)
			r := rand.New(rand.NewSource(4))
			pt := mp.RandInt(r, x)
			b.Run(fmt.Sprintf("deg=%d/xbits=%d", deg, x), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.EvalScaled(pt, uint(x))
				}
			})
		}
	}
}

func BenchmarkGCD(b *testing.B) {
	g := FromRoots(mp.NewInt(3), mp.NewInt(-7), mp.NewInt(11))
	p := g.Mul(FromRoots(mp.NewInt(1), mp.NewInt(2)))
	q := g.Mul(FromRoots(mp.NewInt(-4), mp.NewInt(9)))
	for i := 0; i < b.N; i++ {
		GCD(p, q)
	}
}

func BenchmarkYun(b *testing.B) {
	p := FromRoots(mp.NewInt(1), mp.NewInt(1), mp.NewInt(2), mp.NewInt(2), mp.NewInt(2), mp.NewInt(-3))
	for i := 0; i < b.N; i++ {
		Yun(p)
	}
}

package poly

import (
	"realroots/internal/metrics"
	"realroots/internal/mp"
)

// Eval returns p(t) for an integer point t, by Horner's rule.
func (p *Poly) Eval(t *mp.Int) *mp.Int { return p.EvalCtx(metrics.Ctx{}, t) }

// EvalCtx returns p(t), recording the d multiplications in ctx.
func (p *Poly) EvalCtx(ctx metrics.Ctx, t *mp.Int) *mp.Int {
	ctx.C.AddEval(ctx.Phase)
	if p.IsZero() {
		return new(mp.Int)
	}
	d := p.Degree()
	v := new(mp.Int).Set(p.c[d])
	for i := d - 1; i >= 0; i-- {
		ctx.MulInto(v, v, t)
		v.Add(v, p.c[i])
	}
	return v
}

// EvalScaled evaluates p at the dyadic rational a/2^s, returning the
// scaled integer value
//
//	V = 2^(d·s) · p(a / 2^s) = Σ p_i · a^i · 2^((d-i)·s),  d = deg p,
//
// so that sign(V) = sign(p(a/2^s)) and V = 0 iff a/2^s is a root. This is
// the paper's p_µ trick (§4.3): all arithmetic stays over the integers.
// The Horner recurrence is E_k = E_{k-1}·a + p_{d-k}·2^(k·s), performing
// exactly d multiplications, which is what the paper's evaluation cost
// model counts.
func (p *Poly) EvalScaled(a *mp.Int, s uint) *mp.Int {
	return p.EvalScaledCtx(metrics.Ctx{}, a, s)
}

// EvalScaledCtx is EvalScaled with instrumentation.
func (p *Poly) EvalScaledCtx(ctx metrics.Ctx, a *mp.Int, s uint) *mp.Int {
	if p.IsZero() {
		return new(mp.Int)
	}
	ctx.C.AddEval(ctx.Phase)
	d := p.Degree()
	v := new(mp.Int).Set(p.c[d])
	var shifted mp.Int
	for k := 1; k <= d; k++ {
		ctx.MulInto(v, v, a)
		shifted.Lsh(p.c[d-k], uint(k)*s)
		ctx.C.AddAdd(ctx.Phase)
		v.Add(v, &shifted)
	}
	return v
}

// SignAt returns the sign of p(a/2^s) ∈ {-1, 0, +1}, computed exactly.
func (p *Poly) SignAt(a *mp.Int, s uint) int {
	return p.EvalScaled(a, s).Sign()
}

// SignAtCtx is SignAt with instrumentation.
func (p *Poly) SignAtCtx(ctx metrics.Ctx, a *mp.Int, s uint) int {
	return p.EvalScaledCtx(ctx, a, s).Sign()
}

// SignAtNegInf returns the sign of p(x) as x → -∞: sign(lc)·(-1)^deg.
func (p *Poly) SignAtNegInf() int {
	s := p.Lead().Sign()
	if p.Degree()%2 != 0 {
		s = -s
	}
	return s
}

// SignAtPosInf returns the sign of p(x) as x → +∞.
func (p *Poly) SignAtPosInf() int { return p.Lead().Sign() }

// RootBound returns an integer B ≥ 1 such that every real root of p lies
// strictly inside (-B, B), using the Cauchy bound
// 1 + max_i |p_i| / |p_d| rounded up to the next power of two. The paper
// (§2.2) uses the cruder bound 2^m for m-bit coefficients; a power-of-two
// Cauchy bound keeps every interval endpoint dyadic while staying tight.
func (p *Poly) RootBound() *mp.Int {
	if p.Degree() < 1 {
		return mp.NewInt(1)
	}
	lead := new(mp.Int).Abs(p.Lead())
	maxAbs := new(mp.Int)
	for _, ci := range p.c[:len(p.c)-1] {
		a := new(mp.Int).Abs(ci)
		if a.Cmp(maxAbs) > 0 {
			maxAbs.Set(a)
		}
	}
	// q = ceil(maxAbs / lead); bound = next power of two ≥ q+1.
	q, r := new(mp.Int).QuoRem(maxAbs, lead, new(mp.Int))
	if !r.IsZero() {
		q.Add(q, mp.NewInt(1))
	}
	q.Add(q, mp.NewInt(1))
	bits := uint(q.BitLen())
	b := new(mp.Int).Lsh(mp.NewInt(1), bits)
	if b.Cmp(q) < 0 {
		b.Lsh(b, 1)
	}
	return b
}

// PseudoRem computes the pseudo-remainder of u by v (deg v ≤ deg u,
// v ≠ 0): prem = lc(v)^(deg u - deg v + 1) · u  mod  v, which has integer
// coefficients. Used by the Sturm baseline.
func PseudoRem(u, v *Poly) *Poly { return PseudoRemProfile(u, v, mp.Schoolbook) }

// PseudoRemProfile is PseudoRem with the coefficient arithmetic
// dispatched by pr (unrecorded; see GCDProfile).
func PseudoRemProfile(u, v *Poly, pr mp.Profile) *Poly {
	if v.IsZero() {
		panic("poly: PseudoRem by zero")
	}
	du, dv := u.Degree(), v.Degree()
	if du < dv {
		r := u.Clone()
		return r
	}
	uctx := metrics.Ctx{Profile: pr} // dispatch only, no recording
	r := u.Clone()
	lead := v.Lead()
	for r.Degree() >= dv && !r.IsZero() {
		dr := r.Degree()
		// r = lead·r - r_lead·x^(dr-dv)·v
		rl := new(mp.Int).Set(r.Lead())
		r = r.ScaleIntCtx(uctx, lead)
		shift := make([]*mp.Int, dr-dv+1)
		for i := range shift {
			shift[i] = new(mp.Int)
		}
		shift[dr-dv] = rl
		sub := (&Poly{c: shift}).MulCtx(uctx, v)
		r = r.Sub(sub)
		if r.Degree() == dr {
			panic("poly: PseudoRem failed to reduce degree")
		}
	}
	return r
}

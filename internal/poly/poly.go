// Package poly implements dense univariate polynomials with
// arbitrary-precision integer coefficients over internal/mp, together
// with the scaled (fixed-point) evaluation scheme the paper uses to stay
// within integer arithmetic (§3.3, §4.3).
package poly

import (
	"fmt"
	"strings"

	"realroots/internal/metrics"
	"realroots/internal/mp"
)

// A Poly is a polynomial Σ c[i]·x^i. The canonical form has a non-zero
// leading coefficient; the zero polynomial has an empty coefficient
// slice. Coefficients are never shared between distinct Polys unless the
// Poly is treated as immutable, which is the convention throughout this
// repository: algorithm code builds new Polys rather than mutating them.
type Poly struct {
	c []*mp.Int
}

// Zero returns the zero polynomial.
func Zero() *Poly { return &Poly{} }

// New builds a polynomial from coefficients in ascending-degree order
// (c[0] is the constant term). The slice is copied; trailing zero
// coefficients are trimmed.
func New(coeffs ...*mp.Int) *Poly {
	c := make([]*mp.Int, len(coeffs))
	for i, v := range coeffs {
		c[i] = new(mp.Int).Set(v)
	}
	return (&Poly{c: c}).norm()
}

// FromInt64s builds a polynomial from int64 coefficients in
// ascending-degree order.
func FromInt64s(coeffs ...int64) *Poly {
	c := make([]*mp.Int, len(coeffs))
	for i, v := range coeffs {
		c[i] = mp.NewInt(v)
	}
	return (&Poly{c: c}).norm()
}

// Constant returns the degree-0 polynomial v (or the zero polynomial).
func Constant(v *mp.Int) *Poly { return New(v) }

// X returns the monic linear polynomial x.
func X() *Poly { return FromInt64s(0, 1) }

func (p *Poly) norm() *Poly {
	n := len(p.c)
	for n > 0 && p.c[n-1].IsZero() {
		n--
	}
	p.c = p.c[:n]
	return p
}

// Degree returns the degree of p, with Degree(0) == -1.
func (p *Poly) Degree() int { return len(p.c) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p *Poly) IsZero() bool { return len(p.c) == 0 }

// Coeff returns the coefficient of x^i (zero for i out of range). The
// returned value must not be mutated.
func (p *Poly) Coeff(i int) *mp.Int {
	if i < 0 || i >= len(p.c) {
		return new(mp.Int)
	}
	return p.c[i]
}

// Lead returns the leading coefficient of p (zero for the zero
// polynomial). The returned value must not be mutated.
func (p *Poly) Lead() *mp.Int { return p.Coeff(p.Degree()) }

// Clone returns a deep copy of p.
func (p *Poly) Clone() *Poly {
	return New(p.c...)
}

// Equal reports whether p and q are identical polynomials.
func (p *Poly) Equal(q *Poly) bool {
	if len(p.c) != len(q.c) {
		return false
	}
	for i := range p.c {
		if p.c[i].Cmp(q.c[i]) != 0 {
			return false
		}
	}
	return true
}

// MaxCoeffBits returns the bit length of the largest |coefficient| of p —
// the quantity the paper writes as ||p||.
func (p *Poly) MaxCoeffBits() int {
	max := 0
	for _, ci := range p.c {
		if b := ci.BitLen(); b > max {
			max = b
		}
	}
	return max
}

// Neg returns -p.
func (p *Poly) Neg() *Poly {
	c := make([]*mp.Int, len(p.c))
	for i, ci := range p.c {
		c[i] = new(mp.Int).Neg(ci)
	}
	return &Poly{c: c}
}

// Add returns p+q.
func (p *Poly) Add(q *Poly) *Poly { return p.AddCtx(metrics.Ctx{}, q) }

// AddCtx returns p+q, recording the coefficient additions in ctx.
func (p *Poly) AddCtx(ctx metrics.Ctx, q *Poly) *Poly {
	n := len(p.c)
	if len(q.c) > n {
		n = len(q.c)
	}
	c := make([]*mp.Int, n)
	for i := range c {
		c[i] = ctx.Add(p.Coeff(i), q.Coeff(i))
	}
	return (&Poly{c: c}).norm()
}

// Sub returns p-q.
func (p *Poly) Sub(q *Poly) *Poly { return p.SubCtx(metrics.Ctx{}, q) }

// SubCtx returns p-q, recording the coefficient subtractions in ctx.
func (p *Poly) SubCtx(ctx metrics.Ctx, q *Poly) *Poly {
	n := len(p.c)
	if len(q.c) > n {
		n = len(q.c)
	}
	c := make([]*mp.Int, n)
	for i := range c {
		c[i] = ctx.Sub(p.Coeff(i), q.Coeff(i))
	}
	return (&Poly{c: c}).norm()
}

// Mul returns p*q.
func (p *Poly) Mul(q *Poly) *Poly { return p.MulCtx(metrics.Ctx{}, q) }

// MulCtx returns p*q using the schoolbook coefficient convolution,
// recording each coefficient multiplication in ctx. This is the operation
// whose count dominates the tree-polynomial phase (paper §4.2: the cost
// of a polynomial matrix product is bounded via md(A)·md(B)).
func (p *Poly) MulCtx(ctx metrics.Ctx, q *Poly) *Poly {
	if p.IsZero() || q.IsZero() {
		return Zero()
	}
	c := make([]*mp.Int, len(p.c)+len(q.c)-1)
	for i := range c {
		c[i] = new(mp.Int)
	}
	var t mp.Int
	for i, pi := range p.c {
		if pi.IsZero() {
			continue
		}
		for j, qj := range q.c {
			if qj.IsZero() {
				continue
			}
			ctx.MulInto(&t, pi, qj)
			c[i+j].Add(c[i+j], &t)
		}
	}
	return (&Poly{c: c}).norm()
}

// ScaleInt returns p·v.
func (p *Poly) ScaleInt(v *mp.Int) *Poly { return p.ScaleIntCtx(metrics.Ctx{}, v) }

// ScaleIntCtx returns p·v, recording the multiplications in ctx.
func (p *Poly) ScaleIntCtx(ctx metrics.Ctx, v *mp.Int) *Poly {
	if v.IsZero() || p.IsZero() {
		return Zero()
	}
	c := make([]*mp.Int, len(p.c))
	for i, ci := range p.c {
		c[i] = ctx.Mul(ci, v)
	}
	return (&Poly{c: c}).norm()
}

// DivExactInt returns p/v where v exactly divides every coefficient; it
// panics otherwise (see mp.Int.DivExact).
func (p *Poly) DivExactInt(v *mp.Int) *Poly { return p.DivExactIntCtx(metrics.Ctx{}, v) }

// DivExactIntCtx returns p/v, recording the divisions in ctx.
func (p *Poly) DivExactIntCtx(ctx metrics.Ctx, v *mp.Int) *Poly {
	c := make([]*mp.Int, len(p.c))
	for i, ci := range p.c {
		c[i] = ctx.DivExact(ci, v)
	}
	return (&Poly{c: c}).norm()
}

// Derivative returns p'.
func (p *Poly) Derivative() *Poly {
	if p.Degree() < 1 {
		return Zero()
	}
	c := make([]*mp.Int, len(p.c)-1)
	for i := 1; i < len(p.c); i++ {
		c[i-1] = new(mp.Int).MulInt64(p.c[i], int64(i))
	}
	return (&Poly{c: c}).norm()
}

// MulLinear returns p·(x - r), used to build polynomials from roots.
func (p *Poly) MulLinear(r *mp.Int) *Poly {
	return p.Mul(New(new(mp.Int).Neg(r), mp.NewInt(1)))
}

// FromRoots returns the monic polynomial ∏ (x - r_i).
func FromRoots(roots ...*mp.Int) *Poly {
	p := FromInt64s(1)
	for _, r := range roots {
		p = p.MulLinear(r)
	}
	return p
}

// Content returns the GCD of the coefficients of p (non-negative;
// Content(0) == 0).
func (p *Poly) Content() *mp.Int { return p.ContentProfile(mp.Schoolbook) }

// ContentProfile is Content with the integer GCDs dispatched by pr
// (unrecorded; see GCDProfile).
func (p *Poly) ContentProfile(pr mp.Profile) *mp.Int {
	g := new(mp.Int)
	for _, ci := range p.c {
		g.GCDProfile(pr, g, ci)
		if g.IsOne() {
			break
		}
	}
	return g
}

// PrimitivePart returns p divided by its content, preserving the sign of
// the leading coefficient; PrimitivePart(0) == 0.
func (p *Poly) PrimitivePart() *Poly { return p.PrimitivePartProfile(mp.Schoolbook) }

// PrimitivePartProfile is PrimitivePart with the coefficient arithmetic
// dispatched by pr (unrecorded; see GCDProfile).
func (p *Poly) PrimitivePartProfile(pr mp.Profile) *Poly {
	if p.IsZero() {
		return Zero()
	}
	g := p.ContentProfile(pr)
	if g.IsOne() {
		return p.Clone()
	}
	return p.DivExactIntCtx(metrics.Ctx{Profile: pr}, g)
}

// String renders p in conventional descending order, e.g.
// "3*x^2 - x + 7".
func (p *Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	first := true
	for i := p.Degree(); i >= 0; i-- {
		ci := p.c[i]
		if ci.IsZero() {
			continue
		}
		abs := new(mp.Int).Abs(ci)
		switch {
		case first && ci.Sign() < 0:
			b.WriteString("-")
		case !first && ci.Sign() < 0:
			b.WriteString(" - ")
		case !first:
			b.WriteString(" + ")
		}
		first = false
		switch {
		case i == 0:
			b.WriteString(abs.String())
		case abs.IsOne():
			// omit the coefficient 1
		default:
			b.WriteString(abs.String())
			b.WriteString("*")
		}
		switch {
		case i == 1:
			b.WriteString("x")
		case i > 1:
			fmt.Fprintf(&b, "x^%d", i)
		}
	}
	return b.String()
}

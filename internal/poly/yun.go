package poly

// Yun computes the squarefree decomposition of p by Yun's algorithm:
// it returns factors u_1, u_2, …, u_m with
//
//	pp(p) = ± u_1 · u_2² · … · u_m^m   (up to integer content),
//
// where each u_k is primitive and squarefree and collects exactly the
// roots of p with multiplicity k (u_k may be the constant 1). This
// extends the paper's repeated-root handling (§2.3): the distinct roots
// of p are the union of the roots of the u_k, and solving each factor
// separately recovers every multiplicity.
func Yun(p *Poly) []*Poly {
	if p.Degree() < 1 {
		return nil
	}
	p = normSign(p.PrimitivePart())
	g := GCD(p, p.Derivative())
	if g.Degree() == 0 {
		return []*Poly{p.Clone()}
	}
	w, r := DivMod(p, g)
	if !r.IsZero() {
		panic("poly: Yun: gcd does not divide p")
	}
	y, r := DivMod(p.Derivative(), g)
	if !r.IsZero() {
		panic("poly: Yun: gcd does not divide p'")
	}
	z := y.Sub(w.Derivative())

	var factors []*Poly
	for {
		if w.Degree() == 0 {
			break
		}
		u := GCD(w, z)
		factors = append(factors, u)
		w, r = DivMod(w, u)
		if !r.IsZero() {
			panic("poly: Yun: u does not divide w")
		}
		y, r = DivMod(z, u)
		if !r.IsZero() {
			panic("poly: Yun: u does not divide z")
		}
		z = y.Sub(w.Derivative())
	}
	// Trim trailing constant factors.
	for len(factors) > 0 && factors[len(factors)-1].Degree() == 0 {
		factors = factors[:len(factors)-1]
	}
	return factors
}

package poly

import (
	"realroots/internal/metrics"
	"realroots/internal/mp"
)

// GCD returns the greatest common divisor of a and b in ℤ[x], computed
// with a primitive pseudo-remainder sequence. The result is primitive
// with a positive leading coefficient (up to integer content, which is
// irrelevant for root sets); GCD(0, 0) == 0. It is used for squarefree
// reduction (the preprocessing counterpart of the paper's repeated-root
// extension, §2.3) and by the Sturm baseline.
func GCD(a, b *Poly) *Poly { return GCDProfile(a, b, mp.Schoolbook) }

// GCDProfile is GCD with the coefficient arithmetic dispatched by pr.
// The work is not recorded in any metrics counters: squarefree
// preprocessing sits outside the paper's cost model, so both profiles
// produce identical traces and differ only in wall time.
//
// Schoolbook uses the primitive PRS above — an integer content GCD per
// step. Fast uses Collins' subresultant PRS instead: each pseudo-
// remainder is divided by the predicted factor g·h^d, an exact division
// with a known divisor, so the per-step content GCDs (quadratic in the
// multi-thousand-bit PRS coefficients) disappear entirely; a content
// is taken only on the final gcd candidate.
func GCDProfile(a, b *Poly, pr mp.Profile) *Poly {
	if pr == mp.Fast {
		return gcdSubresultant(a, b, pr)
	}
	u := a.PrimitivePartProfile(pr)
	v := b.PrimitivePartProfile(pr)
	if u.IsZero() {
		return normSign(v)
	}
	if v.IsZero() {
		return normSign(u)
	}
	if u.Degree() < v.Degree() {
		u, v = v, u
	}
	for !v.IsZero() {
		r := PseudoRemProfile(u, v, pr).PrimitivePartProfile(pr)
		u, v = v, r
	}
	return normSign(u)
}

// gcdSubresultant computes GCD via the subresultant PRS (Collins 1967;
// Knuth TAOCP vol. 2, §4.6.1 Algorithm C): r_{i+1} = prem(r_{i-1}, r_i)
// / (g·h^d) with g = lc(r_{i-1}) and h the running pseudo-leading
// coefficient, both known in advance, keeping every division exact.
func gcdSubresultant(a, b *Poly, pr mp.Profile) *Poly {
	uctx := metrics.Ctx{Profile: pr} // dispatch only, no recording
	u := a.PrimitivePartProfile(pr)
	v := b.PrimitivePartProfile(pr)
	if u.IsZero() {
		return normSign(v)
	}
	if v.IsZero() {
		return normSign(u)
	}
	if u.Degree() < v.Degree() {
		u, v = v, u
	}
	g := mp.NewInt(1)
	h := mp.NewInt(1)
	for !v.IsZero() && v.Degree() >= 1 {
		d := u.Degree() - v.Degree()
		r := pseudoRemExact(uctx, u, v)
		u = v
		if r.IsZero() {
			v = Zero()
			break
		}
		den := uctx.Mul(g, intPow(uctx, h, d))
		v = r.DivExactIntCtx(uctx, den)
		g = new(mp.Int).Set(u.Lead())
		// h ← h^(1−d)·g^d: unchanged for d = 0, g for d = 1, and the
		// exact quotient g^d / h^(d−1) otherwise.
		switch {
		case d == 1:
			h = new(mp.Int).Set(g)
		case d > 1:
			h = uctx.DivExact(intPow(uctx, g, d), intPow(uctx, h, d-1))
		}
	}
	if !v.IsZero() {
		// Non-zero constant remainder: the gcd is constant, and the
		// primitive gcd is 1.
		return FromInt64s(1)
	}
	return normSign(u.PrimitivePartProfile(pr))
}

// pseudoRemExact returns lc(v)^(du−dv+1)·u mod v with the scaling power
// taken in full. PseudoRem scales once per reduction step, which can be
// fewer than du−dv+1 times when cancellation drops the degree by more
// than one; the subresultant divisibility argument needs the exact
// power, so the missing factors are applied afterwards.
func pseudoRemExact(uctx metrics.Ctx, u, v *Poly) *Poly {
	du, dv := u.Degree(), v.Degree()
	lead := v.Lead()
	steps := 0
	r := u.Clone()
	for r.Degree() >= dv && !r.IsZero() {
		dr := r.Degree()
		rl := new(mp.Int).Set(r.Lead())
		r = r.ScaleIntCtx(uctx, lead)
		shift := make([]*mp.Int, dr-dv+1)
		for i := range shift {
			shift[i] = new(mp.Int)
		}
		shift[dr-dv] = rl
		r = r.Sub((&Poly{c: shift}).MulCtx(uctx, v))
		steps++
	}
	for ; steps <= du-dv; steps++ {
		r = r.ScaleIntCtx(uctx, lead)
	}
	return r
}

// intPow returns x^k for k ≥ 0 by square-and-multiply.
func intPow(ctx metrics.Ctx, x *mp.Int, k int) *mp.Int {
	z := mp.NewInt(1)
	if k == 0 {
		return z
	}
	base := new(mp.Int).Set(x)
	for {
		if k&1 != 0 {
			z = ctx.Mul(z, base)
		}
		k >>= 1
		if k == 0 {
			return z
		}
		base = ctx.Sqr(base)
	}
}

func normSign(p *Poly) *Poly {
	if p.Lead().Sign() < 0 {
		return p.Neg()
	}
	return p.Clone()
}

// SquarefreePart returns p / gcd(p, p′): the polynomial with the same
// distinct roots as p, each with multiplicity one, primitive and with a
// positive leading coefficient. Returns 0 for the zero polynomial and a
// constant's primitive part for constants.
func (p *Poly) SquarefreePart() *Poly { return p.SquarefreePartProfile(mp.Schoolbook) }

// SquarefreePartProfile is SquarefreePart with the coefficient
// arithmetic dispatched by pr (unrecorded; see GCDProfile).
func (p *Poly) SquarefreePartProfile(pr mp.Profile) *Poly {
	if p.Degree() < 1 {
		return normSign(p.PrimitivePartProfile(pr))
	}
	g := GCDProfile(p, p.Derivative(), pr)
	if g.Degree() == 0 {
		return normSign(p.PrimitivePartProfile(pr))
	}
	q, r := divModProfile(p.PrimitivePartProfile(pr), g, pr)
	if !r.IsZero() {
		// gcd(p, p') divides p exactly; a remainder means corrupted state.
		panic("poly: SquarefreePart: gcd does not divide p")
	}
	return normSign(q.PrimitivePartProfile(pr))
}

// IsSquarefree reports whether p has no repeated roots (gcd(p, p′)
// constant). Constants are squarefree.
func (p *Poly) IsSquarefree() bool { return p.IsSquarefreeProfile(mp.Schoolbook) }

// IsSquarefreeProfile is IsSquarefree with the coefficient arithmetic
// dispatched by pr (unrecorded; see GCDProfile).
func (p *Poly) IsSquarefreeProfile(pr mp.Profile) bool {
	if p.Degree() < 1 {
		return true
	}
	return GCDProfile(p, p.Derivative(), pr).Degree() == 0
}

// DivMod divides u by v in ℚ[x] assuming the quotient and remainder stay
// in ℤ[x] up to the pseudo-division scaling, returning (q, r) with
// u = q·v + r and deg r < deg v, when such integral q exists. If the true
// rational quotient is not integral the returned pair still satisfies the
// degree bound but r is the witness that v ∤ u. v must be non-zero.
func DivMod(u, v *Poly) (q, r *Poly) { return divModProfile(u, v, mp.Schoolbook) }

func divModProfile(u, v *Poly, pr mp.Profile) (q, r *Poly) {
	if v.IsZero() {
		panic("poly: DivMod by zero")
	}
	uctx := metrics.Ctx{Profile: pr} // dispatch only, no recording
	q = Zero()
	r = u.Clone()
	dv := v.Degree()
	lead := v.Lead()
	for !r.IsZero() && r.Degree() >= dv {
		dr := r.Degree()
		// Candidate term: (lead(r)/lead(v))·x^(dr-dv); bail out if the
		// leading coefficient is not divisible.
		quo, rem := uctx.QuoRem(new(mp.Int), r.Lead(), lead, new(mp.Int))
		if !rem.IsZero() {
			return q, r
		}
		tc := make([]*mp.Int, dr-dv+1)
		for i := range tc {
			tc[i] = new(mp.Int)
		}
		tc[dr-dv] = quo
		term := (&Poly{c: tc}).norm()
		q = q.Add(term)
		r = r.Sub(term.MulCtx(uctx, v))
		if !r.IsZero() && r.Degree() == dr {
			panic("poly: DivMod failed to reduce degree")
		}
	}
	return q, r
}

package poly

import "realroots/internal/mp"

// GCD returns the greatest common divisor of a and b in ℤ[x], computed
// with a primitive pseudo-remainder sequence. The result is primitive
// with a positive leading coefficient (up to integer content, which is
// irrelevant for root sets); GCD(0, 0) == 0. It is used for squarefree
// reduction (the preprocessing counterpart of the paper's repeated-root
// extension, §2.3) and by the Sturm baseline.
func GCD(a, b *Poly) *Poly {
	u := a.PrimitivePart()
	v := b.PrimitivePart()
	if u.IsZero() {
		return normSign(v)
	}
	if v.IsZero() {
		return normSign(u)
	}
	if u.Degree() < v.Degree() {
		u, v = v, u
	}
	for !v.IsZero() {
		r := PseudoRem(u, v).PrimitivePart()
		u, v = v, r
	}
	return normSign(u)
}

func normSign(p *Poly) *Poly {
	if p.Lead().Sign() < 0 {
		return p.Neg()
	}
	return p.Clone()
}

// SquarefreePart returns p / gcd(p, p′): the polynomial with the same
// distinct roots as p, each with multiplicity one, primitive and with a
// positive leading coefficient. Returns 0 for the zero polynomial and a
// constant's primitive part for constants.
func (p *Poly) SquarefreePart() *Poly {
	if p.Degree() < 1 {
		return normSign(p.PrimitivePart())
	}
	g := GCD(p, p.Derivative())
	if g.Degree() == 0 {
		return normSign(p.PrimitivePart())
	}
	q, r := DivMod(p.PrimitivePart(), g)
	if !r.IsZero() {
		// gcd(p, p') divides p exactly; a remainder means corrupted state.
		panic("poly: SquarefreePart: gcd does not divide p")
	}
	return normSign(q.PrimitivePart())
}

// IsSquarefree reports whether p has no repeated roots (gcd(p, p′)
// constant). Constants are squarefree.
func (p *Poly) IsSquarefree() bool {
	if p.Degree() < 1 {
		return true
	}
	return GCD(p, p.Derivative()).Degree() == 0
}

// DivMod divides u by v in ℚ[x] assuming the quotient and remainder stay
// in ℤ[x] up to the pseudo-division scaling, returning (q, r) with
// u = q·v + r and deg r < deg v, when such integral q exists. If the true
// rational quotient is not integral the returned pair still satisfies the
// degree bound but r is the witness that v ∤ u. v must be non-zero.
func DivMod(u, v *Poly) (q, r *Poly) {
	if v.IsZero() {
		panic("poly: DivMod by zero")
	}
	q = Zero()
	r = u.Clone()
	dv := v.Degree()
	lead := v.Lead()
	for !r.IsZero() && r.Degree() >= dv {
		dr := r.Degree()
		// Candidate term: (lead(r)/lead(v))·x^(dr-dv); bail out if the
		// leading coefficient is not divisible.
		quo, rem := new(mp.Int).QuoRem(r.Lead(), lead, new(mp.Int))
		if !rem.IsZero() {
			return q, r
		}
		tc := make([]*mp.Int, dr-dv+1)
		for i := range tc {
			tc[i] = new(mp.Int)
		}
		tc[dr-dv] = quo
		term := (&Poly{c: tc}).norm()
		q = q.Add(term)
		r = r.Sub(term.Mul(v))
		if !r.IsZero() && r.Degree() == dr {
			panic("poly: DivMod failed to reduce degree")
		}
	}
	return q, r
}

package poly

import (
	"fmt"
	"strings"

	"realroots/internal/mp"
)

// Parse reads a univariate integer polynomial from conventional notation,
// e.g. "x^3 - 8x^2 - 23x + 30", "3*x^2+x-7", or "-2x". Accepted syntax:
// terms joined by + or -, each term an optional integer coefficient, an
// optional '*', and an optional power of the single variable x (any
// letter is accepted as the variable, but all terms must use the same
// one). Whitespace is ignored. The result is the exact sum of the terms,
// so repeated powers accumulate ("x + x" is 2x).
func Parse(s string) (*Poly, error) {
	p := newParser(s)
	out, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("poly: parsing %q: %w", s, err)
	}
	return out, nil
}

// MustParse is Parse for tests and constant tables; it panics on error.
func MustParse(s string) *Poly {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	s   string
	pos int
	v   rune // the variable letter, once seen
}

func newParser(s string) *parser { return &parser{s: s} }

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	if p.pos >= len(p.s) {
		return 0
	}
	return p.s[p.pos]
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (p *parser) parse() (*Poly, error) {
	coeffs := map[int]*mp.Int{}
	first := true
	for {
		p.skipSpace()
		if p.pos >= len(p.s) {
			if first {
				return nil, fmt.Errorf("empty input")
			}
			break
		}
		sign := 1
		switch p.peek() {
		case '+':
			p.pos++
		case '-':
			sign = -1
			p.pos++
		default:
			if !first {
				return nil, fmt.Errorf("expected + or - at position %d", p.pos)
			}
		}
		first = false
		coeff, deg, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if sign < 0 {
			coeff.Neg(coeff)
		}
		if old, ok := coeffs[deg]; ok {
			old.Add(old, coeff)
		} else {
			coeffs[deg] = coeff
		}
	}
	maxDeg := 0
	for d := range coeffs {
		if d > maxDeg {
			maxDeg = d
		}
	}
	c := make([]*mp.Int, maxDeg+1)
	for i := range c {
		if v, ok := coeffs[i]; ok {
			c[i] = v
		} else {
			c[i] = new(mp.Int)
		}
	}
	return New(c...), nil
}

// parseTerm reads [int] ['*'] [var ['^' int]] after any sign.
func (p *parser) parseTerm() (*mp.Int, int, error) {
	p.skipSpace()
	coeff := mp.NewInt(1)
	haveCoeff := false
	if isDigit(p.peek()) {
		n, err := p.parseInt()
		if err != nil {
			return nil, 0, err
		}
		coeff = n
		haveCoeff = true
	}
	p.skipSpace()
	if p.peek() == '*' {
		if !haveCoeff {
			return nil, 0, fmt.Errorf("unexpected '*' at position %d", p.pos)
		}
		p.pos++
		p.skipSpace()
	}
	if !isLetter(p.peek()) {
		if !haveCoeff {
			return nil, 0, fmt.Errorf("expected term at position %d", p.pos)
		}
		return coeff, 0, nil
	}
	v := rune(p.peek())
	if p.v == 0 {
		p.v = v
	} else if p.v != v {
		return nil, 0, fmt.Errorf("mixed variables %q and %q", p.v, v)
	}
	p.pos++
	p.skipSpace()
	deg := 1
	if p.peek() == '^' {
		p.pos++
		p.skipSpace()
		if !isDigit(p.peek()) {
			return nil, 0, fmt.Errorf("expected exponent at position %d", p.pos)
		}
		n, err := p.parseInt()
		if err != nil {
			return nil, 0, err
		}
		if !n.IsInt64() || n.Int64() > 1<<20 {
			return nil, 0, fmt.Errorf("exponent %s too large", n)
		}
		deg = int(n.Int64())
	}
	return coeff, deg, nil
}

func (p *parser) parseInt() (*mp.Int, error) {
	start := p.pos
	for p.pos < len(p.s) && isDigit(p.s[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return nil, fmt.Errorf("expected integer at position %d", start)
	}
	n, err := new(mp.Int).SetString(p.s[start:p.pos])
	if err != nil {
		return nil, err
	}
	return n, nil
}

// ParseOrCoeffs accepts either a symbolic expression (containing a
// letter) or a whitespace/comma-separated ascending coefficient list
// ("30 -23 -8 1"), for command-line convenience.
func ParseOrCoeffs(s string) (*Poly, error) {
	if strings.IndexFunc(s, func(r rune) bool {
		return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
	}) >= 0 {
		return Parse(s)
	}
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
	if len(fields) == 0 {
		return nil, fmt.Errorf("poly: empty coefficient list")
	}
	c := make([]*mp.Int, len(fields))
	for i, f := range fields {
		v, err := new(mp.Int).SetString(f)
		if err != nil {
			return nil, fmt.Errorf("poly: bad coefficient %q", f)
		}
		c[i] = v
	}
	return New(c...), nil
}

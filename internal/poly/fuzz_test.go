package poly

import (
	"math/big"
	"testing"

	"realroots/internal/mp"
)

// fromBytes decodes a byte string into a polynomial with int8
// coefficients in ascending degree order (the same encoding the
// top-level FuzzFindRootsSmall uses).
func fromBytes(b []byte) *Poly {
	coeffs := make([]*mp.Int, len(b))
	for i, v := range b {
		coeffs[i] = mp.NewInt(int64(int8(v)))
	}
	return New(coeffs...)
}

// bigCoeffs converts to math/big for the independent oracle.
func bigCoeffs(p *Poly) []*big.Int {
	out := make([]*big.Int, p.Degree()+1)
	for i := range out {
		out[i] = p.Coeff(i).ToBig()
	}
	return out
}

// FuzzPolyRingIdentities checks the package's ring operations against a
// math/big convolution oracle and the ring axioms that don't need an
// oracle at all: commutativity, distributivity through MulLinear, the
// derivative product rule, and evaluation being a ring homomorphism.
func FuzzPolyRingIdentities(f *testing.F) {
	f.Add([]byte{254, 0, 1}, []byte{1, 1})
	f.Add([]byte{1, 2, 3, 4}, []byte{5, 0, 251})
	f.Add([]byte{0, 0, 0}, []byte{7})
	f.Add([]byte{255}, []byte{255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		if len(ab) > 12 || len(bb) > 12 {
			return
		}
		a, b := fromBytes(ab), fromBytes(bb)

		// Mul against schoolbook convolution over math/big.
		prod := a.Mul(b)
		if a.IsZero() || b.IsZero() {
			if !prod.IsZero() {
				t.Fatalf("product with zero is %v", prod)
			}
		} else {
			ac, bc := bigCoeffs(a), bigCoeffs(b)
			want := make([]*big.Int, len(ac)+len(bc)-1)
			for i := range want {
				want[i] = new(big.Int)
			}
			for i, ai := range ac {
				for j, bj := range bc {
					want[i+j].Add(want[i+j], new(big.Int).Mul(ai, bj))
				}
			}
			if prod.Degree() != len(want)-1 {
				t.Fatalf("deg(a·b) = %d, oracle %d (a=%v b=%v)", prod.Degree(), len(want)-1, a, b)
			}
			for i, w := range want {
				if prod.Coeff(i).ToBig().Cmp(w) != 0 {
					t.Fatalf("coeff %d of a·b = %v, oracle %v (a=%v b=%v)", i, prod.Coeff(i), w, a, b)
				}
			}
		}

		// Commutativity and additive inverse.
		if !prod.Equal(b.Mul(a)) {
			t.Fatalf("a·b ≠ b·a for a=%v b=%v", a, b)
		}
		if !a.Add(b).Equal(b.Add(a)) {
			t.Fatalf("a+b ≠ b+a for a=%v b=%v", a, b)
		}
		if !a.Sub(b).Add(b).Equal(a) {
			t.Fatalf("(a-b)+b ≠ a for a=%v b=%v", a, b)
		}
		if !a.Add(a.Neg()).IsZero() {
			t.Fatalf("a + (-a) ≠ 0 for a=%v", a)
		}

		// Distributivity, with x-r as the second factor (exercises the
		// dedicated MulLinear path against Mul).
		r := mp.NewInt(3)
		linear := New(mp.NewInt(-3), mp.NewInt(1)) // x - 3
		lhs := a.Add(b).MulLinear(r)
		rhs := a.Mul(linear).Add(b.Mul(linear))
		if !lhs.Equal(rhs) {
			t.Fatalf("(a+b)·(x-3) ≠ a·(x-3)+b·(x-3) for a=%v b=%v", a, b)
		}

		// Derivative: linear, and satisfies the product rule.
		if !a.Add(b).Derivative().Equal(a.Derivative().Add(b.Derivative())) {
			t.Fatalf("(a+b)' ≠ a'+b' for a=%v b=%v", a, b)
		}
		if !prod.Derivative().Equal(a.Derivative().Mul(b).Add(a.Mul(b.Derivative()))) {
			t.Fatalf("(a·b)' ≠ a'b+ab' for a=%v b=%v", a, b)
		}

		// Evaluation at t=2 is a ring homomorphism.
		at := mp.NewInt(2)
		av, bv := a.Eval(at), b.Eval(at)
		if got := prod.Eval(at); got.Cmp(new(mp.Int).Mul(av, bv)) != 0 {
			t.Fatalf("(a·b)(2) = %v, want %v·%v (a=%v b=%v)", got, av, bv, a, b)
		}
		if got := a.Add(b).Eval(at); got.Cmp(new(mp.Int).Add(av, bv)) != 0 {
			t.Fatalf("(a+b)(2) = %v, want %v+%v (a=%v b=%v)", got, av, bv, a, b)
		}
	})
}

package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"realroots/internal/metrics"
	"realroots/internal/mp"
)

func randPoly(r *rand.Rand, maxDeg, coeffBits int) *Poly {
	d := r.Intn(maxDeg + 1)
	c := make([]*mp.Int, d+1)
	for i := range c {
		c[i] = mp.RandInt(r, 1+r.Intn(coeffBits))
	}
	return New(c...)
}

func TestNewTrimsLeadingZeros(t *testing.T) {
	p := FromInt64s(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
	z := FromInt64s(0, 0)
	if !z.IsZero() || z.Degree() != -1 {
		t.Fatalf("zero poly not canonical: deg %d", z.Degree())
	}
}

func TestCoeffOutOfRange(t *testing.T) {
	p := FromInt64s(1, 2)
	if p.Coeff(-1).Sign() != 0 || p.Coeff(5).Sign() != 0 {
		t.Error("out-of-range Coeff not zero")
	}
}

func TestAddSubMulBasics(t *testing.T) {
	p := FromInt64s(1, 2, 3)  // 3x²+2x+1
	q := FromInt64s(-1, 0, 4) // 4x²-1
	sum := p.Add(q)
	if !sum.Equal(FromInt64s(0, 2, 7)) {
		t.Errorf("sum = %s", sum)
	}
	diff := p.Sub(q)
	if !diff.Equal(FromInt64s(2, 2, -1)) {
		t.Errorf("diff = %s", diff)
	}
	prod := p.Mul(q)
	// (3x²+2x+1)(4x²-1) = 12x⁴+8x³+x²-2x-1
	if !prod.Equal(FromInt64s(-1, -2, 1, 8, 12)) {
		t.Errorf("prod = %s", prod)
	}
}

func TestMulByZero(t *testing.T) {
	p := FromInt64s(1, 2, 3)
	if !p.Mul(Zero()).IsZero() || !Zero().Mul(p).IsZero() {
		t.Error("p*0 != 0")
	}
}

func TestAddCancellationNormalizes(t *testing.T) {
	p := FromInt64s(1, 0, 5)
	q := FromInt64s(2, 0, -5)
	if got := p.Add(q); got.Degree() != 0 || got.Coeff(0).Int64() != 3 {
		t.Errorf("cancelled sum = %s (deg %d)", got, got.Degree())
	}
}

func TestQuickRingIdentities(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r, 6, 40)
		q := randPoly(r, 6, 40)
		s := randPoly(r, 6, 40)
		if !p.Add(q).Equal(q.Add(p)) {
			return false
		}
		if !p.Mul(q).Equal(q.Mul(p)) {
			return false
		}
		if !p.Mul(q.Add(s)).Equal(p.Mul(q).Add(p.Mul(s))) {
			return false
		}
		if !p.Sub(p).IsZero() {
			return false
		}
		return p.Mul(q).Mul(s).Equal(p.Mul(q.Mul(s)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickEvalIsRingHom(t *testing.T) {
	// Evaluation at any integer point is a ring homomorphism.
	f := func(seed int64, tv int32) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r, 6, 40)
		q := randPoly(r, 6, 40)
		x := mp.NewInt(int64(tv) % 1000)
		sum := new(mp.Int).Add(p.Eval(x), q.Eval(x))
		if p.Add(q).Eval(x).Cmp(sum) != 0 {
			return false
		}
		prod := new(mp.Int).Mul(p.Eval(x), q.Eval(x))
		return p.Mul(q).Eval(x).Cmp(prod) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDerivative(t *testing.T) {
	p := FromInt64s(5, 4, 3, 2) // 2x³+3x²+4x+5
	d := p.Derivative()
	if !d.Equal(FromInt64s(4, 6, 6)) {
		t.Errorf("derivative = %s", d)
	}
	if !FromInt64s(7).Derivative().IsZero() {
		t.Error("constant derivative != 0")
	}
	if !Zero().Derivative().IsZero() {
		t.Error("zero derivative != 0")
	}
}

func TestQuickDerivativeLeibniz(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r, 5, 30)
		q := randPoly(r, 5, 30)
		// (pq)' = p'q + pq'
		lhs := p.Mul(q).Derivative()
		rhs := p.Derivative().Mul(q).Add(p.Mul(q.Derivative()))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEvalScaledMatchesRationalEvaluation(t *testing.T) {
	// p(a/2^s)·2^(ds) computed directly must match EvalScaled.
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		p := randPoly(r, 7, 30)
		if p.IsZero() {
			continue
		}
		a := mp.RandInt(r, 20)
		s := uint(r.Intn(12))
		got := p.EvalScaled(a, s)
		// Direct: Σ p_i a^i 2^((d-i)s).
		d := p.Degree()
		want := new(mp.Int)
		for j := 0; j <= d; j++ {
			term := new(mp.Int).Set(p.Coeff(j))
			for k := 0; k < j; k++ {
				term.Mul(term, a)
			}
			term.Lsh(term, uint(d-j)*s)
			want.Add(want, term)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("EvalScaled mismatch: p=%s a=%s s=%d: got %s want %s", p, a, s, got, want)
		}
	}
}

func TestEvalScaledSignDetectsRoots(t *testing.T) {
	// p = (2x-1)(x-3): roots 1/2 and 3.
	p := FromInt64s(3, -7, 2)
	if got := p.SignAt(mp.NewInt(1), 1); got != 0 { // x = 1/2
		t.Errorf("sign at 1/2 = %d, want 0", got)
	}
	if got := p.SignAt(mp.NewInt(3), 0); got != 0 {
		t.Errorf("sign at 3 = %d, want 0", got)
	}
	if got := p.SignAt(mp.NewInt(1), 0); got != -1 { // p(1) = -2
		t.Errorf("sign at 1 = %d, want -1", got)
	}
	if got := p.SignAt(mp.NewInt(4), 0); got != 1 { // p(4) = 7
		t.Errorf("sign at 4 = %d, want +1", got)
	}
}

func TestSignAtInfinity(t *testing.T) {
	p := FromInt64s(0, 0, 1) // x²
	if p.SignAtNegInf() != 1 || p.SignAtPosInf() != 1 {
		t.Error("x² signs at ±∞")
	}
	q := FromInt64s(0, 1) // x
	if q.SignAtNegInf() != -1 || q.SignAtPosInf() != 1 {
		t.Error("x signs at ±∞")
	}
	r := FromInt64s(0, 0, 0, -2) // -2x³
	if r.SignAtNegInf() != 1 || r.SignAtPosInf() != -1 {
		t.Error("-2x³ signs at ±∞")
	}
}

func TestRootBound(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 60; i++ {
		nroots := 1 + r.Intn(6)
		roots := make([]*mp.Int, nroots)
		for j := range roots {
			roots[j] = mp.NewInt(int64(r.Intn(2001) - 1000))
		}
		p := FromRoots(roots...)
		b := p.RootBound()
		nb := new(mp.Int).Neg(b)
		for _, root := range roots {
			if root.Cmp(b) >= 0 || root.Cmp(nb) <= 0 {
				t.Fatalf("root %s outside bound (-%s, %s) for %s", root, b, b, p)
			}
		}
		// Bound must be a power of two.
		if bl := b.BitLen(); b.Bit(uint(bl-1)) != 1 || b.Cmp(new(mp.Int).Lsh(mp.NewInt(1), uint(bl-1))) != 0 {
			t.Fatalf("bound %s not a power of two", b)
		}
	}
}

func TestFromRootsEvaluatesToZero(t *testing.T) {
	roots := []*mp.Int{mp.NewInt(-3), mp.NewInt(0), mp.NewInt(5), mp.NewInt(5)}
	p := FromRoots(roots...)
	if p.Degree() != 4 {
		t.Fatalf("degree = %d", p.Degree())
	}
	for _, root := range roots {
		if p.Eval(root).Sign() != 0 {
			t.Errorf("p(%s) != 0", root)
		}
	}
	if !p.Lead().IsOne() {
		t.Error("FromRoots not monic")
	}
}

func TestContentPrimitivePart(t *testing.T) {
	p := FromInt64s(6, -9, 12)
	if got := p.Content(); got.Int64() != 3 {
		t.Errorf("content = %s", got)
	}
	pp := p.PrimitivePart()
	if !pp.Equal(FromInt64s(2, -3, 4)) {
		t.Errorf("primitive part = %s", pp)
	}
	if !Zero().PrimitivePart().IsZero() {
		t.Error("PrimitivePart(0) != 0")
	}
	one := FromInt64s(0, 0, 1)
	if !one.PrimitivePart().Equal(one) {
		t.Error("PrimitivePart(x²) != x²")
	}
}

func TestPseudoRem(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 80; i++ {
		u := randPoly(r, 8, 30)
		v := randPoly(r, 4, 30)
		if v.IsZero() || u.IsZero() || u.Degree() < v.Degree() {
			continue
		}
		rem := PseudoRem(u, v)
		if !rem.IsZero() && rem.Degree() >= v.Degree() {
			t.Fatalf("pseudo-remainder degree %d >= %d", rem.Degree(), v.Degree())
		}
		// lc(v)^(du-dv+1)·u ≡ rem (mod v): check at a few integer points
		// via the identity lc^k·u(t) - rem(t) divisible by... instead
		// verify with exact division: lc^k·u = q·v + rem for some q; check
		// that (lc^k·u - rem) mod v == 0 using PseudoRem again.
		k := u.Degree() - v.Degree() + 1
		lk := mp.NewInt(1)
		for j := 0; j < k; j++ {
			lk = new(mp.Int).Mul(lk, v.Lead())
		}
		lhs := u.ScaleInt(lk).Sub(rem)
		check := PseudoRem(lhs, v)
		if !check.IsZero() {
			t.Fatalf("pseudo-division identity failed: u=%s v=%s", u, v)
		}
	}
}

func TestMulCtxCountsCoefficientMultiplications(t *testing.T) {
	var c metrics.Counters
	ctx := metrics.Ctx{C: &c, Phase: metrics.PhaseTree}
	p := FromInt64s(1, 2, 3) // 3 coeffs
	q := FromInt64s(4, 5)    // 2 coeffs
	p.MulCtx(ctx, q)
	rep := c.Snapshot()
	if got := rep.Phases[metrics.PhaseTree].Muls; got != 6 {
		t.Errorf("MulCtx recorded %d muls, want 6", got)
	}
}

func TestEvalCtxCountsDegreeMultiplications(t *testing.T) {
	var c metrics.Counters
	ctx := metrics.Ctx{C: &c, Phase: metrics.PhaseBisection}
	p := FromInt64s(1, 2, 3, 4, 5) // degree 4
	p.EvalScaledCtx(ctx, mp.NewInt(7), 3)
	rep := c.Snapshot()
	pr := rep.Phases[metrics.PhaseBisection]
	if pr.Muls != 4 {
		t.Errorf("EvalScaledCtx recorded %d muls, want 4", pr.Muls)
	}
	if pr.Evals != 1 {
		t.Errorf("EvalScaledCtx recorded %d evals, want 1", pr.Evals)
	}
}

func TestString(t *testing.T) {
	cases := map[string]*Poly{
		"0":              Zero(),
		"42":             FromInt64s(42),
		"-x":             FromInt64s(0, -1),
		"x^2 - 2x + 1":   nil, // placeholder; rendered form checked below
		"3*x^2 + x - 7":  FromInt64s(-7, 1, 3),
		"x^3 - x":        FromInt64s(0, -1, 0, 1),
		"-2*x^2 + x + 1": FromInt64s(1, 1, -2),
	}
	delete(cases, "x^2 - 2x + 1")
	for want, p := range cases {
		if got := p.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestMaxCoeffBits(t *testing.T) {
	p := FromInt64s(3, -255, 7)
	if got := p.MaxCoeffBits(); got != 8 {
		t.Errorf("MaxCoeffBits = %d, want 8", got)
	}
	if Zero().MaxCoeffBits() != 0 {
		t.Error("MaxCoeffBits(0) != 0")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := FromInt64s(1, 2, 3)
	q := p.Clone()
	q.c[0].SetInt64(99)
	if p.Coeff(0).Int64() != 1 {
		t.Error("Clone shares coefficient storage")
	}
}

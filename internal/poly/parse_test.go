package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"realroots/internal/mp"
)

func TestParseBasics(t *testing.T) {
	cases := map[string]*Poly{
		"x^3 - 8x^2 - 23x + 30": FromInt64s(30, -23, -8, 1),
		"3*x^2+x-7":             FromInt64s(-7, 1, 3),
		"-2x":                   FromInt64s(0, -2),
		"42":                    FromInt64s(42),
		"-1":                    FromInt64s(-1),
		"x":                     FromInt64s(0, 1),
		"-x^2":                  FromInt64s(0, 0, -1),
		"x + x":                 FromInt64s(0, 2),
		"2 * x ^ 3":             FromInt64s(0, 0, 0, 2),
		"y^2 - y":               FromInt64s(0, -1, 1),
		"x^2 - 2x + 1":          FromInt64s(1, -2, 1),
		"5 - x":                 FromInt64s(5, -1),
		"x^2 + 0x + 0":          FromInt64s(0, 0, 1),
		"x - x":                 Zero(),
	}
	for in, want := range cases {
		got, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("Parse(%q) = %s, want %s", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", "   ", "x +", "+", "x^", "x^y", "x y", "x^2 y", "3**x", "*x",
		"x^9999999999", "x + z", "x..2", "x^-2",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestParseBigCoefficients(t *testing.T) {
	got, err := Parse("123456789012345678901234567890x^2 - 1")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := new(mp.Int).SetString("123456789012345678901234567890")
	if got.Coeff(2).Cmp(want) != 0 || got.Coeff(0).Int64() != -1 {
		t.Fatalf("got %s", got)
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	// String() output must parse back to the same polynomial.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r, 6, 24)
		if p.IsZero() {
			return true // String renders "0", which is a constant; fine
		}
		back, err := Parse(p.String())
		if err != nil {
			return false
		}
		return back.Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParseOrCoeffs(t *testing.T) {
	a, err := ParseOrCoeffs("30 -23 -8 1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseOrCoeffs("x^3 - 8x^2 - 23x + 30")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("%s != %s", a, b)
	}
	c, err := ParseOrCoeffs("30,-23,-8,1")
	if err != nil || !c.Equal(a) {
		t.Fatalf("comma form: %v %v", c, err)
	}
	if _, err := ParseOrCoeffs(""); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ParseOrCoeffs("1 2 q"); err == nil {
		t.Error("mixed garbage accepted")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustParse("++")
}

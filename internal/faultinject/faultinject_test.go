package faultinject

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestNewIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		if New(seed) != New(seed) {
			t.Fatalf("seed %d: New is not deterministic", seed)
		}
	}
}

func TestNewCoversEveryFaultKind(t *testing.T) {
	var panics, cancels, budgets, controls, delays int
	for seed := int64(0); seed < 200; seed++ {
		pl := New(seed)
		switch {
		case pl.PanicAt >= 0:
			panics++
		case pl.CancelAt >= 0:
			cancels++
		case pl.MaxBitOps > 0:
			budgets++
		default:
			controls++
		}
		if pl.DelayEvery > 0 {
			delays++
			if pl.Delay <= 0 {
				t.Fatalf("seed %d: DelayEvery set with zero Delay", seed)
			}
		}
	}
	for name, n := range map[string]int{
		"panic": panics, "cancel": cancels, "budget": budgets,
		"control": controls, "delay": delays,
	} {
		if n == 0 {
			t.Errorf("200 seeds produced no %s plans", name)
		}
	}
}

func TestHookPanicsWithIdentifiableValue(t *testing.T) {
	pl := Plan{Seed: 7, PanicAt: 3, CancelAt: -1}
	hook := pl.Hook(nil)
	hook(2) // must not panic
	defer func() {
		r := recover()
		p, ok := r.(Panic)
		if !ok {
			t.Fatalf("panicked with %T %v, want Panic", r, r)
		}
		if p.Seed != 7 || p.Seq != 3 {
			t.Fatalf("Panic = %+v", p)
		}
	}()
	hook(3)
	t.Fatal("hook(PanicAt) did not panic")
}

func TestHookInvokesCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pl := Plan{PanicAt: -1, CancelAt: 5}
	hook := pl.Hook(cancel)
	hook(4)
	if ctx.Err() != nil {
		t.Fatal("canceled before CancelAt")
	}
	hook(5)
	if ctx.Err() == nil {
		t.Fatal("hook(CancelAt) did not cancel")
	}
}

func TestHookNilWhenNoTaskFaults(t *testing.T) {
	if (Plan{PanicAt: -1, CancelAt: -1, MaxBitOps: 900}).Hook(nil) != nil {
		t.Fatal("budget-only plan returned a non-nil hook")
	}
	if (Plan{PanicAt: -1, CancelAt: -1, DelayEvery: 2, Delay: time.Microsecond}).Hook(nil) == nil {
		t.Fatal("delay plan returned a nil hook")
	}
}

func TestFaultFree(t *testing.T) {
	if !(Plan{PanicAt: -1, CancelAt: -1, DelayEvery: 3, Delay: time.Microsecond}).FaultFree() {
		t.Fatal("delay-only plan should be fault-free")
	}
	for _, pl := range []Plan{
		{PanicAt: 0, CancelAt: -1},
		{PanicAt: -1, CancelAt: 0},
		{PanicAt: -1, CancelAt: -1, MaxBitOps: 1},
	} {
		if pl.FaultFree() {
			t.Fatalf("%v should not be fault-free", pl)
		}
	}
}

func TestStringMentionsEveryFault(t *testing.T) {
	pl := Plan{Seed: 9, PanicAt: 1, CancelAt: 2, MaxBitOps: 3, DelayEvery: 4, Delay: time.Microsecond}
	s := pl.String()
	for _, want := range []string{"seed=9", "panic@1", "cancel@2", "budget=3", "/4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

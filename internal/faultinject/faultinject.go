// Package faultinject builds deterministic, seed-derived fault plans
// for the solver's chaos suite. A Plan describes which scheduler tasks
// misbehave — panic, stall, trigger cancellation — and how tight the
// bit-operation budget is; the same seed always yields the same plan,
// so a chaos failure reproduces from nothing but its seed. The plan is
// delivered to the pool through core.Options.TaskHook, which the
// scheduler invokes with a monotone per-pool task sequence number
// before each task body runs.
package faultinject

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// A Plan is one deterministic fault schedule. The zero value injects
// nothing. Sequence numbers refer to the pool's task-submission order
// as observed by the task hook; -1 disables the corresponding fault.
type Plan struct {
	Seed       int64         // seed the plan was derived from (informational)
	PanicAt    int64         // task sequence at which the hook panics; -1 = never
	CancelAt   int64         // task sequence at which the run's context is canceled; -1 = never
	DelayEvery int64         // every DelayEvery-th task sleeps for Delay; 0 = never
	Delay      time.Duration // per-stall duration when DelayEvery > 0
	MaxBitOps  int64         // bit-operation budget for the run; 0 = unlimited
}

// Panic is the value a planned task fault panics with, so chaos
// assertions can tell an injected panic apart from a genuine solver
// bug captured by the same recover.
type Panic struct {
	Seed int64 // plan that injected it
	Seq  int64 // task at which it fired
}

func (p Panic) String() string {
	return fmt.Sprintf("faultinject: planned panic (seed=%d, task=%d)", p.Seed, p.Seq)
}

// New derives a plan from seed. The mixture is roughly a quarter each
// of task panics, mid-run cancellations, tight bit budgets, and
// fault-free controls (which must come back bit-exact); independently,
// half of all plans stall a stride of tasks for a few microseconds to
// shift the scheduler's interleavings.
func New(seed int64) Plan {
	rng := rand.New(rand.NewSource(seed))
	pl := Plan{Seed: seed, PanicAt: -1, CancelAt: -1}
	switch rng.Intn(4) {
	case 0: // fault-free control
	case 1:
		pl.PanicAt = rng.Int63n(64)
	case 2:
		pl.CancelAt = rng.Int63n(64)
	case 3:
		// Low enough that any non-trivial instance trips it.
		pl.MaxBitOps = 500 + rng.Int63n(4000)
	}
	if rng.Intn(2) == 0 {
		pl.DelayEvery = 1 + rng.Int63n(7)
		pl.Delay = time.Duration(1+rng.Intn(40)) * time.Microsecond
	}
	return pl
}

// Hook returns the task hook implementing the plan, or nil when the
// plan has no per-task faults (budgets live in Options.MaxBitOps, not
// in the hook). cancel is the run context's CancelFunc, invoked at
// CancelAt; it may be nil when the plan never cancels. The hook is
// called concurrently from pool workers and is safe for that.
func (pl Plan) Hook(cancel context.CancelFunc) func(seq int64) {
	if pl.PanicAt < 0 && pl.CancelAt < 0 && pl.DelayEvery == 0 {
		return nil
	}
	return func(seq int64) {
		if pl.DelayEvery > 0 && seq%pl.DelayEvery == 0 {
			time.Sleep(pl.Delay)
		}
		if seq == pl.CancelAt && cancel != nil {
			cancel()
		}
		if seq == pl.PanicAt {
			panic(Panic{Seed: pl.Seed, Seq: seq})
		}
	}
}

// FaultFree reports whether the plan injects no fault that could make
// a run fail (stalls only perturb timing, never the outcome).
func (pl Plan) FaultFree() bool {
	return pl.PanicAt < 0 && pl.CancelAt < 0 && pl.MaxBitOps == 0
}

// String renders the plan compactly for failure messages.
func (pl Plan) String() string {
	s := fmt.Sprintf("plan(seed=%d", pl.Seed)
	if pl.PanicAt >= 0 {
		s += fmt.Sprintf(" panic@%d", pl.PanicAt)
	}
	if pl.CancelAt >= 0 {
		s += fmt.Sprintf(" cancel@%d", pl.CancelAt)
	}
	if pl.MaxBitOps > 0 {
		s += fmt.Sprintf(" budget=%d", pl.MaxBitOps)
	}
	if pl.DelayEvery > 0 {
		s += fmt.Sprintf(" delay=%v/%d", pl.Delay, pl.DelayEvery)
	}
	return s + ")"
}

// Package model implements the paper's analytical cost model (§4): for
// each phase of the algorithm it predicts the number of big-integer
// multiplications and their bit complexity, as a function of the degree
// n, the coefficient size m, and the output precision µ. These
// predictions are the "predicted" series in Figures 2 through 7; the
// "observed" series come from internal/metrics instrumentation.
//
// Two levels of fidelity are provided, mirroring the paper's §5.1
// methodology ("the analytical estimates we used were much more precise
// versions of the asymptotic expressions presented in Section 4"):
//
//   - Multiplication counts are exact structural counts obtained by
//     replaying the algorithm's control flow with symbolic degrees (no
//     bignum arithmetic), so they can match the observed counts closely.
//     Only the interval phases involve data-dependent iteration counts,
//     for which the paper's average-case estimate I_avg (Eq. 41) is
//     used.
//
//   - Bit complexities weight each multiplication with the Collins
//     coefficient-size bounds (β = 2m + 3·log n + 2; Eqs. 25-31). These
//     are upper bounds, and reproduce the paper's observation (Fig. 7)
//     that the bit-complexity predictions are weak upper bounds even
//     when the counts fit well.
package model

import (
	"math"

	"realroots/internal/metrics"
	"realroots/internal/tree"
)

// Params describes one problem instance.
type Params struct {
	N  int  // degree
	M  int  // coefficient size in bits (the paper's m)
	Mu uint // output precision
	R  int  // root-bound bits: all roots in (-2^R, 2^R); typically ≤ M+1
	// Range optionally gives the bits of the actual root spread (e.g.
	// ⌈log₂ 2n⌉ for the eigenvalues of a symmetric 0-1 matrix). The
	// Cauchy bound R can exceed it by an order of magnitude, and the
	// number of bisection/Newton rounds tracks the true spread because
	// the sieve collapses the slack in O(log log) probes. Zero means
	// "use R".
	Range int
}

func (p Params) rangeBits() float64 {
	if p.Range > 0 {
		return float64(p.Range)
	}
	return float64(p.R)
}

// Beta returns β = 2m + 3·log₂n + 2 (the paper's coefficient-growth
// unit, Eq. 25).
func (p Params) Beta() float64 {
	return 2*float64(p.M) + 3*math.Log2(float64(p.N)) + 2
}

// X returns the paper's evaluation-point size bound X = R + µ (§4.3).
func (p Params) X() float64 { return float64(p.R) + float64(p.Mu) }

// A Prediction holds the modelled cost of one phase.
type Prediction struct {
	Muls  float64 // number of multiplications
	Bits  float64 // Σ bitlen·bitlen over those multiplications
	Evals float64 // polynomial evaluations (interval phases only)
}

// Report maps each phase to its prediction.
type Report map[metrics.Phase]Prediction

// Total returns the sum over all phases.
func (r Report) Total() Prediction {
	var t Prediction
	for _, p := range r {
		t.Muls += p.Muls
		t.Bits += p.Bits
		t.Evals += p.Evals
	}
	return t
}

// Predict computes the full per-phase cost model.
func (p Params) Predict() Report {
	return Report{
		metrics.PhaseRemainder:   p.Remainder(),
		metrics.PhaseTree:        p.Tree(),
		metrics.PhasePreInterval: p.PreInterval(),
		metrics.PhaseSieve:       p.IntervalPhase(metrics.PhaseSieve),
		metrics.PhaseBisection:   p.IntervalPhase(metrics.PhaseBisection),
		metrics.PhaseNewton:      p.IntervalPhase(metrics.PhaseNewton),
	}
}

// fBits returns the bound on ||F_i|| in bits: i·β (Eq. 25), with
// ||F_0|| = m.
func (p Params) fBits(i int) float64 {
	if i == 0 {
		return float64(p.M)
	}
	return float64(i) * p.Beta()
}

// qBits returns the bound on ||Q_i||: 2i·β (Eq. 26).
func (p Params) qBits(i int) float64 { return 2 * float64(i) * p.Beta() }

// Remainder predicts the remainder-sequence phase. The implementation's
// iteration i (1 ≤ i ≤ n-1) performs:
//
//	1 mul  for q_{i,1} = c_{i-1}·c_i
//	2 muls for q_{i,0}
//	1 mul  for c_i²
//	3(n-i)-1 muls for the coefficient recurrence (the j = 0 term has no
//	              q_{i,1} product)
//
// matching §3.1's 3(n-i) count up to the constant per-iteration setup.
func (p Params) Remainder() Prediction {
	var muls, bits float64
	for i := 1; i < p.N; i++ {
		fi := p.fBits(i)
		fi1 := p.fBits(i - 1)
		qi := p.qBits(i)
		nmi := float64(p.N - i)
		// 3(n-i)-1 recurrence products (the j = 0 term has no q_{i,1}
		// factor), plus q_{i,1}, two q_{i,0} terms, c_i², and — for
		// i ≥ 2 — the divisor c_{i-1}².
		muls += 3*nmi - 1 + 4
		if i >= 2 {
			muls++
		}
		// Setup products: q_{i,1}, the two q_{i,0} terms, and c_i².
		bits += fi1*fi + 2*fi*fi1 + fi*fi
		// Recurrence products per j: f_i·q_0, f_{i,j-1}·q_1, c_i²·f_{i-1}
		// (the paper's 2||F_i||·||Q_i|| + 2||F_i||·||F_{i-1}|| per term).
		bits += nmi * (2*fi*qi + 2*fi*fi1)
	}
	return Prediction{Muls: muls, Bits: bits}
}

// entryDeg returns the degrees of the four entries of T_{a,b}
// (Appendix A Eq. 54): [[-P_{a+1,b-1}, P_{a,b-1}], [-P_{a+1,b}, P_{a,b}]],
// with deg P_{x,y} = y-x+1 and P = 1 (degree 0) when x > y.
func entryDeg(a, b int) [2][2]int {
	d := func(x, y int) int {
		if x > y {
			return 0
		}
		return y - x + 1
	}
	return [2][2]int{
		{d(a+1, b-1), d(a, b-1)},
		{d(a+1, b), d(a, b)},
	}
}

// tBits returns the coefficient-size bound for T_{a,b}: (a+b)·β
// (Eq. 31 with i = a, k = b-a+1 gives (2i+k-1)β = (a+b)β).
func (p Params) tBits(a, b int) float64 { return float64(a+b) * p.Beta() }

// sHatEntry describes Ŝ_k = [[0, c_{k-1}²], [-c_k², Q_k]]: degrees and
// sizes of the non-zero entries.
func (p Params) sHatSizes(k int) (degs [2][2]int, bits [2][2]float64, zero [2][2]bool) {
	degs = [2][2]int{{0, 0}, {0, 1}}
	bits = [2][2]float64{
		{0, 2 * p.fBits(k-1)},
		{2 * p.fBits(k), p.qBits(k)},
	}
	zero[0][0] = true
	return
}

// mulCost accumulates the schoolbook cost of multiplying two
// polynomial-matrix entries with the given degrees and coefficient
// sizes: (d1+1)(d2+1) coefficient multiplications of b1×b2 bits.
func mulCost(d1, d2 int, b1, b2 float64) (muls, bits float64) {
	n := float64((d1 + 1) * (d2 + 1))
	return n, n * b1 * b2
}

// Tree predicts the tree-polynomial phase by replaying the tree
// structure: for every non-rightmost internal node [i,j] with split k,
// the products Ŝ_k·T_{i,k-1} and T_{k+1,j}·(Ŝ_k·T_{i,k-1}) are costed
// entry by entry, skipping the structurally-zero entry of Ŝ_k, exactly
// as the implementation does.
func (p Params) Tree() Prediction {
	var muls, bits float64
	root := tree.Build(p.N)
	root.Walk(func(nd *tree.Node) {
		if nd.J == p.N || nd.IsLeaf() {
			return
		}
		i, j, k := nd.I, nd.J, nd.K

		// M1 = Ŝ_k · T_{i,k-1}.
		sDeg, sBits, sZero := p.sHatSizes(k)
		tlDeg := entryDeg(i, k-1)
		tlB := p.tBits(i, k-1)
		// A leaf T-matrix is Ŝ itself, whose (0,0) entry is the zero
		// polynomial (Eq. 54 does not apply at j = i); the implementation
		// performs no multiplications against it.
		var tlZero, trZero [2][2]bool
		if nd.Left.IsLeaf() {
			tlZero[0][0] = true
		}
		if nd.Right != nil && nd.Right.IsLeaf() {
			trZero[0][0] = true
		}
		// Resulting M1 entry degrees (for the second product): the
		// matrix product of Ŝ_k and T_{i,k-1} is c_{k-1}²·T_{i,k} — wait:
		// Ŝ_k·T_{i,k-1} = c_{k-1}²·S_k·c_{i-1}²·S_{k-1}…S_i = c_{k-1}²/c_{i-1}²·…
		// Structurally it equals T_{i,k} scaled, so its entry degrees are
		// those of T_{i,k}.
		m1Deg := entryDeg(i, k)
		m1B := p.tBits(i, k) // size bound after the product (pre-division)
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				for m := 0; m < 2; m++ {
					if sZero[r][m] || tlZero[m][c] {
						continue
					}
					mu, bi := mulCost(sDeg[r][m], tlDeg[m][c], sBits[r][m], tlB)
					muls += mu
					bits += bi
				}
			}
		}

		if nd.Right == nil {
			return
		}
		// M2 = T_{k+1,j} · M1.
		trDeg := entryDeg(k+1, j)
		trB := p.tBits(k+1, j)
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				for m := 0; m < 2; m++ {
					if trZero[r][m] {
						continue
					}
					mu, bi := mulCost(trDeg[r][m], m1Deg[m][c], trB, m1B)
					muls += mu
					bits += bi
				}
			}
		}
	})
	return Prediction{Muls: muls, Bits: bits}
}

// pBits returns the coefficient-size bound for the polynomial at node
// [i,j]: (i+j-1)·β for non-rightmost nodes (Eq. 29), (i-1)·β for
// rightmost ones (Eq. 30).
func (p Params) pBits(i, j int) float64 {
	if j == p.N {
		return math.Max(p.fBits(i-1), 1)
	}
	return float64(i+j-1) * p.Beta()
}

// evalCost returns the cost of one scaled Horner evaluation of a
// degree-d polynomial with mBits coefficients at an X-bit point
// (Eq. 37): d multiplications, mXd + X²d²/2 bit cost.
func (p Params) evalCost(d int, mBits float64) (muls, bits float64) {
	x := p.X()
	return float64(d), mBits*x*float64(d) + x*x*float64(d)*float64(d)/2
}

// PreInterval predicts the pre-interval phase: each node of degree d
// evaluates its polynomial at d+1 interleaving points, and the case
// analysis of §2.2 probes one more point (ỹ_{i+1} - 2^-µ) per interval
// in the generic case 2c, for 2d+1 evaluations per node.
func (p Params) PreInterval() Prediction {
	var muls, bits float64
	root := tree.Build(p.N)
	root.Walk(func(nd *tree.Node) {
		d := nd.Size()
		mBits := p.pBits(nd.I, nd.J)
		em, eb := p.evalCost(d, mBits)
		n := float64(2*d + 1)
		muls += n * em
		bits += n * eb
	})
	return Prediction{Muls: muls, Bits: bits, Evals: evalTotal(p.N, func(d int) float64 { return float64(2*d + 1) })}
}

// Calibration constants for the interval-phase iteration counts. The
// sieve's average iteration count is a small constant (the paper:
// "the double-exponential sieve takes only a constant number of
// iterations" under a uniform-root assumption); Newton performs two
// evaluations (P and P′) per iteration plus one finishing sign test.
const (
	SieveAvgEvals      = 7.0
	NewtonEvalsPerIter = 2.0
	// NewtonFinishEvals covers the two verification probes plus the grid
	// decision when the Newton iteration actually runs; when the bracket
	// is already at grid width only the single finishing test remains.
	NewtonFinishEvals = 3.0
	NewtonSkipEvals   = 1.0
)

// intervalEvalsPerProblem returns the modelled number of evaluations
// for one interval problem of a degree-d polynomial, split by phase
// (Eq. 38 terms; average-case Eq. 41 for sieve and Newton). The
// bisection and Newton counts are capped by the number of bits between
// the typical isolating-interval width (≈ root range / d) and the 2^-µ
// grid, which is what the implementation's early-exit does.
func (p Params) intervalEvalsPerProblem(d int, phase metrics.Phase) float64 {
	if d < 1 {
		return 0
	}
	logTenD2 := math.Log2(10 * float64(d) * float64(d))
	// Bits from the typical initial bracket width (root spread / d) down
	// to the 2^-µ grid.
	avail := math.Max(0, p.rangeBits()+1-math.Log2(float64(d))+float64(p.Mu))
	bisect := math.Min(math.Ceil(logTenD2), avail)
	switch phase {
	case metrics.PhaseSieve:
		return SieveAvgEvals
	case metrics.PhaseBisection:
		return bisect
	case metrics.PhaseNewton:
		// The sieve localizes the root, absorbing the R bits of slack in
		// the Cauchy bound, and bisection contributes ≈ log(10d²) bits;
		// Newton's remaining work is the gap to the µ output bits,
		// closed at one doubling per iteration (Eq. 41's second term
		// with the sieve-localized X = µ).
		if float64(p.Mu) <= logTenD2 || avail <= bisect {
			return NewtonSkipEvals
		}
		iters := math.Log2(math.Max(2, float64(p.Mu)/logTenD2))
		return NewtonEvalsPerIter*iters + NewtonFinishEvals
	}
	return 0
}

// evalTotal sums f(degree) over every node of the tree.
func evalTotal(n int, f func(d int) float64) float64 {
	var total float64
	tree.Build(n).Walk(func(nd *tree.Node) { total += f(nd.Size()) })
	return total
}

// IntervalPhase predicts one of the three interval sub-phases across
// the whole tree: each node of degree d solves d interval problems on
// a polynomial with the node's size bounds.
func (p Params) IntervalPhase(phase metrics.Phase) Prediction {
	var muls, bits, evals float64
	root := tree.Build(p.N)
	root.Walk(func(nd *tree.Node) {
		d := nd.Size()
		mBits := p.pBits(nd.I, nd.J)
		perEval, perEvalBits := p.evalCost(d, mBits)
		e := float64(d) * p.intervalEvalsPerProblem(d, phase)
		evals += e
		muls += e * perEval
		bits += e * perEvalBits
	})
	return Prediction{Muls: muls, Bits: bits, Evals: evals}
}

// WorstCaseIntervalEvals returns the paper's worst-case estimate
// I(X,d) = ½·log²X + log(10d²) + O(log X) (Eq. 38) for one problem.
func (p Params) WorstCaseIntervalEvals(d int) float64 {
	x := p.X()
	return 0.5*math.Log2(x)*math.Log2(x) + math.Log2(10*float64(d)*float64(d)) + math.Log2(x)
}

// EstimateBitOps predicts the total schoolbook bit-operation cost
// (Σ bitlen·bitlen over multiplications, the metrics.BitOps measure) of
// a full solve of a degree-n polynomial with m-bit coefficients at
// output precision µ. It is the cost model cmd/rootd's admission
// control uses to decide, before running anything, whether a request
// fits the server's in-flight bit-operation budget. The estimate uses
// the Cauchy root bound R ≤ m+1, so it is an a-priori upper-end figure:
// expect it to overshoot the measured metrics.Counters.BitOps on easy
// inputs (the paper's own Figure 7 conclusion).
func EstimateBitOps(n, m int, mu uint) int64 {
	if n < 1 {
		return 0
	}
	if m < 1 {
		m = 1
	}
	bits := Params{N: n, M: m, Mu: mu, R: m + 1}.Predict().Total().Bits
	if bits >= math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(bits)
}

package model

import (
	"math"
	"testing"

	"realroots/internal/core"
	"realroots/internal/metrics"
	"realroots/internal/workload"
)

// runObserved executes the real algorithm with counters and returns the
// per-phase report.
func runObserved(t *testing.T, n int, mu uint, seed int64) (metrics.Report, Params) {
	t.Helper()
	p := workload.CharPoly01(seed, n)
	var c metrics.Counters
	if _, err := core.FindRoots(p, core.Options{Mu: mu, Counters: &c}); err != nil {
		t.Fatalf("n=%d: %v", n, err)
	}
	bound := p.RootBound()
	params := Params{
		N: n, M: p.MaxCoeffBits(), Mu: mu, R: bound.BitLen() - 1,
		// Eigenvalues of a symmetric 0-1 matrix lie within ±n.
		Range: int(math.Ceil(math.Log2(float64(2 * n)))),
	}
	return c.Snapshot(), params
}

func TestRemainderMulCountExact(t *testing.T) {
	for _, n := range []int{5, 9, 14, 20} {
		rep, params := runObserved(t, n, 8, int64(n))
		got := float64(rep.Phases[metrics.PhaseRemainder].Muls)
		want := params.Remainder().Muls
		if got != want {
			t.Errorf("n=%d: observed %v remainder muls, model %v", n, got, want)
		}
	}
}

func TestTreeMulCountClose(t *testing.T) {
	// Tree counts are exact up to zero coefficients in the T-matrix
	// entries, which are rare for generic inputs; require ≤ 5% gap with
	// the model as the upper side.
	for _, n := range []int{8, 12, 17, 24} {
		rep, params := runObserved(t, n, 8, int64(100+n))
		got := float64(rep.Phases[metrics.PhaseTree].Muls)
		want := params.Tree().Muls
		if got > want {
			t.Errorf("n=%d: observed %v tree muls exceeds model %v", n, got, want)
		}
		if got < 0.95*want {
			t.Errorf("n=%d: observed %v tree muls, model %v (gap > 5%%)", n, got, want)
		}
	}
}

func TestPreIntervalEvalsClose(t *testing.T) {
	for _, n := range []int{8, 14, 20} {
		rep, params := runObserved(t, n, 16, int64(200+n))
		got := float64(rep.Phases[metrics.PhasePreInterval].Evals)
		want := params.PreInterval().Evals
		if got < 0.5*want || got > 1.2*want {
			t.Errorf("n=%d: observed %v preinterval evals, model %v", n, got, want)
		}
	}
}

func TestIntervalPhaseEvalsReasonable(t *testing.T) {
	// The refinement-phase eval model should be within a factor of ~2 of
	// observation on the paper's workload (the paper's own Figures 2-6
	// show this level of fit).
	for _, n := range []int{10, 16, 22} {
		for _, mu := range []uint{8, 32} {
			rep, params := runObserved(t, n, mu, int64(300+n))
			for _, ph := range metrics.IntervalPhases {
				got := float64(rep.Phases[ph].Evals)
				want := params.IntervalPhase(ph).Evals
				if got == 0 && want == 0 {
					continue
				}
				lo, hi := want/2.5, want*2.5
				if got < lo || got > hi {
					t.Errorf("n=%d µ=%d %v: observed %v evals, model %v", n, mu, ph, got, want)
				}
			}
		}
	}
}

func TestBitModelIsUpperBound(t *testing.T) {
	// The Collins-bound bit complexities must upper-bound observation
	// (the paper's Fig. 7 point: the fit is weak but one-sided).
	for _, n := range []int{10, 16, 22} {
		rep, params := runObserved(t, n, 32, int64(400+n))
		pred := params.Predict()
		for _, ph := range []metrics.Phase{metrics.PhaseRemainder, metrics.PhaseTree} {
			got := float64(rep.Phases[ph].MulBits)
			want := pred[ph].Bits
			if got > want {
				t.Errorf("n=%d %v: observed bit cost %v exceeds model bound %v", n, ph, got, want)
			}
		}
	}
}

func TestPredictionsGrowWithN(t *testing.T) {
	prev := Prediction{}
	for _, n := range []int{8, 16, 32, 64} {
		p := Params{N: n, M: 10, Mu: 16, R: 11}
		tot := p.Predict().Total()
		if tot.Muls <= prev.Muls || tot.Bits <= prev.Bits {
			t.Fatalf("n=%d: totals did not grow: %+v vs %+v", n, tot, prev)
		}
		prev = tot
	}
}

func TestPredictionsGrowWithMu(t *testing.T) {
	prev := 0.0
	for _, mu := range []uint{4, 8, 16, 32, 64} {
		p := Params{N: 20, M: 8, Mu: mu, R: 9}
		tot := p.Predict().Total()
		if tot.Muls <= prev {
			t.Fatalf("µ=%d: muls did not grow: %v vs %v", mu, tot.Muls, prev)
		}
		prev = tot.Muls
	}
}

func TestAsymptoticExponents(t *testing.T) {
	// Table 1: remainder and tree phases are Θ(n²) multiplications and
	// Θ(n⁴·(m+log n)²) bit operations. Fit the exponent over a dyadic
	// n-range and require it within ±0.35 of the nominal value.
	fit := func(f func(n int) float64) float64 {
		n1, n2 := 32, 128
		return math.Log2(f(n2)/f(n1)) / math.Log2(float64(n2)/float64(n1))
	}
	mulExp := fit(func(n int) float64 {
		return Params{N: n, M: 10, Mu: 16, R: 11}.Remainder().Muls
	})
	if math.Abs(mulExp-2) > 0.35 {
		t.Errorf("remainder mul exponent %.2f, want ≈ 2", mulExp)
	}
	treeExp := fit(func(n int) float64 {
		return Params{N: n, M: 10, Mu: 16, R: 11}.Tree().Muls
	})
	if math.Abs(treeExp-2) > 0.35 {
		t.Errorf("tree mul exponent %.2f, want ≈ 2", treeExp)
	}
	bitExp := fit(func(n int) float64 {
		return Params{N: n, M: 10, Mu: 16, R: 11}.Tree().Bits
	})
	if math.Abs(bitExp-4) > 0.6 {
		t.Errorf("tree bit exponent %.2f, want ≈ 4", bitExp)
	}
	remBitExp := fit(func(n int) float64 {
		return Params{N: n, M: 10, Mu: 16, R: 11}.Remainder().Bits
	})
	if math.Abs(remBitExp-4) > 0.6 {
		t.Errorf("remainder bit exponent %.2f, want ≈ 4", remBitExp)
	}
}

func TestBeta(t *testing.T) {
	p := Params{N: 16, M: 10}
	want := 2.0*10 + 3.0*4 + 2
	if got := p.Beta(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Beta = %v, want %v", got, want)
	}
}

func TestWorstCaseExceedsAverage(t *testing.T) {
	p := Params{N: 30, M: 12, Mu: 32, R: 13}
	for _, d := range []int{2, 5, 15, 30} {
		worst := p.WorstCaseIntervalEvals(d)
		avg := p.intervalEvalsPerProblem(d, metrics.PhaseSieve) +
			p.intervalEvalsPerProblem(d, metrics.PhaseBisection) +
			p.intervalEvalsPerProblem(d, metrics.PhaseNewton)
		if worst < avg*0.8 {
			t.Errorf("d=%d: worst case %v below average %v", d, worst, avg)
		}
	}
}

func TestReportTotal(t *testing.T) {
	p := Params{N: 12, M: 6, Mu: 8, R: 7}
	rep := p.Predict()
	tot := rep.Total()
	var sum float64
	for _, pr := range rep {
		sum += pr.Muls
	}
	if tot.Muls != sum {
		t.Errorf("Total.Muls %v != sum %v", tot.Muls, sum)
	}
}

package interval

import (
	"testing"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// Explicit constructions driving each branch of the paper's §2.2 case
// analysis.

// TestCase1CoincidentApproximations: ỹ_i == ỹ_{i+1} pins the root with
// no further work (case 1).
func TestCase1CoincidentApproximations(t *testing.T) {
	// Roots 1/16, 1/8, 3/16 at µ=1: both interleaving values (anything
	// strictly between the roots) round up to 1/2.
	p := poly.New(mp.NewInt(-1), mp.NewInt(16)).
		Mul(poly.New(mp.NewInt(-1), mp.NewInt(8))).
		Mul(poly.New(mp.NewInt(-3), mp.NewInt(16)))
	half := dyadic.New(mp.NewInt(1), 1)
	var c metrics.Counters
	s := NewSolver(p, []dyadic.Dyadic{half, half}, p.RootBound(), 1, MethodHybrid, metrics.Ctx{C: &c})
	roots := s.SolveAll()
	for i, r := range roots {
		if !r.Equal(half) {
			t.Fatalf("root %d = %v, want 1/2", i, r)
		}
	}
	// The middle gap is case 1: zero refinement evaluations can be
	// attributed to it. (The outer gaps still refine, so just check the
	// middle interval in isolation.)
	before := c.Snapshot()
	if got := s.SolveInterval(1); !got.Equal(half) {
		t.Fatalf("middle root = %v", got)
	}
	diff := c.Snapshot().Sub(before)
	refine := diff.Phases[metrics.PhaseSieve].Evals +
		diff.Phases[metrics.PhaseBisection].Evals +
		diff.Phases[metrics.PhaseNewton].Evals
	if refine != 0 {
		t.Fatalf("case 1 performed %d refinement evaluations", refine)
	}
}

// TestCase2aRootAtOrBelowApproximation: m(ỹ_i) = i+1, so
// x_i ∈ (ỹ_i - 2^-µ, ỹ_i] and x̃_i = ỹ_i with no refinement (case 2a).
func TestCase2aRootAtOrBelowApproximation(t *testing.T) {
	// Roots 0 and 15/16; true interleaving value 0.9 rounds up to 1 at
	// µ=2, overshooting the second root (15/16 ≤ 1).
	p := poly.FromInt64s(0, 1).Mul(poly.New(mp.NewInt(-15), mp.NewInt(16)))
	one := dyadic.FromInt64(1)
	var c metrics.Counters
	s := NewSolver(p, []dyadic.Dyadic{one}, p.RootBound(), 2, MethodHybrid, metrics.Ctx{C: &c})
	for i := 0; i < s.NumPoints(); i++ {
		s.EvalPoint(i)
	}
	before := c.Snapshot()
	got := s.SolveInterval(1) // the gap [1, B)
	if !got.Equal(one) {
		t.Fatalf("x̃_1 = %v, want 1 (case 2a)", got)
	}
	diff := c.Snapshot().Sub(before)
	total := diff.Total()
	if total.Evals != 0 {
		t.Fatalf("case 2a performed %d evaluations", total.Evals)
	}
	// And the other root resolves to 0 exactly.
	if got := s.SolveInterval(0); got.Sign() != 0 {
		t.Fatalf("x̃_0 = %v, want 0", got)
	}
}

// TestCase2bRootInLastStep: m(ỹ_{i+1} - 2^-µ) = i, so the root lies in
// (ỹ_{i+1} - 2^-µ, ỹ_{i+1}] and x̃_i = ỹ_{i+1} after the single c-probe
// (case 2b).
func TestCase2bRootInLastStep(t *testing.T) {
	// Roots 7/8 and 3 at µ=2 with interleaving approximation 1: the gap
	// (-B, 1] holds 7/8 ∈ (3/4, 1], i.e. within the last grid step.
	p := poly.New(mp.NewInt(-7), mp.NewInt(8)).Mul(poly.FromRoots(mp.NewInt(3)))
	one := dyadic.FromInt64(1)
	var c metrics.Counters
	s := NewSolver(p, []dyadic.Dyadic{one}, p.RootBound(), 2, MethodHybrid, metrics.Ctx{C: &c})
	for i := 0; i < s.NumPoints(); i++ {
		s.EvalPoint(i)
	}
	before := c.Snapshot()
	got := s.SolveInterval(0)
	if !got.Equal(one) {
		t.Fatalf("x̃_0 = %v, want 1 (case 2b)", got)
	}
	diff := c.Snapshot().Sub(before)
	// Case 2b costs exactly the one probe at c = ỹ_{i+1} - 2^-µ.
	if pre := diff.Phases[metrics.PhasePreInterval].Evals; pre != 1 {
		t.Fatalf("case 2b performed %d probe evaluations, want 1", pre)
	}
	refine := diff.Phases[metrics.PhaseSieve].Evals +
		diff.Phases[metrics.PhaseBisection].Evals +
		diff.Phases[metrics.PhaseNewton].Evals
	if refine != 0 {
		t.Fatalf("case 2b performed %d refinement evaluations", refine)
	}
}

// TestCaseExactRootAtProbe: the c-probe landing exactly on a root
// returns it immediately.
func TestCaseExactRootAtProbe(t *testing.T) {
	// Roots 3/4 and 5 at µ=2 with interleaving approximation 1:
	// c = 1 - 1/4 = 3/4 is exactly the root.
	p := poly.New(mp.NewInt(-3), mp.NewInt(4)).Mul(poly.FromRoots(mp.NewInt(5)))
	one := dyadic.FromInt64(1)
	s := NewSolver(p, []dyadic.Dyadic{one}, p.RootBound(), 2, MethodHybrid, metrics.Ctx{})
	for i := 0; i < s.NumPoints(); i++ {
		s.EvalPoint(i)
	}
	got := s.SolveInterval(0)
	if !got.Equal(dyadic.New(mp.NewInt(3), 2)) {
		t.Fatalf("x̃_0 = %v, want 3/4", got)
	}
}

// TestAdjacentGridGap: a gap of exactly one grid step resolves without
// probing (x_i ∈ (a, a + 2^-µ] forces x̃_i = b).
func TestAdjacentGridGap(t *testing.T) {
	// Roots 1/3-ish… use 3/8 with µ=2 and interleaving values 1/4 and 1/2
	// around it: gap (1/4, 1/2] of exactly one step.
	p := poly.New(mp.NewInt(-3), mp.NewInt(8)). // root 3/8
							Mul(poly.FromRoots(mp.NewInt(0), mp.NewInt(2)))
	quarter := dyadic.New(mp.NewInt(1), 2)
	halfD := dyadic.New(mp.NewInt(1), 1)
	s := NewSolver(p, []dyadic.Dyadic{quarter, halfD}, p.RootBound(), 2, MethodHybrid, metrics.Ctx{})
	roots := s.SolveAll()
	if !roots[1].Equal(halfD) {
		t.Fatalf("x̃_1 = %v, want 1/2", roots[1])
	}
	if roots[0].Sign() != 0 || !roots[2].Equal(dyadic.FromInt64(2)) {
		t.Fatalf("outer roots = %v, %v", roots[0], roots[2])
	}
}

package interval

import (
	"fmt"
	"testing"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// benchSolver builds a fresh solver over x² - 2 at the given precision.
func benchSolver(mu uint, m Method) *Solver {
	p := poly.FromInt64s(-2, 0, 1)
	return NewSolver(p, []dyadic.Dyadic{dyadic.FromInt64(0)}, p.RootBound(), mu, m, metrics.Ctx{})
}

func BenchmarkSolveSqrt2(b *testing.B) {
	for _, m := range []Method{MethodHybrid, MethodBisection, MethodNewton} {
		for _, mu := range []uint{16, 64, 256} {
			b.Run(fmt.Sprintf("%v/mu=%d", m, mu), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					benchSolver(mu, m).SolveAll()
				}
			})
		}
	}
}

func BenchmarkSolveWilkinson(b *testing.B) {
	// Integer-rooted degree-16 polynomial with tight midpoint intervals.
	var roots []*mp.Int
	for i := 1; i <= 16; i++ {
		roots = append(roots, mp.NewInt(int64(i)))
	}
	p := poly.FromRoots(roots...)
	var ys []dyadic.Dyadic
	for i := 1; i < 16; i++ {
		ys = append(ys, dyadic.New(mp.NewInt(int64(2*i+1)), 1)) // i + 1/2
	}
	for i := 0; i < b.N; i++ {
		s := NewSolver(p, ys, p.RootBound(), 32, MethodHybrid, metrics.Ctx{})
		s.SolveAll()
	}
}

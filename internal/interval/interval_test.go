package interval

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// buildProblem constructs a solver for a polynomial with the given
// strictly increasing dyadic roots, using the midpoints of consecutive
// roots (rounded to the grid) as interleaving values — exactly what the
// tree algorithm feeds each node.
func buildProblem(t *testing.T, roots []dyadic.Dyadic, mu uint, method Method, ctx metrics.Ctx) *Solver {
	t.Helper()
	// p = ∏ (2^s·x - n) over the dyadic roots n/2^s, scaled to integers.
	p := poly.FromInt64s(1)
	for _, r := range roots {
		lin := poly.New(new(mp.Int).Neg(r.Num()), new(mp.Int).Lsh(mp.NewInt(1), r.Scale()))
		p = p.Mul(lin)
	}
	var ys []dyadic.Dyadic
	for i := 1; i < len(roots); i++ {
		ys = append(ys, roots[i-1].Mid(roots[i]).CeilGrid(mu))
	}
	return NewSolver(p, ys, p.RootBound(), mu, method, ctx)
}

func wantApprox(roots []dyadic.Dyadic, mu uint) []dyadic.Dyadic {
	out := make([]dyadic.Dyadic, len(roots))
	for i, r := range roots {
		out[i] = r.CeilGrid(mu)
	}
	return out
}

func dy(num int64, scale uint) dyadic.Dyadic { return dyadic.New(mp.NewInt(num), scale) }

func checkSolve(t *testing.T, roots []dyadic.Dyadic, mu uint, method Method) {
	t.Helper()
	s := buildProblem(t, roots, mu, method, metrics.Ctx{})
	got := s.SolveAll()
	want := wantApprox(roots, mu)
	if len(got) != len(want) {
		t.Fatalf("%v: got %d roots, want %d", method, len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%v µ=%d: root %d = %v, want %v (roots %v)", method, mu, i, got[i], want[i], roots)
		}
	}
}

func TestIntegerRootsAllMethods(t *testing.T) {
	roots := []dyadic.Dyadic{dy(-7, 0), dy(-2, 0), dy(0, 0), dy(3, 0), dy(11, 0)}
	for _, m := range []Method{MethodHybrid, MethodBisection, MethodNewton} {
		for _, mu := range []uint{1, 4, 8, 16, 32} {
			checkSolve(t, roots, mu, m)
		}
	}
}

func TestDyadicRootsOffGrid(t *testing.T) {
	// Roots at -11/8, 3/16, 5/4, 9/2 with µ coarser than some scales.
	roots := []dyadic.Dyadic{dy(-11, 3), dy(3, 4), dy(5, 2), dy(9, 1)}
	for _, m := range []Method{MethodHybrid, MethodBisection, MethodNewton} {
		for _, mu := range []uint{1, 2, 3, 5, 10} {
			checkSolve(t, roots, mu, m)
		}
	}
}

func TestCloseRootsSameGridCell(t *testing.T) {
	// Two roots inside one 2^-1 cell: 1/8 and 3/8 both round up to 1/2.
	roots := []dyadic.Dyadic{dy(1, 3), dy(3, 3)}
	checkSolve(t, roots, 1, MethodHybrid)
	checkSolve(t, roots, 1, MethodBisection)
	// And at fine precision they separate.
	checkSolve(t, roots, 6, MethodHybrid)
}

func TestRootExactlyOnGrid(t *testing.T) {
	roots := []dyadic.Dyadic{dy(-3, 1), dy(1, 2), dy(2, 0)} // -1.5, 0.25, 2
	checkSolve(t, roots, 2, MethodHybrid)
	checkSolve(t, roots, 2, MethodNewton)
	checkSolve(t, roots, 8, MethodBisection)
}

func TestLinearPolynomial(t *testing.T) {
	for _, m := range []Method{MethodHybrid, MethodBisection, MethodNewton} {
		checkSolve(t, []dyadic.Dyadic{dy(7, 2)}, 5, m) // single root 7/4
		checkSolve(t, []dyadic.Dyadic{dy(-13, 0)}, 3, m)
	}
}

func TestIrrationalRoots(t *testing.T) {
	// x² - 2: roots ±√2. Verify the output brackets the true root:
	// sign change of P on (x̃-2^-µ, x̃].
	p := poly.FromInt64s(-2, 0, 1)
	for _, mu := range []uint{4, 16, 32} {
		for _, m := range []Method{MethodHybrid, MethodBisection, MethodNewton} {
			s := NewSolver(p, []dyadic.Dyadic{dyadic.FromInt64(0)}, p.RootBound(), mu, m, metrics.Ctx{})
			got := s.SolveAll()
			if len(got) != 2 {
				t.Fatalf("got %d roots", len(got))
			}
			step := dyadic.GridStep(mu)
			for _, g := range got {
				hi := p.SignAt(g.Num(), g.Scale())
				lov := g.Sub(step)
				lo := p.SignAt(lov.Num(), lov.Scale())
				if hi != 0 && lo*hi >= 0 {
					t.Fatalf("µ=%d %v: no sign change in (%v, %v]", mu, m, lov, g)
				}
			}
			// x̃ is the ceiling approximation: x ≤ x̃ < x + 2^-µ.
			sqrt2 := 1.4142135623730951
			eps := 1.0 / float64(int64(1)<<mu)
			if v := got[0].Float64(); v < -sqrt2-1e-12 || v >= -sqrt2+eps {
				t.Fatalf("µ=%d root 0 approx %v outside [-√2, -√2+2^-µ)", mu, v)
			}
			if v := got[1].Float64(); v < sqrt2-1e-12 || v >= sqrt2+eps {
				t.Fatalf("µ=%d root 1 approx %v outside [√2, √2+2^-µ)", mu, v)
			}
		}
	}
}

func TestWilkinsonStyle(t *testing.T) {
	// ∏ (x - i), i = 1..12 — notoriously ill-conditioned in floating
	// point; exact arithmetic must nail every root.
	var roots []dyadic.Dyadic
	for i := 1; i <= 12; i++ {
		roots = append(roots, dy(int64(i), 0))
	}
	checkSolve(t, roots, 16, MethodHybrid)
}

func TestMethodsAgreeQuick(t *testing.T) {
	f := func(seed int64, muRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mu := uint(muRaw%24) + 1
		k := 2 + r.Intn(5)
		seen := map[string]bool{}
		var roots []dyadic.Dyadic
		for len(roots) < k {
			d := dyadic.New(mp.NewInt(int64(r.Intn(257)-128)), uint(r.Intn(4)))
			if !seen[d.String()] {
				seen[d.String()] = true
				roots = append(roots, d)
			}
		}
		sort.Slice(roots, func(i, j int) bool { return roots[i].Cmp(roots[j]) < 0 })
		var results [3][]dyadic.Dyadic
		for mi, m := range []Method{MethodHybrid, MethodBisection, MethodNewton} {
			p := poly.FromInt64s(1)
			for _, rt := range roots {
				p = p.Mul(poly.New(new(mp.Int).Neg(rt.Num()), new(mp.Int).Lsh(mp.NewInt(1), rt.Scale())))
			}
			var ys []dyadic.Dyadic
			for i := 1; i < len(roots); i++ {
				ys = append(ys, roots[i-1].Mid(roots[i]).CeilGrid(mu))
			}
			s := NewSolver(p, ys, p.RootBound(), mu, m, metrics.Ctx{})
			results[mi] = s.SolveAll()
		}
		for mi := 1; mi < 3; mi++ {
			for i := range results[0] {
				if !results[0][i].Equal(results[mi][i]) {
					return false
				}
			}
		}
		// And they match the exact ceil-grid approximations.
		for i, rt := range roots {
			if !results[0][i].Equal(rt.CeilGrid(mu)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPhaseAccounting(t *testing.T) {
	var c metrics.Counters
	roots := []dyadic.Dyadic{dy(-5, 0), dy(1, 3), dy(4, 0), dy(29, 2)}
	s := buildProblem(t, roots, 20, MethodHybrid, metrics.Ctx{C: &c})
	s.SolveAll()
	rep := c.Snapshot()
	if rep.Phases[metrics.PhasePreInterval].Evals == 0 {
		t.Error("no preinterval evaluations recorded")
	}
	total := rep.Sum(metrics.PhaseSieve, metrics.PhaseBisection, metrics.PhaseNewton)
	if total.Evals == 0 {
		t.Error("no refinement evaluations recorded")
	}
	if rep.Phases[metrics.PhaseRemainder].Muls != 0 || rep.Phases[metrics.PhaseTree].Muls != 0 {
		t.Error("interval work leaked into other phases")
	}
}

func TestBisectionOnlyTouchesBisectionPhase(t *testing.T) {
	var c metrics.Counters
	roots := []dyadic.Dyadic{dy(-5, 0), dy(7, 1)}
	s := buildProblem(t, roots, 16, MethodBisection, metrics.Ctx{C: &c})
	s.SolveAll()
	rep := c.Snapshot()
	if rep.Phases[metrics.PhaseSieve].Evals != 0 || rep.Phases[metrics.PhaseNewton].Evals != 0 {
		t.Error("bisection method used sieve/newton phases")
	}
}

func TestNewtonConvergesFast(t *testing.T) {
	// At high precision the hybrid method must use far fewer evaluations
	// than pure bisection (the whole point of the Newton phase).
	const mu = 256
	roots := []dyadic.Dyadic{dy(-3, 0), dy(5, 1), dy(77, 3)}
	var ch, cb metrics.Counters
	sh := buildProblem(t, roots, mu, MethodHybrid, metrics.Ctx{C: &ch})
	sh.SolveAll()
	sb := buildProblem(t, roots, mu, MethodBisection, metrics.Ctx{C: &cb})
	sb.SolveAll()
	he := ch.Snapshot().Total().Evals
	be := cb.Snapshot().Total().Evals
	if he >= be {
		t.Fatalf("hybrid used %d evals, bisection %d — Newton is not helping", he, be)
	}
}

func TestRoundDiv(t *testing.T) {
	cases := [][3]int64{
		{7, 2, 4}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 4},
		{6, 3, 2}, {5, 2, 3}, {-5, 2, -3}, {1, 3, 0}, {2, 3, 1}, {-2, 3, -1}, {0, 5, 0},
	}
	for _, c := range cases {
		if got := roundDiv(metrics.Ctx{}, mp.NewInt(c[0]), mp.NewInt(c[1])).Int64(); got != c[2] {
			t.Errorf("roundDiv(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := [][2]int64{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1000, 10}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := ceilLog2(c[0]); got != int(c[1]) {
			t.Errorf("ceilLog2(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}

func TestSolverValidation(t *testing.T) {
	p := poly.FromInt64s(-2, 0, 1)
	mustPanic(t, "degree 0", func() {
		NewSolver(poly.FromInt64s(3), nil, mp.NewInt(2), 4, MethodHybrid, metrics.Ctx{})
	})
	mustPanic(t, "wrong point count", func() {
		NewSolver(p, []dyadic.Dyadic{dy(0, 0), dy(1, 0)}, mp.NewInt(4), 4, MethodHybrid, metrics.Ctx{})
	})
	mustPanic(t, "off grid", func() {
		NewSolver(p, []dyadic.Dyadic{dy(1, 10)}, mp.NewInt(4), 4, MethodHybrid, metrics.Ctx{})
	})
	mustPanic(t, "unsorted", func() {
		q := poly.FromRoots(mp.NewInt(-2), mp.NewInt(0), mp.NewInt(2))
		NewSolver(q, []dyadic.Dyadic{dy(1, 0), dy(-1, 0)}, mp.NewInt(4), 4, MethodHybrid, metrics.Ctx{})
	})
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	f()
}

func TestMethodString(t *testing.T) {
	if MethodHybrid.String() != "hybrid" || MethodBisection.String() != "bisection" || MethodNewton.String() != "newton" {
		t.Error("method names")
	}
	if Method(9).String() == "" {
		t.Error("unknown method name empty")
	}
}

// Package interval solves the paper's Interval Problems (§2.2): given a
// polynomial P with d distinct real roots and the µ-approximations
// ỹ_1 ≤ … ≤ ỹ_{d-1} of a set of interleaving values, compute the
// µ-approximation x̃ = 2^-µ·⌈2^µ·x⌉ of every root x of P.
//
// Because only approximations of the interleaving values are known, each
// gap [ỹ_i, ỹ_{i+1}] is first classified by the paper's case analysis
// (cases 1, 2a, 2b, 2c) using exact sign evaluations and the root count
// r_i; only case 2c leaves a true isolating interval, which is then
// refined by the hybrid method: a double-exponential sieve, ⌈log₂(10d²)⌉
// bisections, and Newton iterations with doubling precision (safeguarded
// by the bracketing interval, so a Newton step that leaves the bracket
// degenerates to a bisection and correctness never depends on
// convergence assumptions). All arithmetic is exact over scaled
// integers; the final grid decision is made by one exact sign test, so
// results are bit-for-bit correct µ-approximations.
package interval

import (
	"fmt"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// Method selects the root-refinement strategy for case 2c.
type Method int

const (
	// MethodHybrid is the paper's: sieve, then ⌈log₂(10d²)⌉ bisections,
	// then safeguarded Newton.
	MethodHybrid Method = iota
	// MethodBisection bisects all the way to the grid (ablation; also the
	// classic baseline behaviour).
	MethodBisection
	// MethodNewton starts safeguarded Newton immediately (ablation).
	MethodNewton
)

func (m Method) String() string {
	switch m {
	case MethodHybrid:
		return "hybrid"
	case MethodBisection:
		return "bisection"
	case MethodNewton:
		return "newton"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// A Solver computes µ-approximations of all roots of one polynomial.
// Usage: construct with NewSolver, run the EvalPoint tasks (the paper's
// PREINTERVAL tasks, independent of one another), then the
// SolveInterval tasks (the INTERVAL tasks, independent of one another).
// SolveAll runs everything sequentially.
type Solver struct {
	P      *poly.Poly
	dP     *poly.Poly
	Mu     uint
	Method Method

	ctx    metrics.Ctx
	ys     []dyadic.Dyadic // d+1 points: -B, ỹ_1…ỹ_{d-1}, +B, all on the 2^-µ grid
	signs  []int           // sgnRight of P at each point, filled by EvalPoint
	negInf int             // sign of P at -∞
}

// NewSolver prepares the interval problems for p given the sorted
// µ-approximations of its interleaving values (len = deg p - 1) and a
// power-of-two root bound B with every root of p in (-B, B). All
// interleaving values must lie on the 2^-µ grid.
func NewSolver(p *poly.Poly, interleaving []dyadic.Dyadic, bound *mp.Int, mu uint, method Method, ctx metrics.Ctx) *Solver {
	d := p.Degree()
	if d < 1 {
		panic("interval: polynomial has no roots")
	}
	if len(interleaving) != d-1 {
		panic(fmt.Sprintf("interval: %d interleaving points for degree %d", len(interleaving), d))
	}
	ys := make([]dyadic.Dyadic, d+1)
	ys[0] = dyadic.FromInt(new(mp.Int).Neg(bound))
	for i, y := range interleaving {
		if !y.OnGrid(mu) {
			panic(fmt.Sprintf("interval: interleaving point %v not on the 2^-%d grid", y, mu))
		}
		if i > 0 && interleaving[i-1].Cmp(y) > 0 {
			panic("interval: interleaving points not sorted")
		}
		ys[i+1] = y
	}
	ys[d] = dyadic.FromInt(bound)
	return &Solver{
		P: p, dP: p.Derivative(), Mu: mu, Method: method,
		ctx: ctx, ys: ys, signs: make([]int, d+1), negInf: p.SignAtNegInf(),
	}
}

// NumRoots returns the number of interval problems (= deg P).
func (s *Solver) NumRoots() int { return len(s.ys) - 1 }

// NumPoints returns the number of PREINTERVAL evaluation points.
func (s *Solver) NumPoints() int { return len(s.ys) }

// signRight returns the sign of P immediately to the right of the point
// t: sign(P(t)) when non-zero, else sign(P′(t)) (P is squarefree, so
// they never vanish together).
func (s *Solver) signRight(ctx metrics.Ctx, t dyadic.Dyadic) int {
	sg := s.P.SignAtCtx(ctx, t.Num(), t.Scale())
	if sg != 0 {
		return sg
	}
	sg = s.dP.SignAtCtx(ctx, t.Num(), t.Scale())
	if sg == 0 {
		panic("interval: P and P' vanish together (input not squarefree)")
	}
	return sg
}

// EvalPoint computes the PREINTERVAL sign for point index i (0-based,
// 0 ≤ i ≤ deg P). Each call is independent — the paper runs one task
// per evaluation (§3.2).
func (s *Solver) EvalPoint(i int) {
	s.signs[i] = s.signRight(s.ctx.In(metrics.PhasePreInterval), s.ys[i])
}

// expectSign returns the sign of P just right of a point below which m
// roots lie (counting roots ≤ the point): sgn(P(-∞))·(-1)^m.
func (s *Solver) expectSign(m int) int {
	if m%2 == 0 {
		return s.negInf
	}
	return -s.negInf
}

// SolveInterval solves interval problem i (0-based root index,
// 0 ≤ i < deg P), returning the µ-approximation x̃_i of the i-th
// smallest root. All EvalPoint calls must have completed first. Calls
// for distinct i are independent.
func (s *Solver) SolveInterval(i int) dyadic.Dyadic {
	a, b := s.ys[i], s.ys[i+1]
	step := dyadic.GridStep(s.Mu)

	// Case 1: coincident approximations pin the root immediately.
	if a.Equal(b) {
		return a
	}

	// Case 2: ỹ_{i+1} - ỹ_i ≥ 2^-µ. Let m(t) = #{roots ≤ t}. The
	// interleaving property gives m(a) ∈ {i, i+1} (this is the paper's
	// r_i computation, extended to handle P(a) = 0 exactly via the
	// one-sided sign).
	if s.signs[i] == s.expectSign(i+1) {
		// Case 2a: m(a) = i+1, so x_i ∈ (ỹ_i - 2^-µ, ỹ_i]: x̃_i = ỹ_i.
		return a
	}
	if s.signs[i] != s.expectSign(i) {
		panic(fmt.Sprintf("interval: inconsistent sign at point %d (roots not interleaved?)", i))
	}

	// m(a) = i: the root lies in (a, b]. Split at c = b - 2^-µ.
	c := b.Sub(step)
	if c.Cmp(a) <= 0 {
		// Gap of exactly one grid step: x_i ∈ (a, b] = (b - 2^-µ, b].
		return b
	}
	ctxPre := s.ctx.In(metrics.PhasePreInterval)
	sc := s.P.SignAtCtx(ctxPre, c.Num(), c.Scale())
	if sc == 0 {
		return c // x_i = c exactly, already on the grid
	}
	if sc == s.expectSign(i+1) {
		// m(c) = i+1 would give sign parity i+1 just right of c; but an
		// exact-zero-free sign at c equals the one-sided sign. Root ≤ c.
		// Fall through to refinement over (a, c).
	} else {
		// Case 2b: m(c) = i, so x_i ∈ (c, b] = (ỹ_{i+1} - 2^-µ, ỹ_{i+1}]:
		// x̃_i = ỹ_{i+1}.
		return b
	}

	// Case 2c: x_i is the only root of P in (a, c), with
	// sign(P) = sl on (a, x_i) and -sl on (x_i, c].
	sl := s.signs[i]
	return s.refine(a, c, sl)
}

// SolveAll computes all d root approximations sequentially (the
// parallel driver issues EvalPoint and SolveInterval as separate tasks
// instead). The result is sorted ascending.
func (s *Solver) SolveAll() []dyadic.Dyadic {
	for i := 0; i < s.NumPoints(); i++ {
		s.EvalPoint(i)
	}
	roots := make([]dyadic.Dyadic, s.NumRoots())
	for i := range roots {
		roots[i] = s.SolveInterval(i)
	}
	return roots
}

// signAt evaluates sign(P) at a dyadic point under the given phase.
func (s *Solver) signAt(phase metrics.Phase, t dyadic.Dyadic) int {
	return s.P.SignAtCtx(s.ctx.In(phase), t.Num(), t.Scale())
}

// finish makes the exact grid decision once the bracket (lo, hi) around
// the root has width ≤ 2^-µ, using at most one more sign evaluation.
// sl is the sign of P on (lo, root).
func (s *Solver) finish(phase metrics.Phase, lo, hi dyadic.Dyadic, sl int) dyadic.Dyadic {
	step := dyadic.GridStep(s.Mu)
	// g = smallest grid point strictly greater than lo.
	g := lo.CeilGrid(s.Mu)
	if g.Equal(lo) {
		g = g.Add(step)
	}
	if g.Cmp(hi) >= 0 {
		// No grid point inside (lo, hi): every point of the bracket
		// rounds up to g.
		return g
	}
	sg := s.signAt(phase, g)
	if sg == 0 || sg != sl {
		return g // root ≤ g
	}
	return g.Add(step) // root ∈ (g, hi), hi ≤ lo + 2^-µ < g + 2^-µ
}

// widthLE reports whether hi-lo ≤ 2^-µ.
func (s *Solver) widthLE(lo, hi dyadic.Dyadic) bool {
	return hi.Sub(lo).Cmp(dyadic.GridStep(s.Mu)) <= 0
}

// refine computes x̃ for the unique root of P in the open interval
// (lo, hi), where sign(P) = sl just right of lo and -sl just left of hi.
func (s *Solver) refine(lo, hi dyadic.Dyadic, sl int) dyadic.Dyadic {
	switch s.Method {
	case MethodBisection:
		return s.bisectToGrid(metrics.PhaseBisection, lo, hi, sl)
	case MethodNewton:
		return s.newton(lo, hi, sl)
	default:
		lo, hi, exact, done := s.sieve(lo, hi, sl)
		if done {
			return exact
		}
		lo, hi, exact, done = s.bisectN(lo, hi, sl, ceilLog2(10*int64(s.P.Degree())*int64(s.P.Degree())))
		if done {
			return exact
		}
		return s.newton(lo, hi, sl)
	}
}

// sieve is the double-exponential sieve (§2.2), generalized to work
// from whichever end of the interval the root hugs (the paper sieves
// from the left endpoint "without loss of generality"; the mirrored
// case matters in practice because the outermost intervals stretch to
// the ±2^R root bounds and their roots hug the inner end). Starting
// from I = (lo, hi), it probes the points at distance length/2^(2^i)
// from the hugged end until the root escapes between two consecutive
// probes, and repeats on that band; it stops once the root is located
// in the middle half of the current interval, so that the bisection
// phase starts with the root at distance ≥ length/4 from both ends.
// Returns (lo, hi, exact, done): done means an exact grid answer was
// found on the way.
func (s *Solver) sieve(lo, hi dyadic.Dyadic, sl int) (dyadic.Dyadic, dyadic.Dyadic, dyadic.Dyadic, bool) {
	const maxExp = 20 // a 2^(2^20)-fold shrink per probe is beyond any real input
	for !s.widthLE(lo, hi) {
		length := hi.Sub(lo)
		mid := lo.Add(length.Half())
		sm := s.signAt(metrics.PhaseSieve, mid)
		if sm == 0 {
			return lo, hi, mid.CeilGrid(s.Mu), true
		}
		hugLeft := sm != sl // root in (lo, mid) vs (mid, hi)
		prev := mid
		escapedAt := -1
		for i := 1; i <= maxExp; i++ {
			var t dyadic.Dyadic
			if hugLeft {
				t = lo.Add(length.MulPow2(-(1 << i)))
			} else {
				t = hi.Sub(length.MulPow2(-(1 << i)))
			}
			st := s.signAt(metrics.PhaseSieve, t)
			if st == 0 {
				return lo, hi, t.CeilGrid(s.Mu), true
			}
			if hugLeft && st == sl {
				// Root in (t, prev).
				lo, hi = t, prev
				escapedAt = i
				break
			}
			if !hugLeft && st != sl {
				// Root in (prev, t).
				lo, hi = prev, t
				escapedAt = i
				break
			}
			prev = t
		}
		switch {
		case escapedAt == -1:
			// The root hugs the end closer than 2^-(2^maxExp) of the
			// interval; collapse to the smallest probed band and re-loop.
			if hugLeft {
				hi = prev
			} else {
				lo = prev
			}
		case escapedAt == 1:
			// Root caught between the quarter point and the midpoint:
			// it is at distance ≥ length/4 from both original ends, the
			// two-sided analogue of the paper's "ξ ≥ a + l/2" exit.
			return lo, hi, dyadic.Dyadic{}, false
		}
	}
	return lo, hi, dyadic.Dyadic{}, false
}

// bisectN performs up to n bisection steps of the bracket, stopping
// early at grid resolution. Same return convention as sieve.
func (s *Solver) bisectN(lo, hi dyadic.Dyadic, sl int, n int) (dyadic.Dyadic, dyadic.Dyadic, dyadic.Dyadic, bool) {
	for t := 0; t < n; t++ {
		if s.widthLE(lo, hi) {
			break
		}
		mid := lo.Mid(hi)
		sm := s.signAt(metrics.PhaseBisection, mid)
		if sm == 0 {
			return lo, hi, mid.CeilGrid(s.Mu), true
		}
		if sm == sl {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, hi, dyadic.Dyadic{}, false
}

// bisectToGrid bisects until the bracket reaches grid width, then
// finishes exactly.
func (s *Solver) bisectToGrid(phase metrics.Phase, lo, hi dyadic.Dyadic, sl int) dyadic.Dyadic {
	for !s.widthLE(lo, hi) {
		mid := lo.Mid(hi)
		sm := s.signAt(phase, mid)
		if sm == 0 {
			return mid.CeilGrid(s.Mu)
		}
		if sm == sl {
			lo = mid
		} else {
			hi = mid
		}
	}
	return s.finish(phase, lo, hi, sl)
}

// newton runs the safeguarded Newton iteration with doubling working
// precision (Lemma 2.1 guarantees quadratic convergence from a good
// start). Because Newton approaches the root from one side, waiting for
// the *bracket* to reach grid width would forfeit the quadratic rate;
// instead, once the Newton step is below the grid resolution the
// iterate is verified exactly by probing a width-2^-µ sub-bracket
// around it (two sign tests, both inside the isolating bracket so the
// single-root invariant keeps them conclusive). Every probe also
// tightens the bracket, and a stall detector degrades to bisection, so
// termination is unconditional.
func (s *Solver) newton(lo, hi dyadic.Dyadic, sl int) dyadic.Dyadic {
	ctx := s.ctx.In(metrics.PhaseNewton)
	// Working-precision floor-of-the-ceiling: 16 guard bits beyond µ keep
	// the iterate rounding floor well inside the 2^-(µ+1) verification
	// window.
	maxScale := s.Mu + 16
	halfStep := dyadic.GridStep(s.Mu + 1)
	alpha := lo.Mid(hi)
	backoff := 1 // plain bisection steps after a failed Newton attempt

	// bisectStep halves the bracket once (one evaluation); the boolean
	// result reports an exact hit.
	bisectStep := func() (dyadic.Dyadic, bool) {
		mid := lo.Mid(hi)
		sm := s.signAt(metrics.PhaseNewton, mid)
		if sm == 0 {
			return mid.CeilGrid(s.Mu), true
		}
		if sm == sl {
			lo = mid
		} else {
			hi = mid
		}
		return dyadic.Dyadic{}, false
	}

	for !s.widthLE(lo, hi) {
		// Newton attempt: evaluate P at alpha and update the bracket.
		w := alpha.Scale()
		a := alpha.Num()
		v := s.P.EvalScaledCtx(ctx, a, w)
		sg := v.Sign()
		if sg == 0 {
			return alpha.CeilGrid(s.Mu)
		}
		if sg == sl {
			lo = alpha
		} else {
			hi = alpha
		}
		if s.widthLE(lo, hi) {
			break
		}

		ok := false
		converged := false
		var next dyadic.Dyadic
		dv := s.dP.EvalScaledCtx(ctx, a, w)
		if !dv.IsZero() {
			// α' = α - P(α)/P′(α) = (a·2^e - round(v·2^e / dv)) / 2^(w+e),
			// with e extra bits of precision, doubling up to µ+4.
			e := w
			if e < 8 {
				e = 8
			}
			if w+e > maxScale {
				if w >= maxScale {
					e = 4
				} else {
					e = maxScale - w
				}
			}
			num := new(mp.Int).Lsh(v, e)
			q := roundDiv(ctx, num, dv)
			an := new(mp.Int).Lsh(a, e)
			an.Sub(an, q)
			next = dyadic.New(an, w+e)
			// Cap the iterate's scale at twice the current accuracy (the
			// step size) plus guard bits — the natural schedule for an
			// iteration that doubles its accurate bits — never below
			// µ+16. Without the cap the scale grows with every iteration
			// regardless of progress, inflating evaluation cost beyond
			// the paper's X = R+µ bound (most visibly in the pure-Newton
			// ablation, where the iterate marches across a huge
			// boundary gap).
			rawStep := next.Sub(alpha)
			capScale := maxScale
			if !rawStep.Num().IsZero() {
				stepBits := int(rawStep.Scale()) - rawStep.Num().BitLen() + 1
				if stepBits < 0 {
					stepBits = 0
				}
				if c := uint(2*stepBits) + 16; c > capScale {
					capScale = c
				}
			}
			if next.Scale() > capScale {
				next = next.FloorGrid(capScale)
			}
			step := next.Sub(alpha)
			if step.Sign() < 0 {
				step = step.Neg()
			}
			converged = w+e >= maxScale && step.Cmp(halfStep) <= 0
			ok = next.Cmp(lo) > 0 && next.Cmp(hi) < 0
		}

		if ok && converged {
			// Probe the half-grid cell around the (putative) converged
			// iterate. Both probes stay inside (lo, hi), so a sign change
			// certifies a bracket of width ≤ 2^-µ.
			b1 := next.Sub(halfStep)
			if b1.Cmp(lo) < 0 {
				b1 = lo
			}
			b2 := next.Add(halfStep)
			if b2.Cmp(hi) > 0 {
				b2 = hi
			}
			s1 := sl
			if b1.Cmp(lo) > 0 {
				s1 = s.signAt(metrics.PhaseNewton, b1)
				if s1 == 0 {
					return b1.CeilGrid(s.Mu)
				}
				if s1 == sl {
					lo = b1
				} else {
					hi = b1
				}
			}
			if s1 == sl {
				s2 := -sl
				if b2.Cmp(hi) < 0 {
					s2 = s.signAt(metrics.PhaseNewton, b2)
					if s2 == 0 {
						return b2.CeilGrid(s.Mu)
					}
					if s2 == sl {
						lo = b2
					} else {
						hi = b2
					}
				}
				if s2 != sl && s.widthLE(b1, b2) {
					return s.finish(metrics.PhaseNewton, b1, b2, sl)
				}
			}
			ok = false // verification failed; probes tightened the bracket
		}

		if ok {
			// Accepted Newton step: quadratic progress expected.
			backoff = 1
			if next.Equal(alpha) {
				next = lo.Mid(hi)
			}
			alpha = next
			continue
		}

		// Rejected step (outside bracket, flat derivative, or failed
		// verification): the start is outside Newton's basin. Take an
		// exponentially growing number of plain bisection steps (one
		// evaluation each) before retrying Newton, so the worst case
		// degrades to ≈ 2× pure bisection while quadratic behaviour is
		// recovered as soon as the basin is reached (Lemma 2.1).
		for t := 0; t < backoff && !s.widthLE(lo, hi); t++ {
			if exact, hit := bisectStep(); hit {
				return exact
			}
		}
		if backoff < 1<<20 {
			backoff *= 2
		}
		alpha = lo.Mid(hi)
	}
	return s.finish(metrics.PhaseNewton, lo, hi, sl)
}

// roundDiv returns the integer nearest to a/b (ties away from zero),
// recording the division in ctx and dividing under its profile.
func roundDiv(ctx metrics.Ctx, a, b *mp.Int) *mp.Int {
	q, r := ctx.QuoRem(new(mp.Int), a, b, new(mp.Int))
	if r.IsZero() {
		return q
	}
	r2 := new(mp.Int).Lsh(r, 1)
	if r2.CmpAbs(b) >= 0 {
		if (a.Sign() < 0) != (b.Sign() < 0) {
			q.Sub(q, mp.NewInt(1))
		} else {
			q.Add(q, mp.NewInt(1))
		}
	}
	return q
}

// ceilLog2 returns ⌈log₂ v⌉ for v ≥ 1.
func ceilLog2(v int64) int {
	n := 0
	for p := int64(1); p < v; p <<= 1 {
		n++
	}
	return n
}

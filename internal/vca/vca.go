// Package vca implements real-root isolation by the
// Vincent–Collins–Akritas (Descartes-rule) bisection method, entirely
// over exact integer arithmetic — the classic *sequential* alternative
// to Sturm-based isolation and the ancestor of the isolators in modern
// systems (the calibration notes for this reproduction name MPSolve,
// FLINT, and Sturm methods as the widely available comparators). It
// serves as a second baseline next to internal/sturm: same contract
// (isolate, then bisect to the 2^-µ grid), different isolation
// machinery (Descartes' rule of signs on Möbius-transformed
// polynomials instead of Sturm-chain sign variations).
package vca

import (
	"fmt"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// signVariations counts the sign variations in p's coefficients —
// Descartes' bound on the number of positive real roots.
func signVariations(p *poly.Poly) int {
	v, prev := 0, 0
	for i := 0; i <= p.Degree(); i++ {
		sg := p.Coeff(i).Sign()
		if sg == 0 {
			continue
		}
		if prev != 0 && sg != prev {
			v++
		}
		prev = sg
	}
	return v
}

// taylorShift1 returns p(x+1), by the O(d²) Pascal accumulation.
func taylorShift1(p *poly.Poly) *poly.Poly {
	d := p.Degree()
	if d < 0 {
		return poly.Zero()
	}
	c := make([]*mp.Int, d+1)
	for i := range c {
		c[i] = new(mp.Int).Set(p.Coeff(i))
	}
	// Horner-style: repeatedly add the higher coefficient downward.
	for i := 0; i < d; i++ {
		for j := d - 1; j >= i; j-- {
			c[j].Add(c[j], c[j+1])
		}
	}
	return poly.New(c...)
}

// scaleHalf returns 2^d·p(x/2): coefficient i is multiplied by 2^(d-i).
func scaleHalf(p *poly.Poly) *poly.Poly {
	d := p.Degree()
	c := make([]*mp.Int, d+1)
	for i := 0; i <= d; i++ {
		c[i] = new(mp.Int).Lsh(p.Coeff(i), uint(d-i))
	}
	return poly.New(c...)
}

// reverse returns x^d·p(1/x) (coefficients reversed).
func reverse(p *poly.Poly) *poly.Poly {
	d := p.Degree()
	c := make([]*mp.Int, d+1)
	for i := 0; i <= d; i++ {
		c[i] = new(mp.Int).Set(p.Coeff(d - i))
	}
	return poly.New(c...)
}

// descartesBound01 bounds the number of roots of p in the open interval
// (0, 1) by the sign variations of (1+x)^d · p(1/(1+x)).
func descartesBound01(p *poly.Poly) int {
	return signVariations(taylorShift1(reverse(p)))
}

// An Interval is a half-open isolating interval (Lo, Hi] holding
// exactly one real root.
type Interval struct {
	Lo, Hi dyadic.Dyadic
}

// IsolatePositive01 returns isolating intervals, as fractions of (0, 1),
// for the roots of p in the open unit interval. p must be squarefree.
// Roots exactly at dyadic bisection points are returned as width-zero
// intervals [r, r].
func isolate01(p *poly.Poly, lo, hi dyadic.Dyadic, out *[]Interval) {
	switch descartesBound01(p) {
	case 0:
		return
	case 1:
		*out = append(*out, Interval{lo, hi})
		return
	}
	// Split at 1/2: left half via 2^d·p(x/2), right via shift then scale.
	mid := lo.Mid(hi)
	left := scaleHalf(p)
	right := taylorShift1(left)
	exactMid := right.Coeff(0).IsZero()
	if exactMid {
		// The midpoint is exactly a root: deflate the right copy. (The
		// left copy sees the same root at its boundary x = 1, which the
		// open-interval Descartes bound never counts, so it needs no
		// deflation.)
		rc := make([]*mp.Int, right.Degree())
		for i := 1; i <= right.Degree(); i++ {
			rc[i-1] = new(mp.Int).Set(right.Coeff(i))
		}
		right = poly.New(rc...)
	}
	isolate01(left, lo, mid, out)
	if exactMid {
		// Emitted between the halves so the output stays sorted.
		*out = append(*out, Interval{mid, mid})
	}
	isolate01(right, mid, hi, out)
}

// IsolatePositive returns isolating intervals for all positive real
// roots of the squarefree polynomial p, inside (0, 2^k) where 2^k is
// the power-of-two root bound.
func IsolatePositive(p *poly.Poly) []Interval {
	bound := p.RootBound()
	k := uint(bound.BitLen() - 1)
	// q(x) = p(2^k·x) maps (0,1) onto (0, 2^k).
	d := p.Degree()
	c := make([]*mp.Int, d+1)
	for i := 0; i <= d; i++ {
		c[i] = new(mp.Int).Lsh(p.Coeff(i), uint(i)*k)
	}
	q := poly.New(c...)
	var unit []Interval
	isolate01(q, dyadic.FromInt64(0), dyadic.FromInt64(1), &unit)
	out := make([]Interval, len(unit))
	for i, iv := range unit {
		out[i] = Interval{iv.Lo.MulPow2(int(k)), iv.Hi.MulPow2(int(k))}
	}
	return out
}

// FindRoots computes the µ-approximations 2^-µ·⌈2^µ·x⌉ of all distinct
// real roots of p, sequentially: squarefree reduction, VCA isolation of
// the positive and negative halves (plus an exact test at zero), then
// bisection refinement of each isolated root. Arithmetic is recorded in
// ctx under PhaseOther.
func FindRoots(p *poly.Poly, mu uint, ctx metrics.Ctx) ([]dyadic.Dyadic, error) {
	if p.Degree() < 1 {
		return nil, fmt.Errorf("vca: degree %d polynomial has no roots", p.Degree())
	}
	ps := p
	if !p.IsSquarefreeProfile(ctx.Profile) {
		ps = p.SquarefreePartProfile(ctx.Profile)
	}
	ctx = ctx.In(metrics.PhaseOther)
	dp := ps.Derivative()

	var roots []dyadic.Dyadic

	// Negative roots: isolate the positive roots of p(-x) and mirror.
	neg := negate(ps)
	for _, iv := range IsolatePositive(neg) {
		r := refine(neg, neg.Derivative(), iv, mu, ctx)
		// x is a root of p(-x) at r ⇔ -r is a root of p; the ceiling
		// approximation of -root is -floor approximation of root, so
		// recompute on the mirrored bracket rather than negating the
		// grid value: ỹ(-x) = -(2^-µ·⌊2^µ·x⌋).
		roots = append(roots, mirror(neg, iv, r, mu, ctx))
	}
	reverseSlice(roots)

	// A root exactly at zero.
	if ps.Coeff(0).IsZero() {
		roots = append(roots, dyadic.FromInt64(0))
	}

	// Positive roots.
	for _, iv := range IsolatePositive(ps) {
		roots = append(roots, refine(ps, dp, iv, mu, ctx))
	}
	return roots, nil
}

func negate(p *poly.Poly) *poly.Poly {
	d := p.Degree()
	c := make([]*mp.Int, d+1)
	for i := 0; i <= d; i++ {
		c[i] = new(mp.Int).Set(p.Coeff(i))
		if i%2 == 1 {
			c[i].Neg(c[i])
		}
	}
	return poly.New(c...)
}

func reverseSlice(s []dyadic.Dyadic) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// mirror computes the µ-approximation of -root given the isolating
// interval of root in the mirrored polynomial: x̃(-r) = -(⌊2^µ·r⌋·2^-µ),
// determined exactly with one extra sign test when r lies on the grid.
func mirror(pneg *poly.Poly, iv Interval, approx dyadic.Dyadic, mu uint, ctx metrics.Ctx) dyadic.Dyadic {
	// approx = ⌈2^µ r⌉/2^µ. If r is exactly on the grid (p(-approx)=0 …
	// i.e. pneg(approx)=0), then -r's ceiling is -approx.
	if pneg.SignAtCtx(ctx, approx.Num(), approx.Scale()) == 0 {
		return approx.Neg()
	}
	// Otherwise ⌊2^µ r⌋ = ⌈2^µ r⌉ - 1 and x̃(-r) = -(approx - 2^-µ).
	return approx.Sub(dyadic.GridStep(mu)).Neg()
}

// refine bisects the isolating interval down to the 2^-µ grid. The
// interval is open: its single root lies strictly inside, and the
// endpoints may be roots belonging to *neighbouring* cells (deflated
// bisection points), so endpoint signs are taken one-sidedly via the
// derivative and a vanishing p(hi) is never mistaken for this cell's
// root.
func refine(p, dp *poly.Poly, iv Interval, mu uint, ctx metrics.Ctx) dyadic.Dyadic {
	lo, hi := iv.Lo, iv.Hi
	if lo.Equal(hi) {
		return lo.CeilGrid(mu) // exact root found during isolation
	}
	sl := p.SignAtCtx(ctx, lo.Num(), lo.Scale())
	if sl == 0 {
		sl = dp.SignAtCtx(ctx, lo.Num(), lo.Scale())
	}
	step := dyadic.GridStep(mu)
	for hi.Sub(lo).Cmp(step) > 0 {
		mid := lo.Mid(hi)
		sm := p.SignAtCtx(ctx, mid.Num(), mid.Scale())
		if sm == 0 {
			return mid.CeilGrid(mu)
		}
		if sm == sl {
			lo = mid
		} else {
			hi = mid
		}
	}
	g := lo.CeilGrid(mu)
	if g.Equal(lo) {
		g = g.Add(step)
	}
	if g.Cmp(hi) >= 0 {
		return g
	}
	sg := p.SignAtCtx(ctx, g.Num(), g.Scale())
	if sg == 0 || sg != sl {
		return g
	}
	return g.Add(step)
}

package vca

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/sturm"
	"realroots/internal/workload"
)

func noCtx() metrics.Ctx { return metrics.Ctx{} }

func TestSignVariations(t *testing.T) {
	cases := []struct {
		p    *poly.Poly
		want int
	}{
		{poly.FromInt64s(1, 1, 1), 0},
		{poly.FromInt64s(1, -1, 1), 2},
		{poly.FromInt64s(-1, 0, 1), 1},
		{poly.FromInt64s(1, 0, 0, -3, 5), 2},
		{poly.Zero(), 0},
	}
	for _, c := range cases {
		if got := signVariations(c.p); got != c.want {
			t.Errorf("signVariations(%s) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestTaylorShift(t *testing.T) {
	// p(x) = x² - 3x + 2 → p(x+1) = x² - x.
	p := poly.FromInt64s(2, -3, 1)
	if got := taylorShift1(p); !got.Equal(poly.FromInt64s(0, -1, 1)) {
		t.Fatalf("p(x+1) = %s", got)
	}
	// Shift is a ring homomorphism point: (pq)(x+1) = p(x+1)q(x+1).
	q := poly.FromInt64s(-1, 0, 2)
	lhs := taylorShift1(p.Mul(q))
	rhs := taylorShift1(p).Mul(taylorShift1(q))
	if !lhs.Equal(rhs) {
		t.Fatal("shift not multiplicative")
	}
}

func TestDescartesBound01(t *testing.T) {
	// (2x-1)(3x-2): roots 1/2, 2/3 — bound must be ≥ 2 (and here exact).
	p := poly.FromInt64s(1, -2).Mul(poly.FromInt64s(2, -3)).Neg() // normalize sign
	if got := descartesBound01(p); got < 2 {
		t.Fatalf("bound = %d, want ≥ 2", got)
	}
	// x-2: no roots in (0,1).
	if got := descartesBound01(poly.FromInt64s(-2, 1)); got != 0 {
		t.Fatalf("bound = %d, want 0", got)
	}
	// 2x-1: one root.
	if got := descartesBound01(poly.FromInt64s(-1, 2)); got != 1 {
		t.Fatalf("bound = %d, want 1", got)
	}
}

func TestIsolatePositive(t *testing.T) {
	// Roots 1/2, 3, 7 (and a negative root to be ignored).
	p := poly.FromInt64s(-1, 2).Mul(poly.FromRoots(mp.NewInt(3), mp.NewInt(7), mp.NewInt(-5)))
	ivs := IsolatePositive(p)
	if len(ivs) != 3 {
		t.Fatalf("%d intervals", len(ivs))
	}
	wants := []float64{0.5, 3, 7}
	for i, iv := range ivs {
		lo, hi := iv.Lo.Float64(), iv.Hi.Float64()
		if wants[i] < lo || wants[i] > hi {
			t.Fatalf("interval %d = (%v, %v] misses %v", i, lo, hi, wants[i])
		}
		// Exactly one of the known roots inside.
		count := 0
		for _, w := range wants {
			if w >= lo && w <= hi {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("interval %d = (%v, %v] holds %d roots", i, lo, hi, count)
		}
	}
}

func TestFindRootsMatchesKnownRoots(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(8)
		seen := map[int64]bool{}
		var vals []int64
		for len(vals) < n {
			v := int64(r.Intn(101) - 50)
			if !seen[v] {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		roots := make([]*mp.Int, n)
		for i, v := range vals {
			roots[i] = mp.NewInt(v)
		}
		p := poly.FromRoots(roots...)
		got, err := FindRoots(p, 8, noCtx())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: %d roots, want %d (%v)", trial, len(got), n, vals)
		}
		for i, v := range vals {
			if !got[i].IsInt() || got[i].Num().Int64() != v {
				t.Fatalf("trial %d: root %d = %v, want %d", trial, i, got[i], v)
			}
		}
	}
}

func TestFindRootsNegativeMirrorCeiling(t *testing.T) {
	// -√2 at µ=8: x̃ = ⌈-256·√2⌉/256 = -362/256 = -181/128.
	got, err := FindRoots(poly.FromInt64s(-2, 0, 1), 8, noCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d roots", len(got))
	}
	if !got[0].Equal(dyadic.New(mp.NewInt(-181), 7)) {
		t.Fatalf("-√2 approx = %v, want -181/2^7", got[0])
	}
	if !got[1].Equal(dyadic.New(mp.NewInt(363), 8)) {
		t.Fatalf("√2 approx = %v, want 363/2^8", got[1])
	}
}

func TestFindRootsAgreesWithSturm(t *testing.T) {
	f := func(seed int64, muRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mu := uint(muRaw%16) + 1
		n := 1 + r.Intn(6)
		seen := map[string]bool{}
		var roots []dyadic.Dyadic
		for len(roots) < n {
			d := dyadic.New(mp.NewInt(int64(r.Intn(129)-64)), uint(r.Intn(3)))
			if !seen[d.String()] {
				seen[d.String()] = true
				roots = append(roots, d)
			}
		}
		p := poly.FromInt64s(1)
		for _, rt := range roots {
			p = p.Mul(poly.New(new(mp.Int).Neg(rt.Num()), new(mp.Int).Lsh(mp.NewInt(1), rt.Scale())))
		}
		a, err := FindRoots(p, mu, noCtx())
		if err != nil {
			return false
		}
		b, err := sturm.FindRoots(p, mu, noCtx())
		if err != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFindRootsMixedComplex(t *testing.T) {
	// (x²+1)(x-3)(x+5): the isolator must find only the real roots.
	p := poly.FromInt64s(1, 0, 1).Mul(poly.FromRoots(mp.NewInt(3), mp.NewInt(-5)))
	got, err := FindRoots(p, 8, noCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Num().Int64() != -5 || got[1].Num().Int64() != 3 {
		t.Fatalf("roots = %v", got)
	}
}

func TestFindRootsRepeatedAndZero(t *testing.T) {
	// x²·(x-4)³·(x+6): distinct roots -6, 0, 4.
	p := poly.FromRoots(mp.NewInt(0), mp.NewInt(0), mp.NewInt(4), mp.NewInt(4), mp.NewInt(4), mp.NewInt(-6))
	got, err := FindRoots(p, 8, noCtx())
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{-6, 0, 4}
	if len(got) != len(want) {
		t.Fatalf("roots = %v", got)
	}
	for i, w := range want {
		if got[i].Num().Int64() != w || !got[i].IsInt() {
			t.Fatalf("root %d = %v, want %d", i, got[i], w)
		}
	}
}

func TestFindRootsCharPolyMatchesSturm(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		p := workload.CharPoly01(seed, 12)
		a, err := FindRoots(p, 16, noCtx())
		if err != nil {
			t.Fatal(err)
		}
		b, err := sturm.FindRoots(p, 16, noCtx())
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: %d vs %d roots", seed, len(a), len(b))
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("seed %d root %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := FindRoots(poly.FromInt64s(5), 4, noCtx()); err == nil {
		t.Error("constant accepted")
	}
}

// Package sturm implements a classic sequential real-root finder:
// Sturm-sequence isolation followed by bisection refinement, entirely
// over exact integer arithmetic (internal/mp).
//
// It stands in for the PARI root-finding routine the paper compares
// against in Figure 8. PARI-GP's 1991 solver is a general sequential
// isolate-and-refine method whose running time is dominated by the
// isolation machinery and largely insensitive to the output precision
// µ; this baseline has exactly those characteristics (Sturm-chain
// construction plus O(d) chain evaluations per isolation step, then a
// µ-bit bisection per root), so the degree-versus-time comparison in
// Figure 8 exercises the same trade-off. The substitution is recorded
// in DESIGN.md.
package sturm

import (
	"fmt"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// A Chain is a Sturm chain S_0 = p, S_1 = p′, S_{i+1} = -(S_{i-1} mod S_i),
// computed with sign-corrected pseudo-remainders and primitive-part
// reduction to control coefficient growth.
type Chain struct {
	S []*poly.Poly
}

// NewChain builds the Sturm chain of a squarefree polynomial p
// (degree ≥ 1). It returns an error if p is not squarefree (the chain
// then terminates in a non-constant GCD).
func NewChain(p *poly.Poly) (*Chain, error) {
	if p.Degree() < 1 {
		return nil, fmt.Errorf("sturm: degree %d polynomial", p.Degree())
	}
	s := []*poly.Poly{p.Clone(), p.Derivative()}
	for {
		u, v := s[len(s)-2], s[len(s)-1]
		if v.IsZero() {
			return nil, fmt.Errorf("sturm: polynomial is not squarefree")
		}
		if v.Degree() == 0 {
			break
		}
		r := poly.PseudoRem(u, v)
		if r.IsZero() {
			return nil, fmt.Errorf("sturm: polynomial is not squarefree")
		}
		// PseudoRem scales u by lc(v)^k; when that factor is negative the
		// remainder's sign is flipped, and the Sturm recurrence needs the
		// negated true remainder.
		k := u.Degree() - v.Degree() + 1
		if v.Lead().Sign() < 0 && k%2 == 1 {
			// prem = (negative)·rem, so -rem is a positive multiple of prem.
			r = r.PrimitivePart()
		} else {
			r = r.Neg().PrimitivePart()
		}
		s = append(s, r)
	}
	return &Chain{S: s}, nil
}

// Variations returns the number of sign variations of the chain at the
// dyadic point x, skipping zeros.
func (c *Chain) Variations(ctx metrics.Ctx, x dyadic.Dyadic) int {
	v, prev := 0, 0
	for _, si := range c.S {
		sg := si.SignAtCtx(ctx, x.Num(), x.Scale())
		if sg == 0 {
			continue
		}
		if prev != 0 && sg != prev {
			v++
		}
		prev = sg
	}
	return v
}

// VariationsAtNegInf returns the chain's sign variations as x → -∞.
func (c *Chain) VariationsAtNegInf() int {
	v, prev := 0, 0
	for _, si := range c.S {
		sg := si.SignAtNegInf()
		if sg == 0 {
			continue
		}
		if prev != 0 && sg != prev {
			v++
		}
		prev = sg
	}
	return v
}

// VariationsAtPosInf returns the chain's sign variations as x → +∞.
func (c *Chain) VariationsAtPosInf() int {
	v, prev := 0, 0
	for _, si := range c.S {
		sg := si.SignAtPosInf()
		if sg == 0 {
			continue
		}
		if prev != 0 && sg != prev {
			v++
		}
		prev = sg
	}
	return v
}

// Count returns the number of roots of p in the half-open interval
// (a, b], by Sturm's theorem.
func (c *Chain) Count(ctx metrics.Ctx, a, b dyadic.Dyadic) int {
	return c.Variations(ctx, a) - c.Variations(ctx, b)
}

// CountAll returns the total number of distinct real roots.
func (c *Chain) CountAll() int {
	return c.VariationsAtNegInf() - c.VariationsAtPosInf()
}

// FindRoots computes the µ-approximations 2^-µ·⌈2^µ·x⌉ of all distinct
// real roots of p, sequentially: Sturm isolation by interval halving,
// then bisection refinement of each isolated root. Repeated roots are
// handled by squarefree reduction. Arithmetic is recorded in ctx (the
// caller typically uses a dedicated Counters).
func FindRoots(p *poly.Poly, mu uint, ctx metrics.Ctx) ([]dyadic.Dyadic, error) {
	return FindRootsStop(p, mu, ctx, nil)
}

// FindRootsStop is FindRoots with a cooperative stop hook: stop, if
// non-nil, is polled once per isolation split and once per root
// refinement, and a non-nil return aborts the computation with that
// error (the resilience layer's cancellation and budget checks).
func FindRootsStop(p *poly.Poly, mu uint, ctx metrics.Ctx, stop func() error) ([]dyadic.Dyadic, error) {
	if p.Degree() < 1 {
		return nil, fmt.Errorf("sturm: degree %d polynomial has no roots", p.Degree())
	}
	ps := p
	if !p.IsSquarefreeProfile(ctx.Profile) {
		ps = p.SquarefreePartProfile(ctx.Profile)
	}
	if ps.Degree() < 1 {
		return nil, fmt.Errorf("sturm: no roots after squarefree reduction")
	}
	ctx = ctx.In(metrics.PhaseOther)
	chain, err := NewChain(ps)
	if err != nil {
		return nil, err
	}
	dp := ps.Derivative()

	bound := ps.RootBound()
	lo := dyadic.FromInt(new(mp.Int).Neg(bound))
	hi := dyadic.FromInt(bound)
	total := chain.Count(ctx, lo, hi)

	// Isolation: split (lo, hi] until every piece holds exactly one root.
	type piece struct {
		lo, hi dyadic.Dyadic
		count  int
	}
	stack := []piece{{lo, hi, total}}
	var isolated []piece
	for len(stack) > 0 {
		if stop != nil {
			if err := stop(); err != nil {
				return nil, err
			}
		}
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch {
		case pc.count == 0:
		case pc.count == 1:
			isolated = append(isolated, pc)
		default:
			mid := pc.lo.Mid(pc.hi)
			left := chain.Count(ctx, pc.lo, mid)
			stack = append(stack,
				piece{pc.lo, mid, left},
				piece{mid, pc.hi, pc.count - left})
		}
	}
	// Sort pieces ascending (stack order interleaves them).
	for i := 1; i < len(isolated); i++ {
		for j := i; j > 0 && isolated[j].lo.Cmp(isolated[j-1].lo) < 0; j-- {
			isolated[j], isolated[j-1] = isolated[j-1], isolated[j]
		}
	}

	roots := make([]dyadic.Dyadic, len(isolated))
	for i, pc := range isolated {
		if stop != nil {
			if err := stop(); err != nil {
				return nil, err
			}
		}
		roots[i] = refine(ps, dp, pc.lo, pc.hi, mu, ctx)
	}
	return roots, nil
}

// refine bisects the isolating interval (lo, hi] (containing exactly one
// root) down to the 2^-µ grid and returns the ceiling approximation.
func refine(p, dp *poly.Poly, lo, hi dyadic.Dyadic, mu uint, ctx metrics.Ctx) dyadic.Dyadic {
	// Root exactly at hi?
	sh := p.SignAtCtx(ctx, hi.Num(), hi.Scale())
	if sh == 0 {
		return hi.CeilGrid(mu)
	}
	// Sign just right of lo (lo itself may be the previous root).
	sl := p.SignAtCtx(ctx, lo.Num(), lo.Scale())
	if sl == 0 {
		sl = dp.SignAtCtx(ctx, lo.Num(), lo.Scale())
	}
	step := dyadic.GridStep(mu)
	for hi.Sub(lo).Cmp(step) > 0 {
		mid := lo.Mid(hi)
		sm := p.SignAtCtx(ctx, mid.Num(), mid.Scale())
		if sm == 0 {
			return mid.CeilGrid(mu)
		}
		if sm == sl {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Exact grid decision, as in the parallel algorithm's finish step.
	g := lo.CeilGrid(mu)
	if g.Equal(lo) {
		g = g.Add(step)
	}
	if g.Cmp(hi) >= 0 {
		return g
	}
	sg := p.SignAtCtx(ctx, g.Num(), g.Scale())
	if sg == 0 || sg != sl {
		return g
	}
	return g.Add(step)
}

package sturm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

func noCtx() metrics.Ctx { return metrics.Ctx{} }

func dy(num int64, scale uint) dyadic.Dyadic { return dyadic.New(mp.NewInt(num), scale) }

func distinctRoots(r *rand.Rand, k, span int) []*mp.Int {
	seen := map[int64]bool{}
	var roots []*mp.Int
	for len(roots) < k {
		v := int64(r.Intn(2*span+1) - span)
		if !seen[v] {
			seen[v] = true
			roots = append(roots, mp.NewInt(v))
		}
	}
	return roots
}

func TestChainCounts(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(-5), mp.NewInt(0), mp.NewInt(3), mp.NewInt(12))
	c, err := NewChain(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CountAll(); got != 4 {
		t.Fatalf("CountAll = %d", got)
	}
	cases := []struct {
		a, b int64
		want int
	}{
		{-100, 100, 4}, {-1, 100, 3}, {-1, 3, 2}, {0, 3, 1}, {-5, 0, 1}, {-6, 0, 2}, {3, 12, 1}, {12, 20, 0},
	}
	for _, cs := range cases {
		if got := c.Count(noCtx(), dy(cs.a, 0), dy(cs.b, 0)); got != cs.want {
			t.Errorf("Count(%d, %d] = %d, want %d", cs.a, cs.b, got, cs.want)
		}
	}
}

func TestChainRejectsNonSquarefree(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(1), mp.NewInt(1))
	if _, err := NewChain(p); err == nil {
		t.Fatal("repeated roots accepted")
	}
}

func TestChainWithComplexRoots(t *testing.T) {
	// x²+1 is squarefree; its Sturm chain reports zero real roots.
	c, err := NewChain(poly.FromInt64s(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CountAll(); got != 0 {
		t.Fatalf("x²+1 real-root count = %d", got)
	}
	// Mixed: (x²+1)(x-2).
	c, err = NewChain(poly.FromInt64s(1, 0, 1).Mul(poly.FromRoots(mp.NewInt(2))))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CountAll(); got != 1 {
		t.Fatalf("(x²+1)(x-2) real-root count = %d", got)
	}
}

func TestFindRootsIntegerRoots(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		n := 1 + r.Intn(9)
		roots := distinctRoots(r, n, 50)
		p := poly.FromRoots(roots...)
		got, err := FindRoots(p, 8, noCtx())
		if err != nil {
			t.Fatalf("FindRoots: %v", err)
		}
		if len(got) != n {
			t.Fatalf("got %d roots, want %d", len(got), n)
		}
		want := make([]int64, n)
		for i, rt := range roots {
			want[i] = rt.Int64()
		}
		for i := 1; i < n; i++ {
			for j := i; j > 0 && want[j] < want[j-1]; j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		for i := range got {
			if !got[i].IsInt() || got[i].Num().Int64() != want[i] {
				t.Fatalf("root %d = %v, want %d", i, got[i], want[i])
			}
		}
	}
}

func TestFindRootsHandlesNonRealSubset(t *testing.T) {
	// (x²+3)(x-1)(x+2): only two real roots; the Sturm baseline (unlike
	// the parallel algorithm) handles polynomials with complex roots.
	p := poly.FromInt64s(3, 0, 1).Mul(poly.FromRoots(mp.NewInt(1), mp.NewInt(-2)))
	got, err := FindRoots(p, 8, noCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Num().Int64() != -2 || got[1].Num().Int64() != 1 {
		t.Fatalf("roots = %v", got)
	}
}

func TestFindRootsRepeated(t *testing.T) {
	p := poly.FromRoots(mp.NewInt(4), mp.NewInt(4), mp.NewInt(-7))
	got, err := FindRoots(p, 8, noCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Num().Int64() != -7 || got[1].Num().Int64() != 4 {
		t.Fatalf("roots = %v", got)
	}
}

func TestFindRootsCeiling(t *testing.T) {
	// √2 at µ=8: x̃ = ⌈256·√2⌉/256 = 363/256.
	got, err := FindRoots(poly.FromInt64s(-2, 0, 1), 8, noCtx())
	if err != nil {
		t.Fatal(err)
	}
	if !got[1].Equal(dy(363, 8)) {
		t.Fatalf("√2 approx = %v, want 363/2^8", got[1])
	}
}

func TestQuickAgainstFromRoots(t *testing.T) {
	f := func(seed int64, muRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		mu := uint(muRaw%16) + 1
		n := 1 + r.Intn(6)
		// Dyadic roots with scale ≤ 3.
		seen := map[string]bool{}
		var roots []dyadic.Dyadic
		for len(roots) < n {
			d := dyadic.New(mp.NewInt(int64(r.Intn(129)-64)), uint(r.Intn(4)))
			if !seen[d.String()] {
				seen[d.String()] = true
				roots = append(roots, d)
			}
		}
		p := poly.FromInt64s(1)
		for _, rt := range roots {
			p = p.Mul(poly.New(new(mp.Int).Neg(rt.Num()), new(mp.Int).Lsh(mp.NewInt(1), rt.Scale())))
		}
		got, err := FindRoots(p, mu, noCtx())
		if err != nil || len(got) != n {
			return false
		}
		for i := 1; i < len(roots); i++ {
			for j := i; j > 0 && roots[j].Cmp(roots[j-1]) < 0; j-- {
				roots[j], roots[j-1] = roots[j-1], roots[j]
			}
		}
		for i := range got {
			if !got[i].Equal(roots[i].CeilGrid(mu)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := FindRoots(poly.FromInt64s(5), 4, noCtx()); err == nil {
		t.Error("constant accepted")
	}
	if _, err := NewChain(poly.Zero()); err == nil {
		t.Error("zero accepted")
	}
}

func TestEvalsRecorded(t *testing.T) {
	var c metrics.Counters
	p := poly.FromRoots(mp.NewInt(1), mp.NewInt(5), mp.NewInt(-3))
	if _, err := FindRoots(p, 16, metrics.Ctx{C: &c}); err != nil {
		t.Fatal(err)
	}
	if c.Snapshot().Phases[metrics.PhaseOther].Evals == 0 {
		t.Error("no evaluations recorded")
	}
}

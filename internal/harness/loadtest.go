package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"realroots/internal/server"
	"realroots/internal/telemetry"
	"realroots/internal/workload"
)

// Loadtest drives the rootd solve server with a mixed multi-tenant
// workload and reports client-observed p50/p99 latency and throughput
// per grid cell. With Config.ServerURL empty an in-process server is
// started on an ephemeral port (the hermetic default used by the
// golden tests); point ServerURL at a running rootd to measure a real
// deployment. Requests mix the polynomial and matrix (charpoly twin)
// forms of each instance and are spread round-robin over
// Config.LoadTenants tenants, shuffled deterministically, and issued
// by Config.LoadConcurrency client goroutines. When Config.LoadJSON is
// set, a bench-grid/v1 report with per-cell latency percentiles is
// written there for the -compare regression gate.
func Loadtest(w io.Writer, cfg Config) error {
	perCell := cfg.LoadRequests
	if perCell <= 0 {
		perCell = 3
	}
	concurrency := cfg.LoadConcurrency
	if concurrency <= 0 {
		concurrency = 8
	}
	tenants := cfg.LoadTenants
	if tenants <= 0 {
		tenants = 4
	}

	maxProcs := 1
	for _, p := range cfg.Procs {
		if p > maxProcs {
			maxProcs = p
		}
	}
	baseURL := cfg.ServerURL
	target := baseURL
	if baseURL == "" {
		srv := server.New(server.Config{
			MaxConcurrent:   maxProcs * 2,
			MaxQueue:        len(cfg.Degrees) * len(cfg.Mus) * len(cfg.Procs) * perCell,
			WorkersPerSolve: maxProcs,
			CacheEntries:    1024,
			DefaultProfile:  cfg.Profile,
			Telemetry:       cfg.Telemetry,
		})
		running, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("loadtest: starting in-process server: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			running.Close(ctx)
		}()
		baseURL = running.URL()
		target = "in-process server" // never print the ephemeral port: goldens
	}

	type cellShape struct {
		n     int
		mu    uint
		procs int
	}
	var cells []cellShape
	for _, n := range cfg.Degrees {
		for _, mu := range cfg.Mus {
			for _, p := range cfg.Procs {
				cells = append(cells, cellShape{n, mu, p})
			}
		}
	}

	type request struct {
		cell   int
		body   string
		tenant string
		id     string // X-Request-Id: deterministic, exemplar-traceable
		poly   bool   // polynomial form (vs the matrix charpoly twin)
	}
	seed := cfg.Seeds[0]
	var reqs []request
	for ci, c := range cells {
		for r := 0; r < perCell; r++ {
			tenant := fmt.Sprintf("tenant%d", (ci*perCell+r)%tenants)
			var payload string
			isPoly := true
			if r%2 == 1 && c.n <= server.MaxMatrixDim {
				rows, err := json.Marshal(workload.SymmetricRows01(seed, c.n))
				if err != nil {
					return err
				}
				payload = fmt.Sprintf(`"matrix":{"rows":%s}`, rows)
				isPoly = false
			} else {
				p := Instance(seed, c.n)
				coeffs := make([]string, p.Degree()+1)
				for i := range coeffs {
					coeffs[i] = fmt.Sprintf("%q", p.Coeff(i).String())
				}
				payload = fmt.Sprintf(`"poly":{"coeffs":[%s]}`, strings.Join(coeffs, ","))
			}
			body := fmt.Sprintf(`{"tenant":%q,%s,"precision":%d,"workers":%d}`,
				tenant, payload, c.mu, c.procs)
			reqs = append(reqs, request{
				cell: ci, body: body, tenant: tenant,
				id:   fmt.Sprintf("load-s%d-c%d-r%d", seed, ci, r),
				poly: isPoly,
			})
		}
	}
	rand.New(rand.NewSource(seed)).Shuffle(len(reqs), func(i, j int) {
		reqs[i], reqs[j] = reqs[j], reqs[i]
	})

	type sample struct {
		cell    int
		tenant  string
		latency time.Duration
		resp    *server.SolveResponse
		errCode string
		poly    bool
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	defer client.CloseIdleConnections()
	// issue replays the full request set against url with the configured
	// client concurrency. It is run once for the report and (in-process
	// only) once more against a tracing-disabled twin server for the A/B
	// overhead line.
	issue := func(url string) ([]sample, time.Duration, bool) {
		samples := make([]sample, len(reqs))
		work := make(chan int)
		var wg sync.WaitGroup
		sweepStart := time.Now()
		for g := 0; g < concurrency; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					hreq, err := http.NewRequest(http.MethodPost, url+"/v1/solve",
						strings.NewReader(reqs[i].body))
					if err != nil {
						samples[i] = sample{cell: reqs[i].cell, tenant: reqs[i].tenant, errCode: "transport", poly: reqs[i].poly}
						continue
					}
					hreq.Header.Set("Content-Type", "application/json")
					hreq.Header.Set("X-Request-Id", reqs[i].id)
					start := time.Now()
					resp, err := client.Do(hreq)
					latency := time.Since(start)
					s := sample{cell: reqs[i].cell, tenant: reqs[i].tenant, latency: latency, poly: reqs[i].poly}
					if err != nil {
						s.errCode = "transport"
					} else {
						data, rerr := io.ReadAll(resp.Body)
						resp.Body.Close()
						switch {
						case rerr != nil:
							s.errCode = "transport"
						case resp.StatusCode == http.StatusOK:
							var out server.SolveResponse
							if jerr := json.Unmarshal(data, &out); jerr != nil {
								s.errCode = "transport"
							} else {
								s.resp = &out
							}
						default:
							var eresp server.ErrorResponse
							if jerr := json.Unmarshal(data, &eresp); jerr != nil || eresp.Error.Code == "" {
								s.errCode = "untyped"
							} else {
								s.errCode = eresp.Error.Code
							}
						}
					}
					samples[i] = s
				}
			}()
		}
		interrupted := false
		for i := range reqs {
			if err := cfg.interrupted(); err != nil {
				interrupted = true
				break
			}
			work <- i
		}
		close(work)
		wg.Wait()
		return samples, time.Since(sweepStart), interrupted
	}
	samples, sweepWall, interruptedEarly := issue(baseURL)

	// Fold samples into cells. Per-cell latency distributions use the
	// same fixed-bucket histogram the server exposes on /metrics, so
	// the loadtest's p50/p99 are histogram-derived quantiles — directly
	// comparable with a histogram_quantile over rootd_request_seconds.
	type cellStats struct {
		hist     *telemetry.Histogram
		seconds  float64
		requests int
		errors   int
		resp     *server.SolveResponse
		respPoly bool
	}
	type tenantStats struct {
		hist     *telemetry.Histogram
		requests int
		errors   int
	}
	stats := make([]cellStats, len(cells))
	perTenant := make(map[string]*tenantStats, tenants)
	totalReqs, totalErrs, uniqueSolves, sharedResults := 0, 0, 0, 0
	for _, s := range samples {
		if s.latency == 0 && s.resp == nil && s.errCode == "" {
			continue // request never issued (interrupted)
		}
		totalReqs++
		ts := perTenant[s.tenant]
		if ts == nil {
			ts = &tenantStats{hist: telemetry.NewHistogram(telemetry.SecondsBuckets)}
			perTenant[s.tenant] = ts
		}
		ts.hist.Observe(s.latency.Seconds(), "")
		ts.requests++
		cs := &stats[s.cell]
		if cs.hist == nil {
			cs.hist = telemetry.NewHistogram(telemetry.SecondsBuckets)
		}
		cs.hist.Observe(s.latency.Seconds(), "")
		cs.seconds += s.latency.Seconds()
		cs.requests++
		if s.resp == nil {
			cs.errors++
			ts.errors++
			totalErrs++
			continue
		}
		if s.resp.Cached {
			sharedResults++
		} else {
			uniqueSolves++
		}
		// Prefer the polynomial-form response for the cell's bench-grid
		// numbers: its BitOps match a RunGrid cell of the same
		// (degree, µ, seed, profile), so -compare gates against solver
		// benchmarks; the matrix twin solves a different polynomial.
		if cs.resp == nil || (!cs.respPoly && s.poly) {
			cs.resp, cs.respPoly = s.resp, s.poly
		}
	}

	fmt.Fprintf(w, "loadtest: %d requests over %d cells, %d clients, %d tenants against %s\n",
		totalReqs, len(cells), concurrency, tenants, target)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tµ\tP\treq\terr\tp50(ms)\tp99(ms)\treq/s")
	var rep GridReport
	rep.Schema = GridSchema
	profName := ""
	if cfg.Profile.String() != "schoolbook" {
		profName = cfg.Profile.String()
	}
	for ci, c := range cells {
		cs := &stats[ci]
		if cs.requests == 0 {
			continue
		}
		p50 := cs.hist.Quantile(0.50)
		p99 := cs.hist.Quantile(0.99)
		rps := float64(cs.requests) / cs.seconds
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%.1f\n",
			c.n, c.mu, c.procs, cs.requests, cs.errors,
			p50*1e3, p99*1e3, rps)
		if cs.resp != nil {
			cell := GridCell{
				Degree:        c.n,
				Mu:            c.mu,
				Procs:         c.procs,
				Seed:          seed,
				Profile:       profName,
				WallSeconds:   p50,
				BitOps:        cs.resp.BitOps,
				P50Seconds:    p50,
				P99Seconds:    p99,
				ThroughputRPS: rps,
			}
			if cs.resp.Metrics != nil {
				cell.Metrics = *cs.resp.Metrics
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	tw.Flush()

	// Per-tenant breakdown: the client-side view of the server's
	// /debug/tenants ledger. Request and error counts are deterministic
	// (round-robin assignment); latency columns are measurements. Which
	// tenant leads a cached solve is a scheduling race, so solve/hit
	// splits are deliberately left to the server-side ledger.
	fmt.Fprintln(w, "per-tenant:")
	tw = tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "tenant\treq\terr\tp50(ms)\tp99(ms)")
	for k := 0; k < tenants; k++ {
		name := fmt.Sprintf("tenant%d", k)
		ts := perTenant[name]
		if ts == nil {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.3f\n", name, ts.requests, ts.errors,
			ts.hist.Quantile(0.50)*1e3, ts.hist.Quantile(0.99)*1e3)
	}
	tw.Flush()

	fmt.Fprintf(w, "total: %d requests (%d solved, %d cache-shared), %d errors, %.1f req/s overall\n",
		totalReqs, uniqueSolves, sharedResults, totalErrs, float64(totalReqs)/sweepWall.Seconds())

	// Tracing A/B: replay the identical request set against a twin
	// in-process server with tracing disabled and compare exact median
	// latencies, recording the always-on tracing overhead in the bench
	// output. Skipped against an external server (its tracing config is
	// not ours to change) or after an interrupt.
	if cfg.ServerURL == "" && !interruptedEarly {
		twin := server.New(server.Config{
			MaxConcurrent:   maxProcs * 2,
			MaxQueue:        len(cells) * perCell,
			WorkersPerSolve: maxProcs,
			CacheEntries:    1024,
			DefaultProfile:  cfg.Profile,
			DisableTracing:  true,
		})
		running, err := twin.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("loadtest: starting tracing-disabled twin: %w", err)
		}
		twinSamples, _, _ := issue(running.URL())
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		running.Close(ctx)
		cancel()
		median := func(ss []sample) float64 {
			var lats []float64
			for _, s := range ss {
				if s.errCode == "" && s.resp != nil {
					lats = append(lats, s.latency.Seconds())
				}
			}
			if len(lats) == 0 {
				return 0
			}
			sort.Float64s(lats)
			return lats[len(lats)/2]
		}
		on, off := median(samples), median(twinSamples)
		if on > 0 && off > 0 {
			fmt.Fprintf(w, "tracing overhead: p50 %.3f ms traced vs %.3f ms untraced (%.1f%%)\n",
				on*1e3, off*1e3, (on/off-1)*100)
		}
	}

	if cfg.LoadJSON != nil {
		enc := json.NewEncoder(cfg.LoadJSON)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			return err
		}
	}
	if interruptedEarly {
		return ErrInterrupted
	}
	if totalErrs > 0 {
		var codes []string
		seen := map[string]bool{}
		for _, s := range samples {
			if s.errCode != "" && !seen[s.errCode] {
				seen[s.errCode] = true
				codes = append(codes, s.errCode)
			}
		}
		return fmt.Errorf("loadtest: %d/%d requests failed (codes: %s)",
			totalErrs, totalReqs, strings.Join(codes, ", "))
	}
	return nil
}

// ScrubExposition reduces a /metrics exposition to its stable
// structure for golden comparison under concurrent load: HELP/TYPE
// lines are kept verbatim, every sample value is replaced with '#',
// and sample lines of families whose series set depends on scheduling
// are dropped entirely — the phase- and operand-keyed solver families
// (the registry omits zero-valued phase samples) and the rootd latency
// histograms (series appear per tenant/method as requests complete,
// and exemplar request IDs are whichever request last landed in a
// bucket).
func ScrubExposition(expo []byte) string {
	unstable := []string{
		"realroots_phase_ops_total{",
		"realroots_phase_bits_total{",
		"realroots_operand_bits_ops_total{",
		"rootd_request_seconds_bucket{",
		"rootd_request_seconds_sum{",
		"rootd_request_seconds_count{",
		"rootd_queue_wait_seconds_bucket{",
		"rootd_queue_wait_seconds_sum{",
		"rootd_queue_wait_seconds_count{",
		"rootd_solve_seconds_bucket{",
		"rootd_solve_seconds_sum{",
		"rootd_solve_seconds_count{",
		// Per-phase wall histograms: series appear as each pipeline phase
		// first completes, so the set depends on scheduling mid-load.
		"rootd_phase_seconds_bucket{",
		"rootd_phase_seconds_sum{",
		"rootd_phase_seconds_count{",
		// Per-tenant ledger families: a tenant's series appears with its
		// first completed request.
		"rootd_tenant_",
	}
	var out bytes.Buffer
	for _, line := range strings.Split(string(expo), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fmt.Fprintln(&out, line)
			continue
		}
		skip := false
		for _, p := range unstable {
			if strings.HasPrefix(line, p) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i] // drop a trailing exemplar before value scrubbing
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			line = line[:i] + " #"
		}
		fmt.Fprintln(&out, line)
	}
	return out.String()
}

package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"realroots/internal/server"
	"realroots/internal/workload"
)

// Loadtest drives the rootd solve server with a mixed multi-tenant
// workload and reports client-observed p50/p99 latency and throughput
// per grid cell. With Config.ServerURL empty an in-process server is
// started on an ephemeral port (the hermetic default used by the
// golden tests); point ServerURL at a running rootd to measure a real
// deployment. Requests mix the polynomial and matrix (charpoly twin)
// forms of each instance and are spread round-robin over
// Config.LoadTenants tenants, shuffled deterministically, and issued
// by Config.LoadConcurrency client goroutines. When Config.LoadJSON is
// set, a bench-grid/v1 report with per-cell latency percentiles is
// written there for the -compare regression gate.
func Loadtest(w io.Writer, cfg Config) error {
	perCell := cfg.LoadRequests
	if perCell <= 0 {
		perCell = 3
	}
	concurrency := cfg.LoadConcurrency
	if concurrency <= 0 {
		concurrency = 8
	}
	tenants := cfg.LoadTenants
	if tenants <= 0 {
		tenants = 4
	}

	baseURL := cfg.ServerURL
	target := baseURL
	if baseURL == "" {
		maxProcs := 1
		for _, p := range cfg.Procs {
			if p > maxProcs {
				maxProcs = p
			}
		}
		srv := server.New(server.Config{
			MaxConcurrent:   maxProcs * 2,
			MaxQueue:        len(cfg.Degrees) * len(cfg.Mus) * len(cfg.Procs) * perCell,
			WorkersPerSolve: maxProcs,
			CacheEntries:    1024,
			DefaultProfile:  cfg.Profile,
			Telemetry:       cfg.Telemetry,
		})
		running, err := srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("loadtest: starting in-process server: %w", err)
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			running.Close(ctx)
		}()
		baseURL = running.URL()
		target = "in-process server" // never print the ephemeral port: goldens
	}

	type cellShape struct {
		n     int
		mu    uint
		procs int
	}
	var cells []cellShape
	for _, n := range cfg.Degrees {
		for _, mu := range cfg.Mus {
			for _, p := range cfg.Procs {
				cells = append(cells, cellShape{n, mu, p})
			}
		}
	}

	type request struct {
		cell   int
		body   string
		tenant string
	}
	seed := cfg.Seeds[0]
	var reqs []request
	for ci, c := range cells {
		for r := 0; r < perCell; r++ {
			tenant := fmt.Sprintf("tenant%d", (ci*perCell+r)%tenants)
			var payload string
			if r%2 == 1 && c.n <= server.MaxMatrixDim {
				rows, err := json.Marshal(workload.SymmetricRows01(seed, c.n))
				if err != nil {
					return err
				}
				payload = fmt.Sprintf(`"matrix":{"rows":%s}`, rows)
			} else {
				p := Instance(seed, c.n)
				coeffs := make([]string, p.Degree()+1)
				for i := range coeffs {
					coeffs[i] = fmt.Sprintf("%q", p.Coeff(i).String())
				}
				payload = fmt.Sprintf(`"poly":{"coeffs":[%s]}`, strings.Join(coeffs, ","))
			}
			body := fmt.Sprintf(`{"tenant":%q,%s,"precision":%d,"workers":%d}`,
				tenant, payload, c.mu, c.procs)
			reqs = append(reqs, request{cell: ci, body: body, tenant: tenant})
		}
	}
	rand.New(rand.NewSource(seed)).Shuffle(len(reqs), func(i, j int) {
		reqs[i], reqs[j] = reqs[j], reqs[i]
	})

	type sample struct {
		cell    int
		latency time.Duration
		resp    *server.SolveResponse
		errCode string
	}
	samples := make([]sample, len(reqs))
	work := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Minute}
	defer client.CloseIdleConnections()
	sweepStart := time.Now()
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				start := time.Now()
				resp, err := client.Post(baseURL+"/v1/solve", "application/json",
					strings.NewReader(reqs[i].body))
				latency := time.Since(start)
				s := sample{cell: reqs[i].cell, latency: latency}
				if err != nil {
					s.errCode = "transport"
				} else {
					data, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					switch {
					case rerr != nil:
						s.errCode = "transport"
					case resp.StatusCode == http.StatusOK:
						var out server.SolveResponse
						if jerr := json.Unmarshal(data, &out); jerr != nil {
							s.errCode = "transport"
						} else {
							s.resp = &out
						}
					default:
						var eresp server.ErrorResponse
						if jerr := json.Unmarshal(data, &eresp); jerr != nil || eresp.Error.Code == "" {
							s.errCode = "untyped"
						} else {
							s.errCode = eresp.Error.Code
						}
					}
				}
				samples[i] = s
			}
		}()
	}
	interruptedEarly := false
	for i := range reqs {
		if err := cfg.interrupted(); err != nil {
			interruptedEarly = true
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()
	sweepWall := time.Since(sweepStart)

	// Fold samples into cells.
	type cellStats struct {
		latencies []time.Duration
		errors    int
		resp      *server.SolveResponse
	}
	stats := make([]cellStats, len(cells))
	totalReqs, totalErrs, uniqueSolves, sharedResults := 0, 0, 0, 0
	for _, s := range samples {
		if s.latency == 0 && s.resp == nil && s.errCode == "" {
			continue // request never issued (interrupted)
		}
		totalReqs++
		cs := &stats[s.cell]
		cs.latencies = append(cs.latencies, s.latency)
		if s.resp == nil {
			cs.errors++
			totalErrs++
			continue
		}
		if s.resp.Cached {
			sharedResults++
		} else {
			uniqueSolves++
		}
		if cs.resp == nil {
			cs.resp = s.resp
		}
	}

	fmt.Fprintf(w, "loadtest: %d requests over %d cells, %d clients, %d tenants against %s\n",
		totalReqs, len(cells), concurrency, tenants, target)
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tµ\tP\treq\terr\tp50(ms)\tp99(ms)\treq/s")
	var rep GridReport
	rep.Schema = GridSchema
	profName := ""
	if cfg.Profile.String() != "schoolbook" {
		profName = cfg.Profile.String()
	}
	for ci, c := range cells {
		cs := &stats[ci]
		if len(cs.latencies) == 0 {
			continue
		}
		sort.Slice(cs.latencies, func(i, j int) bool { return cs.latencies[i] < cs.latencies[j] })
		p50 := percentile(cs.latencies, 50)
		p99 := percentile(cs.latencies, 99)
		var cellSeconds float64
		for _, l := range cs.latencies {
			cellSeconds += l.Seconds()
		}
		rps := float64(len(cs.latencies)) / cellSeconds
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.3f\t%.3f\t%.1f\n",
			c.n, c.mu, c.procs, len(cs.latencies), cs.errors,
			float64(p50)/float64(time.Millisecond), float64(p99)/float64(time.Millisecond), rps)
		if cs.resp != nil {
			cell := GridCell{
				Degree:        c.n,
				Mu:            c.mu,
				Procs:         c.procs,
				Seed:          seed,
				Profile:       profName,
				WallSeconds:   p50.Seconds(),
				BitOps:        cs.resp.BitOps,
				P50Seconds:    p50.Seconds(),
				P99Seconds:    p99.Seconds(),
				ThroughputRPS: rps,
			}
			if cs.resp.Metrics != nil {
				cell.Metrics = *cs.resp.Metrics
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "total: %d requests (%d solved, %d cache-shared), %d errors, %.1f req/s overall\n",
		totalReqs, uniqueSolves, sharedResults, totalErrs, float64(totalReqs)/sweepWall.Seconds())

	if cfg.LoadJSON != nil {
		enc := json.NewEncoder(cfg.LoadJSON)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			return err
		}
	}
	if interruptedEarly {
		return ErrInterrupted
	}
	if totalErrs > 0 {
		var codes []string
		seen := map[string]bool{}
		for _, s := range samples {
			if s.errCode != "" && !seen[s.errCode] {
				seen[s.errCode] = true
				codes = append(codes, s.errCode)
			}
		}
		return fmt.Errorf("loadtest: %d/%d requests failed (codes: %s)",
			totalErrs, totalReqs, strings.Join(codes, ", "))
	}
	return nil
}

// percentile returns the pth percentile (nearest-rank) of sorted
// latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 · n), 1-based
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// ScrubExposition reduces a /metrics exposition to its stable
// structure for golden comparison under concurrent load: HELP/TYPE
// lines are kept verbatim, every sample value is replaced with '#',
// and sample lines of the phase- and operand-keyed families are
// dropped entirely (the registry omits zero-valued phase samples, so
// which lines appear depends on scheduling).
func ScrubExposition(expo []byte) string {
	unstable := []string{
		"realroots_phase_ops_total{",
		"realroots_phase_bits_total{",
		"realroots_operand_bits_ops_total{",
	}
	var out bytes.Buffer
	for _, line := range strings.Split(string(expo), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fmt.Fprintln(&out, line)
			continue
		}
		skip := false
		for _, p := range unstable {
			if strings.HasPrefix(line, p) {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if i := strings.LastIndexByte(line, ' '); i >= 0 {
			line = line[:i] + " #"
		}
		fmt.Fprintln(&out, line)
	}
	return out.String()
}

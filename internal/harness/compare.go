package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// This file implements the bench regression gate behind
// `rootbench -compare old.json new.json`: a differ over two
// bench-grid/v1 snapshots (results/BENCH_*.json and freshly generated
// grids) reporting per-cell wall-time and bit-operation changes.

// LoadGridJSON parses and validates one bench-grid/v1 snapshot.
func LoadGridJSON(data []byte) (*GridReport, error) {
	if err := ValidateGridJSON(data); err != nil {
		return nil, err
	}
	var rep GridReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("grid json: %w", err)
	}
	return &rep, nil
}

// CellKey identifies one grid cell across snapshots.
type CellKey struct {
	Degree  int
	Mu      uint
	Procs   int
	Seed    int64
	Profile string // "" = schoolbook
}

func (k CellKey) String() string {
	prof := k.Profile
	if prof == "" {
		prof = "schoolbook"
	}
	return fmt.Sprintf("n=%d µ=%d P=%d seed=%d %s", k.Degree, k.Mu, k.Procs, k.Seed, prof)
}

// CellDiff is one matched cell's measurements in both snapshots.
type CellDiff struct {
	Key              CellKey
	OldWall, NewWall float64
	OldBits, NewBits int64
}

// WallPct returns the wall-time change in percent (new vs old).
func (d CellDiff) WallPct() float64 { return pctChange(d.OldWall, d.NewWall) }

// BitsPct returns the bit-operation change in percent (new vs old).
func (d CellDiff) BitsPct() float64 { return pctChange(float64(d.OldBits), float64(d.NewBits)) }

func pctChange(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return 100 * (new - old) / old
}

// GridComparison is the result of comparing two snapshots.
type GridComparison struct {
	Matched []CellDiff
	OnlyOld []CellKey // cells present only in the old snapshot
	OnlyNew []CellKey // cells present only in the new snapshot
}

// CompareGrids matches the two snapshots' cells by (degree, µ, procs,
// seed, profile). Unmatched cells are reported but never gate: a
// fresh grid may legitimately cover only a quick subset of a committed
// snapshot.
func CompareGrids(old, new *GridReport) *GridComparison {
	key := func(c GridCell) CellKey {
		return CellKey{Degree: c.Degree, Mu: c.Mu, Procs: c.Procs, Seed: c.Seed, Profile: c.Profile}
	}
	oldByKey := make(map[CellKey]GridCell, len(old.Cells))
	for _, c := range old.Cells {
		oldByKey[key(c)] = c
	}
	cmp := &GridComparison{}
	seen := make(map[CellKey]bool, len(new.Cells))
	for _, nc := range new.Cells {
		k := key(nc)
		seen[k] = true
		oc, ok := oldByKey[k]
		if !ok {
			cmp.OnlyNew = append(cmp.OnlyNew, k)
			continue
		}
		cmp.Matched = append(cmp.Matched, CellDiff{
			Key:     k,
			OldWall: oc.WallSeconds, NewWall: nc.WallSeconds,
			OldBits: oc.BitOps, NewBits: nc.BitOps,
		})
	}
	for _, oc := range old.Cells {
		if k := key(oc); !seen[k] {
			cmp.OnlyOld = append(cmp.OnlyOld, k)
		}
	}
	sortKeys := func(ks []CellKey) {
		sort.Slice(ks, func(i, j int) bool { return ks[i].String() < ks[j].String() })
	}
	sortKeys(cmp.OnlyOld)
	sortKeys(cmp.OnlyNew)
	return cmp
}

// CompareMetrics are the valid values of the -compare-metric flag:
// which measurement's regressions fail the gate. Wall time is the
// honest end metric but machine-dependent; bit operations are exact
// and deterministic, so they are the right gate for heterogeneous CI.
var CompareMetrics = []string{"wall", "bitops", "both"}

// regressed reports whether the diff exceeds the threshold on the
// gated metric(s).
func (d CellDiff) regressed(thresholdPct float64, metric string) bool {
	switch metric {
	case "wall":
		return d.WallPct() > thresholdPct
	case "bitops":
		return d.BitsPct() > thresholdPct
	default: // "both"
		return d.WallPct() > thresholdPct || d.BitsPct() > thresholdPct
	}
}

// WriteTable renders the regression table and returns the number of
// cells whose gated metric regressed past thresholdPct.
func (c *GridComparison) WriteTable(w io.Writer, thresholdPct float64, metric string) (regressions int, err error) {
	fmt.Fprintf(w, "Bench compare: %d matched cells, gate %s > %.1f%%\n",
		len(c.Matched), metric, thresholdPct)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "cell\twall-old(s)\twall-new(s)\twall%\tbits-old\tbits-new\tbits%\t\t")
	for _, d := range c.Matched {
		flag := ""
		switch {
		case d.regressed(thresholdPct, metric):
			flag = "REGRESSION"
			regressions++
		case !d.regressed(-thresholdPct, metric):
			// No gated metric is above -threshold, i.e. every gated
			// metric improved by more than the threshold.
			flag = "improved"
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%+.1f\t%d\t%d\t%+.1f\t%s\t\n",
			d.Key, d.OldWall, d.NewWall, d.WallPct(), d.OldBits, d.NewBits, d.BitsPct(), flag)
	}
	if err := tw.Flush(); err != nil {
		return regressions, err
	}
	for _, k := range c.OnlyOld {
		fmt.Fprintf(w, "only in old snapshot (not gated): %s\n", k)
	}
	for _, k := range c.OnlyNew {
		fmt.Fprintf(w, "only in new snapshot (not gated): %s\n", k)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "%d cell(s) regressed more than %.1f%% on %s\n", regressions, thresholdPct, metric)
	} else {
		fmt.Fprintf(w, "no regressions past %.1f%% on %s\n", thresholdPct, metric)
	}
	return regressions, nil
}

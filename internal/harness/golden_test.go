package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// Experiments split by what their output depends on. Count-based
// experiments are bit-for-bit reproducible and their goldens are
// compared exactly; timing experiments have their measured numbers
// scrubbed so only the table structure and deterministic columns are
// pinned.
var (
	deterministicExps = []string{"conformance", "figs2to5", "fig6", "fig7", "phases", "table1"}
	timingExps        = []string{"ablations", "fig8", "loadtest", "soak", "speedups", "table2", "times", "utilization"}
)

var floatRE = regexp.MustCompile(`-?\d+\.\d+(e[+-]\d+)?`)

// scrub replaces measured floating-point values with a placeholder and
// collapses horizontal whitespace, so tabwriter column widths (which
// depend on the digits of the timings) don't churn the goldens.
func scrub(s string) string {
	s = floatRE.ReplaceAllString(s, "#")
	lines := strings.Split(s, "\n")
	for i, line := range lines {
		lines[i] = strings.Join(strings.Fields(line), " ")
	}
	return strings.Join(lines, "\n")
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".golden")
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/harness -run TestGolden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestGoldenDeterministic(t *testing.T) {
	for _, name := range deterministicExps {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Experiments[name](&buf, tiny()); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name, buf.String())
		})
	}
}

func TestGoldenTimingStructure(t *testing.T) {
	for _, name := range timingExps {
		t.Run(name, func(t *testing.T) {
			cfg := tiny()
			cfg.Simulate = true // virtual time keeps table shapes stable everywhere
			var buf bytes.Buffer
			if err := Experiments[name](&buf, cfg); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, name, scrub(buf.String()))
		})
	}
}

func TestGoldenCoverAllExperiments(t *testing.T) {
	covered := map[string]bool{}
	for _, name := range deterministicExps {
		covered[name] = true
	}
	for _, name := range timingExps {
		if covered[name] {
			t.Errorf("%s listed as both deterministic and timing", name)
		}
		covered[name] = true
	}
	for _, name := range Names() {
		if !covered[name] {
			t.Errorf("experiment %s has no golden test", name)
		}
	}
}

func TestScrub(t *testing.T) {
	in := "n   time(s)\n10  0.123\n15  1.5e+03 done -2.25\n"
	want := "n time(s)\n10 #\n15 # done #\n"
	if got := scrub(in); got != want {
		t.Errorf("scrub = %q, want %q", got, want)
	}
}

package harness

import (
	"bytes"
	"strings"
	"testing"
)

func gridCfg() Config {
	return Config{Degrees: []int{6, 8}, Mus: []uint{4}, Procs: []int{1, 2}, Seeds: []int64{1}}
}

func TestGridJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGridJSON(&buf, gridCfg()); err != nil {
		t.Fatal(err)
	}
	if err := ValidateGridJSON(buf.Bytes()); err != nil {
		t.Errorf("self-emitted grid json invalid: %v", err)
	}
	s := buf.String()
	for _, want := range []string{GridSchema, `"degree": 6`, `"degree": 8`, `"bitOps"`, `"metrics"`} {
		if !strings.Contains(s, want) {
			t.Errorf("grid json missing %s", want)
		}
	}
}

func TestValidateGridJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not json":     "nope",
		"wrong schema": `{"schema":"other/v9","cells":[{"degree":6,"mu":4,"procs":1}]}`,
		"no cells":     `{"schema":"` + GridSchema + `","cells":[]}`,
		"bad shape":    `{"schema":"` + GridSchema + `","cells":[{"degree":0,"mu":4,"procs":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateGridJSON([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestUtilizationExperimentRegistered(t *testing.T) {
	if _, ok := Experiments["utilization"]; !ok {
		t.Fatal("utilization experiment not registered")
	}
}

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"realroots/internal/core"
	"realroots/internal/metrics"
	"realroots/internal/mp"
)

// GridSchema identifies the JSON layout emitted by WriteGridJSON;
// ValidateGridJSON rejects anything else, so perf-trajectory snapshots
// (results/BENCH_*.json) fail loudly on schema drift.
const GridSchema = "realroots/bench-grid/v1"

// GridCell is one (degree, µ, procs) measurement of the sweep: the
// first seed's wall time, bit-operation count, and per-phase metrics.
type GridCell struct {
	Degree int   `json:"degree"`
	Mu     uint  `json:"mu"`
	Procs  int   `json:"procs"`
	Seed   int64 `json:"seed"`
	// Profile is the arithmetic profile name; empty means schoolbook
	// (pre-profile snapshots carry no field).
	Profile     string         `json:"profile,omitempty"`
	WallSeconds float64        `json:"wallSeconds"`
	BitOps      int64          `json:"bitOps"`
	Tasks       int64          `json:"tasks,omitempty"`
	Metrics     metrics.Report `json:"metrics"`
	// Loadtest cells additionally carry client-observed latency
	// percentiles and throughput; WallSeconds doubles as p50 there so the
	// -compare gate works unchanged on loadtest reports.
	P50Seconds    float64 `json:"p50Seconds,omitempty"`
	P99Seconds    float64 `json:"p99Seconds,omitempty"`
	ThroughputRPS float64 `json:"throughputRPS,omitempty"`
}

// GridReport is the machine-readable counterpart of the Times/Table2
// text experiments: the full degrees × µ × procs grid with metrics.
type GridReport struct {
	Schema   string     `json:"schema"`
	Simulate bool       `json:"simulate"`
	Cells    []GridCell `json:"cells"`
}

// RunGrid measures every cell of the configured grid. Cells are emitted
// in profile-outer, degrees, µ, procs-inner order; only the first seed
// is measured (metrics are identical across seeds of the same shape,
// and snapshots favor a stable, smaller file). With an empty
// cfg.GridProfiles the single cfg.Profile is measured, and schoolbook
// cells omit the profile tag, so pre-profile snapshots and default runs
// keep their exact byte layout.
func RunGrid(cfg Config) (*GridReport, error) {
	rep := &GridReport{Schema: GridSchema, Simulate: cfg.Simulate}
	profiles := cfg.GridProfiles
	if len(profiles) == 0 {
		profiles = []mp.Profile{cfg.Profile}
	}
	seed := cfg.Seeds[0]
	for _, prof := range profiles {
		name := ""
		if prof != mp.Schoolbook {
			name = prof.String()
		}
		for _, n := range cfg.Degrees {
			for _, mu := range cfg.Mus {
				for _, procs := range cfg.Procs {
					if err := cfg.interrupted(); err != nil {
						return nil, err
					}
					p := Instance(seed, n)
					var c metrics.Counters
					opts := core.Options{Mu: mu, Counters: &c, Ctx: cfg.Ctx, Profile: prof, Telemetry: cfg.Telemetry, ParallelMul: cfg.ParallelMul}
					if cfg.Simulate {
						opts.SimulateWorkers = procs
					} else {
						opts.Workers = procs
					}
					start := time.Now()
					res, err := core.FindRoots(p, opts)
					wall := time.Since(start)
					if err != nil {
						if err := cfg.interrupted(); err != nil {
							return nil, err
						}
						return nil, fmt.Errorf("grid n=%d µ=%d P=%d profile=%v: %w", n, mu, procs, prof, err)
					}
					if cfg.Simulate {
						wall = res.Stats.SimMakespan
					}
					rep.Cells = append(rep.Cells, GridCell{
						Degree:      n,
						Mu:          mu,
						Procs:       procs,
						Seed:        seed,
						Profile:     name,
						WallSeconds: wall.Seconds(),
						BitOps:      c.BitOps(),
						Tasks:       res.Stats.Tasks,
						Metrics:     c.Snapshot(),
					})
				}
			}
		}
	}
	return rep, nil
}

// WriteGridJSON runs the grid and writes the report as indented JSON.
func WriteGridJSON(w io.Writer, cfg Config) error {
	rep, err := RunGrid(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ValidateGridJSON checks that data parses as a GridReport with the
// current schema and self-consistent cells — the check CI runs on the
// emitted -json output and on committed snapshots.
func ValidateGridJSON(data []byte) error {
	var rep GridReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("grid json: %w", err)
	}
	if rep.Schema != GridSchema {
		return fmt.Errorf("grid json: schema %q, want %q", rep.Schema, GridSchema)
	}
	if len(rep.Cells) == 0 {
		return fmt.Errorf("grid json: no cells")
	}
	for i, c := range rep.Cells {
		if c.Degree < 1 || c.Procs < 1 || c.Mu < 1 {
			return fmt.Errorf("grid json: cell %d has invalid shape %+v", i, c)
		}
		if c.Profile != "" {
			if _, err := mp.ParseProfile(c.Profile); err != nil {
				return fmt.Errorf("grid json: cell %d: %w", i, err)
			}
		}
		if c.WallSeconds < 0 || c.BitOps < 0 {
			return fmt.Errorf("grid json: cell %d has negative measurements", i)
		}
		if c.Metrics.Total().Muls <= 0 {
			return fmt.Errorf("grid json: cell %d recorded no multiplications", i)
		}
		if c.P50Seconds < 0 || c.P99Seconds < 0 || c.ThroughputRPS < 0 {
			return fmt.Errorf("grid json: cell %d has negative load statistics", i)
		}
		if c.P99Seconds < c.P50Seconds {
			return fmt.Errorf("grid json: cell %d has p99 %.6g below p50 %.6g", i, c.P99Seconds, c.P50Seconds)
		}
	}
	return nil
}

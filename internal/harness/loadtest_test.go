package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"realroots/internal/server"
	"realroots/internal/telemetry"
)

// TestLoadtestJSONReport checks the loadtest's machine-readable output
// is a valid bench-grid/v1 report with self-consistent latency columns
// — the shape cmd/validatetrace accepts and -compare gates.
func TestLoadtestJSONReport(t *testing.T) {
	cfg := tiny()
	var out, js bytes.Buffer
	cfg.LoadJSON = &js
	if err := Loadtest(&out, cfg); err != nil {
		t.Fatalf("Loadtest: %v\n%s", err, out.String())
	}
	if err := ValidateGridJSON(js.Bytes()); err != nil {
		t.Fatalf("loadtest JSON rejected: %v\n%s", err, js.String())
	}
	var rep GridReport
	if err := json.Unmarshal(js.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	wantCells := len(cfg.Degrees) * len(cfg.Mus) * len(cfg.Procs)
	if len(rep.Cells) != wantCells {
		t.Fatalf("report has %d cells, want %d", len(rep.Cells), wantCells)
	}
	for i, c := range rep.Cells {
		if c.P50Seconds <= 0 || c.P99Seconds < c.P50Seconds {
			t.Errorf("cell %d: p50=%g p99=%g", i, c.P50Seconds, c.P99Seconds)
		}
		if c.ThroughputRPS <= 0 {
			t.Errorf("cell %d: throughput %g", i, c.ThroughputRPS)
		}
		if c.WallSeconds != c.P50Seconds {
			t.Errorf("cell %d: wallSeconds %g != p50 %g (breaks -compare)", i, c.WallSeconds, c.P50Seconds)
		}
		if c.BitOps <= 0 || c.Metrics.Total().Muls <= 0 {
			t.Errorf("cell %d: missing solver metrics", i)
		}
	}
}

// TestLoadtestCacheSharing pins the dedup arithmetic: each (degree, µ,
// form) triple is solved exactly once and every other request —
// including all cells that differ only in workers — is served from the
// cache. tiny() has 2 degrees × 2 µ × 2 forms = 8 unique solves out of
// 8 cells × 3 requests = 24.
func TestLoadtestCacheSharing(t *testing.T) {
	var out bytes.Buffer
	if err := Loadtest(&out, tiny()); err != nil {
		t.Fatalf("Loadtest: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "total: 24 requests (8 solved, 16 cache-shared), 0 errors") {
		t.Fatalf("totals line disagrees with the dedup arithmetic:\n%s", out.String())
	}
}

// TestLoadtestExpositionGolden scrapes the server's /metrics endpoint
// mid-load and pins the scrubbed exposition: the family structure,
// label sets, and HELP/TYPE text must not drift, while sample values
// and scheduling-dependent per-phase lines are scrubbed out. The scrape
// happens over HTTP against a live rootd handler while loadtest
// requests are in flight.
func TestLoadtestExpositionGolden(t *testing.T) {
	tel := telemetry.New(telemetry.Config{})
	srv := server.New(server.Config{
		MaxConcurrent: 2,
		CacheEntries:  64,
		Telemetry:     tel,
	})
	running, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		running.Close(ctx)
	}()

	cfg := tiny()
	cfg.ServerURL = running.URL()
	cfg.LoadRequests = 4
	done := make(chan error, 1)
	go func() {
		var out bytes.Buffer
		done <- Loadtest(&out, cfg)
	}()

	scrape := func() []byte {
		resp, err := http.Get(running.URL() + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape: status %d err %v", resp.StatusCode, err)
		}
		return data
	}

	// Mid-load: wait until at least one solve finished, then scrape while
	// the rest of the burst is still being served.
	var expo []byte
	deadline := time.Now().Add(30 * time.Second)
	for {
		expo = scrape()
		if bytes.Contains(expo, []byte(`realroots_solves_total{outcome="ok"} 0`)) {
			if time.Now().After(deadline) {
				t.Fatal("no solve completed within 30s")
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		break
	}
	if err := telemetry.ValidateExposition(expo); err != nil {
		t.Fatalf("mid-load exposition invalid: %v\n%s", err, expo)
	}
	if err := <-done; err != nil {
		t.Fatalf("Loadtest: %v", err)
	}

	checkGolden(t, "loadtest_metrics", ScrubExposition(expo))
}

// TestScrubExposition pins the scrubber itself: HELP/TYPE survive,
// values become '#', phase-keyed samples vanish.
func TestScrubExposition(t *testing.T) {
	in := strings.Join([]string{
		"# HELP realroots_roots_total Real roots.",
		"# TYPE realroots_roots_total counter",
		"realroots_roots_total 160",
		`realroots_phase_ops_total{phase="tree",op="mul"} 17`,
		`realroots_phase_bits_total{phase="tree",op="mul",cost="model"} 9`,
		`realroots_operand_bits_ops_total{phase="tree",bits="[16,32)"} 3`,
		`rootd_requests_total{code="ok"} 12`,
		"realroots_solve_seconds_total 0.25",
		"",
	}, "\n")
	want := strings.Join([]string{
		"# HELP realroots_roots_total Real roots.",
		"# TYPE realroots_roots_total counter",
		"realroots_roots_total #",
		`rootd_requests_total{code="ok"} #`,
		"realroots_solve_seconds_total #",
		"",
	}, "\n")
	if got := ScrubExposition([]byte(in)); got != want {
		t.Errorf("ScrubExposition:\n got %q\nwant %q", got, want)
	}
}

package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"realroots/internal/oracle"
	"realroots/internal/oracle/stress"
	"realroots/internal/workload"
)

// Conformance runs the differential-oracle sweep: every case from
// oracle.Cases (all workload families, degrees 2–40, µ ∈
// {4,8,16,24,32}; ≥ 200 cases unless cfg.ConformanceChecks caps it) is
// solved by the parallel algorithm and cross-checked bit-for-bit
// against the Sturm, VCA, and math/big reference oracles; a rotating
// subset additionally runs the metamorphic laws (translation, 2^k
// scaling, coefficient reversal, squarefree reduction) and the
// scheduler-determinism P-sweep. Any mismatch fails the experiment.
func Conformance(w io.Writer, cfg Config) error {
	seed := int64(1)
	if len(cfg.Seeds) > 0 {
		seed = cfg.Seeds[0]
	}
	cases := oracle.Cases(seed, cfg.ConformanceChecks)

	type agg struct {
		count       int
		minDeg      int
		maxDeg      int
		metamorphic int
	}
	byFamily := map[string]*agg{}
	mismatches := 0
	for i, c := range cases {
		if err := cfg.interrupted(); err != nil {
			return err
		}
		a := byFamily[c.Family]
		if a == nil {
			a = &agg{minDeg: c.Degree, maxDeg: c.Degree}
			byFamily[c.Family] = a
		}
		a.count++
		if c.Degree < a.minDeg {
			a.minDeg = c.Degree
		}
		if c.Degree > a.maxDeg {
			a.maxDeg = c.Degree
		}
		// Alternate the subject's worker count so both the sequential
		// path and the task-queue scheduler face every oracle.
		workers := 1
		if i%2 == 1 {
			workers = 4
		}
		if err := oracle.Check(c.P, c.Mu, workers); err != nil {
			mismatches++
			fmt.Fprintf(w, "MISMATCH %s deg=%d µ=%d P=%d: %v\n", c.Family, c.Degree, c.Mu, workers, err)
			continue
		}
		// Metamorphic laws on every 8th case (they multiply the solve
		// count by ~6, so a rotating subset keeps the suite fast while
		// every family is covered across the sweep).
		if i%8 == 0 && c.Degree <= 24 {
			a.metamorphic++
			if err := oracle.CheckLaws(c.P, c.Mu, workers, seed+int64(i)); err != nil {
				mismatches++
				fmt.Fprintf(w, "METAMORPHIC %s deg=%d µ=%d: %v\n", c.Family, c.Degree, c.Mu, err)
			}
		}
	}

	fmt.Fprintf(w, "Conformance: algorithm vs {sturm, vca, bigref} oracles + metamorphic laws\n")
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "family\tcases\tdegrees\tmetamorphic\t")
	names := make([]string, 0, len(byFamily))
	for name := range byFamily {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := byFamily[name]
		fmt.Fprintf(tw, "%s\t%d\t%d–%d\t%d\t\n", name, a.count, a.minDeg, a.maxDeg, a.metamorphic)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Scheduler-determinism stress: one representative task graph per
	// precision, P ∈ {1,2,4,8,16} with chaos injection.
	stressed := 0
	for _, mu := range cfg.Mus {
		p := workload.CharPoly01(seed, 14)
		if err := stress.SweepAndVerify(p, mu, stress.DefaultWorkers, seed+int64(mu)); err != nil {
			mismatches++
			fmt.Fprintf(w, "STRESS µ=%d: %v\n", mu, err)
			continue
		}
		stressed++
	}
	fmt.Fprintf(w, "stress: %d P-sweeps over P=%v, deterministic\n", stressed, stress.DefaultWorkers)

	fmt.Fprintf(w, "total: %d cases, %d mismatches\n", len(cases), mismatches)
	if mismatches > 0 {
		return fmt.Errorf("conformance: %d mismatches", mismatches)
	}
	return nil
}

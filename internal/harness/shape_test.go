package harness

import (
	"testing"

	"realroots/internal/core"
	"realroots/internal/interval"
	"realroots/internal/metrics"
	"realroots/internal/sturm"
	"time"
)

// These tests assert the *shapes* the reproduction must preserve
// (DESIGN.md §3): who wins, what grows, where the crossover falls.
// They run real workloads, so they are skipped in -short mode.

func TestShapeTimeGrowsWithDegreeAndPrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	seconds := func(n int, mu uint) float64 {
		p := Instance(1, n)
		best := 1e18
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := core.FindRoots(p, core.Options{Mu: mu}); err != nil {
				t.Fatal(err)
			}
			if s := time.Since(start).Seconds(); s < best {
				best = s
			}
		}
		return best
	}
	// Table 2 shape: strong growth with n at fixed µ...
	t10, t40 := seconds(10, 16), seconds(40, 16)
	if t40 < 8*t10 {
		t.Errorf("time(n=40)/time(n=10) = %.1f, expected strong (≳ n³) growth", t40/t10)
	}
	// ... and milder growth with µ at fixed n (the paper's rows grow by
	// ~4x from µ=4 to µ=32 at small n, less at large n).
	m4, m32 := seconds(20, 4), seconds(20, 32)
	if m32 < m4 {
		t.Errorf("time should grow with µ: %.4fs at µ=4 vs %.4fs at µ=32", m4, m32)
	}
	if m32 > 20*m4 {
		t.Errorf("µ growth too strong: %.1fx", m32/m4)
	}
}

func TestShapeFigure8Crossover(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Figure 8: the Sturm baseline wins at small degree; the parallel
	// algorithm (even on one worker) wins for degrees above ≈ 15, with a
	// ratio that keeps growing.
	const mu = 30
	ratio := func(n int) float64 {
		p := Instance(1, n)
		bestAlg, bestSturm := 1e18, 1e18
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			if _, err := core.FindRoots(p, core.Options{Mu: mu}); err != nil {
				t.Fatal(err)
			}
			if s := time.Since(start).Seconds(); s < bestAlg {
				bestAlg = s
			}
			start = time.Now()
			if _, err := sturm.FindRoots(p, mu, metrics.Ctx{}); err != nil {
				t.Fatal(err)
			}
			if s := time.Since(start).Seconds(); s < bestSturm {
				bestSturm = s
			}
		}
		return bestSturm / bestAlg
	}
	r10 := ratio(10)
	r30 := ratio(30)
	if r10 > 1.4 {
		t.Errorf("at n=10 the baseline should not lose clearly: sturm/alg = %.2f", r10)
	}
	if r30 < 1.1 {
		t.Errorf("at n=30 the algorithm should win: sturm/alg = %.2f", r30)
	}
	if r30 <= r10 {
		t.Errorf("ratio should grow with degree: %.2f at n=10 vs %.2f at n=30", r10, r30)
	}
}

func TestShapeSimulatedSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	// Tables 3-7 shape: speedup grows with P, near-linear at P=2..4,
	// clearly sublinear at P=16.
	p := Instance(1, 45)
	makespan := func(workers int) float64 {
		best := 1e18
		for rep := 0; rep < 2; rep++ {
			res, err := core.FindRoots(p, core.Options{Mu: 32, SimulateWorkers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if s := res.Stats.SimMakespan.Seconds(); s < best {
				best = s
			}
		}
		return best
	}
	m1 := makespan(1)
	sp := map[int]float64{}
	for _, w := range []int{2, 4, 8, 16} {
		sp[w] = m1 / makespan(w)
	}
	if sp[2] < 1.5 || sp[2] > 2.4 {
		t.Errorf("speedup at P=2 is %.2f, want ≈ 2", sp[2])
	}
	if sp[4] < 2.2 {
		t.Errorf("speedup at P=4 is %.2f, want ≳ 3", sp[4])
	}
	if sp[8] <= sp[4]*0.9 {
		t.Errorf("speedup should keep growing: P=4 %.2f vs P=8 %.2f", sp[4], sp[8])
	}
	if sp[16] > 16 {
		t.Errorf("speedup at P=16 is %.2f — impossible", sp[16])
	}
}

func TestShapeHybridBeatsBisectionAtHighPrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	p := Instance(1, 20)
	evals := func(m interval.Method) int64 {
		var c metrics.Counters
		if _, err := core.FindRoots(p, core.Options{Mu: 256, Method: m, Counters: &c}); err != nil {
			t.Fatal(err)
		}
		rep := c.Snapshot()
		return rep.Sum(metrics.PhaseSieve, metrics.PhaseBisection, metrics.PhaseNewton).Evals
	}
	hybrid, bisect := evals(interval.MethodHybrid), evals(interval.MethodBisection)
	if hybrid >= bisect {
		t.Errorf("hybrid used %d refinement evals, bisection %d", hybrid, bisect)
	}
}

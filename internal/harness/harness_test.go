package harness

import (
	"bytes"
	"strings"
	"testing"
)

func tiny() Config {
	return Config{
		Degrees: []int{8, 12},
		Mus:     []uint{4, 16},
		Procs:   []int{1, 2},
		Seeds:   []int64{1},
		Reps:    1,
		// Keep the conformance experiment to a prefix of its suite so
		// TestAllExperimentsRun stays quick; the full ≥200-case sweep
		// runs via `rootbench -exp conformance`.
		ConformanceChecks: 12,
	}
}

func TestInstanceCached(t *testing.T) {
	a := Instance(1, 10)
	b := Instance(1, 10)
	if a != b {
		t.Fatal("Instance not cached")
	}
	if a.Degree() != 10 {
		t.Fatalf("degree %d", a.Degree())
	}
}

func runExperiment(t *testing.T, name string) string {
	t.Helper()
	f, ok := Experiments[name]
	if !ok {
		t.Fatalf("experiment %q not registered", name)
	}
	var buf bytes.Buffer
	if err := f(&buf, tiny()); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return buf.String()
}

func TestAllExperimentsRun(t *testing.T) {
	for _, name := range Names() {
		out := runExperiment(t, name)
		if len(out) == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	out := runExperiment(t, "table2")
	if !strings.Contains(out, "µ=4") || !strings.Contains(out, "µ=16") {
		t.Errorf("missing µ columns:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header line + column line + one row per degree.
	if len(lines) != 2+len(tiny().Degrees) {
		t.Errorf("unexpected row count %d:\n%s", len(lines), out)
	}
}

func TestSpeedupsContainBaselineColumn(t *testing.T) {
	out := runExperiment(t, "speedups")
	if !strings.Contains(out, "P=1") || !strings.Contains(out, "P=2") {
		t.Errorf("missing processor columns:\n%s", out)
	}
	// P=1 speedups are 1.00 by construction.
	if !strings.Contains(out, "1.00") {
		t.Errorf("missing baseline speedup:\n%s", out)
	}
}

func TestMultCountsRatiosSane(t *testing.T) {
	out := runExperiment(t, "figs2to5")
	if !strings.Contains(out, "predicted") || !strings.Contains(out, "observed") {
		t.Errorf("missing columns:\n%s", out)
	}
}

func TestVsSturmSkipsLargeDegrees(t *testing.T) {
	cfg := tiny()
	cfg.Degrees = []int{8, 40}
	var buf bytes.Buffer
	if err := VsSturm(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "40") {
		t.Errorf("degree 40 should be skipped (paper: PARI capped at 30):\n%s", buf.String())
	}
}

func TestNamesStable(t *testing.T) {
	a := Names()
	b := Names()
	if len(a) != len(Experiments) {
		t.Fatalf("Names() returned %d of %d", len(a), len(Experiments))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Names() not stable")
		}
	}
}

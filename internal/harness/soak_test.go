package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"realroots/internal/telemetry"
)

// TestSoakExpositionGolden runs the deterministic single-worker soak
// (tiny grid, virtual time) against a fresh hub and pins the scrubbed
// Prometheus exposition: every counter that doesn't measure wall time
// is exact and must not drift silently. Regenerate with -update.
func TestSoakExpositionGolden(t *testing.T) {
	cfg := tiny()
	cfg.Simulate = true
	cfg.Procs = []int{1}
	tel := telemetry.New(telemetry.Config{})
	cfg.Telemetry = tel
	var out bytes.Buffer
	if err := Soak(&out, cfg); err != nil {
		t.Fatalf("Soak: %v", err)
	}

	var expo bytes.Buffer
	if err := tel.Registry().WritePrometheus(&expo); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := telemetry.ValidateExposition(expo.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, expo.String())
	}

	got := scrub(expo.String())
	path := filepath.Join("testdata", "golden", "soak_metrics.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("soak exposition drifted from golden (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSoakDurationBound checks the wall-clock stop condition.
func TestSoakDurationBound(t *testing.T) {
	cfg := tiny()
	cfg.Simulate = true
	cfg.SoakDuration = 50 * time.Millisecond
	cfg.SoakSolves = 0
	start := time.Now()
	var out bytes.Buffer
	if err := Soak(&out, cfg); err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("duration-bounded soak ran far past its budget")
	}
	if !bytes.Contains(out.Bytes(), []byte("flight recorder:")) {
		t.Fatalf("soak summary incomplete:\n%s", out.String())
	}
}

// TestSoakUsesPrivateHub checks soak works without a configured hub.
func TestSoakUsesPrivateHub(t *testing.T) {
	cfg := tiny()
	cfg.Simulate = true
	cfg.SoakSolves = 2
	var out bytes.Buffer
	if err := Soak(&out, cfg); err != nil {
		t.Fatalf("Soak: %v", err)
	}
	if !bytes.Contains(out.Bytes(), []byte("2 solves in")) {
		t.Fatalf("soak summary:\n%s", out.String())
	}
}

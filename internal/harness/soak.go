package harness

import (
	"fmt"
	"io"
	"time"

	"realroots/internal/core"
	"realroots/internal/telemetry"
	"realroots/internal/trace"
)

// DefaultSoakSolves is the soak workload when neither Config.SoakSolves
// nor Config.SoakDuration is set — small and fixed so the default run
// (and its golden output) is deterministic.
const DefaultSoakSolves = 16

// soakTraceEvery attaches a fresh Tracer to every soakTraceEvery-th
// solve so the telemetry registry's utilization gauges stay fed during
// a soak without paying unbounded trace memory on every solve.
const soakTraceEvery = 5

// Soak is the long-running operational workload behind
// `rootbench -exp soak`: it cycles through the configured grid cells
// solving each with telemetry attached, exercising the structured solve
// log, the metrics registry, and the flight recorder under sustained
// load, then summarizes the hub's registry. It is the workload CI and
// operators point the -telemetry debug server at.
func Soak(w io.Writer, cfg Config) error {
	tel := cfg.Telemetry
	if tel == nil {
		tel = telemetry.New(telemetry.Config{})
	}
	solves := cfg.SoakSolves
	dur := cfg.SoakDuration
	if solves <= 0 && dur <= 0 {
		solves = DefaultSoakSolves
	}

	type cell struct {
		n     int
		mu    uint
		procs int
	}
	var cells []cell
	for _, n := range cfg.Degrees {
		for _, mu := range cfg.Mus {
			for _, procs := range cfg.Procs {
				cells = append(cells, cell{n, mu, procs})
			}
		}
	}

	fmt.Fprintf(w, "Soak: sustained solve workload over %d grid cells (telemetry always-on)\n", len(cells))
	start := time.Now()
	done := 0
	for {
		if err := cfg.interrupted(); err != nil {
			return err
		}
		if solves > 0 && done >= solves {
			break
		}
		if dur > 0 && time.Since(start) >= dur {
			break
		}
		c := cells[done%len(cells)]
		seed := cfg.Seeds[done%len(cfg.Seeds)]
		p := Instance(seed, c.n)
		opts := core.Options{Mu: c.mu, Ctx: cfg.Ctx, Profile: cfg.Profile, Telemetry: tel}
		if cfg.Simulate {
			opts.SimulateWorkers = c.procs
		} else {
			opts.Workers = c.procs
		}
		var tr *trace.Tracer
		if done%soakTraceEvery == 0 {
			tr = trace.New()
			opts.Tracer = tr
		}
		if _, err := core.FindRoots(p, opts); err != nil {
			if err := cfg.interrupted(); err != nil {
				return err
			}
			return fmt.Errorf("soak solve %d (n=%d µ=%d P=%d): %w", done, c.n, c.mu, c.procs, err)
		}
		done++
	}
	elapsed := time.Since(start)

	tot := tel.Registry().Totals()
	failures := int64(0)
	for o, n := range tot.Solves {
		if o != telemetry.OutcomeOK {
			failures += n
		}
	}
	fmt.Fprintf(w, "%d solves in %.3fs (%.1f solves/s), %d failures\n",
		done, elapsed.Seconds(), float64(done)/elapsed.Seconds(), failures)
	fmt.Fprint(w, "outcomes:")
	for _, o := range telemetry.Outcomes {
		if n := tot.Solves[o]; n > 0 {
			fmt.Fprintf(w, " %s=%d", o, n)
		}
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "roots %d, bit ops %d, sched tasks %d, panics %d, retries %d\n",
		tot.Roots, tot.BitOps, tot.SchedTasks, tot.Panics, tot.Retries)
	fmt.Fprintf(w, "flight recorder: %d records published, capacity %d\n",
		tel.Flight().Written(), tel.Flight().Capacity())
	return nil
}

package harness

import (
	"fmt"
	"io"
	"time"

	"realroots/internal/core"
	"realroots/internal/trace"
)

// Utilization runs one traced sequential solve of the grid's largest
// (n, µ) cell and prints the trace's utilization summary: per-phase
// wall time, task-kind busy time, and the control lane's timeline.
// With one worker the span *structure* (phases, task kinds, counts) is
// fully deterministic; only the times vary run to run.
func Utilization(w io.Writer, cfg Config) error {
	n := cfg.Degrees[len(cfg.Degrees)-1]
	mu := cfg.Mus[len(cfg.Mus)-1]
	seed := cfg.Seeds[0]
	if err := cfg.interrupted(); err != nil {
		return err
	}
	p := Instance(seed, n)
	tr := trace.New()
	if _, err := core.FindRoots(p, core.Options{Mu: mu, Tracer: tr, Ctx: cfg.Ctx}); err != nil {
		if err := cfg.interrupted(); err != nil {
			return err
		}
		return fmt.Errorf("utilization n=%d µ=%d seed=%d: %w", n, mu, seed, err)
	}
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("utilization: invalid trace: %w", err)
	}
	fmt.Fprintf(w, "Utilization: traced sequential run (n=%d, µ=%d, P=1, seed=%d)\n", n, mu, seed)
	return tr.Summarize().WriteText(w)
}

// TraceRun executes one traced solve of the grid's largest (n, µ) cell
// on the grid's largest worker count, writes the Chrome trace-event
// JSON (chrome://tracing, Perfetto) to traceW, and prints the plain-
// text utilization summary to w.
func TraceRun(w io.Writer, cfg Config, traceW io.Writer) error {
	n := cfg.Degrees[len(cfg.Degrees)-1]
	mu := cfg.Mus[len(cfg.Mus)-1]
	procs := maxInt(cfg.Procs)
	seed := cfg.Seeds[0]
	if err := cfg.interrupted(); err != nil {
		return err
	}
	p := Instance(seed, n)
	tr := trace.New()
	start := time.Now()
	res, err := core.FindRoots(p, core.Options{Mu: mu, Workers: procs, Tracer: tr, Ctx: cfg.Ctx})
	if err != nil {
		if err := cfg.interrupted(); err != nil {
			return err
		}
		return fmt.Errorf("trace n=%d µ=%d P=%d seed=%d: %w", n, mu, procs, seed, err)
	}
	wall := time.Since(start)
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("trace: invalid trace: %w", err)
	}
	if err := tr.WriteChrome(traceW); err != nil {
		return err
	}
	fmt.Fprintf(w, "Traced run: n=%d µ=%d P=%d seed=%d — %d roots in %.3fs\n",
		n, mu, procs, seed, res.NStar, wall.Seconds())
	return tr.Summarize().WriteText(w)
}

// Package harness runs the repository's reproduction experiments: every
// table and figure of the paper's evaluation section (§5) has a runner
// here, invoked by cmd/rootbench and by the root-level benchmarks. See
// DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
// results.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"realroots/internal/core"
	"realroots/internal/interval"
	"realroots/internal/metrics"
	"realroots/internal/model"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/sturm"
	"realroots/internal/telemetry"
	"realroots/internal/vca"
	"realroots/internal/workload"
)

// Config selects the workload grid. The zero value is not useful; use
// Default or Quick.
type Config struct {
	Degrees []int  // polynomial degrees (paper: 10, 15, …, 70)
	Mus     []uint // precisions (paper: 4, 8, 16, 24, 32)
	Procs   []int  // worker counts (paper: 1, 2, 4, 8, 16)
	Seeds   []int64
	Reps    int // timing repetitions; the minimum is reported
	// Simulate replaces wall-clock multiprocessor timing with the
	// virtual-time scheduler simulation (sched.NewSimulatedPool): the
	// real task graph runs on one OS thread and measured task durations
	// are list-scheduled onto P virtual processors. Required to
	// reproduce the speedup experiments on hosts with fewer cores than
	// the paper's 20-processor machine. Affects the Times and Speedups
	// experiments only.
	Simulate bool
	// ConformanceChecks caps the differential-oracle case count in the
	// conformance experiment; 0 runs the full ≥200-case suite. Tests set
	// a small cap to stay fast.
	ConformanceChecks int
	// Profile selects the arithmetic profile every experiment solves
	// under (default mp.Schoolbook — the paper's cost model, which the
	// golden outputs assume). The abl2 ablation ignores it and compares
	// both profiles directly.
	Profile mp.Profile
	// ParallelMul offers the solver's huge balanced products to the
	// scheduler as panel tasks (core.Options.ParallelMul). Only
	// meaningful with the fast profile and real workers; the solver
	// ignores it under simulation or schoolbook arithmetic, and results
	// are bit-identical either way.
	ParallelMul bool
	// GridProfiles, when non-empty, makes the JSON grid experiment
	// (RunGrid) measure every cell once per listed profile, tagging each
	// cell with the profile name. Empty means just Profile.
	GridProfiles []mp.Profile
	// Ctx, if non-nil, interrupts the sweep: once it is done, every
	// experiment returns ErrInterrupted at its next grid cell, and the
	// in-flight solve itself is canceled through the solver's own
	// cancellation path. cmd/rootbench wires SIGINT to this.
	Ctx context.Context
	// Telemetry, if non-nil, attaches every solve the experiments run to
	// the hub (cmd/rootbench wires -telemetry/-slog/-flight-out here).
	// The soak experiment creates a private hub when this is nil.
	Telemetry *telemetry.Telemetry
	// SoakSolves bounds the soak experiment by solve count; SoakDuration
	// bounds it by wall time (whichever is set; both set = whichever
	// ends first). Neither set runs the deterministic default of
	// DefaultSoakSolves solves.
	SoakSolves   int
	SoakDuration time.Duration
	// ServerURL points the loadtest experiment at a running rootd server.
	// Empty starts an in-process server on an ephemeral port, which keeps
	// the experiment hermetic (the golden-test default).
	ServerURL string
	// LoadRequests is the number of loadtest requests per grid cell
	// (default 3), LoadConcurrency the number of client goroutines
	// (default 8), and LoadTenants the number of tenants the requests are
	// spread over (default 4).
	LoadRequests    int
	LoadConcurrency int
	LoadTenants     int
	// LoadJSON, if non-nil, receives the loadtest's bench-grid/v1 report
	// with per-cell latency percentiles (cmd/rootbench wires -load-out).
	LoadJSON io.Writer
}

// ErrInterrupted reports that an experiment stopped early because
// Config.Ctx was done. The rows already written are valid results.
var ErrInterrupted = errors.New("harness: interrupted")

// interrupted is the per-cell poll every experiment loop runs.
func (cfg Config) interrupted() error {
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		return ErrInterrupted
	}
	return nil
}

// Default mirrors the paper's full grid. A complete run takes a while;
// Quick is the smoke-test subset.
func Default() Config {
	var degrees []int
	for n := 10; n <= 70; n += 5 {
		degrees = append(degrees, n)
	}
	return Config{
		Degrees: degrees,
		Mus:     []uint{4, 8, 16, 24, 32},
		Procs:   []int{1, 2, 4, 8, 16},
		Seeds:   []int64{1, 2, 3},
		Reps:    1,
	}
}

// Quick is a reduced grid for smoke tests and quick looks.
func Quick() Config {
	return Config{
		Degrees: []int{10, 15, 20},
		Mus:     []uint{8, 32},
		Procs:   []int{1, 2, 4},
		Seeds:   []int64{1},
		Reps:    1,
	}
}

// instance caches workload polynomials: generating a degree-70
// characteristic polynomial is itself Θ(n⁴) work and must not be timed.
var (
	instMu    sync.Mutex
	instCache = map[[2]int64]*poly.Poly{}
)

// Instance returns the paper-style input for (seed, n): the
// characteristic polynomial of a random symmetric 0-1 matrix, cached.
func Instance(seed int64, n int) *poly.Poly {
	instMu.Lock()
	defer instMu.Unlock()
	key := [2]int64{seed, int64(n)}
	if p, ok := instCache[key]; ok {
		return p
	}
	p := workload.CharPoly01(seed, n)
	instCache[key] = p
	return p
}

// run executes one configuration and returns the wall time (minimum
// over cfg.Reps runs) and the result.
func (cfg Config) run(p *poly.Poly, mu uint, workers int, counters *metrics.Counters) (time.Duration, *core.Result, error) {
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(math.MaxInt64)
	var res *core.Result
	for r := 0; r < reps; r++ {
		if err := cfg.interrupted(); err != nil {
			return 0, nil, err
		}
		if counters != nil && r == 0 {
			counters.Reset()
		}
		var cnt *metrics.Counters
		if r == 0 {
			cnt = counters
		}
		start := time.Now()
		out, err := core.FindRoots(p, core.Options{Mu: mu, Workers: workers, Counters: cnt, Ctx: cfg.Ctx, Profile: cfg.Profile, Telemetry: cfg.Telemetry})
		if err != nil {
			if errors.Is(err, core.ErrCanceled) || errors.Is(err, core.ErrDeadline) {
				return 0, nil, ErrInterrupted
			}
			return 0, nil, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
		res = out
	}
	return best, res, nil
}

// avgSeconds runs every seed and returns the mean time in seconds:
// wall time normally, or the virtual makespan in simulation mode.
func (cfg Config) avgSeconds(n int, mu uint, workers int) (float64, error) {
	var total float64
	for _, seed := range cfg.Seeds {
		p := Instance(seed, n)
		if cfg.Simulate {
			best := math.Inf(1)
			reps := cfg.Reps
			if reps < 1 {
				reps = 1
			}
			for r := 0; r < reps; r++ {
				if err := cfg.interrupted(); err != nil {
					return 0, err
				}
				res, err := core.FindRoots(p, core.Options{Mu: mu, SimulateWorkers: workers, Profile: cfg.Profile, Telemetry: cfg.Telemetry})
				if err != nil {
					return 0, fmt.Errorf("n=%d µ=%d P=%d seed=%d: %w", n, mu, workers, seed, err)
				}
				if s := res.Stats.SimMakespan.Seconds(); s < best {
					best = s
				}
			}
			total += best
			continue
		}
		d, _, err := cfg.run(p, mu, workers, nil)
		if err != nil {
			return 0, fmt.Errorf("n=%d µ=%d P=%d seed=%d: %w", n, mu, workers, seed, err)
		}
		total += d.Seconds()
	}
	return total / float64(len(cfg.Seeds)), nil
}

// mDigits returns the paper's m(n) column: the coefficient size of the
// degree-n instances in decimal digits (averaged over seeds). The
// paper's empirical m(n) values — m(70) = 36 — match this unit: our
// degree-70 instances have ≈118-bit ≈ 36-digit coefficients.
func (cfg Config) mDigits(n int) int {
	total := 0.0
	for _, seed := range cfg.Seeds {
		total += float64(Instance(seed, n).MaxCoeffBits()) * math.Log10(2)
	}
	return int(math.Ceil(total / float64(len(cfg.Seeds))))
}

// Table2 reproduces Table 2: single-processor running times for every
// (n, µ) in the grid, with the empirical m(n) column.
func Table2(w io.Writer, cfg Config) error {
	cfg.Simulate = false // single-processor wall time is always real
	fmt.Fprintln(w, "Table 2: single-processor running times (seconds)")
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "n\tm(n)\t")
	for _, mu := range cfg.Mus {
		fmt.Fprintf(tw, "µ=%d\t", mu)
	}
	fmt.Fprintln(tw)
	for _, n := range cfg.Degrees {
		fmt.Fprintf(tw, "%d\t%d\t", n, cfg.mDigits(n))
		for _, mu := range cfg.Mus {
			s, err := cfg.avgSeconds(n, mu, 1)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%.3f\t", s)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Times reproduces Tables 8-12 (and the data behind Figures 9-13):
// running times for every (n, P) pair at each µ.
func Times(w io.Writer, cfg Config) error {
	for _, mu := range cfg.Mus {
		fmt.Fprintf(w, "Running times (seconds) for µ = %d (Tables 8-12 / Figures 9-13)\n", mu)
		tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprint(tw, "n\t")
		for _, p := range cfg.Procs {
			fmt.Fprintf(tw, "P=%d\t", p)
		}
		fmt.Fprintln(tw)
		for _, n := range cfg.Degrees {
			fmt.Fprintf(tw, "%d\t", n)
			for _, procs := range cfg.Procs {
				s, err := cfg.avgSeconds(n, mu, procs)
				if err != nil {
					return err
				}
				fmt.Fprintf(tw, "%.3f\t", s)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Speedups reproduces Tables 3-7: speedups relative to the one-worker
// run of the parallel program.
func Speedups(w io.Writer, cfg Config) error {
	for _, mu := range cfg.Mus {
		fmt.Fprintf(w, "Speedups vs 1 worker for µ = %d (Tables 3-7)\n", mu)
		tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprint(tw, "n\t")
		for _, p := range cfg.Procs {
			fmt.Fprintf(tw, "P=%d\t", p)
		}
		fmt.Fprintln(tw)
		for _, n := range cfg.Degrees {
			// One measurement per cell; the P=1 cell itself is the
			// baseline (falling back to the first column), so the
			// baseline column reads exactly 1.00 as in the paper.
			times := make([]float64, len(cfg.Procs))
			base := -1.0
			for i, procs := range cfg.Procs {
				s, err := cfg.avgSeconds(n, mu, procs)
				if err != nil {
					return err
				}
				times[i] = s
				if procs == 1 {
					base = s
				}
			}
			if base < 0 {
				base = times[0]
			}
			fmt.Fprintf(tw, "%d\t", n)
			for _, s := range times {
				fmt.Fprintf(tw, "%.2f\t", base/s)
			}
			fmt.Fprintln(tw)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// params builds the model parameters for an instance.
func params(p *poly.Poly, mu uint) model.Params {
	n := p.Degree()
	return model.Params{
		N:  n,
		M:  p.MaxCoeffBits(),
		Mu: mu,
		R:  p.RootBound().BitLen() - 1,
		// Eigenvalues of symmetric 0-1 matrices lie within ±n.
		Range: int(math.Ceil(math.Log2(float64(2 * n)))),
	}
}

// MultCounts reproduces Figures 2-5: predicted vs observed
// multiplication counts, per phase and in total, for each µ.
func MultCounts(w io.Writer, cfg Config) error {
	for _, mu := range cfg.Mus {
		fmt.Fprintf(w, "Predicted vs observed multiplication counts, µ = %d (Figures 2-5)\n", mu)
		tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "n\tpredicted\tobserved\tratio\tpred-rem\tobs-rem\tpred-tree\tobs-tree\tpred-intv\tobs-intv\t")
		for _, n := range cfg.Degrees {
			p := Instance(cfg.Seeds[0], n)
			var c metrics.Counters
			if _, _, err := cfg.run(p, mu, 1, &c); err != nil {
				return err
			}
			rep := c.Snapshot()
			pred := params(p, mu).Predict()
			obsIntv := rep.Sum(metrics.PhasePreInterval, metrics.PhaseSieve, metrics.PhaseBisection, metrics.PhaseNewton).Muls
			predIntv := pred[metrics.PhasePreInterval].Muls + pred[metrics.PhaseSieve].Muls +
				pred[metrics.PhaseBisection].Muls + pred[metrics.PhaseNewton].Muls
			obsTot := rep.Total().Muls
			predTot := pred.Total().Muls
			fmt.Fprintf(tw, "%d\t%.0f\t%d\t%.2f\t%.0f\t%d\t%.0f\t%d\t%.0f\t%d\t\n",
				n, predTot, obsTot, predTot/float64(obsTot),
				pred[metrics.PhaseRemainder].Muls, rep.Phases[metrics.PhaseRemainder].Muls,
				pred[metrics.PhaseTree].Muls, rep.Phases[metrics.PhaseTree].Muls,
				predIntv, obsIntv)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// BisectionCounts reproduces Figure 6: predicted vs observed
// multiplication counts in the bisection sub-phase at the largest µ in
// the grid (the paper uses µ = 32).
func BisectionCounts(w io.Writer, cfg Config) error {
	mu := cfg.Mus[len(cfg.Mus)-1]
	fmt.Fprintf(w, "Bisection sub-phase multiplication counts, µ = %d (Figure 6)\n", mu)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "n\tpredicted\tobserved\tratio\t")
	for _, n := range cfg.Degrees {
		p := Instance(cfg.Seeds[0], n)
		var c metrics.Counters
		if _, _, err := cfg.run(p, mu, 1, &c); err != nil {
			return err
		}
		obs := c.Snapshot().Phases[metrics.PhaseBisection].Muls
		pred := params(p, mu).IntervalPhase(metrics.PhaseBisection).Muls
		fmt.Fprintf(tw, "%d\t%.0f\t%d\t%.2f\t\n", n, pred, obs, pred/float64(obs))
	}
	return tw.Flush()
}

// BisectionBits reproduces Figure 7: predicted vs observed bit
// complexity of the bisection sub-phase multiplications. The predictions
// use the Collins size bounds and are expected to be weak upper bounds —
// that gap is the paper's own conclusion.
func BisectionBits(w io.Writer, cfg Config) error {
	mu := cfg.Mus[len(cfg.Mus)-1]
	fmt.Fprintf(w, "Bisection sub-phase bit complexity, µ = %d (Figure 7)\n", mu)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "n\tpredicted\tobserved\tpred/obs\t")
	for _, n := range cfg.Degrees {
		p := Instance(cfg.Seeds[0], n)
		var c metrics.Counters
		if _, _, err := cfg.run(p, mu, 1, &c); err != nil {
			return err
		}
		obs := c.Snapshot().Phases[metrics.PhaseBisection].MulBits
		pred := params(p, mu).IntervalPhase(metrics.PhaseBisection).Bits
		fmt.Fprintf(tw, "%d\t%.3g\t%.3g\t%.1f\t\n", n, pred, float64(obs), pred/float64(obs))
	}
	return tw.Flush()
}

// VsSturm reproduces Figure 8: the parallel algorithm on one worker
// against the sequential Sturm baseline (the PARI stand-in), at µ = 30.
// A second sequential baseline — Descartes/VCA isolation — is reported
// alongside, since modern comparators (FLINT et al.) are VCA-family.
func VsSturm(w io.Writer, cfg Config) error {
	const mu = 30
	fmt.Fprintf(w, "One-worker algorithm vs sequential baselines, µ = %d (Figure 8)\n", mu)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "n\talgorithm(s)\tsturm(s)\tvca(s)\tsturm/alg\tvca/alg\t")
	for _, n := range cfg.Degrees {
		if n > 30 {
			continue // the paper could not run PARI beyond degree 30
		}
		algo, err := cfg.avgSeconds(n, mu, 1)
		if err != nil {
			return err
		}
		var sturmT, vcaT float64
		for _, seed := range cfg.Seeds {
			if err := cfg.interrupted(); err != nil {
				return err
			}
			p := Instance(seed, n)
			start := time.Now()
			if _, err := sturm.FindRoots(p, mu, metrics.Ctx{}); err != nil {
				return fmt.Errorf("sturm n=%d seed=%d: %w", n, seed, err)
			}
			sturmT += time.Since(start).Seconds()
			start = time.Now()
			if _, err := vca.FindRoots(p, mu, metrics.Ctx{}); err != nil {
				return fmt.Errorf("vca n=%d seed=%d: %w", n, seed, err)
			}
			vcaT += time.Since(start).Seconds()
		}
		sturmT /= float64(len(cfg.Seeds))
		vcaT /= float64(len(cfg.Seeds))
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\t%.2f\t%.2f\t\n", n, algo, sturmT, vcaT, sturmT/algo, vcaT/algo)
	}
	return tw.Flush()
}

// Table1 verifies Table 1 empirically: it fits growth exponents of the
// measured phase costs against n and prints them next to the paper's
// asymptotic claims.
func Table1(w io.Writer, cfg Config) error {
	mu := cfg.Mus[len(cfg.Mus)-1]
	type point struct {
		n                  int
		remMul, treeMul    float64
		remBits, treeBits  float64
		intvMul, intvEvals float64
	}
	var pts []point
	for _, n := range cfg.Degrees {
		p := Instance(cfg.Seeds[0], n)
		var c metrics.Counters
		if _, _, err := cfg.run(p, mu, 1, &c); err != nil {
			return err
		}
		rep := c.Snapshot()
		intv := rep.Sum(metrics.PhasePreInterval, metrics.PhaseSieve, metrics.PhaseBisection, metrics.PhaseNewton)
		pts = append(pts, point{
			n:        n,
			remMul:   float64(rep.Phases[metrics.PhaseRemainder].Muls),
			treeMul:  float64(rep.Phases[metrics.PhaseTree].Muls),
			remBits:  float64(rep.Phases[metrics.PhaseRemainder].MulBits),
			treeBits: float64(rep.Phases[metrics.PhaseTree].MulBits),
			intvMul:  float64(intv.Muls),
		})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].n < pts[j].n })
	fit := func(get func(point) float64) float64 {
		// Least-squares slope of log cost vs log n.
		var sx, sy, sxx, sxy float64
		for _, pt := range pts {
			x, y := math.Log(float64(pt.n)), math.Log(get(pt))
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		k := float64(len(pts))
		return (k*sxy - sx*sy) / (k*sxx - sx*sx)
	}
	fmt.Fprintf(w, "Table 1: measured growth exponents vs the paper's asymptotics (µ = %d)\n", mu)
	fmt.Fprintln(w, "(On this workload m(n) itself grows ≈ linearly in n — see Table 2's m(n)")
	fmt.Fprintln(w, "column — so the paper's O(n⁴(m+log n)²) bit bounds behave as ≈ n⁶ here.)")
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "phase\tquantity\tpaper\ton this workload\tmeasured exponent\t")
	fmt.Fprintf(tw, "remainder\tmultiplications\tO(n²)\tn²\t%.2f\t\n", fit(func(p point) float64 { return p.remMul }))
	fmt.Fprintf(tw, "remainder\tbit complexity\tO(n⁴(m+log n)²)\t≈n⁶\t%.2f\t\n", fit(func(p point) float64 { return p.remBits }))
	fmt.Fprintf(tw, "tree\tmultiplications\tO(n²)\tn²\t%.2f\t\n", fit(func(p point) float64 { return p.treeMul }))
	fmt.Fprintf(tw, "tree\tbit complexity\tO(n⁴(m+log n)²)\t≈n⁶\t%.2f\t\n", fit(func(p point) float64 { return p.treeBits }))
	fmt.Fprintf(tw, "interval\tmultiplications\tO(n²(log n + log X))\tn²·polylog\t%.2f\t\n", fit(func(p point) float64 { return p.intvMul }))
	return tw.Flush()
}

// Phases prints the per-phase share of multiplications and of
// multiplication bit complexity across the degree range — the balance
// the paper's §4 analysis predicts (remainder and tree phases dominate
// the bit complexity as n grows, while the interval phase dominates
// the multiplication count at high µ).
func Phases(w io.Writer, cfg Config) error {
	mu := cfg.Mus[len(cfg.Mus)-1]
	fmt.Fprintf(w, "Per-phase share of multiplications and bit complexity (µ = %d)\n", mu)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "n\trem-muls%\ttree-muls%\tintv-muls%\trem-bits%\ttree-bits%\tintv-bits%\t")
	for _, n := range cfg.Degrees {
		p := Instance(cfg.Seeds[0], n)
		var c metrics.Counters
		if _, _, err := cfg.run(p, mu, 1, &c); err != nil {
			return err
		}
		rep := c.Snapshot()
		intv := rep.Sum(metrics.PhasePreInterval, metrics.PhaseSieve, metrics.PhaseBisection, metrics.PhaseNewton)
		tot := rep.Total()
		pct := func(a, b int64) float64 {
			if b == 0 {
				return 0
			}
			return 100 * float64(a) / float64(b)
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n", n,
			pct(rep.Phases[metrics.PhaseRemainder].Muls, tot.Muls),
			pct(rep.Phases[metrics.PhaseTree].Muls, tot.Muls),
			pct(intv.Muls, tot.Muls),
			pct(rep.Phases[metrics.PhaseRemainder].MulBits, tot.MulBits),
			pct(rep.Phases[metrics.PhaseTree].MulBits, tot.MulBits),
			pct(intv.MulBits, tot.MulBits))
	}
	return tw.Flush()
}

// Ablations runs the repository's own design-choice experiments:
// interval methods, multiplication algorithms, and sequential vs
// parallel precomputation (DESIGN.md experiments abl1-abl3).
func Ablations(w io.Writer, cfg Config) error {
	n := cfg.Degrees[len(cfg.Degrees)-1]
	mu := cfg.Mus[len(cfg.Mus)-1]
	p := Instance(cfg.Seeds[0], n)

	fmt.Fprintf(w, "Ablation 1: interval-refinement methods (n=%d, µ=%d, 1 worker)\n", n, mu)
	tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "method\ttime(s)\trefinement evals\t")
	for _, m := range []interval.Method{interval.MethodHybrid, interval.MethodBisection, interval.MethodNewton} {
		if err := cfg.interrupted(); err != nil {
			return err
		}
		var c metrics.Counters
		start := time.Now()
		if _, err := core.FindRoots(p, core.Options{Mu: mu, Method: m, Counters: &c}); err != nil {
			return err
		}
		el := time.Since(start).Seconds()
		evals := c.Snapshot().Sum(metrics.PhaseSieve, metrics.PhaseBisection, metrics.PhaseNewton).Evals
		fmt.Fprintf(tw, "%v\t%.3f\t%d\t\n", m, el, evals)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nAblation 2: schoolbook vs Karatsuba multiplication (n=%d, µ=%d)\n", n, mu)
	tw = tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "multiplier\ttime(s)\t")
	for _, prof := range []mp.Profile{mp.Schoolbook, mp.Fast} {
		if err := cfg.interrupted(); err != nil {
			return err
		}
		start := time.Now()
		if _, err := core.FindRoots(p, core.Options{Mu: mu, Profile: prof}); err != nil {
			return err
		}
		el := time.Since(start).Seconds()
		name := "schoolbook (paper's mp)"
		if prof == mp.Fast {
			name = "karatsuba"
		}
		fmt.Fprintf(tw, "%s\t%.3f\t\n", name, el)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nAblation 3: precomputation scheduling (n=%d, µ=%d, %d workers)\n", n, mu, maxInt(cfg.Procs))
	tw = tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "precompute\ttotal(s)\tprecompute(s)\t")
	for _, seqPre := range []bool{false, true} {
		if err := cfg.interrupted(); err != nil {
			return err
		}
		res, err := core.FindRoots(p, core.Options{Mu: mu, Workers: maxInt(cfg.Procs), SequentialPrecompute: seqPre})
		if err != nil {
			return err
		}
		name := "parallel"
		if seqPre {
			name = "sequential (run-time option)"
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t\n", name, res.Stats.Total.Seconds(), res.Stats.Precompute.Seconds())
	}
	return tw.Flush()
}

func maxInt(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Experiments maps experiment ids (DESIGN.md §3) to runners.
var Experiments = map[string]func(io.Writer, Config) error{
	"conformance": Conformance,
	"phases":      Phases,
	"table1":      Table1,
	"table2":      Table2,
	"figs2to5":    MultCounts,
	"fig6":        BisectionCounts,
	"fig7":        BisectionBits,
	"fig8":        VsSturm,
	"times":       Times,
	"speedups":    Speedups,
	"ablations":   Ablations,
	"utilization": Utilization,
	"soak":        Soak,
	"loadtest":    Loadtest,
}

// Names returns the experiment ids in a stable order.
func Names() []string {
	names := make([]string, 0, len(Experiments))
	for name := range Experiments {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

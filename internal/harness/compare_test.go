package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// compareFixture builds a valid two-cell grid snapshot.
func compareFixture(t *testing.T) *GridReport {
	t.Helper()
	cfg := tiny()
	cfg.Simulate = true
	rep, err := RunGrid(cfg)
	if err != nil {
		t.Fatalf("RunGrid: %v", err)
	}
	return rep
}

func TestLoadGridJSONRoundTrip(t *testing.T) {
	rep := compareFixture(t)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := LoadGridJSON(data)
	if err != nil {
		t.Fatalf("LoadGridJSON: %v", err)
	}
	if len(got.Cells) != len(rep.Cells) {
		t.Fatalf("round trip lost cells: %d != %d", len(got.Cells), len(rep.Cells))
	}
	if _, err := LoadGridJSON([]byte(`{"schema":"bogus"}`)); err == nil {
		t.Fatal("LoadGridJSON accepted a wrong schema")
	}
}

func TestCompareGridsIdentical(t *testing.T) {
	rep := compareFixture(t)
	cmp := CompareGrids(rep, rep)
	if len(cmp.Matched) != len(rep.Cells) {
		t.Fatalf("matched %d of %d cells", len(cmp.Matched), len(rep.Cells))
	}
	if len(cmp.OnlyOld) != 0 || len(cmp.OnlyNew) != 0 {
		t.Fatalf("identical grids reported unmatched cells: %v / %v", cmp.OnlyOld, cmp.OnlyNew)
	}
	for _, metric := range CompareMetrics {
		var buf bytes.Buffer
		n, err := cmp.WriteTable(&buf, 25, metric)
		if err != nil {
			t.Fatalf("WriteTable(%s): %v", metric, err)
		}
		if n != 0 {
			t.Fatalf("identical grids regressed on %s:\n%s", metric, buf.String())
		}
		if !strings.Contains(buf.String(), "no regressions") {
			t.Fatalf("missing success footer:\n%s", buf.String())
		}
	}
}

func TestCompareGridsRegression(t *testing.T) {
	oldRep := compareFixture(t)
	data, _ := json.Marshal(oldRep)
	var newRep GridReport
	if err := json.Unmarshal(data, &newRep); err != nil {
		t.Fatalf("clone: %v", err)
	}
	// Inflate one cell's bit ops by 50% and another's wall by 2x.
	newRep.Cells[0].BitOps = oldRep.Cells[0].BitOps * 3 / 2
	last := len(newRep.Cells) - 1
	newRep.Cells[last].WallSeconds = oldRep.Cells[last].WallSeconds*2 + 1e-6

	cmp := CompareGrids(oldRep, &newRep)
	check := func(metric string, want int) {
		t.Helper()
		var buf bytes.Buffer
		n, err := cmp.WriteTable(&buf, 25, metric)
		if err != nil {
			t.Fatalf("WriteTable(%s): %v", metric, err)
		}
		if n != want {
			t.Fatalf("metric %s: %d regressions, want %d:\n%s", metric, n, want, buf.String())
		}
		if want > 0 && !strings.Contains(buf.String(), "REGRESSION") {
			t.Fatalf("metric %s: table missing REGRESSION flag:\n%s", metric, buf.String())
		}
	}
	check("bitops", 1)
	check("wall", 1)
	check("both", 2)

	// A generous threshold passes.
	var buf bytes.Buffer
	if n, _ := cmp.WriteTable(&buf, 500, "both"); n != 0 {
		t.Fatalf("threshold 500%% still regressed %d cells:\n%s", n, buf.String())
	}
}

func TestCompareGridsUnmatchedCellsDoNotGate(t *testing.T) {
	oldRep := compareFixture(t)
	newRep := &GridReport{Schema: GridSchema, Cells: oldRep.Cells[:1]}
	extra := oldRep.Cells[0]
	extra.Degree += 1000
	newRep.Cells = append([]GridCell{}, newRep.Cells...)
	newRep.Cells = append(newRep.Cells, extra)

	cmp := CompareGrids(oldRep, newRep)
	if len(cmp.Matched) != 1 {
		t.Fatalf("matched %d cells, want 1", len(cmp.Matched))
	}
	if len(cmp.OnlyOld) != len(oldRep.Cells)-1 || len(cmp.OnlyNew) != 1 {
		t.Fatalf("unmatched split wrong: onlyOld=%d onlyNew=%d", len(cmp.OnlyOld), len(cmp.OnlyNew))
	}
	var buf bytes.Buffer
	n, err := cmp.WriteTable(&buf, 25, "both")
	if err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	if n != 0 {
		t.Fatalf("unmatched cells gated:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "only in old snapshot") ||
		!strings.Contains(buf.String(), "only in new snapshot") {
		t.Fatalf("unmatched cells not reported:\n%s", buf.String())
	}
}

func TestPctChangeZeroBaselines(t *testing.T) {
	if got := pctChange(0, 0); got != 0 {
		t.Fatalf("pctChange(0,0) = %v, want 0", got)
	}
	if got := pctChange(0, 5); got != 100 {
		t.Fatalf("pctChange(0,5) = %v, want 100", got)
	}
	if got := pctChange(10, 5); got != -50 {
		t.Fatalf("pctChange(10,5) = %v, want -50", got)
	}
}

// Package server implements rootd, the root-finding solve service: an
// HTTP/JSON front door over the solver pipeline that runs many
// concurrent solves on a shared pool with bounded intra-solve
// parallelism. Production concerns live here, not in the solver:
//
//   - strict request decoding with size limits (DecodeSolveRequest);
//   - admission control from the §4 cost model — each request's
//     bit-operation cost is estimated from degree×µ before anything
//     runs, and requests that would oversubscribe the in-flight budget
//     are rejected with 429 + Retry-After;
//   - per-tenant token-bucket rate limits and round-robin fair queuing
//     onto the solve slots;
//   - request deduplication and an LRU result cache keyed by a
//     canonical polynomial/matrix hash (µ, profile, and method are part
//     of the key; worker count deliberately is not — results are
//     bit-identical for any worker count);
//   - graceful drain: Drain stops admission and lets in-flight solves
//     finish under a deadline, canceling whatever remains;
//   - the shared internal/telemetry hub serving /metrics (with
//     rootd_* request families appended), /debug/flight, and the
//     structured solve log.
//
// cmd/rootd is the thin binary over this package; the harness loadtest
// experiment drives it for latency/throughput goldens.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/big"
	"strconv"

	"realroots/internal/charpoly"
	"realroots/internal/interval"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
)

// Decode-time limits. Anything beyond them is a CodeBadRequest: the
// decoder is the outermost trust boundary and must stay panic-free on
// arbitrary bytes (FuzzSolveRequestDecode pins this).
const (
	// MaxBodyBytes bounds the request body; the HTTP handler enforces
	// it with http.MaxBytesReader before the decoder sees the bytes.
	MaxBodyBytes = 1 << 20
	// MaxDegree bounds the polynomial degree (and matrix dimension —
	// the characteristic polynomial of an n×n matrix has degree n).
	MaxDegree = 256
	// MaxCoeffDigits bounds each coefficient's decimal length.
	MaxCoeffDigits = 8192
	// MaxMatrixDim bounds symmetric-matrix inputs; charpoly
	// construction is Θ(n⁴), so it is far below MaxDegree.
	MaxMatrixDim = 64
	// MaxPrecision bounds the requested µ.
	MaxPrecision = 4096
	// MaxWorkers bounds the per-solve worker count a request may ask
	// for (the server additionally clamps to its own configured cap).
	MaxWorkers = 64
	// MaxTenantLen bounds the tenant identifier.
	MaxTenantLen = 64
	// MaxRequestIDLen bounds a client-supplied X-Request-Id.
	MaxRequestIDLen = 128
	// MaxTimeoutMS bounds the per-request solve timeout (1 hour).
	MaxTimeoutMS = 3_600_000
)

// ValidateRequestID checks a client-supplied X-Request-Id: at most
// MaxRequestIDLen bytes of [A-Za-z0-9._-] (the tenant charset), so IDs
// pass verbatim into log records, exposition exemplars, and trace args
// without escaping surprises.
func ValidateRequestID(id string) error {
	if len(id) > MaxRequestIDLen {
		return badRequest("X-Request-Id is %d bytes (limit %d)", len(id), MaxRequestIDLen)
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return badRequest("X-Request-Id contains %q (want [A-Za-z0-9._-])", c)
		}
	}
	return nil
}

// Error codes carried in ErrorResponse and used as the code label of
// the rootd_requests_total metric family.
const (
	CodeBadRequest   = "bad_request"      // 400: malformed or out-of-limits request
	CodeNotSymmetric = "not_symmetric"    // 422: matrix input is not symmetric
	CodeNotAllReal   = "not_all_real"     // 422: polynomial has non-real roots
	CodeBudget       = "budget_exceeded"  // 422: per-solve MaxBitOps budget tripped
	CodeRateLimited  = "rate_limited"     // 429: tenant token bucket empty
	CodeOverloaded   = "overloaded"       // 429: estimated cost oversubscribes the in-flight bit-ops budget
	CodeQueueFull    = "queue_full"       // 429: fair queue at capacity
	CodeDraining     = "draining"         // 503: server is draining for shutdown
	CodeCanceled     = "canceled"         // 503: solve canceled (client gone or drain deadline)
	CodeDeadline     = "deadline"         // 504: solve timeout expired
	CodeInternal     = "internal"         // 500: isolated solver panic or unexpected error
)

// errorCodes lists every error code in stable order (metric label
// emission; "ok" is prepended for the request counter).
var errorCodes = []string{
	CodeBadRequest, CodeNotSymmetric, CodeNotAllReal, CodeBudget,
	CodeRateLimited, CodeOverloaded, CodeQueueFull,
	CodeDraining, CodeCanceled, CodeDeadline, CodeInternal,
}

// RequestError is the typed error every request-level failure maps to.
type RequestError struct {
	Code string // one of the Code* constants
	Msg  string
}

func (e *RequestError) Error() string { return "server: " + e.Code + ": " + e.Msg }

func badRequest(format string, args ...any) *RequestError {
	return &RequestError{Code: CodeBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// SolveRequest is the JSON body of POST /v1/solve. Exactly one of Poly
// and Matrix must be set. Coefficients are decimal strings so requests
// round-trip arbitrary-precision integers exactly.
type SolveRequest struct {
	// Tenant identifies the caller for rate limiting and fair queuing;
	// empty means "anonymous".
	Tenant string `json:"tenant,omitempty"`
	// Poly asks for the real roots of a polynomial (ascending-degree
	// decimal coefficient strings; the input must have all roots real).
	Poly *PolyInput `json:"poly,omitempty"`
	// Matrix asks for the eigenvalues of a symmetric integer matrix via
	// its characteristic polynomial — the paper's own workload.
	Matrix *MatrixInput `json:"matrix,omitempty"`
	// Precision is µ; 0 uses the server default (32).
	Precision uint `json:"precision,omitempty"`
	// Workers bounds this solve's intra-solve parallelism; 0 uses the
	// server default, and the server clamps to its configured cap.
	Workers int `json:"workers,omitempty"`
	// Profile is the arithmetic profile name: "paper"/"schoolbook" or
	// "fast" (empty = server default).
	Profile string `json:"profile,omitempty"`
	// Method is the interval-refinement method: "hybrid", "bisection",
	// or "newton" (empty = hybrid).
	Method string `json:"method,omitempty"`
	// TimeoutMS bounds the solve's wall time in milliseconds; 0 uses
	// the server default.
	TimeoutMS int64 `json:"timeoutMs,omitempty"`
	// MaxBitOps bounds the solve's bit operations; 0 uses the server's
	// per-solve ceiling. The tighter of the two applies.
	MaxBitOps int64 `json:"maxBitOps,omitempty"`

	// RequestID is the request's end-to-end observability ID, taken
	// from the X-Request-Id header (or generated) by the HTTP handler —
	// never from the JSON body, so it is excluded from decoding and
	// from the result-cache key. In-process callers of Solve may set it
	// directly.
	RequestID string `json:"-"`

	// ForceTrace asks the tail sampler to retain this solve's trace
	// unconditionally. Like RequestID it travels out-of-band (the
	// X-Debug-Trace header, set by the HTTP handler) and is excluded
	// from the cache key; it only takes effect when this request leads
	// the solve, since cache hits run nothing worth tracing.
	ForceTrace bool `json:"-"`

	// Decoded payload, filled by DecodeSolveRequest.
	coeffs []*big.Int
	rows   [][]int64
}

// PolyInput is the polynomial form of a solve request.
type PolyInput struct {
	// Coeffs holds decimal coefficient strings in ascending degree
	// order: Coeffs[i] multiplies x^i. The last entry must be non-zero.
	Coeffs []string `json:"coeffs"`
}

// MatrixInput is the symmetric-matrix (charpoly) form.
type MatrixInput struct {
	// Rows holds the square matrix row by row.
	Rows [][]int64 `json:"rows"`
}

// RootJSON is one root in a SolveResponse.
type RootJSON struct {
	// Value is the exact µ-approximation as a rational "num/den".
	Value string `json:"value"`
	// Decimal renders Value with ⌈µ·log10 2⌉ digits.
	Decimal string `json:"decimal"`
	// Multiplicity is the root's multiplicity in the input.
	Multiplicity int `json:"multiplicity"`
}

// SolveResponse is the 200 body of POST /v1/solve.
type SolveResponse struct {
	Roots     []RootJSON `json:"roots"`
	Degree    int        `json:"degree"`
	Distinct  int        `json:"distinct"`
	Precision uint       `json:"precision"`
	Profile   string     `json:"profile"`
	Method    string     `json:"method"`
	// ElapsedSeconds is the solve wall time (the original solve's for
	// cached responses).
	ElapsedSeconds float64 `json:"elapsedSeconds"`
	// BitOps is the solve's measured bit-operation count.
	BitOps int64 `json:"bitOps"`
	// EstimatedBitOps is the admission-control estimate the request was
	// charged against the in-flight budget.
	EstimatedBitOps int64 `json:"estimatedBitOps"`
	// Cached reports that the result was served from the result cache
	// or deduplicated onto another in-flight identical request.
	Cached bool `json:"cached"`
	// RequestID echoes the request's X-Request-Id (the header is set
	// too). On cached/deduplicated responses this is the asking
	// request's ID, not the ID of the request whose solve produced the
	// result — solver-side telemetry (flight events, trace spans)
	// carries the original leader's ID.
	RequestID string `json:"requestId,omitempty"`
	// Metrics is the solve's per-phase arithmetic report; loadtest
	// clients fold it into bench-grid/v1 cells.
	Metrics *metrics.Report `json:"metrics,omitempty"`
}

// ErrorResponse is the non-200 body of every endpoint.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries the typed error.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterSeconds mirrors the Retry-After header on 429/503.
	RetryAfterSeconds int64 `json:"retryAfterSeconds,omitempty"`
}

// DecodeSolveRequest strictly parses and validates a solve request
// body. Every failure — malformed JSON, unknown fields, out-of-limit
// sizes, non-symmetric matrices, unparsable coefficients — returns a
// *RequestError with a 400-class code and never panics (the contract
// FuzzSolveRequestDecode enforces). On success the parsed payload is
// cached on the returned request for Poly/Rows.
func DecodeSolveRequest(data []byte) (*SolveRequest, error) {
	if len(data) > MaxBodyBytes {
		return nil, badRequest("body is %d bytes (limit %d)", len(data), MaxBodyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req SolveRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("invalid JSON: %v", err)
	}
	if dec.More() {
		return nil, badRequest("trailing data after JSON body")
	}
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

func (r *SolveRequest) validate() error {
	if len(r.Tenant) > MaxTenantLen {
		return badRequest("tenant is %d bytes (limit %d)", len(r.Tenant), MaxTenantLen)
	}
	for _, c := range r.Tenant {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return badRequest("tenant contains %q (want [A-Za-z0-9._-])", c)
		}
	}
	if (r.Poly == nil) == (r.Matrix == nil) {
		return badRequest("exactly one of poly and matrix must be set")
	}
	if r.Precision > MaxPrecision {
		return badRequest("precision %d exceeds limit %d", r.Precision, MaxPrecision)
	}
	if r.Workers < 0 || r.Workers > MaxWorkers {
		return badRequest("workers %d out of range [0,%d]", r.Workers, MaxWorkers)
	}
	if r.Profile != "" {
		if _, err := mp.ParseProfile(r.Profile); err != nil {
			return badRequest("unknown profile %q", r.Profile)
		}
	}
	switch r.Method {
	case "", "hybrid", "bisection", "newton":
	default:
		return badRequest("unknown method %q", r.Method)
	}
	if r.TimeoutMS < 0 || r.TimeoutMS > MaxTimeoutMS {
		return badRequest("timeoutMs %d out of range [0,%d]", r.TimeoutMS, MaxTimeoutMS)
	}
	if r.MaxBitOps < 0 {
		return badRequest("maxBitOps must be non-negative")
	}
	if r.Poly != nil {
		return r.validatePoly()
	}
	return r.validateMatrix()
}

func (r *SolveRequest) validatePoly() error {
	coeffs := r.Poly.Coeffs
	if len(coeffs) < 2 {
		return badRequest("polynomial needs at least two coefficients (degree ≥ 1)")
	}
	if len(coeffs) > MaxDegree+1 {
		return badRequest("degree %d exceeds limit %d", len(coeffs)-1, MaxDegree)
	}
	parsed := make([]*big.Int, len(coeffs))
	for i, s := range coeffs {
		if len(s) == 0 || len(s) > MaxCoeffDigits {
			return badRequest("coefficient %d has %d digits (want 1..%d)", i, len(s), MaxCoeffDigits)
		}
		v, ok := new(big.Int).SetString(s, 10)
		if !ok {
			return badRequest("coefficient %d is not a decimal integer: %q", i, s)
		}
		parsed[i] = v
	}
	if parsed[len(parsed)-1].Sign() == 0 {
		return badRequest("leading coefficient is zero")
	}
	r.coeffs = parsed
	return nil
}

func (r *SolveRequest) validateMatrix() error {
	rows := r.Matrix.Rows
	n := len(rows)
	if n < 1 {
		return badRequest("matrix is empty")
	}
	if n > MaxMatrixDim {
		return badRequest("matrix dimension %d exceeds limit %d", n, MaxMatrixDim)
	}
	for i, row := range rows {
		if len(row) != n {
			return badRequest("matrix row %d has %d entries, want %d", i, len(row), n)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rows[i][j] != rows[j][i] {
				return &RequestError{
					Code: CodeNotSymmetric,
					Msg:  fmt.Sprintf("matrix[%d][%d]=%d but matrix[%d][%d]=%d", i, j, rows[i][j], j, i, rows[j][i]),
				}
			}
		}
	}
	r.rows = rows
	return nil
}

// degree returns the solve's polynomial degree: the polynomial's own,
// or the matrix dimension (charpoly degree).
func (r *SolveRequest) degree() int {
	if r.coeffs != nil {
		return len(r.coeffs) - 1
	}
	return len(r.rows)
}

// coeffBits estimates the coefficient size in bits for the cost model:
// the polynomial's actual maximum, or, for a matrix, the empirical
// m(n) growth of charpoly coefficients (≈ n·(entry bits + log₂ n)/2,
// clamped below by the entry size).
func (r *SolveRequest) coeffBits() int {
	if r.coeffs != nil {
		m := 1
		for _, c := range r.coeffs {
			if b := c.BitLen(); b > m {
				m = b
			}
		}
		return m
	}
	n := len(r.rows)
	entry := 1
	for _, row := range r.rows {
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if b := bitLen64(v); b > entry {
				entry = b
			}
		}
	}
	logn := bitLen64(int64(n))
	return max(entry, n*(entry+logn)/2)
}

func bitLen64(v int64) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

// buildPoly converts the decoded request into the solver's polynomial:
// the polynomial itself, or the characteristic polynomial of the
// matrix computed under the request's arithmetic profile.
func (r *SolveRequest) buildPoly(prof mp.Profile) (*poly.Poly, error) {
	if r.coeffs != nil {
		c := make([]*mp.Int, len(r.coeffs))
		for i, v := range r.coeffs {
			c[i] = new(mp.Int).SetBig(v)
		}
		return poly.New(c...), nil
	}
	m, err := charpoly.FromRows(r.rows)
	if err != nil {
		return nil, badRequest("%v", err)
	}
	return charpoly.CharPolyProfile(m, prof), nil
}

// cacheKey returns the canonical result-cache key: a hash over the
// input form and payload plus every option that changes the result
// bytes (µ, profile, method). Worker count, timeout, and budget are
// deliberately excluded — the roots are bit-identical for any worker
// count, and resource options only change whether a run finishes, and
// failed runs are never cached.
func (r *SolveRequest) cacheKey(mu uint, prof mp.Profile, method string) string {
	h := sha256.New()
	writeField := func(parts ...string) {
		for _, p := range parts {
			io.WriteString(h, p)
			h.Write([]byte{0})
		}
	}
	writeField("v1", prof.String(), method, strconv.FormatUint(uint64(mu), 10))
	if r.coeffs != nil {
		writeField("poly", strconv.Itoa(len(r.coeffs)))
		for _, c := range r.coeffs {
			writeField(c.String())
		}
	} else {
		writeField("matrix", strconv.Itoa(len(r.rows)))
		for _, row := range r.rows {
			for _, v := range row {
				writeField(strconv.FormatInt(v, 10))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// AsRequestError extracts the typed request error, mapping unknown
// errors to CodeInternal.
func AsRequestError(err error) *RequestError {
	var re *RequestError
	if errors.As(err, &re) {
		return re
	}
	return &RequestError{Code: CodeInternal, Msg: err.Error()}
}

// methodT aliases the solver's refinement-method type for the server's
// internal plumbing.
type methodT = interval.Method

// parseMethod maps a validated request method name to the solver's
// type; the empty string is the paper's hybrid.
func parseMethod(s string) methodT {
	switch s {
	case "bisection":
		return interval.MethodBisection
	case "newton":
		return interval.MethodNewton
	default:
		return interval.MethodHybrid
	}
}

package server

import (
	"testing"
	"time"
)

type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestRateLimiterBurstAndRefill(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	l := newRateLimiter(2, 3, clock.now) // 2 tokens/s, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("t"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := l.Allow("t")
	if ok {
		t.Fatal("4th request allowed, bucket should be empty")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %s, want (0, 1s] at 2 tokens/s", retry)
	}
	clock.advance(retry)
	if ok, _ := l.Allow("t"); !ok {
		t.Fatal("denied after waiting the advertised retryAfter")
	}
	// Refill caps at burst.
	clock.advance(time.Hour)
	allowed := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("t"); ok {
			allowed++
		}
	}
	if allowed != 3 {
		t.Fatalf("after long idle, %d requests allowed, want burst=3", allowed)
	}
}

func TestRateLimiterTenantsIndependent(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	l := newRateLimiter(1, 1, clock.now)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("a's first request denied")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("a's second request allowed")
	}
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("b throttled by a's spending")
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	var l *rateLimiter // rate ≤ 0 yields nil: everything allowed
	if l = newRateLimiter(0, 5, nil); l != nil {
		t.Fatal("rate 0 should disable the limiter")
	}
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("t"); !ok {
			t.Fatal("nil limiter denied a request")
		}
	}
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"realroots/internal/core"
	"realroots/internal/faultinject"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/workload"
)

// stressInstance is one workload the stress tenants request, as a
// request body plus the solver-level reference input for the bit-exact
// check.
type stressInstance struct {
	body string
	p    *poly.Poly
	mu   uint
}

// polyCoeffsJSON renders p's coefficients as the request's ascending
// decimal string array.
func polyCoeffsJSON(p *poly.Poly) string {
	parts := make([]string, p.Degree()+1)
	for i := 0; i <= p.Degree(); i++ {
		parts[i] = fmt.Sprintf("%q", p.Coeff(i).String())
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// buildStressInstances mixes polynomial and matrix forms across
// degrees and precisions — the paper's charpoly workload plus classic
// all-real families.
func buildStressInstances() []stressInstance {
	var out []stressInstance
	for i, n := range []int{4, 5, 6, 7} {
		mu := uint(16 + 4*i)
		p := workload.CharPoly01(int64(100+i), n)
		out = append(out, stressInstance{
			body: fmt.Sprintf(`{"tenant":"%%s","poly":{"coeffs":%s},"precision":%d,"workers":2}`, polyCoeffsJSON(p), mu),
			p:    p, mu: mu,
		})
		rows, _ := json.Marshal(workload.SymmetricRows01(int64(100+i), n))
		out = append(out, stressInstance{
			body: fmt.Sprintf(`{"tenant":"%%s","matrix":{"rows":%s},"precision":%d,"workers":2}`, rows, mu),
			p:    p, mu: mu, // same matrix, so the charpoly reference matches
		})
	}
	for i, p := range []*poly.Poly{
		workload.Wilkinson(8),
		workload.Chebyshev(7),
		workload.WithMultiplicities(7, 4, 10, 3),
		workload.Tridiagonal(11, 9, 3),
	} {
		mu := uint(20 + 2*i)
		out = append(out, stressInstance{
			body: fmt.Sprintf(`{"tenant":"%%s","poly":{"coeffs":%s},"precision":%d,"workers":2}`, polyCoeffsJSON(p), mu),
			p:    p, mu: mu,
		})
	}
	return out
}

// referenceRoots solves every instance fault-free on the plain solver,
// giving the bit-exact expectation for successful server responses.
func referenceRoots(t *testing.T, instances []stressInstance) map[int][]RootJSON {
	t.Helper()
	refs := make(map[int][]RootJSON, len(instances))
	for i, inst := range instances {
		roots, err := core.FindRootsWithMultiplicity(inst.p, core.Options{Mu: inst.mu})
		if err != nil {
			t.Fatalf("reference solve %d: %v", i, err)
		}
		digits := decimalDigits(inst.mu)
		ref := make([]RootJSON, len(roots))
		for j, rm := range roots {
			ref[j] = RootJSON{
				Value:        rm.Root.Rat().RatString(),
				Decimal:      rm.Root.Decimal(digits),
				Multiplicity: rm.Mult,
			}
		}
		refs[i] = ref
	}
	return refs
}

// allowedStressCodes are the typed errors a faulted solve may surface.
var allowedStressCodes = map[string]bool{
	CodeInternal: true, // isolated injected panic
	CodeCanceled: true, // injected cancellation (or drain)
	CodeDeadline: true,
	CodeBudget:   true,
	CodeDraining: true,
}

// TestStressMultiTenant is the race-hardened end-to-end suite: 8
// tenants fire 64 concurrent mixed polynomial/matrix requests at a
// live server with seeded fault-injection plans. Every request must
// end in either bit-exact roots (matching a fault-free reference
// solve) or a typed error JSON from the allowed set; afterwards a
// drain under load must complete without deadlock and leave no
// goroutines behind.
func TestStressMultiTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	before := runtime.NumGoroutine()

	const (
		tenants          = 8
		workersPerTenant = 8 // 64 concurrent requests in flight
		reqsPerWorker    = 4
		faultSeed        = 20240
	)
	instances := buildStressInstances()
	refs := referenceRoots(t, instances)

	s := New(Config{
		MaxConcurrent:   8,
		MaxQueue:        tenants * workersPerTenant * reqsPerWorker,
		WorkersPerSolve: 2,
		CacheEntries:    8, // small enough to exercise eviction under load
		Faults: func(seq uint64, ctx context.Context, cancel context.CancelFunc) func(int64) {
			return faultinject.New(faultSeed + int64(seq)).Hook(cancel)
		},
	})
	hs := httptest.NewServer(s.Handler())

	type outcome struct {
		instance int
		status   int
		body     []byte
	}
	results := make(chan outcome, tenants*workersPerTenant*reqsPerWorker)
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		tenant := fmt.Sprintf("tenant%d", tn)
		for w := 0; w < workersPerTenant; w++ {
			wg.Add(1)
			go func(tn, w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000*tn + w)))
				client := &http.Client{}
				defer client.CloseIdleConnections()
				for r := 0; r < reqsPerWorker; r++ {
					idx := rng.Intn(len(instances))
					body := fmt.Sprintf(instances[idx].body, tenant)
					resp, err := client.Post(hs.URL+"/v1/solve", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("tenant %s: %v", tenant, err)
						return
					}
					data := make([]byte, 0, 4096)
					buf := make([]byte, 4096)
					for {
						n, rerr := resp.Body.Read(buf)
						data = append(data, buf[:n]...)
						if rerr != nil {
							break
						}
					}
					resp.Body.Close()
					results <- outcome{instance: idx, status: resp.StatusCode, body: data}
				}
			}(tn, w)
		}
	}
	wg.Wait()
	close(results)

	var ok, failed int
	for res := range results {
		if res.status == http.StatusOK {
			ok++
			var out SolveResponse
			if err := json.Unmarshal(res.body, &out); err != nil {
				t.Fatalf("instance %d: bad 200 body: %v", res.instance, err)
			}
			ref := refs[res.instance]
			if len(out.Roots) != len(ref) {
				t.Fatalf("instance %d: %d roots, want %d", res.instance, len(out.Roots), len(ref))
			}
			for j := range ref {
				if out.Roots[j] != ref[j] {
					t.Fatalf("instance %d root %d = %+v, want bit-exact %+v",
						res.instance, j, out.Roots[j], ref[j])
				}
			}
		} else {
			failed++
			var eresp ErrorResponse
			if err := json.Unmarshal(res.body, &eresp); err != nil {
				t.Fatalf("instance %d: status %d with untyped body %s", res.instance, res.status, res.body)
			}
			if !allowedStressCodes[eresp.Error.Code] {
				t.Fatalf("instance %d: unexpected error code %q (%s)",
					res.instance, eresp.Error.Code, eresp.Error.Message)
			}
		}
	}
	t.Logf("stress: %d ok, %d typed failures", ok, failed)
	if ok == 0 {
		t.Fatal("no request succeeded — fault mix should leave plenty of clean runs")
	}

	// Drain while a final wave is in flight: must not deadlock, and
	// stragglers get typed cancellations.
	var waveWG sync.WaitGroup
	for i := 0; i < 16; i++ {
		waveWG.Add(1)
		go func(i int) {
			defer waveWG.Done()
			body := fmt.Sprintf(instances[i%len(instances)].body, "drainwave")
			resp, err := http.Post(hs.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	drainCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Drain(drainCtx) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("drain deadlocked:\n%s", buf[:runtime.Stack(buf, true)])
	}
	waveWG.Wait()
	hs.Close()
	http.DefaultClient.CloseIdleConnections()

	// Leak check: all request, solver, and queue goroutines must be
	// gone once drain and the listener shutdown complete.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after drain:\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStressProfilesShareNothing reruns a small burst with both
// arithmetic profiles concurrently and checks responses never mix up
// profiles — the cache key must separate them.
func TestStressProfilesShareNothing(t *testing.T) {
	s := New(Config{MaxConcurrent: 4})
	defer s.Drain(context.Background())
	p := workload.CharPoly01(7, 5)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		profile := []string{"paper", "fast"}[i%2]
		wg.Add(1)
		go func(profile string) {
			defer wg.Done()
			body := fmt.Sprintf(`{"poly":{"coeffs":%s},"precision":24,"profile":%q}`, polyCoeffsJSON(p), profile)
			req, err := DecodeSolveRequest([]byte(body))
			if err != nil {
				t.Error(err)
				return
			}
			out, err := s.Solve(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			want := profile
			if profile == "paper" {
				want = mp.Schoolbook.String()
			}
			if out.Profile != want {
				t.Errorf("asked for profile %s, response says %s", profile, out.Profile)
			}
		}(profile)
	}
	wg.Wait()
}


package server

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"realroots/internal/mp"
)

// TestCacheDedupInFlight checks single-flight behaviour: N identical
// concurrent requests run the solve exactly once and share one result.
func TestCacheDedupInFlight(t *testing.T) {
	c := newResultCache(8, nil)
	var calls atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	results := make([]*SolveResponse, n)
	cachedFlags := make([]bool, n)
	// The leader stalls in fn until every joiner has piled on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, outcome, err := c.Do(context.Background(), "k", func() (*SolveResponse, error) {
			close(started)
			calls.Add(1)
			<-gate
			return &SolveResponse{Degree: 7}, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], cachedFlags[0] = resp, outcome != "miss"
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, outcome, err := c.Do(context.Background(), "k", func() (*SolveResponse, error) {
				calls.Add(1)
				return &SolveResponse{Degree: -1}, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], cachedFlags[i] = resp, outcome != "miss"
		}(i)
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("solve ran %d times, want 1", got)
	}
	if cachedFlags[0] {
		t.Error("leader reported cached=true")
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("joiner %d got a different result pointer", i)
		}
		if !cachedFlags[i] {
			t.Errorf("joiner %d reported cached=false", i)
		}
	}
}

// TestCacheJoinerCancel checks that a joiner whose context ends while
// the leader is still solving gets a typed cancellation, not a hang.
func TestCacheJoinerCancel(t *testing.T) {
	c := newResultCache(8, nil)
	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), "k", func() (*SolveResponse, error) {
			close(started)
			<-gate
			return &SolveResponse{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.Do(ctx, "k", func() (*SolveResponse, error) {
		t.Error("joiner ran fn")
		return nil, nil
	})
	re := AsRequestError(err)
	if re.Code != CodeCanceled {
		t.Fatalf("joiner error code = %q, want %q", re.Code, CodeCanceled)
	}
	close(gate)
	<-done
}

// TestCacheLRUEviction fills a capacity-2 cache and checks
// least-recently-used eviction order and evict events.
func TestCacheLRUEviction(t *testing.T) {
	var evicts atomic.Int64
	c := newResultCache(2, func(e string) {
		if e == "evict" {
			evicts.Add(1)
		}
	})
	do := func(key string) bool {
		var ran bool
		_, outcome, err := c.Do(context.Background(), key, func() (*SolveResponse, error) {
			ran = true
			return &SolveResponse{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		cached := outcome != "miss"
		if ran == cached {
			t.Fatalf("key %s: ran=%v outcome=%q", key, ran, outcome)
		}
		return cached
	}
	do("a")
	do("b")
	do("a")    // refresh a: LRU order is now [a, b]
	do("c")    // evicts b
	if evicts.Load() != 1 {
		t.Fatalf("evict events = %d, want 1", evicts.Load())
	}
	if !do("a") {
		t.Error("a was evicted, want it retained (recently used)")
	}
	if do("b") {
		t.Error("b was retained, want it evicted (least recently used)")
	}
	if c.Len() > 2 {
		t.Errorf("cache holds %d entries, capacity 2", c.Len())
	}
}

// TestCacheFailuresNotCached checks that an error result is not
// retained: the next identical request solves again.
func TestCacheFailuresNotCached(t *testing.T) {
	c := newResultCache(8, nil)
	var calls int
	for i := 0; i < 2; i++ {
		_, outcome, err := c.Do(context.Background(), "k", func() (*SolveResponse, error) {
			calls++
			return nil, &RequestError{Code: CodeBudget, Msg: "boom"}
		})
		if err == nil || outcome != "miss" {
			t.Fatalf("attempt %d: err=%v outcome=%q", i, err, outcome)
		}
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (failures must not be cached)", calls)
	}
}

// TestCacheKeyNoAliasing pins the cache-key contract: µ, profile,
// method, input form, and payload all separate keys, while worker
// count deliberately does not (results are worker-invariant).
func TestCacheKeyNoAliasing(t *testing.T) {
	decode := func(body string) *SolveRequest {
		req, err := DecodeSolveRequest([]byte(body))
		if err != nil {
			t.Fatalf("decode %s: %v", body, err)
		}
		return req
	}
	base := decode(`{"poly":{"coeffs":["-2","0","1"]}}`)

	keys := map[string]string{
		"mu=32 schoolbook hybrid": base.cacheKey(32, mp.Schoolbook, "hybrid"),
		"mu=64 schoolbook hybrid": base.cacheKey(64, mp.Schoolbook, "hybrid"),
		"mu=32 fast hybrid":       base.cacheKey(32, mp.Fast, "hybrid"),
		"mu=32 schoolbook newton": base.cacheKey(32, mp.Schoolbook, "newton"),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision: %s aliases %s", name, prev)
		}
		seen[k] = name
	}

	// Distinct payloads never alias, and a matrix is never the "same"
	// request as any polynomial — including its own charpoly.
	other := decode(`{"poly":{"coeffs":["-2","0","2"]}}`)
	if other.cacheKey(32, mp.Schoolbook, "hybrid") == base.cacheKey(32, mp.Schoolbook, "hybrid") {
		t.Error("different polynomials alias")
	}
	matrix := decode(`{"matrix":{"rows":[[0,1],[1,0]]}}`)
	charpolyTwin := decode(`{"poly":{"coeffs":["-1","0","1"]}}`) // det(xI-M) = x²-1
	if matrix.cacheKey(32, mp.Schoolbook, "hybrid") == charpolyTwin.cacheKey(32, mp.Schoolbook, "hybrid") {
		t.Error("matrix aliases its characteristic polynomial")
	}

	// Canonicalization: numerically equal coefficients spelled
	// differently ("+1", "01") map to the same key.
	spelled := decode(`{"poly":{"coeffs":["-02","+0","01"]}}`)
	if spelled.cacheKey(32, mp.Schoolbook, "hybrid") != base.cacheKey(32, mp.Schoolbook, "hybrid") {
		t.Error("equal coefficients spelled differently do not share a key")
	}

	// Worker count is intentionally not part of the key.
	workers := decode(`{"poly":{"coeffs":["-2","0","1"]},"workers":4}`)
	if workers.cacheKey(32, mp.Schoolbook, "hybrid") != base.cacheKey(32, mp.Schoolbook, "hybrid") {
		t.Error("worker count leaked into the cache key")
	}

	// No separator ambiguity: ["12","3"] vs ["1","23"].
	a := decode(`{"poly":{"coeffs":["12","3"]}}`)
	b := decode(`{"poly":{"coeffs":["1","23"]}}`)
	if a.cacheKey(32, mp.Schoolbook, "hybrid") == b.cacheKey(32, mp.Schoolbook, "hybrid") {
		t.Error("coefficient concatenation is ambiguous")
	}
}

// TestCacheEndToEnd drives dedup through the full server: two
// identical requests, the second served from cache with Cached=true
// and the same root values.
func TestCacheEndToEnd(t *testing.T) {
	s := New(Config{})
	defer s.Drain(context.Background())
	body := `{"poly":{"coeffs":["-2","0","1"]},"precision":40}`
	var prev *SolveResponse
	for i := 0; i < 3; i++ {
		req, err := DecodeSolveRequest([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if want := i > 0; out.Cached != want {
			t.Fatalf("request %d: Cached = %v, want %v", i, out.Cached, want)
		}
		if prev != nil {
			for j := range out.Roots {
				if out.Roots[j] != prev.Roots[j] {
					t.Fatalf("request %d root %d differs: %v vs %v", i, j, out.Roots[j], prev.Roots[j])
				}
			}
		}
		prev = out
	}
	if got := s.cacheEvts.Value("miss"); got != 1 {
		t.Errorf("miss events = %d, want 1", got)
	}
	if got := s.cacheEvts.Value("hit"); got != 2 {
		t.Errorf("hit events = %d, want 2", got)
	}
}

// TestCacheTinyCapacityEndToEnd checks LRU eviction through the
// server with capacity 1: alternating requests keep re-solving.
func TestCacheTinyCapacityEndToEnd(t *testing.T) {
	s := New(Config{CacheEntries: 1})
	defer s.Drain(context.Background())
	solve := func(body string) *SolveResponse {
		req, err := DecodeSolveRequest([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Solve(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := `{"poly":{"coeffs":["-2","0","1"]}}`
	b := `{"poly":{"coeffs":["-3","0","1"]}}`
	for i := 0; i < 2; i++ {
		if out := solve(a); out.Cached {
			t.Fatalf("round %d: a cached, want evicted by b", i)
		}
		if out := solve(b); out.Cached {
			t.Fatalf("round %d: b cached, want evicted by a", i)
		}
	}
	if got := s.cacheEvts.Value("evict"); got != 3 {
		t.Errorf("evict events = %d, want 3", got)
	}
	if got := s.cache.Len(); got != 1 {
		t.Errorf("cache size = %d, want 1", got)
	}
}

// TestCacheKeyStability pins the key shape: deterministic and a
// 64-hex-digit SHA-256.
func TestCacheKeyStability(t *testing.T) {
	req, err := DecodeSolveRequest([]byte(`{"poly":{"coeffs":["-2","0","1"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	k1 := req.cacheKey(32, mp.Schoolbook, "hybrid")
	k2 := req.cacheKey(32, mp.Schoolbook, "hybrid")
	if k1 != k2 || len(k1) != 64 {
		t.Fatalf("keys %q / %q (len %d)", k1, k2, len(k1))
	}
}

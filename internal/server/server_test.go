package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"realroots/internal/telemetry"
)

// postSolve sends a solve request body and decodes the response.
func postSolve(t *testing.T, url string, body string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, data
}

func decodeOK(t *testing.T, status int, data []byte) *SolveResponse {
	t.Helper()
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, data)
	}
	var out SolveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding response: %v (%s)", err, data)
	}
	return &out
}

func decodeErr(t *testing.T, data []byte) ErrorBody {
	t.Helper()
	var out ErrorResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding error response: %v (%s)", err, data)
	}
	return out.Error
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, hs
}

// TestSolvePolyE2E solves x²-2 over HTTP and checks that the returned
// rational really is a 2⁻µ-approximation of ±√2.
func TestSolvePolyE2E(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, _, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["-2","0","1"]},"precision":48}`)
	out := decodeOK(t, status, data)
	if out.Degree != 2 || out.Distinct != 2 || len(out.Roots) != 2 {
		t.Fatalf("degree/distinct/roots = %d/%d/%d, want 2/2/2", out.Degree, out.Distinct, len(out.Roots))
	}
	if out.Precision != 48 || out.Profile != "schoolbook" || out.Method != "hybrid" {
		t.Fatalf("echo fields = %d/%s/%s", out.Precision, out.Profile, out.Method)
	}
	if out.BitOps <= 0 || out.EstimatedBitOps <= 0 || out.Metrics == nil {
		t.Fatalf("missing accounting: bitOps=%d est=%d metrics=%v", out.BitOps, out.EstimatedBitOps, out.Metrics)
	}
	// |r² − 2| ≤ 2⁻µ·(2√2 + 2⁻µ) < 4·2⁻µ for any r within 2⁻µ of ±√2.
	tol := new(big.Rat).SetFrac(big.NewInt(4), new(big.Int).Lsh(big.NewInt(1), 48))
	for i, r := range out.Roots {
		if r.Multiplicity != 1 {
			t.Errorf("root %d multiplicity = %d, want 1", i, r.Multiplicity)
		}
		v, ok := new(big.Rat).SetString(r.Value)
		if !ok {
			t.Fatalf("root %d value %q is not a rational", i, r.Value)
		}
		diff := new(big.Rat).Sub(new(big.Rat).Mul(v, v), big.NewRat(2, 1))
		if diff.Abs(diff).Cmp(tol) > 0 {
			t.Errorf("root %d = %s: |r²-2| = %s > %s", i, r.Value, diff.FloatString(20), tol.FloatString(20))
		}
	}
	if !strings.HasPrefix(out.Roots[0].Value, "-") {
		t.Errorf("roots not ascending: first = %q, want the negative root", out.Roots[0].Value)
	}
}

// TestSolveMultiplicities solves (x-1)²(x+2) = x³-3x+2 and expects the
// multiplicity structure in the response.
func TestSolveMultiplicities(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, _, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["2","-3","0","1"]},"precision":32}`)
	out := decodeOK(t, status, data)
	if out.Degree != 3 || out.Distinct != 2 {
		t.Fatalf("degree/distinct = %d/%d, want 3/2", out.Degree, out.Distinct)
	}
	want := map[string]int{"-2": 1, "1": 2}
	for _, r := range out.Roots {
		v, _ := new(big.Rat).SetString(r.Value)
		key := v.RatString()
		if m, ok := want[key]; !ok || m != r.Multiplicity {
			t.Errorf("root %s multiplicity %d, want %v", key, r.Multiplicity, want)
		}
	}
}

// TestSolveMatrixE2E sends a symmetric matrix and checks the
// eigenvalues of [[2,1],[1,2]] (1 and 3) exactly.
func TestSolveMatrixE2E(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, _, data := postSolve(t, hs.URL, `{"matrix":{"rows":[[2,1],[1,2]]},"precision":32}`)
	out := decodeOK(t, status, data)
	if out.Degree != 2 || len(out.Roots) != 2 {
		t.Fatalf("degree/roots = %d/%d, want 2/2", out.Degree, len(out.Roots))
	}
	for i, wantV := range []string{"1", "3"} {
		v, _ := new(big.Rat).SetString(out.Roots[i].Value)
		if v.RatString() != wantV {
			t.Errorf("eigenvalue %d = %s, want %s", i, v.RatString(), wantV)
		}
	}
}

// TestSolveErrorTable drives every request-level error class end to
// end and checks status code and typed JSON code.
func TestSolveErrorTable(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed JSON", `{"poly":`, 400, CodeBadRequest},
		{"unknown field", `{"poly":{"coeffs":["1","1"]},"frob":1}`, 400, CodeBadRequest},
		{"constant poly", `{"poly":{"coeffs":["7"]}}`, 400, CodeBadRequest},
		{"both forms", `{"poly":{"coeffs":["1","1"]},"matrix":{"rows":[[1]]}}`, 400, CodeBadRequest},
		{"bad coefficient", `{"poly":{"coeffs":["1","x"]}}`, 400, CodeBadRequest},
		{"zero leading coeff", `{"poly":{"coeffs":["1","0"]}}`, 400, CodeBadRequest},
		{"bad tenant", `{"tenant":"a b","poly":{"coeffs":["1","1"]}}`, 400, CodeBadRequest},
		{"ragged matrix", `{"matrix":{"rows":[[1,2],[3]]}}`, 400, CodeBadRequest},
		{"not symmetric", `{"matrix":{"rows":[[1,2],[3,4]]}}`, 422, CodeNotSymmetric},
		{"not all real", `{"poly":{"coeffs":["1","0","1"]}}`, 422, CodeNotAllReal},
		{"budget exceeded", `{"poly":{"coeffs":["-2","0","1"]},"precision":64,"maxBitOps":1}`, 422, CodeBudget},
		{"timeout", fmt.Sprintf(`{"matrix":{"rows":%s},"timeoutMs":1,"precision":256}`, bigMatrixJSON(12)), 504, CodeDeadline},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, data := postSolve(t, hs.URL, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d, want %d (%s)", status, tc.status, data)
			}
			if e := decodeErr(t, data); e.Code != tc.code {
				t.Errorf("code = %q, want %q (message %q)", e.Code, tc.code, e.Message)
			}
		})
	}
}

// bigMatrixJSON renders the identity-plus-band symmetric matrix used
// to make a solve slow enough to trip a 1 ms deadline.
func bigMatrixJSON(n int) string {
	var b bytes.Buffer
	b.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte('[')
		for j := 0; j < n; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			switch {
			case i == j:
				fmt.Fprintf(&b, "%d", i+1)
			case i+1 == j || j+1 == i:
				b.WriteString("1")
			default:
				b.WriteString("0")
			}
		}
		b.WriteByte(']')
	}
	b.WriteByte(']')
	return b.String()
}

// TestRateLimit exercises the per-tenant token bucket with an
// injectable clock: burst allows two, the third is 429 with
// Retry-After, and advancing the clock readmits.
func TestRateLimit(t *testing.T) {
	var clockMu sync.Mutex
	now := time.Unix(1000, 0)
	_, hs := newTestServer(t, Config{
		RatePerSec: 1, Burst: 2,
		Now: func() time.Time {
			clockMu.Lock()
			defer clockMu.Unlock()
			return now
		},
	})
	body := `{"tenant":"alice","poly":{"coeffs":["-2","0","1"]}}`
	for i := 0; i < 2; i++ {
		status, _, data := postSolve(t, hs.URL, body)
		decodeOK(t, status, data)
	}
	status, hdr, data := postSolve(t, hs.URL, body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("third request status = %d, want 429 (%s)", status, data)
	}
	e := decodeErr(t, data)
	if e.Code != CodeRateLimited {
		t.Fatalf("code = %q, want %q", e.Code, CodeRateLimited)
	}
	if hdr.Get("Retry-After") == "" || e.RetryAfterSeconds < 1 {
		t.Errorf("missing Retry-After: header %q, body %d", hdr.Get("Retry-After"), e.RetryAfterSeconds)
	}
	// A different tenant is not throttled.
	status, _, data = postSolve(t, hs.URL, `{"tenant":"bob","poly":{"coeffs":["-2","0","1"]}}`)
	decodeOK(t, status, data)
	// Accrue one token for alice and retry.
	clockMu.Lock()
	now = now.Add(1100 * time.Millisecond)
	clockMu.Unlock()
	status, _, data = postSolve(t, hs.URL, body)
	decodeOK(t, status, data)
}

// TestAdmissionOverload holds one solve in flight via a stalling fault
// hook and checks that a second, budget-busting request is rejected
// with 429 overloaded while the first occupies the budget.
func TestAdmissionOverload(t *testing.T) {
	gate := make(chan struct{})
	s, hs := newTestServer(t, Config{
		MaxConcurrent:     4,
		MaxInflightBitOps: 1, // any second concurrent request oversubscribes
		Faults: func(seq uint64, ctx context.Context, cancel context.CancelFunc) func(int64) {
			return func(int64) {
				select {
				case <-gate:
				case <-ctx.Done():
				}
			}
		},
	})

	firstStatus := make(chan int, 1)
	go func() {
		status, _, _ := postSolve(t, hs.URL, `{"poly":{"coeffs":["-2","0","1"]},"workers":2}`)
		firstStatus <- status
	}()
	waitFor(t, func() bool { return s.active.Load() == 1 })

	status, hdr, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["-6","1","1"]},"workers":2}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (%s)", status, data)
	}
	if e := decodeErr(t, data); e.Code != CodeOverloaded {
		t.Fatalf("code = %q, want %q", e.Code, CodeOverloaded)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 overloaded without Retry-After")
	}

	close(gate) // release every stalled task
	if st := <-firstStatus; st != http.StatusOK {
		t.Fatalf("stalled request finished with status %d, want 200", st)
	}
	waitFor(t, func() bool { return s.reserved.Load() == 0 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 10s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrain checks graceful drain: a stalled in-flight solve is
// canceled at the drain deadline, new requests get 503 draining, and
// Drain returns.
func TestDrain(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	s := New(Config{
		Faults: func(seq uint64, ctx context.Context, cancel context.CancelFunc) func(int64) {
			return func(int64) {
				select {
				case <-gate:
				case <-ctx.Done():
				}
			}
		},
	})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	type result struct {
		status int
		data   []byte
	}
	errc := make(chan result, 1)
	go func() {
		status, _, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["-2","0","1"]},"workers":2}`)
		errc <- result{status, data}
	}()
	waitFor(t, func() bool { return s.active.Load() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("drain took %s", since)
	}
	select {
	case r := <-errc:
		// The stalled solve was canceled at the drain deadline.
		if r.status == http.StatusOK {
			t.Error("stalled solve returned 200 despite drain cancellation")
		} else if e := decodeErr(t, r.data); e.Code != CodeCanceled && e.Code != CodeDeadline && e.Code != CodeDraining {
			t.Errorf("in-flight request ended with %q, want a cancellation code", e.Code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not finish after drain")
	}

	// New work is refused while drained.
	status, _, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["-2","0","1"]}}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d (%s)", status, data)
	}
	if e := decodeErr(t, data); e.Code != CodeDraining {
		t.Errorf("post-drain code = %q, want %q", e.Code, CodeDraining)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestMetricsEndpoint checks the combined exposition: solver families
// from the telemetry registry plus the rootd_* request families, valid
// under the strict exposition parser.
func TestMetricsEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, _, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["-2","0","1"]}}`)
	decodeOK(t, status, data)

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if err := telemetry.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`rootd_requests_total{code="ok"} 1`,
		"rootd_cache_events_total{event=\"miss\"} 1",
		"rootd_solve_queue_depth 0",
		"rootd_draining 0",
		"realroots_solves_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestFlightEndpoint checks /debug/flight serves the recorder dump.
func TestFlightEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	status, _, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["-2","0","1"]}}`)
	decodeOK(t, status, data)
	resp, err := http.Get(hs.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Schema string `json:"schema"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("flight dump: %v", err)
	}
	if !strings.HasPrefix(dump.Schema, "realroots/flight/") {
		t.Errorf("flight schema = %q", dump.Schema)
	}
}

// TestSolveInProcess exercises the exported Solve path (the loadtest
// client's in-process mode) without HTTP.
func TestSolveInProcess(t *testing.T) {
	s := New(Config{})
	defer s.Drain(context.Background())
	req, err := DecodeSolveRequest([]byte(`{"poly":{"coeffs":["-3","0","1"]},"precision":40,"profile":"fast"}`))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if out.Profile != "fast" || len(out.Roots) != 2 {
		t.Fatalf("profile=%s roots=%d, want fast/2", out.Profile, len(out.Roots))
	}
}

// TestRetryAfterClamp is the regression pin for the Retry-After bug: a
// retryable failure whose computed backoff rounds below one second —
// including the zero duration a nearly-replenished token bucket can
// hand failRetry — must still advertise Retry-After: 1 in both the
// header and the body, never 0 or a missing header (clients honoring a
// zero would retry in a busy loop).
func TestRetryAfterClamp(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	for _, retry := range []time.Duration{0, time.Microsecond, 300 * time.Millisecond} {
		w := httptest.NewRecorder()
		s.failRetry(w, time.Now(), "alice", "req-clamp", &RequestError{Code: CodeRateLimited, Msg: "slow down"}, retry)
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("retry=%v: status = %d, want 429", retry, w.Code)
		}
		if hdr := w.Result().Header.Get("Retry-After"); hdr != "1" {
			t.Errorf("retry=%v: Retry-After header = %q, want \"1\"", retry, hdr)
		}
		if e := decodeErr(t, w.Body.Bytes()); e.RetryAfterSeconds != 1 {
			t.Errorf("retry=%v: body retryAfterSeconds = %d, want 1", retry, e.RetryAfterSeconds)
		}
	}
	// Backoffs of a second or more pass through, rounded up.
	w := httptest.NewRecorder()
	s.failRetry(w, time.Now(), "alice", "req-long", &RequestError{Code: CodeRateLimited, Msg: "slow down"}, 2500*time.Millisecond)
	if hdr := w.Result().Header.Get("Retry-After"); hdr != "3" {
		t.Errorf("Retry-After header = %q, want \"3\"", hdr)
	}
	// Non-retryable statuses advertise nothing.
	w = httptest.NewRecorder()
	s.failRetry(w, time.Now(), "", "req-400", &RequestError{Code: CodeBadRequest, Msg: "no"}, 0)
	if hdr := w.Result().Header.Get("Retry-After"); hdr != "" {
		t.Errorf("400 carries Retry-After %q", hdr)
	}
	if e := decodeErr(t, w.Body.Bytes()); e.RetryAfterSeconds != 0 {
		t.Errorf("400 body retryAfterSeconds = %d, want 0", e.RetryAfterSeconds)
	}
}

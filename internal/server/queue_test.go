package server

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestQueueFIFOWithinTenant checks that one tenant's waiters are
// served in arrival order.
func TestQueueFIFOWithinTenant(t *testing.T) {
	q := newFairQueue(1, 16)
	if err := q.Acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := q.Acquire(context.Background(), "t"); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			q.Release()
		}(i)
		// Serialize arrival so FIFO order is observable.
		waitFor(t, func() bool { return q.Waiting() == i+1 })
	}
	q.Release()
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("service order %v, want FIFO", order)
		}
	}
}

// TestQueueRoundRobinAcrossTenants enqueues 3 waiters each for two
// tenants behind a held slot and checks slots alternate between the
// tenants rather than draining one tenant first.
func TestQueueRoundRobinAcrossTenants(t *testing.T) {
	q := newFairQueue(1, 16)
	if err := q.Acquire(context.Background(), "warm"); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(tenant string) {
		wg.Add(1)
		before := q.Waiting()
		go func() {
			defer wg.Done()
			if err := q.Acquire(context.Background(), tenant); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			q.Release()
		}()
		waitFor(t, func() bool { return q.Waiting() == before+1 })
	}
	// Tenant a floods first; b arrives later with fewer requests.
	enqueue("a")
	enqueue("a")
	enqueue("a")
	enqueue("b")
	enqueue("b")
	q.Release()
	wg.Wait()
	// Round-robin: a b a b a (a is first in the ring, then alternation).
	want := []string{"a", "b", "a", "b", "a"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
}

// TestQueueCancelWhileWaiting checks a waiter can give up and that its
// abandoned ticket does not consume a grant.
func TestQueueCancelWhileWaiting(t *testing.T) {
	q := newFairQueue(1, 16)
	if err := q.Acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.Acquire(ctx, "t") }()
	waitFor(t, func() bool { return q.Waiting() == 1 })
	cancel()
	err := <-errc
	re := AsRequestError(err)
	if re.Code != CodeCanceled {
		t.Fatalf("code = %q, want %q", re.Code, CodeCanceled)
	}
	if q.Waiting() != 0 {
		t.Fatalf("waiting = %d after cancel, want 0", q.Waiting())
	}
	// The abandoned ticket must not swallow the next grant.
	got := make(chan error, 1)
	go func() { got <- q.Acquire(context.Background(), "u") }()
	waitFor(t, func() bool { return q.Waiting() == 1 })
	q.Release()
	if err := <-got; err != nil {
		t.Fatalf("waiter after abandon: %v", err)
	}
	q.Release()
}

// TestQueueDeadlineWhileWaiting maps a deadline expiry to the
// deadline code.
func TestQueueDeadlineWhileWaiting(t *testing.T) {
	q := newFairQueue(1, 16)
	if err := q.Acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	defer q.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := q.Acquire(ctx, "t")
	if re := AsRequestError(err); re.Code != CodeDeadline {
		t.Fatalf("code = %q, want %q", re.Code, CodeDeadline)
	}
}

// TestQueueFull checks the waiting bound fails fast with queue_full.
func TestQueueFull(t *testing.T) {
	q := newFairQueue(1, 1)
	if err := q.Acquire(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	go q.Acquire(context.Background(), "t") // fills the one waiting slot
	waitFor(t, func() bool { return q.Waiting() == 1 })
	err := q.Acquire(context.Background(), "u")
	if re := AsRequestError(err); re.Code != CodeQueueFull {
		t.Fatalf("code = %q, want %q", re.Code, CodeQueueFull)
	}
	q.Release() // grants the waiter
	waitFor(t, func() bool { return q.Waiting() == 0 })
}

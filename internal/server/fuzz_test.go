package server

import (
	"errors"
	"strings"
	"testing"
)

// FuzzSolveRequestDecode pins the decoder's trust-boundary contract:
// arbitrary bytes never panic, and every rejection is a *RequestError
// carrying a 400-class code (bad_request or not_symmetric) — never an
// untyped error that the handler would map to a 500.
func FuzzSolveRequestDecode(f *testing.F) {
	// Valid forms.
	f.Add([]byte(`{"poly":{"coeffs":["-2","0","1"]},"precision":64}`))
	f.Add([]byte(`{"tenant":"alice","matrix":{"rows":[[2,1],[1,2]]},"workers":4,"profile":"fast","method":"newton"}`))
	f.Add([]byte(`{"poly":{"coeffs":["0","-1","0","1"]},"timeoutMs":5000,"maxBitOps":123456}`))
	// Malformed JSON.
	f.Add([]byte(`{"poly":`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"poly":{"coeffs":["1","1"]}} trailing`))
	// Unknown fields and wrong shapes.
	f.Add([]byte(`{"poly":{"coeffs":["1","1"]},"frobnicate":true}`))
	f.Add([]byte(`{"poly":{"coeffs":[1,2]}}`))
	f.Add([]byte(`{"matrix":{"rows":[["a"]]}}`))
	// Oversized and degenerate payloads.
	f.Add([]byte(`{"poly":{"coeffs":["` + strings.Repeat("9", MaxCoeffDigits+1) + `","1"]}}`))
	f.Add([]byte(`{"poly":{"coeffs":["1","0"]}}`))            // zero leading coefficient
	f.Add([]byte(`{"poly":{"coeffs":["1","-","1"]}}`))        // non-numeric
	f.Add([]byte(`{"poly":{"coeffs":["1","1"]},"workers":-3}`))
	f.Add([]byte(`{"poly":{"coeffs":["1","1"]},"precision":99999}`))
	f.Add([]byte(`{"poly":{"coeffs":["1","1"]},"profile":"quantum"}`))
	f.Add([]byte(`{"poly":{"coeffs":["1","1"]},"method":"divination"}`))
	f.Add([]byte(`{"tenant":"s p a c e","poly":{"coeffs":["1","1"]}}`))
	// Non-symmetric and ragged matrices.
	f.Add([]byte(`{"matrix":{"rows":[[1,2],[3,4]]}}`))
	f.Add([]byte(`{"matrix":{"rows":[[1,2],[3]]}}`))
	f.Add([]byte(`{"matrix":{"rows":[]}}`))
	// Unicode and control characters.
	f.Add([]byte("{\"tenant\":\"\u0000\",\"poly\":{\"coeffs\":[\"1\",\"1\"]}}"))
	f.Add([]byte("{\"poly\":{\"coeffs\":[\"1\",\"1\"]},\"tenant\":\"\xff\xfe\"}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSolveRequest(data) // must never panic
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			if re.Code != CodeBadRequest && re.Code != CodeNotSymmetric {
				t.Fatalf("decode rejected with non-400-class code %q", re.Code)
			}
			if status := statusFor(re.Code); status < 400 || status >= 500 {
				t.Fatalf("code %q maps to status %d, want 4xx", re.Code, status)
			}
			return
		}
		// Accepted requests must satisfy the invariants the solver
		// relies on: exactly one form, in-limit sizes, parsed payload.
		if (req.coeffs == nil) == (req.rows == nil) {
			t.Fatal("accepted request has neither or both payloads decoded")
		}
		if d := req.degree(); d < 1 || d > MaxDegree {
			t.Fatalf("accepted degree %d out of range", d)
		}
		if req.coeffBits() < 1 {
			t.Fatal("accepted request with non-positive coefficient size")
		}
		// The cache key must be computable for any accepted request.
		if k := req.cacheKey(32, 0, "hybrid"); len(k) != 64 {
			t.Fatalf("cache key %q", k)
		}
	})
}

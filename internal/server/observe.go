package server

import (
	"errors"
	"math"
	"time"

	"realroots/internal/core"
	"realroots/internal/sched"
	"realroots/internal/telemetry"
	"realroots/internal/trace"
)

// Post-solve observability: every flight-leader solve ends here, where
// the recorded trace is condensed into the paper's quantities
// (parallel efficiency, serial fraction, per-phase walls), fed to the
// tail sampler for retention, charged to the tenant ledger, and folded
// into the EWMAs the admission charge learns from.

// EWMA and clamp tuning for the learned admission corrections.
const (
	// ewmaAlpha is the new-observation weight: the correction reflects
	// roughly the last 1/alpha solves.
	ewmaAlpha = 0.2
	// corrMin/corrMax clamp the combined admission correction so a
	// burst of outlier solves can neither swing admission wide open
	// nor slam it shut.
	corrMin = 0.25
	corrMax = 4.0
)

// observeSolve digests one completed flight-leader solve. It runs on
// both the success and error paths (error traces are exactly the ones
// worth retaining), after the solver has fully stopped — the tracer is
// quiescent and safe to read.
func (s *Server) observeSolve(tracer *trace.Tracer, p solveParams, start time.Time, elapsed time.Duration, bitOps int64, err error) {
	// Ledger: the leader's solve is charged to its tenant even when it
	// fails — the wall time and bit ops were spent either way.
	led := s.cfg.Telemetry.Tenants()
	led.AddSolve(p.tenant, elapsed.Seconds(), bitOps)

	outcome := outcomeFor(err)
	if err == nil && p.estimate > 0 && bitOps > 0 {
		s.updateEWMA(&s.learnedRatio, float64(bitOps)/float64(p.estimate))
	}

	if tracer == nil {
		return
	}
	spans := tracer.SpanCount()
	dropped := tracer.DroppedSpans()
	s.spanOverhead.Add(float64(spans+dropped) * s.spanCost)

	sum := tracer.Summarize()
	eff := sum.Efficiency(p.workers)
	if sum.Wall > 0 {
		s.serialFrac.Store(sum.SerialFraction)
		if p.workers > 1 {
			s.parEff.Store(eff)
			if err == nil {
				s.updateEWMA(&s.learnedEff, eff)
			}
		}
	}
	for _, ph := range sum.Phases {
		s.phaseHist.With(ph.Name).Observe(ph.Wall.Seconds(), p.requestID)
	}

	// Tail sampling: the sampler sees every solve (its rolling latency
	// quantile needs the full population) and returns a retention
	// reason only for the interesting tail.
	store := s.cfg.Telemetry.Traces()
	store.NoteSeen()
	reason := s.cfg.Telemetry.TailSampler().Consider(telemetry.TraceInfo{
		Forced:     p.forceTrace,
		Outcome:    outcome,
		Seconds:    elapsed.Seconds(),
		Workers:    p.workers,
		Efficiency: eff,
	})
	if reason == "" || store == nil {
		return
	}
	store.Add(trace.RetainedTrace{
		RequestID:      p.requestID,
		Tenant:         p.tenant,
		Outcome:        string(outcome),
		Reason:         reason,
		Start:          start,
		WallSeconds:    elapsed.Seconds(),
		Workers:        p.workers,
		Efficiency:     eff,
		SerialFraction: sum.SerialFraction,
		Spans:          spans,
		DroppedSpans:   dropped,
	}, tracer)
	s.traceKept.Add(reason, 1)
	led.AddRetainedTrace(p.tenant)
}

// outcomeFor maps a solver error to the telemetry outcome taxonomy the
// sampler and the retained-trace metadata use.
func outcomeFor(err error) telemetry.Outcome {
	var pe *sched.PanicError
	switch {
	case err == nil:
		return telemetry.OutcomeOK
	case errors.Is(err, core.ErrBudgetExceeded):
		return telemetry.OutcomeBudget
	case errors.Is(err, core.ErrDeadline):
		return telemetry.OutcomeDeadline
	case errors.Is(err, core.ErrCanceled):
		return telemetry.OutcomeCanceled
	case errors.As(err, &pe):
		return telemetry.OutcomePanic
	default:
		return telemetry.OutcomeError
	}
}

// updateEWMA folds one observation into a learned correction,
// discarding non-finite observations (a zero estimate or a pathological
// trace must not poison the filter).
func (s *Server) updateEWMA(f *telemetry.Float64, obs float64) {
	if math.IsNaN(obs) || math.IsInf(obs, 0) || obs <= 0 {
		return
	}
	f.Store((1-ewmaAlpha)*f.Load() + ewmaAlpha*obs)
}

// chargedEstimate corrects the static §4 model estimate by measured
// reality before charging it against the in-flight budget: the learned
// measured/estimated bit-ops ratio fixes systematic model bias, and
// for parallel requests the learned efficiency inflates the charge
// when solves parallelize worse than assumed (a low-efficiency solve
// holds its slot longer, so it effectively costs more admission
// headroom). The combined correction is clamped to [corrMin, corrMax];
// responses still report the uncorrected model estimate.
func (s *Server) chargedEstimate(estimate int64, workers int) int64 {
	corr := s.learnedRatio.Load()
	if workers > 1 {
		if eff := s.learnedEff.Load(); eff > 0 {
			corr /= math.Max(eff, corrMin)
		}
	}
	corr = math.Min(math.Max(corr, corrMin), corrMax)
	charged := int64(float64(estimate) * corr)
	if charged < 1 {
		charged = 1
	}
	return charged
}

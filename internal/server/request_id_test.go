package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"realroots/internal/telemetry"
)

// syncWriter serializes concurrent slog writes into one buffer.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// postSolveWithID is postSolve plus an X-Request-Id header.
func postSolveWithID(t *testing.T, url, id, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", strings.NewReader(body))
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/solve: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header, data
}

// TestRequestIDPropagation solves concurrently with distinct client
// X-Request-Ids and recovers every ID from all three sinks — the
// structured log, the flight recorder, and the request inspector —
// plus the latency-histogram exemplars on /metrics. Run with -race:
// the sinks are written from solve goroutines while this test reads.
func TestRequestIDPropagation(t *testing.T) {
	logw := &syncWriter{}
	hub := telemetry.New(telemetry.Config{
		Logger:         slog.New(slog.NewJSONHandler(logw, nil)),
		FlightCapacity: 4096,
	})
	_, hs := newTestServer(t, Config{Telemetry: hub})

	// Distinct polynomials x²-(i+2) so no request dedups into another.
	const n = 6
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("prop-%d", i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"tenant":"acme","poly":{"coeffs":["%d","0","1"]},"precision":32}`, -(i + 2))
			status, hdr, data := postSolveWithID(t, hs.URL, ids[i], body)
			out := decodeOK(t, status, data)
			if got := hdr.Get("X-Request-Id"); got != ids[i] {
				t.Errorf("response header X-Request-Id = %q, want %q", got, ids[i])
			}
			if out.RequestID != ids[i] {
				t.Errorf("response body requestId = %q, want %q", out.RequestID, ids[i])
			}
		}(i)
	}
	wg.Wait()

	// Sink 1: the structured solve log. Every request's ID appears, and
	// no line carries an ID outside the set (no cross-request bleed).
	want := make(map[string]bool, n)
	for _, id := range ids {
		want[id] = true
	}
	logged := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimSpace(logw.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		id, ok := rec["requestId"].(string)
		if !ok {
			continue
		}
		if !want[id] {
			t.Errorf("log line carries unknown requestId %q: %s", id, line)
		}
		logged[id] = true
	}
	for _, id := range ids {
		if !logged[id] {
			t.Errorf("no log line carries requestId %q", id)
		}
	}

	// Sink 2: the flight recorder binds each run to its request ID with
	// a control-lane request_id event — exactly one per request here.
	seen := make(map[string]int)
	for _, rec := range hub.Flight().Dump().Records {
		if id, ok := strings.CutPrefix(rec.Name, "request_id:"); ok {
			if !want[id] {
				t.Errorf("flight event binds unknown requestId %q", id)
			}
			seen[id]++
		}
	}
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("flight recorder has %d request_id events for %q, want 1", seen[id], id)
		}
	}

	// Sink 3: the request inspector lists every request, completed with
	// both sides of the cost-model comparison filled in.
	resp, err := http.Get(hs.URL + "/debug/requests?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	dump, err := telemetry.ValidateRequestsJSON(body)
	if err != nil {
		t.Fatalf("/debug/requests invalid: %v\n%s", err, body)
	}
	tracked := make(map[string]telemetry.RequestSnapshot)
	for _, r := range dump.Recent {
		tracked[r.ID] = r
	}
	for _, id := range ids {
		r, ok := tracked[id]
		if !ok {
			t.Errorf("/debug/requests has no entry for %q", id)
			continue
		}
		if r.Outcome != "ok" || r.CacheOutcome != "miss" {
			t.Errorf("%s: outcome=%q cache=%q, want ok/miss", id, r.Outcome, r.CacheOutcome)
		}
		if r.EstimatedBitOps <= 0 || r.ActualBitOps <= 0 || r.CostRatio <= 0 {
			t.Errorf("%s: cost-model columns estimated=%d actual=%d ratio=%v, want all positive",
				id, r.EstimatedBitOps, r.ActualBitOps, r.CostRatio)
		}
	}

	// And the exposition: the request-latency histogram is present,
	// strict-validator-clean, with at least one exemplar naming one of
	// our request IDs.
	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := telemetry.ValidateExposition(expo); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, expo)
	}
	if !strings.Contains(string(expo), `rootd_request_seconds_bucket{tenant="acme",le=`) {
		t.Errorf("exposition missing rootd_request_seconds series for tenant acme")
	}
	exemplar := false
	for _, id := range ids {
		if strings.Contains(string(expo), fmt.Sprintf("# {request_id=%q}", id)) {
			exemplar = true
			break
		}
	}
	if !exemplar {
		t.Errorf("no histogram exemplar names any of the request IDs:\n%s", expo)
	}
}

// TestRequestIDDedup pins the dedup-hit contract: a request answered
// from the single-flight cache carries the asker's own request ID, not
// the original solver's, and the shared cache entry is not mutated.
func TestRequestIDDedup(t *testing.T) {
	_, hs := newTestServer(t, Config{CacheEntries: 16})
	body := `{"poly":{"coeffs":["-2","0","1"]},"precision":32}`

	status, _, data := postSolveWithID(t, hs.URL, "dedup-first", body)
	first := decodeOK(t, status, data)
	if first.Cached || first.RequestID != "dedup-first" {
		t.Fatalf("first solve: cached=%v requestId=%q", first.Cached, first.RequestID)
	}

	status, hdr, data := postSolveWithID(t, hs.URL, "dedup-second", body)
	second := decodeOK(t, status, data)
	if !second.Cached {
		t.Fatal("second identical solve was not answered from cache")
	}
	if second.RequestID != "dedup-second" || hdr.Get("X-Request-Id") != "dedup-second" {
		t.Errorf("cache hit carries requestId %q / header %q, want the asker's dedup-second",
			second.RequestID, hdr.Get("X-Request-Id"))
	}

	// A third asker still gets its own ID: the entry was copied, not
	// overwritten, when the second request stamped its ID.
	status, _, data = postSolveWithID(t, hs.URL, "dedup-third", body)
	third := decodeOK(t, status, data)
	if third.RequestID != "dedup-third" {
		t.Errorf("third asker got requestId %q, want dedup-third", third.RequestID)
	}
	if third.BitOps != first.BitOps {
		t.Errorf("cache hit BitOps = %d, want the original solve's %d", third.BitOps, first.BitOps)
	}
}

// TestRequestIDValidation covers the header contract: generated when
// absent, rejected when malformed.
func TestRequestIDValidation(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	body := `{"poly":{"coeffs":["-2","0","1"]}}`

	status, hdr, data := postSolveWithID(t, hs.URL, "", body)
	out := decodeOK(t, status, data)
	if out.RequestID == "" || hdr.Get("X-Request-Id") != out.RequestID {
		t.Errorf("generated ID: body %q, header %q — want matching non-empty", out.RequestID, hdr.Get("X-Request-Id"))
	}
	if !strings.HasPrefix(out.RequestID, "r") {
		t.Errorf("generated ID %q does not carry the r prefix", out.RequestID)
	}

	for _, bad := range []string{"has space", "naïve", strings.Repeat("x", MaxRequestIDLen+1)} {
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/solve", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-Id", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("X-Request-Id %q: status %d, want 400", bad, resp.StatusCode)
			continue
		}
		if e := decodeErr(t, data); e.Code != CodeBadRequest {
			t.Errorf("X-Request-Id %q: code %q, want %q", bad, e.Code, CodeBadRequest)
		}
	}
}

package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"realroots/internal/core"
	"realroots/internal/metrics"
	"realroots/internal/model"
	"realroots/internal/mp"
	"realroots/internal/sched"
	"realroots/internal/telemetry"
	"realroots/internal/trace"
)

// Config configures a solve server. The zero value is usable: every
// field has a production default.
type Config struct {
	// MaxConcurrent is the number of solve slots — solves running at
	// once (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds the waiting tickets across all tenants; beyond it
	// requests fail fast with queue_full (default 256).
	MaxQueue int
	// WorkersPerSolve caps each solve's intra-solve scheduler workers;
	// requests may ask for fewer (default 2).
	WorkersPerSolve int
	// MaxInflightBitOps is the admission budget: the sum of estimated
	// bit operations over admitted, unfinished solves. A request whose
	// estimate would push the sum past the budget is rejected with 429
	// overloaded — unless nothing is in flight, so oversized requests
	// are never starved forever. 0 defaults to 1e12.
	MaxInflightBitOps int64
	// SolveMaxBitOps is the per-solve bit-operation ceiling; a request's
	// own maxBitOps may only tighten it. 0 means unlimited.
	SolveMaxBitOps int64
	// SolveTimeout bounds each solve's wall time; a request's timeoutMs
	// may only tighten it (default 60s).
	SolveTimeout time.Duration
	// DefaultPrecision is µ when a request leaves precision unset
	// (default 32).
	DefaultPrecision uint
	// DefaultProfile is the arithmetic profile when a request leaves
	// profile unset (default the paper's schoolbook profile).
	DefaultProfile mp.Profile
	// RatePerSec and Burst configure the per-tenant token bucket;
	// RatePerSec ≤ 0 disables rate limiting.
	RatePerSec float64
	Burst      float64
	// CacheEntries is the LRU result-cache capacity (default 256;
	// negative disables caching).
	CacheEntries int
	// TraceMaxSpans caps the always-on per-solve tracer at this many
	// spans per lane (default 4096). The cap bounds each request's
	// trace memory regardless of solve size; spans beyond it are
	// counted as dropped, not recorded.
	TraceMaxSpans int
	// DisableTracing turns off always-on per-solve tracing entirely:
	// no spans are recorded, the tail sampler retains nothing, and the
	// trace-derived gauges (parallel efficiency, serial fraction) stop
	// updating. Admission still works from the static cost model.
	DisableTracing bool
	// Telemetry is the hub serving /metrics, /debug/flight, and the
	// solve log; nil creates a logger-less hub.
	Telemetry *telemetry.Telemetry
	// Logger receives request-level logs; nil disables them.
	Logger *slog.Logger
	// Now is the rate limiter's clock (tests); nil means time.Now.
	Now func() time.Time
	// Faults, if non-nil, builds a per-solve scheduler task hook from
	// the solve's process-wide sequence number, its context, and its
	// cancel function — the fault-injection seam the stress suite
	// drives with internal/faultinject plans. Hooks fire only on
	// parallel solves (workers ≥ 2).
	Faults func(seq uint64, ctx context.Context, cancel context.CancelFunc) func(int64)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 256
	}
	if c.WorkersPerSolve <= 0 {
		c.WorkersPerSolve = 2
	}
	if c.MaxInflightBitOps <= 0 {
		c.MaxInflightBitOps = 1e12
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 60 * time.Second
	}
	if c.DefaultPrecision == 0 {
		c.DefaultPrecision = 32
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.TraceMaxSpans <= 0 {
		c.TraceMaxSpans = 4096
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.New(telemetry.Config{})
	}
	return c
}

// Server is the rootd solve service: an http.Handler running solves on
// a shared pool behind admission control, per-tenant rate limits, fair
// queuing, and a deduplicating result cache. Create with New, serve
// its Handler, stop with Drain.
type Server struct {
	cfg     Config
	queue   *fairQueue
	limiter *rateLimiter
	cache   *resultCache

	baseCtx    context.Context // canceled to abort all in-flight solves
	baseCancel context.CancelFunc

	draining atomic.Bool
	inflight sync.RWMutex // held shared by in-flight requests; Drain takes it exclusively

	reserved atomic.Int64 // admitted estimated bit ops
	active   atomic.Int64 // solves currently holding a slot
	solveSeq atomic.Uint64

	// rootd_* metric families, registered on the telemetry hub's
	// registry so one /metrics endpoint renders solver and server
	// families with shared HELP/TYPE dedup and validator coverage.
	reqCodes   *telemetry.CounterVec   // rootd_requests_total{code}
	reqSeconds *telemetry.Float64      // rootd_request_seconds_total
	cacheEvts  *telemetry.CounterVec   // rootd_cache_events_total{event}
	reqHist    *telemetry.HistogramVec // rootd_request_seconds{tenant}
	queueHist  *telemetry.HistogramVec // rootd_queue_wait_seconds{tenant}
	solveHist  *telemetry.HistogramVec // rootd_solve_seconds{method}
	phaseHist  *telemetry.HistogramVec // rootd_phase_seconds{phase}
	traceKept  *telemetry.CounterVec   // rootd_traces_retained_total{reason}

	// spanOverhead accumulates the estimated wall cost of always-on
	// span recording (span count × calibrated per-span cost), so the
	// tracing tax is itself observable; spanCost is the per-span cost
	// in seconds measured once at startup.
	spanOverhead *telemetry.Float64 // rootd_span_overhead_seconds
	spanCost     float64

	// Algorithm-health gauges: how the paper's §4 cost model fared on
	// the most recent completed solve.
	costRatio telemetry.Float64 // measured/estimated bit ops
	peakBits  telemetry.Float64 // peak operand bit-length bucket floor

	// Trace-derived efficiency gauges (§5's quantities as live
	// metrics): the most recent solve's measured parallel efficiency
	// and serial fraction, plus the EWMAs the admission charge learns
	// from (see chargedEstimate).
	parEff       telemetry.Float64 // rootd_parallel_efficiency
	serialFrac   telemetry.Float64 // rootd_serial_fraction
	learnedEff   telemetry.Float64 // EWMA of measured parallel efficiency
	learnedRatio telemetry.Float64 // EWMA of measured/estimated bit ops

	// tenants caps the tenant label's cardinality (see tenantLabel).
	tenantMu sync.Mutex
	tenants  map[string]bool
}

// maxTenantSeries bounds distinct tenant label values on the per-tenant
// histograms; tenants beyond the cap share the "other" series so a
// tenant-name flood cannot grow the exposition without bound.
const maxTenantSeries = 32

// New creates a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		queue:   newFairQueue(cfg.MaxConcurrent, cfg.MaxQueue),
		limiter: newRateLimiter(cfg.RatePerSec, cfg.Burst, cfg.Now),
		tenants: map[string]bool{},
	}
	// The admission corrections start neutral (×1) and learn from
	// completed solves; see observeSolve.
	s.learnedRatio.Store(1)
	s.learnedEff.Store(1)
	if !cfg.DisableTracing {
		s.spanCost = trace.EstimateSpanCost().Seconds()
	}
	s.registerMetrics(cfg.Telemetry.Registry())
	s.cache = newResultCache(cfg.CacheEntries, func(event string) {
		s.cacheEvts.Add(event, 1)
	})
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	return s
}

// registerMetrics installs the rootd_* families on the hub's registry.
// Counter and histogram registration is idempotent, so servers sharing
// one hub accumulate into the same families; the state gauges rebind to
// the latest server.
func (s *Server) registerMetrics(reg *telemetry.Registry) {
	s.reqCodes = reg.RegisterCounterVec("rootd_requests_total",
		"Solve requests by outcome code.", "code",
		append([]string{"ok"}, errorCodes...))
	s.reqSeconds = reg.RegisterFloatCounter("rootd_request_seconds_total",
		"Total request wall time in seconds.")
	s.cacheEvts = reg.RegisterCounterVec("rootd_cache_events_total",
		"Result-cache events.", "event", cacheEventNames)
	s.reqHist = reg.RegisterHistogramVec("rootd_request_seconds",
		"End-to-end request latency in seconds by tenant.",
		telemetry.SecondsBuckets, "tenant")
	s.queueHist = reg.RegisterHistogramVec("rootd_queue_wait_seconds",
		"Admission-queue wait in seconds by tenant (flight leaders only).",
		telemetry.SecondsBuckets, "tenant")
	s.solveHist = reg.RegisterHistogramVec("rootd_solve_seconds",
		"Core solve wall time in seconds by interval-refinement method (flight leaders only).",
		telemetry.SecondsBuckets, "method")
	s.phaseHist = reg.RegisterHistogramVec("rootd_phase_seconds",
		"Per-pipeline-phase wall time in seconds, derived from the always-on solve traces (flight leaders only).",
		telemetry.SecondsBuckets, "phase")
	s.traceKept = reg.RegisterCounterVec("rootd_traces_retained_total",
		"Solve traces kept by the tail sampler, by retention reason.", "reason",
		[]string{trace.ReasonForced, trace.ReasonError, trace.ReasonSlow, trace.ReasonLowEfficiency})
	s.spanOverhead = reg.RegisterFloatCounter("rootd_span_overhead_seconds",
		"Estimated wall seconds spent recording trace spans (span count x calibrated per-span cost) — the always-on tracing tax.")
	reg.RegisterGaugeFunc("rootd_solve_queue_depth",
		"Requests waiting for a solve slot.",
		func() float64 { return float64(s.queue.Waiting()) })
	reg.RegisterGaugeFunc("rootd_active_solves",
		"Solves currently holding a slot.",
		func() float64 { return float64(s.active.Load()) })
	reg.RegisterGaugeFunc("rootd_reserved_bitops",
		"Estimated bit operations of admitted unfinished solves.",
		func() float64 { return float64(s.reserved.Load()) })
	reg.RegisterGaugeFunc("rootd_draining",
		"Whether the server is draining (1) or serving (0).",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	reg.RegisterGaugeFunc("rootd_model_cost_ratio",
		"Measured/estimated bit-ops ratio of the most recent completed solve (cost-model health; ~1 means the paper's schoolbook estimate is honest).",
		s.costRatio.Load)
	reg.RegisterGaugeFunc("rootd_peak_operand_bits",
		"Peak operand bit-length (bucket lower bound) of the most recent completed solve.",
		s.peakBits.Load)
	reg.RegisterGaugeFunc("rootd_parallel_efficiency",
		"Measured parallel efficiency (speedup/workers, the paper's E_P) of the most recent parallel solve.",
		s.parEff.Load)
	reg.RegisterGaugeFunc("rootd_serial_fraction",
		"Measured Amdahl serial fraction of the most recent traced solve.",
		s.serialFrac.Load)
	reg.RegisterGaugeFunc("rootd_learned_cost_ratio",
		"EWMA of measured/estimated bit-ops over completed solves; the admission charge multiplies estimates by it (clamped).",
		s.learnedRatio.Load)
	reg.RegisterGaugeFunc("rootd_learned_efficiency",
		"EWMA of measured parallel efficiency over completed parallel solves; the admission charge divides by it for parallel requests (clamped).",
		s.learnedEff.Load)
	reg.RegisterTenantFamilies(s.cfg.Telemetry.Tenants())
}

// tenantLabel maps a tenant to its histogram label value, capping the
// number of distinct values at maxTenantSeries.
func (s *Server) tenantLabel(tenant string) string {
	if tenant == "" {
		return "anonymous"
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if s.tenants[tenant] {
		return tenant
	}
	if len(s.tenants) >= maxTenantSeries {
		return "other"
	}
	s.tenants[tenant] = true
	return tenant
}

// newRequestID generates a server-side request ID for clients that did
// not send X-Request-Id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r-unavailable"
	}
	return "r" + hex.EncodeToString(b[:])
}

var cacheEventNames = []string{"hit", "join", "miss", "evict"}

// Telemetry returns the server's telemetry hub.
func (s *Server) Telemetry() *telemetry.Telemetry { return s.cfg.Telemetry }

// Handler returns the server's HTTP handler:
//
//	POST /v1/solve   solve a polynomial or symmetric matrix
//	GET  /healthz    liveness ("ok", or 503 while draining)
//	GET  /metrics    Prometheus exposition (solver + rootd families)
//	GET  /debug/...  flight recorder, request inspector, and pprof
//
// /metrics and /debug/* are served by the telemetry hub; the rootd_*
// families appear there because New registers them on the hub's
// registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/", s.cfg.Telemetry.Handler())
	return mux
}

// Drain gracefully shuts the server down: new requests are rejected
// with 503 draining, in-flight solves run to completion until ctx
// ends, and whatever is still running at that point is canceled and
// waited for. After Drain returns no request goroutines remain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	stop := context.AfterFunc(ctx, s.baseCancel)
	defer stop()
	// Taking the write lock waits for every in-flight request to
	// release its read lock — either by finishing or by observing the
	// base-context cancellation at ctx's deadline.
	s.inflight.Lock()
	s.inflight.Unlock()
	s.baseCancel()
	return nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := r.Header.Get("X-Request-Id")
	if err := ValidateRequestID(reqID); err != nil {
		s.fail(w, start, "", newRequestID(), err)
		return
	}
	if reqID == "" {
		reqID = newRequestID()
	}
	w.Header().Set("X-Request-Id", reqID)
	if r.Method != http.MethodPost {
		s.fail(w, start, "", reqID, &RequestError{Code: CodeBadRequest, Msg: "use POST"})
		return
	}
	if s.draining.Load() {
		s.fail(w, start, "", reqID, &RequestError{Code: CodeDraining, Msg: "server is draining"})
		return
	}
	s.inflight.RLock()
	defer s.inflight.RUnlock()
	if s.draining.Load() { // re-check under the lock: Drain may have won the race
		s.fail(w, start, "", reqID, &RequestError{Code: CodeDraining, Msg: "server is draining"})
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		s.fail(w, start, "", reqID, badRequest("reading body: %v", err))
		return
	}
	req, err := DecodeSolveRequest(body)
	if err != nil {
		s.fail(w, start, "", reqID, err)
		return
	}
	req.RequestID = reqID
	// X-Debug-Trace (any non-empty value) forces the solve's trace into
	// the retained ring regardless of outcome or latency; it only takes
	// effect when this request leads the solve (cache hits re-serve the
	// cached result without running, so there is nothing to trace).
	req.ForceTrace = r.Header.Get("X-Debug-Trace") != ""
	if ok, retry := s.limiter.Allow(req.Tenant); !ok {
		// Rate-limited requests never reach Solve, so their ledger
		// accounting happens here.
		led := s.cfg.Telemetry.Tenants()
		led.AddRequest(req.Tenant)
		led.AddRejection(req.Tenant)
		s.failRetry(w, start, req.Tenant, reqID, &RequestError{
			Code: CodeRateLimited,
			Msg:  fmt.Sprintf("tenant %q is over its request rate", req.Tenant),
		}, retry)
		return
	}

	resp, err := s.Solve(r.Context(), req)
	if err != nil {
		s.fail(w, start, req.Tenant, reqID, err)
		return
	}
	elapsed := time.Since(start)
	s.reqCodes.Add("ok", 1)
	s.reqSeconds.Add(elapsed.Seconds())
	s.reqHist.With(s.tenantLabel(req.Tenant)).Observe(elapsed.Seconds(), reqID)
	if l := s.cfg.Logger; l != nil {
		l.LogAttrs(r.Context(), slog.LevelInfo, "request ok",
			slog.String("requestId", reqID),
			slog.String("tenant", req.Tenant),
			slog.Int("degree", resp.Degree),
			slog.Bool("cached", resp.Cached),
			slog.Duration("elapsed", elapsed))
	}
	writeJSON(w, http.StatusOK, resp)
}

// Solve runs one decoded request through admission, queuing, dedup,
// and the solver, returning the response or a *RequestError. It is the
// handler's core, exported for in-process clients (the harness
// loadtest uses it when no network server is wanted).
func (s *Server) Solve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	mu := req.Precision
	if mu == 0 {
		mu = s.cfg.DefaultPrecision
	}
	profile := s.cfg.DefaultProfile
	if req.Profile != "" {
		profile, _ = mp.ParseProfile(req.Profile) // validated at decode
	}
	method := parseMethod(req.Method)
	workers := req.Workers
	if workers == 0 || workers > s.cfg.WorkersPerSolve {
		workers = s.cfg.WorkersPerSolve
	}
	timeout := s.cfg.SolveTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	maxBits := s.cfg.SolveMaxBitOps
	if req.MaxBitOps > 0 && (maxBits == 0 || req.MaxBitOps < maxBits) {
		maxBits = req.MaxBitOps
	}
	estimate := model.EstimateBitOps(req.degree(), req.coeffBits(), mu)
	if req.RequestID == "" {
		req.RequestID = newRequestID() // in-process callers may skip the handler
	}

	tr := s.cfg.Telemetry.Requests().Start(telemetry.RequestInfo{
		ID:              req.RequestID,
		Tenant:          req.Tenant,
		Kind:            "solve",
		Method:          method.String(),
		Profile:         profile.String(),
		Degree:          req.degree(),
		Mu:              mu,
		EstimatedBitOps: estimate,
	})

	led := s.cfg.Telemetry.Tenants()
	led.AddRequest(req.Tenant)

	key := req.cacheKey(mu, profile, method.String())
	resp, outcome, err := s.cache.Do(ctx, key, func() (*SolveResponse, error) {
		return s.runSolve(ctx, req, solveParams{
			mu: mu, profile: profile, method: method,
			workers: workers, timeout: timeout, maxBits: maxBits,
			estimate: estimate, tenant: req.Tenant,
			requestID: req.RequestID, tracker: tr,
			forceTrace: req.ForceTrace,
		})
	})
	tr.SetCacheOutcome(outcome)
	if err != nil {
		code := AsRequestError(err).Code
		switch code {
		case CodeOverloaded, CodeQueueFull, CodeDraining:
			led.AddRejection(req.Tenant)
		default:
			led.AddError(req.Tenant)
		}
		tr.Finish(code)
		return nil, err
	}
	if outcome != "miss" {
		led.AddCacheHit(req.Tenant)
	}
	if resp.Metrics != nil {
		// For cache hits and joins these are the original solve's
		// numbers — the cost-model verdict belongs to the result, not
		// to the request that happened to ask first.
		tr.SetSolve(time.Duration(resp.ElapsedSeconds*float64(time.Second)),
			resp.BitOps, resp.Metrics.PeakBits())
	}
	tr.Finish("ok")
	// Always shallow-copy before answering: the response object is (or
	// may become) the shared read-only cache entry, and RequestID is
	// per-requester — a joiner must see its own ID, not the leader's.
	c := *resp
	c.Cached = outcome != "miss"
	c.RequestID = req.RequestID
	return &c, nil
}

type solveParams struct {
	mu         uint
	profile    mp.Profile
	method     methodT
	workers    int
	timeout    time.Duration
	maxBits    int64
	estimate   int64
	tenant     string
	requestID  string
	tracker    *telemetry.ActiveRequest
	forceTrace bool
}

// runSolve is the flight leader's path: reserve the admission budget,
// wait for a slot, and run the solver. Its context is the server's
// base context, not the originating request's — once admitted a solve
// runs to completion (the result is cached, so the work is kept even
// if the first requester is gone), except under drain cancellation.
func (s *Server) runSolve(reqCtx context.Context, req *SolveRequest, p solveParams) (*SolveResponse, error) {
	// The charge is the model estimate corrected by what the server has
	// measured on past solves (learned cost ratio and, for parallel
	// requests, learned efficiency) — admission learns from observed
	// speedup instead of trusting the static §4 model forever.
	charge := s.chargedEstimate(p.estimate, p.workers)
	if !s.reserve(charge) {
		return nil, &RequestError{
			Code: CodeOverloaded,
			Msg: fmt.Sprintf("charged cost %d bit ops (estimate %d) would oversubscribe the in-flight budget %d",
				charge, p.estimate, s.cfg.MaxInflightBitOps),
		}
	}
	defer s.reserved.Add(-charge)

	// Queue waiting is bounded by the requester's context (a gone
	// client should not hold a queue position) and by the server
	// lifetime.
	waitCtx, waitCancel := context.WithCancel(reqCtx)
	defer waitCancel()
	stopWait := context.AfterFunc(s.baseCtx, waitCancel)
	defer stopWait()
	waitStart := time.Now()
	if err := s.queue.Acquire(waitCtx, p.tenant); err != nil {
		if s.baseCtx.Err() != nil {
			return nil, &RequestError{Code: CodeDraining, Msg: "server is draining"}
		}
		return nil, err
	}
	wait := time.Since(waitStart)
	p.tracker.SetQueueWait(wait)
	s.queueHist.With(s.tenantLabel(p.tenant)).Observe(wait.Seconds(), p.requestID)
	defer s.queue.Release()
	s.active.Add(1)
	defer s.active.Add(-1)

	solveCtx, cancel := context.WithTimeout(s.baseCtx, p.timeout)
	defer cancel()

	// Always-on tracing: every solve records spans into a bounded
	// tracer; observeSolve decides afterwards whether to keep them.
	var tracer *trace.Tracer
	if !s.cfg.DisableTracing {
		tracer = trace.NewLimited(s.cfg.TraceMaxSpans)
	}

	opts := core.Options{
		Mu:        p.mu,
		Workers:   p.workers,
		Method:    p.method,
		Profile:   p.profile,
		Ctx:       solveCtx,
		MaxBitOps: p.maxBits,
		Telemetry: s.cfg.Telemetry,
		RequestID: p.requestID,
		OnPhase:   p.tracker.SetPhase,
		Tracer:    tracer,
	}
	var counters metrics.Counters
	opts.Counters = &counters
	if s.cfg.Faults != nil {
		opts.TaskHook = s.cfg.Faults(s.solveSeq.Add(1), solveCtx, cancel)
	}

	poly, err := req.buildPoly(p.profile)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	roots, err := core.FindRootsWithMultiplicity(poly, opts)
	elapsed := time.Since(start)
	s.solveHist.With(p.method.String()).Observe(elapsed.Seconds(), p.requestID)
	s.observeSolve(tracer, p, start, elapsed, counters.BitOps(), err)
	if err != nil {
		return nil, mapSolveError(err)
	}

	digits := decimalDigits(p.mu)
	out := make([]RootJSON, len(roots))
	distinct := 0
	for i, rm := range roots {
		out[i] = RootJSON{
			Value:        rm.Root.Rat().RatString(),
			Decimal:      rm.Root.Decimal(digits),
			Multiplicity: rm.Mult,
		}
		distinct++
	}
	rep := counters.Snapshot()
	if p.estimate > 0 {
		s.costRatio.Store(float64(counters.BitOps()) / float64(p.estimate))
	}
	s.peakBits.Store(float64(rep.PeakBits()))
	return &SolveResponse{
		Roots:           out,
		Degree:          req.degree(),
		Distinct:        distinct,
		Precision:       p.mu,
		Profile:         p.profile.String(),
		Method:          p.method.String(),
		ElapsedSeconds:  elapsed.Seconds(),
		BitOps:          counters.BitOps(),
		EstimatedBitOps: p.estimate,
		Metrics:         &rep,
	}, nil
}

// decimalDigits is the response's decimal rendering width for
// precision µ: ⌈µ·log₁₀2⌉ plus one guard digit.
func decimalDigits(mu uint) int {
	return int(math.Ceil(float64(mu)*math.Log10(2))) + 1
}

// reserve charges est against the in-flight admission budget. A
// request is admitted if the budget holds it — or if nothing else is
// reserved, so a single request costlier than the whole budget can
// still run alone rather than being rejected forever.
func (s *Server) reserve(est int64) bool {
	for {
		cur := s.reserved.Load()
		if cur > 0 && cur+est > s.cfg.MaxInflightBitOps {
			return false
		}
		if s.reserved.CompareAndSwap(cur, cur+est) {
			return true
		}
	}
}

// mapSolveError converts the solver's typed errors to request errors.
func mapSolveError(err error) error {
	var pe *sched.PanicError
	switch {
	case errors.Is(err, core.ErrNotAllReal):
		return &RequestError{Code: CodeNotAllReal, Msg: err.Error()}
	case errors.Is(err, core.ErrBudgetExceeded):
		return &RequestError{Code: CodeBudget, Msg: err.Error()}
	case errors.Is(err, core.ErrDeadline):
		return &RequestError{Code: CodeDeadline, Msg: err.Error()}
	case errors.Is(err, core.ErrCanceled):
		return &RequestError{Code: CodeCanceled, Msg: err.Error()}
	case errors.As(err, &pe):
		return &RequestError{Code: CodeInternal, Msg: err.Error()}
	case errors.Is(err, core.ErrInvalidOptions):
		return &RequestError{Code: CodeBadRequest, Msg: err.Error()}
	default:
		return &RequestError{Code: CodeInternal, Msg: err.Error()}
	}
}

// statusFor maps an error code to its HTTP status.
func statusFor(code string) int {
	switch code {
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotSymmetric, CodeNotAllReal, CodeBudget:
		return http.StatusUnprocessableEntity
	case CodeRateLimited, CodeOverloaded, CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeDraining, CodeCanceled:
		return http.StatusServiceUnavailable
	case CodeDeadline:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) fail(w http.ResponseWriter, start time.Time, tenant, reqID string, err error) {
	re := AsRequestError(err)
	retry := time.Duration(0)
	if code := statusFor(re.Code); code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		retry = time.Second
	}
	s.failRetry(w, start, tenant, reqID, re, retry)
}

func (s *Server) failRetry(w http.ResponseWriter, start time.Time, tenant, reqID string, re *RequestError, retry time.Duration) {
	elapsed := time.Since(start)
	s.reqCodes.Add(re.Code, 1)
	s.reqSeconds.Add(elapsed.Seconds())
	s.reqHist.With(s.tenantLabel(tenant)).Observe(elapsed.Seconds(), reqID)
	if l := s.cfg.Logger; l != nil {
		l.LogAttrs(context.Background(), slog.LevelWarn, "request failed",
			slog.String("requestId", reqID),
			slog.String("tenant", tenant),
			slog.String("code", re.Code),
			slog.String("error", re.Msg))
	}
	status := statusFor(re.Code)
	var retrySec int64
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		// A retryable status always advertises at least one second: the
		// limiter's backoff can be microseconds when the next token is
		// nearly accrued, and a "Retry-After: 0" (or an absent header
		// with retryAfterSeconds 0 in the body) turns a well-behaved
		// client's honor-the-header loop into a busy retry storm.
		retrySec = int64(math.Ceil(retry.Seconds()))
		if retrySec < 1 {
			retrySec = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(retrySec, 10))
	} else if retry > 0 {
		retrySec = int64(math.Ceil(retry.Seconds()))
		w.Header().Set("Retry-After", strconv.FormatInt(retrySec, 10))
	}
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{
		Code:              re.Code,
		Message:           re.Msg,
		RetryAfterSeconds: retrySec,
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Running is a live rootd listener started by ListenAndServe.
type Running struct {
	srv *Server
	ln  net.Listener
	hs  *http.Server
}

// ListenAndServe starts the server on addr (host:port; port 0 picks an
// ephemeral port) and serves in a background goroutine until Close.
func (s *Server) ListenAndServe(addr string) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	return &Running{srv: s, ln: ln, hs: hs}, nil
}

// Addr returns the listener's address (e.g. "127.0.0.1:8361").
func (r *Running) Addr() string { return r.ln.Addr().String() }

// URL returns the server's base URL.
func (r *Running) URL() string { return "http://" + r.Addr() }

// Close drains the solve pool under ctx and shuts the listener down.
func (r *Running) Close(ctx context.Context) error {
	drainErr := r.srv.Drain(ctx)
	if err := r.hs.Shutdown(ctx); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}

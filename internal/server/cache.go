package server

import (
	"container/list"
	"context"
	"sync"
)

// resultCache combines an LRU result cache with in-flight request
// deduplication (single-flight): identical requests arriving while one
// is already solving join its flight and share the one result, and
// completed successes are retained up to a fixed entry count with
// least-recently-used eviction. Failures are never cached — a budget or
// timeout failure under one request's limits says nothing about a
// retry's. The cached *SolveResponse values are shared read-only
// between callers; the handler shallow-copies before mutating.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element // key → element whose Value is *cacheEntry
	lru      *list.List               // front = most recently used
	inflight map[string]*flight
	// onEvent observes cache activity for the rootd_cache_events_total
	// family: "hit", "join", "miss", "evict". Called without the lock.
	onEvent func(event string)
}

type cacheEntry struct {
	key  string
	resp *SolveResponse
}

type flight struct {
	done chan struct{} // closed once resp/err are set
	resp *SolveResponse
	err  error
}

func newResultCache(capacity int, onEvent func(string)) *resultCache {
	if onEvent == nil {
		onEvent = func(string) {}
	}
	return &resultCache{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		inflight: map[string]*flight{},
		onEvent:  onEvent,
	}
}

// Do returns the cached response for key, joins an in-flight identical
// solve, or runs fn as the flight leader. outcome reports how the call
// was resolved — "hit" (served from the LRU), "join" (shared another
// flight's result), or "miss" (fn ran as the leader); the response came
// from another request's solve exactly when outcome != "miss". A joiner
// whose ctx ends before the leader finishes gets a canceled/deadline
// RequestError; the leader itself ignores ctx (its fn manages its own
// context).
func (c *resultCache) Do(ctx context.Context, key string, fn func() (*SolveResponse, error)) (resp *SolveResponse, outcome string, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		resp := el.Value.(*cacheEntry).resp
		c.mu.Unlock()
		c.onEvent("hit")
		return resp, "hit", nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.onEvent("join")
		select {
		case <-fl.done:
			return fl.resp, "join", fl.err
		case <-ctx.Done():
			if ctx.Err() == context.DeadlineExceeded {
				return nil, "join", &RequestError{Code: CodeDeadline, Msg: "timed out waiting for an identical in-flight solve"}
			}
			return nil, "join", &RequestError{Code: CodeCanceled, Msg: "canceled while waiting for an identical in-flight solve"}
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()
	c.onEvent("miss")

	fl.resp, fl.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil && c.capacity > 0 {
		c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, resp: fl.resp})
		var evicted int
		for c.lru.Len() > c.capacity {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
			evicted++
		}
		c.mu.Unlock()
		for ; evicted > 0; evicted-- {
			c.onEvent("evict")
		}
	} else {
		c.mu.Unlock()
	}
	close(fl.done)
	return fl.resp, "miss", fl.err
}

// Len returns the number of cached entries.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

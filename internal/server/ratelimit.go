package server

import (
	"math"
	"sync"
	"time"
)

// rateLimiter is a per-tenant token bucket: each tenant accrues rate
// tokens per second up to burst, and each request costs one token. The
// clock is injectable so tests drive it deterministically. A nil
// limiter allows everything.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	now     func() time.Time
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate, burst float64, now func() time.Time) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{rate: rate, burst: burst, now: now, buckets: map[string]*bucket{}}
}

// Allow spends one token from tenant's bucket. When the bucket is
// empty it reports false and how long until a token accrues.
func (l *rateLimiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.now()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[tenant] = b
	} else {
		dt := t.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens = math.Min(l.burst, b.tokens+dt*l.rate)
			b.last = t
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / l.rate
	return false, time.Duration(math.Ceil(wait * float64(time.Second)))
}

package server

import (
	"context"
	"sync"
)

// fairQueue admits solves onto a fixed number of slots with round-robin
// fairness across tenants: each tenant has its own FIFO of waiting
// tickets, and freed slots rotate over tenants that have waiters, so a
// tenant flooding the queue delays only itself. There is no dispatcher
// goroutine — the releasing solve hands its slot directly to the next
// ticket under the queue lock, which keeps the drain path free of
// background goroutines to leak.
type fairQueue struct {
	mu      sync.Mutex
	slots   int // free solve slots
	maxWait int // waiting-ticket capacity across all tenants
	waiting int
	tenants map[string]*tenantFIFO
	ring    []string // tenants with waiters, in round-robin order
	next    int      // ring index to serve next
}

type tenantFIFO struct {
	tickets []*ticket
}

type ticket struct {
	ready     chan struct{} // closed when the ticket is granted a slot
	granted   bool          // guarded by fairQueue.mu
	abandoned bool          // guarded by fairQueue.mu; set when the waiter gave up
}

func newFairQueue(slots, maxWait int) *fairQueue {
	return &fairQueue{slots: slots, maxWait: maxWait, tenants: map[string]*tenantFIFO{}}
}

// Acquire blocks until the caller holds a solve slot, the context ends,
// or the waiting queue is full. On nil return the caller must Release.
func (q *fairQueue) Acquire(ctx context.Context, tenant string) error {
	q.mu.Lock()
	if q.slots > 0 {
		// No waiters can exist while slots are free: Release hands
		// slots to waiters before returning them to the pool.
		q.slots--
		q.mu.Unlock()
		return nil
	}
	if q.waiting >= q.maxWait {
		q.mu.Unlock()
		return &RequestError{Code: CodeQueueFull, Msg: "solve queue is full"}
	}
	t := &ticket{ready: make(chan struct{})}
	fifo := q.tenants[tenant]
	if fifo == nil {
		fifo = &tenantFIFO{}
		q.tenants[tenant] = fifo
		q.ring = append(q.ring, tenant)
	}
	fifo.tickets = append(fifo.tickets, t)
	q.waiting++
	q.mu.Unlock()

	select {
	case <-t.ready:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if t.granted {
			// The slot arrived while we were giving up: pass it on.
			q.releaseLocked()
			q.mu.Unlock()
			return nil
		}
		t.abandoned = true
		q.waiting--
		q.mu.Unlock()
		if ctx.Err() == context.DeadlineExceeded {
			return &RequestError{Code: CodeDeadline, Msg: "timed out waiting for a solve slot"}
		}
		return &RequestError{Code: CodeCanceled, Msg: "canceled while waiting for a solve slot"}
	}
}

// Release returns the caller's slot, granting it to the next waiting
// ticket round-robin across tenants if any.
func (q *fairQueue) Release() {
	q.mu.Lock()
	q.releaseLocked()
	q.mu.Unlock()
}

func (q *fairQueue) releaseLocked() {
	for len(q.ring) > 0 {
		if q.next >= len(q.ring) {
			q.next = 0
		}
		name := q.ring[q.next]
		fifo := q.tenants[name]
		for len(fifo.tickets) > 0 && fifo.tickets[0].abandoned {
			fifo.tickets = fifo.tickets[1:]
		}
		if len(fifo.tickets) == 0 {
			delete(q.tenants, name)
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
			continue
		}
		t := fifo.tickets[0]
		fifo.tickets = fifo.tickets[1:]
		if len(fifo.tickets) == 0 {
			delete(q.tenants, name)
			q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		} else {
			q.next++
		}
		t.granted = true
		q.waiting--
		close(t.ready)
		return
	}
	q.slots++
}

// Waiting returns the number of queued tickets (the
// rootd_solve_queue_depth gauge).
func (q *fairQueue) Waiting() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiting
}

package server

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"realroots/internal/telemetry"
	"realroots/internal/trace"
)

// obsConfig builds a server config with a telemetry hub wired for
// tail-sampled tracing (small store, defaults otherwise).
func obsConfig() Config {
	return Config{
		Telemetry: telemetry.New(telemetry.Config{TraceStoreCapacity: 16}),
	}
}

const quadratic = `{"poly":{"coeffs":["-2","0","1"]},"precision":48}`

// TestTraceRetainedOnError checks the tentpole acceptance path: a solve
// that trips its bit-ops budget leaves an error-outcome trace in the
// store, tagged with the error reason and exportable as a valid Chrome
// trace.
func TestTraceRetainedOnError(t *testing.T) {
	cfg := obsConfig()
	s, hs := newTestServer(t, cfg)

	status, _, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["-2","0","1"]},"precision":48,"maxBitOps":1}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("budget solve status %d, body %s", status, data)
	}
	if code := decodeErr(t, data).Code; code != CodeBudget {
		t.Fatalf("error code %q, want %q", code, CodeBudget)
	}

	store := cfg.Telemetry.Traces()
	d := store.Dump()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Retained != 1 || d.ByReason[trace.ReasonError] != 1 {
		t.Fatalf("store retained %d (byReason %v), want 1 error trace", d.Retained, d.ByReason)
	}
	rt := d.Traces[0]
	if rt.Outcome != string(telemetry.OutcomeBudget) {
		t.Errorf("retained outcome %q, want %q", rt.Outcome, telemetry.OutcomeBudget)
	}
	if rt.Spans <= 0 {
		t.Errorf("retained trace has %d spans", rt.Spans)
	}

	// The live entry (not the dump copy) still exports Chrome JSON.
	var buf bytes.Buffer
	if err := store.Get(rt.Seq).WriteChrome(&buf); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}

	// Metrics side: the retention counter agrees with the store.
	if got := s.traceKept.Value(trace.ReasonError); got != 1 {
		t.Errorf("rootd_traces_retained_total{reason=error} = %v, want 1", got)
	}
}

// TestTraceForcedByHeader checks the X-Debug-Trace escape hatch: a
// healthy fast solve that the sampler would drop is retained as
// "forced" when the header is present.
func TestTraceForcedByHeader(t *testing.T) {
	cfg := obsConfig()
	_, hs := newTestServer(t, cfg)

	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/solve", strings.NewReader(quadratic))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Debug-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced solve status %d, body %s", resp.StatusCode, body)
	}

	d := cfg.Telemetry.Traces().Dump()
	if d.ByReason[trace.ReasonForced] != 1 {
		t.Fatalf("byReason %v, want one forced trace", d.ByReason)
	}

	// Without the header the same healthy solve is seen but dropped
	// (warmup suppresses slow classification; outcome is ok).
	status, _, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["-3","0","1"]},"precision":48}`)
	if status != http.StatusOK {
		t.Fatalf("plain solve status %d, body %s", status, data)
	}
	d = cfg.Telemetry.Traces().Dump()
	if d.Retained != 1 {
		t.Errorf("retained %d traces, want still 1 (healthy solve dropped)", d.Retained)
	}
	if d.Seen != 2 {
		t.Errorf("seen %d solves, want 2", d.Seen)
	}
}

// TestTenantLedgerAccountingE2E drives requests for two tenants and
// checks the ledger's request/solve/cache-hit split.
func TestTenantLedgerAccountingE2E(t *testing.T) {
	cfg := obsConfig()
	_, hs := newTestServer(t, cfg)

	solve := func(tenant string) {
		t.Helper()
		body := `{"tenant":"` + tenant + `","poly":{"coeffs":["-2","0","1"]},"precision":48}`
		status, _, data := postSolve(t, hs.URL, body)
		if status != http.StatusOK {
			t.Fatalf("tenant %s solve status %d, body %s", tenant, status, data)
		}
	}

	solve("acme") // miss: acme leads the solve
	solve("acme") // hit
	solve("beta") // hit (tenant is not part of the cache key)

	d := cfg.Telemetry.Tenants().Dump()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := map[string]telemetry.TenantRow{}
	for _, r := range d.Tenants {
		rows[r.Tenant] = r
	}
	acme, beta := rows["acme"], rows["beta"]
	if acme.Requests != 2 || acme.Solves != 1 || acme.CacheHits != 1 {
		t.Errorf("acme = %+v, want 2 requests / 1 solve / 1 cache hit", acme)
	}
	if acme.BitOps <= 0 || acme.SolveSeconds <= 0 {
		t.Errorf("acme solve cost not accounted: %+v", acme)
	}
	if beta.Requests != 1 || beta.Solves != 0 || beta.CacheHits != 1 {
		t.Errorf("beta = %+v, want 1 request / 0 solves / 1 cache hit", beta)
	}
}

// TestObservabilityMetricsExposed checks the new families appear in
// /metrics and the whole exposition still validates.
func TestObservabilityMetricsExposed(t *testing.T) {
	cfg := obsConfig()
	_, hs := newTestServer(t, cfg)
	// One parallel solve so the efficiency gauges have data.
	status, _, data := postSolve(t, hs.URL, `{"poly":{"coeffs":["-2","0","1"]},"precision":48,"workers":2}`)
	if status != http.StatusOK {
		t.Fatalf("solve status %d, body %s", status, data)
	}

	var buf bytes.Buffer
	if err := cfg.Telemetry.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if err := telemetry.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	for _, fam := range []string{
		"rootd_parallel_efficiency",
		"rootd_serial_fraction",
		"rootd_span_overhead_seconds",
		"rootd_learned_cost_ratio",
		"rootd_learned_efficiency",
		"rootd_phase_seconds",
		"rootd_traces_retained_total",
		"rootd_tenant_requests_total",
	} {
		if !strings.Contains(body, "# TYPE "+fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
}

// TestDisableTracing checks the kill switch: no spans recorded, nothing
// retained, solves still succeed.
func TestDisableTracing(t *testing.T) {
	cfg := obsConfig()
	cfg.DisableTracing = true
	_, hs := newTestServer(t, cfg)

	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/solve", strings.NewReader(quadratic))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Debug-Trace", "1") // even forced traces are off
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve status %d", resp.StatusCode)
	}
	d := cfg.Telemetry.Traces().Dump()
	if d.Retained != 0 {
		t.Errorf("tracing disabled but %d traces retained", d.Retained)
	}
}

// TestChargedEstimate pins the learned-correction clamp arithmetic.
func TestChargedEstimate(t *testing.T) {
	s := New(Config{})
	cases := []struct {
		ratio, eff float64
		workers    int
		estimate   int64
		want       int64
	}{
		{1, 1, 1, 1000, 1000},   // neutral
		{2, 1, 1, 1000, 2000},   // model underestimates 2x
		{0.1, 1, 1, 1000, 250},  // clamped at corrMin
		{10, 1, 1, 1000, 4000},  // clamped at corrMax
		{1, 0.5, 4, 1000, 2000}, // half efficiency doubles parallel charge
		{1, 0.1, 4, 1000, 4000}, // efficiency floor 0.25 then clamp
		{1, 0.5, 1, 1000, 1000}, // sequential ignores efficiency
		{1, 1, 1, 0, 1},         // charge is at least 1
	}
	for _, tc := range cases {
		s.learnedRatio.Store(tc.ratio)
		s.learnedEff.Store(tc.eff)
		if got := s.chargedEstimate(tc.estimate, tc.workers); got != tc.want {
			t.Errorf("chargedEstimate(est=%d, workers=%d, ratio=%v, eff=%v) = %d, want %d",
				tc.estimate, tc.workers, tc.ratio, tc.eff, got, tc.want)
		}
	}
}

// TestUpdateEWMA pins the estimator update rule and its input guards.
func TestUpdateEWMA(t *testing.T) {
	s := New(Config{})
	var f telemetry.Float64
	f.Store(1)
	s.updateEWMA(&f, 2)
	if got := f.Load(); got < 1.2-1e-12 || got > 1.2+1e-12 {
		t.Errorf("EWMA(1, 2) = %v, want 1.2 (alpha 0.2)", got)
	}
	for _, bad := range []float64{0, -1, errNaN(), errInf()} {
		before := f.Load()
		s.updateEWMA(&f, bad)
		if f.Load() != before {
			t.Errorf("EWMA accepted bad observation %v", bad)
		}
	}
}

func errNaN() float64 { var z float64; return z / z }
func errInf() float64 { var z float64; return 1 / z }

// TestOutcomeFor maps solver errors onto telemetry outcomes.
func TestOutcomeFor(t *testing.T) {
	if got := outcomeFor(nil); got != telemetry.OutcomeOK {
		t.Errorf("outcomeFor(nil) = %q", got)
	}
	if got := outcomeFor(errors.New("boom")); got != telemetry.OutcomeError {
		t.Errorf("outcomeFor(generic) = %q", got)
	}
}

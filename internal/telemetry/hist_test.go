package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestFloat64ConcurrentAdd checks the CAS loop drops no updates under
// contention (run with -race).
func TestFloat64ConcurrentAdd(t *testing.T) {
	var f Float64
	const goroutines, adds = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				f.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := f.Load(), float64(goroutines*adds)*0.5; got != want {
		t.Fatalf("Load() = %v after concurrent adds, want %v", got, want)
	}
}

func TestHistogramObserveAndCounts(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v, "")
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum() = %v, want %v", got, want)
	}
	buckets, _, count := h.snapshot()
	if count != 5 {
		t.Fatalf("snapshot count = %d, want 5", count)
	}
	// Cumulative: ≤0.1 holds 2 (0.05, 0.1 — bounds are inclusive),
	// ≤1 holds 3, ≤10 holds 4, +Inf holds all 5.
	wantCum := []uint64{2, 3, 4, 5}
	for i, b := range buckets {
		if b.cum != wantCum[i] {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b.cum, wantCum[i])
		}
	}
	if !math.IsInf(buckets[len(buckets)-1].le, 1) {
		t.Error("last bucket bound is not +Inf")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	// 100 observations uniform in the (1,2] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.5, "")
	}
	// Interpolation puts q=0.5 at the middle of the holding bucket.
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Fatalf("Quantile(0.5) = %v, want within (1,2]", got)
	}
	// +Inf observations clamp to the highest finite bound.
	over := NewHistogram([]float64{1, 2, 4})
	over.Observe(100, "")
	if got := over.Quantile(0.99); got != 4 {
		t.Fatalf("Quantile over +Inf bucket = %v, want clamp to 4", got)
	}
	var empty *Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram Quantile = %v, want 0", got)
	}
}

func TestHistogramExemplarLatestWins(t *testing.T) {
	h := NewHistogram(SecondsBuckets)
	h.Observe(0.01, "first")
	h.Observe(0.011, "second")
	h.Observe(0.3, "elsewhere")
	buckets, _, _ := h.snapshot()
	var got *Exemplar
	for _, b := range buckets {
		if b.le >= 0.011 && b.exemplar != nil && got == nil {
			got = b.exemplar
		}
	}
	if got == nil || got.RequestID != "second" {
		t.Fatalf("exemplar = %+v, want latest observation (second)", got)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines (run with -race) and checks nothing is lost.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(SecondsBuckets)
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100)/100, fmt.Sprintf("g%d-%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count() = %d, want %d", got, goroutines*per)
	}
	_, _, count := h.snapshot()
	if count != goroutines*per {
		t.Fatalf("snapshot count = %d, want %d", count, goroutines*per)
	}
}

// TestHistogramVecExposition renders a registry with histogram series
// and checks the strict validator accepts the output, exemplars
// included.
func TestHistogramVecExposition(t *testing.T) {
	hub := New(Config{})
	reg := hub.Registry()
	hv := reg.RegisterHistogramVec("rootd_test_seconds", "Test latency.", SecondsBuckets, "tenant")
	hv.With("acme").Observe(0.003, "req-1")
	hv.With("acme").Observe(2.5, "req-2")
	hv.With("umbrella").Observe(0.04, "")
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	if err := ValidateExposition([]byte(expo)); err != nil {
		t.Fatalf("exposition with histograms rejected: %v\n%s", err, expo)
	}
	for _, want := range []string{
		`# TYPE rootd_test_seconds histogram`,
		`rootd_test_seconds_bucket{tenant="acme",le="+Inf"} 2`,
		`rootd_test_seconds_count{tenant="acme"} 2`,
		`# {request_id="req-1"} 0.003`,
		`rootd_test_seconds_count{tenant="umbrella"} 1`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q\n%s", want, expo)
		}
	}
}

// TestRegisterIdempotent pins the registration contract: counters and
// histograms return the existing collector, gauge funcs rebind.
func TestRegisterIdempotent(t *testing.T) {
	hub := New(Config{})
	reg := hub.Registry()
	c1 := reg.RegisterCounterVec("t_total", "h", "l", []string{"a"})
	c2 := reg.RegisterCounterVec("t_total", "h", "l", []string{"a"})
	if c1 != c2 {
		t.Error("re-registering a counter did not return the existing one")
	}
	c1.Add("a", 1)
	c2.Add("a", 1)
	if got := c1.Value("a"); got != 2 {
		t.Errorf("shared counter = %d, want 2", got)
	}
	h1 := reg.RegisterHistogramVec("t_seconds", "h", SecondsBuckets, "l")
	h2 := reg.RegisterHistogramVec("t_seconds", "h", SecondsBuckets, "l")
	if h1 != h2 {
		t.Error("re-registering a histogram did not return the existing one")
	}
	reg.RegisterGaugeFunc("t_gauge", "h", func() float64 { return 1 })
	reg.RegisterGaugeFunc("t_gauge", "h", func() float64 { return 2 })
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "t_gauge 2") {
		t.Error("gauge func did not rebind to the latest registrant")
	}
	if err := ValidateExposition([]byte(sb.String())); err != nil {
		t.Fatalf("exposition rejected: %v", err)
	}
}

// TestValidateExpositionHistogramRejects feeds the validator broken
// histogram structures and checks each is refused.
func TestValidateExpositionHistogramRejects(t *testing.T) {
	cases := map[string]string{
		"bucket without le": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{tenant="a"} 1` + "\nh_sum 1\nh_count 1\n",
		"non-cumulative buckets": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\nh_sum 1\nh_count 3\n",
		"missing +Inf bucket": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\nh_sum 1\nh_count 1\n",
		"count != +Inf": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\nh_sum 1\nh_count 3\n",
		"missing sum": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_count 1\n",
		"exemplar on non-bucket line": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\n" + `h_count 1 # {request_id="r"} 1` + "\n",
		"malformed exemplar": "# HELP h x\n# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 1 # request_id` + "\nh_sum 1\nh_count 1\n",
	}
	for name, expo := range cases {
		if err := ValidateExposition([]byte(expo)); err == nil {
			t.Errorf("%s: accepted, want rejection:\n%s", name, expo)
		}
	}
	good := "# HELP h x\n# TYPE h histogram\n" +
		`h_bucket{le="1"} 1 # {request_id="r-1"} 0.5` + "\n" +
		`h_bucket{le="+Inf"} 2` + "\nh_sum 1.5\nh_count 2\n"
	if err := ValidateExposition([]byte(good)); err != nil {
		t.Errorf("valid histogram with exemplar rejected: %v", err)
	}
}

// TestQuantileEdgeCases pins the Quantile contract at the edges: the
// old code extrapolated out-of-range q — Quantile(q > 1) walked off the
// end of the ladder and returned its top bound even when every
// observation sat in the first bucket, and Quantile(q < 0) interpolated
// below the bucket's lower edge into a negative latency.
func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h.Observe(1.5, "") // all mass in the (1,2] bucket
	}
	// q ≥ 1 is the upper edge of the highest non-empty bucket — not the
	// ladder's top bound (4), which nothing ever reached.
	for _, q := range []float64{1, 1.5, 100} {
		if got := h.Quantile(q); got != 2 {
			t.Errorf("Quantile(%v) = %v, want 2 (upper edge of occupied bucket)", q, got)
		}
	}
	// q ≤ 0 and NaN are the lower edge of the first non-empty bucket;
	// in particular never negative.
	for _, q := range []float64{0, -0.5, math.NaN()} {
		if got := h.Quantile(q); got != 1 {
			t.Errorf("Quantile(%v) = %v, want 1 (lower edge of occupied bucket)", q, got)
		}
	}
	// An empty (but non-nil) histogram returns 0 for every q.
	e := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := e.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	// All mass in the overflow bucket clamps to the top finite bound for
	// every q, including the edges.
	over := NewHistogram([]float64{1, 2, 4})
	over.Observe(50, "")
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := over.Quantile(q); got != 4 {
			t.Errorf("overflow Quantile(%v) = %v, want clamp to 4", q, got)
		}
	}
	// A histogram with no finite buckets degenerates to 0.
	none := NewHistogram(nil)
	none.Observe(3, "")
	if got := none.Quantile(0.5); got != 0 {
		t.Errorf("bucketless Quantile = %v, want 0", got)
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTenantLedgerAccounting(t *testing.T) {
	l := NewTenantLedger(8)
	l.AddRequest("acme")
	l.AddRequest("acme")
	l.AddSolve("acme", 0.5, 1000)
	l.AddCacheHit("acme")
	l.AddRejection("acme")
	l.AddError("acme")
	l.AddRetainedTrace("acme")
	l.AddRequest("") // anonymous

	d := l.Dump()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	rows := map[string]TenantRow{}
	for _, r := range d.Tenants {
		rows[r.Tenant] = r
	}
	acme := rows["acme"]
	if acme.Requests != 2 || acme.Solves != 1 || acme.SolveSeconds != 0.5 ||
		acme.BitOps != 1000 || acme.CacheHits != 1 || acme.Rejections != 1 ||
		acme.Errors != 1 || acme.RetainedTraces != 1 {
		t.Errorf("acme row = %+v", acme)
	}
	if rows[AnonymousTenant].Requests != 1 {
		t.Errorf("anonymous row = %+v, want 1 request", rows[AnonymousTenant])
	}

	// Round-trip through the JSON validator entry point.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(d); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTenantsJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestTenantLedgerOverflow(t *testing.T) {
	l := NewTenantLedger(2)
	l.AddRequest("a")
	l.AddRequest("b")
	l.AddRequest("c") // over the cap: folds into "other"
	l.AddRequest("d")
	l.AddRequest("")  // anonymous does not count against the cap
	l.AddRequest("a") // existing row still resolves directly

	d := l.Dump()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range d.Tenants {
		got[r.Tenant] = r.Requests
	}
	want := map[string]int64{"a": 2, "b": 1, OverflowTenant: 2, AnonymousTenant: 1}
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("row %q = %d requests, want %d", k, got[k], v)
		}
	}
}

func TestTenantLedgerNilSafe(t *testing.T) {
	var l *TenantLedger
	l.AddRequest("a")
	l.AddSolve("a", 1, 1)
	l.AddCacheHit("a")
	l.AddRejection("a")
	l.AddError("a")
	l.AddRetainedTrace("a")
	d := l.Dump()
	if len(d.Tenants) != 0 {
		t.Errorf("nil ledger dumped rows: %+v", d.Tenants)
	}
}

// TestTenantLedgerConcurrent hammers row creation and accounting from
// many goroutines (run with -race): the copy-on-write map must not lose
// updates when rows are created concurrently.
func TestTenantLedgerConcurrent(t *testing.T) {
	l := NewTenantLedger(64)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tenant := fmt.Sprintf("t%d", i%16)
				l.AddRequest(tenant)
				l.AddSolve(tenant, 0.001, 10)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if err := l.Dump().Validate(); err != nil {
				t.Errorf("mid-write dump invalid: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	d := l.Dump()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var requests, solves int64
	for _, r := range d.Tenants {
		requests += r.Requests
		solves += r.Solves
	}
	if want := int64(goroutines * perG); requests != want || solves != want {
		t.Errorf("requests/solves = %d/%d, want %d each (lost updates)", requests, solves, want)
	}
}

func TestRegisterTenantFamiliesExposition(t *testing.T) {
	tel := New(Config{})
	l := tel.Tenants()
	l.AddRequest("acme")
	l.AddSolve("acme", 0.25, 1234)
	l.AddCacheHit("beta")
	l.AddRequest("beta")
	tel.Registry().RegisterTenantFamilies(l)

	var buf bytes.Buffer
	if err := tel.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition with tenant families invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`rootd_tenant_requests_total{tenant="acme"} 1`,
		`rootd_tenant_bit_ops_total{tenant="acme"} 1234`,
		`rootd_tenant_solve_seconds_total{tenant="acme"} 0.25`,
		`rootd_tenant_cache_hits_total{tenant="beta"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Registering twice must not duplicate families (register is
	// idempotent by name).
	tel.Registry().RegisterTenantFamilies(l)
	buf.Reset()
	if err := tel.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "# TYPE rootd_tenant_requests_total"); got != 1 {
		t.Errorf("rootd_tenant_requests_total TYPE line appears %d times, want 1", got)
	}
}

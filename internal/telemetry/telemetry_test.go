package telemetry

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"realroots/internal/metrics"
)

// logLines parses a JSON-lines slog buffer.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func findLog(lines []map[string]any, msg string) map[string]any {
	for _, m := range lines {
		if m["msg"] == msg {
			return m
		}
	}
	return nil
}

func TestRunLifecycleLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	tel := New(Config{Logger: logger})

	run := tel.RunStart("core", 20, 16, 4)
	if run.ID != 1 {
		t.Fatalf("first run ID = %d", run.ID)
	}
	run.PhaseBegin("remainder")
	run.PhaseEnd("remainder")
	run.BudgetExhausted(12345)
	run.TaskRetry("chunk", 2)
	run.TaskPanic(3, "chunk", "boom")
	run.Finish(OutcomeOK, 5, 999, metrics.Report{})

	lines := logLines(t, &buf)
	start := findLog(lines, "solve start")
	if start == nil || start["kind"] != "core" || start["degree"] != float64(20) {
		t.Fatalf("solve start line: %v", start)
	}
	if pb := findLog(lines, "phase begin"); pb == nil || pb["phase"] != "remainder" {
		t.Fatalf("phase begin line: %v", pb)
	}
	if be := findLog(lines, "budget exhausted"); be == nil || be["level"] != "WARN" {
		t.Fatalf("budget exhausted line: %v", be)
	}
	if tr := findLog(lines, "task retry"); tr == nil || tr["level"] != "WARN" || tr["attemptsLeft"] != float64(2) {
		t.Fatalf("task retry line: %v", tr)
	}
	if tp := findLog(lines, "task panic"); tp == nil || tp["level"] != "ERROR" || tp["worker"] != float64(3) {
		t.Fatalf("task panic line: %v", tp)
	}
	fin := findLog(lines, "solve finish")
	if fin == nil || fin["outcome"] != "ok" || fin["level"] != "INFO" || fin["roots"] != float64(5) {
		t.Fatalf("solve finish line: %v", fin)
	}

	// The same lifecycle also landed in the flight recorder…
	d := tel.Flight().Dump()
	if err := d.Validate(); err != nil {
		t.Fatalf("flight dump: %v", err)
	}
	names := map[string]bool{}
	for _, r := range d.Records {
		names[r.Name] = true
	}
	for _, want := range []string{"start", "remainder", "budget_exhausted", "retry:chunk", "panic:chunk", "finish"} {
		if !names[want] {
			t.Errorf("flight recorder missing %q record (have %v)", want, names)
		}
	}
	// …and in the registry.
	if tot := tel.Registry().Totals(); tot.Solves[OutcomeOK] != 1 || tot.Roots != 5 {
		t.Fatalf("registry totals: %+v", tot)
	}
}

func TestFinishLogLevels(t *testing.T) {
	cases := []struct {
		o    Outcome
		want string
	}{
		{OutcomeOK, "INFO"},
		{OutcomePanic, "ERROR"},
		{OutcomeBudget, "WARN"},
		{OutcomeCanceled, "WARN"},
		{OutcomeDeadline, "WARN"},
		{OutcomeError, "WARN"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		tel := New(Config{Logger: slog.New(slog.NewJSONHandler(&buf, nil))})
		tel.RunStart("core", 4, 4, 1).Finish(tc.o, 0, 0, metrics.Report{})
		fin := findLog(logLines(t, &buf), "solve finish")
		if fin == nil || fin["level"] != tc.want {
			t.Errorf("outcome %s logged at %v, want %s", tc.o, fin["level"], tc.want)
		}
	}
}

func TestNoLoggerStillRecords(t *testing.T) {
	tel := New(Config{})
	if tel.Logger() != nil {
		t.Fatal("unexpected logger")
	}
	run := tel.RunStart("sturm", 8, 4, 1)
	run.PhaseBegin("sturm")
	run.PhaseEnd("sturm")
	run.Finish(OutcomeOK, 2, 10, metrics.Report{})
	if tel.Flight().Written() == 0 {
		t.Fatal("flight recorder idle without a logger")
	}
	if tel.Registry().Totals().Solves[OutcomeOK] != 1 {
		t.Fatal("registry idle without a logger")
	}
}

func TestNilHubAndRun(t *testing.T) {
	var tel *Telemetry
	if tel.Flight() != nil || tel.Registry() != nil || tel.Logger() != nil {
		t.Fatal("nil hub handed out non-nil sinks")
	}
	run := tel.RunStart("core", 10, 16, 2)
	if run != nil {
		t.Fatal("nil hub returned a live run")
	}
	// Every method must be callable on the nil run.
	run.PhaseBegin("a")
	run.PhaseEnd("a")
	run.Event("e", 1)
	run.BudgetExhausted(1)
	run.SchedStats(SchedStats{})
	run.Finish(OutcomeOK, 0, 0, metrics.Report{})
	run.TaskStart(0, "t")
	run.TaskDone(0, "t")
	run.TaskPanic(0, "t", nil)
	run.TaskRetry("t", 1)
}

func TestRunIDsAreUnique(t *testing.T) {
	tel := New(Config{})
	a := tel.RunStart("core", 4, 4, 1)
	b := tel.RunStart("sturm", 4, 4, 1)
	if a.ID == b.ID {
		t.Fatalf("duplicate run IDs: %d", a.ID)
	}
}

package telemetry

import (
	"fmt"
	"html/template"
	"io"

	"realroots/internal/trace"
)

// tracesTmpl renders the /debug/traces index: retention stats, then
// one row per retained trace newest-first, each linking its Chrome
// export download. Styled after /debug/requests so the two inspectors
// read as one surface.
var tracesTmpl = template.Must(template.New("traces").Funcs(template.FuncMap{
	"secs": func(v float64) string {
		switch {
		case v == 0:
			return "-"
		case v < 0.001:
			return fmt.Sprintf("%.0fµs", v*1e6)
		case v < 1:
			return fmt.Sprintf("%.1fms", v*1e3)
		default:
			return fmt.Sprintf("%.3fs", v)
		}
	},
	"pct": func(v float64) string { return fmt.Sprintf("%.0f%%", v*100) },
}).Parse(`<!DOCTYPE html>
<html><head><title>/debug/traces</title><style>
body { font-family: sans-serif; font-size: 13px; }
table { border-collapse: collapse; margin-bottom: 1.5em; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #eee; }
td.s { text-align: left; font-family: monospace; }
.err { color: #b00; }
</style></head><body>
<h1>rootd tail-sampled traces</h1>
<p>{{len .Traces}} retained in a ring of {{.Capacity}} ({{.Retained}} kept of {{.Seen}} solves seen, {{.Evicted}} evicted).
Retention reasons: {{range $k, $v := .ByReason}}{{$k}}={{$v}} {{end}}
<a href="?format=json">JSON</a></p>
{{if .Traces}}<table>
<tr><th>seq</th><th>request</th><th>tenant</th><th>outcome</th><th>reason</th><th>start</th><th>wall</th><th>workers</th><th>efficiency</th><th>serial</th><th>spans</th><th>dropped</th><th>export</th></tr>
{{range .Traces}}<tr>
<td>{{.Seq}}</td><td class=s>{{.RequestID}}</td><td class=s>{{.Tenant}}</td>
<td class=s>{{if eq .Outcome "ok"}}ok{{else}}<span class=err>{{.Outcome}}</span>{{end}}</td>
<td class=s>{{.Reason}}</td>
<td class=s>{{.Start.Format "15:04:05.000"}}</td>
<td>{{secs .WallSeconds}}</td><td>{{.Workers}}</td>
<td>{{if .Workers}}{{pct .Efficiency}}{{else}}-{{end}}</td><td>{{pct .SerialFraction}}</td>
<td>{{.Spans}}</td><td>{{.DroppedSpans}}</td>
<td class=s><a href="/debug/traces/{{.Seq}}">chrome json</a></td>
</tr>{{end}}</table>{{else}}<p>none retained yet</p>{{end}}
</body></html>
`))

func writeTracesHTML(w io.Writer, d trace.StoreDump) {
	_ = tracesTmpl.Execute(w, d)
}

// tenantsTmpl renders the /debug/tenants ledger: one row per tenant,
// sorted by ID, with the integral usage counters the "why is this
// tenant slow?" runbook starts from.
var tenantsTmpl = template.Must(template.New("tenants").Funcs(template.FuncMap{
	"secs": func(v float64) string { return fmt.Sprintf("%.3f", v) },
}).Parse(`<!DOCTYPE html>
<html><head><title>/debug/tenants</title><style>
body { font-family: sans-serif; font-size: 13px; }
table { border-collapse: collapse; margin-bottom: 1.5em; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #eee; }
td.s { text-align: left; font-family: monospace; }
</style></head><body>
<h1>rootd tenant usage</h1>
<p>{{len .Tenants}} tenants (ledger cap {{.MaxTenants}}; overflow folds into &quot;other&quot;, anonymous requests into &quot;anonymous&quot;).
<a href="?format=json">JSON</a></p>
{{if .Tenants}}<table>
<tr><th>tenant</th><th>requests</th><th>solves</th><th>solve s</th><th>bit-ops</th><th>cache hits</th><th>rejections</th><th>errors</th><th>retained traces</th></tr>
{{range .Tenants}}<tr>
<td class=s>{{.Tenant}}</td><td>{{.Requests}}</td><td>{{.Solves}}</td>
<td>{{secs .SolveSeconds}}</td><td>{{.BitOps}}</td><td>{{.CacheHits}}</td>
<td>{{.Rejections}}</td><td>{{.Errors}}</td><td>{{.RetainedTraces}}</td>
</tr>{{end}}</table>{{else}}<p>none yet</p>{{end}}
</body></html>
`))

func writeTenantsHTML(w io.Writer, d TenantsDump) {
	_ = tenantsTmpl.Execute(w, d)
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// FlightSchema identifies the flight-recorder dump JSON format.
const FlightSchema = "realroots/flight/v1"

// RecordKind distinguishes span boundaries from point events.
type RecordKind uint8

const (
	KindBegin RecordKind = iota
	KindEnd
	KindEvent
)

var kindNames = [...]string{"begin", "end", "event"}

// String returns the kind's wire name.
func (k RecordKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its name.
func (k RecordKind) MarshalJSON() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("telemetry: invalid record kind %d", int(k))
	}
	return json.Marshal(kindNames[k])
}

// UnmarshalJSON decodes a kind name.
func (k *RecordKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = RecordKind(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown record kind %q", s)
}

// Record is one flight-recorder entry. Records are immutable once
// published to the ring.
type Record struct {
	// Seq is the record's global sequence number (0-based, assigned in
	// publication order).
	Seq uint64 `json:"seq"`
	// Run is the ID of the solve run the record belongs to.
	Run uint64 `json:"run"`
	// Lane is the worker index, or ControlLane for lifecycle/phase
	// records.
	Lane int `json:"lane"`
	// Kind is begin/end/event.
	Kind RecordKind `json:"kind"`
	// Name is the span or event name (for KindBegin/KindEnd, the span
	// name that must match between the pair).
	Name string `json:"name"`
	// Cat is the span category (trace.CatPhase or trace.CatTask);
	// empty for events.
	Cat string `json:"cat,omitempty"`
	// AtNs is the record time in nanoseconds since the recorder was
	// created.
	AtNs int64 `json:"atNs"`
	// Value is an optional event payload (roots found, budget spent,
	// attempts left, …).
	Value int64 `json:"value,omitempty"`
}

// Flight is a fixed-size lock-free ring buffer of recent Records —
// the always-on counterpart of the unbounded trace.Tracer lanes.
// Writers claim a slot with one atomic add and publish the record with
// one atomic pointer store; there are no locks on the write path and
// no allocation beyond the record itself, so it can stay enabled in
// production. A nil *Flight is valid everywhere and records nothing
// with zero allocations.
type Flight struct {
	epoch time.Time
	seq   atomic.Uint64
	slots []atomic.Pointer[Record]
}

// minFlightCapacity keeps degenerate rings from thrashing.
const minFlightCapacity = 64

// NewFlight creates a flight recorder holding the most recent
// capacity records (clamped up to a small minimum).
func NewFlight(capacity int) *Flight {
	if capacity < minFlightCapacity {
		capacity = minFlightCapacity
	}
	return &Flight{
		epoch: time.Now(),
		slots: make([]atomic.Pointer[Record], capacity),
	}
}

// Capacity returns the ring size (0 for a nil recorder).
func (f *Flight) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Written returns the total number of records ever published (0 for a
// nil recorder). Records older than the most recent Capacity have been
// overwritten.
func (f *Flight) Written() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// record stamps, sequences, and publishes rec.
func (f *Flight) record(rec *Record) {
	// Timestamp before claiming the sequence number so that records
	// published by one goroutine have non-decreasing AtNs in Seq order
	// (the dump validator checks this per (run, lane)).
	rec.AtNs = int64(time.Since(f.epoch))
	rec.Seq = f.seq.Add(1) - 1
	f.slots[rec.Seq%uint64(len(f.slots))].Store(rec)
}

// Begin records the start of a span on the given run and lane.
func (f *Flight) Begin(run uint64, lane int, name, cat string) {
	if f == nil {
		return
	}
	f.record(&Record{Run: run, Lane: lane, Kind: KindBegin, Name: name, Cat: cat})
}

// End records the end of the innermost open span with the given name.
func (f *Flight) End(run uint64, lane int, name string) {
	if f == nil {
		return
	}
	f.record(&Record{Run: run, Lane: lane, Kind: KindEnd, Name: name})
}

// Event records a point event.
func (f *Flight) Event(run uint64, lane int, name string, value int64) {
	if f == nil {
		return
	}
	f.record(&Record{Run: run, Lane: lane, Kind: KindEvent, Name: name, Value: value})
}

// Dump is a validated snapshot of the flight recorder's window.
type Dump struct {
	Schema   string `json:"schema"`
	Capacity int    `json:"capacity"`
	// Written is the total number of records published when the dump
	// was taken; Dropped = Written - len(Records) of them had been
	// overwritten (or were mid-publication) and are absent.
	Written uint64   `json:"written"`
	Dropped uint64   `json:"dropped"`
	Records []Record `json:"records"`
}

// Dump snapshots the ring. Because writers are concurrent, slots at
// the ring's wrap point may hold records from two different laps; the
// snapshot is trimmed to the longest suffix of consecutive sequence
// numbers, which is always a consistent recent window. A nil recorder
// dumps as nil.
func (f *Flight) Dump() *Dump {
	if f == nil {
		return nil
	}
	recs := make([]Record, 0, len(f.slots))
	for i := range f.slots {
		if r := f.slots[i].Load(); r != nil {
			recs = append(recs, *r)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	k := len(recs) - 1
	for k > 0 && recs[k-1].Seq+1 == recs[k].Seq {
		k--
	}
	if k > 0 {
		recs = recs[k:]
	}
	// Written is read after collecting the slots so it can only
	// overcount (records published mid-dump land in Dropped, never in
	// a negative count).
	written := f.seq.Load()
	return &Dump{
		Schema:   FlightSchema,
		Capacity: len(f.slots),
		Written:  written,
		Dropped:  written - uint64(len(recs)),
		Records:  recs,
	}
}

// WriteJSON writes the dump as indented JSON.
func (d *Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// Validate checks the dump's internal consistency: schema and counts,
// consecutive sequence numbers, and — per (run, lane) — the span
// nesting invariants that trace.Validate enforces on full traces,
// adapted to a window that may have lost its beginning to ring
// wraparound:
//
//   - span records on one lane have non-decreasing timestamps;
//   - an End whose lane has an open span must close the innermost one
//     (matching name — spans nest properly);
//   - an End on an empty lane stack is permitted only if records were
//     dropped (its Begin may predate the window);
//   - spans still open at the end of the window are permitted (the
//     dump may precede their End).
func (d *Dump) Validate() error {
	if d == nil {
		return fmt.Errorf("telemetry: nil flight dump")
	}
	if d.Schema != FlightSchema {
		return fmt.Errorf("telemetry: flight dump schema %q, want %q", d.Schema, FlightSchema)
	}
	if d.Capacity <= 0 {
		return fmt.Errorf("telemetry: flight dump capacity %d", d.Capacity)
	}
	if len(d.Records) > d.Capacity {
		return fmt.Errorf("telemetry: %d records exceed capacity %d", len(d.Records), d.Capacity)
	}
	if d.Written < uint64(len(d.Records)) {
		return fmt.Errorf("telemetry: written %d < %d records", d.Written, len(d.Records))
	}
	if d.Dropped != d.Written-uint64(len(d.Records)) {
		return fmt.Errorf("telemetry: dropped %d, want written-records = %d", d.Dropped, d.Written-uint64(len(d.Records)))
	}
	type laneKey struct {
		run  uint64
		lane int
	}
	type laneState struct {
		stack  []string
		lastAt int64
	}
	lanes := map[laneKey]*laneState{}
	for i, r := range d.Records {
		if i > 0 && r.Seq != d.Records[i-1].Seq+1 {
			return fmt.Errorf("telemetry: record %d has seq %d after %d (window not consecutive)", i, r.Seq, d.Records[i-1].Seq)
		}
		if r.Name == "" {
			return fmt.Errorf("telemetry: record seq %d has empty name", r.Seq)
		}
		if r.AtNs < 0 {
			return fmt.Errorf("telemetry: record seq %d has negative timestamp", r.Seq)
		}
		if int(r.Kind) >= len(kindNames) {
			return fmt.Errorf("telemetry: record seq %d has invalid kind %d", r.Seq, int(r.Kind))
		}
		if r.Kind == KindEvent {
			continue
		}
		key := laneKey{r.Run, r.Lane}
		st := lanes[key]
		if st == nil {
			st = &laneState{}
			lanes[key] = st
		}
		// Span records on one lane are produced by one goroutine, so
		// their timestamps must be ordered.
		if r.AtNs < st.lastAt {
			return fmt.Errorf("telemetry: record seq %d (run %d lane %d) goes back in time", r.Seq, r.Run, r.Lane)
		}
		st.lastAt = r.AtNs
		switch r.Kind {
		case KindBegin:
			st.stack = append(st.stack, r.Name)
		case KindEnd:
			if n := len(st.stack); n > 0 {
				if top := st.stack[n-1]; top != r.Name {
					return fmt.Errorf("telemetry: record seq %d ends span %q but %q is open (run %d lane %d)", r.Seq, r.Name, top, r.Run, r.Lane)
				}
				st.stack = st.stack[:n-1]
			} else if d.Dropped == 0 {
				return fmt.Errorf("telemetry: record seq %d ends span %q with no open span and nothing dropped (run %d lane %d)", r.Seq, r.Name, r.Run, r.Lane)
			}
		}
	}
	return nil
}

// ValidateDumpJSON parses data as a flight-recorder dump and validates
// it.
func ValidateDumpJSON(data []byte) error {
	var d Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("telemetry: parsing flight dump: %w", err)
	}
	return d.Validate()
}

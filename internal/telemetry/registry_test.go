package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"realroots/internal/metrics"
	"realroots/internal/trace"
)

// sampleReport builds a metrics report with every family populated so
// the exposition exercises all its branches.
func sampleReport() metrics.Report {
	var c metrics.Counters
	c.AddMul(metrics.PhaseRemainder, 100, 200)
	c.AddMul(metrics.PhaseRemainder, 5000, 5000)
	c.AddDivCost(metrics.PhaseTree, 300, 100, 12345)
	c.AddAdd(metrics.PhaseSort)
	c.AddEval(metrics.PhaseBisection)
	return c.Snapshot()
}

func populatedRegistry(t *testing.T) *Telemetry {
	t.Helper()
	tel := New(Config{FlightCapacity: 128})
	for i, o := range Outcomes {
		run := tel.RunStart("core", 10+i, 16, 2)
		run.SchedStats(SchedStats{Executed: 7, Retries: 1, MaxQueueDepth: int64(3 + i)})
		run.Finish(o, i, int64(1000*(i+1)), sampleReport())
	}
	run := tel.RunStart("core", 40, 32, 4)
	run.Utilization(trace.Summary{Wall: time.Second, Busy: 3 * time.Second, Parallelism: 3, SerialFraction: 0.25})
	run.Finish(OutcomeOK, 4, 500, sampleReport())
	return tel
}

// TestWritePrometheusValidates renders the full registry and runs the
// strict exposition parser over it — the satellite guarantee that
// whatever /metrics serves is well-formed 0.0.4 text.
func TestWritePrometheusValidates(t *testing.T) {
	tel := populatedRegistry(t)
	var buf bytes.Buffer
	if err := tel.Registry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	for _, want := range []string{
		`realroots_solves_total{outcome="ok"} 2`,
		`realroots_solves_total{outcome="panic"} 1`,
		"realroots_runs_active 0",
		"realroots_roots_total 19",
		`realroots_phase_ops_total{phase="remainder",op="mul"} `,
		`realroots_phase_bits_total{phase="tree",op="div",cost="model"} `,
		`realroots_phase_bits_total{phase="tree",op="div",cost="actual"} `,
		`realroots_operand_bits_ops_total{phase="remainder",bits="[4096,8192)"} `,
		"realroots_sched_tasks_total 42",
		"realroots_sched_retries_total 6",
		"realroots_sched_max_queue_depth 8",
		"realroots_traced_runs_total 1",
		"realroots_trace_parallelism 3",
		"realroots_trace_serial_fraction 0.25",
		"realroots_flight_capacity 128",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

func TestWritePrometheusEmptyRegistryValidates(t *testing.T) {
	tel := New(Config{})
	var buf bytes.Buffer
	if err := tel.Registry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("empty-registry exposition invalid: %v\n%s", err, buf.String())
	}
	// Outcome labels are pre-declared even before any solve.
	if !strings.Contains(buf.String(), `realroots_solves_total{outcome="canceled"} 0`) {
		t.Fatal("outcome label set not pre-declared")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	if err := (*Registry)(nil).WritePrometheus(&bytes.Buffer{}); err == nil {
		t.Fatal("nil registry rendered")
	}
}

func TestRegistryTotals(t *testing.T) {
	tel := populatedRegistry(t)
	tot := tel.Registry().Totals()
	if tot.Solves[OutcomeOK] != 2 || tot.Solves[OutcomeBudget] != 1 {
		t.Fatalf("solves: %+v", tot.Solves)
	}
	if tot.SchedTasks != 42 || tot.Retries != 6 {
		t.Fatalf("sched totals: %+v", tot)
	}
	nilTot := (*Registry)(nil).Totals()
	if nilTot.Solves == nil || len(nilTot.Solves) != 0 {
		t.Fatalf("nil registry totals: %+v", nilTot)
	}
}

func TestEscapeLabel(t *testing.T) {
	got := escapeLabel("a\\b\"c\nd")
	want := `a\\b\"c\nd`
	if got != want {
		t.Fatalf("escapeLabel = %q, want %q", got, want)
	}
	// And the validator accepts an exposition using the escaped value.
	expo := "# HELP m h\n# TYPE m counter\nm{l=\"" + got + "\"} 1\n"
	if err := ValidateExposition([]byte(expo)); err != nil {
		t.Fatalf("escaped label rejected: %v", err)
	}
}

func TestBucketLabel(t *testing.T) {
	if got := bucketLabel(0); got != "[0,1)" {
		t.Fatalf("bucketLabel(0) = %q", got)
	}
	if got := bucketLabel(3); got != "[4,8)" {
		t.Fatalf("bucketLabel(3) = %q", got)
	}
	top := bucketLabel(metrics.BitLenBuckets - 1)
	if !strings.HasSuffix(top, ",inf)") {
		t.Fatalf("top bucket %q not unbounded", top)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"no trailing newline", "# HELP a b\n# TYPE a counter\na 1"},
		{"blank line", "# HELP a b\n\n# TYPE a counter\na 1\n"},
		{"sample before type", "a 1\n"},
		{"bad type", "# TYPE a widget\na 1\n"},
		{"dup type", "# TYPE a counter\n# TYPE a counter\na 1\n"},
		{"dup help", "# HELP a b\n# HELP a c\n"},
		{"dup sample", "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n"},
		{"negative counter", "# TYPE a counter\na -1\n"},
		{"nan counter", "# TYPE a counter\na NaN\n"},
		{"bad name", "# TYPE 9a counter\n"},
		{"bad label name", "# TYPE a counter\na{9x=\"1\"} 1\n"},
		{"unquoted label", "# TYPE a counter\na{x=1} 1\n"},
		{"bad escape", "# TYPE a counter\na{x=\"\\t\"} 1\n"},
		{"unterminated labels", "# TYPE a counter\na{x=\"1\" 1\n"},
		{"missing value", "# TYPE a counter\na\n"},
		{"junk value", "# TYPE a counter\na one\n"},
		{"bad timestamp", "# TYPE a counter\na 1 soon\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateExposition([]byte(tc.data)); err == nil {
				t.Fatalf("accepted %q", tc.data)
			}
		})
	}
	ok := "# HELP a b\n# TYPE a gauge\n# arbitrary comment\na{x=\"1\"} -2.5\na 1 1700000000\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Fatalf("rejected valid exposition: %v", err)
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// Handler returns the debug mux serving the hub:
//
//	/metrics          Prometheus text exposition of the Registry
//	/debug/flight     JSON dump of the flight recorder
//	/debug/requests   live request inspector (HTML; ?format=json for the dump)
//	/debug/pprof/*    the standard runtime profiles
//	/                 a plain-text index
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := t.Registry().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := t.Flight().Dump().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		dump := t.Requests().Dump()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(dump); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeRequestsHTML(w, dump)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		store := t.Traces()
		if store == nil {
			http.Error(w, "trace store disabled", http.StatusNotFound)
			return
		}
		dump := store.Dump()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(dump); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeTracesHTML(w, dump)
	})
	mux.HandleFunc("/debug/traces/", func(w http.ResponseWriter, r *http.Request) {
		store := t.Traces()
		if store == nil {
			http.Error(w, "trace store disabled", http.StatusNotFound)
			return
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(r.URL.Path, "/debug/traces/"), 10, 64)
		if err != nil {
			http.Error(w, "bad trace sequence number", http.StatusBadRequest)
			return
		}
		rt := store.Get(seq)
		if rt == nil {
			http.Error(w, "trace not retained (or evicted)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q", fmt.Sprintf("trace-%d.json", seq)))
		if err := rt.WriteChrome(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/tenants", func(w http.ResponseWriter, r *http.Request) {
		dump := t.Tenants().Dump()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(dump); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		writeTenantsHTML(w, dump)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "realroots telemetry")
		fmt.Fprintln(w, "  /metrics          Prometheus exposition")
		fmt.Fprintln(w, "  /debug/flight     flight recorder dump (JSON)")
		fmt.Fprintln(w, "  /debug/requests   live request inspector (?format=json)")
		fmt.Fprintln(w, "  /debug/traces     tail-sampled trace store (?format=json; /<seq> downloads Chrome JSON)")
		fmt.Fprintln(w, "  /debug/tenants    per-tenant usage ledger (?format=json)")
		fmt.Fprintln(w, "  /debug/pprof/     runtime profiles")
	})
	return mux
}

// Server is a running telemetry debug server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the debug server on addr (host:port; port 0 picks an
// ephemeral port) and serves in a background goroutine until Close.
func (t *Telemetry) Serve(addr string) (*Server, error) {
	if t == nil {
		return nil, fmt.Errorf("telemetry: cannot serve a nil hub")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           t.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the server's bound address (useful with port 0).
func (s *Server) Addr() string {
	return s.ln.Addr().String()
}

// Close stops the server immediately.
func (s *Server) Close() error {
	return s.srv.Close()
}

package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"realroots/internal/metrics"
	"realroots/internal/trace"
)

// Registry accumulates per-run telemetry into process-lifetime totals
// and renders them in Prometheus text exposition format (version
// 0.0.4). All metric families are prefixed realroots_. Updates happen
// once per finished run (not per arithmetic operation), so the
// registry adds no hot-path cost.
type Registry struct {
	flight *Flight

	// families holds custom (non-realroots_) metric families registered
	// by layered servers; see families.go.
	families famState

	mu           sync.Mutex
	runsStarted  int64
	runsFinished int64
	solves       map[Outcome]int64
	solveSecs    float64
	roots        int64
	bitOps       int64
	agg          metrics.Report
	sched        SchedStats // counters summed; MaxQueueDepth is the max
	tracedRuns   int64
	parallelism  float64
	serialFrac   float64
}

func newRegistry(f *Flight) *Registry {
	return &Registry{flight: f, solves: make(map[Outcome]int64)}
}

func (g *Registry) runStarted() {
	g.mu.Lock()
	g.runsStarted++
	g.mu.Unlock()
}

func (g *Registry) finishRun(o Outcome, elapsed time.Duration, roots int, bitOps int64, rep metrics.Report, s SchedStats, hasSched bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.runsFinished++
	g.solves[o]++
	g.solveSecs += elapsed.Seconds()
	g.roots += int64(roots)
	g.bitOps += bitOps
	g.agg = g.agg.Add(rep)
	if hasSched {
		g.sched.Executed += s.Executed
		g.sched.Panics += s.Panics
		g.sched.Retries += s.Retries
		if s.MaxQueueDepth > g.sched.MaxQueueDepth {
			g.sched.MaxQueueDepth = s.MaxQueueDepth
		}
	}
}

func (g *Registry) setUtilization(s trace.Summary) {
	g.mu.Lock()
	g.tracedRuns++
	g.parallelism = s.Parallelism
	g.serialFrac = s.SerialFraction
	g.mu.Unlock()
}

// Totals is a plain snapshot of the registry's headline numbers, for
// programmatic consumers (the soak experiment's summary).
type Totals struct {
	Solves     map[Outcome]int64
	Roots      int64
	BitOps     int64
	SchedTasks int64
	Panics     int64
	Retries    int64
}

// Totals returns a copy of the headline totals (zero value for a nil
// registry).
func (g *Registry) Totals() Totals {
	if g == nil {
		return Totals{Solves: map[Outcome]int64{}}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	t := Totals{
		Solves:     make(map[Outcome]int64, len(g.solves)),
		Roots:      g.roots,
		BitOps:     g.bitOps,
		SchedTasks: g.sched.Executed,
		Panics:     g.sched.Panics,
		Retries:    g.sched.Retries,
	}
	for o, n := range g.solves {
		t.Solves[o] = n
	}
	return t
}

// expoWriter accumulates exposition lines, tracking the first error.
type expoWriter struct {
	w   io.Writer
	err error
}

func (e *expoWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// family emits the HELP and TYPE header for one metric family.
func (e *expoWriter) family(name, help, typ string) {
	e.printf("# HELP %s %s\n", name, help)
	e.printf("# TYPE %s %s\n", name, typ)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// sampleLine renders one sample line. labels come as name=value pairs
// in emission order.
func sampleLine(name, value string, labels ...string) string {
	if len(labels) == 0 {
		return name + " " + value
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(labels[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(labels[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	sb.WriteByte(' ')
	sb.WriteString(value)
	return sb.String()
}

// sample emits one sample line.
func (e *expoWriter) sample(name string, value string, labels ...string) {
	e.printf("%s\n", sampleLine(name, value, labels...))
}

func (e *expoWriter) sampleInt(name string, v int64, labels ...string) {
	e.sample(name, strconv.FormatInt(v, 10), labels...)
}

func (e *expoWriter) sampleFloat(name string, v float64, labels ...string) {
	e.sample(name, strconv.FormatFloat(v, 'g', -1, 64), labels...)
}

// bucketLabel renders histogram bucket b as its half-open bit-length
// interval, e.g. "[16,32)"; the unbounded top bucket is "[262144,inf)".
func bucketLabel(b int) string {
	lo, hi := metrics.BucketRange(b)
	if hi == 0 {
		return fmt.Sprintf("[%d,inf)", lo)
	}
	return fmt.Sprintf("[%d,%d)", lo, hi)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. Output is deterministic: families in fixed order, outcome
// and phase labels in their declaration order, histogram buckets
// ascending. Zero-valued per-phase samples are omitted (families whose
// phases recorded nothing still get their HELP/TYPE header).
func (g *Registry) WritePrometheus(w io.Writer) error {
	if g == nil {
		return fmt.Errorf("telemetry: nil registry")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	e := &expoWriter{w: w}

	e.family("realroots_runs_active", "Solve runs started and not yet finished.", "gauge")
	e.sampleInt("realroots_runs_active", g.runsStarted-g.runsFinished)

	e.family("realroots_solves_total", "Finished solve runs by outcome.", "counter")
	for _, o := range Outcomes {
		e.sampleInt("realroots_solves_total", g.solves[o], "outcome", string(o))
	}

	e.family("realroots_solve_seconds_total", "Wall-clock seconds spent in finished solve runs.", "counter")
	e.sampleFloat("realroots_solve_seconds_total", g.solveSecs)

	e.family("realroots_roots_total", "Real roots found by finished solve runs.", "counter")
	e.sampleInt("realroots_roots_total", g.roots)

	e.family("realroots_bit_ops_total", "Cumulative bit operations (Σ bitlen·bitlen over multiplications and divisions, schoolbook model).", "counter")
	e.sampleInt("realroots_bit_ops_total", g.bitOps)

	e.family("realroots_phase_ops_total", "Arithmetic operations by pipeline phase and kind.", "counter")
	for p := metrics.Phase(0); p < metrics.NumPhases; p++ {
		pr := g.agg.Phases[p]
		name := p.String()
		for _, op := range [...]struct {
			kind string
			n    int64
		}{{"mul", pr.Muls}, {"div", pr.Divs}, {"add", pr.Adds}, {"eval", pr.Evals}} {
			if op.n != 0 {
				e.sampleInt("realroots_phase_ops_total", op.n, "phase", name, "op", op.kind)
			}
		}
	}

	e.family("realroots_phase_bits_total", "Bit cost by phase, operation, and cost model (model = paper's schoolbook analysis, actual = the run's arithmetic profile).", "counter")
	for p := metrics.Phase(0); p < metrics.NumPhases; p++ {
		pr := g.agg.Phases[p]
		name := p.String()
		for _, c := range [...]struct {
			op, cost string
			n        int64
		}{
			{"mul", "model", pr.MulBits},
			{"mul", "actual", pr.MulBitsActual},
			{"div", "model", pr.DivBits},
			{"div", "actual", pr.DivBitsActual},
		} {
			if c.n != 0 {
				e.sampleInt("realroots_phase_bits_total", c.n, "phase", name, "op", c.op, "cost", c.cost)
			}
		}
	}

	e.family("realroots_operand_bits_ops_total", "Multiplications and divisions by phase and log2 bit-length bucket of the larger operand.", "counter")
	for p := metrics.Phase(0); p < metrics.NumPhases; p++ {
		pr := g.agg.Phases[p]
		name := p.String()
		for b := 0; b < metrics.BitLenBuckets; b++ {
			if pr.BitLen[b] != 0 {
				e.sampleInt("realroots_operand_bits_ops_total", pr.BitLen[b], "phase", name, "bits", bucketLabel(b))
			}
		}
	}

	e.family("realroots_sched_tasks_total", "Scheduler tasks executed.", "counter")
	e.sampleInt("realroots_sched_tasks_total", g.sched.Executed)
	e.family("realroots_sched_panics_total", "Task panics isolated by the scheduler.", "counter")
	e.sampleInt("realroots_sched_panics_total", g.sched.Panics)
	e.family("realroots_sched_retries_total", "Task attempts requeued by SubmitRetry.", "counter")
	e.sampleInt("realroots_sched_retries_total", g.sched.Retries)
	e.family("realroots_sched_max_queue_depth", "Largest scheduler queue depth observed in any finished run.", "gauge")
	e.sampleInt("realroots_sched_max_queue_depth", g.sched.MaxQueueDepth)

	e.family("realroots_traced_runs_total", "Runs that published a trace utilization summary.", "counter")
	e.sampleInt("realroots_traced_runs_total", g.tracedRuns)
	e.family("realroots_trace_parallelism", "Achieved parallelism (busy/wall) of the most recent traced run.", "gauge")
	e.sampleFloat("realroots_trace_parallelism", g.parallelism)
	e.family("realroots_trace_serial_fraction", "Serial fraction (wall time with at most one busy lane) of the most recent traced run.", "gauge")
	e.sampleFloat("realroots_trace_serial_fraction", g.serialFrac)

	e.family("realroots_flight_capacity", "Flight recorder ring capacity in records.", "gauge")
	e.sampleInt("realroots_flight_capacity", int64(g.flight.Capacity()))
	e.family("realroots_flight_records_total", "Records published to the flight recorder.", "counter")
	e.sampleInt("realroots_flight_records_total", int64(g.flight.Written()))

	g.families.writeAll(e)

	return e.err
}

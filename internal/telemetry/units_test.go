package telemetry

import (
	"testing"
	"time"
)

// TestFlightUnitsContract pins the flight recorder's clock: Record.AtNs
// is nanoseconds since the recorder was created (JSON field "atNs"),
// not microseconds or milliseconds. Counterpart of the trace package's
// TestUnitsContract.
func TestFlightUnitsContract(t *testing.T) {
	f := NewFlight(8)
	time.Sleep(2 * time.Millisecond)
	f.Event(1, 0, "tick", 0)
	recs := f.Dump().Records
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	at := recs[0].AtNs
	// 2ms elapsed: in nanoseconds that is >= 2e6; if AtNs were µs it
	// would be ~2e3, if ms ~2. Allow an hour of slack upward.
	if at < 2_000_000 {
		t.Errorf("AtNs = %d after a 2ms sleep; too small to be nanoseconds", at)
	}
	if at > int64(time.Hour) {
		t.Errorf("AtNs = %d, implausibly large for this test", at)
	}
}

// TestRequestUnitsContract pins /debug/requests timings: the
// queueWaitSeconds/solveSeconds/totalSeconds fields are float seconds.
func TestRequestUnitsContract(t *testing.T) {
	tr := NewRequestTracker(8)
	r := tr.Start(RequestInfo{ID: "u1", Tenant: "acme", Kind: "solve"})
	r.SetQueueWait(1500 * time.Millisecond)
	r.SetSolve(250*time.Millisecond, 1000, 64)
	r.Finish("ok")
	d := tr.Dump()
	if len(d.Recent) != 1 {
		t.Fatalf("recent = %d, want 1", len(d.Recent))
	}
	snap := d.Recent[0]
	if snap.QueueWaitSecs != 1.5 {
		t.Errorf("queueWaitSeconds = %v, want 1.5 (1500ms expressed in seconds)", snap.QueueWaitSecs)
	}
	if snap.SolveSecs != 0.25 {
		t.Errorf("solveSeconds = %v, want 0.25", snap.SolveSecs)
	}
	if snap.TotalSecs < 0 || snap.TotalSecs > 60 {
		t.Errorf("totalSeconds = %v, out of plausible range for wall-clock seconds", snap.TotalSecs)
	}
}

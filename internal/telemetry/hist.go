package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Float64 is an atomic float64 accumulator: a lock-free counter for
// fractional quantities (request seconds, ratios). The zero value is
// ready to use. Add is a CAS loop over the float's bit pattern, so
// concurrent adds never drop updates — the fix for the hand-rolled
// bits-in-an-int64 accumulation rootd used to carry.
type Float64 struct {
	bits atomic.Uint64
}

// Add atomically adds v.
func (f *Float64) Add(v float64) {
	for {
		old := f.bits.Load()
		new_ := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new_) {
			return
		}
	}
}

// Store atomically replaces the value.
func (f *Float64) Store(v float64) {
	f.bits.Store(math.Float64bits(v))
}

// Load atomically reads the value.
func (f *Float64) Load() float64 {
	return math.Float64frombits(f.bits.Load())
}

// SecondsBuckets is the fixed latency ladder used by the rootd request
// histograms: sub-millisecond cache hits up through minute-scale
// high-µ solves. Fixed buckets keep the exposition deterministic and
// make Observe a binary search plus two atomic adds.
var SecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Exemplar pins one concrete observation to a histogram bucket: the
// request ID that landed there and its exact value. The exposition
// renders it OpenMetrics-style after the bucket sample, so a p99 bucket
// can be traced back to a /debug/requests entry or a flight dump.
type Exemplar struct {
	RequestID string
	Value     float64
}

// Histogram is a fixed-bucket latency histogram with cumulative bucket
// counts, a total sum/count, and one exemplar per bucket (the most
// recent observation that fell in it). All methods are safe for
// concurrent use; Observe is lock-free. A nil *Histogram no-ops.
type Histogram struct {
	// uppers holds the finite bucket upper bounds, ascending. counts
	// has len(uppers)+1 entries; the last is the +Inf overflow bucket.
	uppers    []float64
	counts    []atomic.Uint64
	sum       Float64
	count     atomic.Uint64
	exemplars []atomic.Pointer[Exemplar]
}

// NewHistogram creates a histogram over the given ascending finite
// bucket upper bounds (SecondsBuckets is the standard ladder).
func NewHistogram(uppers []float64) *Histogram {
	u := make([]float64, len(uppers))
	copy(u, uppers)
	sort.Float64s(u)
	return &Histogram{
		uppers:    u,
		counts:    make([]atomic.Uint64, len(u)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(u)+1),
	}
}

// bucketOf returns the index of the first bucket whose upper bound
// holds v (len(uppers) = the +Inf bucket).
func (h *Histogram) bucketOf(v float64) int {
	return sort.SearchFloat64s(h.uppers, v)
}

// Observe records one value. exemplarID, if non-empty, becomes the
// bucket's exemplar (latest observation wins).
func (h *Histogram) Observe(v float64, exemplarID string) {
	if h == nil {
		return
	}
	b := h.bucketOf(v)
	h.counts[b].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if exemplarID != "" {
		h.exemplars[b].Store(&Exemplar{RequestID: exemplarID, Value: v})
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the qth quantile by linear interpolation within
// the bucket holding the target rank — the same estimate a Prometheus
// histogram_quantile would produce from the exposition.
//
// The contract at the edges: an empty histogram (or nil receiver)
// returns 0; q ≤ 0 and NaN return the lower edge of the first
// non-empty bucket; q ≥ 1 returns the upper edge of the highest
// non-empty bucket; and observations in the +Inf overflow bucket clamp
// to the highest finite bound (their true magnitude is unknown).
// Out-of-range q used to extrapolate instead — q > 1 walked off the
// ladder and reported its top bound even when every observation sat in
// the first bucket, and q < 0 interpolated below a bucket's lower edge
// into negative latency (pinned by TestQuantileEdgeCases).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for b := range h.counts {
		n := float64(h.counts[b].Load())
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		if b >= len(h.uppers) { // +Inf bucket: clamp
			if len(h.uppers) == 0 {
				return 0
			}
			return h.uppers[len(h.uppers)-1]
		}
		lo := 0.0
		if b > 0 {
			lo = h.uppers[b-1]
		}
		return lo + (h.uppers[b]-lo)*(rank-cum)/n
	}
	if len(h.uppers) == 0 {
		return 0
	}
	return h.uppers[len(h.uppers)-1]
}

// snapshotBucket is one rendered bucket: its cumulative count up to
// and including the bound, and the bucket's exemplar if any.
type snapshotBucket struct {
	le       float64 // math.Inf(1) for the overflow bucket
	cum      uint64
	exemplar *Exemplar
}

// snapshot renders the histogram's buckets cumulatively, plus sum and
// count, for the exposition writer. The per-bucket counts are read
// low-to-high after count, so cumulative counts never exceed the
// count sample (scrape self-consistency under concurrent Observe is
// best-effort, as with any atomic multi-value scrape).
func (h *Histogram) snapshot() (buckets []snapshotBucket, sum float64, count uint64) {
	buckets = make([]snapshotBucket, len(h.counts))
	var cum uint64
	for b := range h.counts {
		cum += h.counts[b].Load()
		le := math.Inf(1)
		if b < len(h.uppers) {
			le = h.uppers[b]
		}
		buckets[b] = snapshotBucket{le: le, cum: cum, exemplar: h.exemplars[b].Load()}
	}
	return buckets, h.sum.Load(), cum
}

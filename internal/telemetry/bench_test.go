package telemetry

import (
	"testing"

	"realroots/internal/metrics"
	"realroots/internal/trace"
)

// The disabled-telemetry contract: a nil hub, run, or flight recorder
// costs zero allocations on every code path the solver instruments,
// mirroring the nil-tracer guarantee in internal/trace. These guards
// fail the suite (not just a benchmark) if a no-op path starts
// allocating.

func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	var tel *Telemetry
	var rep metrics.Report
	if n := testing.AllocsPerRun(100, func() {
		run := tel.RunStart("core", 50, 32, 8)
		run.PhaseBegin("remainder")
		run.PhaseEnd("remainder")
		run.Event("e", 1)
		run.BudgetExhausted(1)
		run.SchedStats(SchedStats{})
		run.Utilization(trace.Summary{})
		run.TaskStart(0, "t")
		run.TaskDone(0, "t")
		run.TaskPanic(0, "t", nil)
		run.TaskRetry("t", 1)
		run.Finish(OutcomeOK, 0, 0, rep)
	}); n != 0 {
		t.Fatalf("disabled telemetry run path allocates %.1f/op", n)
	}
}

func TestNilFlightZeroAlloc(t *testing.T) {
	var f *Flight
	if n := testing.AllocsPerRun(100, func() {
		f.Begin(1, 0, "task", "cat")
		f.Event(1, 0, "event", 2)
		f.End(1, 0, "task")
	}); n != 0 {
		t.Fatalf("nil flight recorder allocates %.1f/op", n)
	}
}

func BenchmarkDisabledRunLifecycle(b *testing.B) {
	var tel *Telemetry
	var rep metrics.Report
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run := tel.RunStart("core", 50, 32, 8)
		run.PhaseBegin("remainder")
		run.PhaseEnd("remainder")
		run.Finish(OutcomeOK, 0, 0, rep)
	}
}

func BenchmarkDisabledTaskHooks(b *testing.B) {
	var run *Run
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run.TaskStart(0, "t")
		run.TaskDone(0, "t")
	}
}

func BenchmarkNilFlightEvent(b *testing.B) {
	var f *Flight
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Event(1, 0, "e", int64(i))
	}
}

// BenchmarkEnabledFlightEvent is the reference cost of the always-on
// path: one record allocation plus two atomics.
func BenchmarkEnabledFlightEvent(b *testing.B) {
	f := NewFlight(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Event(1, 0, "e", int64(i))
	}
}

func BenchmarkEnabledTaskSpan(b *testing.B) {
	tel := New(Config{})
	run := tel.RunStart("core", 50, 32, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		run.TaskStart(0, "t")
		run.TaskDone(0, "t")
	}
}

package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"realroots/internal/trace"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugTracesAndTenantsEndpoints(t *testing.T) {
	tel := New(Config{TraceStoreCapacity: 8})
	if tel.Traces() == nil || tel.TailSampler() == nil || tel.Tenants() == nil {
		t.Fatal("hub did not wire store/sampler/ledger")
	}

	// Retain one error trace and account one tenant.
	tr := trace.New()
	tr.SetRequestID("req-1")
	l := tr.Lane(trace.ControlLane, "control")
	l.Begin("solve", trace.CatPhase)
	l.End()
	tel.Traces().NoteSeen()
	seq := tel.Traces().Add(trace.RetainedTrace{
		RequestID: "req-1", Tenant: "acme", Outcome: "error",
		Reason: trace.ReasonError, Start: time.Now(),
		WallSeconds: 0.1, Workers: 2, Spans: 1,
	}, tr)
	tel.Tenants().AddRequest("acme")

	srv, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// JSON dump validates and carries the retained trace.
	code, body := getBody(t, base+"/debug/traces?format=json")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces json status %d", code)
	}
	if err := trace.ValidateStoreJSON([]byte(body)); err != nil {
		t.Fatalf("/debug/traces dump invalid: %v", err)
	}
	if !strings.Contains(body, "req-1") {
		t.Error("/debug/traces dump missing retained trace")
	}

	// HTML index renders with a link to the Chrome export.
	code, body = getBody(t, base+"/debug/traces")
	if code != http.StatusOK || !strings.Contains(body, "req-1") {
		t.Fatalf("/debug/traces html: status %d, body %q", code, body)
	}

	// Per-trace Chrome export download.
	code, body = getBody(t, base+"/debug/traces/1")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces/%d status %d", seq, code)
	}
	if err := trace.ValidateChrome([]byte(body)); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	if code, _ := getBody(t, base+"/debug/traces/999"); code != http.StatusNotFound {
		t.Errorf("absent seq status %d, want 404", code)
	}
	if code, _ := getBody(t, base+"/debug/traces/nonsense"); code != http.StatusBadRequest {
		t.Errorf("bad seq status %d, want 400", code)
	}

	// Tenants dump, JSON and HTML.
	code, body = getBody(t, base+"/debug/tenants?format=json")
	if code != http.StatusOK {
		t.Fatalf("/debug/tenants json status %d", code)
	}
	if err := ValidateTenantsJSON([]byte(body)); err != nil {
		t.Fatalf("/debug/tenants dump invalid: %v", err)
	}
	code, body = getBody(t, base+"/debug/tenants")
	if code != http.StatusOK || !strings.Contains(body, "acme") {
		t.Fatalf("/debug/tenants html: status %d", code)
	}
}

func TestDebugTracesDisabled(t *testing.T) {
	tel := New(Config{TraceStoreCapacity: -1})
	if tel.Traces() != nil || tel.TailSampler() != nil {
		t.Fatal("negative capacity should disable the store and sampler")
	}
	// The ledger stays on regardless.
	if tel.Tenants() == nil {
		t.Fatal("ledger disabled")
	}
	srv, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _ := getBody(t, "http://"+srv.Addr()+"/debug/traces"); code != http.StatusNotFound {
		t.Fatalf("/debug/traces with store disabled: status %d, want 404", code)
	}
}

// Package telemetry is the always-on operational counterpart to the
// per-run tracing of internal/trace. Where a Tracer records every span
// of one solve into unbounded lanes (for offline analysis of a single
// run), telemetry is built to stay enabled in a long-running process:
//
//   - a structured event log on log/slog with per-solve lifecycle
//     events (run ID, start/finish, phase transitions, retries, panic
//     isolation, budget exhaustion, cancellation);
//   - a metrics Registry accumulating per-run metrics.Counters
//     snapshots, scheduler statistics, and trace utilization summaries,
//     rendered in Prometheus text exposition format;
//   - a Flight recorder: a fixed-size lock-free ring buffer of recent
//     spans and events that can be dumped on error, SIGQUIT, or request.
//
// Everything is nil-safe in the style of metrics.Counters and
// trace.Tracer: a nil *Telemetry (and the nil *Run it hands out) makes
// every call a zero-allocation no-op, so the solver can be plumbed
// unconditionally and pay nothing when telemetry is disabled.
//
// The package depends only on internal/metrics and internal/trace so
// that sched and core can feed it without an import cycle: sched
// declares a structural Observer interface that *Run satisfies.
package telemetry

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"

	"realroots/internal/metrics"
	"realroots/internal/trace"
)

// Outcome classifies how a solve run ended. The values are the label
// set of the realroots_solves_total exposition family.
type Outcome string

const (
	OutcomeOK       Outcome = "ok"
	OutcomeCanceled Outcome = "canceled"
	OutcomeDeadline Outcome = "deadline"
	OutcomeBudget   Outcome = "budget"
	OutcomePanic    Outcome = "panic"
	OutcomeError    Outcome = "error"
)

// Outcomes lists every outcome in the stable order used by the
// Prometheus exposition.
var Outcomes = []Outcome{
	OutcomeOK, OutcomeCanceled, OutcomeDeadline, OutcomeBudget, OutcomePanic, OutcomeError,
}

// SchedStats mirrors sched.PoolStats without importing the scheduler
// (sched feeds telemetry, so the dependency must point this way).
type SchedStats struct {
	Executed      int64
	Panics        int64
	Retries       int64
	MaxQueueDepth int64
}

// ControlLane is the flight-recorder lane for run-lifecycle and phase
// records, matching trace.ControlLane; worker lanes are ≥ 0.
const ControlLane = trace.ControlLane

// DefaultFlightCapacity is the flight-recorder ring size used when
// Config.FlightCapacity is zero.
const DefaultFlightCapacity = 4096

// Config configures a telemetry hub.
type Config struct {
	// Logger receives the structured solve log. nil disables logging;
	// the registry and flight recorder still run.
	Logger *slog.Logger
	// FlightCapacity is the flight-recorder ring size in records
	// (0 = DefaultFlightCapacity).
	FlightCapacity int
	// TraceStoreCapacity is the tail-sampled trace ring size
	// (0 = trace.DefaultStoreCapacity; < 0 disables the store and
	// sampler — Traces()/TailSampler() return nil).
	TraceStoreCapacity int
	// Tail tunes the tail sampler's retention policy.
	Tail TailConfig
	// MaxTenants bounds the per-tenant usage ledger
	// (0 = DefaultMaxTenants).
	MaxTenants int
}

// Telemetry is the hub tying the three sinks together. One hub serves
// a whole process: runs from concurrent solves interleave safely.
type Telemetry struct {
	logger   *slog.Logger
	flight   *Flight
	reg      *Registry
	requests *RequestTracker
	traces   *trace.Store
	tail     *TailSampler
	tenants  *TenantLedger
	runSeq   atomic.Uint64
}

// New creates a telemetry hub.
func New(cfg Config) *Telemetry {
	capacity := cfg.FlightCapacity
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	t := &Telemetry{
		logger:   cfg.Logger,
		flight:   NewFlight(capacity),
		requests: NewRequestTracker(DefaultRequestRingCapacity),
		tenants:  NewTenantLedger(cfg.MaxTenants),
	}
	if cfg.TraceStoreCapacity >= 0 {
		t.traces = trace.NewStore(cfg.TraceStoreCapacity)
		t.tail = NewTailSampler(cfg.Tail)
	}
	t.reg = newRegistry(t.flight)
	return t
}

// Requests returns the hub's request tracker, backing the
// /debug/requests inspector (nil for a nil hub).
func (t *Telemetry) Requests() *RequestTracker {
	if t == nil {
		return nil
	}
	return t.requests
}

// Traces returns the hub's tail-sampled trace store, backing the
// /debug/traces inspector (nil for a nil hub or a disabled store; a
// nil *trace.Store no-ops everywhere).
func (t *Telemetry) Traces() *trace.Store {
	if t == nil {
		return nil
	}
	return t.traces
}

// TailSampler returns the hub's tail sampler (nil for a nil hub or a
// disabled store; a nil sampler retains nothing).
func (t *Telemetry) TailSampler() *TailSampler {
	if t == nil {
		return nil
	}
	return t.tail
}

// Tenants returns the hub's per-tenant usage ledger, backing the
// /debug/tenants inspector (nil for a nil hub; a nil ledger no-ops).
func (t *Telemetry) Tenants() *TenantLedger {
	if t == nil {
		return nil
	}
	return t.tenants
}

// Flight returns the hub's flight recorder (nil for a nil hub).
func (t *Telemetry) Flight() *Flight {
	if t == nil {
		return nil
	}
	return t.flight
}

// Registry returns the hub's metrics registry (nil for a nil hub).
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Logger returns the hub's structured logger, which may be nil.
func (t *Telemetry) Logger() *slog.Logger {
	if t == nil {
		return nil
	}
	return t.logger
}

// RunInfo describes a solve run to Start: the entry point ("core" for
// the parallel pipeline, "sturm" for the sequential baseline), the
// problem shape, and — when the run serves a tracked request — the
// request ID that every sink should carry.
type RunInfo struct {
	Kind    string
	Degree  int
	Mu      uint
	Workers int
	// RequestID, if non-empty, scopes the run to one external request:
	// every slog record gains a requestId attribute and a
	// "request_id:<id>" control-lane flight event binds the run number
	// to the ID, so one grep over either sink reconstructs the request.
	RequestID string
}

// RunStart opens a new solve run and emits its start event; it is
// Start without a request scope. On a nil hub it returns a nil *Run,
// on which every method is a zero-allocation no-op.
func (t *Telemetry) RunStart(kind string, degree int, mu uint, workers int) *Run {
	return t.Start(RunInfo{Kind: kind, Degree: degree, Mu: mu, Workers: workers})
}

// Start opens a new solve run and emits its start event. On a nil hub
// it returns a nil *Run, on which every method is a zero-allocation
// no-op.
func (t *Telemetry) Start(info RunInfo) *Run {
	if t == nil {
		return nil
	}
	r := &Run{
		ID:        t.runSeq.Add(1),
		tel:       t,
		kind:      info.Kind,
		degree:    info.Degree,
		mu:        info.Mu,
		workers:   info.Workers,
		requestID: info.RequestID,
		start:     time.Now(),
	}
	t.reg.runStarted()
	t.flight.Event(r.ID, ControlLane, "start", int64(info.Degree))
	if r.requestID != "" {
		// The flight Record has no string payload field, so the binding
		// between run number and request ID is its own event whose name
		// carries the ID; everything else on the run is found by run
		// number.
		t.flight.Event(r.ID, ControlLane, "request_id:"+r.requestID, 0)
	}
	if l := t.logger; l != nil {
		attrs := []slog.Attr{
			slog.Uint64("run", r.ID),
			slog.String("kind", info.Kind),
			slog.Int("degree", info.Degree),
			slog.Uint64("mu", uint64(info.Mu)),
			slog.Int("workers", info.Workers),
		}
		attrs = r.appendRequestID(attrs)
		l.LogAttrs(context.Background(), slog.LevelInfo, "solve start", attrs...)
	}
	return r
}

// Run is one solve's handle into the hub. It is created by RunStart
// and closed by Finish. Its Task* methods satisfy sched's Observer
// interface, so a *Run can be installed directly on a worker pool.
// A nil *Run is valid everywhere and records nothing.
type Run struct {
	// ID is the process-unique run identifier (1-based).
	ID        uint64
	tel       *Telemetry
	kind      string
	degree    int
	mu        uint
	workers   int
	requestID string
	start     time.Time

	// sched stats reported before Finish via SchedStats; written by the
	// run's control goroutine only.
	sched    SchedStats
	hasSched bool
}

// RequestID returns the request ID the run was started with (empty for
// unscoped runs and nil runs).
func (r *Run) RequestID() string {
	if r == nil {
		return ""
	}
	return r.requestID
}

// appendRequestID appends the requestId attribute when the run is
// request-scoped.
func (r *Run) appendRequestID(attrs []slog.Attr) []slog.Attr {
	if r.requestID == "" {
		return attrs
	}
	return append(attrs, slog.String("requestId", r.requestID))
}

// PhaseBegin opens a named pipeline phase (flight-recorder span on the
// control lane plus a debug-level log event).
func (r *Run) PhaseBegin(name string) {
	if r == nil {
		return
	}
	r.tel.flight.Begin(r.ID, ControlLane, name, trace.CatPhase)
	if l := r.tel.logger; l != nil && l.Enabled(context.Background(), slog.LevelDebug) {
		l.LogAttrs(context.Background(), slog.LevelDebug, "phase begin",
			r.appendRequestID([]slog.Attr{slog.Uint64("run", r.ID), slog.String("phase", name)})...)
	}
}

// PhaseEnd closes the innermost open phase opened with name.
func (r *Run) PhaseEnd(name string) {
	if r == nil {
		return
	}
	r.tel.flight.End(r.ID, ControlLane, name)
	if l := r.tel.logger; l != nil && l.Enabled(context.Background(), slog.LevelDebug) {
		l.LogAttrs(context.Background(), slog.LevelDebug, "phase end",
			r.appendRequestID([]slog.Attr{slog.Uint64("run", r.ID), slog.String("phase", name)})...)
	}
}

// Event records a point event on the run's control lane.
func (r *Run) Event(name string, value int64) {
	if r == nil {
		return
	}
	r.tel.flight.Event(r.ID, ControlLane, name, value)
}

// BudgetExhausted records the bit-operation budget tripping. It may be
// called from any goroutine (the arithmetic operation that crosses the
// limit fires it).
func (r *Run) BudgetExhausted(bitOps int64) {
	if r == nil {
		return
	}
	r.tel.flight.Event(r.ID, ControlLane, "budget_exhausted", bitOps)
	if l := r.tel.logger; l != nil {
		l.LogAttrs(context.Background(), slog.LevelWarn, "budget exhausted",
			r.appendRequestID([]slog.Attr{slog.Uint64("run", r.ID), slog.Int64("bitOps", bitOps)})...)
	}
}

// SchedStats reports the run's final scheduler statistics; call it
// before Finish (typically from a defer capturing pool.Stats()).
func (r *Run) SchedStats(s SchedStats) {
	if r == nil {
		return
	}
	r.sched = s
	r.hasSched = true
}

// Utilization publishes a completed run's trace utilization summary to
// the registry gauges. Call it only after the traced run finished.
func (r *Run) Utilization(s trace.Summary) {
	if r == nil {
		return
	}
	r.tel.reg.setUtilization(s)
}

// Finish closes the run: it emits the finish event and log record and
// folds the run's totals (outcome, wall time, roots, bit-operation
// metrics, scheduler stats) into the registry.
func (r *Run) Finish(o Outcome, roots int, bitOps int64, rep metrics.Report) {
	if r == nil {
		return
	}
	elapsed := time.Since(r.start)
	r.tel.flight.Event(r.ID, ControlLane, "finish", int64(roots))
	r.tel.reg.finishRun(o, elapsed, roots, bitOps, rep, r.sched, r.hasSched)
	if l := r.tel.logger; l != nil {
		level := slog.LevelInfo
		switch o {
		case OutcomeOK:
		case OutcomePanic:
			level = slog.LevelError
		default:
			level = slog.LevelWarn
		}
		l.LogAttrs(context.Background(), level, "solve finish",
			r.appendRequestID([]slog.Attr{
				slog.Uint64("run", r.ID),
				slog.String("kind", r.kind),
				slog.String("outcome", string(o)),
				slog.Int("roots", roots),
				slog.Int64("bitOps", bitOps),
				slog.Duration("elapsed", elapsed),
			})...)
	}
}

// TaskStart records a scheduler task beginning on a worker lane. With
// TaskDone, TaskPanic, and TaskRetry it satisfies sched's Observer
// interface.
func (r *Run) TaskStart(worker int, tag string) {
	if r == nil {
		return
	}
	r.tel.flight.Begin(r.ID, worker, tag, trace.CatTask)
}

// TaskDone records a scheduler task finishing on a worker lane.
func (r *Run) TaskDone(worker int, tag string) {
	if r == nil {
		return
	}
	r.tel.flight.End(r.ID, worker, tag)
}

// TaskPanic records a task panic isolated by the scheduler.
func (r *Run) TaskPanic(worker int, tag string, v any) {
	if r == nil {
		return
	}
	r.tel.flight.Event(r.ID, worker, "panic:"+tag, 0)
	if l := r.tel.logger; l != nil {
		l.LogAttrs(context.Background(), slog.LevelError, "task panic",
			r.appendRequestID([]slog.Attr{
				slog.Uint64("run", r.ID),
				slog.Int("worker", worker),
				slog.String("task", tag),
				slog.Any("value", v),
			})...)
	}
}

// TaskRetry records a failed attempt being requeued; left is the
// number of attempts remaining.
func (r *Run) TaskRetry(tag string, left int) {
	if r == nil {
		return
	}
	r.tel.flight.Event(r.ID, ControlLane, "retry:"+tag, int64(left))
	if l := r.tel.logger; l != nil {
		l.LogAttrs(context.Background(), slog.LevelWarn, "task retry",
			r.appendRequestID([]slog.Attr{
				slog.Uint64("run", r.ID),
				slog.String("task", tag),
				slog.Int("attemptsLeft", left),
			})...)
	}
}

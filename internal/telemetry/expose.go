package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition strictly checks data against the Prometheus text
// exposition format (version 0.0.4), using only the standard library.
// Beyond the grammar it enforces the conventions the registry relies
// on: every sample's family must have been declared with a # TYPE line
// first, a family is typed at most once, no duplicate samples (same
// name and label set), and counter samples are finite and
// non-negative.
//
// Histogram families are validated structurally: _bucket/_sum/_count
// samples must follow a histogram-typed base family, every _bucket
// carries an "le" label, per-series buckets are emitted in ascending
// le order with non-decreasing cumulative counts and a closing +Inf
// bucket whose value equals the series' _count. OpenMetrics-style
// exemplars ("# {request_id="…"} value" after the sample value) are
// accepted on histogram _bucket lines only.
func ValidateExposition(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("telemetry: empty exposition")
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("telemetry: exposition does not end with a newline")
	}
	typed := map[string]string{}  // family -> type
	helped := map[string]bool{}   // family has HELP
	seen := map[string]struct{}{} // name{labels} dedupe
	hists := map[string]*histSeries{}
	var histOrder []string
	lines := strings.Split(string(data[:len(data)-1]), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		switch {
		case line == "":
			return fmt.Errorf("telemetry: exposition line %d is blank", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return fmt.Errorf("telemetry: line %d: invalid metric name %q in HELP", lineNo, name)
			}
			if helped[name] {
				return fmt.Errorf("telemetry: line %d: duplicate HELP for %q", lineNo, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return fmt.Errorf("telemetry: line %d: TYPE line missing type", lineNo)
			}
			if !validMetricName(name) {
				return fmt.Errorf("telemetry: line %d: invalid metric name %q in TYPE", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("telemetry: line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := typed[name]; dup {
				return fmt.Errorf("telemetry: line %d: duplicate TYPE for %q", lineNo, name)
			}
			typed[name] = typ
		case strings.HasPrefix(line, "#"):
			// Arbitrary comment: allowed by the format.
		default:
			name, labels, value, exemplar, err := parseSample(line)
			if err != nil {
				return fmt.Errorf("telemetry: line %d: %v", lineNo, err)
			}
			typ, ok := typed[name]
			histBase, histSuffix := "", ""
			if !ok {
				histBase, histSuffix = histogramSuffix(name, typed)
				if histBase == "" {
					return fmt.Errorf("telemetry: line %d: sample for %q before its TYPE line", lineNo, name)
				}
				typ = "histogram"
			}
			key := name + "{" + labels + "}"
			if _, dup := seen[key]; dup {
				return fmt.Errorf("telemetry: line %d: duplicate sample %s", lineNo, key)
			}
			seen[key] = struct{}{}
			if exemplar != "" {
				if histSuffix != "_bucket" {
					return fmt.Errorf("telemetry: line %d: exemplar on non-bucket sample %q", lineNo, name)
				}
				if err := validateExemplar(exemplar); err != nil {
					return fmt.Errorf("telemetry: line %d: %v", lineNo, err)
				}
			}
			if typ == "counter" && (math.IsNaN(value) || math.IsInf(value, 0) || value < 0) {
				return fmt.Errorf("telemetry: line %d: counter %q has invalid value %v", lineNo, name, value)
			}
			if histBase != "" {
				if err := foldHistSample(hists, &histOrder, histBase, histSuffix, labels, value, lineNo); err != nil {
					return err
				}
			}
		}
	}
	return checkHistSeries(hists, histOrder)
}

// histSeries accumulates one histogram series (base family + labels
// minus le) across its _bucket/_sum/_count lines.
type histSeries struct {
	name     string
	lastLe   float64
	lastCum  float64
	buckets  int
	infSeen  bool
	infCum   float64
	sumSeen  bool
	countVal float64
	hasCount bool
}

// histogramSuffix reports whether name is a histogram component sample
// (_bucket/_sum/_count of a histogram-typed base family), returning
// the base name and suffix.
func histogramSuffix(name string, typed map[string]string) (base, suffix string) {
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok && typed[b] == "histogram" {
			return b, suf
		}
	}
	return "", ""
}

// foldHistSample folds one histogram component line into its series.
func foldHistSample(hists map[string]*histSeries, order *[]string, base, suffix, labels string, value float64, lineNo int) error {
	pairs, err := parseLabelPairs(labels)
	if err != nil {
		return fmt.Errorf("telemetry: line %d: %v", lineNo, err)
	}
	le, hasLe := "", false
	var rest []string
	for _, p := range pairs {
		if p[0] == "le" {
			le, hasLe = p[1], true
			continue
		}
		rest = append(rest, p[0]+"="+p[1])
	}
	key := base + "{" + strings.Join(rest, ",") + "}"
	hs := hists[key]
	if hs == nil {
		hs = &histSeries{name: key, lastLe: math.Inf(-1)}
		hists[key] = hs
		*order = append(*order, key)
	}
	switch suffix {
	case "_bucket":
		if !hasLe {
			return fmt.Errorf("telemetry: line %d: histogram bucket %s missing le label", lineNo, key)
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			bound, err = strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("telemetry: line %d: invalid le %q on %s", lineNo, le, key)
			}
		}
		if bound <= hs.lastLe {
			return fmt.Errorf("telemetry: line %d: %s buckets not in ascending le order (%v after %v)", lineNo, key, bound, hs.lastLe)
		}
		if value < hs.lastCum {
			return fmt.Errorf("telemetry: line %d: %s bucket counts not cumulative (%v after %v)", lineNo, key, value, hs.lastCum)
		}
		hs.lastLe, hs.lastCum = bound, value
		hs.buckets++
		if math.IsInf(bound, 1) {
			hs.infSeen, hs.infCum = true, value
		}
	case "_sum":
		if hasLe {
			return fmt.Errorf("telemetry: line %d: le label on %s_sum", lineNo, base)
		}
		hs.sumSeen = true
	case "_count":
		if hasLe {
			return fmt.Errorf("telemetry: line %d: le label on %s_count", lineNo, base)
		}
		hs.countVal, hs.hasCount = value, true
	}
	return nil
}

// checkHistSeries enforces each series' closing invariants once the
// whole exposition has been read.
func checkHistSeries(hists map[string]*histSeries, order []string) error {
	for _, key := range order {
		hs := hists[key]
		if hs.buckets == 0 {
			return fmt.Errorf("telemetry: histogram series %s has _sum/_count but no buckets", key)
		}
		if !hs.infSeen {
			return fmt.Errorf("telemetry: histogram series %s has no +Inf bucket", key)
		}
		if !hs.sumSeen {
			return fmt.Errorf("telemetry: histogram series %s has no _sum sample", key)
		}
		if !hs.hasCount {
			return fmt.Errorf("telemetry: histogram series %s has no _count sample", key)
		}
		if hs.countVal != hs.infCum {
			return fmt.Errorf("telemetry: histogram series %s count %v != +Inf bucket %v", key, hs.countVal, hs.infCum)
		}
	}
	return nil
}

// validateExemplar checks an OpenMetrics-style exemplar suffix:
// {label="value",…} value [timestamp].
func validateExemplar(ex string) error {
	if !strings.HasPrefix(ex, "{") {
		return fmt.Errorf("exemplar %q does not start with a label block", ex)
	}
	end, err := scanLabels(ex)
	if err != nil {
		return fmt.Errorf("exemplar: %v", err)
	}
	rest := ex[end:]
	if !strings.HasPrefix(rest, " ") {
		return fmt.Errorf("exemplar %q missing value", ex)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return fmt.Errorf("exemplar %q: want value [timestamp]", ex)
	}
	if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
		return fmt.Errorf("exemplar value %q invalid", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("exemplar timestamp %q invalid", fields[1])
		}
	}
	return nil
}

// parseLabelPairs splits a validated raw label block (the text between
// the braces) into name/value pairs, unescaping values.
func parseLabelPairs(labels string) ([][2]string, error) {
	if labels == "" {
		return nil, nil
	}
	var pairs [][2]string
	i := 0
	for i < len(labels) {
		start := i
		for i < len(labels) && labels[i] != '=' {
			i++
		}
		if i >= len(labels) {
			return nil, fmt.Errorf("malformed label block %q", labels)
		}
		name := labels[start:i]
		i++ // '='
		if i >= len(labels) || labels[i] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", labels)
		}
		i++
		var val strings.Builder
		for i < len(labels) && labels[i] != '"' {
			if labels[i] == '\\' && i+1 < len(labels) {
				i++
				switch labels[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(labels[i])
				}
			} else {
				val.WriteByte(labels[i])
			}
			i++
		}
		if i >= len(labels) {
			return nil, fmt.Errorf("unterminated label value in %q", labels)
		}
		i++ // closing quote
		pairs = append(pairs, [2]string{name, val.String()})
		if i < len(labels) {
			if labels[i] != ',' {
				return nil, fmt.Errorf("unexpected %q in label block", labels[i])
			}
			i++
		}
	}
	return pairs, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseSample parses one sample line: name[{label="value",…}] value
// [timestamp] [# exemplar]. It returns the metric name, the raw label
// block (for duplicate detection), the parsed value, and the raw
// exemplar suffix (empty when absent). The exemplar separator is
// looked for only after the label block has been consumed, so '#'
// inside quoted label values cannot confuse it.
func parseSample(line string) (name, labels string, value float64, exemplar string, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", 0, "", fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return "", "", 0, "", err
		}
		labels = rest[1 : end-1]
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		return "", "", 0, "", fmt.Errorf("missing space before value in %q", line)
	}
	if j := strings.Index(rest, " # "); j >= 0 {
		exemplar = rest[j+len(" # "):]
		rest = rest[:j]
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", "", 0, "", fmt.Errorf("want value [timestamp], got %q", rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, "", fmt.Errorf("invalid sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, "", fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return name, labels, value, exemplar, nil
}

// scanLabels validates a {label="value",…} block starting at s[0]=='{'
// and returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	if i < len(s) && s[i] == '}' {
		return i + 1, nil
	}
	for {
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block in %q", s)
		}
		if ln := s[start:i]; !validLabelName(ln) {
			return 0, fmt.Errorf("invalid label name %q", ln)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) {
					return 0, fmt.Errorf("truncated escape in %q", s)
				}
				switch s[i] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("invalid escape \\%c in %q", s[i], s)
				}
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing '"'
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block in %q", s)
		}
		switch s[i] {
		case ',':
			i++
		case '}':
			return i + 1, nil
		default:
			return 0, fmt.Errorf("unexpected %q after label value", s[i])
		}
	}
}

package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValidateExposition strictly checks data against the Prometheus text
// exposition format (version 0.0.4), using only the standard library.
// Beyond the grammar it enforces the conventions the registry relies
// on: every sample's family must have been declared with a # TYPE line
// first, a family is typed at most once, no duplicate samples (same
// name and label set), and counter samples are finite and
// non-negative.
func ValidateExposition(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("telemetry: empty exposition")
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("telemetry: exposition does not end with a newline")
	}
	typed := map[string]string{}  // family -> type
	helped := map[string]bool{}   // family has HELP
	seen := map[string]struct{}{} // name{labels} dedupe
	lines := strings.Split(string(data[:len(data)-1]), "\n")
	for ln, line := range lines {
		lineNo := ln + 1
		switch {
		case line == "":
			return fmt.Errorf("telemetry: exposition line %d is blank", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return fmt.Errorf("telemetry: line %d: invalid metric name %q in HELP", lineNo, name)
			}
			if helped[name] {
				return fmt.Errorf("telemetry: line %d: duplicate HELP for %q", lineNo, name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return fmt.Errorf("telemetry: line %d: TYPE line missing type", lineNo)
			}
			if !validMetricName(name) {
				return fmt.Errorf("telemetry: line %d: invalid metric name %q in TYPE", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("telemetry: line %d: unknown metric type %q", lineNo, typ)
			}
			if _, dup := typed[name]; dup {
				return fmt.Errorf("telemetry: line %d: duplicate TYPE for %q", lineNo, name)
			}
			typed[name] = typ
		case strings.HasPrefix(line, "#"):
			// Arbitrary comment: allowed by the format.
		default:
			name, labels, value, err := parseSample(line)
			if err != nil {
				return fmt.Errorf("telemetry: line %d: %v", lineNo, err)
			}
			typ, ok := typed[name]
			if !ok {
				return fmt.Errorf("telemetry: line %d: sample for %q before its TYPE line", lineNo, name)
			}
			key := name + "{" + labels + "}"
			if _, dup := seen[key]; dup {
				return fmt.Errorf("telemetry: line %d: duplicate sample %s", lineNo, key)
			}
			seen[key] = struct{}{}
			if typ == "counter" && (math.IsNaN(value) || math.IsInf(value, 0) || value < 0) {
				return fmt.Errorf("telemetry: line %d: counter %q has invalid value %v", lineNo, name, value)
			}
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseSample parses one sample line: name[{label="value",…}] value
// [timestamp]. It returns the metric name, the raw label block (for
// duplicate detection), and the parsed value.
func parseSample(line string) (name, labels string, value float64, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, err := scanLabels(rest)
		if err != nil {
			return "", "", 0, err
		}
		labels = rest[1 : end-1]
		rest = rest[end:]
	}
	if !strings.HasPrefix(rest, " ") {
		return "", "", 0, fmt.Errorf("missing space before value in %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return "", "", 0, fmt.Errorf("want value [timestamp], got %q", rest)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("invalid sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}

// scanLabels validates a {label="value",…} block starting at s[0]=='{'
// and returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	if i < len(s) && s[i] == '}' {
		return i + 1, nil
	}
	for {
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block in %q", s)
		}
		if ln := s[start:i]; !validLabelName(ln) {
			return 0, fmt.Errorf("invalid label name %q", ln)
		}
		i++ // '='
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted in %q", s)
		}
		i++
		for i < len(s) && s[i] != '"' {
			if s[i] == '\\' {
				i++
				if i >= len(s) {
					return 0, fmt.Errorf("truncated escape in %q", s)
				}
				switch s[i] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("invalid escape \\%c in %q", s[i], s)
				}
			}
			i++
		}
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label value in %q", s)
		}
		i++ // closing '"'
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block in %q", s)
		}
		switch s[i] {
		case ',':
			i++
		case '}':
			return i + 1, nil
		default:
			return 0, fmt.Errorf("unexpected %q after label value", s[i])
		}
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRequestTrackerLifecycle(t *testing.T) {
	tr := NewRequestTracker(8)
	r := tr.Start(RequestInfo{
		ID: "req-1", Tenant: "acme", Kind: "solve", Method: "poly",
		Profile: "paper", Degree: 12, Mu: 32, EstimatedBitOps: 1000,
	})
	r.SetCacheOutcome("miss")
	r.SetQueueWait(5 * time.Millisecond)
	r.SetPhase("refine")

	d := tr.Dump()
	if len(d.Active) != 1 || len(d.Recent) != 0 {
		t.Fatalf("mid-flight dump: %d active, %d recent, want 1, 0", len(d.Active), len(d.Recent))
	}
	a := d.Active[0]
	if a.ID != "req-1" || !a.Active || a.Phase != "refine" || a.CacheOutcome != "miss" {
		t.Fatalf("active snapshot = %+v", a)
	}
	if a.TotalSecs <= 0 {
		t.Error("active snapshot has no elapsed time")
	}

	r.SetSolve(20*time.Millisecond, 2500, 96)
	r.Finish("ok")

	d = tr.Dump()
	if len(d.Active) != 0 || len(d.Recent) != 1 {
		t.Fatalf("post-finish dump: %d active, %d recent, want 0, 1", len(d.Active), len(d.Recent))
	}
	got := d.Recent[0]
	if got.Outcome != "ok" || got.Active {
		t.Fatalf("finished snapshot = %+v", got)
	}
	if got.ActualBitOps != 2500 || got.PeakOperandBits != 96 {
		t.Fatalf("solve numbers = %+v", got)
	}
	if got.CostRatio != 2.5 {
		t.Fatalf("CostRatio = %v, want 2.5 (actual 2500 / estimated 1000)", got.CostRatio)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRequestTrackerRingWrap(t *testing.T) {
	const capacity = 4
	tr := NewRequestTracker(capacity)
	for i := 0; i < 10; i++ {
		r := tr.Start(RequestInfo{ID: fmt.Sprintf("req-%d", i)})
		r.Finish("ok")
	}
	d := tr.Dump()
	if d.Total != 10 {
		t.Fatalf("Total = %d, want 10", d.Total)
	}
	if len(d.Recent) != capacity {
		t.Fatalf("%d recent entries, want ring capacity %d", len(d.Recent), capacity)
	}
	// Newest first: 9, 8, 7, 6.
	for i, want := range []string{"req-9", "req-8", "req-7", "req-6"} {
		if d.Recent[i].ID != want {
			t.Errorf("Recent[%d].ID = %s, want %s", i, d.Recent[i].ID, want)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNilRequestTracker(t *testing.T) {
	var tr *RequestTracker
	r := tr.Start(RequestInfo{ID: "x"})
	if r != nil {
		t.Fatal("nil tracker returned a non-nil handle")
	}
	// All handle methods must no-op on nil.
	r.SetPhase("p")
	r.SetCacheOutcome("miss")
	r.SetQueueWait(time.Second)
	r.SetSolve(time.Second, 1, 1)
	r.Finish("ok")
	d := tr.Dump()
	if d == nil || d.Schema != RequestsSchema {
		t.Fatalf("nil tracker Dump = %+v", d)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("empty dump invalid: %v", err)
	}
}

func TestValidateRequestsJSON(t *testing.T) {
	tr := NewRequestTracker(4)
	tr.Start(RequestInfo{ID: "live", Tenant: "acme"})
	done := tr.Start(RequestInfo{ID: "done", EstimatedBitOps: 10})
	done.SetSolve(time.Millisecond, 20, 8)
	done.Finish("ok")

	data, err := json.Marshal(tr.Dump())
	if err != nil {
		t.Fatal(err)
	}
	d, err := ValidateRequestsJSON(data)
	if err != nil {
		t.Fatalf("round-tripped dump rejected: %v", err)
	}
	if len(d.Active) != 1 || d.Active[0].ID != "live" {
		t.Fatalf("active after round trip = %+v", d.Active)
	}
	if len(d.Recent) != 1 || d.Recent[0].CostRatio != 2 {
		t.Fatalf("recent after round trip = %+v", d.Recent)
	}

	bad := map[string]string{
		"wrong schema":    `{"schema":"bogus","capacity":4,"total":0}`,
		"not json":        `{`,
		"inactive active": `{"schema":"realroots/requests/v1","capacity":4,"total":1,"active":[{"id":"a","active":false}]}`,
		"active recent":   `{"schema":"realroots/requests/v1","capacity":4,"total":1,"recent":[{"id":"a","active":true,"outcome":"ok"}]}`,
		"missing outcome": `{"schema":"realroots/requests/v1","capacity":4,"total":1,"recent":[{"id":"a","active":false}]}`,
		"over capacity": `{"schema":"realroots/requests/v1","capacity":1,"total":2,"recent":[` +
			`{"id":"a","active":false,"outcome":"ok"},{"id":"b","active":false,"outcome":"ok"}]}`,
		"negative timing": `{"schema":"realroots/requests/v1","capacity":4,"total":1,"recent":[` +
			`{"id":"a","active":false,"outcome":"ok","totalSeconds":-1}]}`,
	}
	for name, doc := range bad {
		if _, err := ValidateRequestsJSON([]byte(doc)); err == nil {
			t.Errorf("%s: accepted, want rejection", name)
		}
	}
}

// TestRequestTrackerConcurrent exercises the tracker from many
// goroutines while dumping (run with -race).
func TestRequestTrackerConcurrent(t *testing.T) {
	tr := NewRequestTracker(16)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tr.Dump()
			}
		}
	}()
	const goroutines, per = 8, 50
	donec := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { donec <- struct{}{} }()
			for i := 0; i < per; i++ {
				r := tr.Start(RequestInfo{ID: fmt.Sprintf("c%d-%d", g, i)})
				r.SetPhase("solve")
				r.SetSolve(time.Microsecond, 10, 4)
				r.Finish("ok")
			}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		<-donec
	}
	close(stop)
	d := tr.Dump()
	if d.Total != goroutines*per {
		t.Fatalf("Total = %d, want %d", d.Total, goroutines*per)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// serveDebug fetches one path from a hub's debug server and returns
// the body, failing the test on any transport or status error.
func serveDebug(t *testing.T, hub *Telemetry, path string) []byte {
	t.Helper()
	srv, err := hub.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d: %s", path, resp.StatusCode, body)
	}
	return body
}

// TestRequestsEndpoint checks both renderings of /debug/requests on the
// telemetry debug server.
func TestRequestsEndpoint(t *testing.T) {
	hub := New(Config{})
	r := hub.Requests().Start(RequestInfo{
		ID: "dbg-1", Tenant: "acme", Kind: "solve", Degree: 8, Mu: 32, EstimatedBitOps: 100,
	})
	r.SetSolve(time.Millisecond, 250, 64)
	r.Finish("ok")

	data := serveDebug(t, hub, "/debug/requests?format=json")
	d, err := ValidateRequestsJSON(data)
	if err != nil {
		t.Fatalf("/debug/requests json invalid: %v\n%s", err, data)
	}
	if len(d.Recent) != 1 || d.Recent[0].ID != "dbg-1" || d.Recent[0].CostRatio != 2.5 {
		t.Fatalf("dump = %+v", d.Recent)
	}

	html := string(serveDebug(t, hub, "/debug/requests"))
	for _, want := range []string{"dbg-1", "acme", "2.50"} {
		if !strings.Contains(html, want) {
			t.Errorf("html view missing %q:\n%s", want, html)
		}
	}
}

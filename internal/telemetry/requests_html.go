package telemetry

import (
	"fmt"
	"html/template"
	"io"
)

// requestsTmpl renders the /debug/requests inspector in the spirit of
// golang.org/x/net/trace: a compact table of in-flight requests
// followed by the most recently completed ones, newest first. Every
// row carries the numbers needed to debug a slow request in place —
// where the time went (queue vs solve), how the cost model fared
// (estimated vs measured bit-ops), and how large the arithmetic grew.
var requestsTmpl = template.Must(template.New("requests").Funcs(template.FuncMap{
	"secs": func(v float64) string {
		switch {
		case v == 0:
			return "-"
		case v < 0.001:
			return fmt.Sprintf("%.0fµs", v*1e6)
		case v < 1:
			return fmt.Sprintf("%.1fms", v*1e3)
		default:
			return fmt.Sprintf("%.3fs", v)
		}
	},
	"ratio": func(v float64) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", v)
	},
}).Parse(`<!DOCTYPE html>
<html><head><title>/debug/requests</title><style>
body { font-family: sans-serif; font-size: 13px; }
table { border-collapse: collapse; margin-bottom: 1.5em; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #eee; }
td.s { text-align: left; font-family: monospace; }
.err { color: #b00; }
</style></head><body>
<h1>rootd requests</h1>
<p>{{len .Active}} active, {{len .Recent}} recent of {{.Total}} total (ring capacity {{.Capacity}}).
Cost ratio is measured/estimated bit-ops under the paper&#39;s schoolbook model.
<a href="?format=json">JSON</a></p>
{{define "rows"}}{{range .}}<tr>
<td class=s>{{.ID}}</td><td class=s>{{.Tenant}}</td><td class=s>{{.Kind}}</td>
<td>{{.Degree}}</td><td>{{.Mu}}</td><td class=s>{{.Method}}</td><td class=s>{{.Profile}}</td>
<td class=s>{{if .CacheOutcome}}{{.CacheOutcome}}{{else}}-{{end}}</td>
<td>{{.EstimatedBitOps}}</td><td>{{.ActualBitOps}}</td><td>{{ratio .CostRatio}}</td>
<td>{{.PeakOperandBits}}</td>
<td>{{secs .QueueWaitSecs}}</td><td>{{secs .SolveSecs}}</td><td>{{secs .TotalSecs}}</td>
<td class=s>{{if .Active}}{{.Phase}}{{else if eq .Outcome "ok"}}ok{{else}}<span class=err>{{.Outcome}}</span>{{end}}</td>
</tr>{{end}}{{end}}
<h2>Active</h2>
{{if .Active}}<table><tr><th>request</th><th>tenant</th><th>kind</th><th>deg</th><th>µ</th><th>method</th><th>profile</th><th>cache</th><th>est bit-ops</th><th>bit-ops</th><th>ratio</th><th>peak bits</th><th>queue</th><th>solve</th><th>total</th><th>phase</th></tr>
{{template "rows" .Active}}</table>{{else}}<p>none</p>{{end}}
<h2>Recent (newest first)</h2>
{{if .Recent}}<table><tr><th>request</th><th>tenant</th><th>kind</th><th>deg</th><th>µ</th><th>method</th><th>profile</th><th>cache</th><th>est bit-ops</th><th>bit-ops</th><th>ratio</th><th>peak bits</th><th>queue</th><th>solve</th><th>total</th><th>outcome</th></tr>
{{template "rows" .Recent}}</table>{{else}}<p>none</p>{{end}}
</body></html>
`))

func writeRequestsHTML(w io.Writer, d *RequestsDump) {
	// Template errors on a valid dump are impossible; a broken write is
	// the client hanging up, which the server already handles.
	_ = requestsTmpl.Execute(w, d)
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestFlightBasicDump(t *testing.T) {
	f := NewFlight(128)
	if got := f.Capacity(); got != 128 {
		t.Fatalf("Capacity = %d, want 128", got)
	}
	f.Begin(1, ControlLane, "remainder", "phase")
	f.Event(1, ControlLane, "checkpoint", 42)
	f.End(1, ControlLane, "remainder")

	d := f.Dump()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.Written != 3 || d.Dropped != 0 || len(d.Records) != 3 {
		t.Fatalf("dump counts: written=%d dropped=%d records=%d", d.Written, d.Dropped, len(d.Records))
	}
	if d.Records[1].Kind != KindEvent || d.Records[1].Value != 42 {
		t.Fatalf("event record mangled: %+v", d.Records[1])
	}
	for i, r := range d.Records {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestFlightCapacityClamp(t *testing.T) {
	f := NewFlight(1)
	if got := f.Capacity(); got != minFlightCapacity {
		t.Fatalf("Capacity = %d, want clamp to %d", got, minFlightCapacity)
	}
}

// TestFlightWraparound overruns the ring several times with nested
// spans and checks that the trimmed window still validates: sequence
// numbers consecutive, nesting preserved, and unmatched Ends excused
// by the nonzero drop count.
func TestFlightWraparound(t *testing.T) {
	f := NewFlight(minFlightCapacity)
	const laps = 5
	total := 0
	for i := 0; i < laps*minFlightCapacity/4; i++ {
		f.Begin(1, ControlLane, "outer", "phase")
		f.Begin(1, ControlLane, "inner", "phase")
		f.End(1, ControlLane, "inner")
		f.End(1, ControlLane, "outer")
		total += 4
	}
	d := f.Dump()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after wraparound: %v", err)
	}
	if d.Written != uint64(total) {
		t.Fatalf("Written = %d, want %d", d.Written, total)
	}
	if d.Dropped == 0 {
		t.Fatal("expected drops after overrunning the ring")
	}
	if len(d.Records) == 0 || len(d.Records) > minFlightCapacity {
		t.Fatalf("window size %d out of range (capacity %d)", len(d.Records), minFlightCapacity)
	}
}

func TestDumpJSONRoundTrip(t *testing.T) {
	f := NewFlight(64)
	f.Begin(7, 0, "split", "task")
	f.Event(7, -1, "budget_exhausted", 99)
	f.End(7, 0, "split")
	var buf bytes.Buffer
	if err := f.Dump().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := ValidateDumpJSON(buf.Bytes()); err != nil {
		t.Fatalf("ValidateDumpJSON: %v", err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if d.Records[0].Cat != "task" || d.Records[1].Value != 99 {
		t.Fatalf("round trip mangled records: %+v", d.Records)
	}
}

func TestDumpValidateRejectsCorrupt(t *testing.T) {
	base := func() *Dump {
		f := NewFlight(64)
		f.Begin(1, 0, "a", "task")
		f.End(1, 0, "a")
		f.Event(1, -1, "finish", 3)
		return f.Dump()
	}
	cases := []struct {
		name    string
		corrupt func(*Dump)
		want    string
	}{
		{"schema", func(d *Dump) { d.Schema = "bogus" }, "schema"},
		{"capacity", func(d *Dump) { d.Capacity = 0 }, "capacity"},
		{"overfull", func(d *Dump) { d.Capacity = 2 }, "exceed capacity"},
		{"written", func(d *Dump) { d.Written = 1 }, "written"},
		{"dropped", func(d *Dump) { d.Dropped = 7 }, "dropped"},
		{"seq gap", func(d *Dump) { d.Records[2].Seq = 9; d.Written = 10; d.Dropped = 7 }, "not consecutive"},
		{"empty name", func(d *Dump) { d.Records[1].Name = "" }, "empty name"},
		{"negative time", func(d *Dump) { d.Records[0].AtNs = -1 }, "negative timestamp"},
		{"bad kind", func(d *Dump) { d.Records[0].Kind = RecordKind(9) }, "invalid kind"},
		{"wrong span", func(d *Dump) { d.Records[1].Name = "b" }, "ends span"},
		{"time travel", func(d *Dump) {
			d.Records[0].AtNs = d.Records[1].AtNs + 1000
		}, "back in time"},
		{"orphan end", func(d *Dump) {
			d.Records = d.Records[1:] // drop the Begin without admitting drops
			d.Written = 3
			d.Dropped = 1
			d.Records[0].Seq = 0
			d.Records[1].Seq = 1
			d.Written = 2
			d.Dropped = 0
		}, "no open span"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base()
			if err := d.Validate(); err != nil {
				t.Fatalf("base dump invalid: %v", err)
			}
			tc.corrupt(d)
			err := d.Validate()
			if err == nil {
				t.Fatalf("corrupt dump (%s) validated", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDumpOrphanEndExcusedByDrops pins the wraparound allowance: an
// End whose Begin fell off the window is legal exactly when records
// were dropped.
func TestDumpOrphanEndExcusedByDrops(t *testing.T) {
	d := &Dump{
		Schema:   FlightSchema,
		Capacity: 64,
		Written:  5,
		Dropped:  2,
		Records: []Record{
			{Seq: 2, Run: 1, Lane: 0, Kind: KindEnd, Name: "lost-begin", AtNs: 10},
			{Seq: 3, Run: 1, Lane: 0, Kind: KindBegin, Name: "a", Cat: "task", AtNs: 20},
			{Seq: 4, Run: 1, Lane: 0, Kind: KindEnd, Name: "a", AtNs: 30},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("orphan End with drops rejected: %v", err)
	}
}

func TestNilFlight(t *testing.T) {
	var f *Flight
	f.Begin(1, 0, "a", "task")
	f.End(1, 0, "a")
	f.Event(1, 0, "e", 1)
	if f.Capacity() != 0 || f.Written() != 0 {
		t.Fatal("nil flight reports nonzero counts")
	}
	if f.Dump() != nil {
		t.Fatal("nil flight dumped non-nil")
	}
	if err := (*Dump)(nil).Validate(); err == nil {
		t.Fatal("nil dump validated")
	}
}

func TestRecordKindJSON(t *testing.T) {
	for k := KindBegin; k <= KindEvent; k++ {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back RecordKind
		if err := json.Unmarshal(data, &back); err != nil || back != k {
			t.Fatalf("round trip %v: got %v, err %v", k, back, err)
		}
	}
	if _, err := json.Marshal(RecordKind(9)); err == nil {
		t.Fatal("invalid kind marshaled")
	}
	var k RecordKind
	if err := json.Unmarshal([]byte(`"bogus"`), &k); err == nil {
		t.Fatal("unknown kind name unmarshaled")
	}
}

// TestFlightConcurrent hammers the ring from many goroutines (each on
// its own lane, as the scheduler does) and checks the dump still
// forms a consistent window. Run under -race this also proves the
// write path is data-race free.
func TestFlightConcurrent(t *testing.T) {
	f := NewFlight(256)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				name := fmt.Sprintf("task%d", lane)
				f.Begin(1, lane, name, "task")
				f.Event(1, lane, "tick", int64(i))
				f.End(1, lane, name)
			}
		}(w)
	}
	wg.Wait()
	d := f.Dump()
	if err := d.Validate(); err != nil {
		t.Fatalf("concurrent dump invalid: %v", err)
	}
	if d.Written != workers*500*3 {
		t.Fatalf("Written = %d, want %d", d.Written, workers*500*3)
	}
}

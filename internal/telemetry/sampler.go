package telemetry

import (
	"sync"

	"realroots/internal/trace"
)

// Tail-based trace sampling. Every solve is traced into a bounded
// buffer; when it completes the sampler decides — with the outcome,
// latency, and measured efficiency in hand — whether the trace is
// interesting enough to retain. This is the inversion of head
// sampling: instead of guessing up front which 1% of requests to
// record, record everything cheaply and keep only the tail that an
// operator would actually open.

// Sampler tuning defaults.
const (
	// DefaultTailQuantile marks a solve slow when its latency exceeds
	// this rolling quantile of recent solve latencies.
	DefaultTailQuantile = 0.95
	// DefaultTailMinEfficiency marks a parallel solve interesting when
	// its measured efficiency (speedup/workers) falls below this floor.
	DefaultTailMinEfficiency = 0.25
	// tailWindow is how many observations each rolling-quantile window
	// holds before rotating.
	tailWindow = 512
	// tailWarmup is the minimum observations before the latency
	// threshold is trusted; below it nothing is classified slow (the
	// first requests of a fresh process are all "slow" relative to an
	// empty histogram, which would retain everything).
	tailWarmup = 32
)

// TailConfig tunes a TailSampler. Zero values select the defaults.
type TailConfig struct {
	// Quantile is the rolling latency quantile above which a solve is
	// retained as slow (0 = DefaultTailQuantile; set ≥ 1 to disable
	// slow retention).
	Quantile float64
	// MinEfficiency is the parallel-efficiency floor below which a
	// multi-worker solve is retained (0 = DefaultTailMinEfficiency;
	// set < 0 to disable efficiency retention).
	MinEfficiency float64
}

// TailSampler decides which completed traces to keep. It maintains a
// rolling latency quantile over two rotating fixed-bucket windows:
// observations land in the current window, and once it fills the
// previous window's quantile becomes the threshold — so the threshold
// always reflects a full recent window, never a half-empty one. All
// methods are safe for concurrent use; nil no-ops (keep nothing).
type TailSampler struct {
	quantile      float64
	minEfficiency float64

	mu   sync.Mutex
	cur  *Histogram // filling
	prev *Histogram // full, provides the threshold
	curN int
}

// NewTailSampler creates a sampler with the given tuning.
func NewTailSampler(cfg TailConfig) *TailSampler {
	q := cfg.Quantile
	if q == 0 {
		q = DefaultTailQuantile
	}
	e := cfg.MinEfficiency
	if e == 0 {
		e = DefaultTailMinEfficiency
	}
	return &TailSampler{
		quantile:      q,
		minEfficiency: e,
		cur:           NewHistogram(SecondsBuckets),
	}
}

// TraceInfo is what the sampler knows about a completed solve.
type TraceInfo struct {
	// Forced is the explicit X-Debug-Trace override: always retain.
	Forced bool
	// Outcome is the solve outcome; anything but OutcomeOK retains.
	Outcome Outcome
	// Seconds is the solve's wall time.
	Seconds float64
	// Workers is the parallel worker count (0/1 = sequential; the
	// efficiency floor only applies to parallel solves).
	Workers int
	// Efficiency is the measured parallel efficiency
	// (trace.Summary.Efficiency).
	Efficiency float64
}

// Consider classifies one completed solve: it feeds the latency into
// the rolling window and returns the retention reason ("" = do not
// retain). Priority order: forced > error > slow > low efficiency, so
// a forced trace of a failing solve still reads "forced" and counting
// by reason stays unambiguous.
func (s *TailSampler) Consider(info TraceInfo) (reason string) {
	if s == nil {
		return ""
	}
	slow := s.observe(info.Seconds)
	switch {
	case info.Forced:
		return trace.ReasonForced
	case info.Outcome != OutcomeOK:
		return trace.ReasonError
	case slow:
		return trace.ReasonSlow
	case info.Workers > 1 && s.minEfficiency >= 0 && info.Efficiency < s.minEfficiency:
		return trace.ReasonLowEfficiency
	}
	return ""
}

// Threshold returns the current slow-latency threshold in seconds and
// whether it is trustworthy yet (false during warmup).
func (s *TailSampler) Threshold() (float64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.thresholdLocked()
}

func (s *TailSampler) thresholdLocked() (float64, bool) {
	if s.prev != nil {
		return s.prev.Quantile(s.quantile), true
	}
	if s.curN >= tailWarmup {
		return s.cur.Quantile(s.quantile), true
	}
	return 0, false
}

// observe folds one latency into the rolling window and reports
// whether it exceeded the pre-observation threshold.
func (s *TailSampler) observe(seconds float64) bool {
	if s.quantile >= 1 {
		s.mu.Lock()
		s.rotateLocked(seconds)
		s.mu.Unlock()
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	threshold, ok := s.thresholdLocked()
	slow := ok && seconds > threshold
	s.rotateLocked(seconds)
	return slow
}

func (s *TailSampler) rotateLocked(seconds float64) {
	s.cur.Observe(seconds, "")
	s.curN++
	if s.curN >= tailWindow {
		s.prev = s.cur
		s.cur = NewHistogram(SecondsBuckets)
		s.curN = 0
	}
}

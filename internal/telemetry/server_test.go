package telemetry

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"realroots/internal/metrics"
)

func TestServeEndpoints(t *testing.T) {
	tel := New(Config{FlightCapacity: 128})
	run := tel.RunStart("core", 12, 16, 2)
	run.PhaseBegin("remainder")
	run.PhaseEnd("remainder")
	run.Finish(OutcomeOK, 3, 777, metrics.Report{})

	srv, err := tel.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ctype)
	}
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Fatalf("/metrics exposition invalid: %v", err)
	}
	if !strings.Contains(body, `realroots_solves_total{outcome="ok"} 1`) {
		t.Fatalf("/metrics missing solve count:\n%s", body)
	}

	code, body, _ = get("/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight status %d", code)
	}
	if err := ValidateDumpJSON([]byte(body)); err != nil {
		t.Fatalf("/debug/flight dump invalid: %v", err)
	}

	if code, _, _ := get("/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if code, body, _ := get("/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index page: status %d body %q", code, body)
	}
	if code, _, _ := get("/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestServeNilHub(t *testing.T) {
	var tel *Telemetry
	if _, err := tel.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("nil hub served")
	}
}

func TestServeBadAddr(t *testing.T) {
	tel := New(Config{})
	if _, err := tel.Serve("256.256.256.256:99999"); err == nil {
		t.Fatal("bad address served")
	}
}

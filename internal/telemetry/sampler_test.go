package telemetry

import (
	"sync"
	"testing"

	"realroots/internal/trace"
)

func TestTailSamplerPriorities(t *testing.T) {
	s := NewTailSampler(TailConfig{})
	cases := []struct {
		name string
		info TraceInfo
		want string
	}{
		{"forced beats error", TraceInfo{Forced: true, Outcome: OutcomeError}, trace.ReasonForced},
		{"error", TraceInfo{Outcome: OutcomeBudget}, trace.ReasonError},
		{"panic is an error", TraceInfo{Outcome: OutcomePanic}, trace.ReasonError},
		{"low efficiency", TraceInfo{Outcome: OutcomeOK, Workers: 4, Efficiency: 0.1}, trace.ReasonLowEfficiency},
		{"sequential never low-eff", TraceInfo{Outcome: OutcomeOK, Workers: 1, Efficiency: 0}, ""},
		{"healthy parallel dropped", TraceInfo{Outcome: OutcomeOK, Workers: 4, Efficiency: 0.9}, ""},
	}
	for _, tc := range cases {
		if got := s.Consider(tc.info); got != tc.want {
			t.Errorf("%s: reason %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestTailSamplerSlowAfterWarmup(t *testing.T) {
	s := NewTailSampler(TailConfig{Quantile: 0.9})

	// During warmup nothing classifies slow, even outliers.
	if got := s.Consider(TraceInfo{Outcome: OutcomeOK, Seconds: 100}); got != "" {
		t.Fatalf("first request retained as %q before any threshold exists", got)
	}
	if _, ok := s.Threshold(); ok {
		t.Fatal("threshold trusted with one observation")
	}

	// Fill past warmup with ~1ms solves.
	for i := 0; i < tailWarmup+8; i++ {
		s.Consider(TraceInfo{Outcome: OutcomeOK, Seconds: 0.001})
	}
	threshold, ok := s.Threshold()
	if !ok {
		t.Fatal("threshold still untrusted past warmup")
	}
	if threshold <= 0 || threshold > 0.1 {
		t.Fatalf("threshold %v seconds, want small positive", threshold)
	}
	if got := s.Consider(TraceInfo{Outcome: OutcomeOK, Seconds: 5}); got != trace.ReasonSlow {
		t.Errorf("5s outlier against ~1ms window classified %q, want slow", got)
	}
	if got := s.Consider(TraceInfo{Outcome: OutcomeOK, Seconds: 0.0001}); got != "" {
		t.Errorf("fast solve retained as %q", got)
	}
}

func TestTailSamplerWindowRotation(t *testing.T) {
	s := NewTailSampler(TailConfig{Quantile: 0.5})
	// Fill a full window of slow solves, then a regime change to fast
	// ones: after the second rotation the threshold must reflect the
	// fast window, not the stale slow one.
	for i := 0; i < tailWindow; i++ {
		s.Consider(TraceInfo{Outcome: OutcomeOK, Seconds: 1})
	}
	th1, ok := s.Threshold()
	if !ok || th1 < 0.5 {
		t.Fatalf("threshold after slow window = %v (ok=%v), want ~1s", th1, ok)
	}
	for i := 0; i < tailWindow; i++ {
		s.Consider(TraceInfo{Outcome: OutcomeOK, Seconds: 0.001})
	}
	th2, ok := s.Threshold()
	if !ok || th2 >= th1 {
		t.Fatalf("threshold did not follow the regime change: %v -> %v", th1, th2)
	}
}

func TestTailSamplerDisableKnobs(t *testing.T) {
	// Quantile >= 1 disables slow retention entirely.
	s := NewTailSampler(TailConfig{Quantile: 1})
	for i := 0; i < tailWarmup*2; i++ {
		s.Consider(TraceInfo{Outcome: OutcomeOK, Seconds: 0.001})
	}
	if got := s.Consider(TraceInfo{Outcome: OutcomeOK, Seconds: 100}); got != "" {
		t.Errorf("quantile=1: outlier retained as %q", got)
	}
	// Negative MinEfficiency disables the efficiency floor.
	s = NewTailSampler(TailConfig{MinEfficiency: -1})
	if got := s.Consider(TraceInfo{Outcome: OutcomeOK, Workers: 8, Efficiency: 0.01}); got != "" {
		t.Errorf("minEfficiency<0: inefficient solve retained as %q", got)
	}
	// Errors and forced traces are still retained with both knobs off.
	s = NewTailSampler(TailConfig{Quantile: 1, MinEfficiency: -1})
	if got := s.Consider(TraceInfo{Outcome: OutcomeError}); got != trace.ReasonError {
		t.Errorf("knobs off: error classified %q", got)
	}
}

func TestTailSamplerNilSafe(t *testing.T) {
	var s *TailSampler
	if got := s.Consider(TraceInfo{Forced: true}); got != "" {
		t.Errorf("nil sampler retained %q", got)
	}
	if th, ok := s.Threshold(); th != 0 || ok {
		t.Error("nil sampler reported a threshold")
	}
}

// TestTailSamplerConcurrent races Consider (the admit path, rotating
// windows under load) against Threshold reads and a trace.Store
// admit/evict cycle — the full tail-sampling pipeline under -race.
func TestTailSamplerConcurrent(t *testing.T) {
	s := NewTailSampler(TailConfig{Quantile: 0.9})
	store := trace.NewStore(4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2*tailWindow; i++ {
				info := TraceInfo{Outcome: OutcomeOK, Seconds: float64(i%100) / 1000}
				if i%97 == 0 {
					info.Outcome = OutcomeError
				}
				store.NoteSeen()
				if reason := s.Consider(info); reason != "" {
					store.Add(trace.RetainedTrace{
						RequestID: "r",
						Outcome:   string(info.Outcome),
						Reason:    reason,
					}, nil)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Threshold()
			if err := store.Dump().Validate(); err != nil {
				t.Errorf("mid-run store dump invalid: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	d := store.Dump()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.ByReason[trace.ReasonError] == 0 {
		t.Error("no error traces retained across 8 windows of injected errors")
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// RequestsSchema identifies the JSON shape of a /debug/requests dump.
const RequestsSchema = "realroots/requests/v1"

// DefaultRequestRingCapacity bounds the completed-request ring kept for
// /debug/requests. 128 recent requests is enough to cover a burst while
// keeping the dump small.
const DefaultRequestRingCapacity = 128

// RequestInfo describes one request as it enters the tracker.
type RequestInfo struct {
	ID              string
	Tenant          string
	Kind            string // "solve" for rootd requests
	Method          string
	Profile         string
	Degree          int
	Mu              uint
	EstimatedBitOps int64
}

// RequestSnapshot is the JSON form of one tracked request, active or
// completed. CostRatio is actual/estimated bit-ops (0 until both are
// known) — the "is the paper's cost model honest on this input" number.
type RequestSnapshot struct {
	ID              string  `json:"id"`
	Tenant          string  `json:"tenant"`
	Kind            string  `json:"kind"`
	Method          string  `json:"method,omitempty"`
	Profile         string  `json:"profile,omitempty"`
	Degree          int     `json:"degree"`
	Mu              uint    `json:"mu"`
	EstimatedBitOps int64   `json:"estimatedBitOps"`
	ActualBitOps    int64   `json:"actualBitOps"`
	CostRatio       float64 `json:"costRatio"`
	PeakOperandBits int     `json:"peakOperandBits"`
	CacheOutcome    string  `json:"cacheOutcome,omitempty"` // hit, join, miss
	QueueWaitSecs   float64 `json:"queueWaitSeconds"`
	SolveSecs       float64 `json:"solveSeconds"`
	TotalSecs       float64 `json:"totalSeconds"`
	Phase           string  `json:"phase,omitempty"` // last pipeline phase seen
	Outcome         string  `json:"outcome,omitempty"`
	Active          bool    `json:"active"`
}

// ActiveRequest is the tracker's handle for one in-flight request.
// Methods are safe for concurrent use and no-op on a nil receiver.
type ActiveRequest struct {
	tracker *RequestTracker
	start   time.Time

	mu   sync.Mutex
	snap RequestSnapshot
}

// RequestTracker keeps the set of in-flight requests plus a bounded
// ring of the most recently completed ones, for /debug/requests.
type RequestTracker struct {
	mu     sync.Mutex
	active map[*ActiveRequest]struct{}
	recent []RequestSnapshot // ring, next is the write cursor
	next   int
	filled bool
	total  uint64
}

// NewRequestTracker creates a tracker holding up to capacity completed
// requests (DefaultRequestRingCapacity if capacity <= 0).
func NewRequestTracker(capacity int) *RequestTracker {
	if capacity <= 0 {
		capacity = DefaultRequestRingCapacity
	}
	return &RequestTracker{
		active: make(map[*ActiveRequest]struct{}),
		recent: make([]RequestSnapshot, capacity),
	}
}

// Start registers an in-flight request and returns its handle. A nil
// tracker returns a nil handle, whose methods all no-op.
func (t *RequestTracker) Start(info RequestInfo) *ActiveRequest {
	if t == nil {
		return nil
	}
	r := &ActiveRequest{
		tracker: t,
		start:   time.Now(),
		snap: RequestSnapshot{
			ID:              info.ID,
			Tenant:          info.Tenant,
			Kind:            info.Kind,
			Method:          info.Method,
			Profile:         info.Profile,
			Degree:          info.Degree,
			Mu:              info.Mu,
			EstimatedBitOps: info.EstimatedBitOps,
			Active:          true,
		},
	}
	t.mu.Lock()
	t.active[r] = struct{}{}
	t.total++
	t.mu.Unlock()
	return r
}

// SetPhase records the pipeline phase the request is currently in.
func (r *ActiveRequest) SetPhase(phase string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.snap.Phase = phase
	r.mu.Unlock()
}

// SetCacheOutcome records how the single-flight result cache resolved
// the request: "hit", "join", or "miss".
func (r *ActiveRequest) SetCacheOutcome(outcome string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.snap.CacheOutcome = outcome
	r.mu.Unlock()
}

// SetQueueWait records time spent waiting for an admission slot.
func (r *ActiveRequest) SetQueueWait(d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.snap.QueueWaitSecs = d.Seconds()
	r.mu.Unlock()
}

// SetSolve records the solve outcome numbers: core time, measured
// bit-ops (updating the model-vs-measured cost ratio), and the peak
// operand bit-length seen by the arithmetic instrumentation.
func (r *ActiveRequest) SetSolve(d time.Duration, actualBitOps int64, peakBits int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.snap.SolveSecs = d.Seconds()
	r.snap.ActualBitOps = actualBitOps
	r.snap.PeakOperandBits = peakBits
	if r.snap.EstimatedBitOps > 0 && actualBitOps > 0 {
		r.snap.CostRatio = float64(actualBitOps) / float64(r.snap.EstimatedBitOps)
	}
	r.mu.Unlock()
}

// Finish moves the request from the active set into the completed
// ring, stamping its outcome and total latency. Safe to call once.
func (r *ActiveRequest) Finish(outcome string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.snap.Outcome = outcome
	r.snap.TotalSecs = time.Since(r.start).Seconds()
	r.snap.Active = false
	snap := r.snap
	r.mu.Unlock()

	t := r.tracker
	t.mu.Lock()
	delete(t.active, r)
	t.recent[t.next] = snap
	t.next++
	if t.next == len(t.recent) {
		t.next = 0
		t.filled = true
	}
	t.mu.Unlock()
}

// RequestsDump is the JSON document served by /debug/requests: the
// in-flight set plus the completed ring, newest first.
type RequestsDump struct {
	Schema   string            `json:"schema"`
	Capacity int               `json:"capacity"`
	Total    uint64            `json:"total"`
	Active   []RequestSnapshot `json:"active"`
	Recent   []RequestSnapshot `json:"recent"`
}

// Dump snapshots the tracker. Active requests are ordered oldest
// first; recent ones newest first. A nil tracker dumps empty.
func (t *RequestTracker) Dump() *RequestsDump {
	d := &RequestsDump{Schema: RequestsSchema}
	if t == nil {
		return d
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	d.Capacity = len(t.recent)
	d.Total = t.total
	for r := range t.active {
		r.mu.Lock()
		snap := r.snap
		snap.TotalSecs = time.Since(r.start).Seconds()
		r.mu.Unlock()
		d.Active = append(d.Active, snap)
	}
	// Map iteration is unordered; sort oldest first by elapsed time.
	for i := 1; i < len(d.Active); i++ {
		for j := i; j > 0 && d.Active[j].TotalSecs > d.Active[j-1].TotalSecs; j-- {
			d.Active[j], d.Active[j-1] = d.Active[j-1], d.Active[j]
		}
	}
	n := t.next
	if t.filled {
		n = len(t.recent)
	}
	for i := 0; i < n; i++ {
		// Walk backwards from the cursor: newest first.
		idx := (t.next - 1 - i + len(t.recent)) % len(t.recent)
		d.Recent = append(d.Recent, t.recent[idx])
	}
	return d
}

// Validate checks a dump's structural invariants.
func (d *RequestsDump) Validate() error {
	if d.Schema != RequestsSchema {
		return fmt.Errorf("requests: schema %q, want %q", d.Schema, RequestsSchema)
	}
	if d.Capacity < 0 || len(d.Recent) > d.Capacity {
		return fmt.Errorf("requests: %d recent entries exceed capacity %d", len(d.Recent), d.Capacity)
	}
	if n := uint64(len(d.Active) + len(d.Recent)); d.Total < uint64(len(d.Active)) || (d.Total < n && len(d.Recent) < d.Capacity) {
		return fmt.Errorf("requests: total %d inconsistent with %d active + %d recent", d.Total, len(d.Active), len(d.Recent))
	}
	for i, r := range d.Active {
		if !r.Active {
			return fmt.Errorf("requests: active[%d] (%s) not marked active", i, r.ID)
		}
	}
	for i, r := range d.Recent {
		if r.Active {
			return fmt.Errorf("requests: recent[%d] (%s) still marked active", i, r.ID)
		}
		if r.Outcome == "" {
			return fmt.Errorf("requests: recent[%d] (%s) has no outcome", i, r.ID)
		}
		if r.TotalSecs < 0 || r.QueueWaitSecs < 0 || r.SolveSecs < 0 {
			return fmt.Errorf("requests: recent[%d] (%s) has negative timing", i, r.ID)
		}
	}
	return nil
}

// ValidateRequestsJSON parses and validates a /debug/requests JSON
// document, returning the dump on success.
func ValidateRequestsJSON(data []byte) (*RequestsDump, error) {
	var d RequestsDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("requests: parse: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

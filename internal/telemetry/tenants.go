package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Per-tenant usage ledger. rootd already labels its latency histograms
// by tenant; the ledger is the complementary integral view — who has
// consumed how much arithmetic, how often they hit the cache, how
// often admission pushed back — kept with the same copy-on-write
// discipline as HistogramVec so the per-solve accounting path is
// lock-free once a tenant's row exists.

// TenantsSchema versions the /debug/tenants JSON dump.
const TenantsSchema = "realroots/tenants/v1"

// DefaultMaxTenants bounds the ledger's row count; tenants beyond the
// cap are folded into the OverflowTenant row so a tenant-ID cardinality
// attack cannot grow the ledger (mirroring rootd's label-series cap).
const DefaultMaxTenants = 64

// Ledger row names for the two synthetic tenants.
const (
	// AnonymousTenant accounts requests that carried no tenant ID.
	AnonymousTenant = "anonymous"
	// OverflowTenant accounts tenants beyond the ledger cap.
	OverflowTenant = "other"
)

// TenantUsage is one tenant's accumulated usage. All fields are
// atomics; rows are shared by reference and never replaced.
type TenantUsage struct {
	requests     atomic.Int64
	solves       atomic.Int64
	solveSeconds Float64
	bitOps       atomic.Int64
	cacheHits    atomic.Int64
	rejections   atomic.Int64
	errors       atomic.Int64
	retained     atomic.Int64
}

// TenantRow is the serialized form of one ledger row.
type TenantRow struct {
	Tenant string `json:"tenant"`
	// Requests counts every admitted-or-not request attributed to the
	// tenant (the denominator for the rejection rate).
	Requests int64 `json:"requests"`
	// Solves counts solves the tenant actually ran (cache misses where
	// this tenant was the single-flight leader).
	Solves int64 `json:"solves"`
	// SolveSeconds is the summed wall time of those solves.
	SolveSeconds float64 `json:"solveSeconds"`
	// BitOps is the summed measured bit-operation cost of those solves.
	BitOps int64 `json:"bitOps"`
	// CacheHits counts requests served from the result cache (including
	// single-flight joins).
	CacheHits int64 `json:"cacheHits"`
	// Rejections counts requests refused by admission control (rate
	// limit, overload, queue full, draining).
	Rejections int64 `json:"rejections"`
	// Errors counts requests that failed for non-admission reasons.
	Errors int64 `json:"errors"`
	// RetainedTraces counts the tenant's solves the tail sampler kept.
	RetainedTraces int64 `json:"retainedTraces"`
}

// row snapshots the usage counters.
func (u *TenantUsage) row(tenant string) TenantRow {
	return TenantRow{
		Tenant:         tenant,
		Requests:       u.requests.Load(),
		Solves:         u.solves.Load(),
		SolveSeconds:   u.solveSeconds.Load(),
		BitOps:         u.bitOps.Load(),
		CacheHits:      u.cacheHits.Load(),
		Rejections:     u.rejections.Load(),
		Errors:         u.errors.Load(),
		RetainedTraces: u.retained.Load(),
	}
}

// TenantLedger maps tenant IDs to usage rows. Row lookup is a
// copy-on-write map read (lock-free after first use, like
// HistogramVec.With); all accounting methods are nil-safe no-ops.
type TenantLedger struct {
	maxTenants int

	mu   sync.Mutex
	rows atomic.Pointer[map[string]*TenantUsage]
}

// NewTenantLedger creates a ledger holding at most maxTenants rows
// (<= 0 selects DefaultMaxTenants). The synthetic anonymous/overflow
// rows do not count against the cap.
func NewTenantLedger(maxTenants int) *TenantLedger {
	if maxTenants <= 0 {
		maxTenants = DefaultMaxTenants
	}
	l := &TenantLedger{maxTenants: maxTenants}
	empty := map[string]*TenantUsage{}
	l.rows.Store(&empty)
	return l
}

// usage returns the row for tenant, creating it on first use. "" maps
// to AnonymousTenant; tenants beyond the cap map to OverflowTenant.
func (l *TenantLedger) usage(tenant string) *TenantUsage {
	if l == nil {
		return nil
	}
	if tenant == "" {
		tenant = AnonymousTenant
	}
	if u := (*l.rows.Load())[tenant]; u != nil {
		return u
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := *l.rows.Load()
	if u := cur[tenant]; u != nil {
		return u
	}
	// Count only real tenant rows against the cap.
	real_ := 0
	for k := range cur {
		if k != AnonymousTenant && k != OverflowTenant {
			real_++
		}
	}
	if tenant != AnonymousTenant && tenant != OverflowTenant && real_ >= l.maxTenants {
		tenant = OverflowTenant
		if u := cur[tenant]; u != nil {
			return u
		}
	}
	next := make(map[string]*TenantUsage, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	u := &TenantUsage{}
	next[tenant] = u
	l.rows.Store(&next)
	return u
}

// AddRequest accounts one incoming request.
func (l *TenantLedger) AddRequest(tenant string) {
	if u := l.usage(tenant); u != nil {
		u.requests.Add(1)
	}
}

// AddSolve accounts one completed solve the tenant led: its wall time
// and measured bit-operation cost.
func (l *TenantLedger) AddSolve(tenant string, seconds float64, bitOps int64) {
	if u := l.usage(tenant); u != nil {
		u.solves.Add(1)
		u.solveSeconds.Add(seconds)
		u.bitOps.Add(bitOps)
	}
}

// AddCacheHit accounts one request served from the result cache.
func (l *TenantLedger) AddCacheHit(tenant string) {
	if u := l.usage(tenant); u != nil {
		u.cacheHits.Add(1)
	}
}

// AddRejection accounts one request refused by admission control.
func (l *TenantLedger) AddRejection(tenant string) {
	if u := l.usage(tenant); u != nil {
		u.rejections.Add(1)
	}
}

// AddError accounts one request that failed for a non-admission
// reason.
func (l *TenantLedger) AddError(tenant string) {
	if u := l.usage(tenant); u != nil {
		u.errors.Add(1)
	}
}

// AddRetainedTrace accounts one of the tenant's solves being kept by
// the tail sampler.
func (l *TenantLedger) AddRetainedTrace(tenant string) {
	if u := l.usage(tenant); u != nil {
		u.retained.Add(1)
	}
}

// TenantsDump is the schema-versioned JSON served at /debug/tenants.
type TenantsDump struct {
	Schema     string      `json:"schema"`
	MaxTenants int         `json:"maxTenants"`
	Tenants    []TenantRow `json:"tenants"`
}

// Dump snapshots the ledger, rows sorted by tenant ID.
func (l *TenantLedger) Dump() TenantsDump {
	d := TenantsDump{Schema: TenantsSchema}
	if l == nil {
		return d
	}
	d.MaxTenants = l.maxTenants
	cur := *l.rows.Load()
	d.Tenants = make([]TenantRow, 0, len(cur))
	for tenant, u := range cur {
		d.Tenants = append(d.Tenants, u.row(tenant))
	}
	sort.Slice(d.Tenants, func(i, j int) bool { return d.Tenants[i].Tenant < d.Tenants[j].Tenant })
	return d
}

// Validate checks the dump's structural invariants: schema string,
// rows sorted and unique, non-negative counters, and cache hits +
// rejections not exceeding the request count (solves can exceed it
// transiently only if accounting is wrong, so that is checked too).
func (d TenantsDump) Validate() error {
	if d.Schema != TenantsSchema {
		return fmt.Errorf("telemetry: tenants dump schema %q, want %q", d.Schema, TenantsSchema)
	}
	if d.MaxTenants <= 0 {
		return fmt.Errorf("telemetry: tenants dump maxTenants %d not positive", d.MaxTenants)
	}
	for i, r := range d.Tenants {
		if r.Tenant == "" {
			return fmt.Errorf("telemetry: tenant row %d has empty tenant ID", i)
		}
		if i > 0 && d.Tenants[i-1].Tenant >= r.Tenant {
			return fmt.Errorf("telemetry: tenant rows not sorted/unique at %q", r.Tenant)
		}
		if r.Requests < 0 || r.Solves < 0 || r.BitOps < 0 || r.CacheHits < 0 ||
			r.Rejections < 0 || r.Errors < 0 || r.RetainedTraces < 0 || r.SolveSeconds < 0 {
			return fmt.Errorf("telemetry: tenant %q has a negative counter", r.Tenant)
		}
		if r.CacheHits+r.Rejections > r.Requests {
			return fmt.Errorf("telemetry: tenant %q accounts %d cache hits + %d rejections for only %d requests",
				r.Tenant, r.CacheHits, r.Rejections, r.Requests)
		}
	}
	return nil
}

// ValidateTenantsJSON parses data as a tenants dump and validates it.
// It is the cmd/validatetrace and CI entry point.
func ValidateTenantsJSON(data []byte) error {
	var d TenantsDump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("telemetry: invalid tenants JSON: %w", err)
	}
	return d.Validate()
}

// RegisterTenantFamilies registers the rootd_tenant_* exposition
// families, each a counter over the dynamic tenant label reading the
// ledger at scrape time. Safe to call once per ledger per registry.
func (g *Registry) RegisterTenantFamilies(l *TenantLedger) {
	if g == nil || l == nil {
		return
	}
	intFam := func(name, help string, get func(*TenantUsage) int64) {
		g.families.register(name, help, "counter", l, func(e *expoWriter) {
			for _, t := range sortedTenants(l) {
				e.sampleInt(name, get(t.u), "tenant", t.name)
			}
		})
	}
	intFam("rootd_tenant_requests_total", "Requests received per tenant.",
		func(u *TenantUsage) int64 { return u.requests.Load() })
	intFam("rootd_tenant_solves_total", "Solves led per tenant (cache misses).",
		func(u *TenantUsage) int64 { return u.solves.Load() })
	intFam("rootd_tenant_bit_ops_total", "Measured solve bit operations per tenant.",
		func(u *TenantUsage) int64 { return u.bitOps.Load() })
	intFam("rootd_tenant_cache_hits_total", "Requests served from the result cache per tenant.",
		func(u *TenantUsage) int64 { return u.cacheHits.Load() })
	intFam("rootd_tenant_rejections_total", "Requests refused by admission control per tenant.",
		func(u *TenantUsage) int64 { return u.rejections.Load() })
	intFam("rootd_tenant_retained_traces_total", "Solves retained by the tail sampler per tenant.",
		func(u *TenantUsage) int64 { return u.retained.Load() })
	g.families.register("rootd_tenant_solve_seconds_total",
		"Summed solve wall seconds per tenant.", "counter", l, func(e *expoWriter) {
			for _, t := range sortedTenants(l) {
				e.sampleFloat("rootd_tenant_solve_seconds_total", t.u.solveSeconds.Load(), "tenant", t.name)
			}
		})
}

// sortedTenants snapshots the ledger rows sorted by tenant name, for
// deterministic exposition order.
func sortedTenants(l *TenantLedger) []struct {
	name string
	u    *TenantUsage
} {
	cur := *l.rows.Load()
	out := make([]struct {
		name string
		u    *TenantUsage
	}, 0, len(cur))
	for name, u := range cur {
		out = append(out, struct {
			name string
			u    *TenantUsage
		}{name, u})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

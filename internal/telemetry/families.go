package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Custom metric families. The built-in realroots_* families are wired
// directly into Registry; servers layered on the solver (rootd)
// register their own families here so one /metrics endpoint renders
// everything with shared HELP/TYPE dedup, deterministic ordering, and
// the strict-validator guarantees. Families are emitted after the
// built-ins, in registration order; within a family, series are sorted
// by label values.
//
// Registration is idempotent by family name: registering an existing
// name returns the existing collector (counters and histograms keep
// accumulating across re-registrations, which keeps shared hubs safe),
// except RegisterGaugeFunc, which rebinds the callback — a gauge
// describes current state, so the latest registrant wins.

// family is one registered exposition family.
type family struct {
	name, help, typ string
	write           func(e *expoWriter)
}

// collector ties a family to its typed handle for idempotent lookup.
type collector struct {
	fam *family
	val any // *CounterVec, *Float64, *HistogramVec, or *gaugeFunc
}

// famState is the registry's custom-family store, separate from the
// built-in counters so WritePrometheus can render custom families
// without holding the built-ins' lock semantics hostage.
type famState struct {
	mu      sync.Mutex
	ordered []*family
	byName  map[string]*collector
}

func (s *famState) register(name, help, typ string, val any, write func(e *expoWriter)) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byName == nil {
		s.byName = map[string]*collector{}
	}
	if c, ok := s.byName[name]; ok {
		return c.val, false
	}
	f := &family{name: name, help: help, typ: typ, write: write}
	s.ordered = append(s.ordered, f)
	s.byName[name] = &collector{fam: f, val: val}
	return val, true
}

func (s *famState) writeAll(e *expoWriter) {
	s.mu.Lock()
	fams := make([]*family, len(s.ordered))
	copy(fams, s.ordered)
	s.mu.Unlock()
	for _, f := range fams {
		e.family(f.name, f.help, f.typ)
		f.write(e)
	}
}

// CounterVec is an integer counter family over one label with a fixed,
// pre-registered value set; every series is always emitted (zeros
// included) so scrapes are stable from the first request.
type CounterVec struct {
	label  string
	values []string
	counts []atomic.Int64
}

// Add increments the series for value by delta. Unknown values are
// dropped (the value set is fixed at registration).
func (c *CounterVec) Add(value string, delta int64) {
	if c == nil {
		return
	}
	for i, v := range c.values {
		if v == value {
			c.counts[i].Add(delta)
			return
		}
	}
}

// Value returns the current count for value (0 if unknown).
func (c *CounterVec) Value(value string) int64 {
	if c == nil {
		return 0
	}
	for i, v := range c.values {
		if v == value {
			return c.counts[i].Load()
		}
	}
	return 0
}

// RegisterCounterVec registers (or returns the existing) counter
// family over one label with the given fixed label-value set, emitted
// in the given order.
func (g *Registry) RegisterCounterVec(name, help, label string, values []string) *CounterVec {
	vals := make([]string, len(values))
	copy(vals, values)
	c := &CounterVec{label: label, values: vals, counts: make([]atomic.Int64, len(vals))}
	got, _ := g.families.register(name, help, "counter", c, func(e *expoWriter) {
		for i, v := range c.values {
			e.sampleInt(name, c.counts[i].Load(), c.label, v)
		}
	})
	return got.(*CounterVec)
}

// RegisterFloatCounter registers (or returns the existing) unlabeled
// float counter backed by an atomic Float64.
func (g *Registry) RegisterFloatCounter(name, help string) *Float64 {
	f := &Float64{}
	got, _ := g.families.register(name, help, "counter", f, func(e *expoWriter) {
		e.sampleFloat(name, f.Load())
	})
	return got.(*Float64)
}

// gaugeFunc wraps a rebindable gauge callback.
type gaugeFunc struct {
	mu sync.Mutex
	fn func() float64
}

func (gf *gaugeFunc) read() float64 {
	gf.mu.Lock()
	fn := gf.fn
	gf.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// RegisterGaugeFunc registers a gauge whose value is read from fn at
// scrape time. Re-registering an existing name rebinds the callback to
// fn — the latest registrant owns the gauge.
func (g *Registry) RegisterGaugeFunc(name, help string, fn func() float64) {
	gf := &gaugeFunc{fn: fn}
	got, fresh := g.families.register(name, help, "gauge", gf, func(e *expoWriter) {
		e.sampleFloat(name, gf.read())
	})
	if !fresh {
		old := got.(*gaugeFunc)
		old.mu.Lock()
		old.fn = fn
		old.mu.Unlock()
	}
}

// HistogramVec is a histogram family over a fixed list of label names
// with dynamically created series. Series creation is copy-on-write;
// Observe on an existing series is lock-free.
type HistogramVec struct {
	labels []string
	uppers []float64

	mu     sync.Mutex
	series atomic.Pointer[map[string]*Histogram] // key = label values joined with 0xff
}

const labelSep = "\xff"

// RegisterHistogramVec registers (or returns the existing) histogram
// family over the given label names and bucket upper bounds.
func (g *Registry) RegisterHistogramVec(name, help string, uppers []float64, labels ...string) *HistogramVec {
	h := &HistogramVec{labels: append([]string(nil), labels...), uppers: append([]float64(nil), uppers...)}
	empty := map[string]*Histogram{}
	h.series.Store(&empty)
	got, _ := g.families.register(name, help, "histogram", h, func(e *expoWriter) {
		h.write(e, name)
	})
	return got.(*HistogramVec)
}

// With returns the series for the given label values (one per label
// name, in registration order), creating it on first use.
func (h *HistogramVec) With(values ...string) *Histogram {
	if h == nil {
		return nil
	}
	if len(values) != len(h.labels) {
		return nil // misuse; drop rather than corrupt the exposition
	}
	key := strings.Join(values, labelSep)
	if s := (*h.series.Load())[key]; s != nil {
		return s
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cur := *h.series.Load()
	if s := cur[key]; s != nil {
		return s
	}
	next := make(map[string]*Histogram, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	s := NewHistogram(h.uppers)
	next[key] = s
	h.series.Store(&next)
	return s
}

// write renders every series: cumulative _bucket samples (with an
// OpenMetrics-style exemplar comment when the bucket has one), then
// _sum and _count. Series are ordered by label values.
func (h *HistogramVec) write(e *expoWriter, name string) {
	cur := *h.series.Load()
	keys := make([]string, 0, len(cur))
	for k := range cur {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		values := strings.Split(k, labelSep)
		base := make([]string, 0, 2*len(h.labels)+2)
		for i, l := range h.labels {
			base = append(base, l, values[i])
		}
		buckets, sum, count := cur[k].snapshot()
		for _, b := range buckets {
			le := "+Inf"
			if !math.IsInf(b.le, 1) {
				le = strconv.FormatFloat(b.le, 'g', -1, 64)
			}
			line := sampleLine(name+"_bucket", strconv.FormatUint(b.cum, 10), append(append([]string{}, base...), "le", le)...)
			if b.exemplar != nil {
				line += fmt.Sprintf(" # {request_id=%q} %s",
					escapeLabel(b.exemplar.RequestID),
					strconv.FormatFloat(b.exemplar.Value, 'g', -1, 64))
			}
			e.printf("%s\n", line)
		}
		e.sample(name+"_sum", strconv.FormatFloat(sum, 'g', -1, 64), base...)
		e.sample(name+"_count", strconv.FormatUint(count, 10), base...)
	}
}

// Package bigref is an independent reference root finder used as a
// differential-testing oracle by internal/oracle. It computes the same
// µ-approximations 2^-µ·⌈2^µ·x⌉ as the production algorithm, but from
// first principles on a deliberately foreign substrate: every number is
// a math/big integer or rational, and the package imports nothing from
// this repository — in particular none of internal/mp, internal/poly,
// or internal/dyadic — so a bug in the production arithmetic cannot
// cancel against the same bug here.
//
// The method is textbook and favors obviousness over speed: build a
// Sturm chain by content-reduced pseudo-remainders, then bisect the
// power-of-two root bound down to the 2^-µ grid, steering by exact
// sign-variation counts at dyadic rationals. Half-open (a, b] interval
// semantics (variations computed with zeros skipped) make the final
// width-2^-µ cell's right endpoint exactly the ⌈⌉-grid approximation.
package bigref

import (
	"errors"
	"fmt"
	"math/big"
)

// A Poly is an integer polynomial as ascending big.Int coefficients
// with a non-zero leading coefficient (the zero polynomial is empty).
type Poly []*big.Int

// NewPoly copies coeffs (ascending degree order) and trims leading
// zeros.
func NewPoly(coeffs []*big.Int) Poly {
	p := make(Poly, len(coeffs))
	for i, c := range coeffs {
		p[i] = new(big.Int).Set(c)
	}
	return p.trim()
}

func (p Poly) trim() Poly {
	for len(p) > 0 && p[len(p)-1].Sign() == 0 {
		p = p[:len(p)-1]
	}
	return p
}

// Degree returns -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p) - 1 }

func (p Poly) lead() *big.Int { return p[len(p)-1] }

func (p Poly) derivative() Poly {
	if len(p) <= 1 {
		return nil
	}
	d := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		d[i-1] = new(big.Int).Mul(p[i], big.NewInt(int64(i)))
	}
	return d.trim()
}

// content returns the positive GCD of the coefficients (1 for empty).
func (p Poly) content() *big.Int {
	g := new(big.Int)
	for _, c := range p {
		g.GCD(nil, nil, g, new(big.Int).Abs(c))
	}
	if g.Sign() == 0 {
		g.SetInt64(1)
	}
	return g
}

// primitive divides out the content, preserving signs.
func (p Poly) primitive() Poly {
	g := p.content()
	if g.Cmp(big.NewInt(1)) == 0 {
		return p
	}
	q := make(Poly, len(p))
	for i, c := range p {
		q[i] = new(big.Int).Quo(c, g)
	}
	return q
}

// pseudoRem returns a *positive* constant multiple of the remainder of
// u ÷ v: u is pre-multiplied by lc(v)^e with e = deg u - deg v + 1
// rounded up to even, so the division is integral and the multiplier
// is a positive square.
func pseudoRem(u, v Poly) Poly {
	du, dv := u.Degree(), v.Degree()
	e := du - dv + 1
	if e%2 == 1 {
		e++
	}
	lv := v.lead()
	r := make(Poly, len(u))
	m := new(big.Int).Exp(lv, big.NewInt(int64(e)), nil)
	for i, c := range u {
		r[i] = new(big.Int).Mul(c, m)
	}
	r = r.trim()
	for r.Degree() >= dv {
		// r -= (lead(r)/lv) · x^(deg r - dv) · v ; lead(r) is divisible
		// by lv because r started as lv^e·u and each step preserves it.
		q := new(big.Int).Quo(r.lead(), lv)
		shift := r.Degree() - dv
		for j, vc := range v {
			r[shift+j].Sub(r[shift+j], new(big.Int).Mul(q, vc))
		}
		r = r.trim()
	}
	return r
}

// sturmChain returns the content-reduced Sturm chain of p:
// S_0 = p, S_1 = p', S_{k+1} = -prem(S_{k-1}, S_k), each divided by its
// (positive) content. The chain stops at the last non-zero element.
func sturmChain(p Poly) []Poly {
	chain := []Poly{p.primitive()}
	d := p.derivative()
	if len(d) == 0 {
		return chain
	}
	chain = append(chain, d.primitive())
	for {
		r := pseudoRem(chain[len(chain)-2], chain[len(chain)-1])
		if len(r) == 0 {
			return chain
		}
		for _, c := range r {
			c.Neg(c)
		}
		chain = append(chain, r.primitive())
	}
}

// exactDiv returns u/v for polynomials with v | u over ℚ and v
// primitive (so the quotient is integral by Gauss's lemma).
func exactDiv(u, v Poly) Poly {
	r := make(Poly, len(u))
	for i, c := range u {
		r[i] = new(big.Int).Set(c)
	}
	r = r.trim()
	q := make(Poly, u.Degree()-v.Degree()+1)
	for i := range q {
		q[i] = new(big.Int)
	}
	for len(r) != 0 && r.Degree() >= v.Degree() {
		shift := r.Degree() - v.Degree()
		qc := new(big.Int).Quo(r.lead(), v.lead())
		q[shift].Set(qc)
		for j, vc := range v {
			r[shift+j].Sub(r[shift+j], new(big.Int).Mul(qc, vc))
		}
		r = r.trim()
	}
	return q.trim()
}

// chainFor returns the Sturm chain of p's squarefree part. The gcd of
// (p, p') is read off the tail of p's own chain; when it is non-trivial
// the chain is rebuilt from p/gcd, so that a sample point landing
// exactly on a (formerly repeated) root zeroes only S_0, keeping
// variation counts well-defined. chain[0] is the primitive squarefree
// part itself.
func chainFor(p Poly) []Poly {
	pp := p.primitive()
	chain := sturmChain(pp)
	last := chain[len(chain)-1]
	if last.Degree() < 1 {
		return chain
	}
	return sturmChain(exactDiv(pp, last).primitive())
}

// signAt returns the sign of p at the rational n/d with d > 0, exactly:
// sign(Σ p_i·n^i·d^(deg-i)), by Horner with an incremental power of d.
func (p Poly) signAt(n, d *big.Int) int {
	if len(p) == 0 {
		return 0
	}
	acc := new(big.Int).Set(p.lead())
	dp := big.NewInt(1)
	for i := len(p) - 2; i >= 0; i-- {
		dp = new(big.Int).Mul(dp, d)
		acc.Mul(acc, n)
		acc.Add(acc, new(big.Int).Mul(p[i], dp))
	}
	return acc.Sign()
}

// SignAtRat returns the exact sign of p at the rational point x.
func (p Poly) SignAtRat(x *big.Rat) int {
	if len(p) == 0 {
		return 0
	}
	return p.signAt(x.Num(), x.Denom())
}

// variations counts the sign variations of the chain at n/d (d > 0),
// skipping zeros — the convention under which V(a) - V(b) counts roots
// in the half-open interval (a, b].
func variations(chain []Poly, n, d *big.Int) int {
	v, prev := 0, 0
	for _, s := range chain {
		sg := s.signAt(n, d)
		if sg == 0 {
			continue
		}
		if prev != 0 && sg != prev {
			v++
		}
		prev = sg
	}
	return v
}

// variationsAtInf counts the chain's sign variations as x → ±∞ (the
// leading coefficient's sign, flipped at -∞ for odd degrees).
func variationsAtInf(chain []Poly, neg bool) int {
	v, prev := 0, 0
	for _, s := range chain {
		sg := s.lead().Sign()
		if neg && s.Degree()%2 == 1 {
			sg = -sg
		}
		if prev != 0 && sg != prev {
			v++
		}
		prev = sg
	}
	return v
}

// ratNumDen splits a rational into (numerator, positive denominator).
func ratNumDen(x *big.Rat) (*big.Int, *big.Int) { return x.Num(), x.Denom() }

// CountRootsIn returns the number of distinct real roots of the
// polynomial in the half-open interval (a, b], computed exactly by
// Sturm's theorem (a < b required). Repeated roots count once.
func CountRootsIn(coeffs []*big.Int, a, b *big.Rat) (int, error) {
	p := NewPoly(coeffs)
	if p.Degree() < 1 {
		return 0, errors.New("bigref: polynomial has no roots")
	}
	if a.Cmp(b) >= 0 {
		return 0, fmt.Errorf("bigref: empty interval (%v, %v]", a, b)
	}
	chain := chainFor(p)
	an, ad := ratNumDen(a)
	bn, bd := ratNumDen(b)
	return variations(chain, an, ad) - variations(chain, bn, bd), nil
}

// CountRoots returns the number of distinct real roots of the
// polynomial over the whole real line.
func CountRoots(coeffs []*big.Int) (int, error) {
	p := NewPoly(coeffs)
	if p.Degree() < 1 {
		return 0, errors.New("bigref: polynomial has no roots")
	}
	chain := chainFor(p)
	return variationsAtInf(chain, true) - variationsAtInf(chain, false), nil
}

// rootBoundLog2 returns k with every real root strictly inside
// (-2^k, 2^k), from the Cauchy bound 1 + max|p_i|/|p_n|.
func (p Poly) rootBoundLog2() uint {
	maxBits := 0
	for _, c := range p[:len(p)-1] {
		if b := new(big.Int).Abs(c).BitLen(); b > maxBits {
			maxBits = b
		}
	}
	// |root| < 1 + max|p_i|/|p_n| ≤ 1 + 2^maxBits ≤ 2^(maxBits+1).
	return uint(maxBits + 1)
}

// FindRoots returns the µ-approximations 2^-µ·⌈2^µ·x⌉ of all distinct
// real roots of the polynomial, ascending, one entry per distinct root
// (entries may repeat when distinct roots round to the same grid
// point). The polynomial may have repeated roots and non-real roots;
// only the distinct real roots are reported.
func FindRoots(coeffs []*big.Int, mu uint) ([]*big.Rat, error) {
	p := NewPoly(coeffs)
	if p.Degree() < 1 {
		return nil, errors.New("bigref: polynomial has no roots")
	}
	chain := chainFor(p)
	k := chain[0].rootBoundLog2()

	one := big.NewInt(1)
	pow2 := func(e uint) *big.Int { return new(big.Int).Lsh(one, e) }
	lo := new(big.Rat).SetFrac(new(big.Int).Neg(pow2(k)), one)
	hi := new(big.Rat).SetFrac(pow2(k), one)
	step := new(big.Rat).SetFrac(one, pow2(mu))

	vlo := variations(chain, lo.Num(), lo.Denom())
	vhi := variations(chain, hi.Num(), hi.Denom())

	var out []*big.Rat
	// Depth-first left-to-right bisection of (lo, hi] keeps the output
	// sorted. Each frame knows the variation counts at its endpoints, so
	// one new evaluation per split suffices.
	var walk func(lo, hi *big.Rat, vlo, vhi int)
	walk = func(lo, hi *big.Rat, vlo, vhi int) {
		count := vlo - vhi
		if count == 0 {
			return
		}
		width := new(big.Rat).Sub(hi, lo)
		if width.Cmp(step) <= 0 {
			// Every root x in (lo, hi] has ⌈2^µ·x⌉ = 2^µ·hi.
			for i := 0; i < count; i++ {
				out = append(out, new(big.Rat).Set(hi))
			}
			return
		}
		mid := new(big.Rat).Add(lo, hi)
		mid.Quo(mid, big.NewRat(2, 1))
		vmid := variations(chain, mid.Num(), mid.Denom())
		walk(lo, mid, vlo, vmid)
		walk(mid, hi, vmid, vhi)
	}
	walk(lo, hi, vlo, vhi)
	return out, nil
}

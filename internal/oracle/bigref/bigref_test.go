package bigref

import (
	"math/big"
	"math/rand"
	"testing"
)

func ints(vs ...int64) []*big.Int {
	out := make([]*big.Int, len(vs))
	for i, v := range vs {
		out[i] = big.NewInt(v)
	}
	return out
}

func rat(num, den int64) *big.Rat { return big.NewRat(num, den) }

// fromRoots builds ∏ (x - r) over big.Int.
func fromRoots(roots ...int64) []*big.Int {
	p := []*big.Int{big.NewInt(1)}
	for _, r := range roots {
		next := make([]*big.Int, len(p)+1)
		for i := range next {
			next[i] = new(big.Int)
		}
		for i, c := range p {
			next[i+1].Add(next[i+1], c)
			next[i].Sub(next[i], new(big.Int).Mul(c, big.NewInt(r)))
		}
		p = next
	}
	return p
}

func TestIntegerRootsExact(t *testing.T) {
	// Integer roots are their own µ-approximations at every µ.
	coeffs := fromRoots(-7, -1, 0, 3, 12)
	for _, mu := range []uint{1, 4, 32} {
		got, err := FindRoots(coeffs, mu)
		if err != nil {
			t.Fatal(err)
		}
		want := []int64{-7, -1, 0, 3, 12}
		if len(got) != len(want) {
			t.Fatalf("µ=%d: %d roots, want %d", mu, len(got), len(want))
		}
		for i, w := range want {
			if got[i].Cmp(rat(w, 1)) != 0 {
				t.Errorf("µ=%d root %d: got %v want %d", mu, i, got[i], w)
			}
		}
	}
}

func TestSqrt2Approximation(t *testing.T) {
	// x² - 2: approximations must be exactly 2^-µ·⌈2^µ·(±√2)⌉.
	for _, mu := range []uint{4, 8, 16, 24, 32} {
		got, err := FindRoots(ints(-2, 0, 1), mu)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("µ=%d: %d roots", mu, len(got))
		}
		for i, r := range got {
			// Verify the ⌈⌉ characterization exactly: (x̃-2^-µ)² < 2 ≤ x̃²
			// for the positive root, mirrored for the negative one.
			step := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), mu))
			lo := new(big.Rat).Sub(r, step)
			sq := func(x *big.Rat) *big.Rat { return new(big.Rat).Mul(x, x) }
			two := rat(2, 1)
			var inCell bool
			if i == 0 { // negative root: cell is (x̃-s, x̃] with x̃ ≥ x
				inCell = sq(lo).Cmp(two) > 0 && sq(r).Cmp(two) <= 0
			} else {
				inCell = sq(lo).Cmp(two) < 0 && sq(r).Cmp(two) >= 0
			}
			if !inCell {
				t.Errorf("µ=%d: root %v not the grid ceiling of ±√2", mu, r)
			}
		}
	}
}

func TestRepeatedAndComplexRoots(t *testing.T) {
	// (x-2)²·(x+1)·(x²+1): distinct real roots {-1, 2} only.
	// coeffs of (x-2)² = x²-4x+4; times (x+1) = x³-3x²+0x+4... build by
	// multiplying fromRoots(2,2,-1) by (x²+1).
	base := fromRoots(2, 2, -1)
	coeffs := make([]*big.Int, len(base)+2)
	for i := range coeffs {
		coeffs[i] = new(big.Int)
	}
	for i, c := range base {
		coeffs[i].Add(coeffs[i], c)
		coeffs[i+2].Add(coeffs[i+2], c)
	}
	got, err := FindRoots(coeffs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Cmp(rat(-1, 1)) != 0 || got[1].Cmp(rat(2, 1)) != 0 {
		t.Fatalf("roots = %v, want [-1 2]", got)
	}
	n, err := CountRoots(coeffs)
	if err != nil || n != 2 {
		t.Fatalf("CountRoots = %d, %v", n, err)
	}
}

func TestCountRootsInHalfOpen(t *testing.T) {
	coeffs := fromRoots(-3, 0, 5)
	for _, tc := range []struct {
		a, b *big.Rat
		want int
	}{
		{rat(-4, 1), rat(6, 1), 3},
		{rat(-3, 1), rat(6, 1), 2},  // root at left endpoint excluded
		{rat(-4, 1), rat(-3, 1), 1}, // root at right endpoint included
		{rat(0, 1), rat(5, 1), 1},
		{rat(-1, 2), rat(1, 2), 1},
		{rat(1, 2), rat(9, 2), 0},
	} {
		got, err := CountRootsIn(coeffs, tc.a, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("count(%v, %v] = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCloseRootsShareCell(t *testing.T) {
	// Roots 0 and 1/4 at µ=1 (grid 1/2): approximations 0 and 1/2; at
	// µ=0 (grid 1) the root 1/4 rounds up to 1 — distinct cells; with
	// roots 1/8 and 1/4 at µ=1 both round to 1/2: duplicates retained.
	// p = (8x-1)(4x-1) = 32x² - 12x + 1.
	got, err := FindRoots(ints(1, -12, 32), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Cmp(rat(1, 2)) != 0 || got[1].Cmp(rat(1, 2)) != 0 {
		t.Fatalf("roots = %v, want [1/2 1/2]", got)
	}
}

func TestErrors(t *testing.T) {
	if _, err := FindRoots(ints(5), 4); err == nil {
		t.Error("constant accepted")
	}
	if _, err := FindRoots(ints(0), 4); err == nil {
		t.Error("zero polynomial accepted")
	}
	if _, err := CountRootsIn(ints(-2, 0, 1), rat(1, 1), rat(1, 1)); err == nil {
		t.Error("empty interval accepted")
	}
}

func TestRandomAgainstEval(t *testing.T) {
	// Random products of distinct small roots: report exactly those.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(6)
		seen := map[int64]bool{}
		var roots []int64
		for len(roots) < n {
			v := int64(r.Intn(41) - 20)
			if !seen[v] {
				seen[v] = true
				roots = append(roots, v)
			}
		}
		got, err := FindRoots(fromRoots(roots...), 16)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: %d roots, want %d", trial, len(got), n)
		}
		sorted := append([]int64(nil), roots...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		for i, w := range sorted {
			if got[i].Cmp(rat(w, 1)) != 0 {
				t.Errorf("trial %d root %d: got %v want %d", trial, i, got[i], w)
			}
		}
	}
}

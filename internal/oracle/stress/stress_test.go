package stress

import (
	"testing"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/workload"
)

// TestPSweepDeterminism is the DESIGN.md §5 promise as an executable
// check: one task graph, P ∈ {1,2,4,8,16}, identical roots and
// identical per-phase multiplication counts. Run with -race in CI.
func TestPSweepDeterminism(t *testing.T) {
	inputs := []struct {
		name string
		n    int
		mu   uint
		seed int64
	}{
		{"charpoly16-mu16", 16, 16, 1},
		{"charpoly12-mu32", 12, 32, 2},
	}
	if testing.Short() {
		inputs = inputs[:1]
	}
	for _, tc := range inputs {
		t.Run(tc.name, func(t *testing.T) {
			p := workload.CharPoly01(tc.seed, tc.n)
			if err := SweepAndVerify(p, tc.mu, DefaultWorkers, tc.seed); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSweepRecordsTasks(t *testing.T) {
	p := workload.Tridiagonal(3, 10, 5)
	runs, err := Sweep(p, 8, []int{1, 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Tasks != 0 {
		t.Errorf("sequential run executed %d pool tasks, want 0", runs[0].Tasks)
	}
	if runs[1].Tasks == 0 {
		t.Error("parallel run executed no pool tasks")
	}
	if runs[0].Muls[metrics.PhaseRemainder] == 0 {
		t.Error("no remainder-phase multiplications recorded")
	}
}

func TestVerifyDetectsMismatch(t *testing.T) {
	p := workload.Wilkinson(8)
	runs, err := Sweep(p, 8, []int{1, 2}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(runs); err != nil {
		t.Fatalf("genuine sweep failed verification: %v", err)
	}
	// Teeth: perturb a count, then a root.
	bad := append([]Run(nil), runs...)
	bad[1].Muls[metrics.PhaseTree]++
	if err := Verify(bad); err == nil {
		t.Error("perturbed multiplication count went undetected")
	}
	bad = append([]Run(nil), runs...)
	rootsCopy := append([]dyadic.Dyadic(nil), runs[1].Roots...)
	rootsCopy[0] = rootsCopy[0].Add(rootsCopy[0])
	bad[1].Roots = rootsCopy
	if err := Verify(bad); err == nil {
		t.Error("perturbed root went undetected")
	}
	if err := Verify(runs[:1]); err == nil {
		t.Error("single-run sweep accepted")
	}
}

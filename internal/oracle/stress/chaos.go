// Chaos suite: the adversarial counterpart of the determinism sweep.
// Where Sweep only perturbs the Go scheduler and demands identical
// output, the chaos harness injects real faults — task panics, mid-run
// cancellations, starvation budgets, stalls — from deterministic
// seed-derived plans (internal/faultinject) and demands the resilience
// contract instead: every run terminates promptly with either
// bit-exact roots or a typed resilience error. Never a hang, never a
// silently wrong root.

package stress

import (
	"context"
	"fmt"
	"time"

	"realroots/internal/core"
	"realroots/internal/dyadic"
	"realroots/internal/faultinject"
	"realroots/internal/poly"
)

// ChaosWorkers is the worker sweep the chaos suite exercises. It stays
// below DefaultWorkers' top end because every (seed, P) pair is a full
// solver run and the suite runs many seeds under -race.
var ChaosWorkers = []int{1, 2, 4, 8}

// HangTimeout bounds one chaos run. The instances are small (a run
// completes in milliseconds), so a run still in flight after this long
// is a liveness bug — the exact failure mode the suite exists to catch.
const HangTimeout = 30 * time.Second

// TypedFailure reports whether err is an acceptable way for a
// fault-injected run to fail: one of the typed resilience outcomes
// (cancellation, deadline, budget, isolated panic). A nil error is not
// a failure, and any other error is an unacceptable one.
func TypedFailure(err error) bool {
	return err != nil && core.IsResilience(err)
}

// ChaosRun solves p once under the given fault plan, guarded against
// hangs: if the run is still going after HangTimeout it returns a
// non-resilience error (the run's goroutine is abandoned — the caller
// is a failing test by then).
func ChaosRun(p *poly.Poly, mu uint, workers int, plan faultinject.Plan) (*core.Result, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := core.Options{
		Mu:        mu,
		Workers:   workers,
		Ctx:       ctx,
		MaxBitOps: plan.MaxBitOps,
		TaskHook:  plan.Hook(cancel),
	}
	type outcome struct {
		res *core.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := core.FindRoots(p, opts)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-time.After(HangTimeout):
		return nil, fmt.Errorf("stress: chaos run hung for %v (P=%d, %v)", HangTimeout, workers, plan)
	}
}

// ChaosSweepAndVerify derives one fault plan from seed, replays it at
// every worker count in ChaosWorkers, and asserts the resilience
// contract against a clean sequential reference solve: each run either
// matches the reference bit-for-bit or fails with a typed resilience
// error. Fault-free plans must succeed outright. The paper's
// determinism guarantee (§5.1: identical arithmetic at every P) is
// what makes the bit-exact comparison sound even under stalls.
func ChaosSweepAndVerify(p *poly.Poly, mu uint, seed int64) error {
	want, err := core.FindRoots(p, core.Options{Mu: mu})
	if err != nil {
		return fmt.Errorf("stress: reference solve: %w", err)
	}
	plan := faultinject.New(seed)
	for _, w := range ChaosWorkers {
		res, err := ChaosRun(p, mu, w, plan)
		if err != nil {
			if !TypedFailure(err) {
				return fmt.Errorf("stress: P=%d %v: untyped failure: %w", w, plan, err)
			}
			if plan.FaultFree() {
				return fmt.Errorf("stress: P=%d %v: fault-free plan failed: %w", w, plan, err)
			}
			if res == nil {
				return fmt.Errorf("stress: P=%d %v: resilience error without partial stats", w, plan)
			}
			continue
		}
		// Success path: the roots must be bit-exact, faults or not —
		// a fault that didn't land (e.g. PanicAt beyond the task
		// count, or P=1's poolless path never calling the hook) must
		// leave no trace on the output.
		if err := sameRoots(want.Roots, res.Roots); err != nil {
			return fmt.Errorf("stress: P=%d %v: %w", w, plan, err)
		}
	}
	return nil
}

// sameRoots compares two root slices bit-for-bit.
func sameRoots(want, got []dyadic.Dyadic) error {
	if len(got) != len(want) {
		return fmt.Errorf("found %d roots, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			return fmt.Errorf("root %d differs: got %v, want %v", i, got[i], want[i])
		}
	}
	return nil
}

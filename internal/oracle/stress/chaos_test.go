package stress

import (
	"runtime"
	"testing"
	"time"

	"realroots/internal/faultinject"
	"realroots/internal/workload"
)

// TestChaosSweep is the resilience contract as an executable check:
// many seed-derived fault plans, each replayed at P ∈ {1,2,4,8}, and
// every run must terminate promptly with bit-exact roots or a typed
// resilience error. Run with -race in CI (the chaos job).
func TestChaosSweep(t *testing.T) {
	seeds := int64(56)
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(faultinject.New(seed).String(), func(t *testing.T) {
			t.Parallel()
			// Vary the instance with the seed so the task graphs (and
			// hence which task a fault lands on) differ across plans.
			p := workload.CharPoly01(seed, 12)
			if err := ChaosSweepAndVerify(p, 16, seed); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestChaosRunHonorsBudget pins one plan kind end to end: a starved
// budget must produce a typed failure at every worker count.
func TestChaosRunHonorsBudget(t *testing.T) {
	p := workload.Wilkinson(12)
	plan := faultinject.Plan{PanicAt: -1, CancelAt: -1, MaxBitOps: 800}
	for _, w := range ChaosWorkers {
		res, err := ChaosRun(p, 16, w, plan)
		if !TypedFailure(err) {
			t.Fatalf("P=%d: err = %v, want typed budget failure", w, err)
		}
		if res == nil || len(res.Roots) != 0 {
			t.Fatalf("P=%d: partial result = %+v", w, res)
		}
	}
}

// TestChaosNoGoroutineLeak replays a mixed batch of plans and then
// requires the goroutine count to settle back: no abandoned workers or
// watchdogs from any failure mode.
func TestChaosNoGoroutineLeak(t *testing.T) {
	p := workload.CharPoly01(3, 10)
	before := runtime.NumGoroutine()
	for seed := int64(100); seed < 120; seed++ {
		if _, err := ChaosRun(p, 16, 4, faultinject.New(seed)); err != nil && !TypedFailure(err) {
			t.Fatalf("seed %d: untyped failure: %v", seed, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Package stress is the scheduler-determinism harness: it replays one
// root-finding task graph across a sweep of worker counts while
// background "chaos" goroutines randomize the Go scheduler's
// interleavings, then verifies the promise DESIGN.md §5 makes — the
// root output is bit-for-bit identical for every worker count, and so
// are the per-phase multiplication counts (the algorithm performs
// exactly the same arithmetic regardless of how its tasks are
// scheduled; only the order varies).
//
// Run it under the race detector to turn every latent scheduler data
// race into a hard failure:
//
//	go test -race ./internal/oracle/...
package stress

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"realroots/internal/core"
	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/poly"
)

// DefaultWorkers is the paper's processor sweep.
var DefaultWorkers = []int{1, 2, 4, 8, 16}

// A Run records one worker count's output and arithmetic counts.
type Run struct {
	Workers int
	Roots   []dyadic.Dyadic
	// Muls is the per-phase multiplication count; Phases indexes it.
	Muls [metrics.NumPhases]int64
	// Tasks is the number of scheduler tasks executed (0 when Workers
	// is 1: the sequential path bypasses the pool).
	Tasks int64
}

// chaos perturbs goroutine scheduling while fn runs: njitter
// goroutines spin calling runtime.Gosched and occasionally sleeping for
// a seed-derived few microseconds, maximizing preemption points
// between the pool's workers. The jitter is the stress harness's
// substitute for a model checker: it cannot prove determinism, but
// under -race it reliably flushes out ordering assumptions.
func chaos(seed int64, njitter int, fn func()) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < njitter; i++ {
		wg.Add(1)
		r := rand.New(rand.NewSource(seed + int64(i)))
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if r.Intn(16) == 0 {
					time.Sleep(time.Duration(r.Intn(50)) * time.Microsecond)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	fn()
	close(stop)
	wg.Wait()
}

// Sweep solves p at precision mu once per worker count under chaos
// injection and returns the per-count records, in the given order.
func Sweep(p *poly.Poly, mu uint, workers []int, seed int64) ([]Run, error) {
	runs := make([]Run, 0, len(workers))
	for i, w := range workers {
		var c metrics.Counters
		var res *core.Result
		var err error
		chaos(seed+int64(100*i), 3, func() {
			res, err = core.FindRoots(p, core.Options{Mu: mu, Workers: w, Counters: &c})
		})
		if err != nil {
			return nil, fmt.Errorf("stress: workers=%d: %w", w, err)
		}
		run := Run{Workers: w, Roots: res.Roots, Tasks: res.Stats.Tasks}
		rep := c.Snapshot()
		for _, ph := range metrics.AllPhases() {
			run.Muls[ph] = rep.Phases[ph].Muls
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// Verify checks that every run in the sweep produced bit-identical
// roots and identical per-phase multiplication counts.
func Verify(runs []Run) error {
	if len(runs) < 2 {
		return fmt.Errorf("stress: need at least 2 runs to compare, have %d", len(runs))
	}
	base := runs[0]
	for _, r := range runs[1:] {
		if len(r.Roots) != len(base.Roots) {
			return fmt.Errorf("stress: P=%d found %d roots, P=%d found %d",
				base.Workers, len(base.Roots), r.Workers, len(r.Roots))
		}
		for i := range base.Roots {
			if !r.Roots[i].Equal(base.Roots[i]) {
				return fmt.Errorf("stress: root %d differs: P=%d → %v, P=%d → %v",
					i, base.Workers, base.Roots[i], r.Workers, r.Roots[i])
			}
		}
		for _, ph := range metrics.AllPhases() {
			if r.Muls[ph] != base.Muls[ph] {
				return fmt.Errorf("stress: %v multiplication count differs: P=%d → %d, P=%d → %d",
					ph, base.Workers, base.Muls[ph], r.Workers, r.Muls[ph])
			}
		}
	}
	return nil
}

// SweepAndVerify is the harness entry point: one task graph, the full
// worker sweep, chaos injection, and the determinism assertions.
func SweepAndVerify(p *poly.Poly, mu uint, workers []int, seed int64) error {
	runs, err := Sweep(p, mu, workers, seed)
	if err != nil {
		return err
	}
	return Verify(runs)
}

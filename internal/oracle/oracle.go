// Package oracle is the differential + metamorphic conformance
// subsystem: it cross-checks the parallel algorithm (internal/core)
// against three independently implemented root finders and against
// algebraic laws the paper guarantees, asserting bit-exact agreement of
// the 2^-µ·⌈2^µ·x⌉ grid roundings.
//
// The three oracles are
//
//   - the sequential Sturm baseline (internal/sturm),
//   - the sequential Descartes/VCA baseline (internal/vca), and
//   - a math/big-backed Sturm-bisection reference (bigref) that shares
//     no code with internal/mp, internal/poly, or internal/dyadic.
//
// The first two share the production arithmetic substrate but none of
// the algorithmic superstructure; the third shares nothing at all, so
// an arithmetic bug cannot cancel against itself. See DESIGN.md §5 and
// `rootbench -exp conformance` for the randomized workload sweep, and
// the sibling package oracle/stress for the scheduler-determinism
// harness.
package oracle

import (
	"fmt"
	"math/big"

	"realroots/internal/core"
	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/oracle/bigref"
	"realroots/internal/poly"
	"realroots/internal/sturm"
	"realroots/internal/vca"
)

// toBig converts a poly to ascending big.Int coefficients for bigref.
func toBig(p *poly.Poly) []*big.Int {
	out := make([]*big.Int, p.Degree()+1)
	for i := range out {
		out[i] = p.Coeff(i).ToBig()
	}
	return out
}

// rats converts the algorithm's dyadic output to exact rationals.
func rats(ds []dyadic.Dyadic) []*big.Rat {
	out := make([]*big.Rat, len(ds))
	for i, d := range ds {
		out[i] = d.Rat()
	}
	return out
}

// diff reports the first index where two exact root lists disagree, or
// -1 when identical. Lists of different lengths disagree at min length.
func diff(a, b []*big.Rat) int {
	for i := range a {
		if i >= len(b) {
			return i
		}
		if a[i].Cmp(b[i]) != 0 {
			return i
		}
	}
	if len(b) > len(a) {
		return len(a)
	}
	return -1
}

func describe(name string, subject, oracle []*big.Rat, i int) error {
	at := func(rs []*big.Rat) string {
		if i >= len(rs) {
			return fmt.Sprintf("<missing, %d roots>", len(rs))
		}
		return rs[i].RatString()
	}
	return fmt.Errorf("oracle: %s disagrees at root %d: algorithm=%s %s=%s (algorithm has %d roots, %s has %d)",
		name, i, at(subject), name, at(oracle), len(subject), name, len(oracle))
}

// Check runs the parallel algorithm on p at precision mu with the given
// worker count and cross-checks its µ-approximations, entry for entry,
// against all three oracles. A nil return means bit-exact agreement.
func Check(p *poly.Poly, mu uint, workers int) error {
	return CheckProfile(p, mu, workers, mp.Schoolbook)
}

// CheckProfile is Check with the algorithm under test running on the
// given arithmetic profile. The oracles always run schoolbook, so a
// fast-profile run is cross-checked against independently computed
// schoolbook answers — exact arithmetic means the profiles must agree
// bit for bit.
func CheckProfile(p *poly.Poly, mu uint, workers int, pr mp.Profile) error {
	res, err := core.FindRoots(p, core.Options{Mu: mu, Workers: workers, Profile: pr})
	if err != nil {
		return fmt.Errorf("oracle: algorithm failed: %w", err)
	}
	subject := rats(res.Roots)

	sr, err := sturm.FindRoots(p, mu, metrics.Ctx{})
	if err != nil {
		return fmt.Errorf("oracle: sturm oracle failed: %w", err)
	}
	if i := diff(subject, rats(sr)); i >= 0 {
		return describe("sturm", subject, rats(sr), i)
	}

	vr, err := vca.FindRoots(p, mu, metrics.Ctx{})
	if err != nil {
		return fmt.Errorf("oracle: vca oracle failed: %w", err)
	}
	if i := diff(subject, rats(vr)); i >= 0 {
		return describe("vca", subject, rats(vr), i)
	}

	br, err := bigref.FindRoots(toBig(p), mu)
	if err != nil {
		return fmt.Errorf("oracle: bigref oracle failed: %w", err)
	}
	if i := diff(subject, br); i >= 0 {
		return describe("bigref", subject, br, i)
	}
	return nil
}

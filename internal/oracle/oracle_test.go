package oracle

import (
	"math/big"
	"strings"
	"testing"

	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/workload"
)

func TestCheckAgreesOnKnownInputs(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *poly.Poly
		mu   uint
	}{
		{"sqrt2", poly.FromInt64s(-2, 0, 1), 16},
		{"wilkinson8", workload.Wilkinson(8), 8},
		{"chebyshev9", workload.Chebyshev(9), 24},
		{"charpoly10", workload.CharPoly01(3, 10), 32},
		{"tridiagonal12", workload.Tridiagonal(5, 12, 6), 16},
		{"multiplicities", workload.WithMultiplicities(2, 3, 10, 3), 8},
		{"linear", poly.FromInt64s(7, -3), 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				if err := Check(tc.p, tc.mu, workers); err != nil {
					t.Errorf("workers=%d: %v", workers, err)
				}
			}
		})
	}
}

func TestCheckRejectsComplexRoots(t *testing.T) {
	err := Check(poly.FromInt64s(1, 0, 1), 8, 1) // x²+1
	if err == nil || !strings.Contains(err.Error(), "algorithm failed") {
		t.Fatalf("err = %v, want algorithm-failed", err)
	}
}

func TestDiff(t *testing.T) {
	p := workload.Chebyshev(5)
	// Sanity for the comparator itself: identical lists pass, a
	// perturbed list is flagged at the right index.
	res, err := solve(p, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := rats(res)
	b := rats(res)
	if i := diff(a, b); i != -1 {
		t.Fatalf("identical lists diff at %d", i)
	}
	b[2] = new(big.Rat).Add(b[2], big.NewRat(1, 3))
	if i := diff(a, b); i != 2 {
		t.Fatalf("diff = %d, want 2", i)
	}
	if i := diff(a, a[:3]); i != 3 {
		t.Fatalf("short-list diff = %d, want 3", i)
	}
}

func TestCasesShape(t *testing.T) {
	cases := Cases(1, 0)
	if len(cases) < 200 {
		t.Fatalf("full suite has %d cases, want ≥ 200", len(cases))
	}
	minDeg, maxDeg := 1<<30, 0
	fams := map[string]bool{}
	musSeen := map[uint]bool{}
	for i, c := range cases {
		if c.P == nil || c.P.Degree() < 2 && c.Family != "linear" {
			if c.P.Degree() < 2 {
				t.Fatalf("case %d (%s) degree %d", i, c.Family, c.P.Degree())
			}
		}
		if c.Degree < minDeg {
			minDeg = c.Degree
		}
		if c.Degree > maxDeg {
			maxDeg = c.Degree
		}
		fams[c.Family] = true
		musSeen[c.Mu] = true
		if i > 0 && cases[i-1].Degree > c.Degree {
			t.Fatal("cases not sorted by degree")
		}
	}
	if minDeg != 2 || maxDeg < 40 {
		t.Errorf("degree span [%d, %d], want [2, ≥40]", minDeg, maxDeg)
	}
	if len(fams) != len(families) {
		t.Errorf("%d families in suite, want %d", len(fams), len(families))
	}
	for _, mu := range mus {
		if !musSeen[mu] {
			t.Errorf("µ=%d missing from suite", mu)
		}
	}
	// Budget truncation keeps the prefix.
	capped := Cases(1, 10)
	if len(capped) != 10 {
		t.Fatalf("budget 10 returned %d cases", len(capped))
	}
	for i := range capped {
		if capped[i].Family != cases[i].Family || capped[i].Mu != cases[i].Mu {
			t.Fatal("budgeted cases are not a prefix of the full suite")
		}
	}
}

func TestConformanceSample(t *testing.T) {
	// A slice of the real conformance suite end-to-end (the full ≥200
	// cases run via `rootbench -exp conformance`; CI keeps this short).
	budget := 25
	if testing.Short() {
		budget = 8
	}
	for _, c := range Cases(42, budget) {
		if err := Check(c.P, c.Mu, 1); err != nil {
			t.Errorf("%s deg=%d µ=%d: %v", c.Family, c.Degree, c.Mu, err)
		}
	}
}

// TestCheckFastProfile is the fast-profile conformance run: the
// algorithm under mp.Fast (subquadratic kernels) must reproduce the
// schoolbook oracles' answers bit for bit. The workload leans on
// higher degrees and precisions so the fast kernels actually engage
// above their operand-size thresholds.
func TestCheckFastProfile(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    *poly.Poly
		mu   uint
	}{
		{"sqrt2", poly.FromInt64s(-2, 0, 1), 16},
		{"wilkinson10", workload.Wilkinson(10), 16},
		{"chebyshev9", workload.Chebyshev(9), 24},
		{"charpoly20", workload.CharPoly01(3, 20), 32},
		{"tridiagonal12", workload.Tridiagonal(5, 12, 6), 16},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				if err := CheckProfile(tc.p, tc.mu, workers, mp.Fast); err != nil {
					t.Errorf("workers=%d: %v", workers, err)
				}
			}
		})
	}
}

package oracle

import (
	"realroots/internal/poly"
	"realroots/internal/workload"
)

// A Case is one conformance input: a polynomial from a named workload
// family plus the precision to check it at.
type Case struct {
	Family string
	Degree int
	Mu     uint
	P      *poly.Poly
}

// mus is the paper's precision grid; conformance cycles through all of
// it for every (family, degree).
var mus = []uint{4, 8, 16, 24, 32}

// family describes one workload family's generator and its degree
// ladder. Degree caps differ because coefficient growth differs:
// Wilkinson and Laguerre coefficients grow like n!, the orthogonal
// families like c^n, while tridiagonal/introots stay small — the
// ladders are chosen so every family is exercised and the full suite
// spans degrees 2…40.
type family struct {
	name    string
	degrees []int
	gen     func(seed int64, n int) *poly.Poly
}

var families = []family{
	{"charpoly", []int{2, 6, 12, 20, 32}, func(seed int64, n int) *poly.Poly {
		return workload.CharPoly01(seed, n)
	}},
	{"bounded", []int{3, 8, 16, 24}, func(seed int64, n int) *poly.Poly {
		return workload.CharPolyBounded(seed, n, 5)
	}},
	{"tridiagonal", []int{4, 10, 20, 30, 40}, func(seed int64, n int) *poly.Poly {
		return workload.Tridiagonal(seed, n, 8)
	}},
	{"wilkinson", []int{2, 5, 9, 14}, func(_ int64, n int) *poly.Poly {
		return workload.Wilkinson(n)
	}},
	{"chebyshev", []int{3, 7, 13, 21}, func(_ int64, n int) *poly.Poly {
		return workload.Chebyshev(n)
	}},
	{"hermite", []int{2, 6, 11, 18}, func(_ int64, n int) *poly.Poly {
		return workload.Hermite(n)
	}},
	{"laguerre", []int{2, 5, 8, 12}, func(_ int64, n int) *poly.Poly {
		return workload.Laguerre(n)
	}},
	{"legendre", []int{3, 6, 10, 16}, func(_ int64, n int) *poly.Poly {
		return workload.Legendre(n)
	}},
	{"introots", []int{2, 8, 16, 28, 40}, func(seed int64, n int) *poly.Poly {
		return workload.RandomIntRoots(seed, n, 60)
	}},
	{"multiplicities", []int{6, 9, 12}, func(seed int64, n int) *poly.Poly {
		// n/3 distinct roots of multiplicity ≤ 3: degree varies with the
		// draw, which is fine — the case records the actual degree.
		return workload.WithMultiplicities(seed, n/3, 25, 3)
	}},
}

// Cases returns the randomized conformance workload: for every family
// and every rung of its degree ladder, one polynomial per µ in the
// paper's grid {4, 8, 16, 24, 32}, with the seed varied per case so no
// polynomial repeats. The full suite has ≥ 200 cases spanning degrees
// 2…40; budget > 0 truncates to the budget cheapest cases (the list is
// ordered by degree, so a truncated run keeps every family's small
// instances).
func Cases(seed int64, budget int) []Case {
	var out []Case
	for _, f := range families {
		for di, n := range f.degrees {
			for mi, mu := range mus {
				s := seed + int64(1000*di+100*mi)
				p := f.gen(s, n)
				out = append(out, Case{Family: f.name, Degree: p.Degree(), Mu: mu, P: p})
			}
		}
	}
	// Order by degree ascending (stable within a degree) so budget
	// truncation keeps the cheap cases.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Degree < out[j-1].Degree; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if budget > 0 && len(out) > budget {
		out = out[:budget]
	}
	return out
}

package oracle

import (
	"testing"

	"realroots/internal/dyadic"
	"realroots/internal/poly"
	"realroots/internal/workload"
)

func TestTaylorShift(t *testing.T) {
	// p(x) = x² - 2, p(x+3) = x² + 6x + 7.
	got := TaylorShift(poly.FromInt64s(-2, 0, 1), 3)
	if !got.Equal(poly.FromInt64s(7, 6, 1)) {
		t.Fatalf("TaylorShift = %v", got)
	}
	// Shift by 0 is the identity.
	p := workload.Chebyshev(6)
	if !TaylorShift(p, 0).Equal(p) {
		t.Fatal("TaylorShift by 0 changed the polynomial")
	}
	// Shifts compose: p(x+2+5) = (p(x+2))(x+5).
	if !TaylorShift(p, 7).Equal(TaylorShift(TaylorShift(p, 2), 5)) {
		t.Fatal("TaylorShift does not compose")
	}
}

func TestScale2kAndReverse(t *testing.T) {
	// p(x) = x² - 2 at 2x: 4x² - 2.
	if got := Scale2k(poly.FromInt64s(-2, 0, 1), 1); !got.Equal(poly.FromInt64s(-2, 0, 4)) {
		t.Fatalf("Scale2k = %v", got)
	}
	// Reverse of 3x² + 2x + 1 is x² + 2x + 3; involutive when p(0)≠0.
	p := poly.FromInt64s(1, 2, 3)
	if got := Reverse(p); !got.Equal(poly.FromInt64s(3, 2, 1)) {
		t.Fatalf("Reverse = %v", got)
	} else if !Reverse(got).Equal(p) {
		t.Fatal("Reverse not involutive")
	}
}

func TestMetamorphicLawsHold(t *testing.T) {
	inputs := []struct {
		name string
		p    *poly.Poly
		mu   uint
	}{
		{"sqrt2", poly.FromInt64s(-2, 0, 1), 16},
		{"wilkinson7", workload.Wilkinson(7), 8},
		{"hermite8", workload.Hermite(8), 16},
		{"charpoly8", workload.CharPoly01(2, 8), 24},
		{"introots10", workload.RandomIntRoots(9, 10, 30), 8},
	}
	for _, tc := range inputs {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				if err := CheckLaws(tc.p, tc.mu, 1, seed); err != nil {
					t.Errorf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestMetamorphicLawsParallel(t *testing.T) {
	p := workload.Tridiagonal(11, 10, 5)
	if err := CheckLaws(p, 16, 4, 1); err != nil {
		t.Error(err)
	}
}

func TestTranslationDetectsPerturbation(t *testing.T) {
	// The laws must have teeth: translating by c but comparing as if by
	// c+1 is the kind of off-by-one they exist to catch.
	p := workload.Chebyshev(5)
	if err := CheckTranslation(p, 8, 3, 1); err != nil {
		t.Fatalf("genuine law failed: %v", err)
	}
	// Simulate a broken subject by lying about c.
	shifted := TaylorShift(p, 3)
	if err := CheckTranslation(shifted, 8, -2, 1); err == nil {
		// roots of shifted are roots(p)-3; translating again by -2 and
		// comparing to shifted's own roots must still pass (the law is
		// about consistency, not about p). So instead check a direct
		// mismatch: translation by 1 on x²-2 vs untranslated.
		t.Log("composed translation consistent, as expected")
	}
	// Direct teeth test: compare p(x+1)'s roots against p's with c=2.
	q := TaylorShift(p, 1)
	base, _ := solve(p, 8, 1)
	moved, _ := solve(q, 8, 1)
	same := len(base) == len(moved)
	if same {
		for i := range base {
			if !moved[i].Add(dyadic.FromInt64(2)).Equal(base[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("wrong translation constant went undetected")
	}
}

func TestCheckScalingRejectsBadK(t *testing.T) {
	if err := CheckScaling(poly.FromInt64s(-2, 0, 1), 4, 4, 1); err == nil {
		t.Fatal("k >= µ accepted")
	}
}

func TestCheckReversalRejectsZeroRoot(t *testing.T) {
	if err := CheckReversal(poly.FromInt64s(0, 1), 4, 1); err == nil {
		t.Fatal("p(0) = 0 accepted")
	}
}

package oracle

import (
	"fmt"
	"math/big"

	"realroots/internal/core"
	"realroots/internal/dyadic"
	"realroots/internal/mp"
	"realroots/internal/oracle/bigref"
	"realroots/internal/poly"
)

// The metamorphic laws. Each transforms the input polynomial in a way
// whose effect on the exact roots — and, crucially, on their 2^-µ grid
// roundings — is known in closed form, then asserts the algorithm's
// outputs transform accordingly. Unlike the differential oracles these
// need no second implementation to be trusted: the laws are theorems.
//
//	translation   p(x+c), c ∈ ℤ:  approx_µ(x-c) = approx_µ(x) - c
//	scaling       p(2^k·x):       approx_µ(x/2^k)·2^k = approx_{µ-k}(x)
//	reversal      xⁿ·p(1/x):      roots are reciprocals; each reported
//	                              cell must invert onto a cell of p
//	                              containing a root (checked exactly
//	                              with the bigref Sturm chain)
//	squarefree    p²:             identical distinct-root output

// solve runs the subject algorithm and returns its dyadic roots.
func solve(p *poly.Poly, mu uint, workers int) ([]dyadic.Dyadic, error) {
	res, err := core.FindRoots(p, core.Options{Mu: mu, Workers: workers})
	if err != nil {
		return nil, err
	}
	return res.Roots, nil
}

// TaylorShift returns p(x+c) by Horner: (…(a_n·(x+c) + a_{n-1})·(x+c)…).
func TaylorShift(p *poly.Poly, c int64) *poly.Poly {
	n := p.Degree()
	res := poly.Constant(new(mp.Int).Set(p.Coeff(n)))
	for i := n - 1; i >= 0; i-- {
		res = res.MulLinear(mp.NewInt(-c)).Add(poly.Constant(new(mp.Int).Set(p.Coeff(i))))
	}
	return res
}

// Scale2k returns p(2^k·x): coefficient i shifted left by k·i bits.
func Scale2k(p *poly.Poly, k uint) *poly.Poly {
	c := make([]*mp.Int, p.Degree()+1)
	for i := range c {
		c[i] = new(mp.Int).Lsh(p.Coeff(i), k*uint(i))
	}
	return poly.New(c...)
}

// Reverse returns xⁿ·p(1/x): the coefficient vector reversed. The
// result has the same degree only when p(0) ≠ 0.
func Reverse(p *poly.Poly) *poly.Poly {
	n := p.Degree()
	c := make([]*mp.Int, n+1)
	for i := 0; i <= n; i++ {
		c[i] = new(mp.Int).Set(p.Coeff(n - i))
	}
	return poly.New(c...)
}

// CheckTranslation verifies approx_µ(x-c) = approx_µ(x) - c: the roots
// of p(x+c) are the roots of p shifted by the integer -c, and integer
// shifts commute with the ⌈⌉ grid rounding exactly.
func CheckTranslation(p *poly.Poly, mu uint, c int64, workers int) error {
	base, err := solve(p, mu, workers)
	if err != nil {
		return fmt.Errorf("oracle: translation base solve: %w", err)
	}
	shifted, err := solve(TaylorShift(p, c), mu, workers)
	if err != nil {
		return fmt.Errorf("oracle: translation shifted solve: %w", err)
	}
	if len(base) != len(shifted) {
		return fmt.Errorf("oracle: translation by %d changed root count %d → %d", c, len(base), len(shifted))
	}
	dc := dyadic.FromInt64(c)
	for i := range base {
		if !shifted[i].Add(dc).Equal(base[i]) {
			return fmt.Errorf("oracle: translation law broken at root %d: %v + %d != %v (c=%d, µ=%d)",
				i, shifted[i], c, base[i], c, mu)
		}
	}
	return nil
}

// CheckScaling verifies approx_µ(x/2^k)·2^k = approx_{µ-k}(x): solving
// p(2^k·x) at precision µ is solving p at precision µ-k, rescaled.
// Requires k < µ.
func CheckScaling(p *poly.Poly, mu, k uint, workers int) error {
	if k >= mu {
		return fmt.Errorf("oracle: scaling check needs k < µ (k=%d, µ=%d)", k, mu)
	}
	base, err := solve(p, mu-k, workers)
	if err != nil {
		return fmt.Errorf("oracle: scaling base solve: %w", err)
	}
	scaled, err := solve(Scale2k(p, k), mu, workers)
	if err != nil {
		return fmt.Errorf("oracle: scaling scaled solve: %w", err)
	}
	if len(base) != len(scaled) {
		return fmt.Errorf("oracle: scaling by 2^%d changed root count %d → %d", k, len(base), len(scaled))
	}
	for i := range base {
		if !scaled[i].MulPow2(int(k)).Equal(base[i]) {
			return fmt.Errorf("oracle: scaling law broken at root %d: %v·2^%d != %v (µ=%d)",
				i, scaled[i], k, base[i], mu)
		}
	}
	return nil
}

// CheckReversal verifies the reciprocal law: the roots of xⁿ·p(1/x)
// are the reciprocals of the roots of p (which must satisfy p(0) ≠ 0).
// Grid roundings do not commute with x → 1/x, so the check inverts
// each reported cell (ỹ-2^-µ, ỹ] back through the reciprocal map and
// asserts — exactly, via the bigref Sturm chain — that p has a root in
// the image interval. Root counts must match exactly.
func CheckReversal(p *poly.Poly, mu uint, workers int) error {
	if p.Coeff(0).IsZero() {
		return fmt.Errorf("oracle: reversal check needs p(0) != 0")
	}
	base, err := solve(p, mu, workers)
	if err != nil {
		return fmt.Errorf("oracle: reversal base solve: %w", err)
	}
	rev := Reverse(p)
	revRoots, err := solve(rev, mu, workers)
	if err != nil {
		return fmt.Errorf("oracle: reversal solve: %w", err)
	}
	if len(base) != len(revRoots) {
		return fmt.Errorf("oracle: reversal changed root count %d → %d", len(base), len(revRoots))
	}
	pbig := toBig(p)
	step := new(big.Rat).SetFrac(big.NewInt(1), new(big.Int).Lsh(big.NewInt(1), mu))
	one := new(big.Rat).SetInt64(1)
	for i, y := range revRoots {
		hi := y.Rat()
		lo := new(big.Rat).Sub(hi, step)
		// Cells touching zero invert to unbounded intervals; skip them
		// (they arise only for roots within 2^-µ of zero).
		if hi.Sign() == 0 || lo.Sign() == 0 || hi.Sign() != lo.Sign() {
			continue
		}
		// y ∈ (lo, hi] ⇒ 1/y ∈ [1/hi, 1/lo); if 1/hi is itself a root of
		// p the half-open Sturm count below would miss it, so test it
		// directly first.
		a := new(big.Rat).Quo(one, hi)
		b := new(big.Rat).Quo(one, lo)
		if bigref.NewPoly(pbig).SignAtRat(a) == 0 {
			continue
		}
		n, err := bigref.CountRootsIn(pbig, a, b)
		if err != nil {
			return fmt.Errorf("oracle: reversal count: %w", err)
		}
		if n < 1 {
			return fmt.Errorf("oracle: reversal law broken at root %d: reported cell (%s, %s] of the "+
				"reversed polynomial inverts to (%s, %s], where p has no root (µ=%d)",
				i, lo.RatString(), hi.RatString(), a.RatString(), b.RatString(), mu)
		}
	}
	return nil
}

// CheckSquarefree verifies that squaring the input leaves the
// distinct-root output bit-identical: the algorithm reduces p² to the
// same squarefree part as p.
func CheckSquarefree(p *poly.Poly, mu uint, workers int) error {
	base, err := solve(p, mu, workers)
	if err != nil {
		return fmt.Errorf("oracle: squarefree base solve: %w", err)
	}
	sq, err := solve(p.Mul(p), mu, workers)
	if err != nil {
		return fmt.Errorf("oracle: squarefree squared solve: %w", err)
	}
	if len(base) != len(sq) {
		return fmt.Errorf("oracle: squaring changed root count %d → %d", len(base), len(sq))
	}
	for i := range base {
		if !base[i].Equal(sq[i]) {
			return fmt.Errorf("oracle: squarefree law broken at root %d: %v != %v (µ=%d)", i, sq[i], base[i], mu)
		}
	}
	return nil
}

// CheckLaws runs every applicable metamorphic law on p at precision mu
// with deterministically varied parameters drawn from seed.
func CheckLaws(p *poly.Poly, mu uint, workers int, seed int64) error {
	c := seed%21 - 10
	if err := CheckTranslation(p, mu, c, workers); err != nil {
		return err
	}
	if k := uint(seed%3 + 1); k < mu {
		if err := CheckScaling(p, mu, k, workers); err != nil {
			return err
		}
	}
	if !p.Coeff(0).IsZero() {
		if err := CheckReversal(p, mu, workers); err != nil {
			return err
		}
	}
	if p.Degree() <= 20 {
		if err := CheckSquarefree(p, mu, workers); err != nil {
			return err
		}
	}
	return nil
}

package mp

import (
	"fmt"
	"math/big"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// refMul is the math/big reference product for packed operands.
func refMul(x, y []uint64) *big.Int {
	return new(big.Int).Mul(big64(x), big64(y))
}

func big64(x []uint64) *big.Int {
	var v Int
	v.abs = nat64To32(x)
	return v.ToBig()
}

func rand64(r *rand.Rand, limbs int) []uint64 {
	z := make([]uint64, limbs)
	for i := range z {
		z[i] = r.Uint64()
	}
	return norm64(z)
}

func checkMul64(t *testing.T, name string, got []uint64, x, y []uint64) {
	t.Helper()
	if want := refMul(x, y); big64(got).Cmp(want) != 0 {
		t.Fatalf("%s: %d×%d limbs: product mismatch vs math/big", name, len(x), len(y))
	}
}

// TestToom3VsBig exercises the Toom-3 kernel directly across balanced,
// lopsided (up to the 2× the dispatcher allows), and sparse shapes.
func TestToom3VsBig(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	shapes := [][2]int{
		{130, 130}, {131, 130}, {200, 101}, {255, 128}, {384, 384},
		{300, 160}, {129, 128}, {400, 201},
	}
	for _, s := range shapes {
		x, y := rand64(r, s[0]), rand64(r, s[1])
		checkMul64(t, "toom3", toom3Mul64(x, y, fastTiers), x, y)
	}
	// Sparse operands: zero middle or high parts of the split.
	x := rand64(r, 300)
	for i := 100; i < 200; i++ {
		x[i] = 0
	}
	y := append(rand64(r, 101), make([]uint64, 99)...) // y2 empty after norm
	y = norm64(y)
	checkMul64(t, "toom3/sparse", toom3Mul64(x, y, fastTiers), x, y)
}

// TestNTTVsBig exercises the NTT kernel directly, including the
// worst-case digit value (all-ones operands maximize the convolution
// coefficients the CRT must reconstruct exactly).
func TestNTTVsBig(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	shapes := [][2]int{{64, 64}, {100, 51}, {257, 130}, {512, 512}, {33, 17}}
	for _, s := range shapes {
		x, y := rand64(r, s[0]), rand64(r, s[1])
		checkMul64(t, "ntt", nttMul64(x, y, fastTiers), x, y)
	}
	ones := make([]uint64, 600)
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	checkMul64(t, "ntt/all-ones", nttMul64(ones, ones, fastTiers), ones, ones)
}

// TestMulCrossoverBoundaries drives natMulFast through every tier
// transition: operand sizes straddling the Karatsuba, Toom-3 and NTT
// thresholds must all agree with math/big. The NTT sizes are real
// (≥ ntt64Threshold limbs), so this also proves the top tier engages.
func TestMulCrossoverBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("large operands")
	}
	r := rand.New(rand.NewSource(11))
	sizes := []int{
		kar64Threshold - 1, kar64Threshold, kar64Threshold + 1,
		toom64Threshold - 1, toom64Threshold, toom64Threshold + 1,
		ntt64Threshold - 1, ntt64Threshold, ntt64Threshold + 1,
	}
	for _, n := range sizes {
		x, y := rand64(r, n), rand64(r, n)
		checkMul64(t, fmt.Sprintf("mul64/%d", n), mul64(x, y), x, y)
	}
}

// chanPool is a minimal Parallel implementation: n goroutines draining
// a queue. Tests use it so the claim-loop logic is exercised without
// depending on the sched package.
type chanPool struct {
	ch chan func()
	wg sync.WaitGroup
}

func newChanPool(workers int) *chanPool {
	p := &chanPool{ch: make(chan func(), 64)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.ch {
				f()
			}
		}()
	}
	return p
}

func (p *chanPool) Submit(f func()) { p.ch <- f }
func (p *chanPool) Close()          { close(p.ch); p.wg.Wait() }

// dropPool discards every submitted task: the degenerate scheduler a
// canceled pool presents. The caller's claim loop must still complete
// the product alone.
type dropPool struct{}

func (dropPool) Submit(func()) {}

// TestMulParallelVsSerial pins the parallel path to the serial product
// bit for bit, under worker counts 1 and 4 and under a scheduler that
// drops every task.
func TestMulParallelVsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("large operands")
	}
	r := rand.New(rand.NewSource(12))
	shapes := [][2]int{
		{parMul64Threshold, parMul64Threshold},
		{parMul64Threshold + 37, parMul64Threshold + 1},
		{2 * parMul64Threshold, parMul64Threshold + 3},
	}
	pools := map[string]Parallel{
		"P=1":  newChanPool(1),
		"P=4":  newChanPool(4),
		"drop": dropPool{},
	}
	for _, s := range shapes {
		x, y := rand64(r, s[0]), rand64(r, s[1])
		want := mul64(x, y)
		for name, pool := range pools {
			got := parMul64(x, y, pool, fastTiers)
			if cmp64(got, want) != 0 {
				t.Fatalf("parMul64(%v) %dx%d: differs from serial mul64", name, s[0], s[1])
			}
		}
	}
	for _, p := range pools {
		if cp, ok := p.(*chanPool); ok {
			cp.Close()
		}
	}
}

// TestMulParallelProfileInt checks the Int-level entry point: sign
// handling, fallback below threshold, and agreement with MulProfile.
func TestMulParallelProfileInt(t *testing.T) {
	if testing.Short() {
		t.Skip("large operands")
	}
	pool := newChanPool(4)
	defer pool.Close()
	r := rand.New(rand.NewSource(13))
	bits := parMul64Threshold * 2 * limbBits // comfortably above threshold
	for i, tc := range []struct{ xb, yb int }{
		{bits, bits}, {bits, bits / 2}, {200, 300}, {bits, 64},
	} {
		x, y := RandInt(r, tc.xb), RandInt(r, tc.yb)
		var want, got Int
		want.MulProfile(Fast, x, y)
		got.MulParallelProfile(Fast, pool, x, y)
		if got.Cmp(&want) != 0 {
			t.Fatalf("case %d: MulParallelProfile differs from MulProfile", i)
		}
	}
	// Negative operands through the parallel path proper.
	x, y := RandInt(r, bits), RandInt(r, bits)
	x.Neg(x)
	var want, got Int
	want.MulProfile(Fast, x, y)
	got.MulParallelProfile(Fast, pool, x, y)
	if got.Cmp(&want) != 0 {
		t.Fatal("negative operand: MulParallelProfile differs from MulProfile")
	}
}

// TestMulParallelSpeedup is the acceptance check for the parallel
// path: on a ≥100k-bit balanced product, four helpers must beat the
// serial kernel. Timing-based, so it takes the best of several rounds
// and only warns under extreme scheduling noise unless the parallel
// path is consistently slower.
func TestMulParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs 4 CPUs")
	}
	r := rand.New(rand.NewSource(14))
	n := 4 * parMul64Threshold // ≈ 393k bits: panels land well above toom3 tier
	x, y := rand64(r, n), rand64(r, n)
	pool := newChanPool(4)
	defer pool.Close()

	best := func(f func()) (d float64) {
		d = 1e18
		for i := 0; i < 5; i++ {
			start := time.Now()
			f()
			if e := float64(time.Since(start)); e < d {
				d = e
			}
		}
		return d
	}
	serial := best(func() { mul64(x, y) })
	par := best(func() { parMul64(x, y, pool, fastTiers) })
	t.Logf("serial %.2fms parallel %.2fms speedup %.2fx", serial/1e6, par/1e6, serial/par)
	if par >= serial {
		t.Errorf("parallel mul (%.2fms) not faster than serial (%.2fms) at %d bits, P=4",
			par/1e6, serial/1e6, n*64)
	}
}

// TestMulCostPinnedToKernel pins Profile.MulCost against the kernels'
// instrumented limb-product count across shapes covering every tier.
// The old closed form drifted from the kernel on two counts (truncating
// halving, full-width partial blocks); the rewrite must stay within a
// modeling tolerance of the real work.
func TestMulCostPinnedToKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("large operands")
	}
	r := rand.New(rand.NewSource(15))
	shapes := [][2]int{
		{60, 60},      // packed karatsuba, just above 32-limb threshold
		{101, 67},     // odd, unbalanced karatsuba
		{130, 130},    // toom3
		{385, 193},    // toom3, lopsided
		{700, 90},     // block decomposition with partial tail block
		{2048, 2048},  // deep toom3 recursion
		{2100, 2049},  // toom3, odd
		{8192, 8192},  // ntt at exact transform fill
		{16384, 8192}, // ntt, 2:1 shape at the ¾-fill edge
	}
	for _, s := range shapes {
		lx, ly := s[0], s[1]
		x, y := rand64(r, lx), rand64(r, ly)
		var count int64
		tab := fastTiers
		tab.count = &count
		got := mul64t(x, y, tab)
		checkMul64(t, "mul64t/counted", got, x, y) // counting table must not change results
		counted := float64(count) * 4 * limbBits * limbBits
		cost := float64(Fast.MulCost(lx*2*limbBits, ly*2*limbBits))
		if ratio := cost / counted; ratio < 0.6 || ratio > 1.6 {
			t.Errorf("MulCost(%d,%d limbs) = %.3g, instrumented count %.3g (ratio %.2f)",
				lx, ly, cost, counted, ratio)
		}
	}
}

// TestMulCostPartialBlockRegression is the regression pin for the
// block-decomposition bug: an (lb+1)-limb × lb-limb product was charged
// ceil(la/lb) = 2 full blocks — nearly double the instrumented work.
func TestMulCostPartialBlockRegression(t *testing.T) {
	r := rand.New(rand.NewSource(16))
	lb := 3 * kar64Threshold // 60 packed limbs, karatsuba range
	la := 2*lb + 1           // one full pair of blocks plus a 1-limb tail
	x, y := rand64(r, la), rand64(r, lb)
	var count int64
	tab := fastTiers
	tab.count = &count
	checkMul64(t, "partial-block", mul64t(x, y, tab), x, y)
	counted := float64(count) * 4 * limbBits * limbBits
	cost := float64(Fast.MulCost(la*2*limbBits, lb*2*limbBits))
	// The old formula returned blocks=ceil(la/lb)=3 full blocks here,
	// ~1.5× the real work; the fix charges the tail at its true size.
	if ratio := cost / counted; ratio > 1.35 {
		t.Errorf("MulCost still overcharges partial blocks: cost %.3g vs counted %.3g (ratio %.2f)",
			cost, counted, ratio)
	}
}

// TestMulCostTruncationRegression pins the halving-loop bug: on
// odd-sized balanced operands the old t /= 2 walk lost the ceil(n/2)
// split sizes and drifted below the instrumented work level by level.
func TestMulCostTruncationRegression(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	// 81 packed limbs: four ceil-halvings 81→41→21→11 hit the base case
	// at 11; the truncating walk modeled 81→40→20→10 instead.
	lx := 81
	x, y := rand64(r, lx), rand64(r, lx)
	var count int64
	tab := fastTiers
	tab.ntt, tab.toom3 = 0, 0 // isolate the karatsuba walk
	tab.count = &count
	checkMul64(t, "truncation", mul64t(x, y, tab), x, y)
	counted := float64(count) * 4 * limbBits * limbBits
	cost := float64(Fast.MulCost(lx*2*limbBits, lx*2*limbBits))
	if ratio := cost / counted; ratio < 0.75 || ratio > 1.35 {
		t.Errorf("MulCost drifts from instrumented count on odd sizes: cost %.3g vs counted %.3g (ratio %.2f)",
			cost, counted, ratio)
	}
}

// TestDivCostEqualLength is the regression pin for the DivCost bug:
// under Fast, equal-length divisions (every remainder-sequence
// normalization step) must be charged like the compare-and-single-step
// division they are, not the full quadratic schoolbook model.
func TestDivCostEqualLength(t *testing.T) {
	const bits = 4096
	model := int64(bits) * int64(bits)
	if got := Schoolbook.DivCost(bits, bits); got != model {
		t.Fatalf("Schoolbook.DivCost(%d,%d) = %d, want model %d", bits, bits, got, model)
	}
	got := Fast.DivCost(bits, bits)
	if got >= model/10 {
		t.Errorf("Fast.DivCost(%d,%d) = %d: still ~quadratic (model %d); an equal-length division is one compare and at most one subtraction", bits, bits, got, model)
	}
	if short := Fast.DivCost(bits-1, bits); short >= model/10 {
		t.Errorf("Fast.DivCost(%d,%d) = %d: shorter-dividend division must be linear", bits-1, bits, short)
	}
	// Monotonicity across the xbits = ybits boundary: a slightly longer
	// dividend may not be cheaper than a slightly shorter one.
	if a, b := Fast.DivCost(bits+64, bits), Fast.DivCost(bits-64, bits); a < b {
		t.Errorf("DivCost not monotonic across equal length: DivCost(%d)=%d < DivCost(%d)=%d",
			bits+64, a, bits-64, b)
	}
}

// TestDivCostBoundary walks DivCost across the fastDivThreshold
// boundary: the estimate must stay positive, bounded by the model, and
// free of cliffs bigger than the regime change itself.
func TestDivCostBoundary(t *testing.T) {
	thr := fastDivThreshold * limbBits // threshold in bits
	for _, ybits := range []int{thr - limbBits, thr, thr + limbBits, 4 * thr} {
		prev := int64(0)
		for _, qbits := range []int{1, thr - limbBits, thr, thr + limbBits, 3 * thr} {
			xbits := ybits + qbits
			got := Fast.DivCost(xbits, ybits)
			model := int64(xbits) * int64(ybits)
			if got <= 0 || got > model {
				t.Fatalf("Fast.DivCost(%d,%d) = %d out of range (0, model=%d]", xbits, ybits, got, model)
			}
			if got < prev/4 {
				t.Errorf("Fast.DivCost(%d,%d) = %d: collapsed vs smaller quotient cost %d", xbits, ybits, got, prev)
			}
			prev = got
		}
	}
}

// BenchmarkMulCrossover measures each kernel on balanced operands
// around the tier thresholds; the tier table's constants were chosen
// from this grid (go test ./internal/mp -bench Crossover).
func BenchmarkMulCrossover(b *testing.B) {
	r := rand.New(rand.NewSource(18))
	kernels := []struct {
		name string
		tab  tierTable
	}{
		{"karatsuba", tierTable{kar: kar64Threshold}},
		{"toom3", tierTable{kar: kar64Threshold, toom3: toom64Threshold}},
		{"ntt", tierTable{kar: kar64Threshold, toom3: toom64Threshold, ntt: 1 << 5}},
		{"tiered", fastTiers},
	}
	for _, n := range []int{64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144} {
		x, y := rand64(r, n), rand64(r, n)
		for _, k := range kernels {
			if k.name == "ntt" && n < 1<<5 {
				continue
			}
			b.Run(fmt.Sprintf("limbs=%d/%s", n, k.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					mul64t(x, y, k.tab)
				}
			})
		}
	}
}

// BenchmarkMulParallel measures the parallel path against the serial
// tiered kernel at P∈{1,4} (the DESIGN.md §12 numbers).
func BenchmarkMulParallel(b *testing.B) {
	r := rand.New(rand.NewSource(19))
	for _, n := range []int{parMul64Threshold, 2 * parMul64Threshold, 4 * parMul64Threshold} {
		x, y := rand64(r, n), rand64(r, n)
		b.Run(fmt.Sprintf("limbs=%d/serial", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mul64(x, y)
			}
		})
		for _, p := range []int{1, 4} {
			pool := newChanPool(p)
			b.Run(fmt.Sprintf("limbs=%d/P=%d", n, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					parMul64(x, y, pool, fastTiers)
				}
			})
			pool.Close()
		}
	}
}

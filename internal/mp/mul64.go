package mp

import "math/bits"

// 64-bit packed kernels for the Fast profile. The paper's substrate
// (and the Schoolbook profile) works on 32-bit limbs with 64-bit
// accumulators — faithful to the era's "mp" — but a modern machine
// multiplies 64-bit words at the same latency, so packing limb pairs
// before a large product quarters the hardware multiply count before
// Karatsuba even starts. The packed value is little-endian []uint64;
// packing and unpacking are O(n) and only worth it above
// fastPackThreshold (32-bit limbs).

// fastPackThreshold is the shorter-operand length (in 32-bit limbs)
// above which natMulFast packs to 64-bit limbs.
const fastPackThreshold = 8

// kar64Threshold is the 64-bit limb count below which mul64 uses the
// schoolbook row loop. 20 limbs = 1280 bits, matching
// karatsubaThreshold's cutover point.
const kar64Threshold = 20

// natTo64 packs 32-bit limbs into 64-bit limbs.
func natTo64(x nat) []uint64 {
	z := make([]uint64, (len(x)+1)/2)
	for i := range z {
		lo := uint64(x[2*i])
		if 2*i+1 < len(x) {
			lo |= uint64(x[2*i+1]) << 32
		}
		z[i] = lo
	}
	return z
}

// nat64To32 unpacks 64-bit limbs back to canonical 32-bit form.
func nat64To32(x []uint64) nat {
	z := make(nat, 2*len(x))
	for i, v := range x {
		z[2*i] = uint32(v)
		z[2*i+1] = uint32(v >> 32)
	}
	return z.norm()
}

// norm64 strips leading zero limbs.
func norm64(x []uint64) []uint64 {
	n := len(x)
	for n > 0 && x[n-1] == 0 {
		n--
	}
	return x[:n]
}

// add64 returns x + y.
func add64(x, y []uint64) []uint64 {
	if len(x) < len(y) {
		x, y = y, x
	}
	z := make([]uint64, len(x)+1)
	var carry uint64
	for i := range x {
		var yi uint64
		if i < len(y) {
			yi = y[i]
		}
		z[i], carry = bits.Add64(x[i], yi, carry)
	}
	z[len(x)] = carry
	return norm64(z)
}

// accumAt64 adds y·2^(64·shift) into z in place; z must absorb the
// carry (an invariant of the callers' product buffers).
func accumAt64(z, y []uint64, shift int) {
	var carry uint64
	for i := 0; i < len(y); i++ {
		z[shift+i], carry = bits.Add64(z[shift+i], y[i], carry)
	}
	for i := shift + len(y); carry != 0; i++ {
		z[i], carry = bits.Add64(z[i], 0, carry)
	}
}

// deductAt64 subtracts y·2^(64·shift) from z in place; the running
// value of z must stay non-negative.
func deductAt64(z, y []uint64, shift int) {
	var borrow uint64
	for i := 0; i < len(y); i++ {
		z[shift+i], borrow = bits.Sub64(z[shift+i], y[i], borrow)
	}
	for i := shift + len(y); borrow != 0; i++ {
		z[i], borrow = bits.Sub64(z[i], 0, borrow)
	}
}

// mul64Basic is the schoolbook row loop over 64-bit limbs.
func mul64Basic(x, y []uint64) []uint64 {
	z := make([]uint64, len(x)+len(y))
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		var carry uint64
		for j, yj := range y {
			hi, lo := bits.Mul64(xi, yj)
			var c uint64
			lo, c = bits.Add64(lo, z[i+j], 0)
			hi += c
			lo, c = bits.Add64(lo, carry, 0)
			hi += c
			z[i+j] = lo
			carry = hi
		}
		z[i+len(y)] = carry
	}
	return norm64(z)
}

// mul64 multiplies packed operands under the Fast profile's measured
// tier table.
func mul64(x, y []uint64) []uint64 { return mul64t(x, y, fastTiers) }

// mul64t multiplies packed operands, dispatching on the tier table:
// block decomposition for unbalanced shapes (the same structure as
// natMulFast, one word size up), then — by the shorter operand's size —
// the schoolbook row loop, Karatsuba, Toom-3, or the three-prime NTT.
// Threading the table as a parameter keeps tier selection a pure
// function of the call (benchmarks compare tables directly; no package
// state), and recursive products re-tier on their own, smaller sizes.
func mul64t(x, y []uint64, tab tierTable) []uint64 {
	if len(x) < len(y) {
		x, y = y, x
	}
	if len(y) < tab.kar {
		if tab.count != nil {
			*tab.count += int64(len(x)) * int64(len(y))
		}
		return mul64Basic(x, y)
	}
	if len(x) > 2*len(y) {
		z := make([]uint64, len(x)+len(y))
		b := len(y)
		for i := 0; i < len(x); i += b {
			hi := i + b
			if hi > len(x) {
				hi = len(x)
			}
			blk := norm64(x[i:hi])
			if len(blk) == 0 {
				continue
			}
			accumAt64(z, mul64t(blk, y, tab), i)
		}
		return norm64(z)
	}
	if tab.ntt > 0 && len(y) >= tab.ntt && nttWorthwhile(len(x), len(y)) {
		if z := nttMul64(x, y, tab); z != nil {
			return z
		}
	}
	// Toom-3 splits by the longer operand, so a near-2× shape leaves
	// the shorter one's top part almost empty and wastes an evaluation;
	// require ≤4:3 imbalance and leave the rest to Karatsuba.
	if tab.toom3 > 0 && len(y) >= tab.toom3 && 3*len(x) <= 4*len(y) {
		return toom3Mul64(x, y, tab)
	}

	z := make([]uint64, len(x)+len(y))
	m := (len(x) + 1) / 2
	x0 := norm64(x[:m])
	x1 := norm64(x[m:])
	var y0, y1 []uint64
	if m < len(y) {
		y0 = norm64(y[:m])
		y1 = norm64(y[m:])
	} else {
		y0 = y // degenerate split: y1 = 0
	}

	z0 := mul64t(x0, y0, tab)
	var z2 []uint64
	if len(x1) > 0 && len(y1) > 0 {
		z2 = mul64t(x1, y1, tab)
	}
	s := mul64t(add64(x0, x1), add64(y0, y1), tab) // z0 + z2 + x0·y1 + x1·y0

	// Same assembly as natMulFast: reduce s to the middle term in its
	// own buffer, then compose disjoint copies plus one accumulation.
	deductAt64(s, z0, 0)
	deductAt64(s, z2, 0)
	copy(z, z0)
	copy(z[2*m:], z2)
	accumAt64(z, norm64(s), m)
	return norm64(z)
}

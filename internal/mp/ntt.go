package mp

import "math/bits"

// Small-prime NTT multiplication tier for the Fast profile. Each
// 64-bit packed limb contributes two 32-bit digits; the digit vectors
// are convolved with a number-theoretic transform modulo three
// NTT-friendly primes and the true convolution coefficients are
// recovered by CRT.
//
// Prime choice (see DESIGN.md §12): each p < 2^31 so sums and
// Montgomery products stay inside uint64 without overflow, each
// p − 1 is divisible by a large power of two so power-of-two
// transform lengths exist, and the product p1·p2·p3 ≈ 2^90.3 exceeds
// the worst convolution coefficient L·(2^32−1)² < 2^23 · 2^64 = 2^87
// at the maximum supported length, making the CRT reconstruction
// exact. The smallest 2-adicity (2^23 | p2−1) caps the transform at
// L = 2^23 digits — 2^28 bits of product, far above anything the
// solver produces; beyond it nttMul64 reports failure and the caller
// falls back to Toom-3.
//
// Modular products use Montgomery reduction with R = 2^32: data stays
// in the plain domain while twiddle factors are stored premultiplied
// by R, so each butterfly costs one Montgomery product; the missing
// R factor from the pointwise step is folded into the final 1/L
// scaling.

// ntt64Threshold is the shorter-operand length, in 64-bit packed
// limbs, at which mul64t considers the NTT over Toom-3. Measured on
// this machine (balanced random operands, best of 3): at 6144 limbs
// Toom-3 still wins (8.5ms vs 11.2ms), at 8192 the NTT takes over
// (11.7ms vs 12.8ms) and by 16384 it is 1.5× ahead (23.6ms vs
// 36.0ms). The crossover is not monotone — transform lengths round up
// to powers of two, so a product just past a power of two pays for a
// half-empty transform (10240 limbs: 23.3ms vs Toom-3's 18.9ms) —
// which is why the dispatch also requires nttWorthwhile's fill-factor
// gate rather than trusting the threshold alone.
const ntt64Threshold = 8192

const (
	nttP1, nttG1 = 2013265921, 31 // 15·2^27 + 1
	nttP2, nttG2 = 998244353, 3   // 119·2^23 + 1
	nttP3, nttG3 = 754974721, 11  // 45·2^24 + 1

	nttMaxLog = 23                            // min 2-adicity across the primes
	nttP12    = uint64(nttP1) * uint64(nttP2) // fits: < 2^62
)

// montPrime holds one prime's immutable Montgomery (R = 2^32)
// constants, precomputed at package init. This is configuration, not
// mutable state.
type montPrime struct {
	p    uint64
	pinv uint32 // −p⁻¹ mod 2^32
	r2   uint64 // R² mod p
	g    uint64 // primitive root (plain domain)
}

var nttPrimes = [3]montPrime{
	newMontPrime(nttP1, nttG1),
	newMontPrime(nttP2, nttG2),
	newMontPrime(nttP3, nttG3),
}

// CRT constants (Garner's mixed-radix form), plain domain.
var (
	crtInvP1  = powMod(nttP1%nttP2, nttP2-2, nttP2)  // p1⁻¹ mod p2
	crtInvP12 = powMod(nttP12%nttP3, nttP3-2, nttP3) // (p1·p2)⁻¹ mod p3
)

func newMontPrime(p, g uint64) montPrime {
	// p⁻¹ mod 2^32 by Newton iteration, then negated.
	inv := uint32(p)
	for i := 0; i < 4; i++ {
		inv *= 2 - uint32(p)*inv
	}
	return montPrime{p: p, pinv: -inv, r2: (^uint64(0)%p + 1) % p, g: g}
}

// powMod returns b^e mod p for p < 2^31.
func powMod(b, e, p uint64) uint64 {
	r := uint64(1)
	b %= p
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			r = r * b % p
		}
		b = b * b % p
	}
	return r
}

// montMul returns a·b·R⁻¹ mod p. With a, b < p < 2^31 every
// intermediate fits in uint64: t < 2^62 and t + m·p < 2^62 + 2^63.
func montMul(a, b, p uint64, pinv uint32) uint64 {
	t := a * b
	m := uint32(t) * pinv
	u := (t + uint64(m)*p) >> 32
	if u >= p {
		u -= p
	}
	return u
}

// nttPlan carries one prime's per-length twiddle tables: tw[s−1][j] is
// the 2^s-th root of unity raised to j, in Montgomery form, so every
// butterfly is a single table lookup plus one Montgomery product.
type nttPlan struct {
	pr    *montPrime
	fwd   [][]uint64
	inv   [][]uint64
	scale uint64 // R²·L⁻¹ mod p: inverse-transform normalization
}

func newNTTPlan(pr *montPrime, logn int) *nttPlan {
	L := uint64(1) << logn
	wPlain := powMod(pr.g, (pr.p-1)/L, pr.p)
	wInvPlain := powMod(wPlain, pr.p-2, pr.p)
	lInv := powMod(L, pr.p-2, pr.p)
	pl := &nttPlan{
		pr:    pr,
		fwd:   twiddles(pr, wPlain, logn),
		inv:   twiddles(pr, wInvPlain, logn),
		scale: pr.r2 * lInv % pr.p,
	}
	return pl
}

// twiddles builds per-stage tables for a root of order 2^logn.
func twiddles(pr *montPrime, wPlain uint64, logn int) [][]uint64 {
	tw := make([][]uint64, logn)
	one := (uint64(1) << 32) % pr.p // 1 in Montgomery form
	// Root of order 2^s: square down from order 2^logn.
	wR := montMul(wPlain, pr.r2, pr.p, pr.pinv) // to Montgomery form
	for s := logn; s >= 1; s-- {
		half := 1 << (s - 1)
		t := make([]uint64, half)
		t[0] = one
		for j := 1; j < half; j++ {
			t[j] = montMul(t[j-1], wR, pr.p, pr.pinv)
		}
		tw[s-1] = t
		wR = montMul(wR, wR, pr.p, pr.pinv)
	}
	return tw
}

// transform runs the iterative radix-2 transform in place with the
// given per-stage twiddle tables. Values stay in the plain domain.
func (pl *nttPlan) transform(a []uint64, tw [][]uint64) {
	n := len(a)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	p, pinv := pl.pr.p, pl.pr.pinv
	for s := 1; 1<<s <= n; s++ {
		length := 1 << s
		half := length >> 1
		w := tw[s-1]
		for i := 0; i < n; i += length {
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := montMul(a[i+j+half], w[j], p, pinv)
				sum := u + v
				if sum >= p {
					sum -= p
				}
				diff := u + p - v
				if diff >= p {
					diff -= p
				}
				a[i+j], a[i+j+half] = sum, diff
			}
		}
	}
}

// digitsMod splits packed limbs into L 32-bit digits reduced mod p.
func digitsMod(x []uint64, L int, p uint64) []uint64 {
	a := make([]uint64, L)
	for i, v := range x {
		a[2*i] = (v & 0xFFFFFFFF) % p
		a[2*i+1] = (v >> 32) % p
	}
	return a
}

// nttWorthwhile reports whether an lx-by-ly-limb product should take
// the NTT path: the transform length must exist (≤ 2^nttMaxLog digits)
// and be at least ¾ full. Transform cost depends on the padded
// power-of-two length, not the product size, so a just-past-a-power
// shape would pay nearly double — measured at 10240 limbs the NTT runs
// 23% slower than Toom-3 at 62% fill, while every shape at ≥75% fill
// wins (see ntt64Threshold).
func nttWorthwhile(lx, ly int) bool {
	need := 2*lx + 2*ly
	logn := 1
	for 1<<logn < need {
		logn++
	}
	if logn > nttMaxLog {
		return false
	}
	return 4*need >= 3<<logn
}

// nttMul64 multiplies packed operands via the three-prime NTT. It
// returns nil when the product would exceed the exactness bound
// (transform length over 2^23 digits); the caller then falls back to
// Toom-3, which has no size ceiling.
func nttMul64(x, y []uint64, tab tierTable) []uint64 {
	need := 2*len(x) + 2*len(y) // product digit count, one past the top
	logn := 1
	for 1<<logn < need {
		logn++
	}
	if logn > nttMaxLog {
		return nil
	}
	L := 1 << logn
	if tab.count != nil {
		// Montgomery products, by the loops' closed form: per prime,
		// three transforms of (L/2)·log₂L butterflies, pointwise and
		// scale passes of L each, and two twiddle tables of ~L entries.
		*tab.count += 3 * (3*int64(L/2)*int64(logn) + 4*int64(L))
	}

	var res [3][]uint64
	for pi := range nttPrimes {
		pl := newNTTPlan(&nttPrimes[pi], logn)
		a := digitsMod(x, L, pl.pr.p)
		b := digitsMod(y, L, pl.pr.p)
		pl.transform(a, pl.fwd)
		pl.transform(b, pl.fwd)
		p, pinv := pl.pr.p, pl.pr.pinv
		for i := range a {
			a[i] = montMul(a[i], b[i], p, pinv)
		}
		pl.transform(a, pl.inv)
		for i := range a {
			a[i] = montMul(a[i], pl.scale, p, pinv)
		}
		res[pi] = a
	}

	// Garner reconstruction digit by digit, accumulated into the
	// product at 32-bit granularity. Two scratch limbs absorb the
	// transient top-word writes; the true carries always land inside
	// len(x)+len(y) limbs because partial sums never exceed the final
	// product.
	z := make([]uint64, len(x)+len(y)+2)
	r1s, r2s, r3s := res[0], res[1], res[2]
	for i := 0; i < need; i++ {
		r1, r2, r3 := r1s[i], r2s[i], r3s[i]
		t2 := (r2 + nttP2 - r1%nttP2) % nttP2
		t2 = t2 * crtInvP1 % nttP2
		v12 := r1 + nttP1*t2 // < p1·p2 + p1 < 2^62
		t3 := (r3 + nttP3 - v12%nttP3) % nttP3
		t3 = t3 * crtInvP12 % nttP3
		hi, lo := bits.Mul64(nttP12, t3)
		var c uint64
		lo, c = bits.Add64(lo, v12, 0)
		hi += c
		if hi|lo == 0 {
			continue
		}
		at := i >> 1
		var w0, w1, w2 uint64
		if i&1 == 0 {
			w0, w1 = lo, hi
		} else {
			w0, w1, w2 = lo<<32, lo>>32|hi<<32, hi>>32
		}
		z[at], c = bits.Add64(z[at], w0, 0)
		z[at+1], c = bits.Add64(z[at+1], w1, c)
		z[at+2], c = bits.Add64(z[at+2], w2, c)
		for j := at + 3; c != 0; j++ {
			z[j], c = bits.Add64(z[j], 0, c)
		}
	}
	return norm64(z)
}

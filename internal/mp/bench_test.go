package mp

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchOperands(bits int) (*Int, *Int) {
	r := rand.New(rand.NewSource(int64(bits)))
	return RandNonNeg(r, bits), RandNonNeg(r, bits)
}

func BenchmarkMulSchoolbook(b *testing.B) {
	for _, bits := range []int{64, 256, 1024, 4096, 16384} {
		x, y := benchOperands(bits)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var z Int
			for i := 0; i < b.N; i++ {
				z.Mul(x, y)
			}
		})
	}
}

func BenchmarkMulKaratsuba(b *testing.B) {
	for _, bits := range []int{1024, 4096, 16384} {
		x, y := benchOperands(bits)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			UseKaratsuba = true
			defer func() { UseKaratsuba = false }()
			var z Int
			for i := 0; i < b.N; i++ {
				z.Mul(x, y)
			}
		})
	}
}

func BenchmarkDiv(b *testing.B) {
	for _, bits := range []int{256, 1024, 4096} {
		x, _ := benchOperands(2 * bits)
		y, _ := benchOperands(bits)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var q, r Int
			for i := 0; i < b.N; i++ {
				q.QuoRem(x, y, &r)
			}
		})
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := benchOperands(4096)
	var z Int
	for i := 0; i < b.N; i++ {
		z.Add(x, y)
	}
}

func BenchmarkString(b *testing.B) {
	x, _ := benchOperands(1024)
	for i := 0; i < b.N; i++ {
		_ = x.String()
	}
}

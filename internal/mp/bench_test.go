package mp

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchOperands(bits int) (*Int, *Int) {
	r := rand.New(rand.NewSource(int64(bits)))
	return RandNonNeg(r, bits), RandNonNeg(r, bits)
}

func BenchmarkMulSchoolbook(b *testing.B) {
	for _, bits := range []int{64, 256, 1024, 4096, 16384} {
		x, y := benchOperands(bits)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var z Int
			for i := 0; i < b.N; i++ {
				z.Mul(x, y)
			}
		})
	}
}

func BenchmarkMulKaratsuba(b *testing.B) {
	for _, bits := range []int{1024, 4096, 16384} {
		x, y := benchOperands(bits)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var z Int
			for i := 0; i < b.N; i++ {
				z.MulProfile(Fast, x, y)
			}
		})
	}
}

// BenchmarkMulUnbalanced pits the two profiles against each other on the
// 24-limb × 10000-limb shape where the old min-split Karatsuba recursion
// degenerated to worse than schoolbook; with block decomposition the
// Fast profile must win (or tie, via its schoolbook fallback below the
// threshold) on every shape.
func BenchmarkMulUnbalanced(b *testing.B) {
	shapes := [][2]int{
		{24 * limbBits, 10000 * limbBits},
		{100 * limbBits, 10000 * limbBits},
		{500 * limbBits, 10000 * limbBits},
	}
	for _, s := range shapes {
		x, _ := benchOperands(s[0])
		y, _ := benchOperands(s[1])
		for _, pr := range []Profile{Schoolbook, Fast} {
			b.Run(fmt.Sprintf("limbs=%dx%d/%v", s[0]/limbBits, s[1]/limbBits, pr), func(b *testing.B) {
				var z Int
				for i := 0; i < b.N; i++ {
					z.MulProfile(pr, x, y)
				}
			})
		}
	}
}

func BenchmarkDiv(b *testing.B) {
	for _, bits := range []int{256, 1024, 4096} {
		x, _ := benchOperands(2 * bits)
		y, _ := benchOperands(bits)
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var q, r Int
			for i := 0; i < b.N; i++ {
				q.QuoRem(x, y, &r)
			}
		})
	}
}

// BenchmarkDivFast compares Knuth Algorithm D with Burnikel–Ziegler
// division on dividend/divisor shapes above the recursion threshold.
func BenchmarkDivFast(b *testing.B) {
	for _, bits := range []int{4 * fastDivThreshold * limbBits, 16 * fastDivThreshold * limbBits} {
		x, _ := benchOperands(2 * bits)
		y, _ := benchOperands(bits)
		for _, pr := range []Profile{Schoolbook, Fast} {
			b.Run(fmt.Sprintf("bits=%d/%v", bits, pr), func(b *testing.B) {
				var q, r Int
				for i := 0; i < b.N; i++ {
					q.QuoRemProfile(pr, x, y, &r)
				}
			})
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := benchOperands(4096)
	var z Int
	for i := 0; i < b.N; i++ {
		z.Add(x, y)
	}
}

func BenchmarkString(b *testing.B) {
	x, _ := benchOperands(1024)
	for i := 0; i < b.N; i++ {
		_ = x.String()
	}
}

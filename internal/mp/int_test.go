package mp

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// oracle converts an Int to big.Int via the decimal string, exercising an
// independent code path from ToBig.
func oracleFromString(t *testing.T, z *Int) *big.Int {
	t.Helper()
	b, ok := new(big.Int).SetString(z.String(), 10)
	if !ok {
		t.Fatalf("oracle: cannot parse %q", z.String())
	}
	return b
}

func TestSetInt64RoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 2, -2, 1<<31 - 1, 1 << 31, -(1 << 31), 1<<62 + 12345, -(1 << 62), 1<<63 - 1, -(1 << 63) + 1}
	for _, v := range cases {
		z := NewInt(v)
		if got := z.Int64(); got != v {
			t.Errorf("round trip %d: got %d", v, got)
		}
		if !z.IsInt64() {
			t.Errorf("IsInt64(%d) = false", v)
		}
	}
}

func TestMinInt64(t *testing.T) {
	const min = -1 << 63
	z := NewInt(min)
	if z.String() != "-9223372036854775808" {
		t.Fatalf("MinInt64 string: %s", z)
	}
	if !z.IsInt64() || z.Int64() != min {
		t.Fatalf("MinInt64 round trip failed: %d", z.Int64())
	}
}

func TestIsInt64Boundary(t *testing.T) {
	z := new(Int).Lsh(NewInt(1), 63) // 2^63
	if z.IsInt64() {
		t.Error("2^63 should not fit in int64")
	}
	z.Neg(z) // -2^63
	if !z.IsInt64() {
		t.Error("-2^63 should fit in int64")
	}
	z.Sub(z, NewInt(1)) // -2^63-1
	if z.IsInt64() {
		t.Error("-2^63-1 should not fit in int64")
	}
}

func TestBigRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		z := RandInt(r, 1+r.Intn(400))
		b := z.ToBig()
		z2 := new(Int).SetBig(b)
		if z.Cmp(z2) != 0 {
			t.Fatalf("big round trip: %s != %s", z, z2)
		}
		if b.String() != z.String() {
			t.Fatalf("string mismatch: %s vs %s", b, z)
		}
	}
}

func TestArithmeticAgainstOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		x := RandInt(r, 1+r.Intn(300))
		y := RandInt(r, 1+r.Intn(300))
		bx, by := x.ToBig(), y.ToBig()

		if got, want := new(Int).Add(x, y).ToBig(), new(big.Int).Add(bx, by); got.Cmp(want) != 0 {
			t.Fatalf("Add(%s,%s)=%s want %s", x, y, got, want)
		}
		if got, want := new(Int).Sub(x, y).ToBig(), new(big.Int).Sub(bx, by); got.Cmp(want) != 0 {
			t.Fatalf("Sub(%s,%s)=%s want %s", x, y, got, want)
		}
		if got, want := new(Int).Mul(x, y).ToBig(), new(big.Int).Mul(bx, by); got.Cmp(want) != 0 {
			t.Fatalf("Mul(%s,%s)=%s want %s", x, y, got, want)
		}
		if !y.IsZero() {
			q, rem := new(Int).QuoRem(x, y, new(Int))
			bq, br := new(big.Int).QuoRem(bx, by, new(big.Int))
			if q.ToBig().Cmp(bq) != 0 || rem.ToBig().Cmp(br) != 0 {
				t.Fatalf("QuoRem(%s,%s) = (%s,%s) want (%s,%s)", x, y, q, rem, bq, br)
			}
		}
	}
}

func TestDivisionStress(t *testing.T) {
	// Exercise Algorithm D's corner cases: operands built to trigger the
	// qhat overestimate and add-back branches.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		// Divisors with high limb close to the normalization boundary.
		y := RandNonNeg(r, 64+r.Intn(200))
		if y.IsZero() {
			continue
		}
		// Numerators that are small multiples of y plus a small remainder
		// often hit qhat == base-1 paths.
		k := RandNonNeg(r, 1+r.Intn(160))
		rem := RandNonNeg(r, y.BitLen()-1)
		x := new(Int).Mul(y, k)
		x.Add(x, rem)
		q, got := new(Int).QuoRem(x, y, new(Int))
		bq, br := new(big.Int).QuoRem(x.ToBig(), y.ToBig(), new(big.Int))
		if q.ToBig().Cmp(bq) != 0 || got.ToBig().Cmp(br) != 0 {
			t.Fatalf("QuoRem(%s,%s) mismatch", x, y)
		}
	}
}

func TestDivisionAddBackCase(t *testing.T) {
	// Knuth's classic add-back trigger: u = B^4/2 - 1 style patterns with
	// B = 2^32 limbs.
	u := &Int{abs: nat{0xffffffff, 0xffffffff, 0x7fffffff}}
	v := &Int{abs: nat{0xffffffff, 0x80000000}}
	q, r := new(Int).QuoRem(u, v, new(Int))
	bq, br := new(big.Int).QuoRem(u.ToBig(), v.ToBig(), new(big.Int))
	if q.ToBig().Cmp(bq) != 0 || r.ToBig().Cmp(br) != 0 {
		t.Fatalf("add-back case: got (%s,%s) want (%s,%s)", q, r, bq, br)
	}
}

func TestQuoRemSignConventions(t *testing.T) {
	cases := [][4]int64{
		{7, 3, 2, 1}, {-7, 3, -2, -1}, {7, -3, -2, 1}, {-7, -3, 2, -1},
		{6, 3, 2, 0}, {-6, 3, -2, 0}, {0, 5, 0, 0},
	}
	for _, c := range cases {
		q, r := new(Int).QuoRem(NewInt(c[0]), NewInt(c[1]), new(Int))
		if q.Int64() != c[2] || r.Int64() != c[3] {
			t.Errorf("QuoRem(%d,%d) = (%s,%s), want (%d,%d)", c[0], c[1], q, r, c[2], c[3])
		}
	}
}

func TestShifts(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		x := RandInt(r, 1+r.Intn(300))
		s := uint(r.Intn(130))
		if got, want := new(Int).Lsh(x, s).ToBig(), new(big.Int).Lsh(x.ToBig(), s); got.Cmp(want) != 0 {
			t.Fatalf("Lsh(%s,%d)", x, s)
		}
		// Rsh uses floor semantics, like big.Int's Rsh on two's complement.
		if got, want := new(Int).Rsh(x, s).ToBig(), new(big.Int).Rsh(x.ToBig(), s); got.Cmp(want) != 0 {
			t.Fatalf("Rsh(%s,%d) = %s want %s", x, s, got, want)
		}
	}
}

func TestRshFloorNegative(t *testing.T) {
	cases := []struct {
		x    int64
		s    uint
		want int64
	}{
		{-7, 1, -4}, {-8, 1, -4}, {-1, 5, -1}, {-32, 5, -1}, {-33, 5, -2}, {7, 1, 3},
	}
	for _, c := range cases {
		if got := new(Int).Rsh(NewInt(c.x), c.s).Int64(); got != c.want {
			t.Errorf("Rsh(%d,%d) = %d, want %d", c.x, c.s, got, c.want)
		}
	}
}

func TestDivExact(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		x := RandInt(r, 1+r.Intn(200))
		y := RandInt(r, 1+r.Intn(100))
		if y.IsZero() {
			continue
		}
		p := new(Int).Mul(x, y)
		if got := new(Int).DivExact(p, y); got.Cmp(x) != 0 {
			t.Fatalf("DivExact(%s,%s) = %s, want %s", p, y, got, x)
		}
	}
}

func TestDivExactPanicsOnInexact(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DivExact(7,2) did not panic")
		}
	}()
	new(Int).DivExact(NewInt(7), NewInt(2))
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	new(Int).Quo(NewInt(1), NewInt(0))
}

func TestGCD(t *testing.T) {
	cases := [][3]int64{{12, 18, 6}, {0, 5, 5}, {5, 0, 5}, {0, 0, 0}, {-12, 18, 6}, {17, 13, 1}, {-4, -6, 2}}
	for _, c := range cases {
		if got := new(Int).GCD(NewInt(c[0]), NewInt(c[1])).Int64(); got != c[2] {
			t.Errorf("GCD(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {-3, 2}, {255, 8}, {256, 9}, {1 << 40, 41}}
	for _, c := range cases {
		if got := NewInt(c.v).BitLen(); got != c.want {
			t.Errorf("BitLen(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestAliasing(t *testing.T) {
	x := NewInt(100)
	x.Add(x, x)
	if x.Int64() != 200 {
		t.Errorf("x.Add(x,x) = %s", x)
	}
	x.Mul(x, x)
	if x.Int64() != 40000 {
		t.Errorf("x.Mul(x,x) = %s", x)
	}
	x.Sub(x, x)
	if !x.IsZero() {
		t.Errorf("x.Sub(x,x) = %s", x)
	}
	y := NewInt(17)
	y.Set(y)
	if y.Int64() != 17 {
		t.Errorf("y.Set(y) = %s", y)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		x := RandInt(r, 1+r.Intn(500))
		got, err := new(Int).SetString(x.String())
		if err != nil {
			t.Fatalf("SetString(%q): %v", x.String(), err)
		}
		if got.Cmp(x) != 0 {
			t.Fatalf("parse round trip: %s != %s", got, x)
		}
	}
}

func TestSetStringErrors(t *testing.T) {
	for _, s := range []string{"", "-", "+", "12a", "1 2", "0x10", "--3"} {
		if _, err := new(Int).SetString(s); err == nil {
			t.Errorf("SetString(%q) succeeded, want error", s)
		}
	}
}

func TestSetStringValues(t *testing.T) {
	cases := map[string]string{"0": "0", "-0": "0", "+42": "42", "0007": "7", "-000": "0"}
	for in, want := range cases {
		z, err := new(Int).SetString(in)
		if err != nil {
			t.Fatalf("SetString(%q): %v", in, err)
		}
		if z.String() != want {
			t.Errorf("SetString(%q) = %s, want %s", in, z, want)
		}
	}
}

// genInt adapts RandInt for testing/quick.
func genInt(r *rand.Rand, maxBits int) *Int {
	return RandInt(r, 1+r.Intn(maxBits))
}

func TestQuickRingAxioms(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// Commutativity and associativity of + and *.
	comm := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genInt(r, 256), genInt(r, 256), genInt(r, 256)
		if new(Int).Add(a, b).Cmp(new(Int).Add(b, a)) != 0 {
			return false
		}
		if new(Int).Mul(a, b).Cmp(new(Int).Mul(b, a)) != 0 {
			return false
		}
		l := new(Int).Add(new(Int).Add(a, b), c)
		rr := new(Int).Add(a, new(Int).Add(b, c))
		if l.Cmp(rr) != 0 {
			return false
		}
		lm := new(Int).Mul(new(Int).Mul(a, b), c)
		rm := new(Int).Mul(a, new(Int).Mul(b, c))
		if lm.Cmp(rm) != 0 {
			return false
		}
		// Distributivity.
		d1 := new(Int).Mul(a, new(Int).Add(b, c))
		d2 := new(Int).Add(new(Int).Mul(a, b), new(Int).Mul(a, c))
		return d1.Cmp(d2) == 0
	}
	if err := quick.Check(comm, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDivModIdentity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := genInt(r, 400)
		y := genInt(r, 200)
		if y.IsZero() {
			return true
		}
		q, rem := new(Int).QuoRem(x, y, new(Int))
		// x == q*y + rem, |rem| < |y|, sign(rem) in {0, sign(x)}.
		back := new(Int).Mul(q, y)
		back.Add(back, rem)
		if back.Cmp(x) != 0 {
			return false
		}
		if rem.CmpAbs(y) >= 0 {
			return false
		}
		return rem.IsZero() || rem.Sign() == x.Sign()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftInverse(t *testing.T) {
	f := func(seed int64, sRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		x := genInt(r, 300)
		s := uint(sRaw) % 200
		// (x << s) >> s == x, for either sign.
		y := new(Int).Lsh(x, s)
		return new(Int).Rsh(y, s).Cmp(x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKaratsubaMatchesSchoolbook(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		x := RandNonNeg(r, 500+r.Intn(4000))
		y := RandNonNeg(r, 500+r.Intn(4000))
		basic := natMulBasic(x.abs, y.abs)
		kar := natMulFast(x.abs, y.abs)
		if natCmp(basic, kar) != 0 {
			t.Fatalf("karatsuba mismatch at %d bits × %d bits", x.BitLen(), y.BitLen())
		}
	}
}

func TestKaratsubaUnbalanced(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 40; i++ {
		x := RandNonNeg(r, 100+r.Intn(500))
		y := RandNonNeg(r, 3000+r.Intn(3000))
		if natCmp(natMulBasic(x.abs, y.abs), natMulFast(x.abs, y.abs)) != 0 {
			t.Fatalf("unbalanced karatsuba mismatch")
		}
	}
}

// TestKaratsubaExtremeUnbalanced exercises the block-decomposition path
// (len(x) ≫ len(y)) at sizes where the old min-split recursion
// degenerated, plus threshold-straddling and degenerate-split shapes.
func TestKaratsubaExtremeUnbalanced(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	shapes := [][2]int{
		{24 * limbBits, 10000 * limbBits}, // the shape from the bug report
		{karatsubaThreshold * limbBits, 50 * karatsubaThreshold * limbBits},
		{(karatsubaThreshold + 1) * limbBits, (2*karatsubaThreshold + 1) * limbBits},
		{700, 700 * 37},
		{2*karatsubaThreshold*limbBits - 1, 2 * karatsubaThreshold * limbBits}, // m == len(y) degenerate split
	}
	for _, s := range shapes {
		x := RandNonNeg(r, s[0])
		y := RandNonNeg(r, s[1])
		if natCmp(natMulBasic(x.abs, y.abs), natMulFast(x.abs, y.abs)) != 0 {
			t.Fatalf("mismatch at %d bits × %d bits", s[0], s[1])
		}
		// Blocks of the long operand that are all zero must be skipped
		// correctly: zero a middle stretch of y.
		for i := len(y.abs) / 3; i < 2*len(y.abs)/3; i++ {
			y.abs[i] = 0
		}
		if natCmp(natMulBasic(x.abs, y.abs), natMulFast(x.abs, y.abs)) != 0 {
			t.Fatalf("zero-block mismatch at %d bits × %d bits", s[0], s[1])
		}
	}
}

// TestFastDivMatchesKnuth cross-checks Burnikel–Ziegler division against
// Algorithm D across balanced, unbalanced, and threshold-straddling
// shapes, including exact divisions and remainders near the divisor.
func TestFastDivMatchesKnuth(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	tb := fastDivThreshold * limbBits
	shapes := [][2]int{
		{4 * tb, 2 * tb},       // just past the threshold on both axes
		{8 * tb, 2 * tb},       // long quotient
		{3 * tb, tb + 1},       // divisor barely over threshold
		{16 * tb, 5 * tb},      // odd base after padding
		{2*tb + 17, tb + tb/2}, // ragged sizes
	}
	for _, s := range shapes {
		u := RandNonNeg(r, s[0])
		v := RandNonNeg(r, s[1])
		if v.IsZero() {
			continue
		}
		q1, r1 := natDiv(u.abs, v.abs)
		q2, r2 := natDivFast(u.abs, v.abs)
		if natCmp(q1, q2) != 0 || natCmp(r1, r2) != 0 {
			t.Fatalf("div mismatch at %d / %d bits", s[0], s[1])
		}
		// Exact division: u2 = q1*v must divide with zero remainder.
		u2 := natMulFast(q1, v.abs)
		q3, r3 := natDivFast(u2, v.abs)
		if natCmp(q3, q1) != 0 || len(r3) != 0 {
			t.Fatalf("exact div mismatch at %d / %d bits", s[0], s[1])
		}
		// Remainder one below the divisor: u3 = q1*v + (v-1).
		u3 := natAdd(u2, natSub(v.abs, nat{1}))
		q4, r4 := natDivFast(u3, v.abs)
		if natCmp(q4, q1) != 0 || natCmp(r4, natSub(v.abs, nat{1})) != 0 {
			t.Fatalf("max-remainder div mismatch at %d / %d bits", s[0], s[1])
		}
	}
}

// TestProfileParse covers the Profile accessors used by config plumbing.
func TestProfileParse(t *testing.T) {
	for _, c := range []struct {
		s    string
		want Profile
	}{{"schoolbook", Schoolbook}, {"paper", Schoolbook}, {"fast", Fast}} {
		got, err := ParseProfile(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseProfile(%q) = %v, %v; want %v", c.s, got, err, c.want)
		}
	}
	if _, err := ParseProfile("quantum"); err == nil {
		t.Error("ParseProfile(quantum) did not fail")
	}
	if !Schoolbook.Valid() || !Fast.Valid() || Profile(250).Valid() {
		t.Error("Profile.Valid misclassifies")
	}
	if Schoolbook.String() != "schoolbook" || Fast.String() != "fast" {
		t.Error("Profile.String mismatch")
	}
}

// TestProfileOpsAliased exercises the profile-dispatched Int operations
// with aliased receivers, which must behave like their math/big analogues.
func TestProfileOpsAliased(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, pr := range []Profile{Schoolbook, Fast} {
		for i := 0; i < 20; i++ {
			x := RandNonNeg(r, 2000+r.Intn(3000))
			// z.MulProfile(z, z) == x².
			z := new(Int).Set(x)
			z.MulProfile(pr, z, z)
			want := new(Int).Sqr(x)
			if z.Cmp(want) != 0 {
				t.Fatalf("%v: aliased square mismatch", pr)
			}
			// z.QuoRemProfile(z, y, r) with z aliasing the dividend.
			y := RandNonNeg(r, 1500+r.Intn(1000))
			if y.IsZero() {
				continue
			}
			q := new(Int).Set(want)
			var rem Int
			q.QuoRemProfile(pr, q, y, &rem)
			wq, wr := new(Int).QuoRem(want, y, new(Int))
			if q.Cmp(wq) != 0 || rem.Cmp(wr) != 0 {
				t.Fatalf("%v: aliased quorem mismatch", pr)
			}
			// DivExactProfile round-trip.
			prod := new(Int).MulProfile(pr, want, y)
			if new(Int).DivExactProfile(pr, prod, y).Cmp(want) != 0 {
				t.Fatalf("%v: DivExactProfile mismatch", pr)
			}
		}
	}
}

func TestTrailingZeros(t *testing.T) {
	cases := []struct {
		v    int64
		want uint
	}{{1, 0}, {2, 1}, {8, 3}, {-8, 3}, {12, 2}, {1 << 40, 40}}
	for _, c := range cases {
		if got := NewInt(c.v).TrailingZeros(); got != c.want {
			t.Errorf("TrailingZeros(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBit(t *testing.T) {
	z := NewInt(0b1011010)
	want := []uint{0, 1, 0, 1, 1, 0, 1, 0, 0}
	for i, w := range want {
		if got := z.Bit(uint(i)); got != w {
			t.Errorf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestNegZeroNormalization(t *testing.T) {
	z := new(Int).Neg(NewInt(0))
	if z.Sign() != 0 || z.String() != "0" {
		t.Errorf("Neg(0) not canonical zero: %s sign %d", z, z.Sign())
	}
	z = new(Int).Sub(NewInt(5), NewInt(5))
	if z.Sign() != 0 {
		t.Errorf("5-5 has sign %d", z.Sign())
	}
	z = new(Int).MulInt64(NewInt(-3), 0)
	if z.Sign() != 0 {
		t.Errorf("-3*0 has sign %d", z.Sign())
	}
}

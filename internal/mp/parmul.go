package mp

import "sync/atomic"

// Parallel multiplication path. A single giant product in the
// remainder sequence serializes whichever scheduler worker runs it;
// above parMul64Threshold the product is worth splitting into quadrant
// panels that other workers can help with. The hook is the minimal
// interface a caller-supplied scheduler must satisfy — *sched.Pool
// does, structurally — and it is threaded per operation through the
// callers' operation contexts (metrics.Ctx), never package state,
// matching the profile design.
//
// The coordination must survive three scheduler behaviors: helpers may
// never run (a canceled pool drains its queue without executing),
// helpers may be killed at task start by fault injection (sched's
// TaskHook may panic), and Submit must not be waited on. So panels are
// claimed from an atomic counter: the caller participates in the claim
// loop, so every panel is computed even if no helper ever arrives, and
// the completion count — incremented even when a panel's computation
// panics — releases the caller, which then turns a helper's panic into
// its own deterministic panic instead of a silent wrong product or a
// deadlock.

// Parallel is the scheduler hook for the parallel multiplication path:
// Submit schedules a task to run concurrently with the caller and must
// not block. Tasks may be dropped without running (e.g. a canceled
// scheduler); correctness never depends on a submitted task executing.
type Parallel interface {
	Submit(task func())
}

// parMul64Threshold is the shorter-operand length, in 64-bit packed
// limbs, above which the product is split into quadrant panels.
// Measured: below ~100k bits the panel work inflation (the quadrant
// split undoes one level of subquadratic recursion) cancels the
// speedup (see DESIGN.md §12).
const parMul64Threshold = 1536 // ≈ 98k bits

// MulParallelEngages reports whether an xbits-by-ybits product under
// the profile is large and balanced enough for the parallel path. The
// metrics layer uses this to attribute parallel-path products.
func (p Profile) MulParallelEngages(xbits, ybits int) bool {
	if p != Fast {
		return false
	}
	lo, hi := min(xbits, ybits), max(xbits, ybits)
	ly := ((lo+limbBits-1)/limbBits + 1) / 2
	lx := ((hi+limbBits-1)/limbBits + 1) / 2
	return ly >= parMul64Threshold && lx <= 2*ly
}

// MulParallelProfile sets z to x*y and returns z, like MulProfile, but
// huge balanced products are split into quadrant panels offered to par.
// The result is bit-identical to MulProfile's; par only changes where
// the limb products run. A nil par, a small or lopsided product, or a
// non-Fast profile all fall back to the serial path.
func (z *Int) MulParallelProfile(pr Profile, par Parallel, x, y *Int) *Int {
	if par == nil || !pr.MulParallelEngages(x.BitLen(), y.BitLen()) {
		return z.MulProfile(pr, x, y)
	}
	neg := x.neg != y.neg
	z.abs = nat64To32(parMul64(natTo64(x.abs), natTo64(y.abs), par, fastTiers))
	z.neg = neg && len(z.abs) > 0
	return z
}

// parMul64 multiplies quasi-balanced packed operands by splitting both
// at m = ceil(len(x)/2) and computing the up-to-four quadrant panels
// x_i·y_j concurrently. Panel products run through mul64t, so each
// re-tiers on its own size; the serial recombination is O(n).
func parMul64(x, y []uint64, par Parallel, tab tierTable) []uint64 {
	if len(x) < len(y) {
		x, y = y, x
	}
	m := (len(x) + 1) / 2
	type panel struct {
		xs, ys []uint64
		shift  int
		out    []uint64
	}
	var panels []*panel
	addPanel := func(xs, ys []uint64, shift int) {
		if len(xs) > 0 && len(ys) > 0 {
			panels = append(panels, &panel{xs: xs, ys: ys, shift: shift})
		}
	}
	x0, x1 := norm64(x[:m]), norm64(x[m:])
	y0, y1 := y, []uint64(nil)
	if m < len(y) {
		y0, y1 = norm64(y[:m]), norm64(y[m:])
	}
	addPanel(x0, y0, 0)
	addPanel(x0, y1, m)
	addPanel(x1, y0, m)
	addPanel(x1, y1, 2*m)

	n := len(panels)
	if n == 0 { // zero operand: no panels would ever close finished
		return nil
	}
	var next, done atomic.Int32
	var failed atomic.Bool
	finished := make(chan struct{})
	body := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			p := panels[i]
			func() {
				completed := false
				defer func() {
					if !completed {
						failed.Store(true)
					}
					if int(done.Add(1)) == n {
						close(finished)
					}
				}()
				p.out = mul64t(p.xs, p.ys, tab)
				completed = true
			}()
		}
	}
	for i := 1; i < n; i++ {
		par.Submit(body)
	}
	body()
	<-finished
	if failed.Load() {
		panic("mp: parallel multiplication panel panicked")
	}

	z := make([]uint64, len(x)+len(y))
	for _, p := range panels {
		accumAt64(z, p.out, p.shift)
	}
	return norm64(z)
}

package mp

import (
	"fmt"
	"math/rand"
	"testing"
)

func randNatBits(r *rand.Rand, bits int) nat {
	n := (bits + 31) / 32
	x := make(nat, n)
	for i := range x {
		x[i] = r.Uint32()
	}
	x[n-1] |= 1 << 31
	return x.norm()
}

// BenchmarkDivShapes compares the schoolbook and fast dividers across
// the dividend/divisor shapes the solver produces: long-quotient (BZ
// recursion applies), very unbalanced (packed Algorithm D fallback),
// and near-balanced (short quotient).
func BenchmarkDivShapes(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for _, sh := range [][2]int{{30000, 7000}, {20000, 2000}, {40000, 20000}, {10000, 5000}} {
		u := randNatBits(r, sh[0])
		v := randNatBits(r, sh[1])
		name := fmt.Sprintf("%dby%d", sh[0], sh[1])
		b.Run(name+"/knuth", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				natDiv(u, v)
			}
		})
		b.Run(name+"/fast", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				natDivFast(u, v)
			}
		})
	}
}

// BenchmarkGCDProfiles compares the Euclidean remainder loop against
// the packed binary GCD on PRS-sized coefficients.
func BenchmarkGCDProfiles(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	for _, bitsz := range []int{2000, 10000, 30000} {
		x := &Int{abs: randNatBits(r, bitsz)}
		y := &Int{abs: randNatBits(r, bitsz)}
		name := fmt.Sprintf("%dbits", bitsz)
		b.Run(name+"/euclid", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				new(Int).GCD(x, y)
			}
		})
		b.Run(name+"/binary", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				new(Int).GCDProfile(Fast, x, y)
			}
		})
	}
}

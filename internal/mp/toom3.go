package mp

import "math/bits"

// Toom-3 multiplication tier for the Fast profile. Each operand is cut
// into three parts of k 64-bit limbs (base B = 2^(64k)) and treated as
// a degree-2 polynomial; the product polynomial has degree 4 and is
// recovered from five point evaluations at {0, 1, −1, 2, ∞} — five
// recursive multiplications of one-third-size operands, giving
// O(n^log₃5) ≈ O(n^1.465) against Karatsuba's O(n^log₂3) ≈
// O(n^1.585). The
// evaluation at −1 makes intermediates signed, so the interpolation
// runs on sval, a signed-magnitude wrapper; the 2-point brings in an
// exact division by 3, done limbwise with the inverse of 3 mod 2^64.
//
// Interpolation (vᵢ = product evaluated at i, cᵢ = product polynomial
// coefficients):
//
//	c0 = v0
//	c4 = v∞
//	t2 = (v1 − v−1)/2            = c1 + c3
//	c2 = (v1 − c0 − c4) − t2
//	t3 = (v2 − c0 − 4c2 − 16c4)/2 = c1 + 4c3
//	c3 = (t3 − t2)/3
//	c1 = t2 − c3
//
// Both halvings and the division by 3 are exact by construction; every
// cᵢ is non-negative because they are coefficients of a product of
// non-negative polynomials.

// toom64Threshold is the shorter-operand length, in 64-bit packed
// limbs, at which mul64t switches from Karatsuba to Toom-3 for
// quasi-balanced shapes. Measured on this machine (balanced random
// operands, best of 50): Toom-3 wins 21% at 512 limbs (212µs vs
// 268µs), 12% at 768, ties at 1024, and wins 9–13% from 1536 through
// 3072. Below 512 limbs the wider evaluations and signed bookkeeping
// eat the asymptotic gain. Lopsided shapes never benefit — at 1024×768
// Toom-3 ran 54% slower than Karatsuba — hence mul64t's 4:3 balance
// gate on this tier.
const toom64Threshold = 512

// inv3mod64 is the multiplicative inverse of 3 modulo 2^64
// (3·inv3mod64 ≡ 1), used for exact limbwise division by 3.
const inv3mod64 = 0xAAAAAAAAAAAAAAAB

// sval is a signed multiprecision value: a normalized little-endian
// magnitude plus a sign. The zero value is 0. Only what the Toom-3
// interpolation needs is implemented.
type sval struct {
	neg bool
	m   []uint64
}

func (a sval) isZero() bool { return len(a.m) == 0 }

// sub64 returns x − y for normalized x ≥ y (cmp64 lives in div64.go).
func sub64(x, y []uint64) []uint64 {
	z := make([]uint64, len(x))
	var borrow uint64
	for i := range x {
		var yi uint64
		if i < len(y) {
			yi = y[i]
		}
		z[i], borrow = bits.Sub64(x[i], yi, borrow)
	}
	if borrow != 0 {
		panic("mp: sub64 underflow")
	}
	return norm64(z)
}

// shlBits64 returns x << k for 0 < k < 64.
func shlBits64(x []uint64, k uint) []uint64 {
	if len(x) == 0 {
		return x
	}
	z := make([]uint64, len(x)+1)
	var carry uint64
	for i, v := range x {
		z[i] = v<<k | carry
		carry = v >> (64 - k)
	}
	z[len(x)] = carry
	return norm64(z)
}

func svAdd(a, b sval) sval {
	if a.neg == b.neg {
		return sval{a.neg, add64(a.m, b.m)}
	}
	switch cmp64(a.m, b.m) {
	case 1:
		return sval{a.neg, sub64(a.m, b.m)}
	case -1:
		return sval{b.neg, sub64(b.m, a.m)}
	}
	return sval{}
}

func svSub(a, b sval) sval { return svAdd(a, sval{!b.neg, b.m}) }

func svMul(a, b sval, tab tierTable) sval {
	if a.isZero() || b.isZero() {
		return sval{}
	}
	return sval{a.neg != b.neg, mul64t(a.m, b.m, tab)}
}

// svShl returns a·2^k for small k.
func svShl(a sval, k uint) sval { return sval{a.neg, shlBits64(a.m, k)} }

// svHalf halves an exactly-even value.
func svHalf(a sval) sval {
	m := a.m
	if len(m) == 0 {
		return a
	}
	if m[0]&1 != 0 {
		panic("mp: toom3 halving an odd value")
	}
	z := make([]uint64, len(m))
	for i := range m {
		z[i] = m[i] >> 1
		if i+1 < len(m) {
			z[i] |= m[i+1] << 63
		}
	}
	return sval{a.neg, norm64(z)}
}

// svThird divides an exact multiple of 3 by 3, limbwise: each quotient
// limb is cur·3⁻¹ mod 2^64, and the high half of quotient·3 is the
// borrow into the next limb. Exactness is an interpolation invariant.
func svThird(a sval) sval {
	m := a.m
	z := make([]uint64, len(m))
	var borrow uint64
	for i, v := range m {
		cur, b1 := bits.Sub64(v, borrow, 0)
		q := cur * inv3mod64
		z[i] = q
		hi, _ := bits.Mul64(q, 3)
		borrow = hi + b1
	}
	if borrow != 0 {
		panic("mp: toom3 inexact division by 3")
	}
	return sval{a.neg, norm64(z)}
}

// svPart slices limbs [lo, hi) of v as a non-negative sval.
func svPart(v []uint64, lo, hi int) sval {
	if lo >= len(v) {
		return sval{}
	}
	if hi > len(v) {
		hi = len(v)
	}
	return sval{false, norm64(v[lo:hi])}
}

// toom3Mul64 multiplies quasi-balanced packed operands (len(y) ≤
// len(x) ≤ 2·len(y)) by the Toom-3 scheme; recursive products go back
// through mul64t so they re-tier on their own size.
func toom3Mul64(x, y []uint64, tab tierTable) []uint64 {
	k := (len(x) + 2) / 3
	x0, x1, x2 := svPart(x, 0, k), svPart(x, k, 2*k), svPart(x, 2*k, len(x))
	y0, y1, y2 := svPart(y, 0, k), svPart(y, k, 2*k), svPart(y, 2*k, len(y))

	// Evaluate both operands at 1, −1 and 2.
	px := svAdd(x0, x2)
	py := svAdd(y0, y2)
	ex1, ey1 := svAdd(px, x1), svAdd(py, y1)
	exm1, eym1 := svSub(px, x1), svSub(py, y1)
	ex2 := svAdd(svShl(svAdd(svShl(x2, 1), x1), 1), x0) // 4x2 + 2x1 + x0
	ey2 := svAdd(svShl(svAdd(svShl(y2, 1), y1), 1), y0)

	v0 := svMul(x0, y0, tab)
	v1 := svMul(ex1, ey1, tab)
	vm1 := svMul(exm1, eym1, tab)
	v2 := svMul(ex2, ey2, tab)
	vinf := svMul(x2, y2, tab)

	t2 := svHalf(svSub(v1, vm1))
	c2 := svSub(svSub(v1, svAdd(v0, vinf)), t2)
	t3 := svHalf(svSub(svSub(v2, v0), svAdd(svShl(c2, 2), svShl(vinf, 4))))
	c3 := svThird(svSub(t3, t2))
	c1 := svSub(t2, c3)

	z := make([]uint64, len(x)+len(y))
	for i, c := range [5]sval{v0, c1, c2, c3, vinf} {
		if c.isZero() {
			continue
		}
		if c.neg {
			panic("mp: toom3 negative coefficient")
		}
		accumAt64(z, c.m, i*k)
	}
	return norm64(z)
}

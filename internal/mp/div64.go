package mp

import "math/bits"

// 64-bit packed Knuth division for the Fast profile: the base-case
// divider under the Burnikel–Ziegler recursion (div.go) and the whole
// division when the quotient is too short for the recursion to pay.
// Identical mathematics to natDiv — Algorithm D — but over packed
// limbs, quartering the hardware multiply/divide count. Only reachable
// from natDivFast; the Schoolbook profile never packs.

// shl64 returns x << s for 0 ≤ s < 64, with room for the overflow bits.
func shl64(x []uint64, s uint) []uint64 {
	z := make([]uint64, len(x)+1)
	var carry uint64
	for i, v := range x {
		z[i] = v<<s | carry
		// s == 0 makes the complementary shift 64, which Go defines as
		// producing 0 — exactly the no-carry case.
		carry = v >> (64 - s)
	}
	z[len(x)] = carry
	return z
}

// shr64 returns x >> s for 0 ≤ s < 64.
func shr64(x []uint64, s uint) []uint64 {
	z := make([]uint64, len(x))
	for i, v := range x {
		z[i] = v >> s
		if i+1 < len(x) {
			z[i] |= x[i+1] << (64 - s)
		}
	}
	return norm64(z)
}

// div64Knuth returns the quotient and remainder of u / v over 64-bit
// limbs (v non-empty, canonical). Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
func div64Knuth(u, v []uint64) (q, r []uint64) {
	n := len(v)
	if len(u) < n || (len(u) == n && cmp64(u, v) < 0) {
		return nil, u
	}
	if n == 1 {
		q = make([]uint64, len(u))
		var rem uint64
		for i := len(u) - 1; i >= 0; i-- {
			q[i], rem = bits.Div64(rem, u[i], v[0])
		}
		return norm64(q), norm64([]uint64{rem})
	}

	// D1: normalize so the divisor's top bit is set.
	s := uint(bits.LeadingZeros64(v[n-1]))
	vn := norm64(shl64(v, s)) // exactly n limbs: the shift cannot overflow
	un := shl64(u, s)         // len(u)+1 limbs, top may be zero
	m := len(un) - 1 - n

	q = make([]uint64, m+1)
	for j := m; j >= 0; j-- {
		// D3: estimate the quotient digit from the top limbs.
		qhat := ^uint64(0)
		if un[j+n] != vn[n-1] {
			var rhat uint64
			qhat, rhat = bits.Div64(un[j+n], un[j+n-1], vn[n-1])
			for {
				hi, lo := bits.Mul64(qhat, vn[n-2])
				if hi < rhat || (hi == rhat && lo <= un[j+n-2]) {
					break
				}
				qhat--
				rhat += vn[n-1]
				if rhat < vn[n-1] { // rhat overflowed: estimate settled
					break
				}
			}
		}
		// D4: multiply and subtract.
		var borrow, mulCarry uint64
		for i := 0; i < n; i++ {
			hi, lo := bits.Mul64(qhat, vn[i])
			lo, c := bits.Add64(lo, mulCarry, 0)
			hi += c
			un[j+i], borrow = bits.Sub64(un[j+i], lo, borrow)
			mulCarry = hi
		}
		un[j+n], borrow = bits.Sub64(un[j+n], mulCarry, borrow)
		if borrow != 0 {
			// D6: qhat was one too large; add the divisor back.
			qhat--
			var carry uint64
			for i := 0; i < n; i++ {
				un[j+i], carry = bits.Add64(un[j+i], vn[i], carry)
			}
			un[j+n] += carry
		}
		q[j] = qhat
	}
	return norm64(q), shr64(norm64(un[:n]), s)
}

// cmp64 compares canonical packed values.
func cmp64(x, y []uint64) int {
	if len(x) != len(y) {
		if len(x) < len(y) {
			return -1
		}
		return 1
	}
	for i := len(x) - 1; i >= 0; i-- {
		if x[i] != y[i] {
			if x[i] < y[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// natDivKnuth64 is div64Knuth with 32-bit ends: pack, divide, unpack.
func natDivKnuth64(u, v nat) (q, r nat) {
	q64, r64 := div64Knuth(norm64(natTo64(u)), norm64(natTo64(v)))
	return nat64To32(q64), nat64To32(r64)
}

// Package mp implements arbitrary-precision integer arithmetic from
// scratch, mirroring the UNIX "mp" package used by Narendran & Tiwari's
// original implementation (paper §3.3): addition and subtraction run in
// linear time and multiplication and division in quadratic time in the
// operand sizes. This matches the cost model that the paper's analysis
// (§4) assumes, which is why the library does not use math/big in the
// production path (math/big is used only as a test oracle).
//
// A subquadratic arithmetic path (block-decomposed Karatsuba
// multiplication, Burnikel–Ziegler division) is available through the
// Profile type; Schoolbook, the zero value, is the default.
package mp

import "math/bits"

// A nat is an unsigned multiprecision integer stored as a little-endian
// slice of 32-bit limbs: x = Σ x[i]·2^(32i). The canonical form has no
// leading (high-order) zero limbs; the canonical zero is the empty slice.
type nat []uint32

const (
	limbBits = 32
	limbBase = uint64(1) << limbBits
	limbMask = limbBase - 1
)

// norm returns x with high-order zero limbs removed.
func (x nat) norm() nat {
	i := len(x)
	for i > 0 && x[i-1] == 0 {
		i--
	}
	return x[:i]
}

// natCmp compares |x| and |y|, returning -1, 0, or +1.
func natCmp(x, y nat) int {
	switch {
	case len(x) < len(y):
		return -1
	case len(x) > len(y):
		return 1
	}
	for i := len(x) - 1; i >= 0; i-- {
		switch {
		case x[i] < y[i]:
			return -1
		case x[i] > y[i]:
			return 1
		}
	}
	return 0
}

// natAdd returns x + y.
func natAdd(x, y nat) nat {
	if len(x) < len(y) {
		x, y = y, x
	}
	z := make(nat, len(x)+1)
	var carry uint64
	for i := range x {
		s := uint64(x[i]) + carry
		if i < len(y) {
			s += uint64(y[i])
		}
		z[i] = uint32(s)
		carry = s >> limbBits
	}
	z[len(x)] = uint32(carry)
	return z.norm()
}

// natSub returns x - y; it requires x >= y.
func natSub(x, y nat) nat {
	if natCmp(x, y) < 0 {
		panic("mp: natSub underflow")
	}
	z := make(nat, len(x))
	var borrow uint64
	for i := range x {
		d := uint64(x[i]) - borrow
		if i < len(y) {
			d -= uint64(y[i])
		}
		z[i] = uint32(d)
		// d underflowed iff its high word is non-zero.
		borrow = d >> 63
	}
	if borrow != 0 {
		panic("mp: natSub borrow out")
	}
	return z.norm()
}

// natMulBasic returns x*y using the schoolbook O(len(x)·len(y)) method.
func natMulBasic(x, y nat) nat {
	if len(x) == 0 || len(y) == 0 {
		return nil
	}
	z := make(nat, len(x)+len(y))
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		var carry uint64
		xv := uint64(xi)
		for j, yj := range y {
			t := uint64(z[i+j]) + xv*uint64(yj) + carry
			z[i+j] = uint32(t)
			carry = t >> limbBits
		}
		z[i+len(y)] = uint32(carry)
	}
	return z.norm()
}

// natShl returns x << s.
func natShl(x nat, s uint) nat {
	if len(x) == 0 {
		return nil
	}
	limbShift := int(s / limbBits)
	bitShift := s % limbBits
	z := make(nat, len(x)+limbShift+1)
	if bitShift == 0 {
		copy(z[limbShift:], x)
	} else {
		var carry uint32
		for i, xi := range x {
			z[i+limbShift] = xi<<bitShift | carry
			carry = uint32(uint64(xi) >> (limbBits - bitShift))
		}
		z[len(x)+limbShift] = carry
	}
	return z.norm()
}

// natShr returns x >> s.
func natShr(x nat, s uint) nat {
	limbShift := int(s / limbBits)
	bitShift := s % limbBits
	if limbShift >= len(x) {
		return nil
	}
	z := make(nat, len(x)-limbShift)
	if bitShift == 0 {
		copy(z, x[limbShift:])
	} else {
		for i := range z {
			v := uint64(x[i+limbShift]) >> bitShift
			if i+limbShift+1 < len(x) {
				v |= uint64(x[i+limbShift+1]) << (limbBits - bitShift)
			}
			z[i] = uint32(v)
		}
	}
	return z.norm()
}

// natBitLen returns the length of x in bits; natBitLen(0) == 0.
func natBitLen(x nat) int {
	if len(x) == 0 {
		return 0
	}
	return (len(x)-1)*limbBits + bits.Len32(x[len(x)-1])
}

// natBit returns bit i of x.
func natBit(x nat, i uint) uint {
	limb := int(i / limbBits)
	if limb >= len(x) {
		return 0
	}
	return uint(x[limb]>>(i%limbBits)) & 1
}

// natTrailingZeros returns the number of trailing zero bits of x != 0.
func natTrailingZeros(x nat) uint {
	for i, xi := range x {
		if xi != 0 {
			return uint(i)*limbBits + uint(bits.TrailingZeros32(xi))
		}
	}
	panic("mp: natTrailingZeros of zero")
}

// natDivSmall divides u by the single limb d, returning quotient and
// remainder.
func natDivSmall(u nat, d uint32) (q nat, r uint32) {
	if d == 0 {
		panic("mp: division by zero")
	}
	q = make(nat, len(u))
	var rem uint64
	dd := uint64(d)
	for i := len(u) - 1; i >= 0; i-- {
		cur := rem<<limbBits | uint64(u[i])
		q[i] = uint32(cur / dd)
		rem = cur % dd
	}
	return q.norm(), uint32(rem)
}

// natDiv returns the quotient and remainder of u / v (v != 0) using
// Knuth's Algorithm D (TAOCP vol. 2, §4.3.1). Quadratic in the operand
// sizes, matching the "mp" package the paper's implementation used.
func natDiv(uIn, vIn nat) (q, r nat) {
	if len(vIn) == 0 {
		panic("mp: division by zero")
	}
	if natCmp(uIn, vIn) < 0 {
		return nil, append(nat(nil), uIn...).norm()
	}
	if len(vIn) == 1 {
		q, rr := natDivSmall(uIn, vIn[0])
		if rr == 0 {
			return q, nil
		}
		return q, nat{rr}
	}

	// D1: normalize so that the top limb of v has its high bit set.
	s := uint(bits.LeadingZeros32(vIn[len(vIn)-1]))
	v := natShl(vIn, s)
	u := natShl(uIn, s)
	u = append(u, 0) // ensure an extra high limb for the first step
	n := len(v)
	m := len(u) - n - 1

	q = make(nat, m+1)
	vn1 := uint64(v[n-1])
	vn2 := uint64(v[n-2])

	for j := m; j >= 0; j-- {
		// D3: estimate qhat.
		u2 := uint64(u[j+n])<<limbBits | uint64(u[j+n-1])
		qhat := u2 / vn1
		rhat := u2 - qhat*vn1
		for qhat >= limbBase || qhat*vn2 > rhat<<limbBits+uint64(u[j+n-2]) {
			qhat--
			rhat += vn1
			if rhat >= limbBase {
				break
			}
		}

		// D4: multiply and subtract u[j..j+n] -= qhat*v.
		var borrow int64
		var mulCarry uint64
		for i := 0; i <= n; i++ {
			var p uint64
			if i < n {
				t := qhat*uint64(v[i]) + mulCarry
				mulCarry = t >> limbBits
				p = t & limbMask
			} else {
				p = mulCarry
			}
			t := int64(uint64(u[i+j])) - int64(p) + borrow
			u[i+j] = uint32(uint64(t) & limbMask)
			borrow = t >> limbBits // arithmetic shift: 0 or -1
		}

		// D5/D6: the (rare) add-back correction.
		if borrow != 0 {
			qhat--
			var c uint64
			for i := 0; i < n; i++ {
				t := uint64(u[i+j]) + uint64(v[i]) + c
				u[i+j] = uint32(t)
				c = t >> limbBits
			}
			u[j+n] = uint32(uint64(u[j+n]) + c)
		}
		q[j] = uint32(qhat)
	}

	r = nat(u[:n]).norm()
	r = natShr(r, s)
	return q.norm(), r
}

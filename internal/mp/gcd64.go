package mp

import "math/bits"

// Packed binary GCD (Stein's algorithm) for the Fast profile. The
// Euclidean GCD in int.go divides repeatedly — cheap per step, but each
// 32-bit Algorithm D call re-normalizes the whole dividend. For the
// multi-thousand-bit coefficients produced by pseudo-remainder
// sequences, replacing division with word-level subtract-and-shift over
// 64-bit limbs is several times faster.

// tzBits64 returns the number of trailing zero bits of the non-zero
// packed value x.
func tzBits64(x []uint64) int {
	for i, v := range x {
		if v != 0 {
			return i*64 + bits.TrailingZeros64(v)
		}
	}
	return 0
}

// shlN64 returns x << s for arbitrary s ≥ 0.
func shlN64(x []uint64, s uint) []uint64 {
	if len(x) == 0 {
		return nil
	}
	w, b := int(s/64), s%64
	z := make([]uint64, len(x)+w+1)
	for i, v := range x {
		z[i+w] |= v << b
		if b != 0 {
			z[i+w+1] = v >> (64 - b)
		}
	}
	return norm64(z)
}

// shrInPlace64 shifts x right by s bits in place and returns the
// canonical result (a prefix of x's backing array).
func shrInPlace64(x []uint64, s uint) []uint64 {
	w, b := int(s/64), s%64
	if w >= len(x) {
		return nil
	}
	n := len(x) - w
	for i := 0; i < n; i++ {
		x[i] = x[i+w] >> b
		if b != 0 && i+w+1 < len(x) {
			x[i] |= x[i+w+1] << (64 - b)
		}
	}
	return norm64(x[:n])
}

// gcd64 returns gcd(a, b) of canonical packed values, consuming both
// slices as scratch space.
func gcd64(a, b []uint64) []uint64 {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	az, bz := tzBits64(a), tzBits64(b)
	shift := az
	if bz < shift {
		shift = bz
	}
	a = shrInPlace64(a, uint(az))
	b = shrInPlace64(b, uint(bz))
	// Invariant: a and b odd, so a-b is even and the shift below makes
	// progress every iteration.
	for cmp64(a, b) != 0 {
		if cmp64(a, b) < 0 {
			a, b = b, a
		}
		var borrow uint64
		for i := range a {
			var bi uint64
			if i < len(b) {
				bi = b[i]
			}
			a[i], borrow = bits.Sub64(a[i], bi, borrow)
		}
		a = norm64(a)
		a = shrInPlace64(a, uint(tzBits64(a)))
	}
	return shlN64(a, uint(shift))
}

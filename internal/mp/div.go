package mp

import "math/bits"

// Divide-and-conquer division for the Fast profile, after Burnikel &
// Ziegler, "Fast Recursive Division" (MPI-I-98-1-022). The divisor is
// normalized (top bit set) and limb-padded so its length is
// base·2^L with base ≥ fastDivThreshold; the dividend is then processed
// top-down in divisor-sized blocks, each block division recursing on
// operand halves (div2n1n / div3n2n) with the half-sized partial
// quotients reassembled by fast multiplication. Cost is O(M(n)·log n)
// for the fast multiplication M, versus the quadratic Knuth Algorithm D
// in nat.go that the Schoolbook profile uses.

// fastDivThreshold is the divisor limb count below which division falls
// back to Knuth Algorithm D. Also used for the quotient length: when
// the quotient has fewer limbs than this, Algorithm D's O(qlen·n) cost
// is already modest.
const fastDivThreshold = 40

// natDivFast returns the quotient and remainder of u / v (v != 0).
func natDivFast(uIn, vIn nat) (q, r nat) {
	n := len(vIn)
	if n < fastDivThreshold || len(uIn)-n < fastDivThreshold {
		if n < fastPackThreshold || len(uIn) < fastPackThreshold {
			return natDiv(uIn, vIn)
		}
		// Too unbalanced (or too small) for the recursion to pay, but
		// big enough that the packed Algorithm D quarters the limb work.
		return natDivKnuth64(uIn, vIn)
	}

	// Pad v to n2 = base·2^L limbs (base ≥ fastDivThreshold) with its
	// top bit set, scaling u by the same power of two so the quotient
	// is unchanged and the remainder is scaled by 2^sigma.
	L := 0
	for (n >> (L + 1)) >= fastDivThreshold {
		L++
	}
	n2 := ((n + (1 << L) - 1) >> L) << L
	sigma := uint((n2-n)*limbBits + bits.LeadingZeros32(vIn[n-1]))
	v := natShl(vIn, sigma)
	u := natShl(uIn, sigma)

	// Long division with β^n2-sized digits. The top block is < β^n2 ≤
	// 2v (v has its top bit set), so its quotient digit is 0 or 1; each
	// later digit comes from a 2-by-1 block division with rem < v.
	t := (len(u) + n2 - 1) / n2
	q = make(nat, t*n2)
	rem := nat(u[(t-1)*n2:]).norm()
	if natCmp(rem, v) >= 0 {
		rem = natSub(rem, v)
		q[(t-1)*n2] = 1
	}
	for i := t - 2; i >= 0; i-- {
		blk := nat(u[i*n2 : (i+1)*n2]).norm()
		qi, ri := bzDiv2n1n(natJoin(rem, blk, n2), v, n2)
		copy(q[i*n2:], qi)
		rem = ri
	}
	return q.norm(), natShr(rem, sigma)
}

// bzDiv2n1n divides a by the n-limb divisor b, where b has its top bit
// set and a < b·β^n (so the quotient fits in n limbs and r < b).
func bzDiv2n1n(a, b nat, n int) (q, r nat) {
	if n%2 != 0 || n < 2*fastDivThreshold {
		return natDivKnuth64(a, b)
	}
	h := n / 2
	// a = aHi·β^h + aLo; aHi < b·β^h holds because a < b·β^(2h).
	aHi := natBlockAt(a, h, len(a))
	aLo := natBlockAt(a, 0, h)
	q1, r1 := bzDiv3n2n(aHi, b, h)
	q0, r := bzDiv3n2n(natJoin(r1, aLo, h), b, h)
	return natJoin(q1, q0, h), r
}

// bzDiv3n2n divides the (at most 3h-limb) a by the 2h-limb divisor b,
// where b has its top bit set and a < b·β^h (so the quotient fits in h
// limbs and r < b).
func bzDiv3n2n(a, b nat, h int) (q, r nat) {
	b1 := nat(b[h:]).norm() // top bit set, h limbs
	b0 := natBlockAt(b, 0, h)
	a2 := natBlockAt(a, 2*h, len(a))
	a1 := natBlockAt(a, h, 2*h)
	a0 := natBlockAt(a, 0, h)

	// Estimate the quotient digit from the top 2h limbs and b1. The
	// precondition gives a2 ≤ b1; on equality the true digit would need
	// β^h, so saturate at β^h−1 and let the correction loop settle it.
	var qh, c nat
	if natCmp(a2, b1) < 0 {
		qh, c = bzDiv2n1n(natJoin(a2, a1, h), b1, h)
	} else {
		qh = make(nat, h)
		for i := range qh {
			qh[i] = ^uint32(0)
		}
		// c = a2·β^h + a1 − (β^h−1)·b1 = a1 + b1 when a2 == b1.
		c = natAdd(a1, b1)
	}

	// r = c·β^h + a0 − qh·b0, correcting the (≤2) overestimates of qh
	// by adding back b.
	d := natMulFast(qh, b0)
	rr := natJoin(c, a0, h)
	for natCmp(rr, d) < 0 {
		qh = natSub(qh, nat{1})
		rr = natAdd(rr, b)
	}
	return qh, natSub(rr, d)
}

// natBlockAt returns limbs [from, to) of x as a canonical nat.
func natBlockAt(x nat, from, to int) nat {
	if from >= len(x) {
		return nil
	}
	if to > len(x) {
		to = len(x)
	}
	return nat(x[from:to]).norm()
}

// natJoin returns hi·β^shift + lo; lo must have at most shift limbs.
func natJoin(hi, lo nat, shift int) nat {
	if len(hi) == 0 {
		return lo
	}
	z := make(nat, shift+len(hi))
	copy(z, lo)
	copy(z[shift:], hi)
	return z.norm()
}

package mp

import "fmt"

// A Profile selects the arithmetic algorithms used for multiplication
// and division. It is an explicit per-operation value — carried by the
// callers' operation contexts, never package state — so concurrent
// computations may use different profiles without synchronization.
//
// The zero value is Schoolbook: quadratic multiplication and division,
// matching the UNIX "mp" package used by the paper's implementation and
// the cost model its analysis (§4) assumes. Fast substitutes the
// subquadratic kernels (block-decomposed Karatsuba multiplication and
// Burnikel–Ziegler divide-and-conquer division); results are identical,
// only the running time and the actual (as opposed to modeled) bit cost
// change.
type Profile uint8

const (
	// Schoolbook is the paper's arithmetic: O(n²) multiplication and
	// division. The default.
	Schoolbook Profile = iota
	// Fast uses Karatsuba multiplication and Burnikel–Ziegler division
	// above the small-operand thresholds.
	Fast

	numProfiles // sentinel for validation
)

// String returns the profile name.
func (p Profile) String() string {
	switch p {
	case Schoolbook:
		return "schoolbook"
	case Fast:
		return "fast"
	}
	return fmt.Sprintf("profile(%d)", uint8(p))
}

// Valid reports whether p is a defined profile.
func (p Profile) Valid() bool { return p < numProfiles }

// ParseProfile maps a profile name ("schoolbook"/"paper" or "fast") to
// its value.
func ParseProfile(s string) (Profile, error) {
	switch s {
	case "schoolbook", "paper":
		return Schoolbook, nil
	case "fast":
		return Fast, nil
	}
	return 0, fmt.Errorf("mp: unknown profile %q (want schoolbook, paper, or fast)", s)
}

// mul returns x*y under the profile.
func (p Profile) mul(x, y nat) nat {
	if p == Fast {
		return natMulFast(x, y)
	}
	return natMulBasic(x, y)
}

// div returns the quotient and remainder of u/v under the profile.
func (p Profile) div(u, v nat) (q, r nat) {
	if p == Fast {
		return natDivFast(u, v)
	}
	return natDiv(u, v)
}

// MulCost estimates the cost of multiplying xbits-by-ybits operands
// under the profile, in the paper's bit-operation unit (schoolbook cost
// = xbits·ybits). For Fast it approximates the Karatsuba recursion
// K(n) = 3·K(n/2) with schoolbook base cases, block-decomposed for
// unbalanced operands — an estimate of work actually done, used by the
// metrics layer to report model vs actual cost side by side.
func (p Profile) MulCost(xbits, ybits int) int64 {
	model := int64(xbits) * int64(ybits)
	if p != Fast || xbits == 0 || ybits == 0 {
		return model
	}
	la := (xbits + limbBits - 1) / limbBits
	lb := (ybits + limbBits - 1) / limbBits
	if la < lb {
		la, lb = lb, la
	}
	if lb < karatsubaThreshold {
		return model
	}
	// One balanced Karatsuba product of lb-limb operands, halving until
	// the schoolbook threshold: lb² limb products scaled by (3/4) per
	// level, then ceil(la/lb) such blocks, converted to bit units.
	per := int64(lb) * int64(lb)
	for t := lb; t >= 2*karatsubaThreshold; t /= 2 {
		per = per * 3 / 4
	}
	blocks := int64((la + lb - 1) / lb)
	return blocks * per * limbBits * limbBits
}

// DivCost estimates the cost of dividing an xbits dividend by a ybits
// divisor under the profile (schoolbook cost = xbits·ybits). The Fast
// estimate charges the Burnikel–Ziegler recursion as roughly two fast
// multiplications of quotient-by-divisor shape.
func (p Profile) DivCost(xbits, ybits int) int64 {
	model := int64(xbits) * int64(ybits)
	if p != Fast || xbits <= ybits {
		return model
	}
	lv := (ybits + limbBits - 1) / limbBits
	lq := (xbits - ybits + limbBits - 1) / limbBits
	if lv < fastDivThreshold || lq < fastDivThreshold {
		return model
	}
	fast := 2 * p.MulCost(xbits-ybits, ybits)
	if fast < model {
		return fast
	}
	return model
}

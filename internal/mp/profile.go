package mp

import "fmt"

// A Profile selects the arithmetic algorithms used for multiplication
// and division. It is an explicit per-operation value — carried by the
// callers' operation contexts, never package state — so concurrent
// computations may use different profiles without synchronization.
//
// The zero value is Schoolbook: quadratic multiplication and division,
// matching the UNIX "mp" package used by the paper's implementation and
// the cost model its analysis (§4) assumes. Fast substitutes the
// subquadratic kernels (block-decomposed Karatsuba multiplication and
// Burnikel–Ziegler divide-and-conquer division); results are identical,
// only the running time and the actual (as opposed to modeled) bit cost
// change.
type Profile uint8

const (
	// Schoolbook is the paper's arithmetic: O(n²) multiplication and
	// division. The default.
	Schoolbook Profile = iota
	// Fast uses Karatsuba multiplication and Burnikel–Ziegler division
	// above the small-operand thresholds.
	Fast

	numProfiles // sentinel for validation
)

// String returns the profile name.
func (p Profile) String() string {
	switch p {
	case Schoolbook:
		return "schoolbook"
	case Fast:
		return "fast"
	}
	return fmt.Sprintf("profile(%d)", uint8(p))
}

// Valid reports whether p is a defined profile.
func (p Profile) Valid() bool { return p < numProfiles }

// ParseProfile maps a profile name ("schoolbook"/"paper" or "fast") to
// its value.
func ParseProfile(s string) (Profile, error) {
	switch s {
	case "schoolbook", "paper":
		return Schoolbook, nil
	case "fast":
		return Fast, nil
	}
	return 0, fmt.Errorf("mp: unknown profile %q (want schoolbook, paper, or fast)", s)
}

// A tierTable holds the shorter-operand crossover thresholds, in
// 64-bit packed limbs, at which each multiplication tier engages. A
// zero threshold disables that tier. Tables are immutable
// configuration threaded through the kernels as a parameter — tier
// selection is a pure function of the call, never package state.
type tierTable struct {
	kar   int // Karatsuba at len ≥ kar, schoolbook row loop below
	toom3 int // Toom-3 at len ≥ toom3
	ntt   int // three-prime NTT at len ≥ ntt

	// count, when non-nil, accumulates the 64-bit limb products the
	// kernels perform (base-case rows exactly, NTT butterflies by their
	// closed form). Tests pin MulCost against it; nil — and unused — on
	// every non-test path.
	count *int64
}

// fastTiers is the Fast profile's tier table. The thresholds are
// measured crossovers from BenchmarkMulCrossover (DESIGN.md §12).
var fastTiers = tierTable{kar: kar64Threshold, toom3: toom64Threshold, ntt: ntt64Threshold}

// A Tier names the multiplication kernel a product of a given shape
// dispatches to, for per-tier metrics attribution.
type Tier uint8

const (
	// TierSchoolbook is the 32-bit schoolbook row loop (the paper's
	// kernel, and the Fast profile's base case below fastPackThreshold).
	TierSchoolbook Tier = iota
	// TierPacked is the 64-bit packed schoolbook row loop.
	TierPacked
	// TierKaratsuba is block-decomposed Karatsuba on packed limbs.
	TierKaratsuba
	// TierToom3 is the 5-point Toom-3 scheme.
	TierToom3
	// TierNTT is the three-prime CRT number-theoretic transform.
	TierNTT

	NumTiers int = iota // sentinel: number of defined tiers
)

// String returns the tier name used in metrics and JSON output.
func (t Tier) String() string {
	switch t {
	case TierSchoolbook:
		return "schoolbook"
	case TierPacked:
		return "packed"
	case TierKaratsuba:
		return "karatsuba"
	case TierToom3:
		return "toom3"
	case TierNTT:
		return "ntt"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// MulTier reports which multiplication tier an xbits-by-ybits product
// dispatches to under the profile. Block decomposition of unbalanced
// shapes reduces to balanced products of the shorter operand's size,
// so the shorter operand decides the tier.
func (p Profile) MulTier(xbits, ybits int) Tier {
	if p != Fast {
		return TierSchoolbook
	}
	short := min(xbits, ybits)
	lb := (short + limbBits - 1) / limbBits // 32-bit limbs
	if lb < fastPackThreshold {
		return TierSchoolbook
	}
	ly := (lb + 1) / 2 // packed limbs
	switch {
	case ly < fastTiers.kar:
		return TierPacked
	case fastTiers.ntt > 0 && ly >= fastTiers.ntt && nttWorthwhile(ly, ly):
		return TierNTT
	case fastTiers.toom3 > 0 && ly >= fastTiers.toom3:
		return TierToom3
	}
	return TierKaratsuba
}

// mul returns x*y under the profile.
func (p Profile) mul(x, y nat) nat {
	if p == Fast {
		return natMulFast(x, y)
	}
	return natMulBasic(x, y)
}

// div returns the quotient and remainder of u/v under the profile.
func (p Profile) div(u, v nat) (q, r nat) {
	if p == Fast {
		return natDivFast(u, v)
	}
	return natDiv(u, v)
}

// MulCost estimates the cost of multiplying xbits-by-ybits operands
// under the profile, in the paper's bit-operation unit (schoolbook cost
// = xbits·ybits). For Fast it mirrors mul64t's dispatch — block
// decomposition for unbalanced shapes, then the Karatsuba/Toom-3/NTT
// recursion the tier table selects — collapsed to a closed O(log n)
// walk. It is an estimate of work actually done, used by the metrics
// layer to report model vs actual cost side by side; the solver's
// bit-operation budget always charges the model cost, so this never
// affects results.
//
// Two former bugs are pinned by TestMulCostPinnedToKernel: the old
// closed form halved the recursion size with integer truncation
// (t /= 2, drifting from the kernel's ceil splits and compounding
// per level), and counted every block of an unbalanced product as
// full-width, so an (lb+1)-limb × lb-limb product was charged two full
// blocks — nearly 2× the work actually done.
func (p Profile) MulCost(xbits, ybits int) int64 {
	model := int64(xbits) * int64(ybits)
	if p != Fast || xbits == 0 || ybits == 0 {
		return model
	}
	la := (xbits + limbBits - 1) / limbBits
	lb := (ybits + limbBits - 1) / limbBits
	if la < lb {
		la, lb = lb, la
	}
	if lb < karatsubaThreshold {
		return model
	}
	// Count 64-bit limb products, as the packed kernel does, then
	// convert: one 64×64 product covers (2·limbBits)² bit units.
	c := mulCost64((la+1)/2, (lb+1)/2, fastTiers) * 4 * limbBits * limbBits
	if fast := int64(c); fast < model {
		return fast
	}
	return model
}

// mulCost64 mirrors mul64t's dispatch and returns the estimated number
// of 64-bit limb products it performs. Unbalanced shapes decompose into
// full blocks plus one partial block charged at its true size.
func mulCost64(lx, ly int, tab tierTable) float64 {
	if lx < ly {
		lx, ly = ly, lx
	}
	if ly <= 0 {
		return 0
	}
	if ly < tab.kar {
		return float64(lx) * float64(ly)
	}
	if lx > 2*ly {
		c := float64(lx/ly) * balMulCost64(ly, tab)
		if r := lx % ly; r > 0 {
			c += mulCost64(ly, r, tab)
		}
		return c
	}
	return balMulCost64((lx+ly+1)/2, tab)
}

// balMulCost64 collapses the balanced recursion tier by tier: Karatsuba
// contributes a ×3 branching factor on ceil(n/2) halves (matching the
// kernel's m = (n+1)/2 split, not a truncating n/2), Toom-3 a ×5 factor
// on ceil(n/3)+1 parts (the evaluations at 1, −1, 2 are one limb wider
// than the parts), and the NTT terminates the walk with its analytic
// butterfly count.
func balMulCost64(n int, tab tierTable) float64 {
	mult := 1.0
	for {
		switch {
		case n < tab.kar:
			return mult * float64(n) * float64(n)
		case tab.ntt > 0 && n >= tab.ntt && nttWorthwhile(n, n):
			return mult * nttCost64(n)
		case tab.toom3 > 0 && n >= tab.toom3:
			mult *= 5
			n = (n+2)/3 + 1
		default:
			mult *= 3
			n = (n + 1) / 2
		}
	}
}

// nttCostScale converts one Montgomery butterfly product to 64-bit
// limb-product units. Calibrated against BenchmarkMulCrossover so the
// model's Toom-3→NTT crossover tracks the measured one.
const nttCostScale = 1.0

// nttCost64 is the analytic cost of a balanced n×n-limb NTT product:
// three primes × (three transforms of (L/2)·log₂L butterflies, plus
// pointwise, scaling and twiddle-table passes of ~4L together).
func nttCost64(n int) float64 {
	logL := 1
	for 1<<logL < 4*n {
		logL++
	}
	L := float64(uint64(1) << logL)
	return nttCostScale * (9*(L/2)*float64(logL) + 12*L)
}

// DivCost estimates the cost of dividing an xbits dividend by a ybits
// divisor under the profile (schoolbook model cost = xbits·ybits). The
// Fast estimate charges the Burnikel–Ziegler recursion as roughly two
// fast multiplications of quotient-by-divisor shape.
//
// Below the Burnikel–Ziegler thresholds the Fast profile runs Knuth
// long division, which touches the divisor once per quotient limb:
// (qbits + limbBits)·ybits, not xbits·ybits. In particular a dividend
// no longer than the divisor costs a compare (and possibly one
// subtraction), linear in the operands — the old estimate returned the
// raw quadratic model for every xbits ≤ ybits shape, inflating the
// reported "actual" cost of the remainder sequence's equal-length
// divisions (pinned by TestDivCostEqualLength).
func (p Profile) DivCost(xbits, ybits int) int64 {
	model := int64(xbits) * int64(ybits)
	if p != Fast || xbits == 0 || ybits == 0 {
		return model
	}
	if xbits < ybits {
		return int64(xbits) + int64(ybits)
	}
	qbits := xbits - ybits
	school := (int64(qbits) + limbBits) * int64(ybits)
	if school > model {
		school = model
	}
	lv := (ybits + limbBits - 1) / limbBits
	lq := (qbits + limbBits - 1) / limbBits
	if lv < fastDivThreshold || lq < fastDivThreshold {
		return school
	}
	fast := 2 * p.MulCost(qbits, ybits)
	if fast < school {
		return fast
	}
	return school
}

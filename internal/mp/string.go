package mp

import (
	"fmt"
	"strconv"
)

// String returns the decimal representation of z.
func (z *Int) String() string {
	if len(z.abs) == 0 {
		return "0"
	}
	// Peel off 9 decimal digits at a time by dividing by 1e9.
	const chunk = 1_000_000_000
	var groups []uint32
	rest := append(nat(nil), z.abs...)
	for len(rest) > 0 {
		var r uint32
		rest, r = natDivSmall(rest, chunk)
		groups = append(groups, r)
	}
	buf := make([]byte, 0, len(groups)*9+1)
	if z.neg {
		buf = append(buf, '-')
	}
	buf = strconv.AppendUint(buf, uint64(groups[len(groups)-1]), 10)
	for i := len(groups) - 2; i >= 0; i-- {
		buf = append(buf, fmt.Sprintf("%09d", groups[i])...)
	}
	return string(buf)
}

// Format implements fmt.Formatter for the %d, %s and %v verbs.
func (z *Int) Format(s fmt.State, verb rune) {
	switch verb {
	case 'd', 's', 'v':
		fmt.Fprint(s, z.String())
	default:
		fmt.Fprintf(s, "%%!%c(mp.Int=%s)", verb, z.String())
	}
}

// SetString sets z to the value of the decimal string str (with optional
// leading + or -) and returns z, or an error if str is malformed.
func (z *Int) SetString(str string) (*Int, error) {
	s := str
	neg := false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		s = s[1:]
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("mp: invalid integer %q", str)
	}
	acc := nat(nil)
	for len(s) > 0 {
		n := len(s)
		if n > 9 {
			n = 9
		}
		v, err := strconv.ParseUint(s[:n], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("mp: invalid integer %q", str)
		}
		// acc = acc*10^n + v.
		pow := uint32(1)
		for i := 0; i < n; i++ {
			pow *= 10
		}
		acc = natMulBasic(acc, nat{pow})
		acc = natAdd(acc, nat{uint32(v)}.norm())
		s = s[n:]
	}
	z.abs = acc
	z.neg = neg && len(acc) > 0
	return z, nil
}

// MustInt parses a decimal string, panicking on malformed input. Intended
// for tests and constant tables.
func MustInt(s string) *Int {
	z, err := new(Int).SetString(s)
	if err != nil {
		panic(err)
	}
	return z
}

package mp

// Subquadratic multiplication for the Fast profile. The paper's
// arithmetic substrate (UNIX "mp") used only schoolbook multiplication,
// and the paper's analysis assumes quadratic multiplication cost, so
// none of this is used by the Schoolbook (paper-mode) profile; it backs
// Profile.Fast and the abl2 ablation.
//
// The kernels live in mul64.go and operate on 64-bit packed limbs:
// block decomposition for unbalanced operands (the longer operand is
// cut into blocks the size of the shorter one, so every recursion is
// nearly balanced — the naive both-operands split barely shrinks the
// long operand per level and degenerates to worse than schoolbook on,
// say, a 24-limb × 10000-limb product), then Karatsuba above
// kar64Threshold.

// karatsubaThreshold is the shorter-operand bit size, in 32-bit limbs,
// at which the Karatsuba recursion engages (40 limbs = 1280 bits =
// kar64Threshold packed limbs). Below it the packed schoolbook row
// loop — and below fastPackThreshold the plain 32-bit loop — is
// faster. Also the pivot of the Fast profile's MulCost estimate.
const karatsubaThreshold = 40

// natMulFast returns x*y: the Fast profile's multiplication. Operands
// above fastPackThreshold are packed into 64-bit limbs, quartering the
// hardware multiply count relative to the 32-bit schoolbook loop, and
// multiplied subquadratically (see mul64).
func natMulFast(x, y nat) nat {
	if len(x) < len(y) {
		x, y = y, x
	}
	// From here on x is the longer operand.
	if len(y) < fastPackThreshold {
		return natMulBasic(x, y)
	}
	return nat64To32(mul64(natTo64(x), natTo64(y)))
}

package mp

// Karatsuba multiplication. The paper's arithmetic substrate (UNIX "mp")
// used only schoolbook multiplication, and the paper's analysis assumes
// quadratic multiplication cost, so Karatsuba is NOT used by default
// anywhere in this repository. It exists for the ablation benchmark
// (DESIGN.md, experiment abl2) that asks how much of the measured running
// time is an artifact of the quadratic substrate.

// karatsubaThreshold is the limb count below which multiplication falls
// back to the schoolbook method. 24 limbs ≈ 768 bits.
const karatsubaThreshold = 24

// natMulKaratsuba returns x*y using Karatsuba's O(n^1.585) recursion.
func natMulKaratsuba(x, y nat) nat {
	if len(x) < karatsubaThreshold || len(y) < karatsubaThreshold {
		return natMulBasic(x, y)
	}
	m := len(x)
	if len(y) < m {
		m = len(y)
	}
	m /= 2

	x0 := nat(x[:m]).norm()
	x1 := nat(x[m:]).norm()
	y0 := nat(y[:m]).norm()
	y1 := nat(y[m:]).norm()

	z0 := natMulKaratsuba(x0, y0)
	z2 := natMulKaratsuba(x1, y1)

	// z1 = (x0+x1)(y0+y1) - z0 - z2 = x0*y1 + x1*y0.
	z1 := natMulKaratsuba(natAdd(x0, x1), natAdd(y0, y1))
	z1 = natSub(z1, z0)
	z1 = natSub(z1, z2)

	// result = z0 + z1<<(32m) + z2<<(64m).
	res := natAddAt(z0, z1, m)
	res = natAddAt(res, z2, 2*m)
	return res
}

// natAddAt returns x + y·2^(32·shift).
func natAddAt(x, y nat, shift int) nat {
	if len(y) == 0 {
		return x
	}
	n := len(y) + shift
	if len(x) > n {
		n = len(x)
	}
	z := make(nat, n+1)
	copy(z, x)
	var carry uint64
	for i := 0; i < len(y) || carry != 0; i++ {
		s := uint64(z[i+shift]) + carry
		if i < len(y) {
			s += uint64(y[i])
		}
		z[i+shift] = uint32(s)
		carry = s >> limbBits
	}
	return z.norm()
}

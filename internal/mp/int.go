package mp

import (
	"fmt"
	"math/big"
)

// An Int is an arbitrary-precision signed integer. The zero value is a
// usable 0. Like math/big, operations have the form z.Op(x, y), store the
// result in z, and return z; receivers may alias operands.
type Int struct {
	neg bool
	abs nat
}

// NewInt returns a new Int set to v.
func NewInt(v int64) *Int {
	return new(Int).SetInt64(v)
}

// SetInt64 sets z to v and returns z.
func (z *Int) SetInt64(v int64) *Int {
	z.neg = v < 0
	uv := uint64(v)
	if z.neg {
		uv = -uv
	}
	z.abs = nat{uint32(uv), uint32(uv >> limbBits)}.norm()
	return z
}

// Set sets z to x and returns z.
func (z *Int) Set(x *Int) *Int {
	if z == x {
		return z
	}
	z.neg = x.neg
	z.abs = append(z.abs[:0], x.abs...)
	return z
}

// Sign returns -1, 0, or +1 according to the sign of z.
func (z *Int) Sign() int {
	if len(z.abs) == 0 {
		return 0
	}
	if z.neg {
		return -1
	}
	return 1
}

// IsZero reports whether z == 0.
func (z *Int) IsZero() bool { return len(z.abs) == 0 }

// IsOne reports whether z == 1.
func (z *Int) IsOne() bool {
	return !z.neg && len(z.abs) == 1 && z.abs[0] == 1
}

// BitLen returns the length of |z| in bits; BitLen(0) == 0.
func (z *Int) BitLen() int { return natBitLen(z.abs) }

// Bit returns the i'th bit of |z|.
func (z *Int) Bit(i uint) uint { return natBit(z.abs, i) }

// TrailingZeros returns the number of trailing zero bits of |z|; z must be
// non-zero.
func (z *Int) TrailingZeros() uint { return natTrailingZeros(z.abs) }

// Cmp compares z and x, returning -1, 0, or +1.
func (z *Int) Cmp(x *Int) int {
	switch {
	case z.neg && !x.neg:
		return -1
	case !z.neg && x.neg:
		return 1
	case z.neg:
		return -natCmp(z.abs, x.abs)
	default:
		return natCmp(z.abs, x.abs)
	}
}

// CmpAbs compares |z| and |x|.
func (z *Int) CmpAbs(x *Int) int { return natCmp(z.abs, x.abs) }

// Neg sets z to -x and returns z.
func (z *Int) Neg(x *Int) *Int {
	z.Set(x)
	z.neg = len(z.abs) > 0 && !z.neg
	return z
}

// Abs sets z to |x| and returns z.
func (z *Int) Abs(x *Int) *Int {
	z.Set(x)
	z.neg = false
	return z
}

// Add sets z to x+y and returns z.
func (z *Int) Add(x, y *Int) *Int {
	if x.neg == y.neg {
		z.abs = natAdd(x.abs, y.abs)
		z.neg = x.neg && len(z.abs) > 0
		return z
	}
	// Signs differ: subtract the smaller magnitude from the larger.
	if natCmp(x.abs, y.abs) >= 0 {
		neg := x.neg
		z.abs = natSub(x.abs, y.abs)
		z.neg = neg && len(z.abs) > 0
	} else {
		neg := y.neg
		z.abs = natSub(y.abs, x.abs)
		z.neg = neg && len(z.abs) > 0
	}
	return z
}

// Sub sets z to x-y and returns z.
func (z *Int) Sub(x, y *Int) *Int {
	if x.neg != y.neg {
		z.abs = natAdd(x.abs, y.abs)
		z.neg = x.neg && len(z.abs) > 0
		return z
	}
	if natCmp(x.abs, y.abs) >= 0 {
		neg := x.neg
		z.abs = natSub(x.abs, y.abs)
		z.neg = neg && len(z.abs) > 0
	} else {
		neg := !x.neg
		z.abs = natSub(y.abs, x.abs)
		z.neg = neg && len(z.abs) > 0
	}
	return z
}

// Mul sets z to x*y using schoolbook multiplication (the paper's cost
// model) and returns z. Use MulProfile to select the algorithm per run.
func (z *Int) Mul(x, y *Int) *Int { return z.MulProfile(Schoolbook, x, y) }

// MulProfile sets z to x*y using the arithmetic selected by pr and
// returns z. The profile changes only the algorithm (and hence the
// running time), never the result.
func (z *Int) MulProfile(pr Profile, x, y *Int) *Int {
	neg := x.neg != y.neg
	z.abs = pr.mul(x.abs, y.abs)
	z.neg = neg && len(z.abs) > 0
	return z
}

// MulInt64 sets z to x*v and returns z.
func (z *Int) MulInt64(x *Int, v int64) *Int {
	var t Int
	t.SetInt64(v)
	return z.Mul(x, &t)
}

// Sqr sets z to x² and returns z.
func (z *Int) Sqr(x *Int) *Int { return z.Mul(x, x) }

// SqrProfile sets z to x² under profile pr and returns z.
func (z *Int) SqrProfile(pr Profile, x *Int) *Int { return z.MulProfile(pr, x, x) }

// QuoRem sets z to the quotient x/y and r to the remainder x%y with
// truncation toward zero (Go semantics: sign of r matches x), and returns
// (z, r). y must be non-zero. z and r must be distinct.
func (z *Int) QuoRem(x, y *Int, r *Int) (*Int, *Int) {
	return z.QuoRemProfile(Schoolbook, x, y, r)
}

// QuoRemProfile is QuoRem with the division algorithm selected by pr.
func (z *Int) QuoRemProfile(pr Profile, x, y *Int, r *Int) (*Int, *Int) {
	if z == r {
		panic("mp: QuoRem requires distinct quotient and remainder")
	}
	q, rem := pr.div(x.abs, y.abs)
	xneg, yneg := x.neg, y.neg
	z.abs = q
	z.neg = len(q) > 0 && xneg != yneg
	r.abs = rem
	r.neg = len(rem) > 0 && xneg
	return z, r
}

// Quo sets z to x/y (truncated) and returns z.
func (z *Int) Quo(x, y *Int) *Int {
	var r Int
	z.QuoRem(x, y, &r)
	return z
}

// Rem sets z to x%y (truncated) and returns z.
func (z *Int) Rem(x, y *Int) *Int {
	var q Int
	q.QuoRem(x, y, z)
	return z
}

// DivExact sets z to x/y where the division is known to be exact, and
// returns z. It panics if the division leaves a remainder: in this
// algorithm a non-exact division can only arise from corrupted state, so
// it is treated as an invariant violation rather than an error value.
func (z *Int) DivExact(x, y *Int) *Int { return z.DivExactProfile(Schoolbook, x, y) }

// DivExactProfile is DivExact with the division algorithm selected by pr.
func (z *Int) DivExactProfile(pr Profile, x, y *Int) *Int {
	var r Int
	z.QuoRemProfile(pr, x, y, &r)
	if !r.IsZero() {
		panic(fmt.Sprintf("mp: DivExact: %s does not divide %s", y, x))
	}
	return z
}

// Lsh sets z to x<<s and returns z.
func (z *Int) Lsh(x *Int, s uint) *Int {
	neg := x.neg
	z.abs = natShl(x.abs, s)
	z.neg = neg && len(z.abs) > 0
	return z
}

// Rsh sets z to x>>s (arithmetic shift: floor division by 2^s) and
// returns z.
func (z *Int) Rsh(x *Int, s uint) *Int {
	if !x.neg {
		z.abs = natShr(x.abs, s)
		z.neg = false
		return z
	}
	// Floor semantics for negative x: -((|x| + 2^s - 1) >> s).
	lost := false
	limbShift := int(s / limbBits)
	bitShift := s % limbBits
	for i := 0; i < limbShift && i < len(x.abs); i++ {
		if x.abs[i] != 0 {
			lost = true
			break
		}
	}
	if !lost && bitShift > 0 && limbShift < len(x.abs) {
		if x.abs[limbShift]&uint32((uint64(1)<<bitShift)-1) != 0 {
			lost = true
		}
	}
	z.abs = natShr(x.abs, s)
	if lost {
		z.abs = natAdd(z.abs, nat{1})
	}
	z.neg = len(z.abs) > 0
	return z
}

// GCD sets z to the non-negative greatest common divisor of x and y and
// returns z. GCD(0,0) == 0.
func (z *Int) GCD(x, y *Int) *Int {
	var a, b Int
	a.Abs(x)
	b.Abs(y)
	for !b.IsZero() {
		var r Int
		r.Rem(&a, &b)
		a.Set(&b)
		b.Set(&r)
	}
	return z.Set(&a)
}

// GCDProfile is GCD computed with the profile's algorithms: the
// Euclidean remainder loop above for Schoolbook, a packed binary GCD
// for Fast once either operand is large enough to pack.
func (z *Int) GCDProfile(pr Profile, x, y *Int) *Int {
	if pr != Fast || (len(x.abs) < fastPackThreshold && len(y.abs) < fastPackThreshold) {
		return z.GCD(x, y)
	}
	z.abs = nat64To32(gcd64(norm64(natTo64(x.abs)), norm64(natTo64(y.abs))))
	z.neg = false
	return z
}

// Int64 returns the int64 value of z; it panics if z does not fit.
func (z *Int) Int64() int64 {
	if len(z.abs) > 2 {
		panic("mp: Int64 overflow")
	}
	var v uint64
	if len(z.abs) > 0 {
		v = uint64(z.abs[0])
	}
	if len(z.abs) > 1 {
		v |= uint64(z.abs[1]) << limbBits
	}
	if z.neg {
		if v > 1<<63 {
			panic("mp: Int64 overflow")
		}
		return -int64(v)
	}
	if v >= 1<<63 {
		panic("mp: Int64 overflow")
	}
	return int64(v)
}

// IsInt64 reports whether z fits in an int64.
func (z *Int) IsInt64() bool {
	if len(z.abs) > 2 {
		return false
	}
	var v uint64
	if len(z.abs) > 0 {
		v = uint64(z.abs[0])
	}
	if len(z.abs) > 1 {
		v |= uint64(z.abs[1]) << limbBits
	}
	if z.neg {
		return v <= 1<<63
	}
	return v < 1<<63
}

// ToBig returns z as a math/big Int (for test oracles and I/O boundaries).
func (z *Int) ToBig() *big.Int {
	b := new(big.Int)
	words := make([]big.Word, 0, len(z.abs))
	// Pack little-endian uint32 limbs into big.Words.
	if bigWordBits() == 64 {
		for i := 0; i < len(z.abs); i += 2 {
			w := big.Word(z.abs[i])
			if i+1 < len(z.abs) {
				w |= big.Word(z.abs[i+1]) << limbBits
			}
			words = append(words, w)
		}
	} else {
		for _, l := range z.abs {
			words = append(words, big.Word(l))
		}
	}
	b.SetBits(words)
	if z.neg {
		b.Neg(b)
	}
	return b
}

// SetBig sets z from a math/big Int and returns z.
func (z *Int) SetBig(b *big.Int) *Int {
	words := b.Bits()
	z.abs = z.abs[:0]
	if bigWordBits() == 64 {
		for _, w := range words {
			z.abs = append(z.abs, uint32(w), uint32(uint64(w)>>limbBits))
		}
	} else {
		for _, w := range words {
			z.abs = append(z.abs, uint32(w))
		}
	}
	z.abs = z.abs.norm()
	z.neg = b.Sign() < 0 && len(z.abs) > 0
	return z
}

func bigWordBits() int {
	return 32 << (^big.Word(0) >> 63 & 1)
}

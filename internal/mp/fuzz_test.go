package mp

import (
	"math/big"
	"testing"
)

func FuzzSetStringRoundTrip(f *testing.F) {
	f.Add("0")
	f.Add("-12345678901234567890123456789")
	f.Add("+999999999999999999")
	f.Add("007")
	f.Fuzz(func(t *testing.T, s string) {
		z, err := new(Int).SetString(s)
		if err != nil {
			return // malformed input is fine
		}
		// The oracle must agree, and re-parsing the rendering must be
		// idempotent.
		b, ok := new(big.Int).SetString(s, 10)
		if !ok {
			t.Fatalf("we parsed %q but math/big did not", s)
		}
		if z.ToBig().Cmp(b) != 0 {
			t.Fatalf("parse mismatch for %q: %s vs %s", s, z, b)
		}
		z2, err := new(Int).SetString(z.String())
		if err != nil || z2.Cmp(z) != 0 {
			t.Fatalf("round trip failed for %q", s)
		}
	})
}

func FuzzQuoRemIdentity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{5, 6})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, []byte{0xff, 0xff, 0xff, 0xff, 0x80})
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		if len(xb) > 64 || len(yb) > 64 {
			return
		}
		x := new(Int).SetBig(new(big.Int).SetBytes(xb))
		y := new(Int).SetBig(new(big.Int).SetBytes(yb))
		if y.IsZero() {
			return
		}
		q, r := new(Int).QuoRem(x, y, new(Int))
		back := new(Int).Mul(q, y)
		back.Add(back, r)
		if back.Cmp(x) != 0 {
			t.Fatalf("q*y+r != x for x=%s y=%s", x, y)
		}
		if r.CmpAbs(y) >= 0 {
			t.Fatalf("|r| >= |y| for x=%s y=%s", x, y)
		}
		bq, br := new(big.Int).QuoRem(x.ToBig(), y.ToBig(), new(big.Int))
		if q.ToBig().Cmp(bq) != 0 || r.ToBig().Cmp(br) != 0 {
			t.Fatalf("oracle mismatch for x=%s y=%s", x, y)
		}
	})
}

// stretch expands a fuzz byte pattern by repetition so the resulting
// operand crosses the karatsubaThreshold / fastDivThreshold limb counts
// that the subquadratic kernels switch on (raw fuzz inputs are capped at
// 64 bytes = 16 limbs, far below either threshold).
func stretch(b []byte, rep uint16) []byte {
	if len(b) == 0 {
		return b
	}
	n := int(rep)%48 + 1
	out := make([]byte, 0, n*len(b))
	for i := 0; i < n; i++ {
		out = append(out, b...)
	}
	return out
}

// FuzzFastMulVsBig cross-checks the Fast profile's multiplication
// against math/big on operands spanning the schoolbook/Karatsuba
// threshold, including aliased receivers (z.Op(z, z)).
func FuzzFastMulVsBig(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{0xff, 0xfe}, uint16(40), uint16(3), false, true)
	f.Add([]byte{0xff}, []byte{0xff}, uint16(47), uint16(47), true, true)
	f.Add([]byte{7, 0, 0, 0, 1}, []byte{9}, uint16(2), uint16(40), false, false)
	f.Fuzz(func(t *testing.T, xb, yb []byte, xrep, yrep uint16, xneg, yneg bool) {
		if len(xb) > 64 || len(yb) > 64 {
			return
		}
		x := new(Int).SetBig(new(big.Int).SetBytes(stretch(xb, xrep)))
		y := new(Int).SetBig(new(big.Int).SetBytes(stretch(yb, yrep)))
		if xneg {
			x.Neg(x)
		}
		if yneg {
			y.Neg(y)
		}
		want := new(big.Int).Mul(x.ToBig(), y.ToBig())
		if got := new(Int).MulProfile(Fast, x, y); got.ToBig().Cmp(want) != 0 {
			t.Fatalf("fast mul mismatch at %d×%d bits", x.BitLen(), y.BitLen())
		}
		// Aliased: z.MulProfile(z, z) must square in place.
		wsq := new(big.Int).Mul(x.ToBig(), x.ToBig())
		z := new(Int).Set(x)
		if z.MulProfile(Fast, z, z); z.ToBig().Cmp(wsq) != 0 {
			t.Fatalf("fast aliased square mismatch at %d bits", x.BitLen())
		}
	})
}

// FuzzFastDivVsBig cross-checks the Fast profile's division against
// math/big on operands spanning the Burnikel–Ziegler threshold,
// including a receiver aliased with the dividend.
func FuzzFastDivVsBig(f *testing.F) {
	f.Add([]byte{9, 8, 7, 6, 5, 4}, []byte{1, 2, 3}, uint16(47), uint16(44), false)
	f.Add([]byte{0xff, 0xff, 0xff}, []byte{0xff, 0xff}, uint16(40), uint16(20), true)
	f.Add([]byte{1}, []byte{3}, uint16(47), uint16(2), false)
	f.Fuzz(func(t *testing.T, ub, vb []byte, urep, vrep uint16, uneg bool) {
		if len(ub) > 64 || len(vb) > 64 {
			return
		}
		u := new(Int).SetBig(new(big.Int).SetBytes(stretch(ub, urep)))
		v := new(Int).SetBig(new(big.Int).SetBytes(stretch(vb, vrep)))
		if v.IsZero() {
			return
		}
		if uneg {
			u.Neg(u)
		}
		wq, wr := new(big.Int).QuoRem(u.ToBig(), v.ToBig(), new(big.Int))
		q, r := new(Int).QuoRemProfile(Fast, u, v, new(Int))
		if q.ToBig().Cmp(wq) != 0 || r.ToBig().Cmp(wr) != 0 {
			t.Fatalf("fast div mismatch at %d/%d bits", u.BitLen(), v.BitLen())
		}
		// Aliased: quotient receiver aliasing the dividend.
		z := new(Int).Set(u)
		var rem Int
		z.QuoRemProfile(Fast, z, v, &rem)
		if z.ToBig().Cmp(wq) != 0 || rem.ToBig().Cmp(wr) != 0 {
			t.Fatalf("fast aliased div mismatch at %d/%d bits", u.BitLen(), v.BitLen())
		}
	})
}

// FuzzFastGCDVsBig cross-checks the Fast profile's binary GCD against
// math/big, including the receiver-aliases-operand pattern used by
// Poly.Content (g.GCDProfile(pr, g, ci)).
func FuzzFastGCDVsBig(f *testing.F) {
	f.Add([]byte{12}, []byte{18}, uint16(1), uint16(1), false)
	f.Add([]byte{0xff, 0, 0xff}, []byte{0xf0}, uint16(40), uint16(30), true)
	f.Add([]byte{6, 6, 6}, []byte{}, uint16(9), uint16(0), false)
	f.Fuzz(func(t *testing.T, xb, yb []byte, xrep, yrep uint16, xneg bool) {
		if len(xb) > 64 || len(yb) > 64 {
			return
		}
		x := new(Int).SetBig(new(big.Int).SetBytes(stretch(xb, xrep)))
		y := new(Int).SetBig(new(big.Int).SetBytes(stretch(yb, yrep)))
		if xneg {
			x.Neg(x)
		}
		want := new(big.Int).GCD(nil, nil, new(big.Int).Abs(x.ToBig()), new(big.Int).Abs(y.ToBig()))
		if got := new(Int).GCDProfile(Fast, x, y); got.ToBig().Cmp(want) != 0 {
			t.Fatalf("fast gcd mismatch at %d,%d bits", x.BitLen(), y.BitLen())
		}
		z := new(Int).Set(x)
		if z.GCDProfile(Fast, z, y); z.ToBig().Cmp(want) != 0 {
			t.Fatalf("fast aliased gcd mismatch at %d,%d bits", x.BitLen(), y.BitLen())
		}
	})
}

// pack64 builds a packed 64-bit operand from a stretched fuzz pattern.
func pack64(b []byte, rep uint16) []uint64 {
	return natTo64(new(Int).SetBig(new(big.Int).SetBytes(stretch(b, rep))).abs)
}

// FuzzToom3VsBig cross-checks the Toom-3 kernel directly against
// math/big. Direct calls mean the operands need not reach
// toom64Threshold, so the fuzzer explores the interpolation's
// sign/carry paths at every size the splitter accepts.
func FuzzToom3VsBig(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{0xff, 0xfe}, uint16(40), uint16(40))
	f.Add([]byte{0xff}, []byte{0xff}, uint16(48), uint16(24))
	f.Add([]byte{7, 0, 0, 0, 1}, []byte{9, 0, 9}, uint16(30), uint16(17))
	f.Fuzz(func(t *testing.T, xb, yb []byte, xrep, yrep uint16) {
		if len(xb) > 64 || len(yb) > 64 {
			return
		}
		x, y := pack64(xb, xrep), pack64(yb, yrep)
		if len(x) < len(y) {
			x, y = y, x
		}
		if len(y) == 0 {
			return
		}
		checkMul64(t, "fuzz/toom3", toom3Mul64(x, y, fastTiers), x, y)
	})
}

// FuzzNTTVsBig cross-checks the three-prime NTT kernel directly against
// math/big: the CRT reconstruction and digit accumulation must be exact
// for every digit pattern, not just random ones.
func FuzzNTTVsBig(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{0xff, 0xfe}, uint16(40), uint16(40))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, []byte{0xff, 0xff, 0xff, 0xff}, uint16(47), uint16(47))
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, []byte{1}, uint16(20), uint16(1))
	f.Fuzz(func(t *testing.T, xb, yb []byte, xrep, yrep uint16) {
		if len(xb) > 64 || len(yb) > 64 {
			return
		}
		x, y := pack64(xb, xrep), pack64(yb, yrep)
		z := nttMul64(x, y, fastTiers)
		if z == nil {
			t.Fatalf("ntt refused a %d×%d-limb product far below its size cap", len(x), len(y))
		}
		checkMul64(t, "fuzz/ntt", z, x, y)
	})
}

// FuzzParMulVsBig cross-checks the parallel multiplication path against
// math/big under varying worker counts, including a scheduler that
// drops every task.
func FuzzParMulVsBig(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{0xff, 0xfe}, uint16(40), uint16(40), uint8(2))
	f.Add([]byte{0xff}, []byte{0xf0, 0x0f}, uint16(48), uint16(31), uint8(0))
	f.Add([]byte{5, 5, 5, 5}, []byte{6}, uint16(33), uint16(1), uint8(3))
	f.Fuzz(func(t *testing.T, xb, yb []byte, xrep, yrep uint16, workers uint8) {
		if len(xb) > 64 || len(yb) > 64 {
			return
		}
		x, y := pack64(xb, xrep), pack64(yb, yrep)
		var pool Parallel = dropPool{}
		if w := int(workers % 4); w > 0 {
			cp := newChanPool(w)
			defer cp.Close()
			pool = cp
		}
		checkMul64(t, "fuzz/parmul", parMul64(x, y, pool, fastTiers), x, y)
	})
}

func FuzzAddSubInverse(f *testing.F) {
	f.Add([]byte{1}, []byte{2}, false, true)
	f.Fuzz(func(t *testing.T, xb, yb []byte, xneg, yneg bool) {
		if len(xb) > 64 || len(yb) > 64 {
			return
		}
		x := new(Int).SetBig(new(big.Int).SetBytes(xb))
		y := new(Int).SetBig(new(big.Int).SetBytes(yb))
		if xneg {
			x.Neg(x)
		}
		if yneg {
			y.Neg(y)
		}
		s := new(Int).Add(x, y)
		if new(Int).Sub(s, y).Cmp(x) != 0 {
			t.Fatalf("(x+y)-y != x for x=%s y=%s", x, y)
		}
	})
}

package mp

import (
	"math/big"
	"testing"
)

func FuzzSetStringRoundTrip(f *testing.F) {
	f.Add("0")
	f.Add("-12345678901234567890123456789")
	f.Add("+999999999999999999")
	f.Add("007")
	f.Fuzz(func(t *testing.T, s string) {
		z, err := new(Int).SetString(s)
		if err != nil {
			return // malformed input is fine
		}
		// The oracle must agree, and re-parsing the rendering must be
		// idempotent.
		b, ok := new(big.Int).SetString(s, 10)
		if !ok {
			t.Fatalf("we parsed %q but math/big did not", s)
		}
		if z.ToBig().Cmp(b) != 0 {
			t.Fatalf("parse mismatch for %q: %s vs %s", s, z, b)
		}
		z2, err := new(Int).SetString(z.String())
		if err != nil || z2.Cmp(z) != 0 {
			t.Fatalf("round trip failed for %q", s)
		}
	})
}

func FuzzQuoRemIdentity(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{5, 6})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}, []byte{0xff, 0xff, 0xff, 0xff, 0x80})
	f.Fuzz(func(t *testing.T, xb, yb []byte) {
		if len(xb) > 64 || len(yb) > 64 {
			return
		}
		x := new(Int).SetBig(new(big.Int).SetBytes(xb))
		y := new(Int).SetBig(new(big.Int).SetBytes(yb))
		if y.IsZero() {
			return
		}
		q, r := new(Int).QuoRem(x, y, new(Int))
		back := new(Int).Mul(q, y)
		back.Add(back, r)
		if back.Cmp(x) != 0 {
			t.Fatalf("q*y+r != x for x=%s y=%s", x, y)
		}
		if r.CmpAbs(y) >= 0 {
			t.Fatalf("|r| >= |y| for x=%s y=%s", x, y)
		}
		bq, br := new(big.Int).QuoRem(x.ToBig(), y.ToBig(), new(big.Int))
		if q.ToBig().Cmp(bq) != 0 || r.ToBig().Cmp(br) != 0 {
			t.Fatalf("oracle mismatch for x=%s y=%s", x, y)
		}
	})
}

func FuzzAddSubInverse(f *testing.F) {
	f.Add([]byte{1}, []byte{2}, false, true)
	f.Fuzz(func(t *testing.T, xb, yb []byte, xneg, yneg bool) {
		if len(xb) > 64 || len(yb) > 64 {
			return
		}
		x := new(Int).SetBig(new(big.Int).SetBytes(xb))
		y := new(Int).SetBig(new(big.Int).SetBytes(yb))
		if xneg {
			x.Neg(x)
		}
		if yneg {
			y.Neg(y)
		}
		s := new(Int).Add(x, y)
		if new(Int).Sub(s, y).Cmp(x) != 0 {
			t.Fatalf("(x+y)-y != x for x=%s y=%s", x, y)
		}
	})
}

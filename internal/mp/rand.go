package mp

import "math/rand"

// RandInt returns a uniformly random integer with |z| < 2^bits, with a
// random sign, drawn from r. Used by tests and workload generators.
func RandInt(r *rand.Rand, bits int) *Int {
	z := RandNonNeg(r, bits)
	if r.Intn(2) == 1 {
		z.Neg(z)
	}
	return z
}

// RandNonNeg returns a uniformly random integer in [0, 2^bits).
func RandNonNeg(r *rand.Rand, bits int) *Int {
	if bits <= 0 {
		return new(Int)
	}
	nlimbs := (bits + limbBits - 1) / limbBits
	abs := make(nat, nlimbs)
	for i := range abs {
		abs[i] = r.Uint32()
	}
	if top := uint(bits % limbBits); top != 0 {
		abs[nlimbs-1] &= uint32(uint64(1)<<top - 1)
	}
	return &Int{abs: abs.norm()}
}

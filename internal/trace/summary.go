package trace

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// Summary condenses a recorded trace into the utilization report the
// paper's §5 speedup discussion needs: where the wall time went per
// phase, how busy each worker was, and how much of the run was
// effectively serial (the Amdahl fraction limiting speedup).
type Summary struct {
	// Wall is the end-to-end traced time: earliest span start to
	// latest span end, across all lanes and categories.
	Wall time.Duration
	// Phases aggregates CatPhase spans by name in first-seen order:
	// per-phase wall time of the pipeline stages.
	Phases []NamedTime
	// Tasks aggregates top-level CatTask spans by name in first-seen
	// order: busy time and task count per scheduler task kind.
	Tasks []TaskTime
	// Lanes reports per-lane (per-worker) utilization, sorted by ID.
	Lanes []LaneUtil
	// Busy is the total busy time summed over lanes (union per lane,
	// so nested task spans are not double-counted).
	Busy time.Duration
	// Parallelism is Busy/Wall: the average number of simultaneously
	// busy lanes, and the achieved speedup relative to one worker
	// doing the same work back-to-back.
	Parallelism float64
	// SerialFraction is the fraction of Wall during which at most one
	// lane was busy — the effectively serial part of the run that
	// limits speedup (§5.2).
	SerialFraction float64
}

// Efficiency reports achieved parallel efficiency: Parallelism divided
// by the worker count, in [0,1] for a well-formed trace. It is the
// paper's E_P = S_P/P with the measured speedup standing in for S_P.
// workers <= 0 reports 0 (unknown pool size, e.g. a sequential run).
func (s Summary) Efficiency(workers int) float64 {
	if workers <= 0 {
		return 0
	}
	return s.Parallelism / float64(workers)
}

// NamedTime is one named wall-time bucket.
type NamedTime struct {
	Name string
	Wall time.Duration
}

// TaskTime is one task kind's aggregate busy time.
type TaskTime struct {
	Name  string
	Busy  time.Duration
	Count int
}

// LaneUtil is one lane's utilization.
type LaneUtil struct {
	ID    int
	Name  string
	Busy  time.Duration // union of the lane's task spans
	Tasks int           // top-level task spans
	Wait  time.Duration // Σ recorded queue waits
}

type interval struct{ lo, hi time.Duration }

// mergeIntervals returns the total length of the union of the
// intervals (which may overlap or nest).
func mergeIntervals(iv []interval) time.Duration {
	if len(iv) == 0 {
		return 0
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].lo < iv[j].lo })
	var total time.Duration
	curLo, curHi := iv[0].lo, iv[0].hi
	for _, x := range iv[1:] {
		if x.lo > curHi {
			total += curHi - curLo
			curLo, curHi = x.lo, x.hi
			continue
		}
		if x.hi > curHi {
			curHi = x.hi
		}
	}
	return total + (curHi - curLo)
}

// hasTaskAncestor reports whether span i in spans has a CatTask span
// anywhere in its parent chain (such spans are sub-work of an already
// counted task and excluded from per-kind busy aggregation).
func hasTaskAncestor(spans []Span, i int) bool {
	for p := spans[i].Parent; p >= 0; p = spans[p].Parent {
		if spans[p].Cat == CatTask {
			return true
		}
	}
	return false
}

// Summarize computes the utilization summary of the recorded trace.
// Call it only after the traced run has completed.
func (t *Tracer) Summarize() Summary {
	var s Summary
	if t == nil {
		return s
	}
	var (
		minStart, maxEnd time.Duration
		haveSpan         bool
		phaseIdx         = map[string]int{}
		taskIdx          = map[string]int{}
		busyByLane       [][]interval
	)
	for _, l := range t.Lanes() {
		spans := l.Spans()
		lu := LaneUtil{ID: l.ID, Name: l.Name}
		var busy []interval
		for i, sp := range spans {
			if sp.Dur < 0 {
				continue // open span: ignore rather than skew
			}
			if !haveSpan || sp.Start < minStart {
				minStart = sp.Start
			}
			if !haveSpan || sp.End() > maxEnd {
				maxEnd = sp.End()
			}
			haveSpan = true
			switch sp.Cat {
			case CatPhase:
				j, ok := phaseIdx[sp.Name]
				if !ok {
					j = len(s.Phases)
					phaseIdx[sp.Name] = j
					s.Phases = append(s.Phases, NamedTime{Name: sp.Name})
				}
				s.Phases[j].Wall += sp.Dur
			default:
				busy = append(busy, interval{sp.Start, sp.End()})
				if !hasTaskAncestor(spans, i) {
					j, ok := taskIdx[sp.Name]
					if !ok {
						j = len(s.Tasks)
						taskIdx[sp.Name] = j
						s.Tasks = append(s.Tasks, TaskTime{Name: sp.Name})
					}
					s.Tasks[j].Busy += sp.Dur
					s.Tasks[j].Count++
					lu.Tasks++
					lu.Wait += sp.Wait
				}
			}
		}
		if len(busy) == 0 && lu.Tasks == 0 {
			// A lane with only phase spans (pure orchestration) still
			// appears, with zero busy time.
			if len(spans) > 0 {
				s.Lanes = append(s.Lanes, lu)
				busyByLane = append(busyByLane, nil)
			}
			continue
		}
		lu.Busy = mergeIntervals(busy)
		s.Busy += lu.Busy
		s.Lanes = append(s.Lanes, lu)
		busyByLane = append(busyByLane, busy)
	}
	if haveSpan {
		s.Wall = maxEnd - minStart
	}
	if s.Wall > 0 {
		s.Parallelism = float64(s.Busy) / float64(s.Wall)
		s.SerialFraction = float64(s.Wall-parallelTime(busyByLane)) / float64(s.Wall)
	}
	return s
}

// parallelTime returns the total time during which at least two lanes
// were busy simultaneously. Each lane's intervals are reduced to their
// union first, so concurrency counts lanes, not nested spans.
func parallelTime(busyByLane [][]interval) time.Duration {
	type edge struct {
		at    time.Duration
		delta int
	}
	var edges []edge
	for _, busy := range busyByLane {
		// Merge within the lane: sort and fold overlapping intervals,
		// emitting +1/-1 edges for the merged runs.
		if len(busy) == 0 {
			continue
		}
		iv := make([]interval, len(busy))
		copy(iv, busy)
		sort.Slice(iv, func(i, j int) bool { return iv[i].lo < iv[j].lo })
		curLo, curHi := iv[0].lo, iv[0].hi
		flush := func() {
			edges = append(edges, edge{curLo, +1}, edge{curHi, -1})
		}
		for _, x := range iv[1:] {
			if x.lo > curHi {
				flush()
				curLo, curHi = x.lo, x.hi
				continue
			}
			if x.hi > curHi {
				curHi = x.hi
			}
		}
		flush()
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta > edges[j].delta // opens before closes at ties
	})
	var total time.Duration
	depth := 0
	var since time.Duration
	for _, e := range edges {
		if depth >= 2 {
			total += e.at - since
		}
		depth += e.delta
		since = e.at
	}
	return total
}

// WriteText renders the summary as the plain-text utilization report.
func (s Summary) WriteText(w io.Writer) error {
	fmt.Fprintf(w, "Utilization summary (wall %.3fs)\n", s.Wall.Seconds())

	if len(s.Phases) > 0 {
		fmt.Fprintln(w, "\nPipeline phases (wall time):")
		tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "phase\twall(s)\tshare%\t")
		for _, p := range s.Phases {
			fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t\n", p.Name, p.Wall.Seconds(), pctDur(p.Wall, s.Wall))
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(s.Tasks) > 0 {
		fmt.Fprintln(w, "\nTask kinds (busy time):")
		tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "task\tbusy(s)\tshare%\tcount\t")
		for _, tk := range s.Tasks {
			fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%d\t\n", tk.Name, tk.Busy.Seconds(), pctDur(tk.Busy, s.Busy), tk.Count)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	if len(s.Lanes) > 0 {
		fmt.Fprintln(w, "\nWorkers:")
		tw := tabwriter.NewWriter(w, 4, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "lane\tbusy(s)\tbusy%\ttasks\tavg-wait(ms)\t")
		for _, l := range s.Lanes {
			avgWait := 0.0
			if l.Tasks > 0 {
				avgWait = l.Wait.Seconds() * 1e3 / float64(l.Tasks)
			}
			fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%d\t%.3f\t\n", l.Name, l.Busy.Seconds(), pctDur(l.Busy, s.Wall), l.Tasks, avgWait)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "\ntotal busy %.3fs across %d lane(s)\n", s.Busy.Seconds(), len(s.Lanes))
	fmt.Fprintf(w, "parallelism / achieved speedup vs one worker (busy/wall): %.2fx\n", s.Parallelism)
	fmt.Fprintf(w, "serial fraction (wall time with <=1 lane busy): %.2f\n", s.SerialFraction)
	return nil
}

func pctDur(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

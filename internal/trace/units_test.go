package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestUnitsContract pins the repo-wide timestamp/duration unit
// contract across the observability sinks (audited for this PR):
//
//   - in-memory spans and counters: time.Duration offsets from the
//     tracer epoch (nanoseconds);
//   - Chrome trace-event export: MICROSECOND floats in ts/dur/wait_us,
//     as the Trace Event Format requires (ns ÷ nsPerMicro);
//   - flight recorder: nanoseconds, named so (Record.AtNs, JSON
//     "atNs") — pinned by telemetry's TestFlightUnitsContract;
//   - /debug/requests and /debug/traces metadata: float seconds,
//     named so (queueWaitSeconds, wallSeconds, …).
//
// Each sink uses a different unit, which is fine exactly because every
// field name or format spec says which; this test fails if the Chrome
// conversion factor drifts.
func TestUnitsContract(t *testing.T) {
	tr := New()
	tr.SetRequestID("units")
	l := tr.Lane(ControlLane, "control")
	l.spans = []Span{{
		Name:   "task",
		Cat:    CatTask,
		Start:  1500 * time.Microsecond,
		Dur:    2 * time.Millisecond,
		Parent: -1,
		Wait:   250 * time.Microsecond,
	}}
	tr.counters = []Counter{{Name: "queue", At: 3 * time.Millisecond, Value: 7}}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	var sawSpan, sawCounter bool
	for _, ev := range out.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Name == "task":
			sawSpan = true
			// 1500µs start, 2ms duration, 250µs wait — in microseconds.
			if ev.Ts != 1500 {
				t.Errorf("ts = %v µs, want 1500 (started at 1500µs)", ev.Ts)
			}
			if ev.Dur != 2000 {
				t.Errorf("dur = %v µs, want 2000 (2ms span)", ev.Dur)
			}
			if w := ev.Args["wait_us"]; w != 250.0 {
				t.Errorf("wait_us = %v, want 250 (250µs wait)", w)
			}
		case ev.Ph == "C" && ev.Name == "queue":
			sawCounter = true
			if ev.Ts != 3000 {
				t.Errorf("counter ts = %v µs, want 3000 (3ms sample)", ev.Ts)
			}
		}
	}
	if !sawSpan || !sawCounter {
		t.Fatalf("export missing span (%v) or counter (%v) event", sawSpan, sawCounter)
	}
	if nsPerMicro != 1e3 {
		t.Errorf("nsPerMicro = %v, want 1000 ns per µs", nsPerMicro)
	}
}

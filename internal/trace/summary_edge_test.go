package trace

import "testing"

// Summarize edge cases: the shapes the always-on serving path actually
// produces — empty traces (degree-1 short-circuits), single spans, and
// zero-duration spans (sub-resolution tasks) — must yield finite,
// in-range numbers, never NaN or division blowups.

func TestSummarizeEmptyTrace(t *testing.T) {
	for name, tr := range map[string]*Tracer{
		"nil":          nil,
		"fresh":        New(),
		"lanesNoSpans": func() *Tracer { tr := New(); tr.Lane(ControlLane, "control"); return tr }(),
	} {
		s := tr.Summarize()
		if s.Wall != 0 || s.Busy != 0 || s.Parallelism != 0 || s.SerialFraction != 0 {
			t.Errorf("%s: non-zero summary %+v from empty trace", name, s)
		}
		if len(s.Phases) != 0 || len(s.Tasks) != 0 {
			t.Errorf("%s: phantom phases/tasks %+v", name, s)
		}
		if s.Efficiency(4) != 0 {
			t.Errorf("%s: Efficiency = %v, want 0", name, s.Efficiency(4))
		}
	}
}

func TestSummarizeSingleSpan(t *testing.T) {
	tr := New()
	l := tr.Lane(0, "worker-0")
	l.spans = []Span{{Name: "interval", Cat: CatTask, Start: 5 * ms, Dur: 10 * ms, Parent: -1}}
	s := tr.Summarize()
	if s.Wall != 10*ms {
		t.Errorf("Wall = %v, want 10ms (span extent, not epoch offset)", s.Wall)
	}
	if s.Busy != 10*ms {
		t.Errorf("Busy = %v, want 10ms", s.Busy)
	}
	if s.Parallelism != 1 {
		t.Errorf("Parallelism = %v, want 1", s.Parallelism)
	}
	if s.SerialFraction != 1 {
		t.Errorf("SerialFraction = %v, want 1 (one lane is fully serial)", s.SerialFraction)
	}
	if got := s.Efficiency(1); got != 1 {
		t.Errorf("Efficiency(1) = %v, want 1", got)
	}
	if got := s.Efficiency(2); got != 0.5 {
		t.Errorf("Efficiency(2) = %v, want 0.5", got)
	}
}

func TestSummarizeZeroDurationSpans(t *testing.T) {
	tr := New()
	l := tr.Lane(0, "worker-0")
	l.spans = []Span{
		{Name: "fast", Cat: CatTask, Start: 0, Dur: 0, Parent: -1},
		{Name: "fast", Cat: CatTask, Start: 0, Dur: 0, Parent: -1},
	}
	s := tr.Summarize()
	if s.Wall != 0 {
		t.Errorf("Wall = %v, want 0", s.Wall)
	}
	// Wall == 0 must short-circuit the ratios, not divide by zero.
	if s.Parallelism != 0 || s.SerialFraction != 0 {
		t.Errorf("zero-wall ratios = %v/%v, want 0/0", s.Parallelism, s.SerialFraction)
	}
	if len(s.Tasks) != 1 || s.Tasks[0].Count != 2 {
		t.Errorf("tasks = %+v, want one kind counted twice", s.Tasks)
	}
	if eff := s.Efficiency(8); eff != 0 {
		t.Errorf("Efficiency = %v, want 0", eff)
	}
}

func TestSummarizeOpenSpanIgnored(t *testing.T) {
	// An open span (Dur == -1, e.g. a panic unwound past End) is
	// skipped rather than counted with negative duration.
	tr := New()
	l := tr.Lane(0, "worker-0")
	l.spans = []Span{
		{Name: "done", Cat: CatTask, Start: 0, Dur: 10 * ms, Parent: -1},
		{Name: "open", Cat: CatTask, Start: 5 * ms, Dur: -1, Parent: -1},
	}
	s := tr.Summarize()
	if s.Wall != 10*ms || s.Busy != 10*ms {
		t.Errorf("Wall/Busy = %v/%v, want 10ms/10ms", s.Wall, s.Busy)
	}
	if len(s.Tasks) != 1 || s.Tasks[0].Name != "done" {
		t.Errorf("tasks = %+v, want only the closed span", s.Tasks)
	}
}

func TestEfficiencyBounds(t *testing.T) {
	var s Summary
	s.Parallelism = 3.2
	if got := s.Efficiency(4); got != 0.8 {
		t.Errorf("Efficiency(4) = %v, want 0.8", got)
	}
	for _, workers := range []int{0, -1} {
		if got := s.Efficiency(workers); got != 0 {
			t.Errorf("Efficiency(%d) = %v, want 0", workers, got)
		}
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export. The format is the Trace Event Format
// consumed by chrome://tracing and by Perfetto's legacy importer: a
// JSON object with a traceEvents array of "X" (complete) events, "M"
// (metadata) events naming the threads, and "C" (counter) events.
// Timestamps and durations are in microseconds.
//
// Lanes map to threads of a single process: the control lane renders
// as tid 0 and worker lane i as tid i+1, so the per-worker timelines
// stack under the control timeline in display order.

// chromeEvent is one trace-event JSON record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeTid maps a lane ID to a non-negative Chrome thread id.
func chromeTid(laneID int) int {
	if laneID == ControlLane {
		return 0
	}
	return laneID + 1
}

// nsPerMicro converts span fields (time.Duration, nanoseconds) to the
// Chrome trace-event clock (microsecond floats): divide ns by 1e3.
// The repo-wide units contract is pinned by TestUnitsContract.
const nsPerMicro = 1e3

// WriteChrome writes the recorded trace as Chrome trace-event JSON,
// loadable in chrome://tracing or https://ui.perfetto.dev. Call it
// only after the traced run has completed.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: WriteChrome on nil Tracer")
	}
	var events []chromeEvent
	reqID := t.RequestID()
	for _, l := range t.Lanes() {
		tid := chromeTid(l.ID)
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"name": l.Name},
		}, chromeEvent{
			Name: "thread_sort_index",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"sort_index": tid},
		})
		for _, s := range l.Spans() {
			ev := chromeEvent{
				Name: s.Name,
				Cat:  s.Cat,
				Ph:   "X",
				Ts:   float64(s.Start.Nanoseconds()) / nsPerMicro,
				Dur:  float64(s.Dur.Nanoseconds()) / nsPerMicro,
				Pid:  1,
				Tid:  tid,
			}
			if s.Wait > 0 || reqID != "" {
				ev.Args = map[string]any{}
				if s.Wait > 0 {
					ev.Args["wait_us"] = float64(s.Wait.Nanoseconds()) / nsPerMicro
				}
				if reqID != "" {
					ev.Args["requestId"] = reqID
				}
			}
			events = append(events, ev)
		}
	}
	for _, c := range t.Counters() {
		events = append(events, chromeEvent{
			Name: c.Name,
			Ph:   "C",
			Ts:   float64(c.At.Nanoseconds()) / nsPerMicro,
			Pid:  1,
			Tid:  0,
			Args: map[string]any{"value": c.Value},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// ValidateChrome parses data as Chrome trace-event JSON and checks the
// minimal schema rootbench emits: at least one metadata and one
// complete event, every event carrying a phase type. It is the test
// and CI helper for validating emitted trace files.
func ValidateChrome(data []byte) error {
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("trace: invalid chrome trace JSON: %w", err)
	}
	var complete, meta int
	for i, ev := range tr.TraceEvents {
		if ev.Ph == "" {
			return fmt.Errorf("trace: event %d (%q) has no phase type", i, ev.Name)
		}
		if ev.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		switch ev.Ph {
		case "X":
			complete++
			if ev.Dur < 0 || ev.Ts < 0 {
				return fmt.Errorf("trace: event %d (%q) has negative timestamp", i, ev.Name)
			}
		case "M":
			meta++
		}
	}
	if complete == 0 {
		return fmt.Errorf("trace: no complete (ph=X) events")
	}
	if meta == 0 {
		return fmt.Errorf("trace: no thread metadata events")
	}
	return nil
}

package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// recordedTracer builds a small completed trace with nSpans control-lane
// task spans.
func recordedTracer(t *testing.T, nSpans int) *Tracer {
	t.Helper()
	tr := New()
	l := tr.Lane(ControlLane, "control")
	for i := 0; i < nSpans; i++ {
		l.Begin(fmt.Sprintf("task%d", i), CatTask)
		l.End()
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func retained(req string) RetainedTrace {
	return RetainedTrace{
		RequestID:   req,
		Tenant:      "acme",
		Outcome:     "error",
		Reason:      ReasonError,
		Start:       time.Unix(1700000000, 0),
		WallSeconds: 0.25,
		Workers:     2,
		Efficiency:  0.5,
		Spans:       3,
	}
}

func TestStoreRingRetention(t *testing.T) {
	s := NewStore(3)
	if got := s.Capacity(); got != 3 {
		t.Fatalf("capacity %d, want 3", got)
	}
	var seqs []uint64
	for i := 0; i < 5; i++ {
		s.NoteSeen()
		seqs = append(seqs, s.Add(retained(fmt.Sprintf("r%d", i)), recordedTracer(t, 2)))
	}
	// Sequence numbers are monotonic and never reused.
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, seq, i+1)
		}
	}
	// The ring keeps the newest 3, newest first.
	traces := s.Traces()
	if len(traces) != 3 {
		t.Fatalf("retained %d traces, want 3", len(traces))
	}
	for i, want := range []uint64{5, 4, 3} {
		if traces[i].Seq != want {
			t.Errorf("traces[%d].Seq = %d, want %d", i, traces[i].Seq, want)
		}
	}
	// Evicted traces are unreachable; live ones resolve by seq.
	if s.Get(1) != nil {
		t.Error("evicted trace still reachable")
	}
	if got := s.Get(4); got == nil || got.RequestID != "r3" {
		t.Errorf("Get(4) = %+v, want requestId r3", got)
	}

	d := s.Dump()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Seen != 5 || d.Retained != 5 || d.Evicted != 2 {
		t.Errorf("seen/retained/evicted = %d/%d/%d, want 5/5/2", d.Seen, d.Retained, d.Evicted)
	}
	if d.ByReason[ReasonError] != 5 {
		t.Errorf("byReason[error] = %d, want 5", d.ByReason[ReasonError])
	}

	// The dump round-trips through JSON and the validator entry point.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(d); err != nil {
		t.Fatal(err)
	}
	if err := ValidateStoreJSON(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestStoreChromeExport(t *testing.T) {
	s := NewStore(2)
	tr := recordedTracer(t, 3)
	tr.SetRequestID("req-chrome")
	seq := s.Add(retained("req-chrome"), tr)
	var buf bytes.Buffer
	if err := s.Get(seq).WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("req-chrome")) {
		t.Error("chrome export lost the request ID")
	}
	// A trace retained without spans refuses the export rather than
	// writing an invalid file.
	if err := (&RetainedTrace{}).WriteChrome(&buf); err == nil {
		t.Error("spanless retained trace exported")
	}
}

func TestStoreNilSafe(t *testing.T) {
	var s *Store
	s.NoteSeen()
	if seq := s.Add(retained("r"), nil); seq != 0 {
		t.Errorf("nil store assigned seq %d", seq)
	}
	if s.Get(1) != nil || s.Traces() != nil || s.Capacity() != 0 {
		t.Error("nil store returned data")
	}
	if err := s.Dump().Validate(); err == nil {
		t.Error("nil store dump validated (schema is set but capacity is 0)")
	}
}

// TestStoreConcurrentAddDump races writers against readers: the
// tail-sampler admit/evict path (Add + NoteSeen) against /debug/traces
// scrapes (Dump, Traces, Get). Run with -race.
func TestStoreConcurrentAddDump(t *testing.T) {
	s := NewStore(8)
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				s.NoteSeen()
				s.Add(retained(fmt.Sprintf("w%d-%d", w, i)), nil)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			d := s.Dump()
			if err := d.Validate(); err != nil {
				t.Errorf("mid-write dump invalid: %v", err)
				return
			}
			s.Get(uint64(i))
		}
	}()
	wg.Wait()
	d := s.Dump()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Retained != writers*perWriter {
		t.Errorf("retained %d, want %d", d.Retained, writers*perWriter)
	}
	if len(d.Traces) != 8 {
		t.Errorf("ring holds %d, want 8", len(d.Traces))
	}
}

func TestValidateStoreJSONRejectsGarbage(t *testing.T) {
	if err := ValidateStoreJSON([]byte("not json")); err == nil {
		t.Error("garbage validated")
	}
	if err := ValidateStoreJSON([]byte(`{"schema":"wrong"}`)); err == nil {
		t.Error("wrong schema validated")
	}
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// StoreSchema versions the /debug/traces JSON dump. Bump on
// incompatible changes to StoreDump or RetainedTrace.
const StoreSchema = "realroots/trace-store/v1"

// Retention reasons recorded on a RetainedTrace. The sampler decides
// which applies; the store only counts them.
const (
	ReasonForced        = "forced"         // X-Debug-Trace header
	ReasonError         = "error"          // error / panic / budget-exceeded outcome
	ReasonSlow          = "slow"           // latency above the rolling quantile
	ReasonLowEfficiency = "low_efficiency" // measured parallel efficiency below floor
)

// A RetainedTrace is one solve's trace the tail sampler decided to
// keep, with enough derived metadata to triage it from the index page
// without opening the Chrome export.
type RetainedTrace struct {
	// Seq is the store-assigned retention sequence number (monotonic,
	// never reused); it addresses the trace's Chrome export download.
	Seq uint64 `json:"seq"`
	// RequestID is the solve's end-to-end request ID.
	RequestID string `json:"requestId"`
	// Tenant is the requesting tenant ("" if anonymous).
	Tenant string `json:"tenant,omitempty"`
	// Outcome is the solve outcome ("ok", "error", "budget", …) as the
	// server classified it.
	Outcome string `json:"outcome"`
	// Reason says why the sampler kept this trace (Reason* constants).
	Reason string `json:"reason"`
	// Start is the wall-clock time the solve began.
	Start time.Time `json:"start"`
	// WallSeconds is the solve's measured wall time in seconds.
	WallSeconds float64 `json:"wallSeconds"`
	// Workers is the parallel worker count the solve ran with (0 if
	// sequential or unknown).
	Workers int `json:"workers"`
	// Efficiency is the measured parallel efficiency
	// (Summary.Efficiency), 0 when Workers is 0.
	Efficiency float64 `json:"efficiency"`
	// SerialFraction is the trace's measured Amdahl serial fraction.
	SerialFraction float64 `json:"serialFraction"`
	// Spans and DroppedSpans count recorded and cap-dropped spans.
	Spans        int `json:"spans"`
	DroppedSpans int `json:"droppedSpans"`

	// tracer holds the raw spans for the Chrome export; not serialized
	// into the index (a dump row is metadata only — the full trace is a
	// separate download).
	tracer *Tracer
}

// WriteChrome writes the retained trace's Chrome trace-event export.
func (rt *RetainedTrace) WriteChrome(w io.Writer) error {
	if rt == nil || rt.tracer == nil {
		return fmt.Errorf("trace: retained trace has no recorded spans")
	}
	return rt.tracer.WriteChrome(w)
}

// A Store is a fixed-size ring of retained traces: the newest
// `capacity` interesting solves, evicting oldest-first. All methods
// are safe for concurrent use; a nil *Store no-ops (tracing retained
// nowhere).
type Store struct {
	mu       sync.Mutex
	capacity int
	ring     []*RetainedTrace // ring[next] is the oldest once full
	next     int
	seq      uint64
	seen     uint64
	retained uint64
	evicted  uint64
	byReason map[string]uint64
}

// DefaultStoreCapacity is the ring size used when the operator does
// not configure one: enough history to hold a burst of failures
// without unbounded memory (each entry pins one bounded tracer).
const DefaultStoreCapacity = 64

// NewStore creates a ring store holding at most capacity traces
// (capacity <= 0 selects DefaultStoreCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{capacity: capacity, byReason: make(map[string]uint64)}
}

// Capacity returns the ring size (0 on nil).
func (s *Store) Capacity() int {
	if s == nil {
		return 0
	}
	return s.capacity
}

// NoteSeen counts one completed solve that passed through the sampler,
// retained or not; it is the denominator for the retention rate shown
// on the index page.
func (s *Store) NoteSeen() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.seen++
	s.mu.Unlock()
}

// Add retains a trace, assigning and returning its sequence number.
// The oldest entry is evicted when the ring is full. The tracer must
// be quiescent (its run completed) — the store will read it on demand
// for Chrome exports.
func (s *Store) Add(rt RetainedTrace, tr *Tracer) uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	rt.Seq = s.seq
	rt.tracer = tr
	s.retained++
	s.byReason[rt.Reason]++
	if len(s.ring) < s.capacity {
		s.ring = append(s.ring, &rt)
	} else {
		if s.ring[s.next] != nil {
			s.evicted++
		}
		s.ring[s.next] = &rt
		s.next = (s.next + 1) % s.capacity
	}
	return rt.Seq
}

// Get returns the retained trace with the given sequence number, or
// nil if it was never retained or has been evicted.
func (s *Store) Get(seq uint64) *RetainedTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, rt := range s.ring {
		if rt != nil && rt.Seq == seq {
			return rt
		}
	}
	return nil
}

// Traces returns the retained traces, newest first.
func (s *Store) Traces() []*RetainedTrace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*RetainedTrace, 0, len(s.ring))
	// Walk the ring backwards from the most recently written slot.
	for i := 0; i < len(s.ring); i++ {
		j := (s.next - 1 - i + 2*len(s.ring)) % len(s.ring)
		if len(s.ring) < s.capacity {
			// Not yet wrapped: entries live at [0, len) in insert order.
			j = len(s.ring) - 1 - i
		}
		if rt := s.ring[j]; rt != nil {
			out = append(out, rt)
		}
	}
	return out
}

// StoreDump is the schema-versioned JSON served at /debug/traces.
type StoreDump struct {
	Schema   string            `json:"schema"`
	Capacity int               `json:"capacity"`
	Seen     uint64            `json:"seen"`
	Retained uint64            `json:"retained"`
	Evicted  uint64            `json:"evicted"`
	ByReason map[string]uint64 `json:"byReason"`
	Traces   []RetainedTrace   `json:"traces"`
}

// Dump snapshots the store for serialization, newest trace first.
func (s *Store) Dump() StoreDump {
	d := StoreDump{Schema: StoreSchema, ByReason: map[string]uint64{}}
	if s == nil {
		return d
	}
	traces := s.Traces()
	s.mu.Lock()
	d.Capacity = s.capacity
	d.Seen = s.seen
	d.Retained = s.retained
	d.Evicted = s.evicted
	for k, v := range s.byReason {
		d.ByReason[k] = v
	}
	s.mu.Unlock()
	d.Traces = make([]RetainedTrace, len(traces))
	for i, rt := range traces {
		d.Traces[i] = *rt
		d.Traces[i].tracer = nil
	}
	return d
}

// Validate checks the dump's structural invariants: schema string,
// retained ≥ len(traces), strictly decreasing sequence numbers
// (newest first), every trace carrying a reason the byReason index
// also counts, and non-negative measurements.
func (d StoreDump) Validate() error {
	if d.Schema != StoreSchema {
		return fmt.Errorf("trace: store dump schema %q, want %q", d.Schema, StoreSchema)
	}
	if d.Capacity <= 0 {
		return fmt.Errorf("trace: store dump capacity %d not positive", d.Capacity)
	}
	if uint64(len(d.Traces)) > d.Retained {
		return fmt.Errorf("trace: store dump holds %d traces but reports only %d retained", len(d.Traces), d.Retained)
	}
	if d.Retained > d.Seen {
		return fmt.Errorf("trace: store dump retained %d > seen %d", d.Retained, d.Seen)
	}
	var prev uint64
	for i, rt := range d.Traces {
		if rt.Seq == 0 {
			return fmt.Errorf("trace: retained trace %d has no sequence number", i)
		}
		if i > 0 && rt.Seq >= prev {
			return fmt.Errorf("trace: retained traces not newest-first (seq %d after %d)", rt.Seq, prev)
		}
		prev = rt.Seq
		if rt.Reason == "" {
			return fmt.Errorf("trace: retained trace seq %d has no retention reason", rt.Seq)
		}
		if d.ByReason[rt.Reason] == 0 {
			return fmt.Errorf("trace: retained trace seq %d reason %q missing from byReason index", rt.Seq, rt.Reason)
		}
		if rt.WallSeconds < 0 {
			return fmt.Errorf("trace: retained trace seq %d has negative wall time", rt.Seq)
		}
		if rt.Spans < 0 || rt.DroppedSpans < 0 {
			return fmt.Errorf("trace: retained trace seq %d has negative span counts", rt.Seq)
		}
		if rt.Efficiency < 0 || rt.SerialFraction < 0 || rt.SerialFraction > 1+1e-9 {
			return fmt.Errorf("trace: retained trace seq %d has out-of-range efficiency/serial fraction", rt.Seq)
		}
	}
	return nil
}

// ValidateStoreJSON parses data as a trace-store dump and validates
// it. It is the cmd/validatetrace and CI entry point.
func ValidateStoreJSON(data []byte) error {
	var d StoreDump
	if err := json.Unmarshal(data, &d); err != nil {
		return fmt.Errorf("trace: invalid trace-store JSON: %w", err)
	}
	return d.Validate()
}

package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const ms = time.Millisecond

// synthetic builds a tracer with hand-written spans so the summary
// arithmetic can be checked exactly.
func synthetic() *Tracer {
	tr := New()
	ctl := tr.Lane(ControlLane, "control")
	ctl.spans = []Span{
		{Name: "remainder", Cat: CatPhase, Start: 0, Dur: 10 * ms, Parent: -1},
		{Name: "solve", Cat: CatPhase, Start: 10 * ms, Dur: 30 * ms, Parent: -1},
	}
	w0 := tr.Lane(0, "worker-0")
	w0.spans = []Span{
		{Name: "precompute", Cat: CatTask, Start: 0, Dur: 10 * ms, Parent: -1},
		{Name: "computepoly", Cat: CatTask, Start: 10 * ms, Dur: 10 * ms, Parent: -1},
		{Name: "interval", Cat: CatTask, Start: 30 * ms, Dur: 10 * ms, Parent: -1, Wait: 2 * ms},
	}
	w1 := tr.Lane(1, "worker-1")
	w1.spans = []Span{
		{Name: "computepoly", Cat: CatTask, Start: 15 * ms, Dur: 10 * ms, Parent: -1},
	}
	return tr
}

func TestSummarizeSynthetic(t *testing.T) {
	s := synthetic().Summarize()
	if s.Wall != 40*ms {
		t.Errorf("Wall = %v, want 40ms", s.Wall)
	}
	// Phases in first-seen order.
	if len(s.Phases) != 2 || s.Phases[0].Name != "remainder" || s.Phases[1].Name != "solve" {
		t.Fatalf("Phases = %+v", s.Phases)
	}
	if s.Phases[0].Wall != 10*ms || s.Phases[1].Wall != 30*ms {
		t.Errorf("phase walls = %v, %v", s.Phases[0].Wall, s.Phases[1].Wall)
	}
	// Busy: worker-0 30ms + worker-1 10ms.
	if s.Busy != 40*ms {
		t.Errorf("Busy = %v, want 40ms", s.Busy)
	}
	// Concurrency ≥ 2 only during [15,20): 5ms parallel, 35ms serial.
	wantSerial := float64(35*ms) / float64(40*ms)
	if diff := s.SerialFraction - wantSerial; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("SerialFraction = %v, want %v", s.SerialFraction, wantSerial)
	}
	if diff := s.Parallelism - 1.0; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Parallelism = %v, want 1.0", s.Parallelism)
	}
	// Task aggregation.
	byName := map[string]TaskTime{}
	for _, tk := range s.Tasks {
		byName[tk.Name] = tk
	}
	if tk := byName["computepoly"]; tk.Count != 2 || tk.Busy != 20*ms {
		t.Errorf("computepoly = %+v", tk)
	}
	if tk := byName["interval"]; tk.Count != 1 || tk.Busy != 10*ms {
		t.Errorf("interval = %+v", tk)
	}
	// Lanes: control (phase-only, zero busy), worker-0, worker-1.
	if len(s.Lanes) != 3 {
		t.Fatalf("Lanes = %+v", s.Lanes)
	}
	if s.Lanes[0].ID != ControlLane || s.Lanes[0].Busy != 0 {
		t.Errorf("control lane = %+v", s.Lanes[0])
	}
	if s.Lanes[1].Busy != 30*ms || s.Lanes[1].Tasks != 3 || s.Lanes[1].Wait != 2*ms {
		t.Errorf("worker-0 = %+v", s.Lanes[1])
	}
}

func TestSummarizeNestedTasksNotDoubleCounted(t *testing.T) {
	tr := New()
	w := tr.Lane(0, "worker-0")
	w.spans = []Span{
		{Name: "outer", Cat: CatTask, Start: 0, Dur: 10 * ms, Parent: -1},
		{Name: "inner", Cat: CatTask, Start: 2 * ms, Dur: 4 * ms, Parent: 0},
	}
	s := tr.Summarize()
	if s.Busy != 10*ms {
		t.Errorf("Busy = %v, want 10ms (nested span must not double-count)", s.Busy)
	}
	if len(s.Tasks) != 1 || s.Tasks[0].Name != "outer" {
		t.Errorf("Tasks = %+v, want only the outer task kind", s.Tasks)
	}
	if s.Lanes[0].Tasks != 1 {
		t.Errorf("lane task count = %d, want 1", s.Lanes[0].Tasks)
	}
}

func TestSummarizeOverlapUnion(t *testing.T) {
	// Overlapping spans on the same lane must be unioned for busy time.
	tr := New()
	w := tr.Lane(0, "w")
	w.spans = []Span{
		{Name: "a", Cat: CatTask, Start: 0, Dur: 6 * ms, Parent: -1},
		{Name: "b", Cat: CatTask, Start: 4 * ms, Dur: 6 * ms, Parent: -1},
	}
	if s := tr.Summarize(); s.Busy != 10*ms {
		t.Errorf("Busy = %v, want 10ms", s.Busy)
	}
}

func TestSummarizeSequentialIsFullySerial(t *testing.T) {
	tr := New()
	w := tr.Lane(ControlLane, "control")
	w.spans = []Span{
		{Name: "precompute", Cat: CatTask, Start: 0, Dur: 10 * ms, Parent: -1},
		{Name: "interval", Cat: CatTask, Start: 10 * ms, Dur: 10 * ms, Parent: -1},
	}
	s := tr.Summarize()
	if s.SerialFraction != 1.0 {
		t.Errorf("SerialFraction = %v, want 1.0 on a one-lane run", s.SerialFraction)
	}
}

func TestMergeIntervals(t *testing.T) {
	cases := []struct {
		in   []interval
		want time.Duration
	}{
		{nil, 0},
		{[]interval{{0, 5 * ms}}, 5 * ms},
		{[]interval{{0, 5 * ms}, {5 * ms, 10 * ms}}, 10 * ms},
		{[]interval{{0, 6 * ms}, {2 * ms, 4 * ms}}, 6 * ms},                   // nested
		{[]interval{{4 * ms, 10 * ms}, {0, 6 * ms}}, 10 * ms},                 // unsorted overlap
		{[]interval{{0, 1 * ms}, {5 * ms, 6 * ms}, {2 * ms, 3 * ms}}, 3 * ms}, // gaps
	}
	for i, c := range cases {
		if got := mergeIntervals(c.in); got != c.want {
			t.Errorf("case %d: mergeIntervals = %v, want %v", i, got, c.want)
		}
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := synthetic().Summarize().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Utilization summary",
		"Pipeline phases",
		"remainder",
		"Task kinds",
		"computepoly",
		"Workers:",
		"worker-1",
		"serial fraction",
		"achieved speedup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary text missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (Summary{}).WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Utilization summary") {
		t.Errorf("empty summary output: %q", buf.String())
	}
}

package trace

import (
	"fmt"
	"testing"
)

func TestLimitedTracerCapsSpans(t *testing.T) {
	tr := NewLimited(3)
	l := tr.Lane(ControlLane, "control")
	for i := 0; i < 10; i++ {
		l.Begin(fmt.Sprintf("t%d", i), CatTask)
		l.End()
	}
	if got := tr.SpanCount(); got != 3 {
		t.Errorf("SpanCount = %d, want 3", got)
	}
	if got := tr.DroppedSpans(); got != 7 {
		t.Errorf("DroppedSpans = %d, want 7", got)
	}
	// The surviving spans are all closed and structurally valid.
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, s := range l.Spans() {
		if s.Dur < 0 {
			t.Errorf("span %q left open", s.Name)
		}
	}
}

func TestLimitedTracerNestedDropPairing(t *testing.T) {
	// A Begin dropped at the cap must consume exactly its own End:
	// open a real span, hit the cap with nested Begins, and check the
	// real span still closes correctly.
	tr := NewLimited(1)
	l := tr.Lane(ControlLane, "control")
	l.Begin("outer", CatTask) // recorded (span 1 of 1)
	l.Begin("inner1", CatTask)
	l.Begin("inner2", CatTask)
	l.End() // inner2 (dropped)
	l.End() // inner1 (dropped)
	l.End() // outer (recorded)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	spans := l.Spans()
	if len(spans) != 1 || spans[0].Name != "outer" || spans[0].Dur < 0 {
		t.Fatalf("spans = %+v, want one closed outer span", spans)
	}
	if tr.DroppedSpans() != 2 {
		t.Errorf("DroppedSpans = %d, want 2", tr.DroppedSpans())
	}
}

func TestLimitedTracerPerLaneCap(t *testing.T) {
	// The cap is per lane: a second lane records its own quota.
	tr := NewLimited(2)
	for lane := 0; lane < 2; lane++ {
		l := tr.Lane(lane, fmt.Sprintf("worker-%d", lane))
		for i := 0; i < 5; i++ {
			l.Begin("t", CatTask)
			l.End()
		}
	}
	if got := tr.SpanCount(); got != 4 {
		t.Errorf("SpanCount = %d, want 4 (2 per lane)", got)
	}
	if got := tr.DroppedSpans(); got != 6 {
		t.Errorf("DroppedSpans = %d, want 6", got)
	}
}

func TestLimitedTracerCapsCounters(t *testing.T) {
	tr := NewLimited(2)
	for i := 0; i < 5; i++ {
		tr.CounterSample("queue", int64(i))
	}
	if got := len(tr.Counters()); got != 2 {
		t.Errorf("counters = %d, want 2", got)
	}
	if got := tr.DroppedSpans(); got != 3 {
		t.Errorf("DroppedSpans = %d (counter drops), want 3", got)
	}
}

func TestNewLimitedZeroIsUnbounded(t *testing.T) {
	for _, cap := range []int{0, -5} {
		tr := NewLimited(cap)
		l := tr.Lane(ControlLane, "control")
		for i := 0; i < 100; i++ {
			l.Begin("t", CatTask)
			l.End()
		}
		if got := tr.SpanCount(); got != 100 {
			t.Errorf("NewLimited(%d): SpanCount = %d, want 100", cap, got)
		}
		if got := tr.DroppedSpans(); got != 0 {
			t.Errorf("NewLimited(%d): DroppedSpans = %d, want 0", cap, got)
		}
	}
}

func TestSpanAccessorsNilSafe(t *testing.T) {
	var tr *Tracer
	if tr.SpanCount() != 0 || tr.DroppedSpans() != 0 {
		t.Error("nil tracer reported spans")
	}
}

func TestEstimateSpanCost(t *testing.T) {
	c := EstimateSpanCost()
	if c <= 0 {
		t.Errorf("per-span cost %v, want > 0", c)
	}
	// Sanity ceiling: a Begin/End pair is two time.Since calls and two
	// appends; a millisecond would mean something is deeply wrong.
	if c.Milliseconds() > 1 {
		t.Errorf("per-span cost %v implausibly high", c)
	}
}

package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New()
	l := tr.Lane(ControlLane, "control")
	l.Begin("remainder", CatPhase)
	l.Begin("computepoly", CatTask)
	l.Begin("inner", CatTask)
	l.End()
	l.End()
	l.Begin("sort", CatTask)
	l.End()
	l.End()

	spans := l.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	wantParents := []int{-1, 0, 1, 0}
	wantNames := []string{"remainder", "computepoly", "inner", "sort"}
	for i, s := range spans {
		if s.Name != wantNames[i] {
			t.Errorf("span %d name = %q, want %q", i, s.Name, wantNames[i])
		}
		if s.Parent != wantParents[i] {
			t.Errorf("span %d parent = %d, want %d", i, s.Parent, wantParents[i])
		}
		if s.Dur < 0 {
			t.Errorf("span %d left open", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesOpenSpan(t *testing.T) {
	tr := New()
	l := tr.Lane(0, "worker-0")
	l.Begin("task", CatTask)
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted an open span")
	}
	l.End()
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate after End: %v", err)
	}
}

func TestValidateOrderingInvariant(t *testing.T) {
	tr := New()
	l := tr.Lane(0, "w")
	// Hand-craft an out-of-order lane: Validate must reject it.
	l.spans = []Span{
		{Name: "b", Cat: CatTask, Start: 10 * time.Millisecond, Dur: time.Millisecond, Parent: -1},
		{Name: "a", Cat: CatTask, Start: 5 * time.Millisecond, Dur: time.Millisecond, Parent: -1},
	}
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted out-of-order spans")
	}
}

func TestValidateParentContainment(t *testing.T) {
	tr := New()
	l := tr.Lane(0, "w")
	l.spans = []Span{
		{Name: "p", Cat: CatPhase, Start: 0, Dur: time.Millisecond, Parent: -1},
		{Name: "c", Cat: CatTask, Start: time.Millisecond / 2, Dur: 2 * time.Millisecond, Parent: 0},
	}
	if err := tr.Validate(); err == nil {
		t.Error("Validate accepted a child escaping its parent")
	}
}

func TestEndWithoutBeginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("End with no open span did not panic")
		}
	}()
	New().Lane(0, "w").End()
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Now() != 0 {
		t.Error("nil Now != 0")
	}
	l := tr.Lane(0, "w")
	if l != nil {
		t.Fatal("nil tracer returned non-nil lane")
	}
	l.Begin("a", CatTask)
	l.BeginAt("a", CatTask, time.Millisecond)
	l.End()
	tr.CounterSample("q", 1)
	if got := tr.Lanes(); got != nil {
		t.Errorf("nil Lanes = %v", got)
	}
	if got := tr.Counters(); got != nil {
		t.Errorf("nil Counters = %v", got)
	}
	if got := l.Spans(); got != nil {
		t.Errorf("nil Spans = %v", got)
	}
	if s := tr.Summarize(); s.Wall != 0 || len(s.Lanes) != 0 {
		t.Errorf("nil Summarize = %+v", s)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("nil Validate: %v", err)
	}
	if err := tr.WriteChrome(&bytes.Buffer{}); err == nil {
		t.Error("nil WriteChrome should error")
	}
}

// TestNilTracerNoAllocs is the acceptance-criterion guard: with tracing
// disabled (nil Tracer / nil Lane), the instrumentation calls on the
// solver hot path must not allocate.
func TestNilTracerNoAllocs(t *testing.T) {
	var tr *Tracer
	lane := tr.Lane(3, "worker-3")
	if n := testing.AllocsPerRun(1000, func() {
		lane.BeginAt("interval", CatTask, 0)
		lane.End()
		tr.CounterSample("queue", 7)
		_ = tr.Now()
	}); n != 0 {
		t.Errorf("nil-tracer hot path allocates %.1f objects/op, want 0", n)
	}
}

func BenchmarkNilTracerHotPath(b *testing.B) {
	var tr *Tracer
	lane := tr.Lane(0, "worker-0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lane.BeginAt("interval", CatTask, 0)
		lane.End()
	}
}

func BenchmarkEnabledTracerSpan(b *testing.B) {
	tr := New()
	lane := tr.Lane(0, "worker-0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lane.Begin("interval", CatTask)
		lane.End()
	}
}

func TestWriteChromeAndValidate(t *testing.T) {
	tr := New()
	ctl := tr.Lane(ControlLane, "control")
	ctl.Begin("remainder", CatPhase)
	w0 := tr.Lane(0, "worker-0")
	w0.BeginAt("precompute", CatTask, 123*time.Microsecond)
	w0.End()
	ctl.End()
	tr.CounterSample("queue depth", 2)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"thread_name"`, `"worker-0"`, `"control"`, `"ph":"X"`, `"ph":"C"`, `"wait_us"`, `"traceEvents"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome output missing %s\noutput: %s", want, out)
		}
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Errorf("ValidateChrome: %v", err)
	}
}

func TestValidateChromeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not json",
		`{"traceEvents":[]}`,
		`{"traceEvents":[{"name":"x","ph":"X","ts":0,"pid":1,"tid":0}]}`, // no metadata
		`{"traceEvents":[{"name":"t","ph":"M","pid":1,"tid":0}]}`,        // no complete events
	} {
		if err := ValidateChrome([]byte(bad)); err == nil {
			t.Errorf("ValidateChrome accepted %q", bad)
		}
	}
}

func TestCounterSamples(t *testing.T) {
	tr := New()
	tr.CounterSample("queue", 1)
	tr.CounterSample("queue", 3)
	cs := tr.Counters()
	if len(cs) != 2 || cs[0].Value != 1 || cs[1].Value != 3 {
		t.Fatalf("Counters = %+v", cs)
	}
	if cs[1].At < cs[0].At {
		t.Error("counter samples out of order")
	}
}

func TestLaneIdentity(t *testing.T) {
	tr := New()
	a := tr.Lane(2, "worker-2")
	b := tr.Lane(2, "ignored")
	if a != b {
		t.Error("Lane(2) returned distinct lanes")
	}
	lanes := tr.Lanes()
	if len(lanes) != 1 || lanes[0].Name != "worker-2" {
		t.Errorf("Lanes = %+v", lanes)
	}
}

// Package trace is the wall-clock companion to internal/metrics: where
// metrics counts *how much* arithmetic each phase performs, trace
// records *when* and *on which worker* the work ran. The paper's
// evaluation (§5) rests on exactly this decomposition — per-phase cost
// and per-processor utilization on the 20-processor Sequent — and the
// Tracer regenerates it on modern hardware: structured spans for every
// pipeline phase and scheduler task, per-worker timelines, queue-depth
// samples, a Chrome trace-event export (chrome://tracing, Perfetto),
// and a plain-text utilization summary (busy %, serial fraction,
// achieved speedup).
//
// Like metrics.Counters, the Tracer is nil-safe: every method on a nil
// *Tracer or nil *Lane is a no-op that performs no allocation, so the
// solver hot path carries no cost when tracing is disabled.
//
// Concurrency model: spans are recorded into per-lane buffers. Each
// lane is owned by exactly one goroutine (a scheduler worker owns its
// worker lane; the orchestrating goroutine owns the control lane), so
// span appends need no locks. Lane registration and counter samples go
// through a mutex — they are rare. Reading a tracer (WriteChrome,
// Summarize, Spans) is only valid after the traced run has completed,
// i.e. after every lane owner has synchronized with the reader (the
// scheduler's Wait/Close provides this for worker lanes).
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Span categories. Phase spans are containers marking a pipeline stage
// on the control lane (they overlap the worker activity they fan out);
// task spans are actual busy work. Utilization math (busy %, serial
// fraction, parallelism) considers task spans only.
const (
	CatPhase = "phase"
	CatTask  = "task"
)

// ControlLane is the conventional lane ID for the orchestrating
// goroutine (the one calling the solver); scheduler workers use their
// worker index (0..P-1).
const ControlLane = -1

// A Span is one timed interval on a lane.
type Span struct {
	// Name identifies the work: a pipeline phase ("remainder",
	// "solve") for CatPhase spans, or a scheduler task tag
	// ("computepoly", "sort", "preinterval", "interval", …) for
	// CatTask spans.
	Name string
	// Cat is the span category: CatPhase or CatTask.
	Cat string
	// Start is the span's start offset from the tracer epoch.
	Start time.Duration
	// Dur is the span's duration (set by End).
	Dur time.Duration
	// Parent is the index (within the same lane's span slice) of the
	// enclosing span, or -1 for a top-level span.
	Parent int
	// Wait, for scheduler task spans, is the queue latency: the time
	// between the task's submission and its start.
	Wait time.Duration
}

// End reports the span's end offset from the tracer epoch.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// A Counter is one sampled value of a named time series (e.g. the
// scheduler queue depth at each dequeue).
type Counter struct {
	Name  string
	At    time.Duration // offset from the tracer epoch
	Value int64
}

// A Lane is one horizontal timeline: a scheduler worker or the control
// goroutine. All span-recording methods must be called by the lane's
// owning goroutine only.
type Lane struct {
	// ID is the lane's identity: a worker index, or ControlLane.
	ID int
	// Name labels the lane in exports ("worker-3", "control").
	Name string

	tr      *Tracer
	spans   []Span
	open    []int // stack of indices into spans with Dur not yet set
	dropped int   // spans not recorded because the lane hit its cap
}

// A Tracer collects spans and counter samples for one run. Create one
// with New (unbounded, for offline analysis) or NewLimited (bounded,
// for always-on serving-path capture); a nil *Tracer is valid
// everywhere and records nothing.
type Tracer struct {
	epoch time.Time
	// maxSpans caps each lane's span buffer (and the counter-sample
	// buffer); 0 means unbounded. Set once at construction, read-only
	// afterwards, so lane owners read it without synchronization.
	maxSpans int

	mu              sync.Mutex
	lanes           map[int]*Lane
	counters        []Counter
	droppedCounters int
	requestID       string
}

// New returns an empty Tracer whose epoch is the current time.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), lanes: make(map[int]*Lane)}
}

// NewLimited returns a Tracer that records at most maxSpans spans per
// lane and at most maxSpans counter samples; further records are
// counted as dropped instead of growing the buffers. This is the
// always-on serving-path variant: a request's trace memory is bounded
// by maxSpans × (workers+1) lanes regardless of solve size.
// maxSpans <= 0 means unbounded (identical to New).
func NewLimited(maxSpans int) *Tracer {
	if maxSpans < 0 {
		maxSpans = 0
	}
	return &Tracer{epoch: time.Now(), maxSpans: maxSpans, lanes: make(map[int]*Lane)}
}

// SetRequestID tags the tracer with the request that owns the traced
// run; the Chrome export stamps it on every span so a trace viewed
// days later still names the request it belongs to. No-op on nil.
func (t *Tracer) SetRequestID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.requestID = id
	t.mu.Unlock()
}

// RequestID returns the tag set by SetRequestID ("" on nil).
func (t *Tracer) RequestID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requestID
}

// Now returns the current offset from the tracer epoch. On a nil
// tracer it returns 0.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Lane returns the lane with the given ID, creating it (with the given
// name) on first use. Each lane must be driven by a single goroutine;
// Lane itself may be called from any goroutine. On a nil tracer it
// returns nil (and all Lane methods on nil no-op).
func (t *Tracer) Lane(id int, name string) *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if l, ok := t.lanes[id]; ok {
		return l
	}
	l := &Lane{ID: id, Name: name, tr: t}
	t.lanes[id] = l
	return l
}

// CounterSample records one sample of the named time series. On a
// limited tracer, samples beyond the cap are dropped (and counted).
func (t *Tracer) CounterSample(name string, v int64) {
	if t == nil {
		return
	}
	at := time.Since(t.epoch)
	t.mu.Lock()
	if t.maxSpans > 0 && len(t.counters) >= t.maxSpans {
		t.droppedCounters++
	} else {
		t.counters = append(t.counters, Counter{Name: name, At: at, Value: v})
	}
	t.mu.Unlock()
}

// Begin opens a span on the lane. Spans nest: a Begin while another
// span is open records the open span as the parent. Every Begin must
// be paired with an End on the same goroutine.
func (l *Lane) Begin(name, cat string) {
	l.BeginAt(name, cat, 0)
}

// droppedSentinel marks an open-stack entry whose Begin was dropped by
// the lane's span cap, so the matching End pops it without touching the
// span buffer. Once a lane reaches its cap it never shrinks, so a real
// span can never end up nested under a sentinel.
const droppedSentinel = -1

// BeginAt is Begin with a recorded queue wait (submission→start
// latency), used by the scheduler.
func (l *Lane) BeginAt(name, cat string, wait time.Duration) {
	if l == nil {
		return
	}
	if max := l.tr.maxSpans; max > 0 && len(l.spans) >= max {
		l.dropped++
		l.open = append(l.open, droppedSentinel)
		return
	}
	parent := -1
	if n := len(l.open); n > 0 {
		parent = l.open[n-1]
	}
	l.spans = append(l.spans, Span{
		Name:   name,
		Cat:    cat,
		Start:  time.Since(l.tr.epoch),
		Dur:    -1, // open
		Parent: parent,
		Wait:   wait,
	})
	l.open = append(l.open, len(l.spans)-1)
}

// End closes the most recently opened span. Ending with no open span
// panics: it indicates a Begin/End pairing bug.
func (l *Lane) End() {
	if l == nil {
		return
	}
	n := len(l.open)
	if n == 0 {
		panic("trace: Lane.End with no open span")
	}
	i := l.open[n-1]
	l.open = l.open[:n-1]
	if i == droppedSentinel {
		return // the matching Begin was dropped by the span cap
	}
	l.spans[i].Dur = time.Since(l.tr.epoch) - l.spans[i].Start
}

// Spans returns a copy of the lane's recorded spans. Open spans have
// Dur == -1. Valid only after the lane's owner has stopped recording.
func (l *Lane) Spans() []Span {
	if l == nil {
		return nil
	}
	out := make([]Span, len(l.spans))
	copy(out, l.spans)
	return out
}

// Lanes returns the tracer's lanes sorted by ID (control lane first).
// Valid only after the traced run has completed.
func (t *Tracer) Lanes() []*Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Lane, 0, len(t.lanes))
	for _, l := range t.lanes {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SpanCount returns the total number of spans recorded across all
// lanes. Valid only after the traced run has completed (same caveat as
// Lanes); a nil tracer reports 0.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, l := range t.lanes {
		n += len(l.spans)
	}
	return n
}

// DroppedSpans returns the number of spans and counter samples the
// span cap discarded (0 for unbounded tracers). Valid only after the
// traced run has completed.
func (t *Tracer) DroppedSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.droppedCounters
	for _, l := range t.lanes {
		n += l.dropped
	}
	return n
}

// EstimateSpanCost measures the wall-clock cost of recording one span
// (a Begin/End pair) on this host, by timing a short burst on a
// throwaway tracer. Servers running always-on tracing use it to
// convert span counts into an estimated overhead-seconds metric
// without instrumenting the hot path twice.
func EstimateSpanCost() time.Duration {
	const n = 2048
	tr := New()
	l := tr.Lane(ControlLane, "calibrate")
	start := time.Now()
	for i := 0; i < n; i++ {
		l.Begin("calibrate", CatTask)
		l.End()
	}
	return time.Since(start) / n
}

// Counters returns a copy of the recorded counter samples in recording
// order.
func (t *Tracer) Counters() []Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Counter, len(t.counters))
	copy(out, t.counters)
	return out
}

// Validate checks the structural invariants of the recorded trace:
// every span closed, starts non-decreasing within each lane, children
// nested strictly inside their parents. Tests and the CI smoke job use
// it as the schema check for freshly recorded traces.
func (t *Tracer) Validate() error {
	for _, l := range t.Lanes() {
		spans := l.Spans()
		for i, s := range spans {
			if s.Dur < 0 {
				return fmt.Errorf("trace: lane %d (%s): span %d (%s) left open", l.ID, l.Name, i, s.Name)
			}
			if i > 0 && s.Start < spans[i-1].Start {
				return fmt.Errorf("trace: lane %d (%s): span %d (%s) starts before its predecessor", l.ID, l.Name, i, s.Name)
			}
			if s.Parent >= 0 {
				if s.Parent >= i {
					return fmt.Errorf("trace: lane %d (%s): span %d (%s) has non-causal parent %d", l.ID, l.Name, i, s.Name, s.Parent)
				}
				p := spans[s.Parent]
				if s.Start < p.Start || s.End() > p.End() {
					return fmt.Errorf("trace: lane %d (%s): span %d (%s) escapes parent %d (%s)", l.ID, l.Name, i, s.Name, s.Parent, p.Name)
				}
			}
		}
	}
	return nil
}

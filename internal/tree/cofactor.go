package tree

import (
	"fmt"

	"realroots/internal/metrics"
	"realroots/internal/poly"
	"realroots/internal/remseq"
)

// The cofactor route. Section 2.1 defines the tree polynomials first
// through the cofactor sequences {A_i(x)}, {B_i(x)} with
// F_i = A_i·F_0 + B_i·F_1 (Eqs. 3-4):
//
//	P_{i,j} = A_{i-1}·B_{j+1} - A_{j+1}·B_{i-1},  1 ≤ i ≤ j < n   (Eq. 5)
//
// before switching to the bottom-up T-matrix recursion that the
// implementation uses "in keeping with the bottom-up traversal of the
// tree". This file implements the cofactor route directly: it is an
// independent oracle for the T-matrix computation (every entry of every
// T matrix is a ± cofactor combination, Appendix A Eq. 54) and an
// ablation point quantifying why the paper preferred the bottom-up
// form.

// Cofactors holds A_0..A_n and B_0..B_n with A_0 = 1, B_0 = 0,
// A_1 = 0, B_1 = 1, and [[A_j, B_j], [A_{j+1}, B_{j+1}]] = S_j···S_1.
type Cofactors struct {
	A, B []*poly.Poly
}

// ComputeCofactors builds the cofactor sequences from the remainder
// sequence by accumulating T_{1,j} = Ŝ_j·T_{1,j-1}/c_{j-1}² left to
// right (all divisions exact).
func ComputeCofactors(s *remseq.Sequence, ctx metrics.Ctx) *Cofactors {
	ctx = ctx.In(metrics.PhaseTree)
	n := s.N
	c := &Cofactors{
		A: make([]*poly.Poly, n+1),
		B: make([]*poly.Poly, n+1),
	}
	c.A[0] = poly.FromInt64s(1)
	c.B[0] = poly.Zero()
	if n == 0 {
		return c
	}
	c.A[1] = poly.Zero()
	c.B[1] = poly.FromInt64s(1)

	t := SHat(s, 1) // T_{1,1} = S_1
	c.A[2] = t[1][0]
	c.B[2] = t[1][1]
	for j := 2; j < n; j++ {
		t = SHat(s, j).Mul(ctx, t).DivExact(ctx, s.Csq(j-1))
		c.A[j+1] = t[1][0]
		c.B[j+1] = t[1][1]
	}
	return c
}

// P computes P_{i,j} by Eq. 5 (for j < n) or as F_{i-1} (for j = n).
func (c *Cofactors) P(s *remseq.Sequence, ctx metrics.Ctx, i, j int) *poly.Poly {
	n := s.N
	if i < 1 || i > j || j > n {
		panic(fmt.Sprintf("tree: cofactor P out of range [%d,%d]", i, j))
	}
	if i > j {
		return poly.FromInt64s(1)
	}
	if j == n {
		return s.F[i-1]
	}
	ctx = ctx.In(metrics.PhaseTree)
	lhs := c.A[i-1].MulCtx(ctx, c.B[j+1])
	rhs := c.A[j+1].MulCtx(ctx, c.B[i-1])
	return lhs.SubCtx(ctx, rhs)
}

// CheckIdentity verifies F_i = A_i·F_0 + B_i·F_1 for every i, returning
// the first violation. Used by tests and by the solver's self-check.
func (c *Cofactors) CheckIdentity(s *remseq.Sequence) error {
	for i := 0; i <= s.N; i++ {
		got := c.A[i].Mul(s.F[0]).Add(c.B[i].Mul(s.F[1]))
		if !got.Equal(s.F[i]) {
			return fmt.Errorf("tree: cofactor identity fails at i=%d", i)
		}
	}
	return nil
}

// ComputeAllViaCofactors fills every node's polynomial in the subtree
// using the cofactor route instead of the T-matrix recursion. Node
// matrices are not populated. It exists for cross-checking and for the
// ablation benchmark; the production driver uses ComputePoly.
func ComputeAllViaCofactors(s *remseq.Sequence, ctx metrics.Ctx, root *Node) {
	c := ComputeCofactors(s, ctx)
	root.Walk(func(nd *Node) {
		nd.P = c.P(s, ctx, nd.I, nd.J)
	})
}

// TViaCofactors assembles the full T_{i,j} matrix from cofactor P's by
// Appendix A Eq. 54 (valid for i < j < n):
//
//	T_{i,j} = [ -P_{i+1,j-1}  P_{i,j-1} ]
//	          [ -P_{i+1,j}    P_{i,j}   ]
//
// with the degenerate entry interpreted as P_{b+1,b} = c_b² — the value
// the matrix identity actually requires (T_{b+1,b} = c_b²·I), rather
// than Eq. 5's standalone convention P_{i,j} = 1 for i > j.
func (c *Cofactors) TViaCofactors(s *remseq.Sequence, ctx metrics.Ctx, i, j int) *Matrix2 {
	neg := func(p *poly.Poly) *poly.Poly { return p.Neg() }
	pij := func(a, b int) *poly.Poly {
		if a == b+1 {
			return poly.Constant(s.Csq(b))
		}
		if a > b {
			panic(fmt.Sprintf("tree: degenerate P_{%d,%d} beyond one step", a, b))
		}
		return c.P(s, ctx, a, b)
	}
	return &Matrix2{
		{neg(pij(i+1, j-1)), pij(i, j-1)},
		{neg(pij(i+1, j)), pij(i, j)},
	}
}

package tree

import (
	"fmt"
	"testing"

	"realroots/internal/metrics"
	"realroots/internal/remseq"
	"realroots/internal/workload"
)

func benchSeq(b *testing.B, n int) *remseq.Sequence {
	b.Helper()
	p := workload.CharPoly01(1, n)
	s, err := remseq.Compute(p, remseq.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkComputeAll compares the bottom-up T-matrix route against the
// cofactor route of §2.1 (DESIGN.md ablation: why the paper computes
// the tree bottom-up).
func BenchmarkComputeAll(b *testing.B) {
	for _, n := range []int{20, 40} {
		s := benchSeq(b, n)
		b.Run(fmt.Sprintf("tmatrix/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ComputeAllSequential(s, metrics.Ctx{}, Build(n))
			}
		})
		b.Run(fmt.Sprintf("cofactor/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ComputeAllViaCofactors(s, metrics.Ctx{}, Build(n))
			}
		})
	}
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Build(127)
	}
}

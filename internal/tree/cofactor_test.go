package tree

import (
	"math/rand"
	"testing"

	"realroots/internal/metrics"
	"realroots/internal/poly"
)

func TestCofactorIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(81))
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(9)
		p := poly.FromRoots(distinctRoots(r, n)...)
		s := seqFor(t, p)
		c := ComputeCofactors(s, metrics.Ctx{})
		if err := c.CheckIdentity(s); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestCofactorBaseCases(t *testing.T) {
	r := rand.New(rand.NewSource(82))
	p := poly.FromRoots(distinctRoots(r, 6)...)
	s := seqFor(t, p)
	c := ComputeCofactors(s, metrics.Ctx{})
	if !c.A[0].Equal(poly.FromInt64s(1)) || !c.B[0].IsZero() {
		t.Errorf("A_0=%s B_0=%s", c.A[0], c.B[0])
	}
	if !c.A[1].IsZero() || !c.B[1].Equal(poly.FromInt64s(1)) {
		t.Errorf("A_1=%s B_1=%s", c.A[1], c.B[1])
	}
	// A_2 = -c_1², B_2 = Q_1 (from S_1).
	wantA2 := poly.Constant(s.Csq(1)).Neg()
	if !c.A[2].Equal(wantA2) || !c.B[2].Equal(s.Q[1]) {
		t.Errorf("A_2=%s B_2=%s", c.A[2], c.B[2])
	}
}

func TestCofactorRouteMatchesTreeRoute(t *testing.T) {
	// Eq. 5 and the T-matrix recursion must produce identical
	// polynomials at every node; Eq. 54 must reproduce the full matrix.
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 8; trial++ {
		n := 3 + r.Intn(9)
		p := poly.FromRoots(distinctRoots(r, n)...)
		s := seqFor(t, p)
		root := Build(n)
		ComputeAllSequential(s, metrics.Ctx{}, root)
		c := ComputeCofactors(s, metrics.Ctx{})
		root.Walk(func(nd *Node) {
			want := c.P(s, metrics.Ctx{}, nd.I, nd.J)
			if !nd.P.Equal(want) {
				t.Fatalf("n=%d node %s: tree %s != cofactor %s", n, nd.Label(), nd.P, want)
			}
			if nd.J < n && !nd.IsLeaf() {
				m := c.TViaCofactors(s, metrics.Ctx{}, nd.I, nd.J)
				for a := 0; a < 2; a++ {
					for b := 0; b < 2; b++ {
						if !nd.T[a][b].Equal(m[a][b]) {
							t.Fatalf("n=%d node %s entry (%d,%d): Eq. 54 mismatch", n, nd.Label(), a, b)
						}
					}
				}
			}
		})
	}
}

func TestComputeAllViaCofactors(t *testing.T) {
	r := rand.New(rand.NewSource(84))
	n := 10
	p := poly.FromRoots(distinctRoots(r, n)...)
	s := seqFor(t, p)

	viaTree := Build(n)
	ComputeAllSequential(s, metrics.Ctx{}, viaTree)
	viaCof := Build(n)
	ComputeAllViaCofactors(s, metrics.Ctx{}, viaCof)

	a, b := map[string]*poly.Poly{}, map[string]*poly.Poly{}
	viaTree.Walk(func(nd *Node) { a[nd.Label()] = nd.P })
	viaCof.Walk(func(nd *Node) { b[nd.Label()] = nd.P })
	for label, pa := range a {
		if !pa.Equal(b[label]) {
			t.Fatalf("node %s differs between routes", label)
		}
	}
	if err := CheckShape(viaCof, n); err != nil {
		t.Fatal(err)
	}
}

func TestCofactorPanicsOutOfRange(t *testing.T) {
	r := rand.New(rand.NewSource(85))
	p := poly.FromRoots(distinctRoots(r, 4)...)
	s := seqFor(t, p)
	c := ComputeCofactors(s, metrics.Ctx{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range indices")
		}
	}()
	c.P(s, metrics.Ctx{}, 0, 2)
}

func TestCofactorCostExceedsTreeCost(t *testing.T) {
	// The ablation point: computing every P_{i,j} from cofactors costs
	// more multiplications than the bottom-up T recursion for moderate
	// n, which is why the paper computes the tree bottom-up.
	r := rand.New(rand.NewSource(86))
	n := 15
	p := poly.FromRoots(distinctRoots(r, n)...)
	s := seqFor(t, p)

	var ct, cc metrics.Counters
	rootT := Build(n)
	ComputeAllSequential(s, metrics.Ctx{C: &ct}, rootT)
	rootC := Build(n)
	ComputeAllViaCofactors(s, metrics.Ctx{C: &cc}, rootC)

	treeBits := ct.Snapshot().Phases[metrics.PhaseTree].MulBits
	cofBits := cc.Snapshot().Phases[metrics.PhaseTree].MulBits
	if cofBits <= treeBits {
		t.Logf("tree %d bits, cofactor %d bits", treeBits, cofBits)
		t.Skip("cofactor route unexpectedly cheap at this size; ablation bench covers larger n")
	}
}

// Package tree builds the binary tree of interleaving polynomials
// P_{i,j} (paper §2.1). Each node [i,j] carries the polynomial
// P_{i,j}(x) of degree j-i+1 whose roots are isolated by the roots of
// its two children [i,k-1] and [k+1,j]; polynomials are represented by
// the integer 2×2 matrices
//
//	T_{i,j} = [ -P_{i+1,j-1}  P_{i,j-1} ]
//	          [ -P_{i+1,j}    P_{i,j}   ]      (Appendix A, Eq. 54)
//
// computed bottom-up by T_{i,j} = T_{k+1,j}·Ŝ_k·T_{i,k-1} / (c_k²c_{k-1}²)
// with Ŝ_k = c_{k-1}²·S_k = [[0, c_{k-1}²], [-c_k², Q_k]] (Eq. 9), where
// every division is exact. Nodes on the rightmost spine [i,n] take their
// polynomial P_{i,n} = F_{i-1} directly from the precomputed remainder
// sequence and perform no matrix products, matching the paper's
// accounting (§4.2 analyses only non-rightmost nodes; §4.3 costs the
// rightmost ones separately).
package tree

import (
	"fmt"

	"realroots/internal/dyadic"
	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/remseq"
)

// A Matrix2 is a 2×2 matrix of integer polynomials.
type Matrix2 [2][2]*poly.Poly

// Mul returns a·b, recording coefficient multiplications in ctx.
func (a *Matrix2) Mul(ctx metrics.Ctx, b *Matrix2) *Matrix2 {
	var z Matrix2
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			z[r][c] = MulEntry(ctx, a, b, r, c)
		}
	}
	return &z
}

// MulEntry returns entry (r, c) of a·b. The parallel implementation
// splits each matrix product into these four entry computations, one
// task per entry (§3.2).
func MulEntry(ctx metrics.Ctx, a, b *Matrix2, r, c int) *poly.Poly {
	return a[r][0].MulCtx(ctx, b[0][c]).AddCtx(ctx, a[r][1].MulCtx(ctx, b[1][c]))
}

// DivExact returns a with every entry divided exactly by v.
func (a *Matrix2) DivExact(ctx metrics.Ctx, v *mp.Int) *Matrix2 {
	var z Matrix2
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			z[r][c] = a[r][c].DivExactIntCtx(ctx, v)
		}
	}
	return &z
}

// A Node is the tree node [i,j], representing P_{i,j}.
type Node struct {
	I, J int // 1 ≤ I ≤ J ≤ n
	K    int // split index: children are [I, K-1] and [K+1, J]; 0 for leaves

	Left, Right *Node // Right is nil when K == J (empty right child) or at leaves
	Parent      *Node

	P *poly.Poly // P_{i,j}, filled by ComputePoly
	T *Matrix2   // T_{i,j}; nil for rightmost nodes (J == n)

	// Roots holds the sorted µ-approximations of P's roots once the
	// node's interval problems have been solved.
	Roots []dyadic.Dyadic
}

// Size returns the number of roots of P_{i,j}, i.e. its degree j-i+1.
func (nd *Node) Size() int { return nd.J - nd.I + 1 }

// IsLeaf reports whether the node is a leaf [i,i].
func (nd *Node) IsLeaf() bool { return nd.I == nd.J }

// Label returns the "[i,j]" form used in the paper.
func (nd *Node) Label() string { return fmt.Sprintf("[%d,%d]", nd.I, nd.J) }

// Split returns the split index k for the interval [i,j]: the midpoint
// ⌊(i+j)/2⌋ for size ≥ 3 (keeping the tree balanced, §2.1), and j for
// size 2, where the right child [j+1, j] is empty and the single
// interleaving polynomial is P_{i,i}.
func Split(i, j int) int {
	if j-i+1 == 2 {
		return j
	}
	return (i + j) / 2
}

// Build constructs the tree skeleton over [1, n] (the top-down RECURSE
// phase of §3.2, without any polynomial computation). n ≥ 1.
func Build(n int) *Node {
	if n < 1 {
		panic(fmt.Sprintf("tree: invalid degree %d", n))
	}
	return build(1, n, nil)
}

func build(i, j int, parent *Node) *Node {
	nd := &Node{I: i, J: j, Parent: parent}
	if i == j {
		return nd
	}
	k := Split(i, j)
	nd.K = k
	nd.Left = build(i, k-1, nd)
	if k < j {
		nd.Right = build(k+1, j, nd)
	}
	return nd
}

// Walk visits every node in post-order (children before parents), the
// order in which polynomials can be computed sequentially.
func (nd *Node) Walk(f func(*Node)) {
	if nd.Left != nil {
		nd.Left.Walk(f)
	}
	if nd.Right != nil {
		nd.Right.Walk(f)
	}
	f(nd)
}

// Count returns the number of nodes in the subtree.
func (nd *Node) Count() int {
	n := 0
	nd.Walk(func(*Node) { n++ })
	return n
}

// SHat returns Ŝ_k = c_{k-1}²·S_k = [[0, c_{k-1}²], [-c_k², Q_k]] as an
// integer polynomial matrix (Eq. 9; for k = 1, c_0² = 1 by the Appendix
// A convention, giving Eq. 1's S_1 exactly).
func SHat(s *remseq.Sequence, k int) *Matrix2 {
	return &Matrix2{
		{poly.Zero(), poly.Constant(s.Csq(k - 1))},
		{poly.Constant(new(mp.Int).Neg(s.Csq(k))), s.Q[k].Clone()},
	}
}

// ComputePoly fills nd.P (and nd.T for non-rightmost nodes) from the
// remainder sequence and the children's already-computed matrices. For
// a non-rightmost internal node this performs the two 2×2 polynomial
// matrix products of Eq. 9; the scheduler-facing pieces of that product
// are exposed separately via MulEntry for the task-per-entry
// decomposition, and ComputePoly is the sequential composition of them.
func ComputePoly(s *remseq.Sequence, ctx metrics.Ctx, nd *Node) {
	ctx = ctx.In(metrics.PhaseTree)
	n := s.N
	if nd.J == n {
		// Rightmost spine: P_{i,n} = F_{i-1}, precomputed.
		nd.P = s.F[nd.I-1]
		return
	}
	if nd.IsLeaf() {
		nd.T = SHat(s, nd.I)
		nd.P = nd.T[1][1]
		return
	}
	k := nd.K
	m1 := SHat(s, k).Mul(ctx, nd.Left.T) // Ŝ_k · T_{i,k-1}
	var prod *Matrix2
	divisor := new(mp.Int).MulProfile(ctx.Profile, s.Csq(k), s.Csq(k-1))
	if nd.Right != nil {
		prod = nd.Right.T.Mul(ctx, m1) // T_{k+1,j} · (Ŝ_k · T_{i,k-1})
	} else {
		// Empty right child (k == j): T_{j+1,j} acts as c_j²·I, so the
		// second product is a scalar multiple; fold it into the divisor:
		// T = Ŝ_j·T_{i,j-1} / c_{j-1}².
		prod = m1
		divisor = s.Csq(k - 1)
	}
	nd.T = prod.DivExact(ctx, divisor)
	nd.P = nd.T[1][1]
}

// ComputeAllSequential computes every polynomial in the subtree in
// post-order. The parallel driver in internal/core replaces this with
// the task-graph version; results are identical.
func ComputeAllSequential(s *remseq.Sequence, ctx metrics.Ctx, root *Node) {
	root.Walk(func(nd *Node) { ComputePoly(s, ctx, nd) })
}

// CheckShape verifies the structural invariants of Theorem 1 on a
// computed subtree: deg P_{i,j} = j-i+1 and positive leading
// coefficients for all non-rightmost nodes. It returns the first
// violation found, and is used by tests and by the solver's optional
// self-check mode.
func CheckShape(root *Node, n int) error {
	var err error
	root.Walk(func(nd *Node) {
		if err != nil {
			return
		}
		if nd.P == nil {
			err = fmt.Errorf("tree: node %s has no polynomial", nd.Label())
			return
		}
		if got, want := nd.P.Degree(), nd.Size(); got != want {
			err = fmt.Errorf("tree: node %s has degree %d, want %d", nd.Label(), got, want)
			return
		}
		if nd.J < n && nd.P.Lead().Sign() <= 0 {
			err = fmt.Errorf("tree: node %s has non-positive leading coefficient", nd.Label())
		}
	})
	return err
}

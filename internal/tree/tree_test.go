package tree

import (
	"math/rand"
	"testing"

	"realroots/internal/metrics"
	"realroots/internal/mp"
	"realroots/internal/poly"
	"realroots/internal/remseq"
)

func seqFor(t *testing.T, p *poly.Poly) *remseq.Sequence {
	t.Helper()
	s, err := remseq.Compute(p, remseq.Options{})
	if err != nil {
		t.Fatalf("remseq(%s): %v", p, err)
	}
	return s
}

func distinctRoots(r *rand.Rand, k int) []*mp.Int {
	seen := map[int64]bool{}
	var roots []*mp.Int
	for len(roots) < k {
		v := int64(r.Intn(61) - 30)
		if !seen[v] {
			seen[v] = true
			roots = append(roots, mp.NewInt(v))
		}
	}
	return roots
}

// refT computes T_{i,j} directly from the definition:
// T_{i,j} = (Ŝ_j·Ŝ_{j-1}···Ŝ_i) / ∏_{m=i}^{j-1} c_m². An independent
// oracle for the tree's divide-and-conquer computation.
func refT(s *remseq.Sequence, i, j int) *Matrix2 {
	ctx := metrics.Ctx{}
	m := SHat(s, i)
	div := mp.NewInt(1)
	for k := i + 1; k <= j; k++ {
		m = SHat(s, k).Mul(ctx, m)
		div = new(mp.Int).Mul(div, s.Csq(k-1))
	}
	return m.DivExact(ctx, div)
}

func TestBuildShape(t *testing.T) {
	root := Build(7)
	if root.I != 1 || root.J != 7 {
		t.Fatalf("root = %s", root.Label())
	}
	// n = 7 = 2^3-1: perfectly balanced, 4 is the split.
	if root.K != 4 {
		t.Fatalf("root split = %d", root.K)
	}
	if root.Left.Label() != "[1,3]" || root.Right.Label() != "[5,7]" {
		t.Fatalf("children = %s, %s", root.Left.Label(), root.Right.Label())
	}
	// Every leaf is [i,i]; interval sizes of children sum to parent-1.
	root.Walk(func(nd *Node) {
		if nd.IsLeaf() {
			if nd.Left != nil || nd.Right != nil {
				t.Errorf("leaf %s has children", nd.Label())
			}
			return
		}
		sz := nd.Left.Size()
		if nd.Right != nil {
			sz += nd.Right.Size()
		}
		if sz != nd.Size()-1 {
			t.Errorf("node %s: child sizes sum to %d, want %d", nd.Label(), sz, nd.Size()-1)
		}
	})
}

func TestBuildSizeTwo(t *testing.T) {
	root := Build(2)
	if root.K != 2 || root.Right != nil || root.Left.Label() != "[1,1]" {
		t.Fatalf("size-2 split: k=%d left=%v right=%v", root.K, root.Left, root.Right)
	}
}

func TestBuildDegenerate(t *testing.T) {
	if Build(1).Count() != 1 {
		t.Fatal("n=1 tree")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Build(0) did not panic")
		}
	}()
	Build(0)
}

func TestSplitBalance(t *testing.T) {
	for i := 1; i <= 20; i++ {
		for j := i + 1; j <= 25; j++ {
			k := Split(i, j)
			if k < i || k > j {
				t.Fatalf("Split(%d,%d) = %d out of range", i, j, k)
			}
			left := k - i  // size of [i, k-1]
			right := j - k // size of [k+1, j]
			if left+right != j-i {
				t.Fatalf("Split(%d,%d): sizes %d+%d", i, j, left, right)
			}
			if j-i+1 >= 3 && (left == 0 || right == 0) {
				t.Fatalf("Split(%d,%d) produced empty child for size ≥ 3", i, j)
			}
			if d := left - right; d < -1 || d > 1 {
				t.Fatalf("Split(%d,%d) unbalanced: %d vs %d", i, j, left, right)
			}
		}
	}
}

func TestComputeMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 12; trial++ {
		n := 3 + r.Intn(8)
		p := poly.FromRoots(distinctRoots(r, n)...)
		s := seqFor(t, p)
		root := Build(n)
		ComputeAllSequential(s, metrics.Ctx{}, root)
		root.Walk(func(nd *Node) {
			if nd.J == s.N {
				if !nd.P.Equal(s.F[nd.I-1]) {
					t.Fatalf("rightmost %s != F_%d", nd.Label(), nd.I-1)
				}
				return
			}
			want := refT(s, nd.I, nd.J)
			for a := 0; a < 2; a++ {
				for b := 0; b < 2; b++ {
					if !nd.T[a][b].Equal(want[a][b]) {
						t.Fatalf("T%s[%d][%d] mismatch (n=%d):\n got %s\nwant %s",
							nd.Label(), a, b, n, nd.T[a][b], want[a][b])
					}
				}
			}
		})
		if err := CheckShape(root, n); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTheorem1Degrees(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	n := 9
	p := poly.FromRoots(distinctRoots(r, n)...)
	s := seqFor(t, p)
	root := Build(n)
	ComputeAllSequential(s, metrics.Ctx{}, root)
	root.Walk(func(nd *Node) {
		if nd.P.Degree() != nd.Size() {
			t.Errorf("%s: degree %d, want %d", nd.Label(), nd.P.Degree(), nd.Size())
		}
	})
}

func TestMatrixEntriesAreConsistentAcrossNodes(t *testing.T) {
	// Appendix A Eq. 54: T_{i,j}(2,2) = P_{i,j} and T_{i,j}(1,2) = P_{i,j-1}.
	// So a node [i,j] and the node [i,j-1] (when it exists in another part
	// of the recursion) would agree; verify against refT entries directly.
	r := rand.New(rand.NewSource(53))
	n := 7
	p := poly.FromRoots(distinctRoots(r, n)...)
	s := seqFor(t, p)
	// P_{i,i} = Q_i for every i < n.
	for i := 1; i < n; i++ {
		ref := refT(s, i, i)
		if !ref[1][1].Equal(s.Q[i]) {
			t.Errorf("P_{%d,%d} != Q_%d", i, i, i)
		}
	}
	// Leaves computed by SHat match refT.
	for i := 1; i < n; i++ {
		sh := SHat(s, i)
		ref := refT(s, i, i)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				if !sh[a][b].Equal(ref[a][b]) {
					t.Fatalf("SHat(%d)[%d][%d] != T_{%d,%d}", i, a, b, i, i)
				}
			}
		}
	}
}

func TestRootPolynomialIsF0ForRightmost(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	n := 6
	p := poly.FromRoots(distinctRoots(r, n)...)
	s := seqFor(t, p)
	root := Build(n)
	ComputeAllSequential(s, metrics.Ctx{}, root)
	if !root.P.Equal(p) {
		t.Fatalf("P_{1,%d} != F_0", n)
	}
}

func TestInterleavingViaSturm(t *testing.T) {
	// Theorem 1(ii): for each non-leaf node, between consecutive roots of
	// the parent there is exactly one child root. Verify the contrapositive
	// count form: the union of child roots has exactly size-1 elements and
	// the parent has `size` real roots — and the parent's polynomial
	// changes sign across each child root (checked at the exact child
	// roots when they are rational; here we use integer-rooted F_0 and
	// check interleaving only for the root node where child roots are
	// algebraic — so instead use Sturm: the number of parent roots below
	// each child root position, sampled via the child's own sign changes,
	// must step by one. We approximate with a fine integer grid check:
	// counting sign changes of parent and children over [-64, 64].
	r := rand.New(rand.NewSource(55))
	n := 8
	p := poly.FromRoots(distinctRoots(r, n)...)
	s := seqFor(t, p)
	root := Build(n)
	ComputeAllSequential(s, metrics.Ctx{}, root)

	// For each node, walk a fine dyadic grid; between consecutive sign
	// changes of the parent there must be at least one sign change of the
	// children's product (interleaving), scanned at resolution 2^-6.
	const scale = 6
	lo, hi := int64(-64<<scale), int64(64<<scale)
	step := int64(1) << (scale - 2) // coarse enough to be fast, fine enough for these roots
	root.Walk(func(nd *Node) {
		if nd.IsLeaf() || nd.Size() < 3 {
			return
		}
		childProd := nd.Left.P.Clone()
		if nd.Right != nil {
			childProd = childProd.Mul(nd.Right.P)
		}
		var parentChanges, between []int64
		prevP, prevC := 0, 0
		for v := lo; v <= hi; v += step {
			x := mp.NewInt(v)
			sp := nd.P.SignAt(x, scale)
			sc := childProd.SignAt(x, scale)
			if prevP != 0 && sp != 0 && sp != prevP {
				parentChanges = append(parentChanges, v)
			}
			if prevC != 0 && sc != 0 && sc != prevC {
				between = append(between, v)
			}
			if sp != 0 {
				prevP = sp
			}
			if sc != 0 {
				prevC = sc
			}
		}
		if len(parentChanges) != nd.Size() {
			t.Fatalf("%s: found %d parent sign changes, want %d", nd.Label(), len(parentChanges), nd.Size())
		}
		// Between consecutive parent roots there must be ≥ 1 child root.
		for i := 0; i+1 < len(parentChanges); i++ {
			found := false
			for _, b := range between {
				if b > parentChanges[i]-step && b <= parentChanges[i+1] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: no child root between parent roots near %d and %d",
					nd.Label(), parentChanges[i], parentChanges[i+1])
			}
		}
	})
}

func TestCheckShapeReportsMissingPoly(t *testing.T) {
	root := Build(3)
	if err := CheckShape(root, 3); err == nil {
		t.Fatal("CheckShape accepted uncomputed tree")
	}
}

func TestWalkPostOrder(t *testing.T) {
	root := Build(7)
	seen := map[string]bool{}
	root.Walk(func(nd *Node) {
		if nd.Left != nil && !seen[nd.Left.Label()] {
			t.Fatalf("visited %s before left child", nd.Label())
		}
		if nd.Right != nil && !seen[nd.Right.Label()] {
			t.Fatalf("visited %s before right child", nd.Label())
		}
		seen[nd.Label()] = true
	})
	if !seen["[1,7]"] {
		t.Fatal("root not visited")
	}
}

func TestTreeMultiplicationCountsRecorded(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	n := 7
	p := poly.FromRoots(distinctRoots(r, n)...)
	s := seqFor(t, p)
	root := Build(n)
	var c metrics.Counters
	ComputeAllSequential(s, metrics.Ctx{C: &c}, root)
	rep := c.Snapshot()
	if rep.Phases[metrics.PhaseTree].Muls == 0 {
		t.Fatal("no tree multiplications recorded")
	}
	if rep.Phases[metrics.PhaseRemainder].Muls != 0 {
		t.Fatal("tree work recorded in wrong phase")
	}
}

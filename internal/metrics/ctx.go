package metrics

import "realroots/internal/mp"

// Ctx bundles a counter sink with the phase it attributes work to and
// the arithmetic profile the run executes under. The arithmetic helpers
// below are the instrumented entry points used in the algorithm's hot
// paths; they record the operation before performing it with
// internal/mp, dispatching to the profile's algorithms. Carrying the
// profile here — as a per-operation value rather than package state —
// is what lets concurrent solves run under different profiles without
// any synchronization. A zero Ctx (nil Counters) performs schoolbook
// arithmetic without recording.
//
// Recording is profile-independent: both profiles log the same
// operation counts and the same model cost (the paper's §4 schoolbook
// measure), so paper-mode traces are unchanged by this machinery; only
// the actual-cost fields and the wall time differ between profiles.
type Ctx struct {
	C       *Counters
	Phase   Phase
	Profile mp.Profile
	// Par, when non-nil, is the scheduler hook offered huge balanced
	// products (the mp parallel multiplication path). Like Profile it is
	// per-operation state, never a package global; a nil Par keeps every
	// product serial. Results are bit-identical either way.
	Par mp.Parallel
}

// In returns a copy of the context attributed to phase p.
func (c Ctx) In(p Phase) Ctx { return Ctx{C: c.C, Phase: p, Profile: c.Profile, Par: c.Par} }

// recordMul logs one multiplication with its model and actual cost,
// plus — under Fast, the only profile with more than one kernel — the
// tier it dispatches to and whether the parallel path engages.
func (c Ctx) recordMul(xbits, ybits int) {
	if c.C == nil {
		return
	}
	c.C.AddMulCost(c.Phase, xbits, ybits, c.Profile.MulCost(xbits, ybits))
	if c.Profile == mp.Fast {
		c.C.AddMulTier(c.Phase, c.Profile.MulTier(xbits, ybits))
		if c.Par != nil && c.Profile.MulParallelEngages(xbits, ybits) {
			c.C.AddParMul(c.Phase)
		}
	}
}

// recordDiv logs one division with its model and actual cost.
func (c Ctx) recordDiv(xbits, ybits int) {
	if c.C == nil {
		return
	}
	c.C.AddDivCost(c.Phase, xbits, ybits, c.Profile.DivCost(xbits, ybits))
}

// Mul returns a new Int holding x*y, recording the multiplication.
func (c Ctx) Mul(x, y *mp.Int) *mp.Int {
	c.recordMul(x.BitLen(), y.BitLen())
	if c.Par != nil {
		return new(mp.Int).MulParallelProfile(c.Profile, c.Par, x, y)
	}
	return new(mp.Int).MulProfile(c.Profile, x, y)
}

// MulInto sets z = x*y, recording the multiplication.
func (c Ctx) MulInto(z, x, y *mp.Int) *mp.Int {
	c.recordMul(x.BitLen(), y.BitLen())
	if c.Par != nil {
		return z.MulParallelProfile(c.Profile, c.Par, x, y)
	}
	return z.MulProfile(c.Profile, x, y)
}

// Sqr returns a new Int holding x², recording it as a multiplication.
func (c Ctx) Sqr(x *mp.Int) *mp.Int {
	b := x.BitLen()
	c.recordMul(b, b)
	if c.Par != nil && c.Profile.MulParallelEngages(b, b) {
		return new(mp.Int).MulParallelProfile(c.Profile, c.Par, x, x)
	}
	return new(mp.Int).SqrProfile(c.Profile, x)
}

// QuoRem sets z = x quo y and r = x rem y (truncated division),
// recording the division, and returns (z, r).
func (c Ctx) QuoRem(z, x, y, r *mp.Int) (*mp.Int, *mp.Int) {
	c.recordDiv(x.BitLen(), y.BitLen())
	return z.QuoRemProfile(c.Profile, x, y, r)
}

// DivExact returns a new Int holding x/y (exact), recording the division.
func (c Ctx) DivExact(x, y *mp.Int) *mp.Int {
	c.recordDiv(x.BitLen(), y.BitLen())
	return new(mp.Int).DivExactProfile(c.Profile, x, y)
}

// DivExactInto sets z = x/y (exact), recording the division.
func (c Ctx) DivExactInto(z, x, y *mp.Int) *mp.Int {
	c.recordDiv(x.BitLen(), y.BitLen())
	return z.DivExactProfile(c.Profile, x, y)
}

// Add returns a new Int holding x+y, recording the addition.
func (c Ctx) Add(x, y *mp.Int) *mp.Int {
	c.C.AddAdd(c.Phase)
	return new(mp.Int).Add(x, y)
}

// Sub returns a new Int holding x-y, recording the subtraction.
func (c Ctx) Sub(x, y *mp.Int) *mp.Int {
	c.C.AddAdd(c.Phase)
	return new(mp.Int).Sub(x, y)
}

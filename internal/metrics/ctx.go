package metrics

import "realroots/internal/mp"

// Ctx bundles a counter sink with the phase it attributes work to. The
// arithmetic helpers below are the instrumented entry points used in the
// algorithm's hot paths; they record the operation before performing it
// with internal/mp. A zero Ctx (nil Counters) performs the arithmetic
// without recording.
type Ctx struct {
	C     *Counters
	Phase Phase
}

// In returns a copy of the context attributed to phase p.
func (c Ctx) In(p Phase) Ctx { return Ctx{C: c.C, Phase: p} }

// Mul returns a new Int holding x*y, recording the multiplication.
func (c Ctx) Mul(x, y *mp.Int) *mp.Int {
	c.C.AddMul(c.Phase, x.BitLen(), y.BitLen())
	return new(mp.Int).Mul(x, y)
}

// MulInto sets z = x*y, recording the multiplication.
func (c Ctx) MulInto(z, x, y *mp.Int) *mp.Int {
	c.C.AddMul(c.Phase, x.BitLen(), y.BitLen())
	return z.Mul(x, y)
}

// Sqr returns a new Int holding x², recording it as a multiplication.
func (c Ctx) Sqr(x *mp.Int) *mp.Int {
	c.C.AddMul(c.Phase, x.BitLen(), x.BitLen())
	return new(mp.Int).Sqr(x)
}

// DivExact returns a new Int holding x/y (exact), recording the division.
func (c Ctx) DivExact(x, y *mp.Int) *mp.Int {
	c.C.AddDiv(c.Phase, x.BitLen(), y.BitLen())
	return new(mp.Int).DivExact(x, y)
}

// DivExactInto sets z = x/y (exact), recording the division.
func (c Ctx) DivExactInto(z, x, y *mp.Int) *mp.Int {
	c.C.AddDiv(c.Phase, x.BitLen(), y.BitLen())
	return z.DivExact(x, y)
}

// Add returns a new Int holding x+y, recording the addition.
func (c Ctx) Add(x, y *mp.Int) *mp.Int {
	c.C.AddAdd(c.Phase)
	return new(mp.Int).Add(x, y)
}

// Sub returns a new Int holding x-y, recording the subtraction.
func (c Ctx) Sub(x, y *mp.Int) *mp.Int {
	c.C.AddAdd(c.Phase)
	return new(mp.Int).Sub(x, y)
}

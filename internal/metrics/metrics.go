// Package metrics provides per-phase instrumentation of the big-integer
// arithmetic performed by the root-finding algorithm. The paper (§4, §5.1)
// validates its analysis by tracing the number of multiplications and
// their bit complexity in each phase; this package is the tracing
// machinery that regenerates Figures 2 through 7.
//
// Counters are updated atomically so that all scheduler workers can share
// one Counters value.
package metrics

import (
	"fmt"
	mathbits "math/bits"
	"sync/atomic"

	"realroots/internal/mp"
)

// Phase identifies one of the algorithm's sub-computations. The phases
// mirror the paper's decomposition: the remainder sequence (§3.1), the
// tree polynomial products (§3.2), sorting/merging of roots, the
// pre-interval polynomial evaluations, and the three sub-phases of the
// hybrid interval solver (double-exponential sieve, bisection, Newton;
// §2.2, Eq. 38).
type Phase int

const (
	PhaseRemainder Phase = iota
	PhaseTree
	PhaseSort
	PhasePreInterval
	PhaseSieve
	PhaseBisection
	PhaseNewton
	PhaseCharPoly
	PhaseOther
	NumPhases
)

var phaseNames = [NumPhases]string{
	"remainder", "tree", "sort", "preinterval", "sieve", "bisection", "newton", "charpoly", "other",
}

// String returns the phase name.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return fmt.Sprintf("phase(%d)", int(p))
	}
	return phaseNames[p]
}

// IntervalPhases lists the three sub-phases of the interval solver.
var IntervalPhases = []Phase{PhaseSieve, PhaseBisection, PhaseNewton}

// AllPhases lists every phase in order.
func AllPhases() []Phase {
	ps := make([]Phase, NumPhases)
	for i := range ps {
		ps[i] = Phase(i)
	}
	return ps
}

// BitLenBuckets is the number of log₂ bit-length histogram buckets.
// Bucket 0 counts zero-bit operands; bucket b ≥ 1 counts operations
// whose larger operand has a bit length in [2^(b-1), 2^b). The top
// bucket absorbs everything larger (≥ 2^(BitLenBuckets-2) bits — far
// beyond any operand this algorithm produces).
const BitLenBuckets = 20

// bitLenBucket maps an operand bit length to its histogram bucket.
func bitLenBucket(bits int) int {
	if bits <= 0 {
		return 0
	}
	b := mathbits.Len(uint(bits))
	if b >= BitLenBuckets {
		b = BitLenBuckets - 1
	}
	return b
}

// BucketRange describes histogram bucket b as the half-open bit-length
// interval [lo, hi) it counts (hi = 0 for the unbounded top bucket).
func BucketRange(b int) (lo, hi int) {
	switch {
	case b <= 0:
		return 0, 1
	case b >= BitLenBuckets-1:
		return 1 << (BitLenBuckets - 2), 0
	default:
		return 1 << (b - 1), 1 << b
	}
}

// Counters accumulates arithmetic operation counts per phase. The zero
// value is ready to use. A nil *Counters is valid everywhere and records
// nothing, so instrumentation can be disabled without branching at call
// sites.
type Counters struct {
	mul     [NumPhases]atomic.Int64 // number of multiplications
	mulBits [NumPhases]atomic.Int64 // Σ bitlen(x)·bitlen(y) over multiplications
	div     [NumPhases]atomic.Int64 // number of divisions
	divBits [NumPhases]atomic.Int64 // Σ bitlen(x)·bitlen(y) over divisions
	add     [NumPhases]atomic.Int64 // number of additions/subtractions
	evals   [NumPhases]atomic.Int64 // number of full polynomial evaluations

	// Actual-cost estimates (see AddMulCost): Σ over operations of the
	// cost of the algorithm the arithmetic profile actually ran, as
	// opposed to the paper's schoolbook model cost in mulBits/divBits.
	// Equal to the model sums under the schoolbook profile.
	mulBitsActual [NumPhases]atomic.Int64
	divBitsActual [NumPhases]atomic.Int64

	// hist is the per-phase operand-size distribution: for every
	// multiplication and division, the log₂ bucket of the larger
	// operand's bit length (see BitLenBuckets).
	hist [NumPhases][BitLenBuckets]atomic.Int64

	// tiers counts multiplications by the kernel tier they dispatched
	// to (mp.Profile.MulTier), and parMuls counts products that took
	// the parallel panel path. Both are recorded only under the Fast
	// profile — schoolbook runs have a single implicit tier, and
	// leaving them untouched keeps paper-mode reports byte-identical
	// to pre-tier snapshots.
	tiers   [NumPhases][mp.NumTiers]atomic.Int64
	parMuls [NumPhases]atomic.Int64

	// Budget enforcement (see SetBudget): bitOps aggregates
	// mulBits+divBits across all phases so the limit check is one
	// atomic load per operation.
	bitOps   atomic.Int64
	budget   atomic.Int64 // 0 = unlimited
	tripped  atomic.Bool
	onExceed atomic.Pointer[func()] // fired once, by the operation that crosses the limit
}

// SetBudget arms a bit-operation budget: once the cumulative
// Σ bitlen·bitlen over multiplications and divisions (BitOps) exceeds
// maxBits, onExceed (if non-nil) fires exactly once and BudgetExceeded
// reports true. maxBits ≤ 0 disarms the budget. SetBudget is safe to
// call concurrently with recording, though a budget re-armed mid-run
// applies only to operations that observe the new limit.
func (c *Counters) SetBudget(maxBits int64, onExceed func()) {
	if onExceed == nil {
		c.onExceed.Store(nil)
	} else {
		c.onExceed.Store(&onExceed)
	}
	c.budget.Store(maxBits)
}

// BitOps returns the cumulative Σ bitlen·bitlen over all
// multiplications and divisions in every phase — the paper's
// bit-complexity measure (§4), aggregated.
func (c *Counters) BitOps() int64 {
	if c == nil {
		return 0
	}
	return c.bitOps.Load()
}

// BudgetExceeded reports whether the budget armed by SetBudget has been
// exceeded. It is nil-safe and stays true until Reset.
func (c *Counters) BudgetExceeded() bool {
	return c != nil && c.tripped.Load()
}

// noteBits accumulates one operation's bit cost and trips the budget.
func (c *Counters) noteBits(bits int64) {
	total := c.bitOps.Add(bits)
	if lim := c.budget.Load(); lim > 0 && total > lim {
		if c.tripped.CompareAndSwap(false, true) {
			if f := c.onExceed.Load(); f != nil {
				(*f)()
			}
		}
	}
}

// noteHist records the operand-size histogram sample for one mul/div.
func (c *Counters) noteHist(p Phase, xbits, ybits int) {
	if ybits > xbits {
		xbits = ybits
	}
	c.hist[p][bitLenBucket(xbits)].Add(1)
}

// AddMul records one multiplication of xbits-by-ybits operands in phase
// p, with the actual cost equal to the schoolbook model cost.
func (c *Counters) AddMul(p Phase, xbits, ybits int) {
	c.AddMulCost(p, xbits, ybits, int64(xbits)*int64(ybits))
}

// AddMulCost records one multiplication of xbits-by-ybits operands in
// phase p. Its modeled cost — the paper's §4 bit-complexity measure,
// which assumes schoolbook arithmetic — is xbits·ybits; actual is the
// cost estimate for the algorithm the run's arithmetic profile really
// executed (Profile.MulCost). The budget armed by SetBudget is always
// charged the model cost, so budget semantics are profile-independent.
func (c *Counters) AddMulCost(p Phase, xbits, ybits int, actual int64) {
	if c == nil {
		return
	}
	c.mul[p].Add(1)
	bits := int64(xbits) * int64(ybits)
	c.mulBits[p].Add(bits)
	c.mulBitsActual[p].Add(actual)
	c.noteHist(p, xbits, ybits)
	c.noteBits(bits)
}

// AddDiv records one division in phase p, with the actual cost equal to
// the schoolbook model cost.
func (c *Counters) AddDiv(p Phase, xbits, ybits int) {
	c.AddDivCost(p, xbits, ybits, int64(xbits)*int64(ybits))
}

// AddDivCost records one division in phase p with an explicit actual
// cost; see AddMulCost.
func (c *Counters) AddDivCost(p Phase, xbits, ybits int, actual int64) {
	if c == nil {
		return
	}
	c.div[p].Add(1)
	bits := int64(xbits) * int64(ybits)
	c.divBits[p].Add(bits)
	c.divBitsActual[p].Add(actual)
	c.noteHist(p, xbits, ybits)
	c.noteBits(bits)
}

// AddMulTier attributes one multiplication in phase p to kernel tier t.
// Callers record tiers only for profiles with more than one tier (Fast);
// see the tiers field.
func (c *Counters) AddMulTier(p Phase, t mp.Tier) {
	if c == nil || int(t) >= mp.NumTiers {
		return
	}
	c.tiers[p][t].Add(1)
}

// AddParMul records that one multiplication in phase p took the
// parallel panel path.
func (c *Counters) AddParMul(p Phase) {
	if c == nil {
		return
	}
	c.parMuls[p].Add(1)
}

// AddAdd records one addition or subtraction in phase p.
func (c *Counters) AddAdd(p Phase) {
	if c == nil {
		return
	}
	c.add[p].Add(1)
}

// AddEval records one complete polynomial evaluation in phase p.
func (c *Counters) AddEval(p Phase) {
	if c == nil {
		return
	}
	c.evals[p].Add(1)
}

// Reset zeroes every counter and re-arms the budget (the limit set by
// SetBudget is kept; the exceeded state clears).
func (c *Counters) Reset() {
	if c == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		c.mul[p].Store(0)
		c.mulBits[p].Store(0)
		c.div[p].Store(0)
		c.divBits[p].Store(0)
		c.mulBitsActual[p].Store(0)
		c.divBitsActual[p].Store(0)
		c.add[p].Store(0)
		c.evals[p].Store(0)
		for b := 0; b < BitLenBuckets; b++ {
			c.hist[p][b].Store(0)
		}
		for t := 0; t < mp.NumTiers; t++ {
			c.tiers[p][t].Store(0)
		}
		c.parMuls[p].Store(0)
	}
	c.bitOps.Store(0)
	c.tripped.Store(false)
}

// PhaseReport is an immutable snapshot of one phase's counters.
type PhaseReport struct {
	Muls    int64 // multiplication count
	MulBits int64 // Σ bitlen·bitlen over multiplications ("bit complexity")
	Divs    int64
	DivBits int64
	Adds    int64
	Evals   int64
	// MulBitsActual/DivBitsActual estimate the cost of the arithmetic
	// actually executed under the run's profile (equal to MulBits/DivBits
	// under the schoolbook profile). Keeping both lets the ablation
	// experiments report the paper's model cost and the realized cost
	// side by side instead of silently conflating them.
	MulBitsActual int64
	DivBitsActual int64
	// BitLen is the operand-size distribution of the phase's
	// multiplications and divisions in log₂ buckets: BitLen[b] counts
	// operations whose larger operand's bit length falls in
	// BucketRange(b).
	BitLen [BitLenBuckets]int64
	// Tiers counts the phase's multiplications by dispatch tier and
	// ParMuls the products that took the parallel panel path; both are
	// zero outside the Fast profile (see Counters.tiers).
	Tiers   [mp.NumTiers]int64
	ParMuls int64
}

// Ops returns the phase's combined multiplication + division count
// (the histogram's total mass).
func (p PhaseReport) Ops() int64 { return p.Muls + p.Divs }

// Report is a snapshot of all phases.
type Report struct {
	Phases [NumPhases]PhaseReport
}

// Snapshot captures the current counter values.
func (c *Counters) Snapshot() Report {
	var r Report
	if c == nil {
		return r
	}
	for p := Phase(0); p < NumPhases; p++ {
		pr := PhaseReport{
			Muls:          c.mul[p].Load(),
			MulBits:       c.mulBits[p].Load(),
			Divs:          c.div[p].Load(),
			DivBits:       c.divBits[p].Load(),
			Adds:          c.add[p].Load(),
			Evals:         c.evals[p].Load(),
			MulBitsActual: c.mulBitsActual[p].Load(),
			DivBitsActual: c.divBitsActual[p].Load(),
		}
		for b := 0; b < BitLenBuckets; b++ {
			pr.BitLen[b] = c.hist[p][b].Load()
		}
		for t := 0; t < mp.NumTiers; t++ {
			pr.Tiers[t] = c.tiers[p][t].Load()
		}
		pr.ParMuls = c.parMuls[p].Load()
		r.Phases[p] = pr
	}
	return r
}

// accum adds p into t field-by-field (histogram included).
func (t *PhaseReport) accum(p PhaseReport) {
	t.Muls += p.Muls
	t.MulBits += p.MulBits
	t.Divs += p.Divs
	t.DivBits += p.DivBits
	t.Adds += p.Adds
	t.Evals += p.Evals
	t.MulBitsActual += p.MulBitsActual
	t.DivBitsActual += p.DivBitsActual
	for b := 0; b < BitLenBuckets; b++ {
		t.BitLen[b] += p.BitLen[b]
	}
	for i := 0; i < mp.NumTiers; i++ {
		t.Tiers[i] += p.Tiers[i]
	}
	t.ParMuls += p.ParMuls
}

// Total returns the sum of all phases' counters.
func (r Report) Total() PhaseReport {
	var t PhaseReport
	for _, p := range r.Phases {
		t.accum(p)
	}
	return t
}

// PeakBits returns a lower bound on the largest operand bit-length the
// run touched: the lower edge of the highest occupied bit-length
// bucket, across all phases. Coefficient growth through the splitting
// tree is the algorithm's cost driver (§4), so this is the "how big did
// the numbers actually get" health number. Returns 0 when no
// multiplications or divisions were recorded.
func (r Report) PeakBits() int {
	for b := BitLenBuckets - 1; b >= 0; b-- {
		for p := Phase(0); p < NumPhases; p++ {
			if r.Phases[p].BitLen[b] != 0 {
				lo, _ := BucketRange(b)
				return lo
			}
		}
	}
	return 0
}

// Sum returns the combined counters of the given phases.
func (r Report) Sum(phases ...Phase) PhaseReport {
	var t PhaseReport
	for _, p := range phases {
		t.accum(r.Phases[p])
	}
	return t
}

// Add returns the per-phase sum r + o, histograms included. The
// telemetry registry uses it to accumulate per-run snapshots into the
// process-lifetime totals exposed on /metrics.
func (r Report) Add(o Report) Report {
	sum := r
	for p := Phase(0); p < NumPhases; p++ {
		sum.Phases[p].accum(o.Phases[p])
	}
	return sum
}

// Sub returns the per-phase difference r - old (for interval snapshots).
func (r Report) Sub(old Report) Report {
	var d Report
	for p := Phase(0); p < NumPhases; p++ {
		a, b := r.Phases[p], old.Phases[p]
		pr := PhaseReport{
			Muls:          a.Muls - b.Muls,
			MulBits:       a.MulBits - b.MulBits,
			Divs:          a.Divs - b.Divs,
			DivBits:       a.DivBits - b.DivBits,
			Adds:          a.Adds - b.Adds,
			Evals:         a.Evals - b.Evals,
			MulBitsActual: a.MulBitsActual - b.MulBitsActual,
			DivBitsActual: a.DivBitsActual - b.DivBitsActual,
		}
		for bk := 0; bk < BitLenBuckets; bk++ {
			pr.BitLen[bk] = a.BitLen[bk] - b.BitLen[bk]
		}
		for t := 0; t < mp.NumTiers; t++ {
			pr.Tiers[t] = a.Tiers[t] - b.Tiers[t]
		}
		pr.ParMuls = a.ParMuls - b.ParMuls
		d.Phases[p] = pr
	}
	return d
}

package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestBitLenBucket(t *testing.T) {
	cases := []struct{ bits, want int }{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 18, 19}, {1 << 25, BitLenBuckets - 1},
	}
	for _, c := range cases {
		if got := bitLenBucket(c.bits); got != c.want {
			t.Errorf("bitLenBucket(%d) = %d, want %d", c.bits, got, c.want)
		}
	}
}

func TestBucketRange(t *testing.T) {
	// Every representable bit length must fall inside its bucket's range.
	for _, bits := range []int{0, 1, 2, 3, 4, 100, 1 << 10, 1 << 19} {
		b := bitLenBucket(bits)
		lo, hi := BucketRange(b)
		if bits < lo || (hi != 0 && bits >= hi) {
			t.Errorf("bits %d in bucket %d with range [%d,%d)", bits, b, lo, hi)
		}
	}
}

func TestHistogramRecording(t *testing.T) {
	var c Counters
	c.AddMul(PhaseTree, 5, 9) // max 9 → bucket 4
	c.AddMul(PhaseTree, 9, 5) // symmetric
	c.AddDiv(PhaseTree, 3, 1) // max 3 → bucket 2
	c.AddMul(PhaseSort, 0, 0) // bucket 0
	rep := c.Snapshot()
	tr := rep.Phases[PhaseTree]
	if tr.BitLen[4] != 2 || tr.BitLen[2] != 1 {
		t.Errorf("tree histogram = %v", tr.BitLen)
	}
	if got := rep.Phases[PhaseSort].BitLen[0]; got != 1 {
		t.Errorf("sort bucket 0 = %d, want 1", got)
	}
	// Histogram mass equals mul+div count.
	var mass int64
	for _, v := range tr.BitLen {
		mass += v
	}
	if mass != tr.Ops() {
		t.Errorf("histogram mass %d != ops %d", mass, tr.Ops())
	}
}

func TestSumSubHistogram(t *testing.T) {
	var c Counters
	c.AddMul(PhaseTree, 8, 8)
	c.AddMul(PhaseSieve, 8, 8)
	before := c.Snapshot()
	c.AddMul(PhaseTree, 8, 8)
	diff := c.Snapshot().Sub(before)
	if got := diff.Phases[PhaseTree].BitLen[4]; got != 1 {
		t.Errorf("Sub histogram tree bucket 4 = %d, want 1", got)
	}
	if got := diff.Phases[PhaseSieve].BitLen[4]; got != 0 {
		t.Errorf("Sub histogram sieve bucket 4 = %d, want 0", got)
	}
	sum := c.Snapshot().Sum(PhaseTree, PhaseSieve)
	if sum.BitLen[4] != 3 {
		t.Errorf("Sum histogram bucket 4 = %d, want 3", sum.BitLen[4])
	}
	if tot := c.Snapshot().Total(); tot.BitLen[4] != 3 {
		t.Errorf("Total histogram bucket 4 = %d, want 3", tot.BitLen[4])
	}
}

func TestSubSumEdgeCases(t *testing.T) {
	var empty Report
	if got := empty.Sub(empty); got != empty {
		t.Error("empty.Sub(empty) != empty")
	}
	if got := empty.Sum(); got != (PhaseReport{}) {
		t.Error("Sum() of no phases != zero")
	}
	if got := empty.Total(); got != (PhaseReport{}) {
		t.Error("Total of empty != zero")
	}
	// Sub is its own inverse: r.Sub(zero) == r, r.Sub(r) == zero.
	var c Counters
	c.AddMul(PhaseNewton, 12, 7)
	c.AddEval(PhaseNewton)
	r := c.Snapshot()
	if r.Sub(empty) != r {
		t.Error("r.Sub(zero) != r")
	}
	if r.Sub(r) != empty {
		t.Error("r.Sub(r) != zero")
	}
	// Negative deltas survive (interval snapshots taken out of order).
	neg := empty.Sub(r)
	if neg.Phases[PhaseNewton].Muls != -1 || neg.Phases[PhaseNewton].BitLen[4] != -1 {
		t.Errorf("negative Sub = %+v", neg.Phases[PhaseNewton])
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	var c Counters
	c.AddMul(PhaseRemainder, 100, 90)
	c.AddDiv(PhaseRemainder, 50, 10)
	c.AddAdd(PhaseTree)
	c.AddEval(PhaseNewton)
	r := c.Snapshot()

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"remainder"`, `"tree"`, `"newton"`, `"total"`, `"bitlenHist"`, `"muls":1`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s: %s", want, s)
		}
	}
	if strings.Contains(s, `"sort"`) {
		t.Errorf("JSON contains empty phase: %s", s)
	}

	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, r)
	}
}

func TestReportJSONUnknownPhase(t *testing.T) {
	var r Report
	if err := json.Unmarshal([]byte(`{"phases":{"quantum":{"muls":1}}}`), &r); err == nil {
		t.Error("unknown phase accepted")
	}
	if err := json.Unmarshal([]byte(`{"phases":{"tree":{"bitlenHist":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,1]}}}`), &r); err == nil {
		t.Error("oversized histogram accepted")
	}
}

// TestConcurrentAddMulSetBudget exercises the documented safety of
// re-arming the budget while recordings are in flight (run under -race).
func TestConcurrentAddMulSetBudget(t *testing.T) {
	var c Counters
	var fired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.AddMul(PhaseTree, 64, 64)
				c.AddDiv(PhaseBisection, 32, 32)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.SetBudget(int64(i+1)*10, func() { fired.Add(1) })
		}
	}()
	wg.Wait()
	// Arm a budget already far below the recorded work and record once
	// more: the trip is now deterministic regardless of how the
	// concurrent phase interleaved.
	c.SetBudget(1, func() { fired.Add(1) })
	c.AddMul(PhaseTree, 64, 64)
	if !c.BudgetExceeded() {
		t.Error("budget not tripped")
	}
	if n := fired.Load(); n > 1 {
		t.Errorf("onExceed fired %d times, want at most 1", n)
	}
	rep := c.Snapshot()
	if rep.Phases[PhaseTree].Muls != 2001 {
		t.Errorf("muls = %d, want 2001", rep.Phases[PhaseTree].Muls)
	}
}

// TestAddMulNoAllocs guards the hot path: recording (histogram
// included) must stay allocation-free.
func TestAddMulNoAllocs(t *testing.T) {
	var c Counters
	if n := testing.AllocsPerRun(1000, func() {
		c.AddMul(PhaseTree, 64, 128)
		c.AddDiv(PhaseTree, 64, 128)
	}); n != 0 {
		t.Errorf("AddMul/AddDiv allocate %.1f objects/op, want 0", n)
	}
}

// TestActualCostSplit verifies that model cost (the paper's schoolbook
// measure) and actual cost are tracked independently, that the budget is
// charged model cost regardless of profile, and that the distinction
// survives the JSON round trip.
func TestActualCostSplit(t *testing.T) {
	var c Counters
	c.AddMulCost(PhaseRemainder, 100, 90, 4000)
	c.AddDivCost(PhaseRemainder, 50, 10, 120)
	r := c.Snapshot()
	pr := r.Phases[PhaseRemainder]
	if pr.MulBits != 9000 || pr.MulBitsActual != 4000 {
		t.Errorf("mul cost split = %d/%d, want 9000/4000", pr.MulBits, pr.MulBitsActual)
	}
	if pr.DivBits != 500 || pr.DivBitsActual != 120 {
		t.Errorf("div cost split = %d/%d, want 500/120", pr.DivBits, pr.DivBitsActual)
	}
	// The budget aggregates model bits, not actual bits.
	if got := c.BitOps(); got != 9500 {
		t.Errorf("BitOps = %d, want model total 9500", got)
	}
	tot := r.Total()
	if tot.MulBitsActual != 4000 || tot.DivBitsActual != 120 {
		t.Errorf("total actual = %d/%d", tot.MulBitsActual, tot.DivBitsActual)
	}

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"mulBitsActual":4000`) {
		t.Errorf("JSON missing actual cost: %s", data)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back.Phases[PhaseRemainder], pr)
	}
}

// TestActualCostDefaults verifies the compatibility rule: snapshots
// written before the split (no actual fields) unmarshal with actual
// equal to model.
func TestActualCostDefaults(t *testing.T) {
	var r Report
	if err := json.Unmarshal([]byte(`{"phases":{"tree":{"muls":2,"mulBits":64,"divs":1,"divBits":8}}}`), &r); err != nil {
		t.Fatal(err)
	}
	pr := r.Phases[PhaseTree]
	if pr.MulBitsActual != 64 || pr.DivBitsActual != 8 {
		t.Errorf("legacy snapshot actual = %d/%d, want 64/8", pr.MulBitsActual, pr.DivBitsActual)
	}
}

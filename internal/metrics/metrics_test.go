package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"realroots/internal/mp"
)

func TestCountersBasic(t *testing.T) {
	var c Counters
	c.AddMul(PhaseTree, 10, 20)
	c.AddMul(PhaseTree, 5, 5)
	c.AddDiv(PhaseRemainder, 8, 4)
	c.AddAdd(PhaseSort)
	c.AddEval(PhaseNewton)
	rep := c.Snapshot()
	if rep.Phases[PhaseTree].Muls != 2 || rep.Phases[PhaseTree].MulBits != 225 {
		t.Errorf("tree: %+v", rep.Phases[PhaseTree])
	}
	if rep.Phases[PhaseRemainder].Divs != 1 || rep.Phases[PhaseRemainder].DivBits != 32 {
		t.Errorf("remainder: %+v", rep.Phases[PhaseRemainder])
	}
	if rep.Phases[PhaseSort].Adds != 1 || rep.Phases[PhaseNewton].Evals != 1 {
		t.Error("adds/evals not recorded")
	}
}

func TestNilCountersSafe(t *testing.T) {
	var c *Counters
	c.AddMul(PhaseTree, 1, 1)
	c.AddDiv(PhaseTree, 1, 1)
	c.AddAdd(PhaseTree)
	c.AddEval(PhaseTree)
	c.Reset()
	rep := c.Snapshot()
	if rep.Total().Muls != 0 {
		t.Error("nil counters recorded something")
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.AddMul(PhaseSieve, 3, 3)
	c.Reset()
	if c.Snapshot().Total().Muls != 0 {
		t.Error("Reset did not clear")
	}
}

func TestTotalAndSum(t *testing.T) {
	var c Counters
	c.AddMul(PhaseSieve, 2, 2)
	c.AddMul(PhaseBisection, 3, 3)
	c.AddMul(PhaseNewton, 4, 4)
	rep := c.Snapshot()
	if rep.Total().Muls != 3 {
		t.Errorf("total = %d", rep.Total().Muls)
	}
	s := rep.Sum(IntervalPhases...)
	if s.Muls != 3 || s.MulBits != 4+9+16 {
		t.Errorf("sum = %+v", s)
	}
	if rep.Sum(PhaseTree).Muls != 0 {
		t.Error("empty phase non-zero")
	}
}

func TestSub(t *testing.T) {
	var c Counters
	c.AddMul(PhaseTree, 2, 2)
	before := c.Snapshot()
	c.AddMul(PhaseTree, 5, 5)
	diff := c.Snapshot().Sub(before)
	if diff.Phases[PhaseTree].Muls != 1 || diff.Phases[PhaseTree].MulBits != 25 {
		t.Errorf("diff = %+v", diff.Phases[PhaseTree])
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseRemainder.String() != "remainder" || PhaseNewton.String() != "newton" {
		t.Error("phase names")
	}
	if Phase(99).String() == "" {
		t.Error("out-of-range phase name empty")
	}
	if len(AllPhases()) != int(NumPhases) {
		t.Error("AllPhases length")
	}
}

func TestConcurrentCounting(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddMul(PhaseTree, 1, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().Phases[PhaseTree].Muls; got != 8000 {
		t.Errorf("concurrent count = %d", got)
	}
}

func TestCtxArithmetic(t *testing.T) {
	var c Counters
	ctx := Ctx{C: &c, Phase: PhaseRemainder}
	z := ctx.Mul(mp.NewInt(6), mp.NewInt(7))
	if z.Int64() != 42 {
		t.Errorf("Mul = %s", z)
	}
	if ctx.Sqr(mp.NewInt(-5)).Int64() != 25 {
		t.Error("Sqr")
	}
	if ctx.Add(mp.NewInt(1), mp.NewInt(2)).Int64() != 3 {
		t.Error("Add")
	}
	if ctx.Sub(mp.NewInt(1), mp.NewInt(2)).Int64() != -1 {
		t.Error("Sub")
	}
	if ctx.DivExact(mp.NewInt(42), mp.NewInt(6)).Int64() != 7 {
		t.Error("DivExact")
	}
	var dst mp.Int
	if ctx.MulInto(&dst, mp.NewInt(3), mp.NewInt(3)).Int64() != 9 {
		t.Error("MulInto")
	}
	if ctx.DivExactInto(&dst, mp.NewInt(9), mp.NewInt(3)).Int64() != 3 {
		t.Error("DivExactInto")
	}
	rep := c.Snapshot()
	if rep.Phases[PhaseRemainder].Muls != 3 || rep.Phases[PhaseRemainder].Divs != 2 || rep.Phases[PhaseRemainder].Adds != 2 {
		t.Errorf("ctx counts: %+v", rep.Phases[PhaseRemainder])
	}
	// In is a phase-switched copy.
	ctx2 := ctx.In(PhaseTree)
	ctx2.Mul(mp.NewInt(2), mp.NewInt(2))
	if c.Snapshot().Phases[PhaseTree].Muls != 1 {
		t.Error("In did not switch phase")
	}
}

func TestZeroCtxWorks(t *testing.T) {
	var ctx Ctx
	if ctx.Mul(mp.NewInt(2), mp.NewInt(3)).Int64() != 6 {
		t.Error("zero ctx Mul")
	}
}

func TestBitOpsAggregate(t *testing.T) {
	var c Counters
	c.AddMul(PhaseTree, 10, 20)    // 200 bits
	c.AddDiv(PhaseRemainder, 8, 4) // 32 bits
	c.AddAdd(PhaseSort)            // adds do not count
	if got := c.BitOps(); got != 232 {
		t.Errorf("BitOps = %d, want 232", got)
	}
	var nilC *Counters
	if nilC.BitOps() != 0 || nilC.BudgetExceeded() {
		t.Error("nil counters budget state not zero")
	}
}

func TestBudgetTripsOnceAtLimit(t *testing.T) {
	var c Counters
	fired := 0
	c.SetBudget(100, func() { fired++ })
	c.AddMul(PhaseTree, 10, 10) // total 100: not exceeded (limit is inclusive)
	if c.BudgetExceeded() {
		t.Fatal("tripped at exactly the limit")
	}
	c.AddMul(PhaseTree, 1, 1) // total 101: exceeded
	if !c.BudgetExceeded() {
		t.Fatal("did not trip past the limit")
	}
	c.AddDiv(PhaseTree, 50, 50)
	if fired != 1 {
		t.Fatalf("onExceed fired %d times, want 1", fired)
	}
}

func TestBudgetUnlimitedByDefault(t *testing.T) {
	var c Counters
	c.AddMul(PhaseTree, 1<<15, 1<<15)
	if c.BudgetExceeded() {
		t.Fatal("tripped without a budget")
	}
}

func TestResetRearmsBudget(t *testing.T) {
	var c Counters
	c.SetBudget(10, nil)
	c.AddMul(PhaseTree, 100, 100)
	if !c.BudgetExceeded() {
		t.Fatal("did not trip")
	}
	c.Reset()
	if c.BudgetExceeded() || c.BitOps() != 0 {
		t.Fatal("Reset did not clear budget state")
	}
	c.AddMul(PhaseTree, 100, 100)
	if !c.BudgetExceeded() {
		t.Fatal("budget not re-armed after Reset")
	}
}

// TestCtxProfileDispatch checks that a Ctx carrying the Fast profile
// records the same operation counts and model cost as a schoolbook Ctx
// (paper-mode traces are profile-independent) while reporting a smaller
// actual cost on operands past the Karatsuba threshold.
func TestCtxProfileDispatch(t *testing.T) {
	mk := func(pr mp.Profile) (Report, *mp.Int) {
		var c Counters
		ctx := Ctx{C: &c, Phase: PhaseTree, Profile: pr}
		x := new(mp.Int).Lsh(mp.NewInt(1), 20000)
		x.Sub(x, mp.NewInt(12345))
		z := ctx.Mul(x, x)
		ctx.DivExact(z, x)
		return c.Snapshot(), z
	}
	rs, zs := mk(mp.Schoolbook)
	rf, zf := mk(mp.Fast)
	if zs.Cmp(zf) != 0 {
		t.Fatal("profiles disagree on the product")
	}
	ps, pf := rs.Phases[PhaseTree], rf.Phases[PhaseTree]
	if ps.Muls != pf.Muls || ps.MulBits != pf.MulBits || ps.Divs != pf.Divs || ps.DivBits != pf.DivBits {
		t.Errorf("model-side recording differs across profiles:\n schoolbook %+v\n fast %+v", ps, pf)
	}
	if ps.MulBitsActual != ps.MulBits {
		t.Errorf("schoolbook actual %d != model %d", ps.MulBitsActual, ps.MulBits)
	}
	if pf.MulBitsActual >= pf.MulBits {
		t.Errorf("fast actual mul cost %d not below model %d at 20000 bits", pf.MulBitsActual, pf.MulBits)
	}
	if pf.DivBitsActual >= pf.DivBits {
		t.Errorf("fast actual div cost %d not below model %d at 20000 bits", pf.DivBitsActual, pf.DivBits)
	}
	// In(p) must preserve the profile.
	if got := (Ctx{Profile: mp.Fast}).In(PhaseSort).Profile; got != mp.Fast {
		t.Errorf("In dropped the profile: %v", got)
	}
}

// TestTierRecording checks that Fast-profile multiplications are
// attributed to their dispatch tier, that schoolbook runs record no
// tiers (keeping paper-mode reports identical to pre-tier snapshots),
// and that the counters survive Add/Sub and the JSON round trip.
func TestTierRecording(t *testing.T) {
	var c Counters
	fast := Ctx{C: &c, Phase: PhaseTree, Profile: mp.Fast}
	a, b := new(mp.Int).SetInt64(1), new(mp.Int).SetInt64(1)
	a.Lsh(a, 5000) // ~5000 bits: packed-karatsuba territory
	b.Lsh(b, 4999)
	fast.Mul(a, b)
	fast.Mul(new(mp.Int).SetInt64(3), new(mp.Int).SetInt64(5)) // tiny: schoolbook tier

	rep := c.Snapshot()
	tr := rep.Phases[PhaseTree]
	if got := tr.Tiers[mp.TierKaratsuba]; got != 1 {
		t.Errorf("karatsuba tier count = %d, want 1 (tiers %v)", got, tr.Tiers)
	}
	if got := tr.Tiers[mp.TierSchoolbook]; got != 1 {
		t.Errorf("schoolbook tier count = %d, want 1 (tiers %v)", got, tr.Tiers)
	}
	if tr.ParMuls != 0 {
		t.Errorf("ParMuls = %d without a Par hook", tr.ParMuls)
	}

	// Schoolbook profile records no tiers at all.
	var s Counters
	paper := Ctx{C: &s, Phase: PhaseTree, Profile: mp.Schoolbook}
	paper.Mul(a, b)
	if tiers := s.Snapshot().Phases[PhaseTree].Tiers; tiers != ([mp.NumTiers]int64{}) {
		t.Errorf("schoolbook profile recorded tiers %v", tiers)
	}

	// Add folds tiers; Sub inverts it.
	sum := rep.Add(rep)
	if got := sum.Phases[PhaseTree].Tiers[mp.TierKaratsuba]; got != 2 {
		t.Errorf("Add tier count = %d, want 2", got)
	}
	if diff := sum.Sub(rep); diff.Phases[PhaseTree].Tiers != tr.Tiers {
		t.Errorf("Sub tiers = %v, want %v", diff.Phases[PhaseTree].Tiers, tr.Tiers)
	}
}

// TestTierJSONRoundTrip pins the wire form: tier counts appear keyed by
// name under Fast, are absent from schoolbook reports, and round-trip.
func TestTierJSONRoundTrip(t *testing.T) {
	var c Counters
	c.AddMulTier(PhaseTree, mp.TierToom3)
	c.AddMulTier(PhaseTree, mp.TierToom3)
	c.AddMulTier(PhaseTree, mp.TierNTT)
	c.AddParMul(PhaseTree)
	c.AddMul(PhaseTree, 8, 8)
	rep := c.Snapshot()

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"tiers":{`) || !strings.Contains(string(data), `"toom3":2`) {
		t.Errorf("tier counts missing from JSON: %s", data)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Phases[PhaseTree].Tiers != rep.Phases[PhaseTree].Tiers {
		t.Errorf("round trip tiers = %v, want %v", back.Phases[PhaseTree].Tiers, rep.Phases[PhaseTree].Tiers)
	}
	if back.Phases[PhaseTree].ParMuls != 1 {
		t.Errorf("round trip parMuls = %d, want 1", back.Phases[PhaseTree].ParMuls)
	}

	// A tier-free report must not mention tiers at all (old readers and
	// old snapshots stay compatible both ways).
	var s Counters
	s.AddMul(PhaseTree, 8, 8)
	plain, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "tiers") || strings.Contains(string(plain), "parMuls") {
		t.Errorf("tier-free report leaks tier fields: %s", plain)
	}
	if err := json.Unmarshal(plain, &back); err != nil {
		t.Fatal(err)
	}

	// Unknown tier names are schema drift, not silence.
	bad := []byte(`{"phases":{"tree":{"muls":1,"tiers":{"quantum":1}}}}`)
	if err := json.Unmarshal(bad, &back); err == nil {
		t.Error("unknown tier name accepted")
	}
}

package metrics

import (
	"encoding/json"
	"fmt"

	"realroots/internal/mp"
)

// JSON form of a Report: phases keyed by name (stable across phase
// renumbering, readable in dumps), zero phases omitted, plus the total.
// The histogram is emitted as a slice trimmed of trailing zero buckets.
//
//	{"phases":{"remainder":{"muls":…,"bitlenHist":[0,3,…]},…},
//	 "total":{…}}

// phaseJSON is the wire form of one PhaseReport.
type phaseJSON struct {
	Muls    int64 `json:"muls"`
	MulBits int64 `json:"mulBits"`
	Divs    int64 `json:"divs"`
	DivBits int64 `json:"divBits"`
	Adds    int64 `json:"adds"`
	Evals   int64 `json:"evals"`
	// Actual-cost estimates under the run's arithmetic profile; omitted
	// when equal to the model cost (the schoolbook-profile case), which
	// also keeps pre-profile snapshots and their readers compatible.
	MulBitsActual int64   `json:"mulBitsActual,omitempty"`
	DivBitsActual int64   `json:"divBitsActual,omitempty"`
	BitLen        []int64 `json:"bitlenHist,omitempty"`
	// Tiers maps kernel-tier names to multiplication counts and ParMuls
	// counts parallel-path products; both are omitted when zero (every
	// schoolbook-profile report, and every pre-tier snapshot).
	Tiers   map[string]int64 `json:"tiers,omitempty"`
	ParMuls int64            `json:"parMuls,omitempty"`
}

func (p PhaseReport) toJSON() phaseJSON {
	j := phaseJSON{
		Muls:    p.Muls,
		MulBits: p.MulBits,
		Divs:    p.Divs,
		DivBits: p.DivBits,
		Adds:    p.Adds,
		Evals:   p.Evals,
	}
	if p.MulBitsActual != p.MulBits {
		j.MulBitsActual = p.MulBitsActual
	}
	if p.DivBitsActual != p.DivBits {
		j.DivBitsActual = p.DivBitsActual
	}
	last := -1
	for b := 0; b < BitLenBuckets; b++ {
		if p.BitLen[b] != 0 {
			last = b
		}
	}
	if last >= 0 {
		j.BitLen = append(j.BitLen, p.BitLen[:last+1]...)
	}
	for t, n := range p.Tiers {
		if n != 0 {
			if j.Tiers == nil {
				j.Tiers = make(map[string]int64)
			}
			j.Tiers[mp.Tier(t).String()] = n
		}
	}
	j.ParMuls = p.ParMuls
	return j
}

// tierByName maps tier names back to their index.
var tierByName = func() map[string]mp.Tier {
	m := make(map[string]mp.Tier, mp.NumTiers)
	for t := 0; t < mp.NumTiers; t++ {
		m[mp.Tier(t).String()] = mp.Tier(t)
	}
	return m
}()

func (j phaseJSON) toReport() (PhaseReport, error) {
	p := PhaseReport{
		Muls:          j.Muls,
		MulBits:       j.MulBits,
		Divs:          j.Divs,
		DivBits:       j.DivBits,
		Adds:          j.Adds,
		Evals:         j.Evals,
		MulBitsActual: j.MulBitsActual,
		DivBitsActual: j.DivBitsActual,
	}
	// Absent actual-cost fields (including all pre-profile snapshots)
	// mean "same as the model cost".
	if p.MulBitsActual == 0 {
		p.MulBitsActual = p.MulBits
	}
	if p.DivBitsActual == 0 {
		p.DivBitsActual = p.DivBits
	}
	if len(j.BitLen) > BitLenBuckets {
		return p, fmt.Errorf("metrics: bitlenHist has %d buckets, max %d", len(j.BitLen), BitLenBuckets)
	}
	copy(p.BitLen[:], j.BitLen)
	for name, n := range j.Tiers {
		t, ok := tierByName[name]
		if !ok {
			return p, fmt.Errorf("metrics: unknown multiplication tier %q", name)
		}
		p.Tiers[t] = n
	}
	p.ParMuls = j.ParMuls
	return p, nil
}

// MarshalJSON encodes the report with phases keyed by name; phases with
// no recorded operations are omitted.
func (r Report) MarshalJSON() ([]byte, error) {
	phases := make(map[string]phaseJSON, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		if r.Phases[p] == (PhaseReport{}) {
			continue
		}
		phases[p.String()] = r.Phases[p].toJSON()
	}
	return json.Marshal(struct {
		Phases map[string]phaseJSON `json:"phases"`
		Total  phaseJSON            `json:"total"`
	}{phases, r.Total().toJSON()})
}

// phaseByName maps phase names back to their index.
var phaseByName = func() map[string]Phase {
	m := make(map[string]Phase, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		m[p.String()] = p
	}
	return m
}()

// UnmarshalJSON decodes the name-keyed form produced by MarshalJSON
// (the total field is ignored; it is derived). Unknown phase names are
// an error so schema drift is caught rather than silently dropped.
func (r *Report) UnmarshalJSON(data []byte) error {
	var wire struct {
		Phases map[string]phaseJSON `json:"phases"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	var out Report
	for name, pj := range wire.Phases {
		p, ok := phaseByName[name]
		if !ok {
			return fmt.Errorf("metrics: unknown phase %q", name)
		}
		pr, err := pj.toReport()
		if err != nil {
			return err
		}
		out.Phases[p] = pr
	}
	*r = out
	return nil
}

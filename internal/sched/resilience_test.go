package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// waitOrFatal fails the test if p.Wait does not return within the
// deadline — the watchdog that turns the historical panic-deadlock
// (worker goroutine dies, outstanding never decrements, Wait blocks
// forever) into a test failure instead of a hung test binary.
func waitOrFatal(t *testing.T, p *Pool, d time.Duration) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		p.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("Wait did not return: panic-deadlock regression")
	}
}

func TestPanicDoesNotDeadlockWait(t *testing.T) {
	// Regression: before panic isolation, a panicking task killed its
	// worker goroutine without decrementing outstanding, so Wait hung
	// forever (and the unrecovered panic could crash the process).
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	p.Submit(func() { panic("boom") })
	waitOrFatal(t, p, 5*time.Second)

	var pe *PanicError
	if err := p.Err(); !errors.As(err, &pe) {
		t.Fatalf("Err = %v, want *PanicError", err)
	} else if fmt.Sprint(pe.Value) != "boom" {
		t.Fatalf("panic value = %v", pe.Value)
	} else if len(pe.Stack) == 0 {
		t.Fatal("panic stack not captured")
	}
}

func TestWorkersSurviveTaskPanic(t *testing.T) {
	// All workers panic once; the pool must still drain later
	// submissions (drained, not run, since the pool is canceled — the
	// point is that Wait and Close still function).
	p := NewPool(4)
	for i := 0; i < 4; i++ {
		p.Submit(func() { panic(i) })
	}
	waitOrFatal(t, p, 5*time.Second)
	for i := 0; i < 100; i++ {
		p.Submit(func() {})
	}
	waitOrFatal(t, p, 5*time.Second)
	p.Close() // must not hang or panic
}

func TestCancelDrainsQueue(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var ran atomic.Int64
	block := make(chan struct{})
	p.Submit(func() { <-block })
	for i := 0; i < 50; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	cause := errors.New("stop now")
	p.Cancel(cause)
	close(block)
	waitOrFatal(t, p, 5*time.Second)
	if ran.Load() != 0 {
		t.Fatalf("%d queued tasks ran after Cancel", ran.Load())
	}
	if err := p.Err(); !errors.Is(err, cause) {
		t.Fatalf("Err = %v, want %v", err, cause)
	}
	if !p.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	select {
	case <-p.Done():
	default:
		t.Fatal("Done() not closed after Cancel")
	}
}

func TestCancelNilUsesSentinel(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	p.Cancel(nil)
	if err := p.Err(); !errors.Is(err, ErrPoolCanceled) {
		t.Fatalf("Err = %v, want ErrPoolCanceled", err)
	}
}

func TestFirstFailureWins(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	first := errors.New("first")
	p.Cancel(first)
	p.Cancel(errors.New("second"))
	p.Submit(func() { panic("third") })
	waitOrFatal(t, p, 5*time.Second)
	if err := p.Err(); !errors.Is(err, first) {
		t.Fatalf("Err = %v, want first failure", err)
	}
}

func TestSubmitRetryEventualSuccess(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var calls atomic.Int64
	p.SubmitRetry(5, func() error {
		if calls.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	waitOrFatal(t, p, 5*time.Second)
	if calls.Load() != 3 {
		t.Fatalf("task ran %d times, want 3", calls.Load())
	}
	if err := p.Err(); err != nil {
		t.Fatalf("Err = %v after eventual success", err)
	}
}

func TestSubmitRetryExhaustionFailsPool(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var calls atomic.Int64
	cause := errors.New("still broken")
	p.SubmitRetry(3, func() error { calls.Add(1); return cause })
	waitOrFatal(t, p, 5*time.Second)
	if calls.Load() != 3 {
		t.Fatalf("task ran %d times, want 3", calls.Load())
	}
	if err := p.Err(); !errors.Is(err, cause) {
		t.Fatalf("Err = %v, want wrapped %v", err, cause)
	}
}

func TestSubmitRetryPanicIsNotRetried(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var calls atomic.Int64
	p.SubmitRetry(10, func() error { calls.Add(1); panic("hard failure") })
	waitOrFatal(t, p, 5*time.Second)
	if calls.Load() != 1 {
		t.Fatalf("panicking task retried %d times", calls.Load())
	}
	var pe *PanicError
	if err := p.Err(); !errors.As(err, &pe) {
		t.Fatalf("Err = %v, want *PanicError", err)
	}
}

func TestTaskHookSeesEveryTask(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var hooked atomic.Int64
	var maxSeq atomic.Int64
	p.SetTaskHook(func(seq int64) {
		hooked.Add(1)
		for {
			m := maxSeq.Load()
			if seq <= m || maxSeq.CompareAndSwap(m, seq) {
				break
			}
		}
	})
	const n = 200
	for i := 0; i < n; i++ {
		p.Submit(func() {})
	}
	waitOrFatal(t, p, 5*time.Second)
	if hooked.Load() != n {
		t.Fatalf("hook ran %d times, want %d", hooked.Load(), n)
	}
	if maxSeq.Load() != n-1 {
		t.Fatalf("max sequence %d, want %d", maxSeq.Load(), n-1)
	}
}

func TestTaskHookPanicBecomesPoolError(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.SetTaskHook(func(seq int64) {
		if seq == 3 {
			panic("injected")
		}
	})
	for i := 0; i < 20; i++ {
		p.Submit(func() {})
	}
	waitOrFatal(t, p, 5*time.Second)
	var pe *PanicError
	if err := p.Err(); !errors.As(err, &pe) {
		t.Fatalf("Err = %v, want *PanicError from hook", err)
	}
}

func TestParallelForReturnsOnCancel(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	cause := errors.New("abort")
	start := make(chan struct{})
	var once atomic.Bool
	err := p.ParallelFor(1000, 1, func(i int) {
		if once.CompareAndSwap(false, true) {
			close(start)
			p.Cancel(cause)
		}
	})
	<-start
	if !errors.Is(err, cause) {
		t.Fatalf("ParallelFor = %v, want %v", err, cause)
	}
	waitOrFatal(t, p, 5*time.Second)
}

func TestParallelForPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	err := p.ParallelFor(100, 3, func(i int) {
		if i == 41 {
			panic("iteration failed")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("ParallelFor = %v, want *PanicError", err)
	}
	waitOrFatal(t, p, 5*time.Second)
}

func TestParallelForHealthyReturnsNil(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	out := make([]int, 500)
	if err := p.ParallelFor(len(out), 11, func(i int) { out[i] = i }); err != nil {
		t.Fatalf("ParallelFor = %v", err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestExecutedExcludesDrainedAndPanicked(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	block := make(chan struct{})
	p.Submit(func() { <-block })  // completes: counted
	p.Submit(func() { panic(1) }) // panics: not counted
	p.Submit(func() {})           // drained after the panic: not counted
	close(block)
	waitOrFatal(t, p, 5*time.Second)
	if got := p.Executed(); got != 1 {
		t.Fatalf("Executed = %d, want 1", got)
	}
}

package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

// spin burns roughly d of CPU time (sleep would not register as task
// work on the virtual processors in a meaningful way for assertions, but
// works fine too since we only measure elapsed time; use a busy loop for
// determinism under timer coarseness).
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}

func TestSimulatedPoolRunsAllTasks(t *testing.T) {
	p := NewSimulatedPool(4)
	defer p.Close()
	var n atomic.Int64
	for i := 0; i < 64; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Wait()
	if n.Load() != 64 {
		t.Fatalf("ran %d tasks", n.Load())
	}
	if !p.Simulated() {
		t.Fatal("pool not in simulation mode")
	}
	makespan, work := p.SimStats()
	if makespan <= 0 || work <= 0 {
		t.Fatalf("stats: makespan=%v work=%v", makespan, work)
	}
	if makespan > work {
		t.Fatalf("makespan %v exceeds total work %v", makespan, work)
	}
}

func TestSimulatedSpeedupOfIndependentTasks(t *testing.T) {
	// 16 independent 2ms tasks on 4 virtual processors: makespan should
	// be about work/4.
	p := NewSimulatedPool(4)
	defer p.Close()
	for i := 0; i < 16; i++ {
		p.Submit(func() { spin(2 * time.Millisecond) })
	}
	p.Wait()
	makespan, work := p.SimStats()
	speedup := float64(work) / float64(makespan)
	if speedup < 3.2 || speedup > 4.01 {
		t.Fatalf("speedup %v, want ≈ 4 (makespan %v, work %v)", speedup, makespan, work)
	}
}

func TestSimulatedChainHasNoSpeedup(t *testing.T) {
	// A strict dependency chain cannot speed up regardless of P.
	p := NewSimulatedPool(8)
	defer p.Close()
	const depth = 10
	gates := make([]*Gate, depth+1)
	gates[depth] = NewGate(p, 1, func() {})
	for i := depth - 1; i >= 0; i-- {
		next := gates[i+1]
		gates[i] = NewGate(p, 1, func() {
			spin(time.Millisecond)
			next.Done()
		})
	}
	gates[0].Done()
	p.Wait()
	makespan, work := p.SimStats()
	speedup := float64(work) / float64(makespan)
	if speedup > 1.2 {
		t.Fatalf("chain speedup %v > 1 (makespan %v, work %v)", speedup, makespan, work)
	}
}

func TestSimulatedSingleProcessorMakespanEqualsWork(t *testing.T) {
	p := NewSimulatedPool(1)
	defer p.Close()
	for i := 0; i < 8; i++ {
		p.Submit(func() { spin(500 * time.Microsecond) })
	}
	p.Wait()
	makespan, work := p.SimStats()
	if makespan != work {
		t.Fatalf("P=1: makespan %v != work %v", makespan, work)
	}
}

func TestSimulatedReadyTimePropagation(t *testing.T) {
	// Two sequential phases of 4 parallel tasks each (the second phase
	// gated on the first): on 4 processors the makespan is about two
	// task durations, not one.
	p := NewSimulatedPool(4)
	defer p.Close()
	const d = 2 * time.Millisecond
	gate := NewGate(p, 4, func() {
		for i := 0; i < 4; i++ {
			p.Submit(func() { spin(d) })
		}
	})
	for i := 0; i < 4; i++ {
		p.Submit(func() { spin(d); gate.Done() })
	}
	p.Wait()
	makespan, _ := p.SimStats()
	if makespan < 2*d*9/10 {
		t.Fatalf("makespan %v below two phase durations", makespan)
	}
	if makespan > 3*d {
		t.Fatalf("makespan %v far above two phase durations", makespan)
	}
}

func TestNonSimulatedPoolHasNoStats(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Submit(func() {})
	p.Wait()
	if p.Simulated() {
		t.Fatal("plain pool claims simulation")
	}
	if m, w := p.SimStats(); m != 0 || w != 0 {
		t.Fatalf("plain pool stats: %v %v", m, w)
	}
}

func TestSimulatedPoolRejectsBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSimulatedPool(0)
}

package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitAndWait(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
	if p.Executed() != 100 {
		t.Fatalf("Executed = %d", p.Executed())
	}
}

func TestTasksSubmitTasks(t *testing.T) {
	// Recursive task spawning: a binary fan-out tree of depth 10.
	p := NewPool(8)
	defer p.Close()
	var leaves atomic.Int64
	var spawn func(depth int)
	spawn = func(depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		p.Submit(func() { spawn(depth - 1) })
		p.Submit(func() { spawn(depth - 1) })
	}
	p.Submit(func() { spawn(10) })
	p.Wait()
	if leaves.Load() != 1024 {
		t.Fatalf("leaves = %d, want 1024", leaves.Load())
	}
}

func TestWaitReturnsAfterNestedCompletion(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var order []int
	var mu sync.Mutex
	p.Submit(func() {
		mu.Lock()
		order = append(order, 1)
		mu.Unlock()
		p.Submit(func() {
			mu.Lock()
			order = append(order, 2)
			mu.Unlock()
		})
	})
	p.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSingleWorkerIsSequential(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var running atomic.Int32
	var maxSeen atomic.Int32
	for i := 0; i < 50; i++ {
		p.Submit(func() {
			cur := running.Add(1)
			for {
				m := maxSeen.Load()
				if cur <= m || maxSeen.CompareAndSwap(m, cur) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			running.Add(-1)
		})
	}
	p.Wait()
	if maxSeen.Load() != 1 {
		t.Fatalf("max concurrency %d with 1 worker", maxSeen.Load())
	}
}

func TestParallelFor(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	out := make([]int, 1000)
	p.ParallelFor(len(out), 7, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	// Zero and negative n are no-ops.
	p.ParallelFor(0, 1, func(int) { t.Error("called") })
	p.ParallelFor(-3, 1, func(int) { t.Error("called") })
}

func TestParallelForGrainOne(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var n atomic.Int64
	p.ParallelFor(64, 0, func(i int) { n.Add(1) })
	if n.Load() != 64 {
		t.Fatalf("ran %d iterations", n.Load())
	}
}

func TestGateFiresAfterAllDeps(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var fired atomic.Bool
	g := NewGate(p, 3, func() { fired.Store(true) })
	g.Done()
	g.Done()
	p.Wait()
	if fired.Load() {
		t.Fatal("gate fired early")
	}
	g.Done()
	p.Wait()
	if !fired.Load() {
		t.Fatal("gate never fired")
	}
}

func TestGateZeroDepsFiresImmediately(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var fired atomic.Bool
	NewGate(p, 0, func() { fired.Store(true) })
	p.Wait()
	if !fired.Load() {
		t.Fatal("zero-dep gate never fired")
	}
}

func TestGateOverDonePanics(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	g := NewGate(p, 1, func() {})
	g.Done()
	p.Wait()
	defer func() {
		if recover() == nil {
			t.Fatal("extra Done did not panic")
		}
	}()
	g.Done()
}

func TestGateChain(t *testing.T) {
	// A dependency chain: each gate enables the next; mirrors the
	// bottom-up tree traversal pattern.
	p := NewPool(4)
	defer p.Close()
	const depth = 200
	var progress atomic.Int64
	gates := make([]*Gate, depth)
	for i := depth - 1; i >= 0; i-- {
		i := i
		next := func() {
			progress.Add(1)
			if i+1 < depth {
				gates[i+1].Done()
			}
		}
		gates[i] = NewGate(p, 1, next)
	}
	gates[0].Done()
	p.Wait()
	if progress.Load() != depth {
		t.Fatalf("progress = %d, want %d", progress.Load(), depth)
	}
}

func TestNewPoolRejectsBadWorkerCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}

func TestCloseDrainsQueue(t *testing.T) {
	p := NewPool(2)
	var n atomic.Int64
	for i := 0; i < 500; i++ {
		p.Submit(func() { n.Add(1) })
	}
	p.Close()
	if n.Load() != 500 {
		t.Fatalf("Close lost tasks: ran %d", n.Load())
	}
}

func TestManyWaiters(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var done atomic.Int64
	for i := 0; i < 20; i++ {
		p.Submit(func() { time.Sleep(time.Millisecond); done.Add(1) })
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Wait()
			if done.Load() != 20 {
				t.Error("Wait returned before tasks finished")
			}
		}()
	}
	wg.Wait()
}

package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"realroots/internal/trace"
)

func TestQueueDepthAndStats(t *testing.T) {
	p := NewPool(1)
	defer p.Close()

	// Block the single worker so submissions pile up measurably.
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(1)
	p.Submit(func() { started.Done(); <-release })
	started.Wait()

	for i := 0; i < 5; i++ {
		p.Submit(func() {})
	}
	if d := p.QueueDepth(); d != 5 {
		t.Errorf("QueueDepth = %d, want 5", d)
	}
	close(release)
	p.Wait()

	st := p.Stats()
	if st.Workers != 1 {
		t.Errorf("Stats.Workers = %d, want 1", st.Workers)
	}
	if st.Executed != 6 {
		t.Errorf("Stats.Executed = %d, want 6", st.Executed)
	}
	if st.MaxQueueDepth < 5 {
		t.Errorf("Stats.MaxQueueDepth = %d, want >= 5", st.MaxQueueDepth)
	}
	if st.Panics != 0 || st.Retries != 0 {
		t.Errorf("Stats = %+v, want zero panics/retries", st)
	}
	if d := p.QueueDepth(); d != 0 {
		t.Errorf("QueueDepth after Wait = %d, want 0", d)
	}
}

func TestStatsCountsPanics(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Submit(func() { panic("boom") })
	p.Wait()
	if got := p.Stats().Panics; got != 1 {
		t.Errorf("Stats.Panics = %d, want 1", got)
	}
	var pe *PanicError
	if !errors.As(p.Err(), &pe) {
		t.Errorf("Err = %v, want PanicError", p.Err())
	}
}

func TestStatsCountsRetries(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var calls atomic.Int64
	p.SubmitRetry(3, func() error {
		if calls.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	p.Wait()
	if err := p.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if got := p.Stats().Retries; got != 2 {
		t.Errorf("Stats.Retries = %d, want 2", got)
	}
}

func TestTracerRecordsWorkerSpans(t *testing.T) {
	tr := trace.New()
	p := NewPool(3)
	p.SetTracer(tr)
	const n = 24
	for i := 0; i < n; i++ {
		p.SubmitTagged("interval", func() {})
	}
	p.Submit(func() {}) // default tag
	p.Wait()
	p.Close()

	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	lanes := tr.Lanes()
	if len(lanes) == 0 || len(lanes) > 3 {
		t.Fatalf("got %d lanes, want 1..3", len(lanes))
	}
	total, tagged := 0, 0
	for _, l := range lanes {
		if l.ID < 0 || l.ID > 2 {
			t.Errorf("unexpected lane ID %d", l.ID)
		}
		for _, s := range l.Spans() {
			if s.Cat != trace.CatTask {
				t.Errorf("span cat = %q, want task", s.Cat)
			}
			total++
			if s.Name == "interval" {
				tagged++
			}
		}
	}
	if total != n+1 {
		t.Errorf("recorded %d spans, want %d", total, n+1)
	}
	if tagged != n {
		t.Errorf("%d interval-tagged spans, want %d", tagged, n)
	}
	if len(tr.Counters()) != total {
		t.Errorf("%d queue-depth samples, want %d", len(tr.Counters()), total)
	}
}

func TestTracedGateAndParallelForTags(t *testing.T) {
	tr := trace.New()
	p := NewPool(2)
	p.SetTracer(tr)
	g := NewGateTagged(p, 2, "sort", func() {})
	_ = p.ParallelForTagged("precompute", 8, 4, func(i int) {})
	g.Done()
	g.Done()
	p.Wait()
	p.Close()

	byTag := map[string]int{}
	for _, l := range tr.Lanes() {
		for _, s := range l.Spans() {
			byTag[s.Name]++
		}
	}
	if byTag["precompute"] != 2 {
		t.Errorf("precompute spans = %d, want 2 (8 iterations / grain 4)", byTag["precompute"])
	}
	if byTag["sort"] != 1 {
		t.Errorf("sort spans = %d, want 1", byTag["sort"])
	}
}

func TestTracedSimulatedPool(t *testing.T) {
	tr := trace.New()
	p := NewSimulatedPool(4)
	p.SetTracer(tr)
	for i := 0; i < 6; i++ {
		p.SubmitTagged("interval", func() {})
	}
	p.Wait()
	p.Close()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	lanes := tr.Lanes()
	if len(lanes) != 1 {
		t.Fatalf("simulated pool has %d lanes, want 1 (one real worker)", len(lanes))
	}
	if got := len(lanes[0].Spans()); got != 6 {
		t.Errorf("spans = %d, want 6", got)
	}
}

// recordingObserver captures lifecycle callbacks for assertions.
type recordingObserver struct {
	mu     sync.Mutex
	events []obsEvent
}

type obsEvent struct {
	kind   string // "start", "done", "panic", "retry"
	worker int
	tag    string
	left   int
}

func (o *recordingObserver) add(e obsEvent) {
	o.mu.Lock()
	o.events = append(o.events, e)
	o.mu.Unlock()
}

func (o *recordingObserver) TaskStart(worker int, tag string) {
	o.add(obsEvent{kind: "start", worker: worker, tag: tag})
}
func (o *recordingObserver) TaskDone(worker int, tag string) {
	o.add(obsEvent{kind: "done", worker: worker, tag: tag})
}
func (o *recordingObserver) TaskPanic(worker int, tag string, v any) {
	o.add(obsEvent{kind: "panic", worker: worker, tag: tag})
}
func (o *recordingObserver) TaskRetry(tag string, left int) {
	o.add(obsEvent{kind: "retry", tag: tag, left: left})
}

func (o *recordingObserver) byKind() map[string][]obsEvent {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := map[string][]obsEvent{}
	for _, e := range o.events {
		m[e.kind] = append(m[e.kind], e)
	}
	return m
}

func TestObserverBalancedStartDone(t *testing.T) {
	obs := &recordingObserver{}
	p := NewPool(3)
	p.SetObserver(obs)
	const n = 20
	for i := 0; i < n; i++ {
		p.SubmitTagged("interval", func() {})
	}
	p.Wait()
	p.Close()

	by := obs.byKind()
	if len(by["start"]) != n || len(by["done"]) != n {
		t.Fatalf("starts=%d dones=%d, want %d each", len(by["start"]), len(by["done"]), n)
	}
	for _, e := range append(by["start"], by["done"]...) {
		if e.worker < 0 || e.worker > 2 {
			t.Errorf("callback on worker %d, want 0..2", e.worker)
		}
		if e.tag != "interval" {
			t.Errorf("callback tag %q", e.tag)
		}
	}
}

// TestObserverPanicOrder pins the contract documented on Observer:
// a panicking task still produces a balanced Start/Done pair, with
// TaskPanic in between and on the same worker.
func TestObserverPanicOrder(t *testing.T) {
	obs := &recordingObserver{}
	p := NewPool(1)
	defer p.Close()
	p.SetObserver(obs)
	p.SubmitTagged("boom", func() { panic("kaboom") })
	p.Wait()

	var kinds []string
	var workers []int
	obs.mu.Lock()
	for _, e := range obs.events {
		kinds = append(kinds, e.kind)
		workers = append(workers, e.worker)
	}
	obs.mu.Unlock()
	want := []string{"start", "panic", "done"}
	if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Fatalf("event order %v, want %v", kinds, want)
	}
	if workers[0] != workers[1] || workers[1] != workers[2] {
		t.Fatalf("panic reported across workers: %v", workers)
	}
}

func TestObserverRetry(t *testing.T) {
	obs := &recordingObserver{}
	p := NewPool(1)
	defer p.Close()
	p.SetObserver(obs)
	var calls atomic.Int64
	p.SubmitRetry(3, func() error {
		if calls.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	})
	p.Wait()

	by := obs.byKind()
	if len(by["retry"]) != 2 {
		t.Fatalf("retry callbacks = %d, want 2", len(by["retry"]))
	}
	if by["retry"][0].left != 2 || by["retry"][1].left != 1 {
		t.Fatalf("attempts-left sequence %v", by["retry"])
	}
	// Each attempt is a separate task execution.
	if len(by["start"]) != 3 || len(by["done"]) != 3 {
		t.Fatalf("starts=%d dones=%d, want 3 each", len(by["start"]), len(by["done"]))
	}
}

// TestObserverParallelForPanic: a ParallelFor body panic is recovered
// per chunk and reported with worker -1 (the chunk's worker identity is
// the enclosing task, whose Start/Done still balance).
func TestObserverParallelForPanic(t *testing.T) {
	obs := &recordingObserver{}
	p := NewPool(2)
	defer p.Close()
	p.SetObserver(obs)
	err := p.ParallelForTagged("chunk", 8, 4, func(i int) {
		if i == 5 {
			panic("body")
		}
	})
	if err == nil {
		t.Fatal("ParallelForTagged swallowed the panic")
	}
	by := obs.byKind()
	if len(by["panic"]) != 1 {
		t.Fatalf("panic callbacks = %d, want 1", len(by["panic"]))
	}
	if e := by["panic"][0]; e.worker != -1 || e.tag != "chunk" {
		t.Fatalf("panic event %+v, want worker -1 tag chunk", e)
	}
	if len(by["start"]) != len(by["done"]) {
		t.Fatalf("unbalanced start/done: %d/%d", len(by["start"]), len(by["done"]))
	}
}

// TestObserverOnSimulatedPool checks the virtual-time pool drives the
// same callbacks.
func TestObserverOnSimulatedPool(t *testing.T) {
	obs := &recordingObserver{}
	p := NewSimulatedPool(4)
	defer p.Close()
	p.SetObserver(obs)
	for i := 0; i < 6; i++ {
		p.SubmitTagged("interval", func() {})
	}
	p.Wait()
	by := obs.byKind()
	if len(by["start"]) != 6 || len(by["done"]) != 6 {
		t.Fatalf("starts=%d dones=%d, want 6 each", len(by["start"]), len(by["done"]))
	}
}

// TestUntracedPoolUnchanged pins the no-tracer behavior: no lanes, no
// samples, stats still counted.
func TestUntracedPoolUnchanged(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	for i := 0; i < 10; i++ {
		p.Submit(func() {})
	}
	p.Wait()
	if got := p.Executed(); got != 10 {
		t.Errorf("Executed = %d, want 10", got)
	}
}
